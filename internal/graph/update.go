package graph

import (
	"fmt"
	"sort"

	"parmbf/internal/semiring"
)

// EditOp is the kind of one edge edit.
type EditOp uint8

const (
	// EditInsert adds a new edge {U, V} with the given weight.
	EditInsert EditOp = iota
	// EditDelete removes the existing edge {U, V} (Weight is ignored).
	EditDelete
	// EditReweight changes the weight of the existing edge {U, V}.
	EditReweight
)

func (op EditOp) String() string {
	switch op {
	case EditInsert:
		return "insert"
	case EditDelete:
		return "delete"
	case EditReweight:
		return "reweight"
	default:
		return fmt.Sprintf("EditOp(%d)", uint8(op))
	}
}

// Edit is one edge edit of a batch. Endpoints are unordered ({U, V} and
// {V, U} name the same edge).
type Edit struct {
	Op     EditOp
	U, V   Node
	Weight float64
}

// AppliedEdit is one validated edit together with the weight the edge had
// before the batch (∞ for inserts) — what an incremental repair needs to
// decide which entries the old fixpoint derived through the edited edge.
type AppliedEdit struct {
	Edit
	OldWeight float64
}

// EditSummary describes a validated, applied edit batch.
type EditSummary struct {
	// Applied lists every edit with its pre-batch weight, in input order.
	Applied []AppliedEdit
	// Touched is the sorted deduplicated set of edit endpoints — the seed
	// frontier of an incremental fixpoint repair.
	Touched []Node
	// Inserts, Deletes, and Reweights count the edits by kind.
	Inserts, Deletes, Reweights int
	// DecreaseOnly reports whether every edit weakly decreases a weight
	// (inserts count: ∞ → w). Decrease-only batches admit the pure delta
	// repair path; deletions and weight increases are non-monotone and
	// force cone invalidation (see internal/frt).
	DecreaseOnly bool
}

// pairKey packs an unordered node pair into one comparable key.
func pairKey(u, v Node) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// validateEdits checks an edit batch against g without modifying anything:
// endpoints in range, no loops, finite positive weights for insert/reweight,
// no two edits naming the same edge, inserts only of absent edges,
// deletes/reweights only of present ones. It returns the applied-edit records
// (with old weights) and the summary, or the first violation as an error —
// the update API must reject hostile input, not panic like Builder.Add.
func validateEdits(g *Graph, edits []Edit) (*EditSummary, error) {
	n := g.N()
	sum := &EditSummary{
		Applied:      make([]AppliedEdit, 0, len(edits)),
		DecreaseOnly: true,
	}
	seen := make(map[uint64]struct{}, len(edits))
	touched := make(map[Node]struct{}, 2*len(edits))
	for i, e := range edits {
		if int(e.U) < 0 || int(e.U) >= n || int(e.V) < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edit %d: endpoint of {%d,%d} out of range n=%d", i, e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: edit %d: loop at node %d", i, e.U)
		}
		switch e.Op {
		case EditInsert, EditReweight:
			// !(w > 0) also rejects NaN, mirroring Builder.Add.
			if !(e.Weight > 0) || semiring.IsInf(e.Weight) {
				return nil, fmt.Errorf("graph: edit %d: invalid weight %v for %v {%d,%d}", i, e.Weight, e.Op, e.U, e.V)
			}
		case EditDelete:
		default:
			return nil, fmt.Errorf("graph: edit %d: unknown op %v", i, e.Op)
		}
		key := pairKey(e.U, e.V)
		if _, dup := seen[key]; dup {
			return nil, fmt.Errorf("graph: edit %d: duplicate edit of edge {%d,%d}", i, e.U, e.V)
		}
		seen[key] = struct{}{}
		old, exists := g.HasEdge(e.U, e.V)
		switch e.Op {
		case EditInsert:
			if exists {
				return nil, fmt.Errorf("graph: edit %d: insert of existing edge {%d,%d}", i, e.U, e.V)
			}
			old = semiring.Inf
			sum.Inserts++
		case EditDelete:
			if !exists {
				return nil, fmt.Errorf("graph: edit %d: delete of missing edge {%d,%d}", i, e.U, e.V)
			}
			sum.Deletes++
			sum.DecreaseOnly = false
		case EditReweight:
			if !exists {
				return nil, fmt.Errorf("graph: edit %d: reweight of missing edge {%d,%d}", i, e.U, e.V)
			}
			sum.Reweights++
			if e.Weight > old {
				sum.DecreaseOnly = false
			}
		}
		sum.Applied = append(sum.Applied, AppliedEdit{Edit: e, OldWeight: old})
		touched[e.U] = struct{}{}
		touched[e.V] = struct{}{}
	}
	sum.Touched = make([]Node, 0, len(touched))
	for v := range touched {
		sum.Touched = append(sum.Touched, v)
	}
	sort.Slice(sum.Touched, func(a, b int) bool { return sum.Touched[a] < sum.Touched[b] })
	return sum, nil
}

// ApplyEdits applies a batch of edge edits to g and returns the edited graph
// together with a summary of what changed. g itself is never modified — the
// result is a fresh immutable Graph, so readers of g are undisturbed (the
// atomic-swap idiom of the serving tier).
//
// The whole batch is validated before anything is built; on error the batch
// is rejected wholesale and g is returned unchanged semantics-wise (the first
// return value is nil). An empty batch returns g itself.
//
// A reweight-only batch takes a copy-on-write fast path: only the flat arc
// block is cloned (both directed halves of each edited edge are patched by
// binary search) and the row-offset array is shared with g — O(m) copying
// with no re-sort, no Builder, and no re-dedup. Mixed batches rebuild through
// the extend-and-refreeze Builder idiom in O(n + m + k).
func ApplyEdits(g *Graph, edits []Edit) (*Graph, *EditSummary, error) {
	sum, err := validateEdits(g, edits)
	if err != nil {
		return nil, nil, err
	}
	if len(sum.Applied) == 0 {
		return g, sum, nil
	}
	if sum.Reweights == len(sum.Applied) {
		return reweightCOW(g, sum), sum, nil
	}
	return rebuildWithEdits(g, sum), sum, nil
}

// reweightCOW is the reweight-only fast path: clone the arc block, patch the
// edited arcs in place, share everything else. The CSR layout (row offsets,
// per-row target order) depends only on the edge set, which a reweight batch
// leaves unchanged, so the clone is structurally identical to g.
func reweightCOW(g *Graph, sum *EditSummary) *Graph {
	arcs := append([]Arc(nil), g.arcs...)
	h := &Graph{rowStart: g.rowStart, arcs: arcs, m: g.m, symmetric: g.symmetric}
	patch := func(u, v Node, w float64) {
		row := arcs[g.rowStart[u]:g.rowStart[u+1]]
		i := sort.Search(len(row), func(i int) bool { return row[i].To >= v })
		row[i].Weight = w // validated: the edge exists
	}
	for _, e := range sum.Applied {
		patch(e.U, e.V, e.Weight)
		patch(e.V, e.U, e.Weight)
	}
	return h
}

// rebuildWithEdits rebuilds the edge list with the batch applied and
// refreezes — the general path for batches that insert or delete edges.
func rebuildWithEdits(g *Graph, sum *EditSummary) *Graph {
	byPair := make(map[uint64]*AppliedEdit, len(sum.Applied))
	for i := range sum.Applied {
		e := &sum.Applied[i]
		byPair[pairKey(e.U, e.V)] = e
	}
	b := NewBuilder(g.N())
	b.edges = make([]Edge, 0, g.m+sum.Inserts-sum.Deletes)
	for u := 0; u < g.N(); u++ {
		for _, a := range g.Neighbors(Node(u)) {
			if Node(u) >= a.To {
				continue
			}
			w := a.Weight
			if e, ok := byPair[pairKey(Node(u), a.To)]; ok {
				if e.Op == EditDelete {
					continue
				}
				if e.Op == EditReweight {
					w = e.Weight
				}
			}
			b.edges = append(b.edges, Edge{U: Node(u), V: a.To, Weight: w})
		}
	}
	for _, e := range sum.Applied {
		if e.Op == EditInsert {
			b.Add(e.U, e.V, e.Weight)
		}
	}
	return b.Freeze()
}
