package graph

import (
	"math"
	"testing"

	"parmbf/internal/par"
)

// TestChungLuDegreeTail pins the power-law tail of the realised degree
// distribution: a log-log least-squares fit of the complementary CDF over
// the mid-range degrees must recover a tail exponent near the requested τ.
// The window is generous — finite-size effects and the connectivity repair
// shift the fit — but a broken generator (uniform degrees, star blowup)
// lands far outside it.
func TestChungLuDegreeTail(t *testing.T) {
	n := 1 << 14
	tau := 2.5
	g := ChungLu(n, 8, tau, 2, par.NewRNG(42))
	if g.N() != n {
		t.Fatalf("got %d nodes, want %d", g.N(), n)
	}
	if !g.Connected() {
		t.Fatal("ChungLu graph must be connected after repair")
	}
	// Complementary CDF at powers of two: ccdf[j] = P(deg ≥ 2^j).
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := g.Degree(Node(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 64 {
		t.Fatalf("max degree %d too small for a heavy tail at n=%d", maxDeg, n)
	}
	var xs, ys []float64
	for j := 2; (1 << j) <= maxDeg/4; j++ {
		thresh := 1 << j
		count := 0
		for v := 0; v < n; v++ {
			if g.Degree(Node(v)) >= thresh {
				count++
			}
		}
		if count < 10 {
			break // too few samples for a stable point
		}
		xs = append(xs, math.Log(float64(thresh)))
		ys = append(ys, math.Log(float64(count)/float64(n)))
	}
	if len(xs) < 3 {
		t.Fatalf("only %d CCDF points; degree range too narrow", len(xs))
	}
	// Least-squares slope of log CCDF vs log degree ≈ −(τ−1).
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	k := float64(len(xs))
	slope := (k*sxy - sx*sy) / (k*sxx - sx*sx)
	fitTau := 1 - slope
	if fitTau < 2.0 || fitTau > 3.3 {
		t.Fatalf("fitted tail exponent %.2f outside window [2.0, 3.3] (requested τ=%.1f)", fitTau, tau)
	}
}

// TestChungLuSmall exercises the generator at tiny sizes where the skip
// sampler degenerates to near-complete scans.
func TestChungLuSmall(t *testing.T) {
	for _, n := range []int{2, 3, 5, 17} {
		g := ChungLu(n, 2, 2.5, 3, par.NewRNG(uint64(n)))
		if g.N() != n || !g.Connected() {
			t.Fatalf("n=%d: got %d nodes, connected=%v", n, g.N(), g.Connected())
		}
		if minW, maxW := g.WeightRange(); minW < 1 || maxW > 3 {
			t.Fatalf("n=%d: weights [%g, %g] outside [1, 3]", n, minW, maxW)
		}
	}
}

// TestGridOfCliques pins the exact node and edge counts and the structural
// invariants: connectivity, clique rows, bridge weights.
func TestGridOfCliques(t *testing.T) {
	rows, cols, cliqueN := 4, 5, 6
	g := GridOfCliques(rows, cols, cliqueN, 16, par.NewRNG(7))
	wantN := rows * cols * cliqueN
	wantM := rows*cols*cliqueN*(cliqueN-1)/2 + rows*(cols-1) + cols*(rows-1)
	if g.N() != wantN || g.M() != wantM {
		t.Fatalf("got (%d nodes, %d edges), want (%d, %d)", g.N(), g.M(), wantN, wantM)
	}
	if !g.Connected() {
		t.Fatal("grid of cliques must be connected")
	}
	// Every node in cell (0,0) is adjacent to all its clique mates.
	for u := 0; u < cliqueN; u++ {
		for v := u + 1; v < cliqueN; v++ {
			w, ok := g.HasEdge(Node(u), Node(v))
			if !ok || w < 1 || w > 2 {
				t.Fatalf("clique edge {%d,%d}: ok=%v w=%g", u, v, ok, w)
			}
		}
	}
	// The bridge between cell (0,0) and cell (0,1) carries the bridge weight.
	if w, ok := g.HasEdge(0, Node(cliqueN)); !ok || w != 16 {
		t.Fatalf("bridge edge: ok=%v w=%g, want 16", ok, w)
	}
	// Interior cells have degree cliqueN−1 (+bridges only on first nodes).
	if d := g.Degree(Node(cliqueN + 1)); d != cliqueN-1 {
		t.Fatalf("non-gateway node degree %d, want %d", d, cliqueN-1)
	}
}

// TestGridOfCliquesSingletons covers the degenerate cliqueN=1 case, which
// must reduce to a plain grid.
func TestGridOfCliquesSingletons(t *testing.T) {
	g := GridOfCliques(3, 3, 1, 2, par.NewRNG(1))
	if g.N() != 9 || g.M() != 12 || !g.Connected() {
		t.Fatalf("3×3 grid: n=%d m=%d connected=%v", g.N(), g.M(), g.Connected())
	}
}
