package graph

import (
	"fmt"
	"os"
	"testing"

	"parmbf/internal/par"
)

// scaleSizes returns the vertex counts the scale benchmarks sweep. The
// default stops at 2^16 so a plain `make bench` stays quick; PARMBF_SCALE=1
// (set by `make bench-scale`) adds the 2^20 point of the million-node tier.
func scaleSizes() []int {
	if os.Getenv("PARMBF_SCALE") != "" {
		return []int{1 << 16, 1 << 20}
	}
	return []int{1 << 16}
}

// BenchmarkScaleChungLu measures power-law generation end to end (weight
// draw, Miller–Hagberg scan, connectivity repair, Freeze) — the realistic
// front door of the million-node pipeline.
func BenchmarkScaleChungLu(b *testing.B) {
	for _, n := range scaleSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := ChungLu(n, 8, 2.5, 100, par.NewRNG(42))
				if g.N() != n {
					b.Fatalf("n = %d", g.N())
				}
			}
		})
	}
}

// BenchmarkScaleGridOfCliques measures the structured generator at the same
// vertex counts (dense local clusters joined by a sparse bridge grid).
func BenchmarkScaleGridOfCliques(b *testing.B) {
	for _, n := range scaleSizes() {
		side := 1
		for side*side*16 < n {
			side *= 2
		}
		b.Run(fmt.Sprintf("n=%d", side*side*16), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := GridOfCliques(side, side, 16, 10, par.NewRNG(42))
				if g.N() != side*side*16 {
					b.Fatalf("n = %d", g.N())
				}
			}
		})
	}
}

// scaleEdgeBuilder returns a Builder holding a connected multigraph with 4n
// undirected edges (a path plus random chords, ~1/16 duplicated), the
// workload of the Freeze A/B pair below.
func scaleEdgeBuilder(n int) *Builder {
	rng := par.NewRNG(7)
	bld := NewBuilder(n)
	for v := 1; v < n; v++ {
		bld.Add(Node(v-1), Node(v), 1)
	}
	for i := 0; i < 3*n; i++ {
		u, v := Node(rng.Intn(n)), Node(rng.Intn(n))
		if u == v {
			continue
		}
		bld.Add(u, v, 1+rng.Float64())
		if i%16 == 0 {
			bld.Add(v, u, 1+rng.Float64()) // duplicate; dedup keeps the lighter
		}
	}
	return bld
}

// BenchmarkScaleFreezeSerial / BenchmarkScaleFreezeParallel are the paired
// A/B measurement of the CSR build: identical Builder contents, one frozen
// through the committed serial baseline and one through the per-worker
// counting scatter. Their outputs are byte-identical (see freeze_test.go);
// only the wall clock differs.
func BenchmarkScaleFreezeSerial(b *testing.B) {
	for _, n := range scaleSizes() {
		bld := scaleEdgeBuilder(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bld.freezeSerial()
			}
		})
	}
}

func BenchmarkScaleFreezeParallel(b *testing.B) {
	for _, n := range scaleSizes() {
		bld := scaleEdgeBuilder(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bld.freezeParallel()
			}
		})
	}
}
