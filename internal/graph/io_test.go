package graph

import (
	"bytes"
	"strings"
	"testing"

	"parmbf/internal/par"
)

func TestWriteReadRoundTrip(t *testing.T) {
	rng := par.NewRNG(1)
	g := RandomConnected(30, 70, 6, rng)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() {
		t.Fatalf("round trip changed sizes: %d/%d vs %d/%d", got.N(), got.M(), g.N(), g.M())
	}
	want := g.Edges()
	have := got.Edges()
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("edge %d: %v vs %v", i, have[i], want[i])
		}
	}
}

func TestReadAcceptsCommentsAndBlanks(t *testing.T) {
	src := `
# a triangle
p 3 3

e 0 1 1.5
# middle comment
e 1 2 2
e 0 2 0.25
`
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("parsed %d nodes %d edges", g.N(), g.M())
	}
	if w, _ := g.HasEdge(0, 2); w != 0.25 {
		t.Fatalf("weight = %v", w)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"no header", "e 0 1 1\n"},
		{"duplicate header", "p 2 0\np 2 0\n"},
		{"bad header", "p x y\n"},
		{"edge count mismatch", "p 3 2\ne 0 1 1\n"},
		{"loop", "p 2 1\ne 1 1 1\n"},
		{"negative weight", "p 2 1\ne 0 1 -2\n"},
		{"out of range", "p 2 1\ne 0 5 1\n"},
		{"garbage line", "p 2 1\nq 0 1 1\n"},
		{"empty", ""},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.src)); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
}
