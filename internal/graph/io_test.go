package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"parmbf/internal/par"
)

func TestWriteReadRoundTrip(t *testing.T) {
	rng := par.NewRNG(1)
	g := RandomConnected(30, 70, 6, rng)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() {
		t.Fatalf("round trip changed sizes: %d/%d vs %d/%d", got.N(), got.M(), g.N(), g.M())
	}
	want := g.Edges()
	have := got.Edges()
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("edge %d: %v vs %v", i, have[i], want[i])
		}
	}
}

// ioSeed drives the round-trip property test with random seeds and a random
// generator choice.
type ioSeed struct {
	Seed uint64
	Kind uint8
}

// Generate implements quick.Generator.
func (ioSeed) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(ioSeed{Seed: r.Uint64(), Kind: uint8(r.Intn(4))})
}

// TestQuickWriteReadRoundTrip is the property test of the edge-list format:
// for randomly generated graphs of every generator family, write → read
// reproduces the graph exactly (sizes, edge order, and weights — the %g
// encoding round-trips float64 exactly).
func TestQuickWriteReadRoundTrip(t *testing.T) {
	f := func(s ioSeed) bool {
		rng := par.NewRNG(s.Seed)
		n := 10 + int(s.Seed%20)
		var g *Graph
		switch s.Kind {
		case 0:
			g = RandomConnected(n, 3*n, 9, rng)
		case 1:
			g = GridGraph(3+int(s.Seed%4), 3+int(s.Seed%5), 7, rng)
		case 2:
			g = BarabasiAlbert(n, 3, 5, rng)
		default:
			g = RandomGeometric(n, 0.4, rng)
		}
		var buf bytes.Buffer
		if Write(&buf, g) != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return got.N() == g.N() && got.M() == g.M() &&
			reflect.DeepEqual(got.Edges(), g.Edges())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReadAcceptsCommentsAndBlanks(t *testing.T) {
	src := `
# a triangle
p 3 3

e 0 1 1.5
# middle comment
e 1 2 2
e 0 2 0.25
`
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("parsed %d nodes %d edges", g.N(), g.M())
	}
	if w, _ := g.HasEdge(0, 2); w != 0.25 {
		t.Fatalf("weight = %v", w)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"no header", "e 0 1 1\n"},
		{"duplicate header", "p 2 0\np 2 0\n"},
		{"bad header", "p x y\n"},
		{"edge count mismatch", "p 3 2\ne 0 1 1\n"},
		{"loop", "p 2 1\ne 1 1 1\n"},
		{"negative weight", "p 2 1\ne 0 1 -2\n"},
		{"out of range", "p 2 1\ne 0 5 1\n"},
		{"garbage line", "p 2 1\nq 0 1 1\n"},
		{"empty", ""},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.src)); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
}
