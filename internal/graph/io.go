package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file implements a plain-text edge-list format for graphs:
//
//	# comment lines and blank lines are ignored
//	p <n> <m>          — header: node and edge counts
//	e <u> <v> <w>      — one undirected edge per line, 0-based endpoints
//
// The format is a light variant of the DIMACS shortest-path format, kept
// self-describing so example inputs can be versioned alongside the code.

// Write serialises g in the edge-list format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p %d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "e %d %d %g\n", e.U, e.V, e.Weight); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a graph in the edge-list format. It validates the header
// against the frozen edge count (parallel edges collapse to the lightest)
// and re-applies all Graph invariants (positive weights, no loops, in-range
// endpoints).
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var b *Builder
	declared := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "p "):
			if b != nil {
				return nil, fmt.Errorf("line %d: duplicate header", lineNo)
			}
			var n, m int
			if _, err := fmt.Sscanf(line, "p %d %d", &n, &m); err != nil {
				return nil, fmt.Errorf("line %d: bad header %q: %v", lineNo, line, err)
			}
			if n < 0 || m < 0 {
				return nil, fmt.Errorf("line %d: negative sizes", lineNo)
			}
			b = NewBuilder(n)
			declared = m
		case strings.HasPrefix(line, "e "):
			if b == nil {
				return nil, fmt.Errorf("line %d: edge before header", lineNo)
			}
			var u, v int
			var w float64
			if _, err := fmt.Sscanf(line, "e %d %d %g", &u, &v, &w); err != nil {
				return nil, fmt.Errorf("line %d: bad edge %q: %v", lineNo, line, err)
			}
			if u < 0 || u >= b.N() || v < 0 || v >= b.N() || u == v ||
				!(w > 0) || math.IsInf(w, 0) { // !(w > 0) also rejects NaN
				return nil, fmt.Errorf("line %d: invalid edge %q", lineNo, line)
			}
			b.Add(Node(u), Node(v), w)
		default:
			return nil, fmt.Errorf("line %d: unrecognised line %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("missing header")
	}
	g := b.Freeze()
	if g.M() != declared {
		return nil, fmt.Errorf("header declares %d edges, found %d", declared, g.M())
	}
	return g, nil
}

// This file also implements the 9th DIMACS Implementation Challenge
// shortest-path format used by the public road-network instances:
//
//	c <comment>
//	p sp <n> <m>       — node count and directed-arc count
//	a <u> <v> <w>      — one directed arc per line, 1-based endpoints
//
// Road instances list both directions of every road segment, so an m-arc
// file freezes into an undirected graph with up to m/2 edges (Freeze
// collapses the reverse copies, keeping the lighter one on asymmetric
// pairs). ReadDIMACS is a streaming parser: it tokenises each line with a
// hand-rolled integer scanner instead of fmt.Sscanf, which keeps the load
// of a 2^20-node instance allocation-free per line and roughly 20× faster
// than the reflective scan — the difference between seconds and minutes on
// real road files.

// dimacsFields splits a line into at most 4 whitespace-separated byte
// fields without allocating. It returns the field count.
func dimacsFields(line []byte, out *[4][]byte) int {
	nf := 0
	i := 0
	for i < len(line) && nf < 4 {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
			i++
		}
		if i >= len(line) {
			break
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' && line[i] != '\r' {
			i++
		}
		out[nf] = line[start:i]
		nf++
	}
	// Trailing junk beyond 4 fields is a format error; signal with -1.
	for i < len(line) {
		if line[i] != ' ' && line[i] != '\t' && line[i] != '\r' {
			return -1
		}
		i++
	}
	return nf
}

// dimacsUint parses a non-negative decimal integer field.
func dimacsUint(f []byte) (int64, bool) {
	if len(f) == 0 || len(f) > 18 {
		return 0, false
	}
	var v int64
	for _, c := range f {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
	}
	return v, true
}

// dimacsWeight parses an arc weight: a plain integer on the fast path
// (every challenge instance), a float via strconv otherwise.
func dimacsWeight(f []byte) (float64, bool) {
	if v, ok := dimacsUint(f); ok {
		return float64(v), true
	}
	w, err := strconv.ParseFloat(string(f), 64)
	return w, err == nil
}

// ReadDIMACS parses a graph in DIMACS shortest-path (.gr) format. Arc
// endpoints are converted from 1-based to the library's 0-based nodes;
// self-loops are rejected, and reverse/parallel arcs collapse to the
// lightest copy in Freeze. The arc count declared by the header is an upper
// bound on lines, not validated against the frozen edge count (paired
// reverse arcs halve it). The returned graph is exactly what the file
// describes — callers needing the §1.2 connectivity assumption should check
// Connected themselves.
func ReadDIMACS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var b *Builder
	declared, seen := int64(-1), int64(0)
	lineNo := 0
	var fields [4][]byte
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		// Skip comments before tokenising: their free text is not bound by
		// the 4-field limit of the structured lines.
		i := 0
		for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
			i++
		}
		if i >= len(line) {
			continue
		}
		if line[i] == 'c' && (i+1 >= len(line) || line[i+1] == ' ' || line[i+1] == '\t' || line[i+1] == '\r') {
			continue
		}
		nf := dimacsFields(line, &fields)
		if nf <= 0 || len(fields[0]) != 1 {
			return nil, fmt.Errorf("line %d: malformed line", lineNo)
		}
		switch fields[0][0] {
		case 'p':
			if b != nil {
				return nil, fmt.Errorf("line %d: duplicate problem line", lineNo)
			}
			if nf != 4 || string(fields[1]) != "sp" {
				return nil, fmt.Errorf("line %d: problem line must be \"p sp <n> <m>\"", lineNo)
			}
			n, okN := dimacsUint(fields[2])
			m, okM := dimacsUint(fields[3])
			if !okN || !okM || n > int64(math.MaxInt32) {
				return nil, fmt.Errorf("line %d: bad problem sizes", lineNo)
			}
			if err := checkArcCapacity(int(m)); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			b = NewBuilder(int(n))
			b.edges = make([]Edge, 0, m)
			declared = m
		case 'a':
			if b == nil {
				return nil, fmt.Errorf("line %d: arc before problem line", lineNo)
			}
			if nf != 4 {
				return nil, fmt.Errorf("line %d: arc line must be \"a <u> <v> <w>\"", lineNo)
			}
			u, okU := dimacsUint(fields[1])
			v, okV := dimacsUint(fields[2])
			w, okW := dimacsWeight(fields[3])
			if !okU || !okV || !okW {
				return nil, fmt.Errorf("line %d: malformed arc", lineNo)
			}
			if u < 1 || v < 1 || u > int64(b.N()) || v > int64(b.N()) {
				return nil, fmt.Errorf("line %d: arc endpoint out of range 1..%d", lineNo, b.N())
			}
			if u == v {
				return nil, fmt.Errorf("line %d: self-loop at node %d", lineNo, u)
			}
			if !(w > 0) || math.IsInf(w, 0) { // !(w > 0) also rejects NaN
				return nil, fmt.Errorf("line %d: invalid arc weight", lineNo)
			}
			seen++
			if seen > declared {
				return nil, fmt.Errorf("line %d: more arcs than the %d declared", lineNo, declared)
			}
			b.Add(Node(u-1), Node(v-1), w)
		default:
			return nil, fmt.Errorf("line %d: unrecognised line type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("missing problem line")
	}
	return b.FreezeChecked()
}

// WriteDIMACS serialises g in DIMACS shortest-path format, emitting both
// directed halves of every edge (the road-instance convention, so a
// round-trip through ReadDIMACS reproduces g exactly).
func WriteDIMACS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "c parmbf graph: %d nodes, %d undirected edges\n", g.N(), g.M()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "p sp %d %d\n", g.N(), 2*g.M()); err != nil {
		return err
	}
	for u := 0; u < g.N(); u++ {
		for _, a := range g.Neighbors(Node(u)) {
			if _, err := fmt.Fprintf(bw, "a %d %d %g\n", u+1, a.To+1, a.Weight); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
