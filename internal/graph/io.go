package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"
)

// This file implements a plain-text edge-list format for graphs:
//
//	# comment lines and blank lines are ignored
//	p <n> <m>          — header: node and edge counts
//	e <u> <v> <w>      — one undirected edge per line, 0-based endpoints
//
// The format is a light variant of the DIMACS shortest-path format, kept
// self-describing so example inputs can be versioned alongside the code.

// Write serialises g in the edge-list format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p %d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "e %d %d %g\n", e.U, e.V, e.Weight); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a graph in the edge-list format. It validates the header
// against the frozen edge count (parallel edges collapse to the lightest)
// and re-applies all Graph invariants (positive weights, no loops, in-range
// endpoints).
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var b *Builder
	declared := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "p "):
			if b != nil {
				return nil, fmt.Errorf("line %d: duplicate header", lineNo)
			}
			var n, m int
			if _, err := fmt.Sscanf(line, "p %d %d", &n, &m); err != nil {
				return nil, fmt.Errorf("line %d: bad header %q: %v", lineNo, line, err)
			}
			if n < 0 || m < 0 {
				return nil, fmt.Errorf("line %d: negative sizes", lineNo)
			}
			b = NewBuilder(n)
			declared = m
		case strings.HasPrefix(line, "e "):
			if b == nil {
				return nil, fmt.Errorf("line %d: edge before header", lineNo)
			}
			var u, v int
			var w float64
			if _, err := fmt.Sscanf(line, "e %d %d %g", &u, &v, &w); err != nil {
				return nil, fmt.Errorf("line %d: bad edge %q: %v", lineNo, line, err)
			}
			if u < 0 || u >= b.N() || v < 0 || v >= b.N() || u == v ||
				!(w > 0) || math.IsInf(w, 0) { // !(w > 0) also rejects NaN
				return nil, fmt.Errorf("line %d: invalid edge %q", lineNo, line)
			}
			b.Add(Node(u), Node(v), w)
		default:
			return nil, fmt.Errorf("line %d: unrecognised line %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("missing header")
	}
	g := b.Freeze()
	if g.M() != declared {
		return nil, fmt.Errorf("header declares %d edges, found %d", declared, g.M())
	}
	return g, nil
}
