package graph

import (
	"math"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// Matrix is a dense n×n matrix over the min-plus semiring, row-major.
// Matrix powers compute h-hop distances: (A^h)_{vw} = dist^h(v, w, G)
// (§1.2, distance product).
type Matrix struct {
	N    int
	Data []float64
}

// NewMatrix returns an n×n matrix filled with ∞ off the diagonal and 0 on
// it — the multiplicative identity of the matrix semiring.
func NewMatrix(n int) *Matrix {
	m := &Matrix{N: n, Data: make([]float64, n*n)}
	for i := range m.Data {
		m.Data[i] = semiring.Inf
	}
	for v := 0; v < n; v++ {
		m.Data[v*n+v] = 0
	}
	return m
}

// At returns m[v][w].
func (m *Matrix) At(v, w int) float64 { return m.Data[v*m.N+w] }

// Set assigns m[v][w] = d.
func (m *Matrix) Set(v, w int, d float64) { m.Data[v*m.N+w] = d }

// AdjacencyMatrix returns the min-plus adjacency matrix of Equation (1.4):
// 0 on the diagonal, ω(v,w) for edges, ∞ otherwise.
func AdjacencyMatrix(g *Graph) *Matrix {
	n := g.N()
	m := NewMatrix(n)
	for v := 0; v < n; v++ {
		for _, a := range g.Neighbors(Node(v)) {
			m.Set(v, int(a.To), a.Weight)
		}
	}
	return m
}

// MinPlusSquare returns the distance product A ⊙ A, parallelised over rows.
// tracker, if non-nil, is charged Θ(n³) work and O(log n)-equivalent depth
// per squaring (the paper's fixpoint iteration on matrices, §1.1).
func MinPlusSquare(a *Matrix, tracker *par.Tracker) *Matrix {
	n := a.N
	out := &Matrix{N: n, Data: make([]float64, n*n)}
	par.ForEach(n, func(v int) {
		row := a.Data[v*n : (v+1)*n]
		dst := out.Data[v*n : (v+1)*n]
		for w := 0; w < n; w++ {
			best := semiring.Inf
			col := w
			for u := 0; u < n; u++ {
				if d := row[u] + a.Data[u*n+col]; d < best {
					best = d
				}
			}
			dst[w] = best
		}
	})
	tracker.AddPhase(int64(n)*int64(n)*int64(n), 1)
	return out
}

// APSPMatrixSquaring computes exact all-pairs distances by repeated squaring
// of the adjacency matrix: ⌈log₂ n⌉ squarings reach the fixpoint (§1.1).
// This is the Θ(n³ log n)-work, polylog-depth baseline that the oracle-based
// approach of §6 undercuts on sparse graphs.
func APSPMatrixSquaring(g *Graph, tracker *par.Tracker) *Matrix {
	a := AdjacencyMatrix(g)
	n := g.N()
	for span := 1; span < n-1; span *= 2 {
		next := MinPlusSquare(a, tracker)
		a = next
	}
	return a
}

// APSPDijkstra computes exact all-pairs distances with one Dijkstra per
// node, parallelised over sources. It is the work-efficient but
// depth-Ω(SPD) ground truth used by the tests and stretch measurements.
func APSPDijkstra(g *Graph) *Matrix {
	n := g.N()
	m := &Matrix{N: n, Data: make([]float64, n*n)}
	par.ForEach(n, func(v int) {
		res := Dijkstra(g, Node(v))
		copy(m.Data[v*n:(v+1)*n], res.Dist)
	})
	return m
}

// IsMetric verifies that the matrix is a metric on the reachable pairs:
// symmetric, zero exactly on the diagonal, and satisfying the triangle
// inequality up to floating-point slack eps. It returns false for the first
// violated constraint. The FRT construction crucially depends on this
// property (Observation 1.1 explains why approximate distances are not
// enough).
func (m *Matrix) IsMetric(eps float64) bool {
	n := m.N
	for v := 0; v < n; v++ {
		if m.At(v, v) != 0 {
			return false
		}
		for w := 0; w < n; w++ {
			a, b := m.At(v, w), m.At(w, v)
			if semiring.IsInf(a) != semiring.IsInf(b) {
				return false
			}
			if !semiring.IsInf(a) && math.Abs(a-b) > eps {
				return false
			}
			if v != w && m.At(v, w) <= 0 {
				return false
			}
		}
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			duv := m.At(u, v)
			if semiring.IsInf(duv) {
				continue
			}
			for w := 0; w < n; w++ {
				if m.At(u, w) > duv+m.At(v, w)+eps {
					return false
				}
			}
		}
	}
	return true
}
