package graph

import (
	"testing"

	"parmbf/internal/par"
)

func benchGraph(b *testing.B, n, m int) *Graph {
	b.Helper()
	return RandomConnected(n, m, 8, par.NewRNG(1))
}

func BenchmarkDijkstra(b *testing.B) {
	g := benchGraph(b, 1024, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, Node(i%g.N()))
	}
}

func BenchmarkMultiSourceDijkstra(b *testing.B) {
	g := benchGraph(b, 1024, 4096)
	sources := []Node{1, 100, 500, 900}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MultiSourceDijkstra(g, sources)
	}
}

func BenchmarkBellmanFord10Hops(b *testing.B) {
	g := benchGraph(b, 1024, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BellmanFord(g, Node(i%g.N()), 10)
	}
}

func BenchmarkAPSPDijkstra256(b *testing.B) {
	g := benchGraph(b, 256, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		APSPDijkstra(g)
	}
}

func BenchmarkMinPlusSquare128(b *testing.B) {
	g := benchGraph(b, 128, 512)
	a := AdjacencyMatrix(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinPlusSquare(a, nil)
	}
}

func BenchmarkSPDFrom(b *testing.B) {
	g := benchGraph(b, 512, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SPDFrom(g, Node(i%g.N()))
	}
}

func BenchmarkRandomConnected(b *testing.B) {
	rng := par.NewRNG(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RandomConnected(512, 2048, 8, rng)
	}
}
