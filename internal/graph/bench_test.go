package graph

import (
	"container/heap"
	"testing"

	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

func benchGraph(b *testing.B, n, m int) *Graph {
	b.Helper()
	return RandomConnected(n, m, 8, par.NewRNG(1))
}

// boxedItem/boxedPQ reproduce the seed implementation's container/heap +
// interface{} priority queue, kept here as the baseline the 4-ary index
// heap (Heap4) is benchmarked and differentially tested against.
type boxedItem struct {
	node Node
	dist float64
}

type boxedPQ []boxedItem

func (q boxedPQ) Len() int            { return len(q) }
func (q boxedPQ) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q boxedPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *boxedPQ) Push(x interface{}) { *q = append(*q, x.(boxedItem)) }
func (q *boxedPQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// boxedDijkstra is the seed Dijkstra (lazy-deletion binary heap with boxed
// entries), the before side of the heap benchmark.
func boxedDijkstra(g *Graph, source Node) []float64 {
	n := g.N()
	dist := make([]float64, n)
	for v := range dist {
		dist[v] = semiring.Inf
	}
	dist[source] = 0
	done := make([]bool, n)
	q := boxedPQ{{node: source, dist: 0}}
	for len(q) > 0 {
		it := heap.Pop(&q).(boxedItem)
		v := it.node
		if done[v] {
			continue
		}
		done[v] = true
		for _, a := range g.Neighbors(v) {
			if nd := dist[v] + a.Weight; nd < dist[a.To] {
				dist[a.To] = nd
				heap.Push(&q, boxedItem{node: a.To, dist: nd})
			}
		}
	}
	return dist
}

func BenchmarkHeapBoxedDijkstra(b *testing.B) {
	g := benchGraph(b, 1024, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		boxedDijkstra(g, Node(i%g.N()))
	}
}

func BenchmarkHeap4Dijkstra(b *testing.B) {
	g := benchGraph(b, 1024, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, Node(i%g.N()))
	}
}

func BenchmarkBuild4096(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RandomConnected(4096, 65536, 8, par.NewRNG(1))
	}
}

// shuffledEdges4096 is a fixed edge list in random order, the input of the
// pure-construction benchmarks below.
func shuffledEdges4096(b *testing.B) []Edge {
	b.Helper()
	edges := RandomConnected(4096, 65536, 8, par.NewRNG(1)).Edges()
	rng := par.NewRNG(2)
	for i := len(edges) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		edges[i], edges[j] = edges[j], edges[i]
	}
	return edges
}

// seedStyleBuild replicates the seed's mutable [][]Arc construction — an
// O(deg) duplicate scan per insert — as the before side of the
// construction benchmark.
func seedStyleBuild(n int, edges []Edge) [][]Arc {
	adj := make([][]Arc, n)
	for _, e := range edges {
		dup := false
		for _, a := range adj[e.U] {
			if a.To == e.V {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		adj[e.U] = append(adj[e.U], Arc{To: e.V, Weight: e.Weight})
		adj[e.V] = append(adj[e.V], Arc{To: e.U, Weight: e.Weight})
	}
	return adj
}

func BenchmarkConstructSeedStyle4096(b *testing.B) {
	edges := shuffledEdges4096(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seedStyleBuild(4096, edges)
	}
}

func BenchmarkConstructCSR4096(b *testing.B) {
	edges := shuffledEdges4096(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd := NewBuilder(4096)
		for _, e := range edges {
			bd.Add(e.U, e.V, e.Weight)
		}
		bd.Freeze()
	}
}

func BenchmarkDijkstra4096(b *testing.B) {
	g := RandomConnected(4096, 65536, 8, par.NewRNG(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, Node(i%g.N()))
	}
}

func BenchmarkEdges4096(b *testing.B) {
	g := RandomConnected(4096, 65536, 8, par.NewRNG(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Edges()
	}
}

func BenchmarkFreeze4096(b *testing.B) {
	g := RandomConnected(4096, 65536, 8, par.NewRNG(1))
	bd := g.Builder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd.Freeze()
	}
}

func BenchmarkDijkstra(b *testing.B) {
	g := benchGraph(b, 1024, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, Node(i%g.N()))
	}
}

func BenchmarkMultiSourceDijkstra(b *testing.B) {
	g := benchGraph(b, 1024, 4096)
	sources := []Node{1, 100, 500, 900}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MultiSourceDijkstra(g, sources)
	}
}

func BenchmarkBellmanFord10Hops(b *testing.B) {
	g := benchGraph(b, 1024, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BellmanFord(g, Node(i%g.N()), 10)
	}
}

func BenchmarkAPSPDijkstra256(b *testing.B) {
	g := benchGraph(b, 256, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		APSPDijkstra(g)
	}
}

func BenchmarkMinPlusSquare128(b *testing.B) {
	g := benchGraph(b, 128, 512)
	a := AdjacencyMatrix(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinPlusSquare(a, nil)
	}
}

func BenchmarkSPDFrom(b *testing.B) {
	g := benchGraph(b, 512, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SPDFrom(g, Node(i%g.N()))
	}
}

func BenchmarkRandomConnected(b *testing.B) {
	rng := par.NewRNG(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RandomConnected(512, 2048, 8, rng)
	}
}
