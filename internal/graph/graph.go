// Package graph provides the weighted-graph substrate of the library:
// an immutable compressed-sparse-row (CSR) adjacency structure, exact
// shortest-path algorithms (Dijkstra on a non-boxing 4-ary index heap,
// Bellman-Ford, APSP by repeated squaring over the min-plus semiring),
// shortest-path-diameter computation, and the graph generators used by the
// experiment suite.
//
// # Builder/freeze lifecycle
//
// Graphs are built in two phases. A Builder collects edges (duplicates and
// reversed insertions welcome) in O(1) amortised per edge; Freeze then
// sorts, collapses parallel edges to the lightest copy, and lays the arcs
// out in one flat array in O(n + m) total:
//
//	b := graph.NewBuilder(n)
//	b.Add(u, v, w)        // any order, duplicates allowed
//	g := b.Freeze()       // immutable from here on
//
// A frozen Graph stores one arc slice shared by all nodes: Neighbors(v)
// returns the subslice arcs[rowStart[v]:rowStart[v+1]], sorted by target.
// Nothing can mutate a frozen graph, so any number of goroutines — in
// particular the K concurrent tree samplers of the FRT Embedder — can share
// one Graph with zero synchronisation and zero copies, and every traversal
// walks a contiguous, cache-friendly array instead of chasing per-node
// slice headers. HasEdge and Weight are binary searches; Edges is a single
// linear pass (the arcs are already sorted).
//
// Following §1.2 of Friedrichs & Lenzen, graphs are undirected, connected,
// loop-free, with positive edge weights whose maximum/minimum ratio is
// polynomially bounded.
package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// Node identifies a vertex; nodes are 0-based dense integers.
type Node = semiring.NodeID

// Arc is one directed half of an undirected edge in an adjacency row.
type Arc struct {
	To     Node
	Weight float64
}

// Edge is an undirected weighted edge with U < V.
type Edge struct {
	U, V   Node
	Weight float64
}

// Graph is an undirected weighted graph in compressed-sparse-row form. It
// is immutable: build one with NewBuilder/Freeze (or New for an edgeless
// graph) and share it freely across goroutines.
type Graph struct {
	// rowStart has length n+1; the arcs leaving v occupy
	// arcs[rowStart[v]:rowStart[v+1]], sorted by To.
	rowStart []int32
	// arcs is the flat arc array, length 2m.
	arcs []Arc
	m    int
	// symmetric records whether every arc u→v has a reverse arc v→u of
	// equal weight; Transpose/InNeighbors then answer in-neighbor queries
	// without any reversed copy. Builder-frozen graphs are symmetric by
	// construction (both halves of each undirected edge are inserted, and
	// dedup keeps the same lightest weight in both directions) — the
	// property tests assert this against detectSymmetric, so a directed
	// construction path added later cannot silently inherit the flag.
	symmetric bool
	// transpose caches the lazily built reversed-CSR view of an asymmetric
	// graph (nil until the first Transpose call; unused when symmetric).
	transpose atomic.Pointer[Graph]
}

// New returns an immutable edgeless graph on n nodes. To build a graph with
// edges, use NewBuilder.
func New(n int) *Graph {
	return &Graph{rowStart: make([]int32, n+1), symmetric: true}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.rowStart) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Neighbors returns the arcs leaving v as a subslice of the graph's flat
// arc array, sorted by target. The caller must not modify it.
func (g *Graph) Neighbors(v Node) []Arc { return g.arcs[g.rowStart[v]:g.rowStart[v+1]] }

// Degree returns the degree of v.
func (g *Graph) Degree(v Node) int { return int(g.rowStart[v+1] - g.rowStart[v]) }

// NeighborIndex returns the index i such that Neighbors(v)[i].To == w, or
// -1 if {v,w} is not an edge, by binary search over the sorted row.
func (g *Graph) NeighborIndex(v, w Node) int {
	row := g.Neighbors(v)
	i := sort.Search(len(row), func(i int) bool { return row[i].To >= w })
	if i < len(row) && row[i].To == w {
		return i
	}
	return -1
}

// HasEdge reports whether {u, v} is an edge and returns its weight. It is a
// binary search over u's sorted adjacency row.
func (g *Graph) HasEdge(u, v Node) (float64, bool) {
	if i := g.NeighborIndex(u, v); i >= 0 {
		return g.Neighbors(u)[i].Weight, true
	}
	return semiring.Inf, false
}

// Weight returns ω(u,v) in the convention of §1.2: 0 for u == v, the edge
// weight if {u,v} ∈ E, and ∞ otherwise.
func (g *Graph) Weight(u, v Node) float64 {
	if u == v {
		return 0
	}
	w, _ := g.HasEdge(u, v)
	return w
}

// Edges returns all undirected edges with U < V, sorted by (U, V). Since
// the CSR rows are sorted by target, this is a single linear pass with one
// allocation and no per-call sort.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.N(); u++ {
		for _, a := range g.Neighbors(Node(u)) {
			if Node(u) < a.To {
				out = append(out, Edge{U: Node(u), V: a.To, Weight: a.Weight})
			}
		}
	}
	return out
}

// Clone returns a deep copy of g: two flat copies. Since graphs are
// immutable, sharing g itself is equally safe; Clone exists for callers
// that want independent backing arrays.
func (g *Graph) Clone() *Graph {
	h := &Graph{
		rowStart:  make([]int32, len(g.rowStart)),
		arcs:      make([]Arc, len(g.arcs)),
		m:         g.m,
		symmetric: g.symmetric,
	}
	copy(h.rowStart, g.rowStart)
	copy(h.arcs, g.arcs)
	return h
}

// Builder returns a new Builder pre-seeded with g's edges — the idiom for
// "g plus extra edges" now that graphs are immutable (hop sets, overlays,
// the live-update extend-and-refreeze loop). The edge slice is allocated
// once with headroom for the edges the caller is about to Add and filled
// straight off the CSR rows, so the hot update path pays neither the
// intermediate Edges() allocation nor O(m) append regrowth copies.
func (g *Graph) Builder() *Builder {
	b := NewBuilder(g.N())
	b.edges = make([]Edge, 0, g.m+g.m/8+16)
	for u := 0; u < g.N(); u++ {
		for _, a := range g.Neighbors(Node(u)) {
			if Node(u) < a.To {
				b.edges = append(b.edges, Edge{U: Node(u), V: a.To, Weight: a.Weight})
			}
		}
	}
	return b
}

// Symmetric reports whether every arc u→v is matched by a reverse arc v→u
// of equal weight. Builder-frozen (undirected) graphs always are.
func (g *Graph) Symmetric() bool { return g.symmetric }

// Transpose returns the graph with every arc reversed. For a symmetric
// graph — the invariant every Builder-frozen graph satisfies — the arc set
// is its own reversal and Transpose returns g itself, so in-neighbor queries
// cost nothing extra. Otherwise the reversed CSR is built once, on first
// use, and cached; the transpose's own Transpose points back at g.
func (g *Graph) Transpose() *Graph {
	if g.symmetric {
		return g
	}
	if t := g.transpose.Load(); t != nil {
		return t
	}
	t := g.buildTranspose()
	t.transpose.Store(g)
	// Another goroutine may have raced the build; keep whichever view was
	// published first so every caller shares one transpose.
	g.transpose.CompareAndSwap(nil, t)
	return g.transpose.Load()
}

// InNeighbors returns the arcs entering v: one Arc{To: w, Weight: ω(w,v)}
// per arc w→v, sorted by source. It is the row of v in the transpose view —
// identical to Neighbors(v) on symmetric graphs — and is what the frontier
// engine walks to find the nodes whose next state a change at v can affect.
// The caller must not modify the returned slice.
func (g *Graph) InNeighbors(v Node) []Arc { return g.Transpose().Neighbors(v) }

// buildTranspose reverses the arc array with a stable counting scatter by
// target; stability keeps every transposed row sorted by source, preserving
// the CSR ordering invariant.
func (g *Graph) buildTranspose() *Graph {
	n := g.N()
	cnt := make([]int32, n+1)
	for _, a := range g.arcs {
		cnt[a.To+1]++
	}
	for v := 0; v < n; v++ {
		cnt[v+1] += cnt[v]
	}
	rowStart := append([]int32(nil), cnt...)
	arcs := make([]Arc, len(g.arcs))
	next := cnt[:n]
	for u := 0; u < n; u++ {
		for _, a := range g.arcs[g.rowStart[u]:g.rowStart[u+1]] {
			arcs[next[a.To]] = Arc{To: Node(u), Weight: a.Weight}
			next[a.To]++
		}
	}
	return &Graph{rowStart: rowStart, arcs: arcs, m: g.m}
}

// detectSymmetric reports whether every arc has an equal-weight reverse
// arc, by binary search over the target's sorted row — O(m log Δ). It is
// the reference predicate behind the symmetric flag: Freeze sets the flag
// by construction, and the transpose property tests assert the two agree.
func detectSymmetric(rowStart []int32, arcs []Arc, n int) bool {
	for u := 0; u < n; u++ {
		for _, a := range arcs[rowStart[u]:rowStart[u+1]] {
			row := arcs[rowStart[a.To]:rowStart[a.To+1]]
			i := sort.Search(len(row), func(i int) bool { return row[i].To >= Node(u) })
			if i >= len(row) || row[i].To != Node(u) || row[i].Weight != a.Weight {
				return false
			}
		}
	}
	return true
}

// WeightRange returns the minimum and maximum edge weight. It panics on an
// edgeless graph.
func (g *Graph) WeightRange() (min, max float64) {
	if g.m == 0 {
		panic("graph: WeightRange on edgeless graph")
	}
	min, max = semiring.Inf, 0
	for _, a := range g.arcs {
		if a.Weight < min {
			min = a.Weight
		}
		if a.Weight > max {
			max = a.Weight
		}
	}
	return min, max
}

// Connected reports whether g is connected (the standing assumption of
// §1.2).
func (g *Graph) Connected() bool {
	n := g.N()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []Node{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.Neighbors(v) {
			if !seen[a.To] {
				seen[a.To] = true
				count++
				stack = append(stack, a.To)
			}
		}
	}
	return count == n
}

// Builder accumulates edges for a Graph. Add appends in O(1) amortised —
// there is no per-insert duplicate scan — and Freeze produces the immutable
// CSR graph in O(n + m). A Builder may keep accumulating after a Freeze;
// each Freeze snapshots the edges added so far.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a Builder for a graph on n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// N returns the number of nodes of the graph under construction.
func (b *Builder) N() int { return b.n }

// Add records the undirected edge {u, v} with weight w and returns the
// Builder for chaining. It panics on loops, non-positive weights, or
// out-of-range endpoints. Parallel edges are allowed and collapsed to the
// lightest copy by Freeze (the only one shortest-path algorithms can use).
func (b *Builder) Add(u, v Node, w float64) *Builder {
	if u == v {
		panic(fmt.Sprintf("graph: loop at node %d", u))
	}
	if !(w > 0) || semiring.IsInf(w) { // !(w > 0) also rejects NaN
		panic(fmt.Sprintf("graph: invalid edge weight %v", w))
	}
	if int(u) < 0 || int(u) >= b.n || int(v) < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range n=%d", u, v, b.n))
	}
	b.edges = append(b.edges, Edge{U: u, V: v, Weight: w})
	return b
}

// AddEdge records the undirected edge {u, v} with weight w.
//
// Deprecated: AddEdge is a shim easing migration from the old mutable
// Graph API; new code should use Add (chainable) instead.
func (b *Builder) AddEdge(u, v Node, w float64) { b.Add(u, v, w) }

// halfArc is a directed arc with an explicit source, the unit of the
// Freeze radix scatter.
type halfArc struct {
	from, to Node
	w        float64
}

// maxFreezeEdges is the largest edge count Freeze can lay out: each edge
// becomes two directed halves and row offsets are int32, so the 2m arc
// indices must fit in [0, MaxInt32].
const maxFreezeEdges = math.MaxInt32 / 2

// checkArcCapacity returns an error when edges undirected edges would
// produce a directed-arc count outside the int32 CSR offset range. It is
// factored out of FreezeChecked so the overflow guard can be unit-tested
// with a mocked count instead of 2^31 real edges.
func checkArcCapacity(edges int) error {
	if edges > maxFreezeEdges {
		return fmt.Errorf("graph: %d edges produce %d directed arcs, exceeding the int32 CSR offset range", edges, 2*edges)
	}
	return nil
}

// freezeParallelMin is the directed-arc count below which the serial
// scatter wins: the parallel path pays per-worker count arrays and two
// barrier rounds, which only amortise on large arc arrays.
const freezeParallelMin = 1 << 17

// Freeze sorts and dedups the accumulated edges and returns the immutable
// CSR graph. Sorting is a two-pass stable counting scatter — bucket the 2m
// directed halves by target, then by source — which orders the arc array
// by (from, to) in O(m + n) with purely sequential writes and no
// comparator calls; a final in-place compaction collapses parallel edges
// to the lightest copy. Large inputs run the scatter in parallel
// (per-worker count arrays merged by prefix sums over contiguous edge
// chunks), producing a byte-identical graph at any par.MaxProcs. Freeze
// panics when the arc count overflows the int32 offset range; use
// FreezeChecked to get the error instead.
func (b *Builder) Freeze() *Graph {
	g, err := b.FreezeChecked()
	if err != nil {
		panic(err.Error())
	}
	return g
}

// FreezeChecked is Freeze returning an error instead of panicking when the
// accumulated edges exceed the int32 CSR offset capacity (≥ 2^30 edges).
// Callers ingesting externally sized inputs (file loaders, generators with
// user-chosen parameters) should prefer it over Freeze.
func (b *Builder) FreezeChecked() (*Graph, error) {
	if err := checkArcCapacity(len(b.edges)); err != nil {
		return nil, err
	}
	if 2*len(b.edges) >= freezeParallelMin && par.MaxProcs > 1 {
		return b.freezeParallel(), nil
	}
	return b.freezeSerial(), nil
}

// freezeSerial is the single-threaded reference layout, kept both as the
// small-input fast path and as the committed baseline the parallel scatter
// is benchmarked and differentially tested against.
func (b *Builder) freezeSerial() *Graph {
	n := b.n
	m2 := 2 * len(b.edges)
	// Pass 1: stable counting scatter by target.
	cnt := make([]int32, n+1)
	for _, e := range b.edges {
		cnt[e.U+1]++
		cnt[e.V+1]++
	}
	for v := 0; v < n; v++ {
		cnt[v+1] += cnt[v]
	}
	rowStart := append([]int32(nil), cnt...) // degree prefix sums, reused in pass 2
	byTo := make([]halfArc, m2)
	for _, e := range b.edges {
		byTo[cnt[e.V]] = halfArc{from: e.U, to: e.V, w: e.Weight}
		cnt[e.V]++
		byTo[cnt[e.U]] = halfArc{from: e.V, to: e.U, w: e.Weight}
		cnt[e.U]++
	}
	// Pass 2: stable counting scatter by source. Stability makes each row
	// sorted by target, so the arc array is ordered by (from, to).
	arcs := make([]Arc, m2)
	next := cnt[:n]
	copy(next, rowStart[:n])
	for _, h := range byTo {
		arcs[next[h.from]] = Arc{To: h.to, Weight: h.w}
		next[h.from]++
	}
	// Compact forward, keeping the lightest parallel edge. The write cursor
	// never passes the current row's start, so this is safe in place.
	finalRow := make([]int32, n+1)
	w := 0
	for v := 0; v < n; v++ {
		finalRow[v] = int32(w)
		last := Node(-1)
		for _, a := range arcs[rowStart[v]:rowStart[v+1]] {
			if a.To == last {
				if a.Weight < arcs[w-1].Weight {
					arcs[w-1] = a
				}
				continue
			}
			last = a.To
			arcs[w] = a
			w++
		}
	}
	finalRow[n] = int32(w)
	if w < m2 {
		// Duplicates were collapsed: re-slice to exact size so a long-lived
		// graph does not pin the oversized pre-dedup backing array.
		arcs = append(make([]Arc, 0, w), arcs[:w]...)
	}
	// Freeze output is symmetric by construction: both directed halves of
	// every edge are inserted, and the per-row dedup keeps the lightest of
	// the same parallel-weight multiset in each direction. The invariant is
	// asserted against detectSymmetric by the transpose property tests
	// rather than re-derived on every Freeze (an O(m log Δ) scan that would
	// tax all graph construction for a provable constant).
	return &Graph{rowStart: finalRow, arcs: arcs, m: w / 2, symmetric: true}
}

// freezeParallel is the multi-worker counting scatter. Each worker owns a
// contiguous chunk of the edge (then half-arc) stream and a private count
// array; a prefix sum across workers per bucket assigns each worker a
// disjoint write window positioned after every lower-indexed worker's
// items, which reproduces the serial stable order exactly — the frozen
// graph is byte-identical to freezeSerial's at any par.MaxProcs. The dedup
// compaction runs per row (each row's write region is disjoint), followed
// by a parallel gather into the exact-size arc array.
func (b *Builder) freezeParallel() *Graph {
	n := b.n
	mE := len(b.edges)
	m2 := 2 * mE
	procs := par.MaxProcs
	if procs > mE {
		procs = mE
	}

	// chunkOf splits a stream of k items into procs contiguous chunks.
	chunkOf := func(w, k int) (int, int) { return w * k / procs, (w + 1) * k / procs }

	// Per-worker count/cursor arrays, one bucket per node. The same backing
	// is reused across both scatter passes.
	cw := make([][]int32, procs)
	for w := range cw {
		cw[w] = make([]int32, n)
	}
	total := make([]int32, n)

	// countToOffsets turns the per-worker bucket counts in cw into absolute
	// write cursors: global degree prefix sums into rowStart, then an
	// exclusive scan across workers within each bucket.
	countToOffsets := func() []int32 {
		par.ForEachChunk(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				var s int32
				for w := 0; w < procs; w++ {
					s += cw[w][v]
				}
				total[v] = s
			}
		})
		rowStart := make([]int32, n+1)
		for v := 0; v < n; v++ {
			rowStart[v+1] = rowStart[v] + total[v]
		}
		par.ForEachChunk(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				run := rowStart[v]
				for w := 0; w < procs; w++ {
					c := cw[w][v]
					cw[w][v] = run
					run += c
				}
			}
		})
		return rowStart
	}

	// Pass 1: stable counting scatter of the 2m directed halves by target.
	var wg sync.WaitGroup
	runWorkers := func(body func(w int)) {
		wg.Add(procs)
		for w := 0; w < procs; w++ {
			go func(w int) {
				defer wg.Done()
				body(w)
			}(w)
		}
		wg.Wait()
	}
	runWorkers(func(w int) {
		lo, hi := chunkOf(w, mE)
		c := cw[w]
		for _, e := range b.edges[lo:hi] {
			c[e.U]++
			c[e.V]++
		}
	})
	rowStart := countToOffsets()
	byTo := make([]halfArc, m2)
	runWorkers(func(w int) {
		lo, hi := chunkOf(w, mE)
		next := cw[w]
		for _, e := range b.edges[lo:hi] {
			byTo[next[e.V]] = halfArc{from: e.U, to: e.V, w: e.Weight}
			next[e.V]++
			byTo[next[e.U]] = halfArc{from: e.V, to: e.U, w: e.Weight}
			next[e.U]++
		}
	})

	// Pass 2: stable counting scatter by source. Per-node half counts by
	// source equal the counts by target (each edge contributes one half from
	// and one half to each endpoint), so rowStart carries over; only the
	// per-worker splits are recounted over the byTo chunks.
	runWorkers(func(w int) {
		clear(cw[w])
		lo, hi := chunkOf(w, m2)
		c := cw[w]
		for i := lo; i < hi; i++ {
			c[byTo[i].from]++
		}
	})
	countToOffsets()
	arcs := make([]Arc, m2)
	runWorkers(func(w int) {
		lo, hi := chunkOf(w, m2)
		next := cw[w]
		for i := lo; i < hi; i++ {
			h := byTo[i]
			arcs[next[h.from]] = Arc{To: h.to, Weight: h.w}
			next[h.from]++
		}
	})

	// Per-row in-place dedup: within each row the write cursor trails the
	// read cursor, and rows are disjoint, so every row compacts to its own
	// start concurrently. kept[v] is reused from total.
	kept := total
	par.ForEachChunk(n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			row := arcs[rowStart[v]:rowStart[v+1]]
			k := 0
			last := Node(-1)
			for _, a := range row {
				if a.To == last {
					if a.Weight < row[k-1].Weight {
						row[k-1] = a
					}
					continue
				}
				last = a.To
				row[k] = a
				k++
			}
			kept[v] = int32(k)
		}
	})
	finalRow := make([]int32, n+1)
	for v := 0; v < n; v++ {
		finalRow[v+1] = finalRow[v] + kept[v]
	}
	w := int(finalRow[n])
	if w < m2 {
		// Duplicates were collapsed: gather the compacted rows into an
		// exact-size array so the graph does not pin oversized backing.
		dense := make([]Arc, w)
		par.ForEachChunk(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				copy(dense[finalRow[v]:finalRow[v+1]], arcs[rowStart[v]:rowStart[v]+kept[v]])
			}
		})
		arcs = dense
	}
	return &Graph{rowStart: finalRow, arcs: arcs, m: w / 2, symmetric: true}
}
