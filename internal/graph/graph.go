// Package graph provides the weighted-graph substrate of the library:
// adjacency structures, exact shortest-path algorithms (Dijkstra,
// Bellman-Ford, APSP by repeated squaring over the min-plus semiring),
// shortest-path-diameter computation, and the graph generators used by the
// experiment suite.
//
// Following §1.2 of Friedrichs & Lenzen, graphs are undirected, connected,
// loop-free, with positive edge weights whose maximum/minimum ratio is
// polynomially bounded.
package graph

import (
	"fmt"
	"sort"

	"parmbf/internal/semiring"
)

// Node identifies a vertex; nodes are 0-based dense integers.
type Node = semiring.NodeID

// Arc is one directed half of an undirected edge in an adjacency list.
type Arc struct {
	To     Node
	Weight float64
}

// Edge is an undirected weighted edge with U < V.
type Edge struct {
	U, V   Node
	Weight float64
}

// Graph is an undirected weighted graph stored as adjacency lists. Build one
// with New and AddEdge; all algorithms treat it as immutable afterwards.
type Graph struct {
	adj [][]Arc
	m   int
}

// New returns an empty graph on n nodes.
func New(n int) *Graph {
	return &Graph{adj: make([][]Arc, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Neighbors returns the adjacency list of v. The caller must not modify it.
func (g *Graph) Neighbors(v Node) []Arc { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v Node) int { return len(g.adj[v]) }

// AddEdge inserts the undirected edge {u, v} with weight w. It panics on
// loops, non-positive weights, or out-of-range endpoints; if the edge already
// exists its weight is lowered to w if w is smaller (parallel edges are
// collapsed to the lightest, which is the only one shortest-path algorithms
// can use).
func (g *Graph) AddEdge(u, v Node, w float64) {
	if u == v {
		panic(fmt.Sprintf("graph: loop at node %d", u))
	}
	if w <= 0 || semiring.IsInf(w) {
		panic(fmt.Sprintf("graph: invalid edge weight %v", w))
	}
	if int(u) < 0 || int(u) >= len(g.adj) || int(v) < 0 || int(v) >= len(g.adj) {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range n=%d", u, v, len(g.adj)))
	}
	for i, a := range g.adj[u] {
		if a.To == v {
			if w < a.Weight {
				g.adj[u][i].Weight = w
				for j, b := range g.adj[v] {
					if b.To == u {
						g.adj[v][j].Weight = w
					}
				}
			}
			return
		}
	}
	g.adj[u] = append(g.adj[u], Arc{To: v, Weight: w})
	g.adj[v] = append(g.adj[v], Arc{To: u, Weight: w})
	g.m++
}

// HasEdge reports whether {u, v} is an edge and returns its weight.
func (g *Graph) HasEdge(u, v Node) (float64, bool) {
	for _, a := range g.adj[u] {
		if a.To == v {
			return a.Weight, true
		}
	}
	return semiring.Inf, false
}

// Weight returns ω(u,v) in the convention of §1.2: 0 for u == v, the edge
// weight if {u,v} ∈ E, and ∞ otherwise.
func (g *Graph) Weight(u, v Node) float64 {
	if u == v {
		return 0
	}
	w, _ := g.HasEdge(u, v)
	return w
}

// Edges returns all undirected edges with U < V, sorted by (U, V).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := range g.adj {
		for _, a := range g.adj[u] {
			if Node(u) < a.To {
				out = append(out, Edge{U: Node(u), V: a.To, Weight: a.Weight})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	h := &Graph{adj: make([][]Arc, len(g.adj)), m: g.m}
	for v, as := range g.adj {
		h.adj[v] = append([]Arc(nil), as...)
	}
	return h
}

// WeightRange returns the minimum and maximum edge weight. It panics on an
// edgeless graph.
func (g *Graph) WeightRange() (min, max float64) {
	if g.m == 0 {
		panic("graph: WeightRange on edgeless graph")
	}
	min, max = semiring.Inf, 0
	for _, as := range g.adj {
		for _, a := range as {
			if a.Weight < min {
				min = a.Weight
			}
			if a.Weight > max {
				max = a.Weight
			}
		}
	}
	return min, max
}

// Connected reports whether g is connected (the standing assumption of
// §1.2).
func (g *Graph) Connected() bool {
	n := g.N()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []Node{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.adj[v] {
			if !seen[a.To] {
				seen[a.To] = true
				count++
				stack = append(stack, a.To)
			}
		}
	}
	return count == n
}
