package graph

import (
	"fmt"
	"math"
	"sort"

	"parmbf/internal/par"
)

// This file provides the workload generators of the experiment suite. All
// generators take an explicit RNG so every experiment is reproducible from a
// seed, and all of them produce connected graphs with positive weights and a
// polynomially bounded weight ratio (the standing assumptions of §1.2).
// Generators accumulate edges in a Builder (O(1) per edge) and Freeze once;
// generators that must not re-sample existing edges track the edge set in
// an edgeSet (bitset or hash set), so dense construction stays O(n + m)
// instead of the quadratic O(m·deg) of the old per-insert adjacency scan.

// quantize rounds w to a multiple of 1/1024. Dyadic-rational weights make
// every path-weight sum exact in float64 (no rounding error accumulates), so
// exact distances form an exact metric and tie-breaking in tests is
// deterministic. The weight-ratio assumption of §1.2 is unaffected.
func quantize(w float64) float64 {
	q := math.Round(w*1024) / 1024
	if q <= 0 {
		q = 1.0 / 1024
	}
	return q
}

// edgeSet answers "have I already generated edge {u,v}?" in O(1) for the
// generators whose RNG retry loops must skip existing edges. For moderate n
// it is a dense triangular bitset (one cache line touch per query); beyond
// that it falls back to a hash set keyed by the canonical pair.
type edgeSet struct {
	n    int
	bits []uint64
	m    map[uint64]bool
}

func newEdgeSet(n, sizeHint int) *edgeSet {
	// Use the dense bitset only while its footprint is small in absolute
	// terms or proportionate to the expected edge count (≤ 64 bytes per
	// edge); for sparse edge sets on large node counts the hash set wins.
	words := (n*(n-1)/2 + 63) / 64
	if bytes := 8 * words; bytes <= 1<<16 || bytes <= 64*sizeHint {
		return &edgeSet{n: n, bits: make([]uint64, words)}
	}
	return &edgeSet{n: n, m: make(map[uint64]bool, sizeHint)}
}

// key maps the unordered pair {u, v} to its index in the strict upper
// triangle (row-major), or to a canonical hash key in map mode.
func (s *edgeSet) key(u, v Node) uint64 {
	if u > v {
		u, v = v, u
	}
	if s.bits != nil {
		uu, nn := uint64(uint32(u)), uint64(s.n)
		return uu*nn - uu*(uu+1)/2 + uint64(uint32(v)) - uu - 1
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

func (s *edgeSet) has(u, v Node) bool {
	k := s.key(u, v)
	if s.bits != nil {
		return s.bits[k>>6]&(1<<(k&63)) != 0
	}
	return s.m[k]
}

func (s *edgeSet) add(u, v Node) {
	k := s.key(u, v)
	if s.bits != nil {
		s.bits[k>>6] |= 1 << (k & 63)
		return
	}
	s.m[k] = true
}

// PathGraph returns the n-node path v0—v1—…—v_{n-1} with the given uniform
// edge weight. Its SPD is n−1: the worst case for plain MBF iteration and
// the motivating example for the simulated graph H of §4.
func PathGraph(n int, weight float64) *Graph {
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.Add(Node(v), Node(v+1), weight)
	}
	return b.Freeze()
}

// CycleGraph returns the n-node cycle with unit weights, the paper's example
// of a graph that no deterministic tree embedding can handle with stretch
// o(n) but random embeddings handle with expected stretch O(log n) (§1.1).
func CycleGraph(n int, weight float64) *Graph {
	if n < 3 {
		panic("graph: cycle needs n ≥ 3")
	}
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.Add(Node(v), Node(v+1), weight)
	}
	b.Add(Node(n-1), 0, weight)
	return b.Freeze()
}

// GridGraph returns the rows×cols grid with weights drawn uniformly from
// [1, maxWeight]. Grids have Θ(√n) SPD and model road-like networks.
func GridGraph(rows, cols int, maxWeight float64, rng *par.RNG) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) Node { return Node(r*cols + c) }
	w := func() float64 { return quantize(1 + rng.Float64()*(maxWeight-1)) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.Add(id(r, c), id(r, c+1), w())
			}
			if r+1 < rows {
				b.Add(id(r, c), id(r+1, c), w())
			}
		}
	}
	return b.Freeze()
}

// RandomConnected returns a connected graph with n nodes and m edges: a
// random spanning tree plus m−(n−1) random extra edges, weights uniform in
// [1, maxWeight]. It panics if m < n−1 or m exceeds the simple-graph bound.
func RandomConnected(n, m int, maxWeight float64, rng *par.RNG) *Graph {
	if m < n-1 {
		panic(fmt.Sprintf("graph: m=%d below spanning tree size %d", m, n-1))
	}
	if maxM := n * (n - 1) / 2; m > maxM {
		panic(fmt.Sprintf("graph: m=%d exceeds simple bound %d", m, maxM))
	}
	b := NewBuilder(n)
	seen := newEdgeSet(n, m)
	w := func() float64 { return quantize(1 + rng.Float64()*(maxWeight-1)) }
	// Random spanning tree: attach each node (in random order) to a random
	// earlier node, which yields a uniform-ish random recursive tree.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		u, v := Node(perm[i]), Node(perm[j])
		seen.add(u, v)
		b.Add(u, v, w())
	}
	for count := n - 1; count < m; {
		u := Node(rng.Intn(n))
		v := Node(rng.Intn(n))
		if u == v {
			continue
		}
		if seen.has(u, v) {
			continue
		}
		seen.add(u, v)
		b.Add(u, v, w())
		count++
	}
	return b.Freeze()
}

// Lollipop returns a lollipop graph: a clique on cliqueN nodes joined to a
// path of pathN nodes by a single edge, all unit weights. Its SPD is
// Θ(pathN) while its size stays Θ(cliqueN² + pathN) — the adversarial
// workload of experiment E9 where SPD ≫ √n makes plain per-hop algorithms
// slow.
func Lollipop(cliqueN, pathN int) *Graph {
	n := cliqueN + pathN
	b := NewBuilder(n)
	for u := 0; u < cliqueN; u++ {
		for v := u + 1; v < cliqueN; v++ {
			b.Add(Node(u), Node(v), 1)
		}
	}
	for v := cliqueN; v < n; v++ {
		b.Add(Node(v-1), Node(v), 1)
	}
	return b.Freeze()
}

// Clustered returns a graph of k well-separated clusters: each cluster is a
// random connected subgraph with intra-cluster weights in [1, 2], and
// clusters are joined into a connected whole by bridges of weight sep ≫ 2.
// It is the planted workload for the k-median experiment E11, where the
// optimal centers are one per cluster.
func Clustered(k, perCluster int, sep float64, rng *par.RNG) *Graph {
	n := k * perCluster
	b := NewBuilder(n)
	seen := newEdgeSet(n, n*2)
	for c := 0; c < k; c++ {
		base := c * perCluster
		// Spanning tree plus a few chords inside the cluster.
		for i := 1; i < perCluster; i++ {
			j := rng.Intn(i)
			u, v := Node(base+i), Node(base+j)
			seen.add(u, v)
			b.Add(u, v, quantize(1+rng.Float64()))
		}
		extra := perCluster / 2
		for e := 0; e < extra; e++ {
			u := Node(base + rng.Intn(perCluster))
			v := Node(base + rng.Intn(perCluster))
			if u == v {
				continue
			}
			if !seen.has(u, v) {
				seen.add(u, v)
				b.Add(u, v, quantize(1+rng.Float64()))
			}
		}
	}
	// Bridge consecutive clusters.
	for c := 0; c+1 < k; c++ {
		u := Node(c*perCluster + rng.Intn(perCluster))
		v := Node((c+1)*perCluster + rng.Intn(perCluster))
		b.Add(u, v, sep)
	}
	return b.Freeze()
}

// CompleteFromMatrix builds the complete graph whose edge weights are the
// off-diagonal entries of a finite metric matrix. This realises the paper's
// remark that "a metric can be interpreted as a complete weighted graph of
// SPD 1" (§1.1) and is used to compare against the metric-input baseline of
// Blelloch et al.
func CompleteFromMatrix(m *Matrix) *Graph {
	n := m.N
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.Add(Node(u), Node(v), m.At(u, v))
		}
	}
	return b.Freeze()
}

// RandomGeometric returns a connected random geometric graph: n points
// uniform in the unit square, edges between pairs within distance radius
// with Euclidean weights (scaled by 1000 so the minimum weight stays well
// above 0), plus spanning-tree edges if the radius graph is disconnected.
func RandomGeometric(n int, radius float64, rng *par.RNG) *Graph {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	dist := func(i, j int) float64 {
		dx, dy := xs[i]-xs[j], ys[i]-ys[j]
		return quantize(math.Sqrt(dx*dx+dy*dy)*1000 + 1)
	}
	b := NewBuilder(n)
	// Track connectivity incrementally so the repair loop below does not
	// have to re-scan a frozen graph after every added bridge.
	uf := NewUnionFind(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			if math.Sqrt(dx*dx+dy*dy) <= radius {
				b.Add(Node(i), Node(j), dist(i, j))
				uf.Union(int32(i), int32(j))
			}
		}
	}
	// Guarantee connectivity: link each connected component to node 0's
	// component through the geometrically nearest pair.
	for {
		root := uf.Find(0)
		target := -1
		for v := 1; v < n; v++ {
			if uf.Find(int32(v)) != root {
				target = v
				break
			}
		}
		if target == -1 {
			break
		}
		best, bu := math.Inf(1), -1
		for v := 0; v < n; v++ {
			if uf.Find(int32(v)) == root {
				if d := dist(v, target); d < best {
					best, bu = d, v
				}
			}
		}
		b.Add(Node(bu), Node(target), best)
		uf.Union(int32(bu), int32(target))
	}
	return b.Freeze()
}

// ChungLu returns a connected power-law random graph in the Chung-Lu
// expected-degree model: node i carries weight wᵢ ∝ (i+1)^(−1/(τ−1)) scaled
// so the mean degree is avgDeg, and edge {i,j} appears with probability
// min(1, wᵢwⱼ/Σw). The realised degree sequence then has a power-law tail
// with exponent ≈ τ — the degree skew that stresses the merge ladder with a
// few huge adjacency rows. Generation is the Miller-Hagberg skip-sampling
// scan: O(n + m) expected, not the naive O(n²) pair loop, so it runs at
// n = 2^20 in seconds. Edge weights are uniform in [1, maxWeight]. Isolated
// components are bridged to node 0 (the heaviest node), so the output is
// connected; the handful of repair edges does not disturb the tail.
func ChungLu(n int, avgDeg, tau, maxWeight float64, rng *par.RNG) *Graph {
	if n < 2 {
		panic("graph: ChungLu needs n ≥ 2")
	}
	if tau <= 2 {
		panic("graph: ChungLu tail exponent must exceed 2 (finite mean)")
	}
	alpha := 1 / (tau - 1)
	wts := make([]float64, n)
	var sum float64
	for i := range wts {
		wts[i] = math.Pow(float64(i+1), -alpha)
		sum += wts[i]
	}
	scale := float64(n) * avgDeg / sum
	sum = 0
	for i := range wts {
		wts[i] *= scale
		sum += wts[i]
	}
	ew := func() float64 { return quantize(1 + rng.Float64()*(maxWeight-1)) }
	b := NewBuilder(n)
	uf := NewUnionFind(n)
	// Miller-Hagberg scan: weights are sorted descending by construction, so
	// for fixed i the edge probability is non-increasing in j and geometric
	// skips under the current bound p stay valid; each candidate is then
	// accepted with the exact ratio q/p.
	for i := 0; i < n-1; i++ {
		j := i + 1
		p := wts[i] * wts[j] / sum
		if p > 1 {
			p = 1
		}
		for j < n && p > 0 {
			if p < 1 {
				r := rng.Float64()
				if r == 0 {
					r = 0.5
				}
				if skip := math.Log(r) / math.Log(1-p); skip >= float64(n-j) {
					break // geometric skip past the end of the row
				} else {
					j += int(skip)
				}
			}
			q := wts[i] * wts[j] / sum
			if q > 1 {
				q = 1
			}
			if rng.Float64() < q/p {
				b.Add(Node(i), Node(j), ew())
				uf.Union(int32(i), int32(j))
			}
			p = q
			j++
		}
	}
	// Connectivity repair: attach every stray component to node 0.
	root := uf.Find(0)
	for v := 1; v < n; v++ {
		if uf.Find(int32(v)) != root {
			uf.Union(0, int32(v))
			b.Add(0, Node(v), ew())
		}
	}
	return b.Freeze()
}

// GridOfCliques returns a rows×cols grid whose cells are cliques of
// cliqueN nodes: intra-clique weights uniform in [1, 2], adjacent cells
// joined by one bridge edge of weight bridgeWeight between their first
// nodes. With bridgeWeight ≫ 2 the graph combines dense local structure
// (clique rows exercise wide merges) with a Θ(rows+cols) shortest-path
// diameter — the road-network-like regime where hop sets pay off. The node
// count is rows·cols·cliqueN and the edge count is exactly
// rows·cols·cliqueN(cliqueN−1)/2 + rows(cols−1) + cols(rows−1).
func GridOfCliques(rows, cols, cliqueN int, bridgeWeight float64, rng *par.RNG) *Graph {
	if rows < 1 || cols < 1 || cliqueN < 1 {
		panic("graph: GridOfCliques needs positive dimensions")
	}
	n := rows * cols * cliqueN
	b := NewBuilder(n)
	base := func(r, c int) int { return (r*cols + c) * cliqueN }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			o := base(r, c)
			for u := 0; u < cliqueN; u++ {
				for v := u + 1; v < cliqueN; v++ {
					b.Add(Node(o+u), Node(o+v), quantize(1+rng.Float64()))
				}
			}
			if c+1 < cols {
				b.Add(Node(o), Node(base(r, c+1)), bridgeWeight)
			}
			if r+1 < rows {
				b.Add(Node(o), Node(base(r+1, c)), bridgeWeight)
			}
		}
	}
	return b.Freeze()
}

// BarabasiAlbert returns a preferential-attachment graph: starting from a
// small clique, each new node attaches to `attach` existing nodes chosen
// with probability proportional to their degree, with weights uniform in
// [1, maxWeight]. The degree distribution is power-law-ish — the
// heavy-tailed workload of the experiment suite.
func BarabasiAlbert(n, attach int, maxWeight float64, rng *par.RNG) *Graph {
	if attach < 1 {
		attach = 1
	}
	seed := attach + 1
	if seed > n {
		seed = n
	}
	b := NewBuilder(n)
	w := func() float64 { return quantize(1 + rng.Float64()*(maxWeight-1)) }
	// Repeated-endpoints trick: sampling uniformly from the endpoint list
	// is proportional to degree.
	var endpoints []Node
	// Seed clique.
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			b.Add(Node(u), Node(v), w())
			endpoints = append(endpoints, Node(u), Node(v))
		}
	}
	for v := seed; v < n; v++ {
		chosen := map[Node]bool{}
		for len(chosen) < attach {
			t := endpoints[rng.Intn(len(endpoints))]
			if int(t) != v {
				chosen[t] = true
			}
		}
		// Attach in sorted target order so the endpoint list — and with it
		// every later degree-proportional draw — is deterministic.
		targets := make([]Node, 0, len(chosen))
		for t := range chosen {
			targets = append(targets, t)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		for _, t := range targets {
			b.Add(Node(v), t, w())
			endpoints = append(endpoints, Node(v), t)
		}
	}
	return b.Freeze()
}
