package graph

import (
	"fmt"
	"math"

	"parmbf/internal/par"
)

// This file provides the workload generators of the experiment suite. All
// generators take an explicit RNG so every experiment is reproducible from a
// seed, and all of them produce connected graphs with positive weights and a
// polynomially bounded weight ratio (the standing assumptions of §1.2).

// quantize rounds w to a multiple of 1/1024. Dyadic-rational weights make
// every path-weight sum exact in float64 (no rounding error accumulates), so
// exact distances form an exact metric and tie-breaking in tests is
// deterministic. The weight-ratio assumption of §1.2 is unaffected.
func quantize(w float64) float64 {
	q := math.Round(w*1024) / 1024
	if q <= 0 {
		q = 1.0 / 1024
	}
	return q
}

// PathGraph returns the n-node path v0—v1—…—v_{n-1} with the given uniform
// edge weight. Its SPD is n−1: the worst case for plain MBF iteration and
// the motivating example for the simulated graph H of §4.
func PathGraph(n int, weight float64) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(Node(v), Node(v+1), weight)
	}
	return g
}

// CycleGraph returns the n-node cycle with unit weights, the paper's example
// of a graph that no deterministic tree embedding can handle with stretch
// o(n) but random embeddings handle with expected stretch O(log n) (§1.1).
func CycleGraph(n int, weight float64) *Graph {
	if n < 3 {
		panic("graph: cycle needs n ≥ 3")
	}
	g := PathGraph(n, weight)
	g.AddEdge(Node(n-1), 0, weight)
	return g
}

// GridGraph returns the rows×cols grid with weights drawn uniformly from
// [1, maxWeight]. Grids have Θ(√n) SPD and model road-like networks.
func GridGraph(rows, cols int, maxWeight float64, rng *par.RNG) *Graph {
	g := New(rows * cols)
	id := func(r, c int) Node { return Node(r*cols + c) }
	w := func() float64 { return quantize(1 + rng.Float64()*(maxWeight-1)) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1), w())
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c), w())
			}
		}
	}
	return g
}

// RandomConnected returns a connected graph with n nodes and m edges: a
// random spanning tree plus m−(n−1) random extra edges, weights uniform in
// [1, maxWeight]. It panics if m < n−1 or m exceeds the simple-graph bound.
func RandomConnected(n, m int, maxWeight float64, rng *par.RNG) *Graph {
	if m < n-1 {
		panic(fmt.Sprintf("graph: m=%d below spanning tree size %d", m, n-1))
	}
	if maxM := n * (n - 1) / 2; m > maxM {
		panic(fmt.Sprintf("graph: m=%d exceeds simple bound %d", m, maxM))
	}
	g := New(n)
	w := func() float64 { return quantize(1 + rng.Float64()*(maxWeight-1)) }
	// Random spanning tree: attach each node (in random order) to a random
	// earlier node, which yields a uniform-ish random recursive tree.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		g.AddEdge(Node(perm[i]), Node(perm[j]), w())
	}
	for g.M() < m {
		u := Node(rng.Intn(n))
		v := Node(rng.Intn(n))
		if u == v {
			continue
		}
		if _, ok := g.HasEdge(u, v); ok {
			continue
		}
		g.AddEdge(u, v, w())
	}
	return g
}

// Lollipop returns a lollipop graph: a clique on cliqueN nodes joined to a
// path of pathN nodes by a single edge, all unit weights. Its SPD is
// Θ(pathN) while its size stays Θ(cliqueN² + pathN) — the adversarial
// workload of experiment E9 where SPD ≫ √n makes plain per-hop algorithms
// slow.
func Lollipop(cliqueN, pathN int) *Graph {
	n := cliqueN + pathN
	g := New(n)
	for u := 0; u < cliqueN; u++ {
		for v := u + 1; v < cliqueN; v++ {
			g.AddEdge(Node(u), Node(v), 1)
		}
	}
	for v := cliqueN; v < n; v++ {
		g.AddEdge(Node(v-1), Node(v), 1)
	}
	return g
}

// Clustered returns a graph of k well-separated clusters: each cluster is a
// random connected subgraph with intra-cluster weights in [1, 2], and
// clusters are joined into a connected whole by bridges of weight sep ≫ 2.
// It is the planted workload for the k-median experiment E11, where the
// optimal centers are one per cluster.
func Clustered(k, perCluster int, sep float64, rng *par.RNG) *Graph {
	n := k * perCluster
	g := New(n)
	for c := 0; c < k; c++ {
		base := c * perCluster
		// Spanning tree plus a few chords inside the cluster.
		for i := 1; i < perCluster; i++ {
			j := rng.Intn(i)
			g.AddEdge(Node(base+i), Node(base+j), quantize(1+rng.Float64()))
		}
		extra := perCluster / 2
		for e := 0; e < extra; e++ {
			u := Node(base + rng.Intn(perCluster))
			v := Node(base + rng.Intn(perCluster))
			if u == v {
				continue
			}
			if _, ok := g.HasEdge(u, v); !ok {
				g.AddEdge(u, v, quantize(1+rng.Float64()))
			}
		}
	}
	// Bridge consecutive clusters.
	for c := 0; c+1 < k; c++ {
		u := Node(c*perCluster + rng.Intn(perCluster))
		v := Node((c+1)*perCluster + rng.Intn(perCluster))
		g.AddEdge(u, v, sep)
	}
	return g
}

// CompleteFromMatrix builds the complete graph whose edge weights are the
// off-diagonal entries of a finite metric matrix. This realises the paper's
// remark that "a metric can be interpreted as a complete weighted graph of
// SPD 1" (§1.1) and is used to compare against the metric-input baseline of
// Blelloch et al.
func CompleteFromMatrix(m *Matrix) *Graph {
	n := m.N
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(Node(u), Node(v), m.At(u, v))
		}
	}
	return g
}

// RandomGeometric returns a connected random geometric graph: n points
// uniform in the unit square, edges between pairs within distance radius
// with Euclidean weights (scaled by 1000 so the minimum weight stays well
// above 0), plus spanning-tree edges if the radius graph is disconnected.
func RandomGeometric(n int, radius float64, rng *par.RNG) *Graph {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	dist := func(i, j int) float64 {
		dx, dy := xs[i]-xs[j], ys[i]-ys[j]
		return quantize(math.Sqrt(dx*dx+dy*dy)*1000 + 1)
	}
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			if math.Sqrt(dx*dx+dy*dy) <= radius {
				g.AddEdge(Node(i), Node(j), dist(i, j))
			}
		}
	}
	// Guarantee connectivity: link each connected component to node 0's
	// component through the geometrically nearest pair.
	for {
		comp := components(g)
		// Find a node in a different component than node 0 and connect it.
		target := -1
		for v := 1; v < n; v++ {
			if comp[v] != comp[0] {
				target = v
				break
			}
		}
		if target == -1 {
			break
		}
		best, bu := math.Inf(1), -1
		for v := 0; v < n; v++ {
			if comp[v] == comp[0] {
				if d := dist(v, target); d < best {
					best, bu = d, v
				}
			}
		}
		g.AddEdge(Node(bu), Node(target), best)
	}
	return g
}

// components labels nodes with component IDs.
func components(g *Graph) []int {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		stack := []Node{Node(s)}
		comp[s] = next
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, a := range g.Neighbors(v) {
				if comp[a.To] == -1 {
					comp[a.To] = next
					stack = append(stack, a.To)
				}
			}
		}
		next++
	}
	return comp
}

// BarabasiAlbert returns a preferential-attachment graph: starting from a
// small clique, each new node attaches to `attach` existing nodes chosen
// with probability proportional to their degree, with weights uniform in
// [1, maxWeight]. The degree distribution is power-law-ish — the
// heavy-tailed workload of the experiment suite.
func BarabasiAlbert(n, attach int, maxWeight float64, rng *par.RNG) *Graph {
	if attach < 1 {
		attach = 1
	}
	seed := attach + 1
	if seed > n {
		seed = n
	}
	g := New(n)
	w := func() float64 { return quantize(1 + rng.Float64()*(maxWeight-1)) }
	// Seed clique.
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			g.AddEdge(Node(u), Node(v), w())
		}
	}
	// Repeated-endpoints trick: sampling uniformly from the endpoint list
	// is proportional to degree.
	var endpoints []Node
	for _, e := range g.Edges() {
		endpoints = append(endpoints, e.U, e.V)
	}
	for v := seed; v < n; v++ {
		chosen := map[Node]bool{}
		for len(chosen) < attach {
			t := endpoints[rng.Intn(len(endpoints))]
			if int(t) != v {
				chosen[t] = true
			}
		}
		for t := range chosen {
			g.AddEdge(Node(v), t, w())
			endpoints = append(endpoints, Node(v), t)
		}
	}
	return g
}
