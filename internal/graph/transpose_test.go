package graph

import (
	"sort"
	"testing"

	"parmbf/internal/par"
)

// directedCSR builds a Graph directly from directed arcs (from, to, w) —
// bypassing the Builder, which only produces symmetric graphs — with the
// symmetric flag set by the same detection Freeze runs.
func directedCSR(n int, arcs [][3]float64) *Graph {
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i][0] != arcs[j][0] {
			return arcs[i][0] < arcs[j][0]
		}
		return arcs[i][1] < arcs[j][1]
	})
	g := &Graph{rowStart: make([]int32, n+1), m: len(arcs)}
	for _, a := range arcs {
		g.rowStart[int(a[0])+1]++
	}
	for v := 0; v < n; v++ {
		g.rowStart[v+1] += g.rowStart[v]
	}
	for _, a := range arcs {
		g.arcs = append(g.arcs, Arc{To: Node(a[1]), Weight: a[2]})
	}
	g.symmetric = detectSymmetric(g.rowStart, g.arcs, n)
	return g
}

// TestFreezeDetectsSymmetry: every Builder-frozen graph carries both halves
// of each edge, so Freeze must flag it symmetric and Transpose must be the
// identity view — same *Graph, InNeighbors == Neighbors.
func TestFreezeDetectsSymmetry(t *testing.T) {
	rng := par.NewRNG(41)
	for _, n := range []int{8, 17, 64} {
		g := RandomConnected(n, 3*n, 9, rng)
		if !g.Symmetric() {
			t.Fatalf("n=%d: Freeze did not flag symmetry", n)
		}
		// Freeze sets the flag by construction; assert the construction
		// argument against the reference predicate.
		if !detectSymmetric(g.rowStart, g.arcs, n) {
			t.Fatalf("n=%d: Freeze output fails detectSymmetric — the by-construction flag is wrong", n)
		}
		if g.Transpose() != g {
			t.Fatalf("n=%d: Transpose of a symmetric graph is not the graph itself", n)
		}
		for v := 0; v < n; v++ {
			in, out := g.InNeighbors(Node(v)), g.Neighbors(Node(v))
			if len(in) != len(out) {
				t.Fatalf("node %d: |InNeighbors| = %d, |Neighbors| = %d", v, len(in), len(out))
			}
			for i := range in {
				if in[i] != out[i] {
					t.Fatalf("node %d arc %d: in %v != out %v", v, i, in[i], out[i])
				}
			}
		}
	}
	if g := New(5); !g.Symmetric() || g.Transpose() != g {
		t.Fatal("edgeless graph must be trivially symmetric")
	}
}

// TestDetectSymmetric pins the detector on hand-built directed arc sets:
// missing reverse arcs and weight-mismatched reverse arcs are both
// asymmetric.
func TestDetectSymmetric(t *testing.T) {
	if g := directedCSR(3, [][3]float64{{0, 1, 2}, {1, 0, 2}, {1, 2, 5}, {2, 1, 5}}); !g.Symmetric() {
		t.Fatal("matched reverse arcs flagged asymmetric")
	}
	if g := directedCSR(3, [][3]float64{{0, 1, 2}, {1, 2, 5}, {2, 1, 5}}); g.Symmetric() {
		t.Fatal("missing reverse arc 1→0 not detected")
	}
	if g := directedCSR(2, [][3]float64{{0, 1, 2}, {1, 0, 3}}); g.Symmetric() {
		t.Fatal("weight mismatch on reverse arc not detected")
	}
}

// TestTransposeRoundTrip is the transpose property test on random directed
// graphs: rows stay sorted, every arc u→v appears as v→u (with u as the
// stored source) exactly once, the double transpose is the original graph
// pointer, and the cached view is shared across calls.
func TestTransposeRoundTrip(t *testing.T) {
	rng := par.NewRNG(42)
	for iter := 0; iter < 20; iter++ {
		n := 2 + int(rng.Intn(20))
		var arcs [][3]float64
		seen := map[[2]int]bool{}
		for k := int(rng.Intn(60)); k >= 0; k-- {
			u, v := int(rng.Intn(n)), int(rng.Intn(n))
			if u == v || seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			arcs = append(arcs, [3]float64{float64(u), float64(v), 1 + float64(rng.Intn(9))})
		}
		g := directedCSR(n, arcs)
		tr := g.Transpose()
		if tr != g.Transpose() {
			t.Fatal("Transpose not cached: two calls returned distinct views")
		}
		if g.Symmetric() {
			if tr != g {
				t.Fatal("symmetric graph must transpose to itself")
			}
			continue
		}
		if tr.Transpose() != g {
			t.Fatal("double transpose is not the original graph")
		}
		// Reference reversal: collect arcs by target, sources ascending.
		want := make(map[int][]Arc)
		for _, a := range arcs {
			want[int(a[1])] = append(want[int(a[1])], Arc{To: Node(a[0]), Weight: a[2]})
		}
		for v := 0; v < n; v++ {
			exp := want[v]
			sort.Slice(exp, func(i, j int) bool { return exp[i].To < exp[j].To })
			got := tr.Neighbors(Node(v))
			if len(got) != len(exp) {
				t.Fatalf("transpose row %d: got %v, want %v", v, got, exp)
			}
			for i := range got {
				if got[i] != exp[i] {
					t.Fatalf("transpose row %d entry %d: got %v, want %v", v, i, got[i], exp[i])
				}
			}
			if got2 := g.InNeighbors(Node(v)); len(got2) != len(got) {
				t.Fatalf("InNeighbors(%d) disagrees with transpose row", v)
			}
		}
	}
}
