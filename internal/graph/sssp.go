package graph

import (
	"parmbf/internal/semiring"
)

// This file implements the classical single-source algorithms that serve as
// ground truth for the MBF-like machinery: Dijkstra (with predecessor and
// min-hop tracking), hop-limited Bellman-Ford for h-hop distances
// dist^h(v,·,G), and the derived SPD/hop-diameter computations of §1.2.
// Both Dijkstra variants run on the non-boxing 4-ary index heap (Heap4)
// over the flat CSR arc array.

// SSSPResult holds the output of a single-source shortest-path computation.
type SSSPResult struct {
	Source Node
	// Dist[v] = dist(source, v, G); ∞ if unreachable.
	Dist []float64
	// Parent[v] is the predecessor of v on a shortest source-v path, or -1
	// for the source and unreachable nodes.
	Parent []Node
	// Hops[v] is the minimum hop count over all shortest source-v paths
	// (hop(source, v, G) in the paper's notation); 0 for the source and
	// undefined (0) for unreachable nodes.
	Hops []int
}

// Dijkstra computes exact distances from source, together with a shortest
// path tree that minimises hops among shortest paths (relaxation uses the
// lexicographic key (dist, hops), so Hops[v] = hop(source, v, G)).
func Dijkstra(g *Graph, source Node) *SSSPResult {
	n := g.N()
	res := &SSSPResult{
		Source: source,
		Dist:   make([]float64, n),
		Parent: make([]Node, n),
		Hops:   make([]int, n),
	}
	for v := range res.Dist {
		res.Dist[v] = semiring.Inf
		res.Parent[v] = -1
	}
	res.Dist[source] = 0
	q := NewHeap4[float64](n)
	q.Push(int32(source), 0)
	for q.Len() > 0 {
		v32, dv := q.Pop()
		v := Node(v32)
		nh := res.Hops[v] + 1
		for _, a := range g.Neighbors(v) {
			nd := dv + a.Weight
			w := a.To
			if nd < res.Dist[w] {
				res.Dist[w] = nd
				res.Hops[w] = nh
				res.Parent[w] = v
				q.Push(int32(w), nd)
			} else if nd == res.Dist[w] && nh < res.Hops[w] {
				// Equal-distance, fewer hops: with positive weights this
				// can only happen while w is still in the heap (dv <
				// Dist[w] implies v popped before w), so no heap update
				// is needed — the key is unchanged.
				res.Hops[w] = nh
				res.Parent[w] = v
			}
		}
	}
	return res
}

// PathTo reconstructs the shortest path from the result's source to v as a
// node sequence, or nil if v is unreachable.
func (r *SSSPResult) PathTo(v Node) []Node {
	if semiring.IsInf(r.Dist[v]) {
		return nil
	}
	var rev []Node
	for u := v; u != -1; u = r.Parent[u] {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// BellmanFord computes the h-hop distances dist^h(source, ·, G): the minimum
// weight over source-v paths of at most h edges (∞ where no such path
// exists). It is the reference implementation the MBF-like engine is tested
// against (Lemma 3.1).
func BellmanFord(g *Graph, source Node, h int) []float64 {
	n := g.N()
	dist := make([]float64, n)
	for v := range dist {
		dist[v] = semiring.Inf
	}
	dist[source] = 0
	next := make([]float64, n)
	for i := 0; i < h; i++ {
		copy(next, dist)
		changed := false
		for v := 0; v < n; v++ {
			if semiring.IsInf(dist[v]) {
				continue
			}
			for _, a := range g.Neighbors(Node(v)) {
				if nd := dist[v] + a.Weight; nd < next[a.To] {
					next[a.To] = nd
					changed = true
				}
			}
		}
		dist, next = next, dist
		if !changed {
			break
		}
	}
	return dist
}

// HopLimitedDistance returns dist^h(u, v, G) for a single pair.
func HopLimitedDistance(g *Graph, u, v Node, h int) float64 {
	return BellmanFord(g, u, h)[v]
}

// SPDFrom returns max_v hop(source, v, G): the maximum, over all targets, of
// the minimum hop count among shortest paths from source.
func SPDFrom(g *Graph, source Node) int {
	res := Dijkstra(g, source)
	max := 0
	for v := 0; v < g.N(); v++ {
		if !semiring.IsInf(res.Dist[v]) && res.Hops[v] > max {
			max = res.Hops[v]
		}
	}
	return max
}

// SPD computes the shortest path diameter SPD(G) = max over pairs v,w of
// hop(v, w, G), the number of MBF iterations needed to reach a fixpoint
// (§1.2). It runs one Dijkstra per node.
func SPD(g *Graph) int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if s := SPDFrom(g, Node(v)); s > max {
			max = s
		}
	}
	return max
}

// HopDiameter computes D(G), the unweighted hop diameter: the maximum over
// pairs of the minimum number of edges on any connecting path.
func HopDiameter(g *Graph) int {
	n := g.N()
	max := 0
	depth := make([]int, n)
	queue := make([]Node, 0, n)
	for s := 0; s < n; s++ {
		for i := range depth {
			depth[i] = -1
		}
		queue = queue[:0]
		queue = append(queue, Node(s))
		depth[s] = 0
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, a := range g.Neighbors(v) {
				if depth[a.To] == -1 {
					depth[a.To] = depth[v] + 1
					if depth[a.To] > max {
						max = depth[a.To]
					}
					queue = append(queue, a.To)
				}
			}
		}
	}
	return max
}
