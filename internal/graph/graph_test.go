package graph

import (
	"testing"

	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

func TestBuilderAndAccessors(t *testing.T) {
	g := NewBuilder(4).Add(0, 1, 2).Add(1, 2, 3).Add(0, 3, 1.5).Freeze()
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("N=%d M=%d, want 4, 3", g.N(), g.M())
	}
	if w, ok := g.HasEdge(1, 0); !ok || w != 2 {
		t.Fatalf("HasEdge(1,0) = %v,%v", w, ok)
	}
	if _, ok := g.HasEdge(2, 3); ok {
		t.Fatal("phantom edge {2,3}")
	}
	if g.Weight(2, 2) != 0 {
		t.Fatal("ω(v,v) should be 0")
	}
	if !semiring.IsInf(g.Weight(2, 3)) {
		t.Fatal("ω of non-edge should be ∞")
	}
	if g.Degree(0) != 2 {
		t.Fatalf("deg(0) = %d, want 2", g.Degree(0))
	}
}

func TestFreezeParallelKeepsLighter(t *testing.T) {
	g := NewBuilder(2).Add(0, 1, 5).Add(1, 0, 3).Add(0, 1, 9).Freeze()
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 (parallel edges collapsed)", g.M())
	}
	if w, _ := g.HasEdge(0, 1); w != 3 {
		t.Fatalf("weight = %v, want 3 (lightest)", w)
	}
	if w, _ := g.HasEdge(1, 0); w != 3 {
		t.Fatal("reverse arc not updated")
	}
}

func TestBuilderAddPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"loop", func() { NewBuilder(2).Add(1, 1, 1) }},
		{"zero weight", func() { NewBuilder(2).Add(0, 1, 0) }},
		{"negative weight", func() { NewBuilder(2).Add(0, 1, -1) }},
		{"inf weight", func() { NewBuilder(2).Add(0, 1, semiring.Inf) }},
		{"out of range", func() { NewBuilder(2).Add(0, 5, 1) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestEdgesSortedAndComplete(t *testing.T) {
	g := NewBuilder(4).Add(2, 1, 4).Add(0, 3, 1).Add(0, 1, 2).Freeze()
	es := g.Edges()
	want := []Edge{{0, 1, 2}, {0, 3, 1}, {1, 2, 4}}
	if len(es) != len(want) {
		t.Fatalf("Edges = %v", es)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("Edges[%d] = %v, want %v", i, es[i], want[i])
		}
	}
}

func TestEdgesSortedNoDuplicatesAfterDedup(t *testing.T) {
	// Insert edges out of order, reversed, and duplicated; Edges() must
	// come back strictly (U,V)-sorted with every duplicate collapsed to
	// the lightest weight, in a single linear pass.
	b := NewBuilder(5)
	b.Add(3, 4, 9)
	b.Add(1, 0, 7)  // reversed
	b.Add(0, 1, 4)  // duplicate, lighter: must win
	b.Add(4, 3, 11) // reversed duplicate, heavier: must lose
	b.Add(2, 0, 1)
	b.Add(0, 2, 1) // exact duplicate
	b.Add(1, 4, 3)
	g := b.Freeze()
	es := g.Edges()
	want := []Edge{{0, 1, 4}, {0, 2, 1}, {1, 4, 3}, {3, 4, 9}}
	if len(es) != len(want) || g.M() != len(want) {
		t.Fatalf("Edges = %v (M=%d), want %v", es, g.M(), want)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("Edges[%d] = %v, want %v", i, es[i], want[i])
		}
	}
	for i := 1; i < len(es); i++ {
		prev, cur := es[i-1], es[i]
		if cur.U < prev.U || (cur.U == prev.U && cur.V <= prev.V) {
			t.Fatalf("Edges not strictly (U,V)-sorted at %d: %v then %v", i, prev, cur)
		}
	}
	// The arc rows themselves must be sorted and duplicate-free too.
	for v := Node(0); int(v) < g.N(); v++ {
		row := g.Neighbors(v)
		for i := 1; i < len(row); i++ {
			if row[i].To <= row[i-1].To {
				t.Fatalf("row %d not strictly sorted: %v", v, row)
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := NewBuilder(3).Add(0, 1, 2).Add(1, 2, 1).Freeze()
	h := g.Clone()
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatal("clone differs from original")
	}
	for v := Node(0); int(v) < g.N(); v++ {
		a, b := g.Neighbors(v), h.Neighbors(v)
		if len(a) != len(b) {
			t.Fatal("clone row length differs")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("clone arc differs")
			}
		}
		if len(a) > 0 && &a[0] == &b[0] {
			t.Fatal("clone shares backing arc array with original")
		}
	}
}

func TestBuilderFromGraphExtends(t *testing.T) {
	g := NewBuilder(3).Add(0, 1, 2).Freeze()
	h := g.Builder().Add(1, 2, 1).Freeze()
	if g.M() != 1 || h.M() != 2 {
		t.Fatalf("extend wrong: g.M=%d h.M=%d", g.M(), h.M())
	}
	if w, ok := h.HasEdge(0, 1); !ok || w != 2 {
		t.Fatal("extended graph lost original edge")
	}
}

func TestConnected(t *testing.T) {
	b := NewBuilder(4).Add(0, 1, 1).Add(2, 3, 1)
	if b.Freeze().Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !b.Add(1, 2, 1).Freeze().Connected() {
		t.Fatal("connected graph reported disconnected")
	}
	if !New(0).Connected() {
		t.Fatal("empty graph should count as connected")
	}
}

func TestWeightRange(t *testing.T) {
	g := NewBuilder(3).Add(0, 1, 2).Add(1, 2, 7).Freeze()
	min, max := g.WeightRange()
	if min != 2 || max != 7 {
		t.Fatalf("WeightRange = %v, %v", min, max)
	}
}

// diamond returns the classic diamond graph where the direct edge 0–3 is
// heavier than the two-hop route.
func diamond() *Graph {
	return NewBuilder(4).Add(0, 1, 1).Add(1, 3, 1).Add(0, 2, 2).Add(2, 3, 2).Add(0, 3, 5).Freeze()
}

func TestDijkstraDistances(t *testing.T) {
	g := diamond()
	res := Dijkstra(g, 0)
	want := []float64{0, 1, 2, 2}
	for v, d := range want {
		if res.Dist[v] != d {
			t.Fatalf("dist(0,%d) = %v, want %v", v, res.Dist[v], d)
		}
	}
	if res.Hops[3] != 2 {
		t.Fatalf("hop(0,3) = %d, want 2 (min-hop among shortest paths)", res.Hops[3])
	}
	path := res.PathTo(3)
	if len(path) != 3 || path[0] != 0 || path[2] != 3 {
		t.Fatalf("PathTo(3) = %v", path)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := NewBuilder(3).Add(0, 1, 1).Freeze()
	res := Dijkstra(g, 0)
	if !semiring.IsInf(res.Dist[2]) {
		t.Fatal("unreachable node has finite distance")
	}
	if res.PathTo(2) != nil {
		t.Fatal("PathTo(unreachable) should be nil")
	}
}

func TestDijkstraMinHopTieBreaking(t *testing.T) {
	// Two shortest 0→3 paths of weight 3: 0-1-2-3 (3 hops) and 0-3 via a
	// direct edge of weight 3 (1 hop). Hops must report 1.
	g := NewBuilder(4).Add(0, 1, 1).Add(1, 2, 1).Add(2, 3, 1).Add(0, 3, 3).Freeze()
	res := Dijkstra(g, 0)
	if res.Dist[3] != 3 {
		t.Fatalf("dist = %v", res.Dist[3])
	}
	if res.Hops[3] != 1 {
		t.Fatalf("hop(0,3) = %d, want 1", res.Hops[3])
	}
}

func TestBellmanFordHopLimits(t *testing.T) {
	g := diamond()
	d0 := BellmanFord(g, 0, 0)
	if d0[0] != 0 || !semiring.IsInf(d0[1]) {
		t.Fatalf("0-hop distances wrong: %v", d0)
	}
	d1 := BellmanFord(g, 0, 1)
	if d1[3] != 5 {
		t.Fatalf("dist¹(0,3) = %v, want 5 (direct edge)", d1[3])
	}
	d2 := BellmanFord(g, 0, 2)
	if d2[3] != 2 {
		t.Fatalf("dist²(0,3) = %v, want 2", d2[3])
	}
}

func TestBellmanFordMatchesDijkstraAtFixpoint(t *testing.T) {
	rng := par.NewRNG(1)
	g := RandomConnected(60, 150, 10, rng)
	for _, src := range []Node{0, 17, 59} {
		bf := BellmanFord(g, src, g.N())
		dj := Dijkstra(g, src)
		for v := range bf {
			if bf[v] != dj.Dist[v] {
				t.Fatalf("src %d node %d: BF %v vs Dijkstra %v", src, v, bf[v], dj.Dist[v])
			}
		}
	}
}

func TestSPDPath(t *testing.T) {
	g := PathGraph(10, 1)
	if spd := SPD(g); spd != 9 {
		t.Fatalf("SPD(path10) = %d, want 9", spd)
	}
}

func TestSPDShortcutEdge(t *testing.T) {
	// A path with a heavy chord: the chord does not lie on any shortest
	// path, so SPD remains that of the path.
	g := PathGraph(6, 1).Builder().Add(0, 5, 100).Freeze()
	if spd := SPD(g); spd != 5 {
		t.Fatalf("SPD = %d, want 5", spd)
	}
	// A light chord creates a 1-hop shortest path between the endpoints.
	h := PathGraph(6, 1).Builder().Add(0, 5, 1).Freeze()
	if spd := SPD(h); spd >= 5 {
		t.Fatalf("SPD = %d, want < 5 after shortcut", spd)
	}
}

func TestHopDiameter(t *testing.T) {
	g := PathGraph(7, 3.5)
	if d := HopDiameter(g); d != 6 {
		t.Fatalf("D(path7) = %d, want 6", d)
	}
	c := CycleGraph(8, 1)
	if d := HopDiameter(c); d != 4 {
		t.Fatalf("D(cycle8) = %d, want 4", d)
	}
}

func TestAdjacencyMatrix(t *testing.T) {
	g := diamond()
	a := AdjacencyMatrix(g)
	if a.At(0, 0) != 0 {
		t.Fatal("diagonal should be 0")
	}
	if a.At(0, 1) != 1 || a.At(1, 0) != 1 {
		t.Fatal("edge weight wrong")
	}
	if !semiring.IsInf(a.At(1, 2)) {
		t.Fatal("non-edge should be ∞")
	}
}

func TestAPSPMatrixSquaringMatchesDijkstra(t *testing.T) {
	rng := par.NewRNG(2)
	g := RandomConnected(40, 90, 8, rng)
	tr := &par.Tracker{}
	sq := APSPMatrixSquaring(g, tr)
	dj := APSPDijkstra(g)
	for v := 0; v < g.N(); v++ {
		for w := 0; w < g.N(); w++ {
			if diff := sq.At(v, w) - dj.At(v, w); diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("APSP mismatch at (%d,%d): %v vs %v", v, w, sq.At(v, w), dj.At(v, w))
			}
		}
	}
	if tr.Work() == 0 {
		t.Fatal("tracker not charged")
	}
}

func TestAPSPIsMetric(t *testing.T) {
	rng := par.NewRNG(3)
	g := RandomConnected(30, 60, 5, rng)
	m := APSPDijkstra(g)
	if !m.IsMetric(1e-9) {
		t.Fatal("exact APSP distances are not a metric")
	}
}

func TestIsMetricDetectsViolations(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 2, 1)
	m.Set(2, 1, 1)
	m.Set(0, 2, 5) // violates triangle inequality via 1
	m.Set(2, 0, 5)
	if m.IsMetric(0) {
		t.Fatal("triangle violation undetected")
	}
	m.Set(0, 2, 2)
	if m.IsMetric(0) {
		t.Fatal("asymmetry undetected")
	}
	m.Set(2, 0, 2)
	if !m.IsMetric(0) {
		t.Fatal("valid metric rejected")
	}
}

func TestGenerators(t *testing.T) {
	rng := par.NewRNG(4)
	cases := []struct {
		name string
		g    *Graph
		n    int
	}{
		{"path", PathGraph(12, 1), 12},
		{"cycle", CycleGraph(9, 2), 9},
		{"grid", GridGraph(5, 7, 4, rng), 35},
		{"random", RandomConnected(50, 120, 10, rng), 50},
		{"lollipop", Lollipop(10, 20), 30},
		{"clustered", Clustered(4, 10, 100, rng), 40},
		{"geometric", RandomGeometric(40, 0.2, rng), 40},
	}
	for _, c := range cases {
		if c.g.N() != c.n {
			t.Fatalf("%s: N = %d, want %d", c.name, c.g.N(), c.n)
		}
		if !c.g.Connected() {
			t.Fatalf("%s: not connected", c.name)
		}
		min, _ := c.g.WeightRange()
		if min <= 0 {
			t.Fatalf("%s: non-positive weight", c.name)
		}
	}
}

func TestRandomConnectedEdgeCount(t *testing.T) {
	rng := par.NewRNG(5)
	g := RandomConnected(20, 50, 3, rng)
	if g.M() != 50 {
		t.Fatalf("M = %d, want 50", g.M())
	}
}

func TestRandomConnectedPanics(t *testing.T) {
	rng := par.NewRNG(6)
	for _, c := range []struct{ n, m int }{{10, 5}, {5, 100}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("n=%d m=%d: no panic", c.n, c.m)
				}
			}()
			RandomConnected(c.n, c.m, 2, rng)
		}()
	}
}

func TestLollipopHighSPD(t *testing.T) {
	g := Lollipop(8, 30)
	if spd := SPD(g); spd < 30 {
		t.Fatalf("lollipop SPD = %d, want ≥ 30", spd)
	}
}

func TestCompleteFromMatrix(t *testing.T) {
	rng := par.NewRNG(7)
	g := RandomConnected(15, 40, 5, rng)
	m := APSPDijkstra(g)
	c := CompleteFromMatrix(m)
	if c.M() != 15*14/2 {
		t.Fatalf("complete graph edge count = %d", c.M())
	}
	if spd := SPD(c); spd != 1 {
		t.Fatalf("SPD of metric completion = %d, want 1", spd)
	}
}

func TestCompleteGraphDistancesMatchMetric(t *testing.T) {
	rng := par.NewRNG(8)
	g := RandomConnected(12, 25, 5, rng)
	m := APSPDijkstra(g)
	c := CompleteFromMatrix(m)
	cm := APSPDijkstra(c)
	for v := 0; v < 12; v++ {
		for w := 0; w < 12; w++ {
			if d := cm.At(v, w) - m.At(v, w); d > 1e-9 || d < -1e-9 {
				t.Fatalf("metric completion changed distance (%d,%d)", v, w)
			}
		}
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := par.NewRNG(20)
	g := BarabasiAlbert(200, 2, 4, rng)
	if g.N() != 200 {
		t.Fatalf("N = %d", g.N())
	}
	if !g.Connected() {
		t.Fatal("BA graph disconnected")
	}
	// Heavy tail: the maximum degree should far exceed the attach count.
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(Node(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 8 {
		t.Fatalf("max degree %d suspiciously small for preferential attachment", maxDeg)
	}
	// Edge count: clique + ~attach per new node.
	if g.M() < 200 || g.M() > 2*200+3 {
		t.Fatalf("M = %d out of expected band", g.M())
	}
}

func TestBarabasiAlbertSmall(t *testing.T) {
	rng := par.NewRNG(21)
	g := BarabasiAlbert(3, 5, 2, rng)
	if !g.Connected() || g.N() != 3 {
		t.Fatal("degenerate BA graph wrong")
	}
}
