package graph

import (
	"testing"

	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

func TestAddEdgeAndAccessors(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3)
	g.AddEdge(0, 3, 1.5)
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("N=%d M=%d, want 4, 3", g.N(), g.M())
	}
	if w, ok := g.HasEdge(1, 0); !ok || w != 2 {
		t.Fatalf("HasEdge(1,0) = %v,%v", w, ok)
	}
	if _, ok := g.HasEdge(2, 3); ok {
		t.Fatal("phantom edge {2,3}")
	}
	if g.Weight(2, 2) != 0 {
		t.Fatal("ω(v,v) should be 0")
	}
	if !semiring.IsInf(g.Weight(2, 3)) {
		t.Fatal("ω of non-edge should be ∞")
	}
	if g.Degree(0) != 2 {
		t.Fatalf("deg(0) = %d, want 2", g.Degree(0))
	}
}

func TestAddEdgeParallelKeepsLighter(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 5)
	g.AddEdge(0, 1, 3)
	g.AddEdge(0, 1, 9)
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 (parallel edges collapsed)", g.M())
	}
	if w, _ := g.HasEdge(0, 1); w != 3 {
		t.Fatalf("weight = %v, want 3 (lightest)", w)
	}
	if w, _ := g.HasEdge(1, 0); w != 3 {
		t.Fatal("reverse arc not updated")
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"loop", func() { New(2).AddEdge(1, 1, 1) }},
		{"zero weight", func() { New(2).AddEdge(0, 1, 0) }},
		{"negative weight", func() { New(2).AddEdge(0, 1, -1) }},
		{"inf weight", func() { New(2).AddEdge(0, 1, semiring.Inf) }},
		{"out of range", func() { New(2).AddEdge(0, 5, 1) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestEdgesSortedAndComplete(t *testing.T) {
	g := New(4)
	g.AddEdge(2, 1, 4)
	g.AddEdge(0, 3, 1)
	g.AddEdge(0, 1, 2)
	es := g.Edges()
	want := []Edge{{0, 1, 2}, {0, 3, 1}, {1, 2, 4}}
	if len(es) != len(want) {
		t.Fatalf("Edges = %v", es)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("Edges[%d] = %v, want %v", i, es[i], want[i])
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	h := g.Clone()
	h.AddEdge(1, 2, 1)
	if g.M() != 1 || h.M() != 2 {
		t.Fatal("clone shares state with original")
	}
}

func TestConnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	g.AddEdge(1, 2, 1)
	if !g.Connected() {
		t.Fatal("connected graph reported disconnected")
	}
	if !New(0).Connected() {
		t.Fatal("empty graph should count as connected")
	}
}

func TestWeightRange(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 7)
	min, max := g.WeightRange()
	if min != 2 || max != 7 {
		t.Fatalf("WeightRange = %v, %v", min, max)
	}
}

// diamond returns the classic diamond graph where the direct edge 0–3 is
// heavier than the two-hop route.
func diamond() *Graph {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 2)
	g.AddEdge(2, 3, 2)
	g.AddEdge(0, 3, 5)
	return g
}

func TestDijkstraDistances(t *testing.T) {
	g := diamond()
	res := Dijkstra(g, 0)
	want := []float64{0, 1, 2, 2}
	for v, d := range want {
		if res.Dist[v] != d {
			t.Fatalf("dist(0,%d) = %v, want %v", v, res.Dist[v], d)
		}
	}
	if res.Hops[3] != 2 {
		t.Fatalf("hop(0,3) = %d, want 2 (min-hop among shortest paths)", res.Hops[3])
	}
	path := res.PathTo(3)
	if len(path) != 3 || path[0] != 0 || path[2] != 3 {
		t.Fatalf("PathTo(3) = %v", path)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	res := Dijkstra(g, 0)
	if !semiring.IsInf(res.Dist[2]) {
		t.Fatal("unreachable node has finite distance")
	}
	if res.PathTo(2) != nil {
		t.Fatal("PathTo(unreachable) should be nil")
	}
}

func TestDijkstraMinHopTieBreaking(t *testing.T) {
	// Two shortest 0→3 paths of weight 3: 0-1-2-3 (3 hops) and 0-3 via a
	// direct edge of weight 3 (1 hop). Hops must report 1.
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 3, 3)
	res := Dijkstra(g, 0)
	if res.Dist[3] != 3 {
		t.Fatalf("dist = %v", res.Dist[3])
	}
	if res.Hops[3] != 1 {
		t.Fatalf("hop(0,3) = %d, want 1", res.Hops[3])
	}
}

func TestBellmanFordHopLimits(t *testing.T) {
	g := diamond()
	d0 := BellmanFord(g, 0, 0)
	if d0[0] != 0 || !semiring.IsInf(d0[1]) {
		t.Fatalf("0-hop distances wrong: %v", d0)
	}
	d1 := BellmanFord(g, 0, 1)
	if d1[3] != 5 {
		t.Fatalf("dist¹(0,3) = %v, want 5 (direct edge)", d1[3])
	}
	d2 := BellmanFord(g, 0, 2)
	if d2[3] != 2 {
		t.Fatalf("dist²(0,3) = %v, want 2", d2[3])
	}
}

func TestBellmanFordMatchesDijkstraAtFixpoint(t *testing.T) {
	rng := par.NewRNG(1)
	g := RandomConnected(60, 150, 10, rng)
	for _, src := range []Node{0, 17, 59} {
		bf := BellmanFord(g, src, g.N())
		dj := Dijkstra(g, src)
		for v := range bf {
			if bf[v] != dj.Dist[v] {
				t.Fatalf("src %d node %d: BF %v vs Dijkstra %v", src, v, bf[v], dj.Dist[v])
			}
		}
	}
}

func TestSPDPath(t *testing.T) {
	g := PathGraph(10, 1)
	if spd := SPD(g); spd != 9 {
		t.Fatalf("SPD(path10) = %d, want 9", spd)
	}
}

func TestSPDShortcutEdge(t *testing.T) {
	// A path with a heavy chord: the chord does not lie on any shortest
	// path, so SPD remains that of the path.
	g := PathGraph(6, 1)
	g.AddEdge(0, 5, 100)
	if spd := SPD(g); spd != 5 {
		t.Fatalf("SPD = %d, want 5", spd)
	}
	// A light chord creates a 1-hop shortest path between the endpoints.
	h := PathGraph(6, 1)
	h.AddEdge(0, 5, 1)
	if spd := SPD(h); spd >= 5 {
		t.Fatalf("SPD = %d, want < 5 after shortcut", spd)
	}
}

func TestHopDiameter(t *testing.T) {
	g := PathGraph(7, 3.5)
	if d := HopDiameter(g); d != 6 {
		t.Fatalf("D(path7) = %d, want 6", d)
	}
	c := CycleGraph(8, 1)
	if d := HopDiameter(c); d != 4 {
		t.Fatalf("D(cycle8) = %d, want 4", d)
	}
}

func TestAdjacencyMatrix(t *testing.T) {
	g := diamond()
	a := AdjacencyMatrix(g)
	if a.At(0, 0) != 0 {
		t.Fatal("diagonal should be 0")
	}
	if a.At(0, 1) != 1 || a.At(1, 0) != 1 {
		t.Fatal("edge weight wrong")
	}
	if !semiring.IsInf(a.At(1, 2)) {
		t.Fatal("non-edge should be ∞")
	}
}

func TestAPSPMatrixSquaringMatchesDijkstra(t *testing.T) {
	rng := par.NewRNG(2)
	g := RandomConnected(40, 90, 8, rng)
	tr := &par.Tracker{}
	sq := APSPMatrixSquaring(g, tr)
	dj := APSPDijkstra(g)
	for v := 0; v < g.N(); v++ {
		for w := 0; w < g.N(); w++ {
			if diff := sq.At(v, w) - dj.At(v, w); diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("APSP mismatch at (%d,%d): %v vs %v", v, w, sq.At(v, w), dj.At(v, w))
			}
		}
	}
	if tr.Work() == 0 {
		t.Fatal("tracker not charged")
	}
}

func TestAPSPIsMetric(t *testing.T) {
	rng := par.NewRNG(3)
	g := RandomConnected(30, 60, 5, rng)
	m := APSPDijkstra(g)
	if !m.IsMetric(1e-9) {
		t.Fatal("exact APSP distances are not a metric")
	}
}

func TestIsMetricDetectsViolations(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 2, 1)
	m.Set(2, 1, 1)
	m.Set(0, 2, 5) // violates triangle inequality via 1
	m.Set(2, 0, 5)
	if m.IsMetric(0) {
		t.Fatal("triangle violation undetected")
	}
	m.Set(0, 2, 2)
	if m.IsMetric(0) {
		t.Fatal("asymmetry undetected")
	}
	m.Set(2, 0, 2)
	if !m.IsMetric(0) {
		t.Fatal("valid metric rejected")
	}
}

func TestGenerators(t *testing.T) {
	rng := par.NewRNG(4)
	cases := []struct {
		name string
		g    *Graph
		n    int
	}{
		{"path", PathGraph(12, 1), 12},
		{"cycle", CycleGraph(9, 2), 9},
		{"grid", GridGraph(5, 7, 4, rng), 35},
		{"random", RandomConnected(50, 120, 10, rng), 50},
		{"lollipop", Lollipop(10, 20), 30},
		{"clustered", Clustered(4, 10, 100, rng), 40},
		{"geometric", RandomGeometric(40, 0.2, rng), 40},
	}
	for _, c := range cases {
		if c.g.N() != c.n {
			t.Fatalf("%s: N = %d, want %d", c.name, c.g.N(), c.n)
		}
		if !c.g.Connected() {
			t.Fatalf("%s: not connected", c.name)
		}
		min, _ := c.g.WeightRange()
		if min <= 0 {
			t.Fatalf("%s: non-positive weight", c.name)
		}
	}
}

func TestRandomConnectedEdgeCount(t *testing.T) {
	rng := par.NewRNG(5)
	g := RandomConnected(20, 50, 3, rng)
	if g.M() != 50 {
		t.Fatalf("M = %d, want 50", g.M())
	}
}

func TestRandomConnectedPanics(t *testing.T) {
	rng := par.NewRNG(6)
	for _, c := range []struct{ n, m int }{{10, 5}, {5, 100}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("n=%d m=%d: no panic", c.n, c.m)
				}
			}()
			RandomConnected(c.n, c.m, 2, rng)
		}()
	}
}

func TestLollipopHighSPD(t *testing.T) {
	g := Lollipop(8, 30)
	if spd := SPD(g); spd < 30 {
		t.Fatalf("lollipop SPD = %d, want ≥ 30", spd)
	}
}

func TestCompleteFromMatrix(t *testing.T) {
	rng := par.NewRNG(7)
	g := RandomConnected(15, 40, 5, rng)
	m := APSPDijkstra(g)
	c := CompleteFromMatrix(m)
	if c.M() != 15*14/2 {
		t.Fatalf("complete graph edge count = %d", c.M())
	}
	if spd := SPD(c); spd != 1 {
		t.Fatalf("SPD of metric completion = %d, want 1", spd)
	}
}

func TestCompleteGraphDistancesMatchMetric(t *testing.T) {
	rng := par.NewRNG(8)
	g := RandomConnected(12, 25, 5, rng)
	m := APSPDijkstra(g)
	c := CompleteFromMatrix(m)
	cm := APSPDijkstra(c)
	for v := 0; v < 12; v++ {
		for w := 0; w < 12; w++ {
			if d := cm.At(v, w) - m.At(v, w); d > 1e-9 || d < -1e-9 {
				t.Fatalf("metric completion changed distance (%d,%d)", v, w)
			}
		}
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := par.NewRNG(20)
	g := BarabasiAlbert(200, 2, 4, rng)
	if g.N() != 200 {
		t.Fatalf("N = %d", g.N())
	}
	if !g.Connected() {
		t.Fatal("BA graph disconnected")
	}
	// Heavy tail: the maximum degree should far exceed the attach count.
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(Node(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 8 {
		t.Fatalf("max degree %d suspiciously small for preferential attachment", maxDeg)
	}
	// Edge count: clique + ~attach per new node.
	if g.M() < 200 || g.M() > 2*200+3 {
		t.Fatalf("M = %d out of expected band", g.M())
	}
}

func TestBarabasiAlbertSmall(t *testing.T) {
	rng := par.NewRNG(21)
	g := BarabasiAlbert(3, 5, 2, rng)
	if !g.Connected() || g.N() != 3 {
		t.Fatal("degenerate BA graph wrong")
	}
}
