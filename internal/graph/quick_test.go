package graph

// Property-based tests (testing/quick) on the graph substrate: random
// graphs must yield metrics, consistent single- and multi-source distances,
// and hop-monotone Bellman-Ford prefixes.

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// quickGraph wraps a random connected graph for testing/quick.
type quickGraph struct {
	G    *Graph
	Seed uint64
}

// Generate implements quick.Generator: a connected random graph with
// 5–40 nodes and random density.
func (quickGraph) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 5 + r.Intn(36)
	maxM := n * (n - 1) / 2
	m := n - 1 + r.Intn(maxM-(n-1)+1)
	seed := r.Uint64()
	g := RandomConnected(n, m, 8, par.NewRNG(seed))
	return reflect.ValueOf(quickGraph{G: g, Seed: seed})
}

var quickCfg = &quick.Config{MaxCount: 25}

func TestQuickAPSPIsMetric(t *testing.T) {
	f := func(q quickGraph) bool {
		return APSPDijkstra(q.G).IsMetric(1e-9)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBellmanFordMonotoneInHops(t *testing.T) {
	f := func(q quickGraph) bool {
		g := q.G
		prev := BellmanFord(g, 0, 1)
		for h := 2; h < g.N(); h++ {
			cur := BellmanFord(g, 0, h)
			for v := range cur {
				if cur[v] > prev[v] {
					return false // more hops can never hurt
				}
			}
			prev = cur
		}
		// At h = n−1 the distances are exact.
		exact := Dijkstra(g, 0).Dist
		for v := range exact {
			if prev[v] != exact[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMultiSourceConsistent(t *testing.T) {
	f := func(q quickGraph) bool {
		g := q.G
		sources := []Node{0, Node(g.N() / 2)}
		dist, nearest := MultiSourceDijkstra(g, sources)
		d0 := Dijkstra(g, sources[0]).Dist
		d1 := Dijkstra(g, sources[1]).Dist
		for v := range dist {
			want := d0[v]
			if d1[v] < want {
				want = d1[v]
			}
			if dist[v] != want {
				return false
			}
			if nearest[v] != sources[0] && nearest[v] != sources[1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSPDWithinBounds(t *testing.T) {
	f := func(q quickGraph) bool {
		spd := SPD(q.G)
		return spd >= 1 && spd <= q.G.N()-1
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDijkstraHopsAttainDistance(t *testing.T) {
	// The min-hop count reported by Dijkstra must be realisable: the
	// hop-limited distance at exactly Hops[v] hops equals the exact
	// distance, and at Hops[v]−1 hops it is strictly larger.
	f := func(q quickGraph) bool {
		g := q.G
		res := Dijkstra(g, 0)
		for v := 1; v < g.N(); v++ {
			if semiring.IsInf(res.Dist[v]) {
				continue
			}
			h := res.Hops[v]
			if BellmanFord(g, 0, h)[v] != res.Dist[v] {
				return false
			}
			if h > 0 && BellmanFord(g, 0, h-1)[v] <= res.Dist[v] {
				// Fewer hops must not achieve the same (min-hop) distance...
				// except that Hops is min over shortest paths, so equality
				// would contradict minimality.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIORoundTrip(t *testing.T) {
	f := func(q quickGraph) bool {
		var buf bytes.Buffer
		if err := Write(&buf, q.G); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.N() != q.G.N() || got.M() != q.G.M() {
			return false
		}
		a, b := q.G.Edges(), got.Edges()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}
