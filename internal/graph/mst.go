package graph

import "sort"

// This file provides minimum spanning trees (Kruskal with union-find),
// used by the Steiner-tree application as the classic metric-closure
// baseline and for pruning mapped-back tree solutions.

// UnionFind is a disjoint-set forest with union by rank and path
// compression.
type UnionFind struct {
	parent []int32
	rank   []int8
}

// NewUnionFind returns a forest of n singletons.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b, returning false if they were already
// joined.
func (u *UnionFind) Union(a, b int32) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return true
}

// MST returns a minimum spanning tree (or forest, if g is disconnected) of
// g as a new graph on the same node set, together with its total weight.
func MST(g *Graph) (*Graph, float64) {
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool { return edges[i].Weight < edges[j].Weight })
	uf := NewUnionFind(g.N())
	out := NewBuilder(g.N())
	total := 0.0
	for _, e := range edges {
		if uf.Union(int32(e.U), int32(e.V)) {
			out.Add(e.U, e.V, e.Weight)
			total += e.Weight
		}
	}
	return out.Freeze(), total
}
