package graph

import (
	"math"
	"reflect"
	"testing"

	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

func editTestGraph() *Graph {
	// 0—1—2—3 path plus chords {0,2} and {1,3}.
	return NewBuilder(4).
		Add(0, 1, 2).Add(1, 2, 3).Add(2, 3, 4).
		Add(0, 2, 10).Add(1, 3, 10).
		Freeze()
}

// edgeSet flattens a graph to its canonical undirected edge list.
func edgeList(g *Graph) []Edge { return g.Edges() }

func TestApplyEditsValidation(t *testing.T) {
	g := editTestGraph()
	cases := []struct {
		name  string
		edits []Edit
	}{
		{"out of range", []Edit{{Op: EditInsert, U: 0, V: 99, Weight: 1}}},
		{"negative node", []Edit{{Op: EditDelete, U: -1, V: 2}}},
		{"loop", []Edit{{Op: EditInsert, U: 2, V: 2, Weight: 1}}},
		{"zero weight", []Edit{{Op: EditInsert, U: 0, V: 3, Weight: 0}}},
		{"negative weight", []Edit{{Op: EditReweight, U: 0, V: 1, Weight: -1}}},
		{"nan weight", []Edit{{Op: EditInsert, U: 0, V: 3, Weight: math.NaN()}}},
		{"inf weight", []Edit{{Op: EditInsert, U: 0, V: 3, Weight: semiring.Inf}}},
		{"unknown op", []Edit{{Op: EditOp(9), U: 0, V: 1}}},
		{"duplicate pair", []Edit{{Op: EditReweight, U: 0, V: 1, Weight: 5}, {Op: EditDelete, U: 1, V: 0}}},
		{"insert existing", []Edit{{Op: EditInsert, U: 1, V: 0, Weight: 1}}},
		{"delete missing", []Edit{{Op: EditDelete, U: 0, V: 3}}},
		{"reweight missing", []Edit{{Op: EditReweight, U: 0, V: 3, Weight: 1}}},
	}
	before := edgeList(g)
	for _, tc := range cases {
		if _, _, err := ApplyEdits(g, tc.edits); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	if !reflect.DeepEqual(before, edgeList(g)) {
		t.Fatal("rejected batches modified the input graph")
	}
}

func TestApplyEditsEmptyBatch(t *testing.T) {
	g := editTestGraph()
	g2, sum, err := ApplyEdits(g, nil)
	if err != nil || g2 != g {
		t.Fatalf("empty batch: g2=%p err=%v, want the input graph back", g2, err)
	}
	if len(sum.Applied) != 0 || !sum.DecreaseOnly {
		t.Fatalf("empty batch summary: %+v", sum)
	}
}

// TestApplyEditsReweightCOW pins the reweight-only fast path: the result
// must equal a from-scratch build with the new weights, share the row-offset
// array with the input (structure unchanged ⇒ no rebuild), and leave the
// input graph untouched.
func TestApplyEditsReweightCOW(t *testing.T) {
	g := editTestGraph()
	before := edgeList(g)
	g2, sum, err := ApplyEdits(g, []Edit{
		{Op: EditReweight, U: 2, V: 1, Weight: 7},
		{Op: EditReweight, U: 0, V: 2, Weight: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Reweights != 2 || sum.DecreaseOnly {
		t.Fatalf("summary: %+v", sum)
	}
	want := NewBuilder(4).
		Add(0, 1, 2).Add(1, 2, 7).Add(2, 3, 4).
		Add(0, 2, 0.5).Add(1, 3, 10).
		Freeze()
	if !reflect.DeepEqual(edgeList(g2), edgeList(want)) {
		t.Fatalf("COW result %v, want %v", edgeList(g2), edgeList(want))
	}
	if &g2.rowStart[0] != &g.rowStart[0] {
		t.Fatal("reweight-only batch rebuilt the row offsets instead of sharing them")
	}
	if !g2.Symmetric() {
		t.Fatal("COW result lost symmetry")
	}
	if !reflect.DeepEqual(before, edgeList(g)) {
		t.Fatal("COW modified the input graph")
	}
}

func TestApplyEditsMixedRebuild(t *testing.T) {
	g := editTestGraph()
	g2, sum, err := ApplyEdits(g, []Edit{
		{Op: EditDelete, U: 1, V: 3},
		{Op: EditInsert, U: 0, V: 3, Weight: 1.25},
		{Op: EditReweight, U: 1, V: 2, Weight: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Inserts != 1 || sum.Deletes != 1 || sum.Reweights != 1 || sum.DecreaseOnly {
		t.Fatalf("summary: %+v", sum)
	}
	if want := []Node{0, 1, 2, 3}; !reflect.DeepEqual(sum.Touched, want) {
		t.Fatalf("Touched = %v, want %v", sum.Touched, want)
	}
	want := NewBuilder(4).
		Add(0, 1, 2).Add(1, 2, 6).Add(2, 3, 4).
		Add(0, 2, 10).Add(0, 3, 1.25).
		Freeze()
	if !reflect.DeepEqual(edgeList(g2), edgeList(want)) {
		t.Fatalf("rebuild result %v, want %v", edgeList(g2), edgeList(want))
	}
	if g2.M() != g.M() {
		t.Fatalf("M = %d, want %d", g2.M(), g.M())
	}
}

func TestApplyEditsDecreaseOnlyFlag(t *testing.T) {
	g := editTestGraph()
	_, sum, err := ApplyEdits(g, []Edit{
		{Op: EditInsert, U: 0, V: 3, Weight: 100},
		{Op: EditReweight, U: 0, V: 1, Weight: 1},
	})
	if err != nil || !sum.DecreaseOnly {
		t.Fatalf("insert+decrease: DecreaseOnly=%v err=%v, want true", sum.DecreaseOnly, err)
	}
	_, sum, err = ApplyEdits(g, []Edit{{Op: EditReweight, U: 0, V: 1, Weight: 3}})
	if err != nil || sum.DecreaseOnly {
		t.Fatalf("weight increase: DecreaseOnly=%v err=%v, want false", sum.DecreaseOnly, err)
	}
	if sum.Applied[0].OldWeight != 2 {
		t.Fatalf("OldWeight = %v, want 2", sum.Applied[0].OldWeight)
	}
}

// TestBuilderRoundTrip pins the extend-and-refreeze idiom ApplyEdits builds
// on: Builder() must reproduce the graph exactly and pre-size its edge
// buffer (the zero-capacity append storm was a real regression).
func TestBuilderRoundTrip(t *testing.T) {
	g := RandomConnected(64, 256, 8, par.NewRNG(5))
	b := g.Builder()
	if cap(b.edges) < g.M() {
		t.Fatalf("Builder edge buffer capacity %d < m=%d", cap(b.edges), g.M())
	}
	g2 := b.Freeze()
	if !reflect.DeepEqual(edgeList(g), edgeList(g2)) {
		t.Fatal("Builder().Freeze() is not the identity")
	}
}

// TestApplyEditsRandomDifferential cross-checks ApplyEdits against a naive
// map-based reference over random batches.
func TestApplyEditsRandomDifferential(t *testing.T) {
	rng := par.NewRNG(99)
	g := RandomConnected(48, 140, 8, rng)
	for round := 0; round < 30; round++ {
		ref := make(map[uint64]Edge)
		for _, e := range g.Edges() {
			ref[pairKey(e.U, e.V)] = e
		}
		var edits []Edit
		used := map[uint64]struct{}{}
		for len(edits) < 6 {
			u, v := Node(rng.Intn(48)), Node(rng.Intn(48))
			if u == v {
				continue
			}
			key := pairKey(u, v)
			if _, dup := used[key]; dup {
				continue
			}
			used[key] = struct{}{}
			w := 1 + float64(rng.Intn(16))
			if old, exists := ref[key]; exists {
				if rng.Bool() {
					edits = append(edits, Edit{Op: EditDelete, U: u, V: v})
					delete(ref, key)
				} else {
					edits = append(edits, Edit{Op: EditReweight, U: u, V: v, Weight: w})
					old.Weight = w
					ref[key] = old
				}
			} else {
				edits = append(edits, Edit{Op: EditInsert, U: u, V: v, Weight: w})
				cu, cv := u, v
				if cu > cv {
					cu, cv = cv, cu
				}
				ref[key] = Edge{U: cu, V: cv, Weight: w}
			}
		}
		g2, _, err := ApplyEdits(g, edits)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := NewBuilder(48)
		for _, e := range ref {
			want.Add(e.U, e.V, e.Weight)
		}
		if !reflect.DeepEqual(edgeList(g2), edgeList(want.Freeze())) {
			t.Fatalf("round %d: edited graph diverges from reference", round)
		}
		g = g2
	}
}
