package graph

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
)

func TestHeap4PushPopSorted(t *testing.T) {
	const n = 500
	rng := rand.New(rand.NewSource(1))
	keys := make([]float64, n)
	h := NewHeap4[float64](n)
	for i := range keys {
		keys[i] = rng.Float64()
		h.Push(int32(i), keys[i])
	}
	if h.Len() != n {
		t.Fatalf("Len = %d, want %d", h.Len(), n)
	}
	want := append([]float64(nil), keys...)
	sort.Float64s(want)
	for i := 0; i < n; i++ {
		id, k := h.Pop()
		if k != want[i] {
			t.Fatalf("pop %d: key %v, want %v", i, k, want[i])
		}
		if keys[id] != k {
			t.Fatalf("pop %d: id %d does not own key %v", i, id, k)
		}
	}
	if h.Len() != 0 {
		t.Fatal("heap not empty after draining")
	}
}

func TestHeap4DecreaseKey(t *testing.T) {
	h := NewHeap4[float64](4)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(2, 30)
	if !h.Contains(1) || h.Contains(3) {
		t.Fatal("Contains wrong")
	}
	h.Push(2, 5) // decrease 30 → 5: must pop first now
	id, k := h.Pop()
	if id != 2 || k != 5 {
		t.Fatalf("Pop = (%d, %v), want (2, 5)", id, k)
	}
	if h.Contains(2) {
		t.Fatal("popped id still reported present")
	}
	h.Push(2, 1) // re-insert after pop
	if id, k := h.Pop(); id != 2 || k != 1 {
		t.Fatalf("re-insert Pop = (%d, %v), want (2, 1)", id, k)
	}
}

func TestHeap4GenericIntKeys(t *testing.T) {
	h := NewHeap4[int](3)
	h.Push(0, 7)
	h.Push(1, 3)
	h.Push(2, 5)
	order := []int32{1, 2, 0}
	for _, want := range order {
		if id, _ := h.Pop(); id != want {
			t.Fatalf("int-key pop order wrong: got %d, want %d", id, want)
		}
	}
}

// TestHeap4AgainstContainerHeap drives both heaps with the same random
// push/decrease/pop trace and checks the popped key sequences coincide.
func TestHeap4AgainstContainerHeap(t *testing.T) {
	const n = 200
	rng := rand.New(rand.NewSource(7))
	h := NewHeap4[float64](n)
	var ref boxedPQ
	best := make([]float64, n) // current key per id, NaN-free; +Inf = absent
	for i := range best {
		best[i] = -1
	}
	var got, want []float64
	for step := 0; step < 2000; step++ {
		switch {
		case rng.Intn(3) > 0 || h.Len() == 0:
			id := int32(rng.Intn(n))
			k := rng.Float64()
			if h.Contains(id) {
				if k >= best[id] {
					continue // only decreases are legal
				}
			} else if best[id] >= 0 {
				continue // popped earlier in this trace; keep it out
			}
			best[id] = k
			h.Push(id, k)
			heap.Push(&ref, boxedItem{node: Node(id), dist: k})
		default:
			_, k := h.Pop()
			got = append(got, k)
			// Drain stale duplicates from the boxed heap (it uses lazy
			// deletion).
			for {
				it := heap.Pop(&ref).(boxedItem)
				if best[it.node] == it.dist {
					want = append(want, it.dist)
					break
				}
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("pop counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pop %d: %v vs %v", i, got[i], want[i])
		}
	}
}
