package graph

import (
	"math"
	"reflect"
	"testing"

	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// FuzzApplyUpdates throws hostile edit batches — dangling endpoints, NaN,
// negative, zero, and infinite weights, duplicate and unknown edits — at
// ApplyEdits and checks the transactional contract: it never panics, a
// rejected batch changes nothing, and an accepted batch yields a symmetric
// loop-free graph with finite positive weights whose edge count matches the
// batch arithmetic. The input graph must be untouched either way.
func FuzzApplyUpdates(f *testing.F) {
	f.Add([]byte{0, 0, 1, 64, 0})
	f.Add([]byte{1, 2, 3, 0, 0, 2, 4, 5, 255, 9})
	f.Add([]byte{2, 200, 1, 128, 7, 0, 6, 6, 3, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := RandomConnected(24, 60, 8, par.NewRNG(4))
		before := g.Edges()

		// Decode 5 bytes per edit: op, u, v, weight selector, weight byte.
		var edits []Edit
		for i := 0; i+5 <= len(data) && len(edits) < 64; i += 5 {
			var w float64
			switch data[i+3] % 8 {
			case 0:
				w = math.NaN()
			case 1:
				w = semiring.Inf
			case 2:
				w = -float64(data[i+4])
			case 3:
				w = 0
			default:
				w = float64(data[i+4]) / 4
			}
			edits = append(edits, Edit{
				Op:     EditOp(data[i] % 5), // includes two invalid op values
				U:      Node(int(data[i+1]) - 2),
				V:      Node(int(data[i+2]) - 2),
				Weight: w,
			})
		}

		g2, sum, err := ApplyEdits(g, edits)
		if !reflect.DeepEqual(before, g.Edges()) {
			t.Fatal("ApplyEdits modified its input graph")
		}
		if err != nil {
			if g2 != nil {
				t.Fatal("error return carried a graph")
			}
			return
		}
		if g2.M() != g.M()+sum.Inserts-sum.Deletes {
			t.Fatalf("M=%d after %d inserts, %d deletes of m=%d", g2.M(), sum.Inserts, sum.Deletes, g.M())
		}
		if !g2.Symmetric() {
			t.Fatal("edited graph is not symmetric")
		}
		for _, e := range g2.Edges() {
			if e.U == e.V || !(e.Weight > 0) || semiring.IsInf(e.Weight) {
				t.Fatalf("invalid surviving edge %+v", e)
			}
		}
		for _, ae := range sum.Applied {
			w, exists := g2.HasEdge(ae.U, ae.V)
			switch ae.Op {
			case EditDelete:
				if exists {
					t.Fatalf("deleted edge {%d,%d} still present", ae.U, ae.V)
				}
			default:
				if !exists || w != ae.Weight {
					t.Fatalf("edit %+v not reflected: weight %v exists %v", ae, w, exists)
				}
			}
		}
	})
}
