package graph

import (
	"parmbf/internal/semiring"
)

// MultiSourceDijkstra computes, for every node, the distance to the nearest
// source and which source attains it (ties broken towards the source
// reached first by the heap order, i.e. deterministically for fixed
// weights). It is the evaluation primitive of the k-median application
// (dist(v, F, G) in Definition 9.1) and of the candidate-sampling step.
// Like Dijkstra, it runs on the non-boxing 4-ary index heap.
func MultiSourceDijkstra(g *Graph, sources []Node) (dist []float64, nearest []Node) {
	n := g.N()
	dist = make([]float64, n)
	nearest = make([]Node, n)
	for v := range dist {
		dist[v] = semiring.Inf
		nearest[v] = -1
	}
	q := NewHeap4[float64](n)
	for _, s := range sources {
		if dist[s] > 0 {
			dist[s] = 0
			nearest[s] = s
			q.Push(int32(s), 0)
		}
	}
	for q.Len() > 0 {
		v32, dv := q.Pop()
		v := Node(v32)
		for _, a := range g.Neighbors(v) {
			if nd := dv + a.Weight; nd < dist[a.To] {
				dist[a.To] = nd
				nearest[a.To] = nearest[v]
				q.Push(int32(a.To), nd)
			}
		}
	}
	return dist, nearest
}
