package graph

import (
	"container/heap"

	"parmbf/internal/semiring"
)

// MultiSourceDijkstra computes, for every node, the distance to the nearest
// source and which source attains it (ties broken towards the source
// reached first by the heap order, i.e. deterministically for fixed
// weights). It is the evaluation primitive of the k-median application
// (dist(v, F, G) in Definition 9.1) and of the candidate-sampling step.
func MultiSourceDijkstra(g *Graph, sources []Node) (dist []float64, nearest []Node) {
	n := g.N()
	dist = make([]float64, n)
	nearest = make([]Node, n)
	for v := range dist {
		dist[v] = semiring.Inf
		nearest[v] = -1
	}
	q := make(pq, 0, len(sources))
	for _, s := range sources {
		if dist[s] > 0 {
			dist[s] = 0
			nearest[s] = s
			q = append(q, pqItem{node: s, dist: 0})
		}
	}
	heap.Init(&q)
	done := make([]bool, n)
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		v := it.node
		if done[v] {
			continue
		}
		done[v] = true
		for _, a := range g.adj[v] {
			if nd := dist[v] + a.Weight; nd < dist[a.To] {
				dist[a.To] = nd
				nearest[a.To] = nearest[v]
				heap.Push(&q, pqItem{node: a.To, dist: nd})
			}
		}
	}
	return dist, nearest
}
