package graph

import "cmp"

// Heap4 is a non-boxing 4-ary indexed min-heap over the dense ids 0..n-1
// with keys of any ordered type. It replaces the container/heap +
// interface{} priority queue of the seed implementation on every Dijkstra
// hot path: no per-push allocation, no interface boxing, and DecreaseKey
// instead of lazy duplicate entries, so the heap never exceeds n elements.
// The 4-ary layout trades slightly more comparisons per sift-down for half
// the tree depth and better cache locality than a binary heap.
//
// Heap4 is not safe for concurrent use; each goroutine owns its own.
type Heap4[K cmp.Ordered] struct {
	key  []K     // key[id] is the current priority of id (valid while in heap)
	heap []int32 // heap[i] is the id at heap position i
	pos  []int32 // pos[id] is the heap position of id, or -1 if absent
}

// NewHeap4 returns an empty heap over ids 0..n-1.
func NewHeap4[K cmp.Ordered](n int) *Heap4[K] {
	h := &Heap4[K]{
		key:  make([]K, n),
		heap: make([]int32, 0, n),
		pos:  make([]int32, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len returns the number of ids currently in the heap.
func (h *Heap4[K]) Len() int { return len(h.heap) }

// Push inserts id with the given key, or decreases id's key if it is
// already present. The new key must not exceed the current one (Dijkstra
// only ever relaxes downward); pushing a larger key for a present id is a
// programming error and leaves the heap order undefined.
func (h *Heap4[K]) Push(id int32, key K) {
	h.key[id] = key
	if p := h.pos[id]; p >= 0 {
		h.up(int(p))
		return
	}
	h.heap = append(h.heap, id)
	h.pos[id] = int32(len(h.heap) - 1)
	h.up(len(h.heap) - 1)
}

// Pop removes and returns the id with the minimum key, and that key.
// It panics if the heap is empty.
func (h *Heap4[K]) Pop() (int32, K) {
	root := h.heap[0]
	key := h.key[root]
	h.pos[root] = -1
	last := len(h.heap) - 1
	if last > 0 {
		moved := h.heap[last]
		h.heap[0] = moved
		h.pos[moved] = 0
	}
	h.heap = h.heap[:last]
	if last > 1 {
		h.down(0)
	}
	return root, key
}

// Contains reports whether id is currently in the heap.
func (h *Heap4[K]) Contains(id int32) bool { return h.pos[id] >= 0 }

func (h *Heap4[K]) up(i int) {
	id := h.heap[i]
	k := h.key[id]
	for i > 0 {
		parent := (i - 1) >> 2
		pid := h.heap[parent]
		if h.key[pid] <= k {
			break
		}
		h.heap[i] = pid
		h.pos[pid] = int32(i)
		i = parent
	}
	h.heap[i] = id
	h.pos[id] = int32(i)
}

func (h *Heap4[K]) down(i int) {
	n := len(h.heap)
	id := h.heap[i]
	k := h.key[id]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		// Find the smallest of the up-to-four children.
		min := first
		minKey := h.key[h.heap[first]]
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if ck := h.key[h.heap[c]]; ck < minKey {
				min, minKey = c, ck
			}
		}
		if minKey >= k {
			break
		}
		cid := h.heap[min]
		h.heap[i] = cid
		h.pos[cid] = int32(i)
		i = min
	}
	h.heap[i] = id
	h.pos[id] = int32(i)
}
