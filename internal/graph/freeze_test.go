package graph

import (
	"math/rand"
	"strings"
	"testing"

	"parmbf/internal/par"
)

// sameGraph asserts that a and b are byte-identical CSR layouts: equal row
// offsets and equal arc arrays, element for element.
func sameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("shape mismatch: (%d nodes, %d edges) vs (%d nodes, %d edges)",
			a.N(), a.M(), b.N(), b.M())
	}
	for i := range a.rowStart {
		if a.rowStart[i] != b.rowStart[i] {
			t.Fatalf("rowStart[%d]: %d vs %d", i, a.rowStart[i], b.rowStart[i])
		}
	}
	if len(a.arcs) != len(b.arcs) {
		t.Fatalf("arc count: %d vs %d", len(a.arcs), len(b.arcs))
	}
	for i := range a.arcs {
		if a.arcs[i] != b.arcs[i] {
			t.Fatalf("arcs[%d]: %+v vs %+v", i, a.arcs[i], b.arcs[i])
		}
	}
	if a.symmetric != b.symmetric {
		t.Fatalf("symmetric flag: %v vs %v", a.symmetric, b.symmetric)
	}
}

// randomBuilder accumulates a messy edge stream: duplicates with differing
// weights, both orientations, skewed endpoint distribution — everything the
// dedup and stable scatter must handle.
func randomBuilder(n, m int, seed int64) *Builder {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for len(b.edges) < m {
		u := Node(rng.Intn(n))
		// Square the second draw toward low ids for degree skew.
		v := Node(rng.Intn(n) * rng.Intn(n) / n)
		if u == v {
			continue
		}
		w := quantize(0.5 + rng.Float64())
		if rng.Intn(4) == 0 {
			u, v = v, u // reversed duplicates
		}
		b.AddEdge(u, v, w)
		if rng.Intn(3) == 0 { // parallel edge, different weight
			b.Add(u, v, quantize(0.5+rng.Float64()))
		}
	}
	return b
}

// TestFreezeParallelMatchesSerial pins the tentpole invariant: the parallel
// scatter produces a byte-identical graph to the serial reference at every
// parallel width, for edge streams both above and below the dispatch
// threshold.
func TestFreezeParallelMatchesSerial(t *testing.T) {
	defer func(p int) { par.MaxProcs = p }(par.MaxProcs)
	for _, tc := range []struct{ n, m int }{
		{n: 5, m: 8},
		{n: 64, m: 300},
		{n: 1000, m: 5000},
		{n: 300, m: 100000}, // heavy duplication, above freezeParallelMin
	} {
		b := randomBuilder(tc.n, tc.m, int64(tc.n*31+tc.m))
		want := b.freezeSerial()
		for _, procs := range []int{1, 2, 3, 7, 16} {
			par.MaxProcs = procs
			sameGraph(t, want, b.freezeParallel())
		}
	}
}

// TestFreezeDispatchEquivalence drives the public Freeze entry point across
// parallel widths: whatever path the dispatcher picks, the output must
// equal the serial reference.
func TestFreezeDispatchEquivalence(t *testing.T) {
	defer func(p int) { par.MaxProcs = p }(par.MaxProcs)
	b := randomBuilder(2000, 80000, 7)
	want := b.freezeSerial()
	for _, procs := range []int{1, 4} {
		par.MaxProcs = procs
		sameGraph(t, want, b.Freeze())
	}
}

// TestFreezeParallelNoDuplicates exercises the kept == m2 fast path where
// the dedup pass collapses nothing and the scatter array is used as-is.
func TestFreezeParallelNoDuplicates(t *testing.T) {
	defer func(p int) { par.MaxProcs = p }(par.MaxProcs)
	b := NewBuilder(200)
	for u := 0; u < 200; u++ {
		for d := 1; d <= 3; d++ {
			v := (u + d*7 + 1) % 200
			if u < v {
				b.Add(Node(u), Node(v), quantize(1+float64(u%13)/13))
			}
		}
	}
	want := b.freezeSerial()
	par.MaxProcs = 8
	sameGraph(t, want, b.freezeParallel())
}

// TestCheckArcCapacity unit-tests the int32 overflow guard with mocked
// counts: 2^30 edges is the first count whose 2m directed arcs no longer
// fit int32 offsets.
func TestCheckArcCapacity(t *testing.T) {
	if err := checkArcCapacity(maxFreezeEdges); err != nil {
		t.Fatalf("capacity check rejected the maximum legal count: %v", err)
	}
	err := checkArcCapacity(maxFreezeEdges + 1)
	if err == nil {
		t.Fatal("capacity check accepted an overflowing edge count")
	}
	if !strings.Contains(err.Error(), "int32") {
		t.Fatalf("overflow error should name the int32 offset range, got %q", err)
	}
}

// TestFreezeCheckedSmall confirms the error-returning entry point behaves
// like Freeze on legal inputs.
func TestFreezeCheckedSmall(t *testing.T) {
	b := NewBuilder(3).Add(0, 1, 1).Add(1, 2, 2)
	g, err := b.FreezeChecked()
	if err != nil {
		t.Fatalf("FreezeChecked: %v", err)
	}
	sameGraph(t, b.freezeSerial(), g)
}
