package spanner

import (
	"math"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// maxStretch returns the worst dist_spanner/dist_G ratio over all connected
// pairs.
func maxStretch(g, s *graph.Graph) float64 {
	eg := graph.APSPDijkstra(g)
	es := graph.APSPDijkstra(s)
	worst := 1.0
	for v := 0; v < g.N(); v++ {
		for w := v + 1; w < g.N(); w++ {
			dg := eg.At(v, w)
			ds := es.At(v, w)
			if ds/dg > worst {
				worst = ds / dg
			}
			if ds < dg-1e-9 {
				return -1 // spanner shortened a distance: broken
			}
		}
	}
	return worst
}

func TestK1ReturnsCopy(t *testing.T) {
	rng := par.NewRNG(1)
	g := graph.RandomConnected(20, 50, 5, rng)
	s := Build(g, 1, rng, nil)
	if s.M() != g.M() {
		t.Fatalf("k=1 spanner has %d edges, want %d", s.M(), g.M())
	}
	if got := maxStretch(g, s); got != 1 {
		t.Fatalf("k=1 stretch %v", got)
	}
}

func TestStretchBoundHolds(t *testing.T) {
	for _, k := range []int{2, 3, 5} {
		for seed := uint64(0); seed < 3; seed++ {
			rng := par.NewRNG(100*uint64(k) + seed)
			g := graph.RandomConnected(60, 300, 8, rng)
			s := Build(g, k, rng, nil)
			got := maxStretch(g, s)
			if got == -1 {
				t.Fatalf("k=%d seed=%d: spanner shortened a distance", k, seed)
			}
			if bound := float64(2*k - 1); got > bound+1e-9 {
				t.Fatalf("k=%d seed=%d: stretch %.3f exceeds %v", k, seed, got, bound)
			}
		}
	}
}

func TestSpannerIsSubgraph(t *testing.T) {
	rng := par.NewRNG(2)
	g := graph.RandomConnected(40, 200, 6, rng)
	s := Build(g, 3, rng, nil)
	for _, e := range s.Edges() {
		w, ok := g.HasEdge(e.U, e.V)
		if !ok || w != e.Weight {
			t.Fatalf("spanner edge {%d,%d}:%v not in G", e.U, e.V, e.Weight)
		}
	}
}

func TestSpannerSparsifiesDenseGraphs(t *testing.T) {
	rng := par.NewRNG(3)
	n := 100
	g := graph.RandomConnected(n, n*(n-1)/4, 5, rng)
	k := 3
	s := Build(g, k, rng, nil)
	// Expected size O(k·n^{1+1/k}); allow a generous constant of 8.
	bound := 8 * float64(k) * math.Pow(float64(n), 1+1/float64(k))
	if float64(s.M()) > bound {
		t.Fatalf("spanner size %d exceeds %0.f", s.M(), bound)
	}
	if s.M() >= g.M() {
		t.Fatalf("spanner (%d edges) did not sparsify G (%d edges)", s.M(), g.M())
	}
}

func TestSpannerKeepsConnectivity(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		rng := par.NewRNG(40 + seed)
		g := graph.RandomConnected(50, 150, 5, rng)
		s := Build(g, 4, rng, nil)
		if !s.Connected() {
			t.Fatalf("seed %d: spanner disconnected", seed)
		}
	}
}

func TestSpannerOnGrid(t *testing.T) {
	rng := par.NewRNG(5)
	g := graph.GridGraph(8, 8, 3, rng)
	s := Build(g, 2, rng, nil)
	if got := maxStretch(g, s); got == -1 || got > 3+1e-9 {
		t.Fatalf("grid stretch %v exceeds 3", got)
	}
}

func TestSpannerTracksWork(t *testing.T) {
	rng := par.NewRNG(6)
	g := graph.RandomConnected(30, 100, 4, rng)
	tr := &par.Tracker{}
	Build(g, 3, rng, tr)
	if tr.Work() == 0 {
		t.Fatal("tracker not charged")
	}
}

func TestRecommendedK(t *testing.T) {
	if k := RecommendedK(1000, 1.0); k != 3 {
		t.Fatalf("RecommendedK(1000, 1) = %d, want 3 (1/(√2−1) ≈ 2.41 → 3)", k)
	}
	if k := RecommendedK(1000, 0); k < 2 {
		t.Fatalf("default eps must give k ≥ 2, got %d", k)
	}
	if k := RecommendedK(4, 0.0001); k > 3 {
		t.Fatalf("k = %d not clamped to log₂ n", k)
	}
}
