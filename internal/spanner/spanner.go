// Package spanner implements the randomised (2k−1)-spanner of Baswana and
// Sen [8], the preprocessing step of Theorem 6.2 and Corollary 7.11 of
// Friedrichs & Lenzen: a subgraph G′ ⊆ G with O(k·n^{1+1/k}) edges in
// expectation satisfying
//
//	dist(v,w,G) ≤ dist(v,w,G′) ≤ (2k−1)·dist(v,w,G)
//
// for all pairs. Feeding G′ into the tree-embedding pipeline trades a
// factor O(k) of stretch for near-linear size.
//
// The construction runs k−1 clustering rounds: each round samples surviving
// clusters with probability n^{-1/k}; an unsampled vertex either joins its
// cheapest adjacent sampled cluster (keeping that connecting edge and one
// cheapest edge to every cluster that is strictly cheaper) or, lacking
// sampled neighbors, keeps one cheapest edge per adjacent cluster and
// retires. A final round connects every vertex to each adjacent surviving
// cluster with a cheapest edge.
package spanner

import (
	"math"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// Build computes a (2k−1)-spanner of g. k must be ≥ 1; k = 1 returns a copy
// of g (stretch 1). The input graph is not modified.
func Build(g *graph.Graph, k int, rng *par.RNG, tracker *par.Tracker) *graph.Graph {
	n := g.N()
	if k <= 1 {
		return g.Clone()
	}
	out := graph.NewBuilder(n)
	p := math.Pow(float64(n), -1/float64(k))

	// cluster[v] is the id of v's current cluster, or -1 once v retired.
	cluster := make([]int32, n)
	for v := range cluster {
		cluster[v] = int32(v)
	}
	// alive marks edges still under consideration, one boolean per directed
	// arc in the flat CSR layout: the arc Neighbors(v)[i] lives at
	// off[v]+i.
	off := make([]int, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + g.Degree(graph.Node(v))
	}
	alive := make([]bool, off[n])
	for i := range alive {
		alive[i] = true
	}
	// kill marks the arc v→w (and its reverse, found by binary search) dead.
	kill := func(v graph.Node, idx int) {
		alive[off[v]+idx] = false
		w := g.Neighbors(v)[idx].To
		if j := g.NeighborIndex(w, v); j >= 0 {
			alive[off[w]+j] = false
		}
	}

	type best struct {
		idx    int
		weight float64
	}
	// cheapestPerCluster scans v's alive arcs and returns, per adjacent
	// cluster, the index of the cheapest arc.
	cheapestPerCluster := func(v graph.Node) map[int32]best {
		m := make(map[int32]best)
		for i, a := range g.Neighbors(v) {
			if !alive[off[v]+i] {
				continue
			}
			c := cluster[a.To]
			if c == -1 || c == cluster[v] {
				continue
			}
			if b, ok := m[c]; !ok || a.Weight < b.weight {
				m[c] = best{idx: i, weight: a.Weight}
			}
		}
		return m
	}

	work := int64(0)
	for round := 1; round < k; round++ {
		// Sample the surviving clusters.
		sampled := make(map[int32]bool)
		seen := make(map[int32]bool)
		for v := 0; v < n; v++ {
			c := cluster[v]
			if c == -1 || seen[c] {
				continue
			}
			seen[c] = true
			if rng.Float64() < p {
				sampled[c] = true
			}
		}
		next := make([]int32, n)
		for v := 0; v < n; v++ {
			c := cluster[v]
			switch {
			case c == -1:
				next[v] = -1
			case sampled[c]:
				next[v] = c
			default:
				next[v] = -1 // decided below
			}
		}
		for vi := 0; vi < n; vi++ {
			v := graph.Node(vi)
			c := cluster[vi]
			if c == -1 || sampled[c] {
				continue
			}
			adj := cheapestPerCluster(v)
			work += int64(g.Degree(v))
			// Cheapest sampled adjacent cluster, if any.
			bestC, found := int32(-1), false
			var bestB best
			for cc, b := range adj {
				if !sampled[cc] {
					continue
				}
				if !found || b.weight < bestB.weight || (b.weight == bestB.weight && cc < bestC) {
					bestC, bestB, found = cc, b, true
				}
			}
			if found {
				// Join bestC via its cheapest edge.
				a := g.Neighbors(v)[bestB.idx]
				out.Add(v, a.To, a.Weight)
				next[vi] = bestC
				// Keep one cheapest edge to every strictly cheaper cluster
				// and drop all edges into those clusters and into bestC.
				for cc, b := range adj {
					if cc == bestC {
						continue
					}
					if b.weight < bestB.weight {
						e := g.Neighbors(v)[b.idx]
						out.Add(v, e.To, e.Weight)
						for i, arc := range g.Neighbors(v) {
							if alive[off[v]+i] && cluster[arc.To] == cc {
								kill(v, i)
							}
						}
					}
				}
				for i, arc := range g.Neighbors(v) {
					if alive[off[v]+i] && cluster[arc.To] == bestC {
						kill(v, i)
					}
				}
			} else {
				// No sampled neighbor: keep one cheapest edge per adjacent
				// cluster, then retire v with all its edges.
				for _, b := range adj {
					e := g.Neighbors(v)[b.idx]
					out.Add(v, e.To, e.Weight)
				}
				for i := range g.Neighbors(v) {
					if alive[off[v]+i] {
						kill(v, i)
					}
				}
				next[vi] = -1
			}
		}
		cluster = next
	}

	// Final round: every vertex keeps one cheapest alive edge to each
	// adjacent surviving cluster.
	for vi := 0; vi < n; vi++ {
		v := graph.Node(vi)
		for _, b := range cheapestPerCluster(v) {
			e := g.Neighbors(v)[b.idx]
			out.Add(v, e.To, e.Weight)
		}
		work += int64(g.Degree(v))
	}
	tracker.AddPhase(work, int64(k))
	return out.Freeze()
}

// RecommendedK returns the k achieving edge budget ≈ n^{1+ε}: the k of
// Theorem 6.2's proof, ⌈1/(√(1+ε)−1)⌉ clamped to [2, log₂ n].
func RecommendedK(n int, eps float64) int {
	if eps <= 0 {
		eps = 0.5
	}
	k := int(math.Ceil(1 / (math.Sqrt(1+eps) - 1)))
	if k < 2 {
		k = 2
	}
	if max := int(math.Log2(float64(n) + 2)); k > max {
		k = max
	}
	return k
}
