// Package congest simulates the Congest model of distributed computation
// (Peleg [38]) for the tree-embedding algorithms of §8 of Friedrichs &
// Lenzen: synchronous rounds, one O(log n)-bit message per edge per round —
// i.e. one (node, distance) pair per edge per round.
//
// Two LE-list algorithms are provided:
//
//   - Khan et al. (§8.1): iterate the LE-list MBF-like algorithm on G until
//     its fixpoint. Each iteration transmits every node's filtered list to
//     its neighbors, costing max_v |x_v| rounds; the total is
//     O(SPD(G)·log n) w.h.p.
//
//   - Skeleton (§8.2/8.3): sample a skeleton S of ≈ √(n·log n) nodes
//     ordered before everyone else, compute the skeleton graph's distances
//     with hop-limited exploration, sparsify it with a Baswana–Sen spanner,
//     broadcast the spanner (so that LE lists on the skeleton cost no
//     communication), and finish with ℓ local MBF iterations on G with
//     stretched weights. Round complexity Õ(√n + D(G)) — beating Khan et
//     al. whenever SPD(G) ≫ √n, which experiment E9 demonstrates on
//     lollipop graphs.
//
// Substitution note (DESIGN.md, substitution 2): where §8.3 invokes the
// Henzinger et al. Congest hop set [25] to push the skeleton work to
// n^{1/2+o(1)}, this simulator uses the exact hop-limited skeleton distances
// of the [22] variant (§8.2); the measured comparison "skeleton beats
// per-hop iteration when SPD ≫ √n" is the same.
package congest

import (
	"math"
	"sort"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/mbf"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
	"parmbf/internal/spanner"
)

// Result reports the outcome of a distributed LE-list computation.
type Result struct {
	// Lists are the computed LE lists (w.r.t. G's metric for Khan, w.r.t.
	// the stretched overlay metric H for Skeleton).
	Lists []semiring.DistMap
	// Order is the random node order used (skeleton-first for Skeleton).
	Order *frt.Order
	// Rounds is the simulated Congest round count.
	Rounds int
	// Iterations is the number of MBF-like iterations on G.
	Iterations int
	// StretchBound bounds dist_list/dist_G: 1 for Khan, 2k−1 for Skeleton.
	StretchBound float64
	// Skeleton is the sampled skeleton node set (Skeleton algorithm only).
	Skeleton []graph.Node
	// Spanner is the broadcast skeleton spanner (Skeleton algorithm only).
	Spanner *graph.Graph
}

// leRunner builds the MBF runner for LE lists on g with edge weights scaled
// by alpha.
func leRunner(g *graph.Graph, order *frt.Order, alpha float64) *mbf.Runner[float64, semiring.DistMap] {
	return &mbf.Runner[float64, semiring.DistMap]{
		Graph:         g,
		Module:        semiring.DistMapModule{},
		Filter:        order.Filter(),
		FilterInPlace: order.FilterInPlace(),
		Weight:        func(_, _ graph.Node, w float64) float64 { return alpha * w },
		Size:          func(m semiring.DistMap) int { return m.Len() + 1 },
	}
}

// maxListLen returns max_v |x_v|, the per-iteration round cost of
// transmitting all filtered lists.
func maxListLen(x []semiring.DistMap) int {
	max := 1
	for _, l := range x {
		if l.Len() > max {
			max = l.Len()
		}
	}
	return max
}

// Khan runs the algorithm of Khan et al. [26] (§8.1): LE-list MBF-like
// iterations on G until the fixpoint, costing O(SPD(G)·log n) rounds w.h.p.
//
// The simulation is frontier-driven: each step re-aggregates only the nodes
// an LE-list change can reach, and the fixpoint is detected when the
// frontier empties — no full-vector comparison. The loop holds one Stepper
// for its whole run, so the runner's scratch pools and the state vector are
// reused across rounds instead of re-copied per step. The round accounting
// is unchanged: the algorithm as analysed broadcasts every node's filtered
// list each iteration, so every iteration still costs max_v |x_v| rounds;
// sparsity only makes the simulation itself faster.
func Khan(g *graph.Graph, rng *par.RNG) *Result {
	n := g.N()
	order := frt.NewOrder(n, rng)
	runner := leRunner(g, order, 1)

	st := runner.NewStepper(frt.InitialStates(n))
	defer st.Release()
	rounds := 0
	for !st.Done() {
		rounds += maxListLen(st.States())
		st.Step()
		if st.Steps() > n {
			break
		}
	}
	return &Result{Lists: st.States(), Order: order, Rounds: rounds, Iterations: st.Steps(), StretchBound: 1}
}

// SkeletonOptions configures Skeleton.
type SkeletonOptions struct {
	// Ell is the hop-exploration radius ℓ; 0 selects ⌈√(n·ln n)⌉.
	Ell int
	// C is the skeleton oversampling factor (sampling probability
	// C·ln n/ℓ); 0 selects 2.
	C float64
	// SpannerK is the Baswana–Sen parameter for sparsifying the skeleton
	// graph; 0 selects 2 (a 3-spanner).
	SpannerK int
}

// Skeleton runs the skeleton-based distributed FRT algorithm in the style
// of §8.2/8.3. The returned LE lists are w.r.t. the overlay metric H, which
// embeds G with stretch at most StretchBound = 2k−1.
func Skeleton(g *graph.Graph, rng *par.RNG, opts SkeletonOptions) *Result {
	n := g.N()
	ell := opts.Ell
	if ell <= 0 {
		ell = int(math.Ceil(math.Sqrt(float64(n) * math.Log(float64(n)+2))))
	}
	c := opts.C
	if c <= 0 {
		c = 2
	}
	k := opts.SpannerK
	if k <= 0 {
		k = 2
	}
	alpha := float64(2*k - 1)

	rounds := 0
	diameter := graph.HopDiameter(g)
	rounds += diameter // BFS-tree setup, β and ID-threshold broadcasts.

	// Sample the skeleton S.
	p := c * math.Log(float64(n)+1) / float64(ell)
	if p > 1 {
		p = 1
	}
	var skeleton []graph.Node
	for v := 0; v < n; v++ {
		if rng.Float64() < p {
			skeleton = append(skeleton, graph.Node(v))
		}
	}
	if len(skeleton) == 0 {
		skeleton = append(skeleton, graph.Node(rng.Intn(n)))
	}

	// Skeleton-first random order (Lemma 4.9 of [22] justifies coupling the
	// order to S).
	order := NewSkeletonFirstOrder(n, skeleton, rng)

	// ℓ-hop-limited skeleton distances ((S, ℓ, |S|)-detection in the real
	// algorithm, [31]); pipelined round cost ℓ + |S|.
	skelB := graph.NewBuilder(n)
	hop := make([][]float64, len(skeleton))
	par.ForEach(len(skeleton), func(i int) {
		hop[i] = graph.BellmanFord(g, skeleton[i], ell)
	})
	for i, s := range skeleton {
		for j := i + 1; j < len(skeleton); j++ {
			t := skeleton[j]
			if d := hop[i][t]; !semiring.IsInf(d) && d > 0 {
				skelB.Add(s, t, d)
			}
		}
	}
	skel := skelB.Freeze()
	rounds += ell + len(skeleton)

	// Sparsify the skeleton graph and broadcast the spanner: every node
	// learns E'_S, pipelined over the BFS tree. (skel lives on the full
	// node set with non-skeleton nodes isolated; Baswana–Sen treats them as
	// singleton clusters.)
	sp := spanner.Build(skel, k, rng, nil)
	rounds += sp.M() + diameter

	// Locally (zero rounds): LE lists of the spanner overlay restricted to
	// skeleton sources, x̄ = r^V A^{|S|}_{G'_S} x(0), via the sparse
	// frontier engine. Every node seeds the frontier (each knows itself at
	// distance 0), but non-skeleton nodes are isolated in the spanner, so
	// they fall out after the first step and the remaining iterations run
	// on skeleton-sized frontiers.
	spannerRunner := leRunner(sp, order, 1)
	xbar, _ := spannerRunner.RunToFixpoint(frt.InitialStates(n), len(skeleton)+1)

	// Final phase: ℓ LE iterations on G with weights stretched by α,
	// starting from x̄ (Equation 8.9 / 8.20). One Stepper carries the whole
	// phase: each iteration is an in-place sparse step reusing the runner's
	// scratch, and once the fixpoint lands further steps are no-ops — but the
	// round meter still charges all ℓ broadcasts, as the analysed algorithm
	// does not detect convergence.
	runner := leRunner(g, order, alpha)
	st := runner.NewStepper(xbar)
	defer st.Release()
	for i := 0; i < ell; i++ {
		rounds += maxListLen(st.States())
		st.Step()
	}
	x := st.States()
	return &Result{
		Lists: x, Order: order, Rounds: rounds, Iterations: ell,
		StretchBound: alpha, Skeleton: skeleton, Spanner: sp,
	}
}

// ExplicitOverlay materialises the overlay graph H of the skeleton
// algorithm (Equations 8.16–8.18): spanner edges at skeleton weights plus G
// edges stretched by α. It is used by tests to validate the distributed
// computation against a direct one.
func ExplicitOverlay(g, spanner *graph.Graph, alpha float64) *graph.Graph {
	h := graph.NewBuilder(g.N())
	for _, e := range spanner.Edges() {
		h.Add(e.U, e.V, e.Weight)
	}
	for _, e := range g.Edges() {
		h.Add(e.U, e.V, alpha*e.Weight) // Freeze keeps the lighter copy
	}
	return h.Freeze()
}

// NewSkeletonFirstOrder draws a random order in which every skeleton node
// precedes every non-skeleton node (§8.2: "we extend the permutations to a
// permutation of V by ruling that for all s ∈ S and v ∈ V∖S we have
// s < v").
func NewSkeletonFirstOrder(n int, skeleton []graph.Node, rng *par.RNG) *frt.Order {
	isSkel := make([]bool, n)
	for _, s := range skeleton {
		isSkel[s] = true
	}
	var skel, rest []graph.Node
	for v := 0; v < n; v++ {
		if isSkel[v] {
			skel = append(skel, graph.Node(v))
		} else {
			rest = append(rest, graph.Node(v))
		}
	}
	shuffle := func(vs []graph.Node) {
		for i := len(vs) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			vs[i], vs[j] = vs[j], vs[i]
		}
	}
	shuffle(skel)
	shuffle(rest)
	rank := make([]uint64, n)
	pos := uint64(0)
	for _, v := range append(skel, rest...) {
		rank[v] = pos
		pos++
	}
	return &frt.Order{Rank: rank}
}

// BestOfBoth runs Khan and Skeleton and returns the one with fewer rounds,
// realising the min{·,·} bound of Theorem 8.1.
func BestOfBoth(g *graph.Graph, rng *par.RNG) *Result {
	khan := Khan(g, rng.Split())
	skel := Skeleton(g, rng.Split(), SkeletonOptions{})
	if khan.Rounds <= skel.Rounds {
		return khan
	}
	return skel
}

// SortedSkeletonRanks is a test helper: it returns the sorted ranks of the
// given nodes.
func SortedSkeletonRanks(order *frt.Order, nodes []graph.Node) []uint64 {
	out := make([]uint64, len(nodes))
	for i, v := range nodes {
		out[i] = order.Rank[v]
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
