package congest

import (
	"testing"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

func TestMessageKhanMatchesExactLE(t *testing.T) {
	rng := par.NewRNG(1)
	g := graph.RandomConnected(40, 90, 6, rng)
	order := frt.NewOrder(g.N(), rng)
	lists, rounds := MessageKhan(g, order)
	if rounds <= 0 {
		t.Fatal("no rounds simulated")
	}
	exact := graph.APSPDijkstra(g)
	filter := order.Filter()
	mod := semiring.DistMapModule{}
	for v := 0; v < g.N(); v++ {
		full := semiring.NewDistMap(g.N())
		for w := 0; w < g.N(); w++ {
			full = full.Append(graph.Node(w), exact.At(v, w))
		}
		if want := filter(full); !mod.Equal(lists[v], want) {
			t.Fatalf("node %d: message protocol %v ≠ exact LE %v", v, lists[v], want)
		}
	}
}

func TestMessageKhanAgreesWithIterationVersion(t *testing.T) {
	rng := par.NewRNG(2)
	g := graph.GridGraph(6, 6, 4, rng)
	order := frt.NewOrder(g.N(), rng)
	msgLists, _ := MessageKhan(g, order)

	runner := leRunner(g, order, 1)
	iterLists, _ := runner.RunToFixpoint(frt.InitialStates(g.N()), g.N())
	mod := semiring.DistMapModule{}
	for v := range msgLists {
		if !mod.Equal(msgLists[v], iterLists[v]) {
			t.Fatalf("node %d: message %v ≠ iteration %v", v, msgLists[v], iterLists[v])
		}
	}
}

func TestMessageNetworkQuiesces(t *testing.T) {
	rng := par.NewRNG(3)
	g := graph.PathGraph(50, 1)
	order := frt.NewOrder(g.N(), rng)
	net := NewMessageNetwork(g, order)
	net.Run(g.N() * g.N())
	if !net.Quiescent() {
		t.Fatal("network did not quiesce")
	}
	// After quiescence, another step must be a no-op.
	if net.Step() {
		t.Fatal("quiescent network sent messages")
	}
}

func TestMessageRoundsTrackEstimate(t *testing.T) {
	// The message-level rounds and the list-size estimate of Khan() must
	// agree in order of magnitude: both are Θ(SPD · list length).
	rng := par.NewRNG(4)
	g := graph.PathGraph(120, 1)
	order := frt.NewOrder(g.N(), rng)
	lists, rounds := MessageKhan(g, order)
	// Information must travel at least as far as the farthest LE entry of
	// any node — on a path that hop distance is |v − w|.
	radius := 0
	for v, l := range lists {
		for _, e := range l.Entries() {
			if d := int(e.Node) - v; d > radius {
				radius = d
			} else if -d > radius {
				radius = -d
			}
		}
	}
	if rounds < radius {
		t.Fatalf("message rounds %d below information radius %d — impossible", rounds, radius)
	}
	estimate := Khan(g, par.NewRNG(4)).Rounds
	if rounds > 20*estimate || estimate > 20*rounds {
		t.Fatalf("message rounds %d and estimate %d differ by more than 20×", rounds, estimate)
	}
}

func TestMessageCongestionBounded(t *testing.T) {
	// Outboxes hold at most O(list length) pending entries: congestion
	// stays logarithmic, which is what makes the O(log n)-rounds-per-
	// iteration accounting honest.
	rng := par.NewRNG(5)
	g := graph.RandomConnected(100, 300, 6, rng)
	order := frt.NewOrder(g.N(), rng)
	net := NewMessageNetwork(g, order)
	worstQueue := 0
	for net.Step() {
		if q := net.MaxQueueLength(); q > worstQueue {
			worstQueue = q
		}
	}
	if worstQueue > 60 {
		t.Fatalf("queue length %d implausibly large for n=100", worstQueue)
	}
}

func TestMessageCountsPositive(t *testing.T) {
	rng := par.NewRNG(6)
	g := graph.CycleGraph(20, 1)
	order := frt.NewOrder(g.N(), rng)
	net := NewMessageNetwork(g, order)
	net.Run(1000)
	if net.Messages <= 0 || net.Rounds <= 0 {
		t.Fatal("counters not tracked")
	}
	if net.Messages < net.Rounds {
		t.Fatal("fewer messages than rounds")
	}
}
