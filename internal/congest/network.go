package congest

import (
	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/semiring"
)

// This file contains a message-level Congest runtime: where congest.go
// *estimates* round counts from list sizes (the standard analysis), the
// MessageNetwork actually delivers one (node, distance) pair per edge per
// round and counts rounds until global quiescence. It validates the
// estimates and the claim behind them — that LE lists, being O(log n) long,
// cost O(log n) rounds per MBF-like iteration.
//
// The protocol is the flooding form of Khan et al. [26]: every node keeps
// its current (filtered) LE list; whenever an entry of the list improves,
// the node enqueues that entry on every incident edge; each round one
// queued entry crosses each edge in each direction; receivers relax the
// entry by the edge weight, re-filter, and enqueue improvements in turn.
// Min-plus relaxations are monotone, so the network quiesces in the unique
// least fixpoint: the exact LE lists of G (the same argument that lets
// Corollary 2.17 drop dominated entries applies — a dominated entry's
// dominator is itself propagated).
type MessageNetwork struct {
	g     *graph.Graph
	order *frt.Order
	// filter is order's LE filter, built once: integrate runs per delivered
	// message, and the closure construction (which captures the order's rank
	// table) is far from free at that frequency.
	filter semiring.Filter[semiring.DistMap]
	// state[v] is v's current LE list.
	state []semiring.DistMap
	// outbox[v][i] queues entries for the i-th incident edge of v.
	outbox [][][]semiring.Entry
	// Rounds and Messages count the simulation's cost.
	Rounds   int
	Messages int
}

// NewMessageNetwork initialises the protocol: every node knows itself at
// distance 0 and announces that entry.
func NewMessageNetwork(g *graph.Graph, order *frt.Order) *MessageNetwork {
	n := g.N()
	net := &MessageNetwork{
		g:      g,
		order:  order,
		filter: order.Filter(),
		state:  make([]semiring.DistMap, n),
		outbox: make([][][]semiring.Entry, n),
	}
	for v := 0; v < n; v++ {
		self := semiring.Entry{Node: graph.Node(v), Dist: 0}
		net.state[v] = semiring.FromEntries(self)
		net.outbox[v] = make([][]semiring.Entry, g.Degree(graph.Node(v)))
		for i := range net.outbox[v] {
			net.outbox[v][i] = []semiring.Entry{self}
		}
	}
	return net
}

// integrate merges the relaxed entry into v's list; improvements are
// re-announced on all of v's edges.
func (net *MessageNetwork) integrate(v graph.Node, e semiring.Entry) {
	merged := (semiring.DistMapModule{}).Add(net.state[v], semiring.SingletonDist(e.Node, e.Dist))
	next := net.filter(merged)
	// Announce entries that are new or improved relative to the old list.
	old := net.state[v]
	net.state[v] = next
	for i := 0; i < next.Len(); i++ {
		ne := next.Entry(i)
		if old.Get(ne.Node) > ne.Dist {
			for i := range net.outbox[v] {
				net.outbox[v][i] = append(net.outbox[v][i], ne)
			}
		}
	}
}

// Step delivers one queued entry per edge direction and returns whether any
// message was sent.
func (net *MessageNetwork) Step() bool {
	type delivery struct {
		to graph.Node
		e  semiring.Entry
	}
	var deliveries []delivery
	for v := 0; v < net.g.N(); v++ {
		for i, a := range net.g.Neighbors(graph.Node(v)) {
			q := net.outbox[v][i]
			if len(q) == 0 {
				continue
			}
			e := q[0]
			net.outbox[v][i] = q[1:]
			// Relax over the edge during transit.
			deliveries = append(deliveries, delivery{
				to: a.To,
				e:  semiring.Entry{Node: e.Node, Dist: e.Dist + a.Weight},
			})
			net.Messages++
		}
	}
	if len(deliveries) == 0 {
		return false
	}
	net.Rounds++
	for _, d := range deliveries {
		net.integrate(d.to, d.e)
	}
	return true
}

// Run drives the network to quiescence (bounded by maxRounds) and returns
// the final LE lists.
func (net *MessageNetwork) Run(maxRounds int) []semiring.DistMap {
	for r := 0; r < maxRounds; r++ {
		if !net.Step() {
			break
		}
	}
	return net.state
}

// Quiescent reports whether all outboxes are empty.
func (net *MessageNetwork) Quiescent() bool {
	for _, boxes := range net.outbox {
		for _, q := range boxes {
			if len(q) > 0 {
				return false
			}
		}
	}
	return true
}

// MaxQueueLength returns the longest outbox, a congestion indicator.
func (net *MessageNetwork) MaxQueueLength() int {
	max := 0
	for _, boxes := range net.outbox {
		for _, q := range boxes {
			if len(q) > max {
				max = len(q)
			}
		}
	}
	return max
}

// MessageKhan runs the message-level protocol to quiescence and returns the
// LE lists with the actual round count.
func MessageKhan(g *graph.Graph, order *frt.Order) ([]semiring.DistMap, int) {
	net := NewMessageNetwork(g, order)
	// SPD ≤ n−1 iterations, each costing O(list length) rounds; n·n is a
	// safe ceiling that the tests assert is never approached.
	lists := net.Run(g.N() * g.N())
	sorted := make([]semiring.DistMap, len(lists))
	for v, l := range lists {
		c := l.Clone()
		c.SortFunc(func(a, b semiring.Entry) bool { return a.Node < b.Node })
		sorted[v] = c
	}
	return sorted, net.Rounds
}
