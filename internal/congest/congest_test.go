package congest

import (
	"testing"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

func TestKhanListsMatchExactLE(t *testing.T) {
	rng := par.NewRNG(1)
	g := graph.RandomConnected(40, 100, 6, rng)
	res := Khan(g, rng)
	exact := graph.APSPDijkstra(g)
	filter := res.Order.Filter()
	mod := semiring.DistMapModule{}
	for v := 0; v < g.N(); v++ {
		full := semiring.NewDistMap(g.N())
		for w := 0; w < g.N(); w++ {
			full = full.Append(graph.Node(w), exact.At(v, w))
		}
		if want := filter(full); !mod.Equal(res.Lists[v], want) {
			t.Fatalf("node %d: %v vs %v", v, res.Lists[v], want)
		}
	}
}

func TestKhanRoundsScaleWithSPD(t *testing.T) {
	rng := par.NewRNG(2)
	longPath := graph.PathGraph(200, 1)
	shortcutted := graph.RandomConnected(200, 2000, 4, rng)
	r1 := Khan(longPath, rng)
	r2 := Khan(shortcutted, rng)
	if r1.Rounds <= r2.Rounds {
		t.Fatalf("Khan on SPD-199 path (%d rounds) should cost more than on a dense random graph (%d rounds)",
			r1.Rounds, r2.Rounds)
	}
	// The filtered iteration may reach its fixpoint before SPD (dominated
	// far entries stop changing early), but on a path it still needs far
	// more than polylogarithmically many iterations.
	if r1.Iterations < 50 {
		t.Fatalf("Khan needed only %d iterations on path-200", r1.Iterations)
	}
}

// starPath returns a unit-weight path on n nodes plus a central hub (node n)
// connected to every path node by an edge of weight 2n. The hub collapses
// the hop diameter to 2 while the heavy edges never lie on shortest paths,
// so SPD stays n−1 — the regime where Khan's O(SPD·log n) rounds lose to
// the skeleton algorithm's Õ(√n + D) (§8, experiment E9).
func starPath(n int) *graph.Graph {
	b := graph.NewBuilder(n + 1)
	for v := 0; v+1 < n; v++ {
		b.Add(graph.Node(v), graph.Node(v+1), 1)
	}
	hub := graph.Node(n)
	for v := 0; v < n; v++ {
		b.Add(hub, graph.Node(v), float64(2*n))
	}
	return b.Freeze()
}

func TestSkeletonFirstOrder(t *testing.T) {
	rng := par.NewRNG(3)
	skeleton := []graph.Node{3, 7, 11}
	o := NewSkeletonFirstOrder(20, skeleton, rng)
	ranks := SortedSkeletonRanks(o, skeleton)
	for i, r := range ranks {
		if r != uint64(i) {
			t.Fatalf("skeleton ranks %v, want 0..%d", ranks, len(skeleton)-1)
		}
	}
	// All ranks are a permutation.
	seen := make([]bool, 20)
	for _, r := range o.Rank {
		if seen[r] {
			t.Fatal("duplicate rank")
		}
		seen[r] = true
	}
}

func TestSkeletonDominanceAndStretch(t *testing.T) {
	rng := par.NewRNG(4)
	g := graph.RandomConnected(80, 200, 6, rng)
	res := Skeleton(g, rng, SkeletonOptions{})
	tree, err := frt.BuildTree(res.Lists, res.Order, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	exact := graph.APSPDijkstra(g)
	for u := 0; u < g.N(); u += 3 {
		for v := u + 1; v < g.N(); v += 5 {
			td := tree.Dist(graph.Node(u), graph.Node(v))
			if td < exact.At(u, v)-1e-9 {
				t.Fatalf("dominance violated at (%d,%d): %v < %v", u, v, td, exact.At(u, v))
			}
		}
	}
}

// TestSkeletonListsMatchOverlayLE validates the distributed computation
// against LE lists computed directly on the explicit overlay H of
// Equations 8.16–8.18 (a w.h.p. statement; the fixed seed keeps it stable).
func TestSkeletonListsMatchOverlayLE(t *testing.T) {
	rng := par.NewRNG(5)
	g := graph.RandomConnected(60, 150, 5, rng)
	res := Skeleton(g, rng, SkeletonOptions{})
	overlay := ExplicitOverlay(g, res.Spanner, res.StretchBound)
	want, _ := frt.LEListsOnGraph(overlay, res.Order, nil)
	mod := semiring.DistMapModule{}
	for v := 0; v < g.N(); v++ {
		if !mod.Equal(res.Lists[v], want[v]) {
			t.Fatalf("node %d: distributed %v ≠ overlay %v", v, res.Lists[v], want[v])
		}
	}
}

// TestSkeletonBeatsKhanOnHighSPD is experiment E9 in miniature: on a graph
// with hop diameter 2 but SPD ≈ n (starPath), the skeleton algorithm needs
// fewer simulated rounds than per-hop iteration.
func TestSkeletonBeatsKhanOnHighSPD(t *testing.T) {
	if testing.Short() {
		t.Skip("slow test: skipped with -short")
	}
	g := starPath(800)
	khan := Khan(g, par.NewRNG(6))
	skel := Skeleton(g, par.NewRNG(7), SkeletonOptions{Ell: 150, C: 1.5, SpannerK: 3})
	if skel.Rounds >= khan.Rounds {
		t.Fatalf("skeleton (%d rounds) did not beat Khan (%d rounds) on starPath", skel.Rounds, khan.Rounds)
	}
}

func TestKhanBeatsSkeletonOnLowSPD(t *testing.T) {
	if testing.Short() {
		t.Skip("slow test: skipped with -short")
	}
	// On a dense low-SPD graph Khan's O(SPD·log n) rounds beat the
	// skeleton's Õ(√n) setup cost.
	rng := par.NewRNG(8)
	g := graph.RandomConnected(300, 8000, 3, rng)
	khan := Khan(g, par.NewRNG(9))
	skel := Skeleton(g, par.NewRNG(10), SkeletonOptions{})
	if khan.Rounds >= skel.Rounds {
		t.Fatalf("Khan (%d rounds) did not beat skeleton (%d rounds) on low-SPD graph", khan.Rounds, skel.Rounds)
	}
}

func TestBestOfBothPicksMinimum(t *testing.T) {
	g := graph.Lollipop(15, 300)
	best := BestOfBoth(g, par.NewRNG(11))
	// Replicate BestOfBoth's internal RNG splits to reproduce both runs.
	r := par.NewRNG(11)
	khan := Khan(g, r.Split())
	skel := Skeleton(g, r.Split(), SkeletonOptions{})
	min := khan.Rounds
	if skel.Rounds < min {
		min = skel.Rounds
	}
	if best.Rounds != min {
		t.Fatalf("BestOfBoth returned %d rounds, min of (%d, %d) is %d",
			best.Rounds, khan.Rounds, skel.Rounds, min)
	}
}

func TestSkeletonStretchBound(t *testing.T) {
	rng := par.NewRNG(13)
	g := graph.RandomConnected(50, 120, 4, rng)
	for _, k := range []int{2, 3} {
		res := Skeleton(g, rng, SkeletonOptions{SpannerK: k})
		if res.StretchBound != float64(2*k-1) {
			t.Fatalf("k=%d: stretch bound %v", k, res.StretchBound)
		}
		// The overlay's metric must approximate G's within the bound.
		overlay := ExplicitOverlay(g, res.Spanner, res.StretchBound)
		eg := graph.APSPDijkstra(g)
		eh := graph.APSPDijkstra(overlay)
		for v := 0; v < g.N(); v++ {
			for w := v + 1; w < g.N(); w++ {
				if eh.At(v, w) < eg.At(v, w)-1e-9 {
					t.Fatalf("overlay shortened (%d,%d)", v, w)
				}
				if eh.At(v, w) > res.StretchBound*eg.At(v, w)+1e-9 {
					t.Fatalf("overlay stretch at (%d,%d): %v > %v×%v",
						v, w, eh.At(v, w), res.StretchBound, eg.At(v, w))
				}
			}
		}
	}
}
