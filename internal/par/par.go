// Package par provides the parallel execution substrate used throughout the
// library: a bounded worker pool with a parallel-for primitive, a
// deterministic splittable random number generator, and work/depth counters
// that realise the abstract DAG cost model of Friedrichs & Lenzen (§1.2).
//
// The paper measures algorithms by work (total operations of the computation
// DAG) and depth (its longest path). Wall-clock time on a multicore machine
// depends on scheduling and constants, so the benchmarks in this repository
// report both: instrumented work/depth via Tracker, and wall time as a sanity
// signal.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxProcs is the parallel width used by ForEach. It defaults to GOMAXPROCS
// and may be lowered in tests to exercise sequential execution paths.
var MaxProcs = runtime.GOMAXPROCS(0)

// ForEach invokes body(i) for every i in [0, n), distributing iterations over
// up to MaxProcs goroutines. It blocks until all iterations complete. body
// must be safe for concurrent invocation on distinct indices.
func ForEach(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	procs := MaxProcs
	if procs > n {
		procs = n
	}
	if procs <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(procs)
	// Dynamic chunking: grab a batch of indices at a time to amortise the
	// atomic increment without sacrificing load balance on skewed work.
	chunk := n / (procs * 8)
	if chunk < 1 {
		chunk = 1
	}
	for p := 0; p < procs; p++ {
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					body(i)
				}
			}
		}()
	}
	wg.Wait()
}

// ForEachChunk invokes body(start, end) over disjoint half-open ranges
// covering [0, n), distributing ranges over up to MaxProcs goroutines with
// the same dynamic chunking as ForEach. It exists for bodies that amortise
// per-worker state — pooled scratch, accumulators — over a whole range
// instead of paying the pool round trip per index; the engine's iteration
// loops fetch their aggregation scratch once per chunk through it.
func ForEachChunk(n int, body func(start, end int)) {
	if n <= 0 {
		return
	}
	procs := MaxProcs
	if procs > n {
		procs = n
	}
	if procs <= 1 {
		body(0, n)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(procs)
	chunk := n / (procs * 8)
	if chunk < 1 {
		chunk = 1
	}
	for p := 0; p < procs; p++ {
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				body(start, end)
			}
		}()
	}
	wg.Wait()
}

// Reduce applies body(i) for i in [0, n) in parallel and combines the results
// with merge, which must be associative. zero is the identity for merge.
func Reduce[T any](n int, zero T, body func(i int) T, merge func(a, b T) T) T {
	if n <= 0 {
		return zero
	}
	procs := MaxProcs
	if procs > n {
		procs = n
	}
	if procs <= 1 {
		acc := zero
		for i := 0; i < n; i++ {
			acc = merge(acc, body(i))
		}
		return acc
	}
	partial := make([]T, procs)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(procs)
	chunk := n / (procs * 8)
	if chunk < 1 {
		chunk = 1
	}
	for p := 0; p < procs; p++ {
		go func(p int) {
			defer wg.Done()
			acc := zero
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					break
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					acc = merge(acc, body(i))
				}
			}
			partial[p] = acc
		}(p)
	}
	wg.Wait()
	acc := zero
	for _, v := range partial {
		acc = merge(acc, v)
	}
	return acc
}
