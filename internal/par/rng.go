package par

// RNG is a small, fast, deterministic splittable pseudo-random number
// generator based on SplitMix64. Every source of randomness in the library
// (level sampling, node permutations, graph generators, β) flows from a
// single seed through RNG so that all experiments are reproducible.
//
// RNG is not safe for concurrent use; use Split to derive independent
// generators for parallel workers.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// splitmix64 advances s and returns the next output.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	return splitmix64(&r.state)
}

// Split derives an independent generator from r. The derived stream is
// decorrelated from r's future outputs by mixing a fresh draw with a distinct
// odd constant.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0xa5a5a5a5a5a5a5a5}
}

// SplitN derives n independent generators, e.g. one per parallel worker.
func (r *RNG) SplitN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("par: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return
}

// Bool returns true with probability 1/2.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Geometric returns the number of consecutive successes of independent
// p-biased coin flips, i.e. a sample of the geometric distribution counting
// levels in the paper's level-sampling step (§4): starting at 0, increment
// while a coin with success probability p comes up heads.
func (r *RNG) Geometric(p float64) int {
	k := 0
	for r.Float64() < p {
		k++
	}
	return k
}
