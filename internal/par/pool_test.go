package par

import (
	"sync"
	"testing"
)

func TestPoolReusesValues(t *testing.T) {
	calls := 0
	p := Pool[*[]int]{New: func() *[]int {
		calls++
		s := make([]int, 4)
		return &s
	}}
	v := p.Get()
	if calls != 1 || len(*v) != 4 {
		t.Fatalf("first Get: calls=%d len=%d", calls, len(*v))
	}
	// sync.Pool drops Put values at random when the race detector is
	// enabled (and may drop them under GC pressure), so allow a few
	// rounds before declaring reuse broken.
	reused := false
	for i := 0; i < 32 && !reused; i++ {
		p.Put(v)
		reused = p.Get() == v
	}
	if !reused {
		t.Fatal("Put value never reused")
	}
}

func TestPoolConcurrentAccess(t *testing.T) {
	p := Pool[*[]byte]{New: func() *[]byte {
		b := make([]byte, 16)
		return &b
	}}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := p.Get()
				(*b)[0] = byte(i)
				p.Put(b)
			}
		}()
	}
	wg.Wait()
}
