package par

import (
	"sync"
	"testing"
)

func TestPoolReusesValues(t *testing.T) {
	calls := 0
	p := Pool[*[]int]{New: func() *[]int {
		calls++
		s := make([]int, 4)
		return &s
	}}
	v := p.Get()
	if calls != 1 || len(*v) != 4 {
		t.Fatalf("first Get: calls=%d len=%d", calls, len(*v))
	}
	p.Put(v)
	if got := p.Get(); got != v {
		// sync.Pool may drop values under GC pressure, but in a quiet
		// unit test an immediate Get must return the value just Put.
		t.Fatal("Put value not reused")
	}
	if calls != 1 {
		t.Fatalf("New called %d times, want 1", calls)
	}
}

func TestPoolConcurrentAccess(t *testing.T) {
	p := Pool[*[]byte]{New: func() *[]byte {
		b := make([]byte, 16)
		return &b
	}}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := p.Get()
				(*b)[0] = byte(i)
				p.Put(b)
			}
		}()
	}
	wg.Wait()
}
