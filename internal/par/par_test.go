package par

import (
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		seen := make([]atomic.Int32, n)
		ForEach(n, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("n=%d index %d visited %d times, want 1", n, i, got)
			}
		}
	}
}

func TestForEachSequentialFallback(t *testing.T) {
	old := MaxProcs
	defer func() { MaxProcs = old }()
	MaxProcs = 1
	var order []int
	ForEach(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential fallback out of order: %v", order)
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{0, 1, 17, 1024} {
		got := Reduce(n, 0, func(i int) int { return i }, func(a, b int) int { return a + b })
		want := n * (n - 1) / 2
		if got != want {
			t.Fatalf("Reduce sum n=%d: got %d want %d", n, got, want)
		}
	}
}

func TestReduceMax(t *testing.T) {
	vals := []int{3, 9, 2, 41, 7, 41, 0}
	got := Reduce(len(vals), -1,
		func(i int) int { return vals[i] },
		func(a, b int) int {
			if a > b {
				return a
			}
			return b
		})
	if got != 41 {
		t.Fatalf("Reduce max: got %d want 41", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	c := NewRNG(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			continue
		}
		same = false
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	s := r.Split()
	// The split stream must not simply replay the parent stream.
	equal := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == s.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("split stream correlates with parent: %d/64 equal draws", equal)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(2)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	for v, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("Intn(10) badly skewed: value %d drawn %d/100000 times", v, c)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(3).Intn(0)
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	check := func(n uint8) bool {
		p := r.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGGeometricMean(t *testing.T) {
	r := NewRNG(5)
	const trials = 200000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += r.Geometric(0.5)
	}
	mean := float64(sum) / trials
	// E[Geometric(1/2)] = 1 (number of successes before first failure).
	if mean < 0.93 || mean > 1.07 {
		t.Fatalf("Geometric(0.5) mean %.3f, want ~1.0", mean)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1 << 63, 2, 1, 0},
		{^uint64(0), ^uint64(0), ^uint64(0) - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestTrackerNilSafe(t *testing.T) {
	var tr *Tracker
	tr.AddWork(5)
	tr.AddDepth(3)
	tr.AddPhase(1, 1)
	tr.MaxDepth(10)
	tr.Reset()
	if tr.Work() != 0 || tr.Depth() != 0 {
		t.Fatal("nil tracker should report zero")
	}
}

func TestTrackerAccumulates(t *testing.T) {
	tr := &Tracker{}
	tr.AddWork(10)
	tr.AddPhase(5, 2)
	tr.AddDepth(1)
	if tr.Work() != 15 {
		t.Fatalf("work = %d, want 15", tr.Work())
	}
	if tr.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", tr.Depth())
	}
	tr.Reset()
	if tr.Work() != 0 || tr.Depth() != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestTrackerMaxDepth(t *testing.T) {
	tr := &Tracker{}
	tr.AddDepth(5)
	tr.MaxDepth(3) // no-op, 5 > 3
	if tr.Depth() != 5 {
		t.Fatalf("depth = %d, want 5", tr.Depth())
	}
	tr.MaxDepth(9)
	if tr.Depth() != 9 {
		t.Fatalf("depth = %d, want 9", tr.Depth())
	}
}

func TestTrackerConcurrent(t *testing.T) {
	tr := &Tracker{}
	ForEach(1000, func(i int) { tr.AddWork(1) })
	if tr.Work() != 1000 {
		t.Fatalf("concurrent work = %d, want 1000", tr.Work())
	}
}

func BenchmarkForEach(b *testing.B) {
	var sink atomic.Int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForEach(1024, func(j int) { sink.Add(int64(j & 1)) })
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func TestSortSmallAndLarge(t *testing.T) {
	rng := NewRNG(1)
	for _, n := range []int{0, 1, 2, 100, sortGrain - 1, sortGrain + 1, 5 * sortGrain} {
		s := make([]int, n)
		for i := range s {
			s[i] = int(rng.Uint64() % 100000)
		}
		Sort(s, func(a, b int) bool { return a < b })
		for i := 1; i < n; i++ {
			if s[i-1] > s[i] {
				t.Fatalf("n=%d: not sorted at %d", n, i)
			}
		}
	}
}

func TestSortMatchesStdlib(t *testing.T) {
	rng := NewRNG(2)
	n := 3*sortGrain + 17
	a := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64()
	}
	b := append([]float64(nil), a...)
	Sort(a, func(x, y float64) bool { return x < y })
	sort.Float64s(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestSortSequentialFallbackWhenSingleProc(t *testing.T) {
	old := MaxProcs
	defer func() { MaxProcs = old }()
	MaxProcs = 1
	s := []int{5, 2, 9, 1}
	Sort(s, func(a, b int) bool { return a < b })
	if s[0] != 1 || s[3] != 9 {
		t.Fatalf("sorted = %v", s)
	}
}

func BenchmarkParSort(b *testing.B) {
	rng := NewRNG(3)
	base := make([]float64, 1<<16)
	for i := range base {
		base[i] = rng.Float64()
	}
	work := make([]float64, len(base))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, base)
		Sort(work, func(x, y float64) bool { return x < y })
	}
}

// withMaxProcs forces a parallel width for the duration of f so the parallel
// branches are exercised even when the test host has a single core.
func withMaxProcs(t *testing.T, procs int, f func()) {
	t.Helper()
	old := MaxProcs
	defer func() { MaxProcs = old }()
	MaxProcs = procs
	f()
}

func TestForEachParallelCoversAllIndices(t *testing.T) {
	withMaxProcs(t, 4, func() {
		const n = 1000
		var hits [n]atomic.Int64
		ForEach(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("index %d visited %d times", i, hits[i].Load())
			}
		}
	})
}

func TestForEachChunkCoversDisjointRanges(t *testing.T) {
	for _, procs := range []int{1, 4} {
		withMaxProcs(t, procs, func() {
			const n = 1000
			var hits [n]atomic.Int64
			ForEachChunk(n, func(start, end int) {
				if start < 0 || end > n || start >= end {
					t.Errorf("bad range [%d,%d)", start, end)
				}
				for i := start; i < end; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if hits[i].Load() != 1 {
					t.Fatalf("procs=%d: index %d visited %d times", procs, i, hits[i].Load())
				}
			}
		})
	}
	ForEachChunk(0, func(start, end int) { t.Error("body called for n=0") })
}

func TestReduceParallelMatchesSequential(t *testing.T) {
	const n = 5000
	body := func(i int) int { return i * i }
	merge := func(a, b int) int { return a + b }
	want := Reduce(n, 0, body, merge)
	withMaxProcs(t, 4, func() {
		if got := Reduce(n, 0, body, merge); got != want {
			t.Fatalf("parallel sum %d, sequential says %d", got, want)
		}
	})
	if got := Reduce(0, 42, body, merge); got != 42 {
		t.Fatalf("empty reduce returned %d, want the identity", got)
	}
}

func TestSortParallelMatchesStdlib(t *testing.T) {
	withMaxProcs(t, 4, func() {
		rng := NewRNG(99)
		s := make([]int, 3*sortGrain)
		for i := range s {
			s[i] = rng.Intn(1 << 20)
		}
		want := append([]int(nil), s...)
		sort.Ints(want)
		Sort(s, func(a, b int) bool { return a < b })
		for i := range s {
			if s[i] != want[i] {
				t.Fatalf("mismatch at %d: %d vs %d", i, s[i], want[i])
			}
		}
	})
}

func TestRNGSplitNAndBool(t *testing.T) {
	rng := NewRNG(7)
	rngs := rng.SplitN(4)
	if len(rngs) != 4 {
		t.Fatalf("SplitN returned %d generators", len(rngs))
	}
	seen := map[uint64]bool{}
	for _, r := range rngs {
		v := r.Uint64()
		if seen[v] {
			t.Fatal("split generators emitted the same first draw")
		}
		seen[v] = true
	}
	heads := 0
	for i := 0; i < 2000; i++ {
		if rng.Bool() {
			heads++
		}
	}
	if heads < 800 || heads > 1200 {
		t.Fatalf("%d heads out of 2000 — Bool badly biased", heads)
	}
}
