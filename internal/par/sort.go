package par

import "sort"

// Sort sorts s by less using a parallel merge sort: the slice is split
// recursively until pieces fall below a grain size, pieces are sorted with
// the standard library, and sorted halves are merged. It realises the
// O(log n)-depth sorting step that Lemma 2.3 of the paper charges for
// aggregating distance maps ([1] in the paper; here a practical multicore
// variant rather than an AKS network).
//
// less must be a strict weak ordering; the sort is not stable.
func Sort[T any](s []T, less func(a, b T) bool) {
	if len(s) < sortGrain || MaxProcs <= 1 {
		sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
		return
	}
	buf := make([]T, len(s))
	parallelMergeSort(s, buf, less, parDepth(MaxProcs))
}

// sortGrain is the size below which sequential sorting wins.
const sortGrain = 1 << 12

// parDepth returns ⌈log₂ procs⌉ + 1 splitting levels.
func parDepth(procs int) int {
	d := 1
	for p := 1; p < procs; p *= 2 {
		d++
	}
	return d
}

func parallelMergeSort[T any](s, buf []T, less func(a, b T) bool, depth int) {
	if depth == 0 || len(s) < sortGrain {
		sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
		return
	}
	mid := len(s) / 2
	done := make(chan struct{})
	go func() {
		parallelMergeSort(s[:mid], buf[:mid], less, depth-1)
		close(done)
	}()
	parallelMergeSort(s[mid:], buf[mid:], less, depth-1)
	<-done
	// Merge into buf, then copy back.
	i, j, k := 0, mid, 0
	for i < mid && j < len(s) {
		if less(s[j], s[i]) {
			buf[k] = s[j]
			j++
		} else {
			buf[k] = s[i]
			i++
		}
		k++
	}
	copy(buf[k:], s[i:mid])
	copy(buf[k+mid-i:], s[j:])
	copy(s, buf)
}
