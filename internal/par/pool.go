package par

import "sync"

// Pool is a typed free-list of scratch values, a thin generic wrapper over
// sync.Pool. Batched query paths (e.g. frt.OracleIndex.MedianBatch) run one
// body per item under ForEach and borrow per-item scratch from a Pool so that
// steady-state serving allocates nothing regardless of batch size or
// MaxProcs.
type Pool[T any] struct {
	// New produces a fresh value when the pool is empty (required).
	New func() T
	p   sync.Pool
}

// Get returns a pooled value, or New() when none is available.
func (p *Pool[T]) Get() T {
	if v := p.p.Get(); v != nil {
		return v.(T)
	}
	return p.New()
}

// Put returns a value to the pool for reuse.
func (p *Pool[T]) Put(v T) { p.p.Put(v) }
