package par

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterBoundsConcurrency(t *testing.T) {
	l := NewLimiter(3)
	if l.Cap() != 3 {
		t.Fatalf("cap = %d, want 3", l.Cap())
	}
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			defer l.Release()
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 3 {
		t.Fatalf("observed %d concurrent holders, cap 3", got)
	}
	if l.InFlight() != 0 {
		t.Fatalf("in flight after drain: %d", l.InFlight())
	}
}

func TestLimiterAcquireHonorsContext(t *testing.T) {
	l := NewLimiter(1)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := l.Acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("blocked acquire returned %v, want DeadlineExceeded", err)
	}
	l.Release()
	// The slot freed by Release must be acquirable again.
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	l.Release()
}

func TestLimiterTryAcquire(t *testing.T) {
	l := NewLimiter(1)
	if !l.TryAcquire() {
		t.Fatal("empty limiter refused TryAcquire")
	}
	if l.TryAcquire() {
		t.Fatal("full limiter granted TryAcquire")
	}
	if l.InFlight() != 1 {
		t.Fatalf("in flight = %d, want 1", l.InFlight())
	}
	l.Release()
	if !l.TryAcquire() {
		t.Fatal("released slot not reusable")
	}
	l.Release()
}

func TestLimiterMinimumCapacityAndOverRelease(t *testing.T) {
	l := NewLimiter(0)
	if l.Cap() != 1 {
		t.Fatalf("cap(NewLimiter(0)) = %d, want 1", l.Cap())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	l.Release()
}
