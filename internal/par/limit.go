package par

import "context"

// Limiter bounds the number of operations in flight at once — the
// backpressure primitive of the serving tier. Unlike ForEach, which owns a
// whole loop, a Limiter is shared across independently arriving work (e.g.
// every /batch request a router is currently fanning out to its workers):
// when the cap is reached, further Acquire calls block until an earlier
// operation Releases or the caller's context expires, so a traffic spike
// queues at the front door instead of multiplying upstream load without
// bound.
type Limiter struct {
	slots chan struct{}
}

// NewLimiter returns a Limiter admitting at most n concurrent operations.
// n < 1 is treated as 1: a limiter that admits nothing would deadlock every
// caller, which is never what a misconfigured flag should mean.
func NewLimiter(n int) *Limiter {
	if n < 1 {
		n = 1
	}
	return &Limiter{slots: make(chan struct{}, n)}
}

// Acquire blocks until a slot is free or ctx is done, returning ctx.Err() in
// the latter case. On nil error the caller owns one slot and must Release it.
func (l *Limiter) Acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	// Slow path: contended. Checking ctx only here keeps the uncontended
	// acquire a single channel send.
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot without blocking, reporting whether it got one.
func (l *Limiter) TryAcquire() bool {
	select {
	case l.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot taken by Acquire or TryAcquire. Releasing more than
// was acquired panics — it means two code paths think they own one slot, a
// bug worth crashing on rather than silently raising the cap.
func (l *Limiter) Release() {
	select {
	case <-l.slots:
	default:
		panic("par: Limiter.Release without Acquire")
	}
}

// InFlight reports the number of slots currently held (for /stats).
func (l *Limiter) InFlight() int { return len(l.slots) }

// Cap reports the limiter's capacity.
func (l *Limiter) Cap() int { return cap(l.slots) }
