package par

import "sync/atomic"

// Tracker realises the paper's abstract work/depth cost model (§1.2): the
// computation is a DAG whose node count is the work and whose longest path is
// the depth. Algorithms in this library accept an optional *Tracker and
// charge work at the granularity of semiring operations / edge relaxations;
// parallel phases record their depth as the maximum over branches plus the
// phase's own critical path.
//
// A nil *Tracker is valid and free: all methods are nil-safe no-ops, so the
// hot paths only pay an atomic add when instrumentation is requested.
type Tracker struct {
	work  atomic.Int64
	depth atomic.Int64
}

// AddWork charges n units of work.
func (t *Tracker) AddWork(n int64) {
	if t != nil {
		t.work.Add(n)
	}
}

// AddDepth charges n units of sequential depth (a phase on the critical
// path).
func (t *Tracker) AddDepth(n int64) {
	if t != nil {
		t.depth.Add(n)
	}
}

// AddPhase records a parallel phase: work is the phase's total operation
// count and depth its critical path (max over the parallel branches).
func (t *Tracker) AddPhase(work, depth int64) {
	if t != nil {
		t.work.Add(work)
		t.depth.Add(depth)
	}
}

// Work returns the accumulated work.
func (t *Tracker) Work() int64 {
	if t == nil {
		return 0
	}
	return t.work.Load()
}

// Depth returns the accumulated depth.
func (t *Tracker) Depth() int64 {
	if t == nil {
		return 0
	}
	return t.depth.Load()
}

// Reset clears both counters.
func (t *Tracker) Reset() {
	if t != nil {
		t.work.Store(0)
		t.depth.Store(0)
	}
}

// MaxDepth updates the tracker's depth to at least d. It is used by parallel
// phases where branches track their own depth and the phase contributes the
// maximum.
func (t *Tracker) MaxDepth(d int64) {
	if t == nil {
		return
	}
	for {
		cur := t.depth.Load()
		if d <= cur || t.depth.CompareAndSwap(cur, d) {
			return
		}
	}
}
