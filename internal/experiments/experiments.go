// Package experiments implements the reproduction suite of DESIGN.md —
// experiments E1–E12, ablations A1–A4, and extension X1: one function per paper claim, each
// producing a printable table whose rows are regenerated measurements. The
// package is shared by cmd/benchall (which prints all tables and the
// EXPERIMENTS.md payload) and the root bench suite (which runs each
// experiment as a testing.B benchmark).
package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/hopset"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
	"parmbf/internal/simgraph"
)

// Table is one experiment's result: a titled grid of measurement rows plus
// the paper claim it reproduces.
type Table struct {
	ID         string
	Title      string
	PaperClaim string
	Header     []string
	Rows       [][]string
	Notes      string
}

// Config controls experiment sizes.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// Quick shrinks the workloads for use inside testing.B loops.
	Quick bool
}

func (c Config) rng() *par.RNG { return par.NewRNG(c.Seed) }

// sizes returns a geometric size sweep, halved in Quick mode.
func (c Config) sizes(full ...int) []int {
	if !c.Quick {
		return full
	}
	out := make([]int, 0, len(full))
	for _, n := range full {
		if n <= full[0]*2 {
			out = append(out, n)
		}
	}
	return out
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "paper: %s\n", t.PaperClaim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "  %-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func d0(v int) string     { return fmt.Sprintf("%d", v) }

// E1Stretch measures the expected stretch of the oracle-pipeline FRT
// embedding across graph sizes (Theorem 7.9 / Corollary 7.10: O(log n)).
func E1Stretch(cfg Config) *Table {
	rng := cfg.rng()
	t := &Table{
		ID:         "E1",
		Title:      "expected stretch of sampled FRT trees (oracle pipeline)",
		PaperClaim: "expected stretch O(log n); dist_T ≥ dist_G always (Thm 7.9, Def 7.1)",
		Header:     []string{"graph", "n", "trees", "avgStretch", "maxAvgStretch", "/ln n", "minRatio"},
	}
	trees, pairs := 8, 30
	if cfg.Quick {
		trees, pairs = 3, 15
	}
	type workload struct {
		name string
		g    *graph.Graph
	}
	var ws []workload
	for _, n := range cfg.sizes(64, 128, 256) {
		ws = append(ws, workload{fmt.Sprintf("random-%d", n), graph.RandomConnected(n, 3*n, 8, rng)})
	}
	if !cfg.Quick {
		ws = append(ws,
			workload{"grid-16x16", graph.GridGraph(16, 16, 4, rng)},
			workload{"cycle-256", graph.CycleGraph(256, 1)},
		)
	}
	for _, w := range ws {
		stats, err := frt.MeasureStretch(w.g,
			func() (*frt.Embedding, error) { return frt.Sample(w.g, frt.Options{RNG: rng}) },
			trees, pairs, rng)
		if err != nil {
			panic(err)
		}
		ln := math.Log(float64(w.g.N()))
		t.Rows = append(t.Rows, []string{
			w.name, d0(w.g.N()), d0(trees),
			f2(stats.AvgStretch), f2(stats.MaxAvgStretch), f2(stats.MaxAvgStretch / ln),
			f2(stats.MinRatio),
		})
	}
	t.Notes = "claim reproduced if maxAvgStretch/ln n stays roughly flat and minRatio ≥ 1"
	return t
}

// E2SPDH measures SPD(H) against SPD(G) and the log²n envelope
// (Theorem 4.5) on high-SPD inputs.
func E2SPDH(cfg Config) *Table {
	rng := cfg.rng()
	t := &Table{
		ID:         "E2",
		Title:      "shortest-path diameter of the simulated graph H",
		PaperClaim: "SPD(H) ∈ O(log² n) w.h.p. (Thm 4.5)",
		Header:     []string{"graph", "n", "SPD(G)", "SPD(H)", "log²n", "oracleIters"},
	}
	for _, n := range cfg.sizes(64, 128, 256) {
		g := graph.PathGraph(n, 1)
		hs := hopset.DefaultSkeleton(g, rng, nil)
		h := simgraph.Build(hs, 0, rng)
		spdH := graph.SPD(h.Materialize())
		// Oracle iterations to the APSP fixpoint equal SPD(H)+O(1) as seen
		// through the decomposition (the count includes the final iteration
		// that confirms the fixpoint).
		oracle := simgraph.NewOracle(h, nil)
		_, iters := oracle.RunToFixpoint(frt.InitialStates(n), semiring.Identity[semiring.DistMap](), simgraph.MaxIters(n))
		l := math.Log2(float64(n))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("path-%d", n), d0(n), d0(n - 1), d0(spdH), f2(l * l), d0(iters),
		})
	}
	t.Notes = "claim reproduced if SPD(H) ≪ SPD(G) and stays below the log²n column's scale"
	return t
}

// E3HStretch measures how well H's metric preserves G's (Theorem 4.5,
// Equation 4.16).
func E3HStretch(cfg Config) *Table {
	rng := cfg.rng()
	t := &Table{
		ID:         "E3",
		Title:      "distance preservation of H",
		PaperClaim: "dist_G ≤ dist_H ≤ (1+ε̂)^{Λ+1}·dist_G ∈ (1+o(1))·dist_G (Thm 4.5, eq 4.16)",
		Header:     []string{"graph", "n", "ε̂", "Λ", "bound", "maxRatio", "minRatio"},
	}
	for _, n := range cfg.sizes(64, 128) {
		g := graph.RandomConnected(n, 3*n, 6, rng)
		hs := hopset.DefaultSkeleton(g, rng, nil)
		h := simgraph.Build(hs, 0, rng)
		eg := graph.APSPDijkstra(g)
		eh := graph.APSPDijkstra(h.Materialize())
		maxR, minR := 1.0, math.Inf(1)
		for v := 0; v < n; v++ {
			for w := v + 1; w < n; w++ {
				r := eh.At(v, w) / eg.At(v, w)
				if r > maxR {
					maxR = r
				}
				if r < minR {
					minR = r
				}
			}
		}
		bound := math.Pow(1+h.EpsHat, float64(h.Lambda+1))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("random-%d", n), d0(n), fmt.Sprintf("%.4f", h.EpsHat),
			d0(h.Lambda), f2(bound), fmt.Sprintf("%.4f", maxR), fmt.Sprintf("%.4f", minR),
		})
	}
	t.Notes = "claim reproduced if 1 ≤ minRatio ≤ maxRatio ≤ bound"
	return t
}

// E4LELists measures LE-list lengths across sizes (Lemma 7.6: O(log n)
// w.h.p., including intermediate states).
func E4LELists(cfg Config) *Table {
	rng := cfg.rng()
	t := &Table{
		ID:         "E4",
		Title:      "LE-list lengths",
		PaperClaim: "all (intermediate) LE lists have length O(log n) w.h.p. (Lemma 7.6)",
		Header:     []string{"n", "maxLen", "avgLen", "ln n", "max/ln n"},
	}
	for _, n := range cfg.sizes(128, 256, 512, 1024) {
		g := graph.RandomConnected(n, 3*n, 8, rng)
		order := frt.NewOrder(n, rng)
		lists, _ := frt.LEListsOnGraph(g, order, nil)
		maxLen, sum := 0, 0
		for _, l := range lists {
			if l.Len() > maxLen {
				maxLen = l.Len()
			}
			sum += l.Len()
		}
		ln := math.Log(float64(n))
		t.Rows = append(t.Rows, []string{
			d0(n), d0(maxLen), f2(float64(sum) / float64(n)), f2(ln), f2(float64(maxLen) / ln),
		})
	}
	t.Notes = "claim reproduced if max/ln n stays bounded as n grows"
	return t
}

// E5Work compares the work (DAG cost model) and wall time of the oracle
// pipeline against the exact-metric baseline across sizes.
func E5Work(cfg Config) *Table {
	rng := cfg.rng()
	t := &Table{
		ID:    "E5",
		Title: "work scaling: oracle pipeline vs exact-metric FRT",
		PaperClaim: "oracle: Õ(m^{1+ε}) work at polylog depth (Thm 7.9); metric-input " +
			"baselines are Ω(n²) [10]",
		Header: []string{"n", "m", "workOracle", "workExact", "ratio", "msOracle", "msExact"},
	}
	sizes := cfg.sizes(128, 256, 512)
	if cfg.Quick {
		sizes = sizes[:1]
	}
	for _, n := range sizes {
		g := graph.RandomConnected(n, 4*n, 8, rng)
		trO := &par.Tracker{}
		t0 := time.Now()
		if _, err := frt.Sample(g, frt.Options{RNG: rng, Tracker: trO}); err != nil {
			panic(err)
		}
		msO := time.Since(t0).Seconds() * 1000
		trE := &par.Tracker{}
		t1 := time.Now()
		if _, err := frt.SampleExact(g, rng, trE); err != nil {
			panic(err)
		}
		msE := time.Since(t1).Seconds() * 1000
		t.Rows = append(t.Rows, []string{
			d0(n), d0(g.M()),
			fmt.Sprintf("%d", trO.Work()), fmt.Sprintf("%d", trE.Work()),
			f2(float64(trO.Work()) / float64(trE.Work())),
			f2(msO), f2(msE),
		})
	}
	t.Notes = "with the √n-hop-set substitution the oracle's work is Õ(m·√n); its growth " +
		"exponent (≈1.5 in n) undercuts the baseline's (≈2) — the crossover sits beyond " +
		"these sizes; a polylog hop set (Cohen [13]) moves it down"
	return t
}

// E6HopSet verifies the hop-set inequality and reports sizes (§1.2 eq. 1.3;
// DESIGN.md substitution 1).
func E6HopSet(cfg Config) *Table {
	rng := cfg.rng()
	t := &Table{
		ID:         "E6",
		Title:      "hop-set quality",
		PaperClaim: "dist^d(v,w,G′) ≤ (1+ε̂)·dist(v,w,G), distances never shrink (eq 1.3)",
		Header:     []string{"kind", "n", "d", "added", "maxRatio", "minRatio"},
	}
	pairs := 30
	if cfg.Quick {
		pairs = 10
	}
	for _, n := range cfg.sizes(128, 256) {
		g := graph.RandomConnected(n, 3*n, 8, rng)
		sk := hopset.DefaultSkeleton(g, rng, nil)
		maxR, minR := hopset.Measure(g, sk, pairs, rng)
		t.Rows = append(t.Rows, []string{
			"skeleton", d0(n), d0(sk.D), d0(sk.Added), fmt.Sprintf("%.4f", maxR), fmt.Sprintf("%.4f", minR),
		})
		lm := hopset.Landmark(g, 8, rng, nil)
		maxR, minR = hopset.Measure(g, lm, pairs, rng)
		t.Rows = append(t.Rows, []string{
			"landmark", d0(n), d0(lm.D), d0(lm.Added), fmt.Sprintf("%.4f", maxR), fmt.Sprintf("%.4f", minR),
		})
	}
	t.Notes = "skeleton must be exact (maxRatio = 1); landmark trades d = 2 for measured ε̂; minRatio ≥ 1 always"
	return t
}
