package experiments

import (
	"strconv"
	"strings"
	"testing"
)

var quick = Config{Seed: 1, Quick: true}

// parse pulls a float out of a table cell (tolerating suffixes like "×").
func parse(t *testing.T, cell string) float64 {
	cell = strings.TrimSuffix(cell, "×")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return v
}

func checkShape(t *testing.T, tb *Table) {
	if tb.ID == "" || tb.Title == "" || tb.PaperClaim == "" {
		t.Fatalf("table %q missing metadata", tb.ID)
	}
	if len(tb.Rows) == 0 {
		t.Fatalf("%s: no rows", tb.ID)
	}
	for _, r := range tb.Rows {
		if len(r) != len(tb.Header) {
			t.Fatalf("%s: row %v does not match header %v", tb.ID, r, tb.Header)
		}
	}
	if !strings.Contains(tb.Format(), tb.ID) {
		t.Fatalf("%s: Format misses the ID", tb.ID)
	}
}

func TestE1StretchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow test: skipped with -short")
	}
	tb := E1Stretch(quick)
	checkShape(t, tb)
	for _, r := range tb.Rows {
		if min := parse(t, r[6]); min < 1-1e-9 {
			t.Fatalf("dominance violated in %v", r)
		}
		if norm := parse(t, r[5]); norm > 8 {
			t.Fatalf("stretch/ln n = %v implausible in %v", norm, r)
		}
	}
}

func TestE2SPDHQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow test: skipped with -short")
	}
	tb := E2SPDH(quick)
	checkShape(t, tb)
	for _, r := range tb.Rows {
		spdG := parse(t, r[2])
		spdH := parse(t, r[3])
		if spdH >= spdG {
			t.Fatalf("SPD(H) did not improve in %v", r)
		}
	}
}

func TestE3HStretchQuick(t *testing.T) {
	tb := E3HStretch(quick)
	checkShape(t, tb)
	for _, r := range tb.Rows {
		bound, maxR, minR := parse(t, r[4]), parse(t, r[5]), parse(t, r[6])
		if minR < 1-1e-9 || maxR > bound+1e-6 {
			t.Fatalf("H distance band violated in %v", r)
		}
	}
}

func TestE4LEListsQuick(t *testing.T) {
	tb := E4LELists(quick)
	checkShape(t, tb)
	for _, r := range tb.Rows {
		if ratio := parse(t, r[4]); ratio > 8 {
			t.Fatalf("LE length / ln n = %v implausible", ratio)
		}
	}
}

func TestE5WorkQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow test: skipped with -short")
	}
	tb := E5Work(quick)
	checkShape(t, tb)
}

func TestE6HopSetQuick(t *testing.T) {
	tb := E6HopSet(quick)
	checkShape(t, tb)
	for _, r := range tb.Rows {
		if minR := parse(t, r[5]); minR < 1-1e-9 {
			t.Fatalf("hop set shortened distances in %v", r)
		}
		if r[0] == "skeleton" {
			if maxR := parse(t, r[4]); maxR > 1+1e-9 {
				t.Fatalf("skeleton hop set inexact in %v", r)
			}
		}
	}
}

func TestE7MetricQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow test: skipped with -short")
	}
	tb := E7Metric(quick)
	checkShape(t, tb)
	for _, r := range tb.Rows {
		if r[5] != "true" {
			t.Fatalf("approximate metric not a metric in %v", r)
		}
		if parse(t, r[4]) > parse(t, r[3])+1e-6 {
			t.Fatalf("observed ratio exceeds guarantee in %v", r)
		}
	}
}

func TestE8SpannerQuick(t *testing.T) {
	tb := E8Spanner(quick)
	checkShape(t, tb)
	for _, r := range tb.Rows {
		if parse(t, r[5]) > parse(t, r[6])+1e-9 {
			t.Fatalf("spanner stretch exceeds bound in %v", r)
		}
	}
}

func TestE9CongestQuick(t *testing.T) {
	tb := E9Congest(quick)
	checkShape(t, tb)
	if tb.Rows[0][6] != "skeleton" {
		t.Fatalf("skeleton did not win on starPath: %v", tb.Rows[0])
	}
	if tb.Rows[1][6] != "khan" {
		t.Fatalf("khan did not win on the random graph: %v", tb.Rows[1])
	}
}

func TestE10ZooQuick(t *testing.T) {
	tb := E10Zoo(quick)
	checkShape(t, tb)
	// Filtered rows must use a fraction of APSP's work.
	for _, r := range tb.Rows[1:3] {
		if parse(t, r[3]) > 0.7 {
			t.Fatalf("filtered variant not cheaper in %v", r)
		}
	}
}

func TestE11KMedianQuick(t *testing.T) {
	tb := E11KMedian(quick)
	checkShape(t, tb)
	if ratio := parse(t, tb.Rows[0][5]); ratio < 1-1e-9 || ratio > 6 {
		t.Fatalf("k-median ratio %v outside [1, 6]", ratio)
	}
}

func TestE12BuyAtBulkQuick(t *testing.T) {
	tb := E12BuyAtBulk(quick)
	checkShape(t, tb)
	for _, r := range tb.Rows {
		if parse(t, r[6]) < 1-1e-9 {
			t.Fatalf("solution beat the lower bound in %v", r)
		}
	}
}

func TestE13EnsembleQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow test: skipped with -short")
	}
	tb := E13Ensemble(quick)
	checkShape(t, tb)
	for _, r := range tb.Rows {
		if r[7] != "true" {
			t.Fatalf("ensemble dominance violated in %v", r)
		}
		if stretch := parse(t, r[6]); stretch < 1-1e-9 {
			t.Fatalf("min-stretch below 1 in %v", r)
		}
	}
}

func TestA1FilteringQuick(t *testing.T) {
	tb := A1Filtering(quick)
	checkShape(t, tb)
	if tb.Rows[0][6] != "true" {
		t.Fatal("filtering changed the output")
	}
}

func TestA2LevelPenaltyQuick(t *testing.T) {
	tb := A2LevelPenalty(quick)
	checkShape(t, tb)
}

func TestA3HopSetChoiceQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow test: skipped with -short")
	}
	tb := A3HopSetChoice(quick)
	checkShape(t, tb)
}

func TestA4SpannerPreQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow test: skipped with -short")
	}
	tb := A4SpannerPre(quick)
	checkShape(t, tb)
	direct := parse(t, tb.Rows[0][2])
	sparse := parse(t, tb.Rows[1][2])
	if sparse >= direct {
		t.Fatal("spanner preprocessing did not reduce the edge count")
	}
}

func TestX1SteinerQuick(t *testing.T) {
	tb := X1Steiner(quick)
	checkShape(t, tb)
	for _, r := range tb.Rows {
		via, lb := parse(t, r[3]), parse(t, r[5])
		if via < lb-1e-9 {
			t.Fatalf("embedding solution beat the lower bound in %v", r)
		}
		if via > 12*lb {
			t.Fatalf("ratio implausible in %v", r)
		}
	}
}
