package experiments

import (
	"fmt"
	"time"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// E13Ensemble measures the ensemble sampling path: the shared-pipeline
// Embedder (hop set, H, and oracle built once per graph, trees drawn
// concurrently) against the naive per-tree pipeline, across ensemble sizes.
// This is the repository's "make a hot path measurably faster" benchmark —
// the paper's headline use of the embedding is exactly this ensemble form
// ("repeating the process log(ε⁻¹) times and taking the best result", §1).
func E13Ensemble(cfg Config) *Table {
	rng := cfg.rng()
	t := &Table{
		ID:         "E13",
		Title:      "ensemble sampling: shared pipeline vs per-tree pipeline",
		PaperClaim: "K repetitions share one hop set and one H; only order and β are per-tree (§1, §7.1)",
		Header:     []string{"graph", "n", "trees", "naive", "shared", "speedup", "minStretchAvg", "dominance"},
	}
	n, reps := 96, 2
	counts := []int{1, 4, 8}
	if cfg.Quick {
		n = 64
		counts = []int{1, 8}
	}
	g := graph.RandomConnected(n, 4*n, 8, rng)
	for _, trees := range counts {
		// Both paths start from the same per-rep seed (so they construct the
		// same hop set and H); the best of `reps` runs is reported to damp
		// scheduling noise.
		var naive, shared time.Duration
		var ens *frt.Ensemble
		for rep := 0; rep < reps; rep++ {
			seed := cfg.Seed + uint64(1000*trees+rep)

			startNaive := time.Now()
			naiveRNG := par.NewRNG(seed)
			if _, err := frt.SampleEnsemble(trees, func() (*frt.Embedding, error) {
				return frt.Sample(g, frt.Options{RNG: naiveRNG})
			}); err != nil {
				panic(err)
			}
			if d := time.Since(startNaive); rep == 0 || d < naive {
				naive = d
			}

			startShared := time.Now()
			e, err := frt.NewEmbedder(g, frt.Options{RNG: par.NewRNG(seed)})
			if err != nil {
				panic(err)
			}
			sampled, err := e.SampleEnsemble(trees)
			if err != nil {
				panic(err)
			}
			if d := time.Since(startShared); rep == 0 || d < shared {
				shared = d
			}
			ens = sampled
		}

		stats := ens.Evaluate(g, 30, par.NewRNG(cfg.Seed+uint64(trees)))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("random-%d", n), d0(n), d0(trees),
			fmt.Sprintf("%.0fms", float64(naive.Microseconds())/1000),
			fmt.Sprintf("%.0fms", float64(shared.Microseconds())/1000),
			f2(float64(naive) / float64(shared)),
			f2(stats.AvgMinStretch),
			fmt.Sprintf("%v", stats.DominanceOK),
		})
	}
	t.Notes = "speedup grows with the tree count (pipeline construction amortised) and with " +
		"available cores (trees are sampled concurrently); dominance must stay true"
	return t
}
