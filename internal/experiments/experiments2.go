package experiments

import (
	"fmt"
	"math"

	"parmbf/internal/apps/buyatbulk"
	"parmbf/internal/apps/kmedian"
	"parmbf/internal/apps/steiner"
	"parmbf/internal/congest"
	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/hopset"
	"parmbf/internal/mbf"
	"parmbf/internal/metric"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
	"parmbf/internal/simgraph"
	"parmbf/internal/spanner"
)

// E7Metric measures the approximate-metric constructions of Theorems 6.1
// and 6.2.
func E7Metric(cfg Config) *Table {
	rng := cfg.rng()
	t := &Table{
		ID:         "E7",
		Title:      "approximate metrics through the oracle",
		PaperClaim: "(1+o(1))-approx metric (Thm 6.1); O(1)-approx at reduced size via spanner (Thm 6.2)",
		Header:     []string{"variant", "n", "m(used)", "guarantee", "maxObserved", "isMetric"},
	}
	for _, n := range cfg.sizes(64, 128) {
		g := graph.RandomConnected(n, 5*n, 6, rng)
		exact := graph.APSPDijkstra(g)
		observe := func(m *graph.Matrix) float64 {
			worst := 1.0
			for v := 0; v < n; v++ {
				for w := v + 1; w < n; w++ {
					if r := m.At(v, w) / exact.At(v, w); r > worst {
						worst = r
					}
				}
			}
			return worst
		}
		direct := metric.Approximate(g, rng, nil)
		t.Rows = append(t.Rows, []string{
			"oracle", d0(n), d0(g.M()), f2(direct.MaxRatio), fmt.Sprintf("%.4f", observe(direct.Matrix)),
			fmt.Sprintf("%v", direct.Matrix.IsMetric(1e-6)),
		})
		k := 2
		sp := spanner.Build(g, k, rng, nil)
		sparse := metric.Approximate(sp, rng, nil)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("spanner(k=%d)", k), d0(n), d0(sp.M()),
			f2(float64(2*k-1) * sparse.MaxRatio), fmt.Sprintf("%.4f", observe(sparse.Matrix)),
			fmt.Sprintf("%v", sparse.Matrix.IsMetric(1e-6)),
		})
	}
	t.Notes = "claim reproduced if maxObserved ≤ guarantee and both variants are true metrics"
	return t
}

// E8Spanner measures Baswana–Sen size/stretch trade-offs (§6, [8]).
func E8Spanner(cfg Config) *Table {
	rng := cfg.rng()
	t := &Table{
		ID:         "E8",
		Title:      "Baswana–Sen spanner trade-off",
		PaperClaim: "stretch ≤ 2k−1 with Õ(n^{1+1/k}) edges in expectation [8]",
		Header:     []string{"n", "m", "k", "edges", "n^{1+1/k}", "maxStretch", "bound"},
	}
	n := 128
	if !cfg.Quick {
		n = 256
	}
	g := graph.RandomConnected(n, n*n/8, 6, rng)
	eg := graph.APSPDijkstra(g)
	for _, k := range []int{2, 3, 5} {
		sp := spanner.Build(g, k, rng, nil)
		es := graph.APSPDijkstra(sp)
		worst := 1.0
		for v := 0; v < n; v++ {
			for w := v + 1; w < n; w++ {
				if r := es.At(v, w) / eg.At(v, w); r > worst {
					worst = r
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			d0(n), d0(g.M()), d0(k), d0(sp.M()),
			f2(math.Pow(float64(n), 1+1/float64(k))),
			f2(worst), d0(2*k - 1),
		})
	}
	t.Notes = "claim reproduced if maxStretch ≤ bound and edges track n^{1+1/k}"
	return t
}

// E9Congest compares the round counts of the two distributed algorithms
// (§8, Theorem 8.1).
func E9Congest(cfg Config) *Table {
	t := &Table{
		ID:         "E9",
		Title:      "Congest rounds: Khan et al. vs skeleton algorithm",
		PaperClaim: "Khan: O(SPD·log n) rounds [26]; skeleton: ≈ Õ(√n + D) (§8.3, Thm 8.1)",
		Header:     []string{"graph", "n", "SPD(G)", "D(G)", "roundsKhan", "roundsSkeleton", "winner"},
	}
	type workload struct {
		name string
		g    *graph.Graph
		opts congest.SkeletonOptions
	}
	nPath := 800
	if cfg.Quick {
		nPath = 300
	}
	ws := []workload{
		{"starPath", starPath(nPath), congest.SkeletonOptions{Ell: 150, C: 1.5, SpannerK: 3}},
		{"random", graph.RandomConnected(300, 4000, 4, cfg.rng()), congest.SkeletonOptions{}},
	}
	for _, w := range ws {
		khan := congest.Khan(w.g, par.NewRNG(cfg.Seed+1))
		skel := congest.Skeleton(w.g, par.NewRNG(cfg.Seed+2), w.opts)
		winner := "khan"
		if skel.Rounds < khan.Rounds {
			winner = "skeleton"
		}
		t.Rows = append(t.Rows, []string{
			w.name, d0(w.g.N()), d0(graph.SPDFrom(w.g, 0)), d0(graph.HopDiameter(w.g)),
			d0(khan.Rounds), d0(skel.Rounds), winner,
		})
	}
	t.Notes = "claim reproduced if skeleton wins on the high-SPD/low-D workload and Khan on the low-SPD one"
	return t
}

// starPath is the high-SPD, hop-diameter-2 workload of E9 (see the congest
// tests for the construction rationale).
func starPath(n int) *graph.Graph {
	b := graph.NewBuilder(n + 1)
	for v := 0; v+1 < n; v++ {
		b.Add(graph.Node(v), graph.Node(v+1), 1)
	}
	for v := 0; v < n; v++ {
		b.Add(graph.Node(n), graph.Node(v), float64(2*n))
	}
	return b.Freeze()
}

// E10Zoo demonstrates the MBF-like algorithm collection (§3) and the
// filter-induced work reduction of §2.
func E10Zoo(cfg Config) *Table {
	rng := cfg.rng()
	t := &Table{
		ID:         "E10",
		Title:      "MBF-like algorithm zoo: filtered vs unfiltered work",
		PaperClaim: "filtering reduces k-SSP work from Θ̃(mn) to Θ̃(mk) without changing outputs (§2, §3)",
		// All min-plus rows (APSP, k-SSP, detection, forest fire) run the
		// sparse frontier engine uniformly, so their work columns compare
		// like with like: the work actually performed, with hop cap h. The
		// widest-path row uses the dense h-iteration engine.
		Header: []string{"algorithm", "n", "work", "vs APSP work", "h (cap)"},
	}
	n := 256
	if cfg.Quick {
		n = 128
	}
	g := graph.RandomConnected(n, 4*n, 8, rng)
	h := 10

	trAPSP := &par.Tracker{}
	mbf.APSP(g, h, trAPSP)
	apspWork := float64(trAPSP.Work())
	row := func(name string, tr *par.Tracker, iters int) {
		t.Rows = append(t.Rows, []string{
			name, d0(n), fmt.Sprintf("%d", tr.Work()), f2(float64(tr.Work()) / apspWork), d0(iters),
		})
	}
	row("APSP (unfiltered)", trAPSP, h)

	trK := &par.Tracker{}
	mbf.KSSP(g, 3, h, trK)
	row("3-SSP (top-k filter)", trK, h)

	trS := &par.Tracker{}
	mbf.SourceDetection(g, func(v graph.Node) bool { return v < 8 }, h, semiring.Inf, 4, trS)
	row("(8src,4)-detection", trS, h)

	trW := &par.Tracker{}
	mbf.APWP(g, h, trW)
	row("all-pairs widest", trW, h)

	trF := &par.Tracker{}
	mbf.ForestFire(g, []graph.Node{0, 1}, 10, trF)
	row("forest fire (d=10)", trF, 0)

	t.Notes = "claim reproduced if the filtered variants' work is a small fraction of APSP's; " +
		"work is measured on the sparse fixpoint engine (h is the hop cap, not necessarily the iterations run)"
	return t
}

// E11KMedian measures the k-median approximation (Theorem 9.2).
func E11KMedian(cfg Config) *Table {
	rng := cfg.rng()
	t := &Table{
		ID:         "E11",
		Title:      "k-median on graphs",
		PaperClaim: "expected O(log k)-approximation in polylog depth (Thm 9.2)",
		Header:     []string{"graph", "n", "k", "cost", "baseline", "ratio", "baselineKind"},
	}
	// Small instance vs brute-force optimum.
	gSmall := graph.RandomConnected(22, 55, 6, rng)
	opt := kmedian.BruteForce(gSmall, 3)
	res, err := kmedian.Solve(gSmall, 3, kmedian.Options{RNG: rng, Trees: 5})
	if err != nil {
		panic(err)
	}
	t.Rows = append(t.Rows, []string{
		"random", d0(22), d0(3), f2(res.Cost), f2(opt.Cost), f2(res.Cost / opt.Cost), "bruteforce-opt",
	})
	if !cfg.Quick {
		// Larger instance vs local search.
		gBig := graph.Clustered(5, 40, 300, rng)
		ls := kmedian.LocalSearch(gBig, 5, rng, 30)
		res2, err := kmedian.Solve(gBig, 5, kmedian.Options{RNG: rng, Trees: 5})
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			"clustered", d0(gBig.N()), d0(5), f2(res2.Cost), f2(ls.Cost), f2(res2.Cost / ls.Cost), "localsearch(3+ε)",
		})
	}
	t.Notes = "claim reproduced if ratios stay in low single digits (log k ≤ 2 here)"
	return t
}

// E12BuyAtBulk measures the buy-at-bulk approximation (Theorem 10.2).
func E12BuyAtBulk(cfg Config) *Table {
	rng := cfg.rng()
	t := &Table{
		ID:         "E12",
		Title:      "buy-at-bulk network design",
		PaperClaim: "expected O(log n)-approximation (Thm 10.2)",
		Header:     []string{"graph", "n", "demands", "treeCost", "directCost", "lowerBound", "cost/LB"},
	}
	cables := []buyatbulk.CableType{
		{Capacity: 1, Cost: 1}, {Capacity: 10, Cost: 4}, {Capacity: 100, Cost: 12},
	}
	rows := cfg.sizes(6, 8)
	for _, side := range rows {
		g := graph.GridGraph(side, side, 2, rng)
		n := g.N()
		var demands []buyatbulk.Demand
		for i := 0; i < 2*side; i++ {
			demands = append(demands, buyatbulk.Demand{
				S:      graph.Node(rng.Intn(side)),
				T:      graph.Node(n - 1 - rng.Intn(side)),
				Amount: float64(1 + rng.Intn(20)),
			})
		}
		sol, err := buyatbulk.Solve(g, demands, cables, buyatbulk.Options{RNG: rng})
		if err != nil {
			panic(err)
		}
		direct := buyatbulk.DirectShortestPath(g, demands, cables)
		lb := buyatbulk.LowerBound(g, demands, cables)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("grid-%dx%d", side, side), d0(n), d0(len(demands)),
			f2(sol.Cost), f2(direct.Cost), f2(lb), f2(sol.Cost / lb),
		})
	}
	t.Notes = "claim reproduced if cost/LB stays within a small multiple of ln n (the LB prices everything at bulk rate)"
	return t
}

// A1Filtering quantifies Corollary 2.17: intermediate filtering changes
// work, never outputs.
func A1Filtering(cfg Config) *Table {
	rng := cfg.rng()
	t := &Table{
		ID:         "A1",
		Title:      "ablation: intermediate filtering on vs off",
		PaperClaim: "r^V ∼ id: filtering any intermediate state never changes the output (Cor 2.17)",
		Header:     []string{"n", "h", "k", "workFiltered", "workUnfiltered", "saving", "outputsEqual"},
	}
	n, h, k := 192, 8, 3
	if cfg.Quick {
		n = 96
	}
	g := graph.RandomConnected(n, 4*n, 8, rng)
	filter := semiring.TopKFilter(k, semiring.Inf, nil)

	// Both arms run the dense engine explicitly (zoo.SourceDetection now
	// rides the sparse fixpoint engine, whose frontier savings would be
	// conflated with the filtering effect this ablation isolates): the
	// saving column measures Corollary 2.17 alone.
	trF := &par.Tracker{}
	frunner := &mbf.Runner[float64, semiring.DistMap]{
		Graph:         g,
		Module:        semiring.DistMapModule{},
		Filter:        filter,
		FilterInPlace: semiring.TopKFilterInPlace(k, semiring.Inf, nil),
		Weight:        mbf.MinPlusWeight,
		Size:          func(m semiring.DistMap) int { return m.Len() + 1 },
		Tracker:       trF,
	}
	filtered := frunner.Run(frt.InitialStates(n), h)

	trU := &par.Tracker{}
	runner := &mbf.Runner[float64, semiring.DistMap]{
		Graph:   g,
		Module:  semiring.DistMapModule{},
		Weight:  mbf.MinPlusWeight,
		Size:    func(m semiring.DistMap) int { return m.Len() + 1 },
		Tracker: trU,
	}
	unfiltered := runner.Run(frt.InitialStates(n), h)

	equal := true
	mod := semiring.DistMapModule{}
	for v := range filtered {
		if !mod.Equal(filtered[v], filter(unfiltered[v])) {
			equal = false
		}
	}
	t.Rows = append(t.Rows, []string{
		d0(n), d0(h), d0(k),
		fmt.Sprintf("%d", trF.Work()), fmt.Sprintf("%d", trU.Work()),
		fmt.Sprintf("%.1f×", float64(trU.Work())/float64(trF.Work())),
		fmt.Sprintf("%v", equal),
	})
	t.Notes = "claim reproduced if outputsEqual and the saving factor is large"
	return t
}

// A2LevelPenalty measures the effect of H's level penalty (the (1+ε̂)^{Λ−λ}
// factor that Lemmas 4.3/4.4 rely on) using the approximate landmark hop
// set, where d-hop distances genuinely differ from exact ones.
func A2LevelPenalty(cfg Config) *Table {
	rng := cfg.rng()
	t := &Table{
		ID:         "A2",
		Title:      "ablation: level penalty of H on vs off",
		PaperClaim: "the penalty makes high levels attractive, bounding SPD(H) (Lemmas 4.3/4.4)",
		Header:     []string{"penalty", "n", "SPD(H)", "maxDistRatio"},
	}
	n := 128
	if cfg.Quick {
		n = 96
	}
	g := graph.RandomConnected(n, 3*n, 6, rng)
	hs := hopset.Landmark(g, 4, rng, nil)
	eg := graph.APSPDijkstra(g)
	for _, penalty := range []bool{true, false} {
		epsHat := 0.0 // default penalty
		if !penalty {
			epsHat = -1 // disabled (ablation)
		}
		h := simgraph.Build(hs, epsHat, rng)
		hg := h.Materialize()
		eh := graph.APSPDijkstra(hg)
		worst := 1.0
		for v := 0; v < n; v++ {
			for w := v + 1; w < n; w++ {
				if r := eh.At(v, w) / eg.At(v, w); r > worst {
					worst = r
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%v", penalty), d0(n), d0(graph.SPD(hg)), fmt.Sprintf("%.4f", worst),
		})
	}
	t.Notes = "the penalty costs a little distance slack and buys the w.h.p. SPD bound; " +
		"on benign hop sets (near-metric d-hop distances) the penalty-free variant is also " +
		"shallow — the comparison is recorded honestly rather than tuned"
	return t
}

// A3HopSetChoice compares the sampling pipeline across hop-set stages.
func A3HopSetChoice(cfg Config) *Table {
	rng := cfg.rng()
	t := &Table{
		ID:         "A3",
		Title:      "ablation: hop-set choice in the pipeline",
		PaperClaim: "the pipeline is parameterised by any (d, ε̂)-hop set (Thm 7.9)",
		Header:     []string{"hopset", "n", "d", "oracleIters", "work", "maxAvgStretch"},
	}
	n := 128
	if cfg.Quick {
		n = 96
	}
	g := graph.RandomConnected(n, 3*n, 6, rng)
	trees, pairs := 4, 20
	if cfg.Quick {
		trees, pairs = 2, 10
	}
	for _, kind := range []struct {
		name string
		k    frt.HopSetKind
	}{{"skeleton", frt.HopSetSkeleton}, {"landmark", frt.HopSetLandmark}, {"none", frt.HopSetNone}} {
		tr := &par.Tracker{}
		var iters, d int
		stats, err := frt.MeasureStretch(g, func() (*frt.Embedding, error) {
			emb, err := frt.Sample(g, frt.Options{RNG: rng, HopSet: kind.k, Tracker: tr})
			if err == nil {
				iters = emb.Iterations
				d = emb.H.Hop.D
			}
			return emb, err
		}, trees, pairs, rng)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			kind.name, d0(n), d0(d), d0(iters), fmt.Sprintf("%d", tr.Work()), f2(stats.MaxAvgStretch),
		})
	}
	t.Notes = "skeleton keeps stretch near the direct pipeline; none pays d = n−1 inside the oracle"
	return t
}

// A4SpannerPre measures the spanner preprocessing trade-off of
// Corollary 7.11: less work, more stretch.
func A4SpannerPre(cfg Config) *Table {
	rng := cfg.rng()
	t := &Table{
		ID:         "A4",
		Title:      "ablation: spanner preprocessing before embedding",
		PaperClaim: "work O(m + n^{1+1/k+ε}) at stretch O(k·log n) (Cor 7.11)",
		Header:     []string{"variant", "n", "m(used)", "work", "maxAvgStretch"},
	}
	n := 128
	if cfg.Quick {
		n = 96
	}
	g := graph.RandomConnected(n, n*n/10, 5, rng)
	trees, pairs := 4, 20
	if cfg.Quick {
		trees, pairs = 2, 10
	}
	run := func(name string, used *graph.Graph) {
		tr := &par.Tracker{}
		stats, err := frt.MeasureStretch(g, func() (*frt.Embedding, error) {
			return frt.Sample(used, frt.Options{RNG: rng, Tracker: tr})
		}, trees, pairs, rng)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			name, d0(n), d0(used.M()), fmt.Sprintf("%d", tr.Work()), f2(stats.MaxAvgStretch),
		})
	}
	run("direct", g)
	sp := spanner.Build(g, 2, rng, nil)
	run("3-spanner first", sp)
	t.Notes = "stretch is measured against the ORIGINAL graph's metric; the spanner variant " +
		"works on fewer edges and pays up to 3× more stretch"
	return t
}

// All runs the complete suite in order.
func All(cfg Config) []*Table {
	return []*Table{
		E1Stretch(cfg), E2SPDH(cfg), E3HStretch(cfg), E4LELists(cfg),
		E5Work(cfg), E6HopSet(cfg), E7Metric(cfg), E8Spanner(cfg),
		E9Congest(cfg), E10Zoo(cfg), E11KMedian(cfg), E12BuyAtBulk(cfg),
		E13Ensemble(cfg),
		A1Filtering(cfg), A2LevelPenalty(cfg), A3HopSetChoice(cfg), A4SpannerPre(cfg),
		X1Steiner(cfg),
	}
}

// X1Steiner measures the extension application: Steiner trees via the
// embedding vs the classic 2-approximation (metric-closure MST). Not a
// paper table — the introduction motivates Steiner-type problems as FRT
// consumers; recorded as an extension experiment.
func X1Steiner(cfg Config) *Table {
	rng := cfg.rng()
	t := &Table{
		ID:         "X1",
		Title:      "extension: Steiner tree via FRT embedding",
		PaperClaim: "Steiner-type problems are prime consumers of tree embeddings (§1); expected O(log n)-approx by linearity",
		Header:     []string{"graph", "n", "terminals", "viaTree", "closureMST(2-approx)", "LB", "tree/LB"},
	}
	for _, side := range cfg.sizes(8, 12) {
		g := graph.GridGraph(side, side, 3, rng)
		n := g.N()
		terms := []graph.Node{0, graph.Node(side - 1), graph.Node(n - side), graph.Node(n - 1), graph.Node(n / 2)}
		best := -1.0
		for trial := 0; trial < 3; trial++ {
			r, err := steiner.Solve(g, terms, steiner.Options{RNG: rng})
			if err != nil {
				panic(err)
			}
			if best < 0 || r.Weight < best {
				best = r.Weight
			}
		}
		base, err := steiner.MetricClosureMST(g, terms)
		if err != nil {
			panic(err)
		}
		lb, err := steiner.LowerBound(g, terms)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("grid-%dx%d", side, side), d0(n), d0(len(terms)),
			f2(best), f2(base.Weight), f2(lb), f2(best / lb),
		})
	}
	t.Notes = "claim reproduced if tree/LB stays within a small multiple of ln n (the 2-approx baseline sits at ≤ 2×LB by construction)"
	return t
}
