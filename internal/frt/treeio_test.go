package frt

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

func sampleTreeForIO(t *testing.T, seed uint64, n, m int) (*graph.Graph, *Tree) {
	t.Helper()
	rng := par.NewRNG(seed)
	g := graph.RandomConnected(n, m, 6, rng)
	emb, err := SampleOnGraph(g, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g, emb.Tree
}

func TestTreeWriteReadRoundTrip(t *testing.T) {
	_, tree := sampleTreeForIO(t, 1, 30, 70)
	var buf bytes.Buffer
	if err := WriteTree(&buf, tree); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != tree.NumNodes() || got.Beta != tree.Beta {
		t.Fatal("round trip changed shape")
	}
	for u := 0; u < tree.NumNodes(); u++ {
		if got.Parent[u] != tree.Parent[u] || got.EdgeWeight[u] != tree.EdgeWeight[u] ||
			got.Center[u] != tree.Center[u] || got.Level[u] != tree.Level[u] {
			t.Fatalf("tree node %d differs", u)
		}
	}
	for v := range tree.Leaf {
		if got.Leaf[v] != tree.Leaf[v] {
			t.Fatalf("leaf %d differs", v)
		}
	}
}

func TestReadTreeRejectsMalformed(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no header", "n 0 -1 0 0 0\n"},
		{"duplicate header", "t 1 1 1.5\nt 1 1 1.5\n"},
		{"node out of range", "t 1 1 1.5\nn 5 -1 0 0 0\nl 0 0\n"},
		{"missing leaf", "t 1 1 1.5\nn 0 -1 0 0 0\n"},
		{"missing nodes", "t 2 1 1.5\nn 0 -1 0 0 0\nl 0 0\n"},
		{"garbage", "t 1 1 1.5\nx y z\n"},
		{"empty", ""},
	}
	for _, c := range cases {
		if _, err := ReadTree(strings.NewReader(c.src)); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
}

func TestToGraphPreservesTreeMetric(t *testing.T) {
	g, tree := sampleTreeForIO(t, 2, 25, 60)
	tg, leaves := tree.ToGraph()
	if !tg.Connected() {
		t.Fatal("tree graph disconnected")
	}
	if tg.M() != tree.NumNodes()-1 {
		t.Fatalf("tree graph has %d edges, want %d", tg.M(), tree.NumNodes()-1)
	}
	for u := 0; u < g.N(); u += 3 {
		res := graph.Dijkstra(tg, leaves[u])
		for v := 0; v < g.N(); v += 2 {
			want := tree.Dist(graph.Node(u), graph.Node(v))
			if got := res.Dist[leaves[v]]; got != want {
				t.Fatalf("(%d,%d): tree graph %v vs Tree.Dist %v", u, v, got, want)
			}
		}
	}
}

// quickTreeSeed drives random tree round-trips via testing/quick.
type quickTreeSeed struct{ Seed uint64 }

// Generate implements quick.Generator.
func (quickTreeSeed) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickTreeSeed{Seed: r.Uint64()})
}

func TestQuickTreeRoundTripAndDominance(t *testing.T) {
	f := func(s quickTreeSeed) bool {
		rng := par.NewRNG(s.Seed)
		n := 8 + int(s.Seed%16)
		g := graph.RandomConnected(n, 2*n, 6, rng)
		emb, err := SampleOnGraph(g, rng, nil)
		if err != nil {
			return false
		}
		if emb.Tree.Validate() != nil {
			return false
		}
		// Serialise and re-read.
		var buf bytes.Buffer
		if WriteTree(&buf, emb.Tree) != nil {
			return false
		}
		got, err := ReadTree(&buf)
		if err != nil {
			return false
		}
		// Dominance and symmetry on all pairs of the re-read tree.
		exact := graph.APSPDijkstra(g)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				d := got.Dist(graph.Node(u), graph.Node(v))
				if d < exact.At(u, v)-1e-9 {
					return false
				}
				if d != got.Dist(graph.Node(v), graph.Node(u)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTreeDeepEqualRoundTrip is the exact-round-trip property: for
// randomly sampled trees (drawn through the shared-pipeline Embedder),
// write → read reproduces the Tree struct field-for-field.
func TestQuickTreeDeepEqualRoundTrip(t *testing.T) {
	f := func(s quickTreeSeed) bool {
		rng := par.NewRNG(s.Seed)
		n := 8 + int(s.Seed%12)
		g := graph.RandomConnected(n, 3*n, 6, rng)
		e, err := NewEmbedder(g, Options{RNG: rng})
		if err != nil {
			return false
		}
		ens, err := e.SampleEnsemble(2)
		if err != nil {
			return false
		}
		for _, tree := range ens.Trees {
			var buf bytes.Buffer
			if WriteTree(&buf, tree) != nil {
				return false
			}
			got, err := ReadTree(&buf)
			if err != nil {
				return false
			}
			if !reflect.DeepEqual(got, tree) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLEFilterProjection(t *testing.T) {
	mod := semiring.DistMapModule{}
	f := func(seed uint64, raw []uint8) bool {
		rng := par.NewRNG(seed)
		o := NewOrder(16, rng)
		filter := o.Filter()
		var x, y semiring.DistMap
		for i, b := range raw {
			node, dist := graph.Node(int32(i%16)), float64(b)
			if i%2 == 0 {
				x = x.Append(node, dist)
			} else {
				y = y.Append(node, dist)
			}
		}
		xs, ys := semiring.Normalize(x), semiring.Normalize(y)
		rx := filter(xs)
		if !mod.Equal(filter(rx), rx) {
			return false
		}
		// Congruence in the single-sided form of Lemma 7.5.
		lhs := filter(mod.Add(xs, ys))
		rhs := filter(mod.Add(filter(xs), filter(ys)))
		return mod.Equal(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
