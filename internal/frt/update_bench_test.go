package frt

// Benchmarks for the live-update path at serving scale (n = 4096, K = 16,
// the direct pipeline): one single-edge reweight absorbed incrementally —
// repair + tree patch + fresh OracleIndex, i.e. everything POST /update does
// — against the full frozen-randomness rebuild it replaces. The acceptance
// bar for the dynamic path is incremental ≥ 10× faster than the rebuild.
// Part of the bench-mbf tier; IncrementalUpdate is pinned by bench-gate.

import (
	"sync"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

var updateFix struct {
	once sync.Once
	d    *DynamicEnsemble
	edge graph.Edge
	err  error
}

func updateFixture(b *testing.B) *DynamicEnsemble {
	b.Helper()
	updateFix.once.Do(func() {
		g := graph.RandomConnected(4096, 16384, 10, par.NewRNG(3))
		updateFix.d, updateFix.err = NewDynamicEnsemble(g, 16, par.NewRNG(4), nil)
		if updateFix.err == nil {
			updateFix.edge = g.Edges()[1234]
		}
	})
	if updateFix.err != nil {
		b.Fatal(updateFix.err)
	}
	return updateFix.d
}

func BenchmarkIncrementalUpdate(b *testing.B) {
	d := updateFixture(b)
	e := updateFix.edge
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate the weight so every iteration is a real edit (half of
		// them decreases, half non-monotone increases).
		w := e.Weight / 2
		if i%2 == 1 {
			w = e.Weight
		}
		if _, err := d.ApplyEdits([]graph.Edit{
			{Op: graph.EditReweight, U: e.U, V: e.V, Weight: w},
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Ensemble().Index(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalUpdateBaseline is the cost the incremental path
// replaces: a full rebuild of the same ensemble (frozen randomness) plus
// reindex, after the same single-edge edit.
func BenchmarkIncrementalUpdateBaseline(b *testing.B) {
	d := updateFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, err := NewDynamicEnsembleWith(d.Graph(), d.orders, d.betas, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ref.Ensemble().Index(); err != nil {
			b.Fatal(err)
		}
	}
}
