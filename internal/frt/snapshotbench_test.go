package frt

import (
	"bytes"
	"sync"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// The snapshot benchmarks quantify what -save / -load buy: cold-starting a
// server from a snapshot (parse + reindex) versus re-running tree sampling
// from scratch, on the same n=4096, K=16 fixture as the Oracle* benchmarks.
// The serving acceptance bar is SnapshotLoad4096 ≥ 50× faster than
// OracleRebuild4096.
var snapFix struct {
	once sync.Once
	data []byte
	err  error
}

func snapshotFixture(b *testing.B) []byte {
	b.Helper()
	ens, _, _ := oracleFixture(b)
	snapFix.once.Do(func() {
		var buf bytes.Buffer
		snapFix.err = WriteSnapshot(&buf, ens, SnapshotMeta{GraphNodes: 4096, GraphEdges: 16384})
		snapFix.data = buf.Bytes()
	})
	if snapFix.err != nil {
		b.Fatal(snapFix.err)
	}
	return snapFix.data
}

// BenchmarkSnapshotWrite4096 measures serialising the built ensemble (the
// -save path, minus the fsync).
func BenchmarkSnapshotWrite4096(b *testing.B) {
	ens, _, _ := oracleFixture(b)
	meta := SnapshotMeta{GraphNodes: 4096, GraphEdges: 16384}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteSnapshot(&buf, ens, meta); err != nil {
			b.Fatal(err)
		}
	}
	sinkBytes = buf.Bytes()
}

// BenchmarkSnapshotLoad4096 is the -load cold-start path: parse + validate
// the snapshot and rebuild the query index. Everything else a loading server
// does is O(1).
func BenchmarkSnapshotLoad4096(b *testing.B) {
	data := snapshotFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ens, _, err := ReadSnapshot(data)
		if err != nil {
			b.Fatal(err)
		}
		idx, err := NewOracleIndex(ens.Trees)
		if err != nil {
			b.Fatal(err)
		}
		sinkIndex = idx
	}
}

// BenchmarkOracleRebuild4096 is the no-snapshot baseline the load path is
// measured against: sample the K=16 ensemble from the graph and index it,
// exactly what a server without -load does at startup. ns/op here divided by
// SnapshotLoad4096's is the cold-start speedup a snapshot buys.
func BenchmarkOracleRebuild4096(b *testing.B) {
	rng := par.NewRNG(1)
	g := graph.RandomConnected(4096, 16384, 8, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ens, err := SampleEnsemble(16, func() (*Embedding, error) {
			return SampleOnGraph(g, rng, nil)
		})
		if err != nil {
			b.Fatal(err)
		}
		idx, err := NewOracleIndex(ens.Trees)
		if err != nil {
			b.Fatal(err)
		}
		sinkIndex = idx
	}
}

var sinkBytes []byte
