package frt

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"parmbf/internal/graph"
)

// This file provides tree export: serialisation to a plain-text format and
// conversion to an explicit weighted graph. The text format is
//
//	t <numTreeNodes> <numLeaves> <beta>
//	n <id> <parent> <level> <center> <edgeWeight>    (one per tree node)
//	l <graphNode> <treeNode>                         (one per leaf)
//
// Parents use -1 for the root; ids are dense and 0-based.

// WriteTree serialises t.
func WriteTree(w io.Writer, t *Tree) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "t %d %d %g\n", t.NumNodes(), len(t.Leaf), t.Beta); err != nil {
		return err
	}
	for u := 0; u < t.NumNodes(); u++ {
		if _, err := fmt.Fprintf(bw, "n %d %d %d %d %g\n",
			u, t.Parent[u], t.Level[u], t.Center[u], t.EdgeWeight[u]); err != nil {
			return err
		}
	}
	for v, leaf := range t.Leaf {
		if _, err := fmt.Fprintf(bw, "l %d %d\n", v, leaf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTree parses a serialised tree and validates its structural
// invariants.
func ReadTree(r io.Reader) (*Tree, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var t *Tree
	seenNodes := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "t "):
			if t != nil {
				return nil, fmt.Errorf("line %d: duplicate header", lineNo)
			}
			var nt, nl int
			var beta float64
			if _, err := fmt.Sscanf(line, "t %d %d %g", &nt, &nl, &beta); err != nil {
				return nil, fmt.Errorf("line %d: bad header: %v", lineNo, err)
			}
			if nt <= 0 || nl <= 0 {
				return nil, fmt.Errorf("line %d: non-positive sizes", lineNo)
			}
			t = &Tree{
				Parent:     make([]int32, nt),
				EdgeWeight: make([]float64, nt),
				Center:     make([]graph.Node, nt),
				Level:      make([]int32, nt),
				Leaf:       make([]int32, nl),
				Beta:       beta,
			}
			for i := range t.Leaf {
				t.Leaf[i] = -1
			}
		case strings.HasPrefix(line, "n "):
			if t == nil {
				return nil, fmt.Errorf("line %d: node before header", lineNo)
			}
			var id, parent, level, center int
			var w float64
			if _, err := fmt.Sscanf(line, "n %d %d %d %d %g", &id, &parent, &level, &center, &w); err != nil {
				return nil, fmt.Errorf("line %d: bad node: %v", lineNo, err)
			}
			if id < 0 || id >= t.NumNodes() || parent < -1 || parent >= t.NumNodes() {
				return nil, fmt.Errorf("line %d: id/parent out of range", lineNo)
			}
			t.Parent[id] = int32(parent)
			t.Level[id] = int32(level)
			t.Center[id] = graph.Node(center)
			t.EdgeWeight[id] = w
			seenNodes++
		case strings.HasPrefix(line, "l "):
			if t == nil {
				return nil, fmt.Errorf("line %d: leaf before header", lineNo)
			}
			var v, leaf int
			if _, err := fmt.Sscanf(line, "l %d %d", &v, &leaf); err != nil {
				return nil, fmt.Errorf("line %d: bad leaf: %v", lineNo, err)
			}
			if v < 0 || v >= len(t.Leaf) || leaf < 0 || leaf >= t.NumNodes() {
				return nil, fmt.Errorf("line %d: leaf out of range", lineNo)
			}
			t.Leaf[v] = int32(leaf)
		default:
			return nil, fmt.Errorf("line %d: unrecognised line %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t == nil {
		return nil, fmt.Errorf("missing header")
	}
	if seenNodes != t.NumNodes() {
		return nil, fmt.Errorf("header declares %d tree nodes, found %d", t.NumNodes(), seenNodes)
	}
	for v, leaf := range t.Leaf {
		if leaf == -1 {
			return nil, fmt.Errorf("graph node %d has no leaf", v)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("invalid tree: %v", err)
	}
	return t, nil
}

// ToGraph converts the tree into an explicit weighted graph whose first
// len(Leaf) node IDs… cannot in general coincide with the graph nodes
// (leaves are interior tree IDs), so the returned graph is on the tree's
// own node IDs and the second return value maps each original graph node to
// its leaf. Distances in the returned graph equal Tree.Dist on leaf pairs —
// the cross-check used by the tests and a convenient handoff to tree
// solvers that expect a plain graph.
func (t *Tree) ToGraph() (*graph.Graph, []graph.Node) {
	b := graph.NewBuilder(t.NumNodes())
	for u := 0; u < t.NumNodes(); u++ {
		if p := t.Parent[u]; p != -1 {
			b.Add(graph.Node(u), graph.Node(p), t.EdgeWeight[u])
		}
	}
	g := b.Freeze()
	leaves := make([]graph.Node, len(t.Leaf))
	for v, leaf := range t.Leaf {
		leaves[v] = graph.Node(leaf)
	}
	return g, leaves
}
