package frt

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"parmbf/internal/graph"
)

// This file provides tree export: serialisation to a plain-text format and
// conversion to an explicit weighted graph. The text format is
//
//	t <numTreeNodes> <numLeaves> <beta>
//	n <id> <parent> <level> <center> <edgeWeight>    (one per tree node)
//	l <graphNode> <treeNode>                         (one per leaf)
//
// Parents use -1 for the root; ids are dense and 0-based. Node lines must
// appear in id order (0, 1, 2, …) and leaf lines in graph-node order — the
// order WriteTree emits. The sequential requirement lets ReadTree allocate
// in step with the input it has actually consumed, so a hostile header
// declaring huge counts cannot make it over-allocate.

// WriteTree serialises t.
func WriteTree(w io.Writer, t *Tree) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "t %d %d %g\n", t.NumNodes(), len(t.Leaf), t.Beta); err != nil {
		return err
	}
	for u := 0; u < t.NumNodes(); u++ {
		if _, err := fmt.Fprintf(bw, "n %d %d %d %d %g\n",
			u, t.Parent[u], t.Level[u], t.Center[u], t.EdgeWeight[u]); err != nil {
			return err
		}
	}
	for v, leaf := range t.Leaf {
		if _, err := fmt.Fprintf(bw, "l %d %d\n", v, leaf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxTreeRecords caps the declared record counts of a serialised tree: tree
// node ids are int32, so anything larger cannot round-trip anyway.
const maxTreeRecords = 1<<31 - 1

// ReadTree parses a serialised tree and validates its structural
// invariants. It is hardened against hostile input (the FuzzReadTree
// target): malformed, truncated, or adversarial bytes yield an error —
// never a panic — and memory grows only in proportion to the input actually
// consumed, never to the counts a header merely declares.
func ReadTree(r io.Reader) (*Tree, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<24)
	var t *Tree
	declaredNodes, declaredLeaves := 0, 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "t "):
			if t != nil {
				return nil, fmt.Errorf("line %d: duplicate header", lineNo)
			}
			var nt, nl int
			var beta float64
			if _, err := fmt.Sscanf(line, "t %d %d %g", &nt, &nl, &beta); err != nil {
				return nil, fmt.Errorf("line %d: bad header: %v", lineNo, err)
			}
			if nt <= 0 || nl <= 0 {
				return nil, fmt.Errorf("line %d: non-positive sizes", lineNo)
			}
			if nt > maxTreeRecords || nl > maxTreeRecords {
				return nil, fmt.Errorf("line %d: sizes exceed int32 range", lineNo)
			}
			if nl > nt {
				return nil, fmt.Errorf("line %d: more leaves (%d) than tree nodes (%d)", lineNo, nl, nt)
			}
			declaredNodes, declaredLeaves = nt, nl
			t = &Tree{Beta: beta}
		case strings.HasPrefix(line, "n "):
			if t == nil {
				return nil, fmt.Errorf("line %d: node before header", lineNo)
			}
			var id, parent, level, center int
			var w float64
			if _, err := fmt.Sscanf(line, "n %d %d %d %d %g", &id, &parent, &level, &center, &w); err != nil {
				return nil, fmt.Errorf("line %d: bad node: %v", lineNo, err)
			}
			if id != len(t.Parent) || id >= declaredNodes {
				return nil, fmt.Errorf("line %d: node id %d out of order or range (next is %d of %d)",
					lineNo, id, len(t.Parent), declaredNodes)
			}
			if parent < -1 || parent >= declaredNodes {
				return nil, fmt.Errorf("line %d: parent out of range", lineNo)
			}
			t.Parent = append(t.Parent, int32(parent))
			t.Level = append(t.Level, int32(level))
			t.Center = append(t.Center, graph.Node(center))
			t.EdgeWeight = append(t.EdgeWeight, w)
		case strings.HasPrefix(line, "l "):
			if t == nil {
				return nil, fmt.Errorf("line %d: leaf before header", lineNo)
			}
			var v, leaf int
			if _, err := fmt.Sscanf(line, "l %d %d", &v, &leaf); err != nil {
				return nil, fmt.Errorf("line %d: bad leaf: %v", lineNo, err)
			}
			if v != len(t.Leaf) || v >= declaredLeaves {
				return nil, fmt.Errorf("line %d: leaf node %d out of order or range (next is %d of %d)",
					lineNo, v, len(t.Leaf), declaredLeaves)
			}
			if leaf < 0 || leaf >= declaredNodes {
				return nil, fmt.Errorf("line %d: leaf out of range", lineNo)
			}
			t.Leaf = append(t.Leaf, int32(leaf))
		default:
			return nil, fmt.Errorf("line %d: unrecognised line %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t == nil {
		return nil, fmt.Errorf("missing header")
	}
	if len(t.Parent) != declaredNodes {
		return nil, fmt.Errorf("header declares %d tree nodes, found %d", declaredNodes, len(t.Parent))
	}
	if len(t.Leaf) != declaredLeaves {
		return nil, fmt.Errorf("header declares %d leaves, found %d", declaredLeaves, len(t.Leaf))
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("invalid tree: %v", err)
	}
	return t, nil
}

// ReadTreeIndex parses a serialised tree and preprocesses it for querying.
// The index is a deterministic function of the tree, so an index
// round-trips through WriteTree/ReadTreeIndex: the rebuilt index is
// structurally identical to one built from the original in-memory tree.
func ReadTreeIndex(r io.Reader) (*TreeIndex, error) {
	t, err := ReadTree(r)
	if err != nil {
		return nil, err
	}
	return NewTreeIndex(t)
}

// ToGraph converts the tree into an explicit weighted graph whose first
// len(Leaf) node IDs… cannot in general coincide with the graph nodes
// (leaves are interior tree IDs), so the returned graph is on the tree's
// own node IDs and the second return value maps each original graph node to
// its leaf. Distances in the returned graph equal Tree.Dist on leaf pairs —
// the cross-check used by the tests and a convenient handoff to tree
// solvers that expect a plain graph.
func (t *Tree) ToGraph() (*graph.Graph, []graph.Node) {
	b := graph.NewBuilder(t.NumNodes())
	for u := 0; u < t.NumNodes(); u++ {
		if p := t.Parent[u]; p != -1 {
			b.Add(graph.Node(u), graph.Node(p), t.EdgeWeight[u])
		}
	}
	g := b.Freeze()
	leaves := make([]graph.Node, len(t.Leaf))
	for v, leaf := range t.Leaf {
		leaves[v] = graph.Node(leaf)
	}
	return g, leaves
}
