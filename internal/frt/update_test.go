package frt

// Differential suite for the live-update path: incremental repair
// (DynamicEnsemble.ApplyEdits) must be bitwise the full rebuild with frozen
// randomness (NewDynamicEnsembleWith on the edited graph) across random edit
// scripts mixing inserts, deletes, and reweights, at every parallel width.
// Runs in the short and -race tiers — the repair path shares the pooled
// aggregation scratch between workers.

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// randomEditBatch draws a valid batch of k edits against g: inserts of
// absent pairs, deletes and up/down reweights of present edges.
func randomEditBatch(g *graph.Graph, k int, rng *par.RNG) []graph.Edit {
	n := g.N()
	var edits []graph.Edit
	used := map[[2]graph.Node]struct{}{}
	for guard := 0; len(edits) < k && guard < 64*k; guard++ {
		u, v := graph.Node(rng.Intn(n)), graph.Node(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if _, dup := used[[2]graph.Node{u, v}]; dup {
			continue
		}
		used[[2]graph.Node{u, v}] = struct{}{}
		w := 1 + float64(rng.Intn(12))
		if _, exists := g.HasEdge(u, v); exists {
			switch rng.Intn(3) {
			case 0:
				edits = append(edits, graph.Edit{Op: graph.EditDelete, U: u, V: v})
			default:
				edits = append(edits, graph.Edit{Op: graph.EditReweight, U: u, V: v, Weight: w})
			}
		} else {
			edits = append(edits, graph.Edit{Op: graph.EditInsert, U: u, V: v, Weight: w})
		}
	}
	return edits
}

// assertDynamicMatchesRebuild pins incremental == full rebuild, bitwise:
// same trees (serialised bytes), same LE lists (representation equality).
func assertDynamicMatchesRebuild(t *testing.T, d *DynamicEnsemble) {
	t.Helper()
	ref, err := NewDynamicEnsembleWith(d.Graph(), d.orders, d.betas, nil)
	if err != nil {
		t.Fatalf("reference rebuild: %v", err)
	}
	if got, want := ensembleBytes(t, d.Ensemble()), ensembleBytes(t, ref.Ensemble()); !bytes.Equal(got, want) {
		t.Fatal("incremental trees diverge from frozen-randomness rebuild")
	}
	module := semiring.DistMapModule{}
	for i := range d.lists {
		for v := range d.lists[i] {
			if !module.Equal(d.lists[i][v], ref.lists[i][v]) {
				t.Fatalf("tree %d node %d: incremental list %v, rebuilt %v", i, v, d.lists[i][v], ref.lists[i][v])
			}
		}
	}
}

func TestDynamicEnsembleDifferential(t *testing.T) {
	defer func(p int) { par.MaxProcs = p }(par.MaxProcs)
	for _, procs := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		par.MaxProcs = procs
		for _, seed := range []uint64{3, 5} {
			rng := par.NewRNG(seed)
			g := graph.RandomConnected(72, 200, 8, rng)
			d, err := NewDynamicEnsemble(g, 3, par.NewRNG(seed+100), nil)
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 5; round++ {
				edits := randomEditBatch(d.Graph(), 4, rng)
				if _, err := d.ApplyEdits(edits); err != nil {
					// A deletion may disconnect the graph; the batch must
					// then have been rejected atomically — retry next round
					// draws on the unchanged graph.
					continue
				}
				assertDynamicMatchesRebuild(t, d)
			}
		}
	}
}

// TestDynamicEnsembleDecreaseOnlyDelta pins the pure delta path (no cone
// invalidation) separately, since mixed scripts may never draw a
// decrease-only batch.
func TestDynamicEnsembleDecreaseOnlyDelta(t *testing.T) {
	rng := par.NewRNG(17)
	g := graph.RandomConnected(64, 180, 8, rng)
	d, err := NewDynamicEnsemble(g, 2, par.NewRNG(18), nil)
	if err != nil {
		t.Fatal(err)
	}
	edges := d.Graph().Edges()
	e := edges[rng.Intn(len(edges))]
	stats, err := d.ApplyEdits([]graph.Edit{
		{Op: graph.EditReweight, U: e.U, V: e.V, Weight: e.Weight / 4},
		{Op: graph.EditInsert, U: 0, V: graph.Node(d.Graph().N() - 1), Weight: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.DecreaseOnly {
		t.Fatalf("stats: %+v, want DecreaseOnly", stats)
	}
	assertDynamicMatchesRebuild(t, d)
}

// TestDynamicEnsembleNonMonotone pins the taint-cone path: deletions and
// weight increases must invalidate and recompute exactly enough to match
// the rebuild.
func TestDynamicEnsembleNonMonotone(t *testing.T) {
	rng := par.NewRNG(23)
	g := graph.RandomConnected(64, 200, 8, rng)
	d, err := NewDynamicEnsemble(g, 2, par.NewRNG(24), nil)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		edges := d.Graph().Edges()
		e := edges[rng.Intn(len(edges))]
		var batch []graph.Edit
		if round%2 == 0 {
			batch = []graph.Edit{{Op: graph.EditReweight, U: e.U, V: e.V, Weight: e.Weight * 3}}
		} else {
			batch = []graph.Edit{{Op: graph.EditDelete, U: e.U, V: e.V}}
		}
		stats, err := d.ApplyEdits(batch)
		if err != nil {
			continue // disconnecting delete, rejected atomically
		}
		if stats.DecreaseOnly {
			t.Fatalf("round %d: non-monotone batch reported DecreaseOnly", round)
		}
		assertDynamicMatchesRebuild(t, d)
	}
}

// TestDynamicEnsembleRejectsDisconnect: deleting a bridge must fail the
// whole batch and leave the ensemble untouched.
func TestDynamicEnsembleRejectsDisconnect(t *testing.T) {
	g := graph.PathGraph(16, 1)
	d, err := NewDynamicEnsemble(g, 2, par.NewRNG(9), nil)
	if err != nil {
		t.Fatal(err)
	}
	treesBefore := d.Trees()
	_, err = d.ApplyEdits([]graph.Edit{{Op: graph.EditDelete, U: 7, V: 8}})
	if err == nil {
		t.Fatal("disconnecting delete accepted")
	}
	if d.Graph() != g {
		t.Fatal("failed batch advanced the graph")
	}
	if !reflect.DeepEqual(treesBefore, d.Trees()) {
		t.Fatal("failed batch changed the trees")
	}
}

// TestDynamicEnsembleUnaffectedTreesShared: an update that only touches part
// of the metric must keep unaffected trees' pointers (no rebuild, no copy).
func TestDynamicEnsembleNoopReweightKeepsTrees(t *testing.T) {
	g := graph.RandomConnected(48, 140, 8, par.NewRNG(41))
	d, err := NewDynamicEnsemble(g, 3, par.NewRNG(42), nil)
	if err != nil {
		t.Fatal(err)
	}
	before := d.Trees()
	// Reweight an edge upward when it is not on any shortest path: pick the
	// heaviest edge and make it heavier — likely unused by every LE list.
	edges := d.Graph().Edges()
	heavy := edges[0]
	for _, e := range edges {
		if e.Weight > heavy.Weight {
			heavy = e
		}
	}
	stats, err := d.ApplyEdits([]graph.Edit{
		{Op: graph.EditReweight, U: heavy.U, V: heavy.V, Weight: heavy.Weight * 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	after := d.Trees()
	shared := 0
	for i := range before {
		if before[i] == after[i] {
			shared++
		}
	}
	if shared != len(before)-stats.AffectedTrees {
		t.Fatalf("%d trees shared, %d affected of %d", shared, stats.AffectedTrees, len(before))
	}
	assertDynamicMatchesRebuild(t, d)
}

// TestEmbedderApplyEdits pins the oracle-pipeline refresh: applying edits to
// an embedder must leave it in exactly the state of a fresh same-seed
// embedder built on the edited graph — same hop-set samples, same levels —
// so the next sampled tree is bitwise identical.
func TestEmbedderApplyEdits(t *testing.T) {
	for _, hk := range []HopSetKind{HopSetNone, HopSetLandmark} {
		g := graph.RandomConnected(56, 160, 8, par.NewRNG(61))
		e1, err := NewEmbedder(g, Options{RNG: par.NewRNG(62), HopSet: hk})
		if err != nil {
			t.Fatal(err)
		}
		edges := g.Edges()
		edits := []graph.Edit{
			{Op: graph.EditReweight, U: edges[3].U, V: edges[3].V, Weight: edges[3].Weight * 2},
			{Op: graph.EditDelete, U: edges[10].U, V: edges[10].V},
		}
		sum, err := e1.ApplyEdits(edits)
		if err != nil {
			t.Skipf("hop %v: batch disconnects this graph: %v", hk, err)
		}
		if sum.Deletes != 1 || sum.Reweights != 1 {
			t.Fatalf("summary: %+v", sum)
		}
		// Fresh embedder, same seed, on the edited graph: consumes the same
		// RNG draws (hop sampling + levels depend only on n), so the updated
		// e1 must now sample identical trees.
		e2, err := NewEmbedder(e1.Graph(), Options{RNG: par.NewRNG(62), HopSet: hk})
		if err != nil {
			t.Fatal(err)
		}
		t1, err1 := e1.Sample()
		t2, err2 := e2.Sample()
		if err1 != nil || err2 != nil {
			t.Fatalf("sampling: %v, %v", err1, err2)
		}
		if !reflect.DeepEqual(t1.Tree, t2.Tree) {
			t.Fatalf("hop %v: post-update tree diverges from fresh same-seed embedder", hk)
		}
	}
}
