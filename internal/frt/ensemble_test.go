package frt

import (
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

func TestEnsembleMinImprovesWithTrees(t *testing.T) {
	rng := par.NewRNG(1)
	g := graph.RandomConnected(50, 120, 6, rng)
	sampler := func() (*Embedding, error) { return SampleOnGraph(g, rng, nil) }
	small, err := SampleEnsemble(1, sampler)
	if err != nil {
		t.Fatal(err)
	}
	big, err := SampleEnsemble(8, sampler)
	if err != nil {
		t.Fatal(err)
	}
	evalRng := par.NewRNG(2)
	s1 := small.Evaluate(g, 40, evalRng)
	evalRng = par.NewRNG(2)
	s8 := big.Evaluate(g, 40, evalRng)
	if !s1.DominanceOK || !s8.DominanceOK {
		t.Fatal("ensemble under-estimated a distance")
	}
	if s8.AvgMinStretch >= s1.AvgMinStretch {
		t.Fatalf("8 trees (%.2f) did not improve over 1 tree (%.2f)", s8.AvgMinStretch, s1.AvgMinStretch)
	}
}

func TestEnsembleMinIsMinimum(t *testing.T) {
	rng := par.NewRNG(3)
	g := graph.GridGraph(5, 5, 3, rng)
	e, err := SampleEnsemble(4, func() (*Embedding, error) { return SampleOnGraph(g, rng, nil) })
	if err != nil {
		t.Fatal(err)
	}
	for u := graph.Node(0); u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			min := e.Min(u, v)
			for _, tr := range e.Trees {
				if tr.Dist(u, v) < min {
					t.Fatal("Min is not the minimum")
				}
			}
			med := e.Median(u, v)
			if med < min {
				t.Fatal("median below minimum")
			}
		}
	}
}

func TestEnsembleMedianEvenOdd(t *testing.T) {
	rng := par.NewRNG(4)
	g := graph.PathGraph(10, 1)
	for _, count := range []int{3, 4} {
		e, err := SampleEnsemble(count, func() (*Embedding, error) { return SampleOnGraph(g, rng, nil) })
		if err != nil {
			t.Fatal(err)
		}
		m := e.Median(0, 9)
		lo, hi := e.Trees[0].Dist(0, 9), e.Trees[0].Dist(0, 9)
		for _, tr := range e.Trees {
			d := tr.Dist(0, 9)
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		if m < lo || m > hi {
			t.Fatalf("median %v outside [%v, %v]", m, lo, hi)
		}
	}
}

func TestEnsembleRejectsZeroCount(t *testing.T) {
	if _, err := SampleEnsemble(0, nil); err == nil {
		t.Fatal("count 0 accepted")
	}
}

func TestEnsemblePropagatesSamplerError(t *testing.T) {
	g := graph.PathGraph(3, 1)
	calls := 0
	_, err := SampleEnsemble(3, func() (*Embedding, error) {
		calls++
		if calls == 2 {
			return nil, errTest
		}
		return SampleOnGraph(g, par.NewRNG(1), nil)
	})
	if err != errTest {
		t.Fatalf("sampler error not propagated: %v", err)
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }
