package frt

import (
	"os"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// TestScaleSmoke drives the full pipeline at 2^16 vertices: Chung-Lu
// generation → landmark hop set → simulated graph H → K=2 oracle fixpoints →
// tree assembly → oracle index, then spot-checks dominance and determinism.
// It runs only with PARMBF_SCALE_SMOKE=1 — the CI scale-smoke job sets it on
// every PR under a wall-clock timeout; locally it is opt-in because the
// pipeline takes minutes on one core.
func TestScaleSmoke(t *testing.T) {
	if os.Getenv("PARMBF_SCALE_SMOKE") == "" {
		t.Skip("set PARMBF_SCALE_SMOKE=1 to run the 2^16 end-to-end pipeline")
	}
	n := 1 << 16
	g := graph.ChungLu(n, 8, 2.5, 100, par.NewRNG(42))
	if g.N() != n {
		t.Fatalf("generator produced %d nodes, want %d", g.N(), n)
	}
	t.Logf("graph: n=%d m=%d", g.N(), g.M())

	e, err := NewEmbedder(g, Options{RNG: par.NewRNG(1), HopSet: HopSetLandmark})
	if err != nil {
		t.Fatal(err)
	}
	ens, err := e.SampleEnsemble(2)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range ens.Trees {
		if err := tr.Validate(); err != nil {
			t.Fatalf("tree %d invalid: %v", i, err)
		}
		t.Logf("tree %d: %d nodes, depth %d, beta %.3f", i, tr.NumNodes(), tr.Depth(), tr.Beta)
	}

	idx, err := ens.Index()
	if err != nil {
		t.Fatal(err)
	}
	// Tree distances dominate the oracle's dist_H, which dominates the
	// graph metric — so every ensemble answer must be ≥ the true distance
	// (§7's dominance direction; the stretch bound is probabilistic, the
	// floor is not). The walk comparison re-derives each answer without
	// the packed split-lane kernel. Seed-determinism is not re-checked
	// here — a second 2^16 draw would double the job's wall clock, and
	// TestEmbedderDeterministicAcrossMaxProcs pins the property already.
	d := graph.Dijkstra(g, 0)
	for _, v := range []graph.Node{1, 255, graph.Node(n / 3), graph.Node(n - 1)} {
		got := idx.Min(0, v)
		if got < d.Dist[v] {
			t.Errorf("Min(0,%d) = %v below graph distance %v", v, got, d.Dist[v])
		}
		if walk := ens.minWalk(0, v); got != walk {
			t.Errorf("Min(0,%d): index %v != tree walk %v", v, got, walk)
		}
	}
}
