// Live updates: incremental re-embedding of an FRT ensemble under edge
// edits. The algebraic framework makes fixpoints repairable, not just
// computable — the sparse engine (mbf.Runner.RunToFixpointFrom) re-converges
// an old LE-list fixpoint from a seed frontier, so a small edit batch costs
// O(affected cone), not a full rebuild.
//
// Two regimes, split by monotonicity:
//
//   - Decrease-only batches (inserts and weight decreases) take the pure
//     delta path: every old entry is still a valid exact distance (edits can
//     only shorten paths that are then discovered by propagation), so the
//     repair seeds the frontier with the edited-edge endpoints and relaxes
//     outward. The LE filter keeps this local: an improvement that is
//     dominated at a node cannot matter to any node behind it (the suffix
//     property), so propagation dies exactly where the lists stop changing.
//
//   - Non-monotone batches (deletions and weight increases) can leave stale
//     too-small entries that no amount of re-relaxation removes. These
//     invalidate-and-recompute: a per-entry support-chain walk over the OLD
//     graph and OLD lists (semiring.SupportedEntries) marks the cone of
//     nodes holding an entry derivable through an edited edge — every
//     fixpoint entry has a same-source supporting next hop along each of its
//     shortest paths, so the walk over-approximates the stale set — then the
//     cone is reset to singleton states and repaired together with the edit
//     endpoints. Untainted nodes provably keep exactly their old lists, so
//     the cone is also the damage bound.
//
// Trees are patched per-tree: a tree whose repaired lists are unchanged
// keeps its Tree object untouched; only trees whose lists actually differ
// are re-assembled. The differential suite pins both paths bitwise against
// a full rebuild with frozen randomness (same orders, same betas).
package frt

import (
	"fmt"

	"parmbf/internal/graph"
	"parmbf/internal/mbf"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// DynamicEnsemble is a live FRT ensemble over a mutable graph: the direct
// (Khan et al., §8.1) LE-list pipeline with its per-tree fixpoint states
// retained, so edit batches are absorbed incrementally instead of
// resampling. It is the build-side state behind the serving tier's /update
// endpoint; query-side consumers take immutable snapshots via Ensemble().
//
// Methods are not safe for concurrent use — callers serialise updates (the
// daemon holds one update lock) and hand out Ensemble() snapshots to
// readers.
type DynamicEnsemble struct {
	g       *graph.Graph
	orders  []*Order
	betas   []float64
	lists   [][]semiring.DistMap
	trees   []*Tree
	tracker *par.Tracker
}

// UpdateStats summarises one ApplyEdits call.
type UpdateStats struct {
	// Inserts, Deletes, and Reweights count the applied edits by kind.
	Inserts, Deletes, Reweights int
	// DecreaseOnly reports whether the batch took the pure delta path.
	DecreaseOnly bool
	// AffectedTrees is the number of trees whose lists changed (and were
	// therefore re-assembled); the remaining trees were kept as-is.
	AffectedTrees int
	// RecomputedNodes is the total size of the per-tree affected cones
	// (changed or invalidated nodes), summed over trees.
	RecomputedNodes int
	// Iterations is the maximum sparse repair iteration count over trees.
	Iterations int
}

// NewDynamicEnsemble draws count independent trees of g's exact metric via
// the batched direct pipeline and retains the fixpoint state needed for
// incremental updates. The per-tree randomness (order and β) is drawn from
// RNGs split off rng sequentially, so a fixed seed yields the identical
// ensemble at any parallelism.
func NewDynamicEnsemble(g *graph.Graph, count int, rng *par.RNG, tracker *par.Tracker) (*DynamicEnsemble, error) {
	if count < 1 {
		return nil, fmt.Errorf("frt: ensemble needs ≥ 1 tree")
	}
	if rng == nil {
		return nil, fmt.Errorf("frt: rng is required")
	}
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("frt: empty graph")
	}
	orders := make([]*Order, count)
	betas := make([]float64, count)
	for i, r := range rng.SplitN(count) {
		orders[i] = NewOrder(n, r)
		betas[i] = RandomBeta(r)
	}
	return NewDynamicEnsembleWith(g, orders, betas, tracker)
}

// NewDynamicEnsembleWith builds the retained ensemble from explicit per-tree
// orders and betas — the frozen-randomness constructor that defines the
// reference an incremental update must match bitwise: ApplyEdits(edits) on a
// DynamicEnsemble equals NewDynamicEnsembleWith on the edited graph with the
// same orders and betas, tree for tree and list for list.
func NewDynamicEnsembleWith(g *graph.Graph, orders []*Order, betas []float64, tracker *par.Tracker) (*DynamicEnsemble, error) {
	if len(orders) == 0 || len(orders) != len(betas) {
		return nil, fmt.Errorf("frt: need equally many orders and betas (≥ 1), got %d and %d", len(orders), len(betas))
	}
	lists, _ := LEListsOnGraphBatch(g, orders, tracker)
	trees := make([]*Tree, len(orders))
	for i := range orders {
		t, err := BuildTree(lists[i], orders[i], betas[i])
		if err != nil {
			return nil, fmt.Errorf("frt: tree %d: %w", i, err)
		}
		trees[i] = t
	}
	return &DynamicEnsemble{
		g:       g,
		orders:  orders,
		betas:   betas,
		lists:   lists,
		trees:   trees,
		tracker: tracker,
	}, nil
}

// Graph returns the current (immutable) graph snapshot.
func (d *DynamicEnsemble) Graph() *graph.Graph { return d.g }

// K returns the ensemble size.
func (d *DynamicEnsemble) K() int { return len(d.trees) }

// Trees returns the current trees. The returned slice is fresh; the trees
// themselves are shared immutable values.
func (d *DynamicEnsemble) Trees() []*Tree {
	return append([]*Tree(nil), d.trees...)
}

// Ensemble returns an immutable query-side snapshot of the current trees.
// Each call returns a fresh Ensemble so its lazily built OracleIndex is
// never stale: after an update, index the new snapshot and atomically swap
// it in front of readers.
func (d *DynamicEnsemble) Ensemble() *Ensemble {
	return &Ensemble{Trees: d.Trees()}
}

// leRunner builds the solo LE-list runner of Definition 7.3 on g for one
// order — the repair-path counterpart of LEListsOnGraphBatch's shared
// runner.
func leRunner(g *graph.Graph, order *Order, tracker *par.Tracker) *mbf.Runner[float64, semiring.DistMap] {
	return &mbf.Runner[float64, semiring.DistMap]{
		Graph:         g,
		Module:        semiring.DistMapModule{},
		Filter:        order.Filter(),
		FilterInPlace: order.FilterInPlace(),
		Weight:        mbf.MinPlusWeight,
		Size:          func(m semiring.DistMap) int { return m.Len() + 1 },
		Tracker:       tracker,
	}
}

// taintCone walks support chains forwards over the OLD graph and OLD lists
// to find every node holding an entry that a non-monotone edit could have
// produced. Taint is tracked per entry, not per node: source s is tainted at
// q when lists[q]'s entry for s is derived — same source, distance exactly
// arc weight plus the neighbor's distance (semiring.SupportedEntries) — from
// a tainted entry for s at a neighbor, or directly across an edited edge.
//
// Entry granularity is what keeps the cone small, and it is sound by the LE
// subpath property: if (s, d) ∈ L(q) then every node w on a shortest s→q
// path carries (s, d(s, w)) in its own list, so when an edit kills all of
// the entry's shortest paths the same-source support chain walked here runs
// from an edited endpoint to q intact. A node whose entries all escape the
// walk keeps exact distances, and under non-decreasing edits unchanged
// blockers admit no new entries either, so its whole list is unchanged.
// Equal-length alternative paths may over-taint; they never under-taint.
func taintCone(g *graph.Graph, lists []semiring.DistMap, applied []graph.AppliedEdit) []graph.Node {
	n := g.N()
	taintIdx := make([][]bool, n) // per node, parallel to lists[v]'s entries
	queued := make([]bool, n)
	var queue []graph.Node
	var cone []graph.Node
	taint := func(v graph.Node, i int) {
		tv := taintIdx[v]
		if tv == nil {
			tv = make([]bool, lists[v].Len())
			taintIdx[v] = tv
			cone = append(cone, v)
		}
		if !tv[i] && !queued[v] {
			queued[v] = true
			queue = append(queue, v)
		}
		tv[i] = true
	}
	for _, e := range applied {
		nonMonotone := e.Op == graph.EditDelete ||
			(e.Op == graph.EditReweight && e.Weight > e.OldWeight)
		if !nonMonotone {
			continue
		}
		semiring.SupportedEntries(lists[e.U], lists[e.V], e.OldWeight,
			func(i, _ int) { taint(e.U, i) })
		semiring.SupportedEntries(lists[e.V], lists[e.U], e.OldWeight,
			func(i, _ int) { taint(e.V, i) })
	}
	// A node re-enters the queue whenever its tainted set grows, so every
	// tainted entry is eventually propagated across every out-arc.
	for head := 0; head < len(queue); head++ {
		w := queue[head]
		queued[w] = false
		tw := taintIdx[w]
		for _, a := range g.InNeighbors(w) {
			q := a.To
			semiring.SupportedEntries(lists[q], lists[w], a.Weight, func(i, j int) {
				if tw[j] {
					taint(q, i)
				}
			})
		}
	}
	return cone
}

// ApplyEdits applies an edge edit batch and incrementally repairs the
// ensemble: the graph is edited copy-on-write (see graph.ApplyEdits), each
// tree's LE-list fixpoint is re-converged from the affected seeds, and only
// trees whose lists changed are re-assembled. The result is bitwise the
// full rebuild with the same frozen randomness (NewDynamicEnsembleWith on
// the edited graph).
//
// The batch is transactional: on any error — validation, a deletion that
// disconnects the graph (the §1.2 standing assumption), tree assembly — the
// ensemble is left exactly as it was.
func (d *DynamicEnsemble) ApplyEdits(edits []graph.Edit) (*UpdateStats, error) {
	g2, sum, err := graph.ApplyEdits(d.g, edits)
	if err != nil {
		return nil, err
	}
	stats := &UpdateStats{
		Inserts:      sum.Inserts,
		Deletes:      sum.Deletes,
		Reweights:    sum.Reweights,
		DecreaseOnly: sum.DecreaseOnly,
	}
	if len(sum.Applied) == 0 {
		return stats, nil
	}
	if sum.Deletes > 0 && !g2.Connected() {
		return nil, fmt.Errorf("frt: edit batch disconnects the graph")
	}
	newLists := make([][]semiring.DistMap, d.K())
	newTrees := make([]*Tree, d.K())
	module := semiring.DistMapModule{}
	for i := range d.trees {
		old := d.lists[i]
		base := old
		seeds := sum.Touched
		var cone []graph.Node
		if !sum.DecreaseOnly {
			// Non-monotone: invalidate the support cone (computed against the
			// OLD graph and lists) and recompute it alongside the endpoints.
			cone = taintCone(d.g, old, sum.Applied)
			if len(cone) > 0 {
				base = append([]semiring.DistMap(nil), old...)
				for _, v := range cone {
					base[v] = semiring.SingletonDist(v, 0)
				}
				seeds = make([]graph.Node, 0, len(cone)+len(sum.Touched))
				seeds = append(seeds, cone...)
				seeds = append(seeds, sum.Touched...)
			}
		}
		runner := leRunner(g2, d.orders[i], d.tracker)
		repaired, changed, iters := runner.RunToFixpointFrom(base, seeds, g2.N())
		if iters > stats.Iterations {
			stats.Iterations = iters
		}
		// The affected set — reset or actually changed — is where the new
		// lists can differ from the old; everything else aliases old states.
		dirty := false
		affected := 0
		mark := make(map[graph.Node]struct{}, len(cone)+len(changed))
		for _, v := range append(append([]graph.Node(nil), cone...), changed...) {
			if _, dup := mark[v]; dup {
				continue
			}
			mark[v] = struct{}{}
			affected++
			if !module.Equal(repaired[v], old[v]) {
				dirty = true
			}
		}
		stats.RecomputedNodes += affected
		if !dirty {
			newLists[i], newTrees[i] = old, d.trees[i]
			continue
		}
		stats.AffectedTrees++
		t, err := BuildTree(repaired, d.orders[i], d.betas[i])
		if err != nil {
			return nil, fmt.Errorf("frt: repairing tree %d: %w", i, err)
		}
		newLists[i], newTrees[i] = repaired, t
	}
	d.g, d.lists, d.trees = g2, newLists, newTrees
	return stats, nil
}
