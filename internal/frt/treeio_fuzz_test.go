package frt

import (
	"bytes"
	"strings"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// validTreeText serialises a real sampled tree — the fuzz corpus seed that
// lets the mutator start from accepted input instead of flailing at the
// header grammar.
func validTreeText(seed uint64, n, m int) string {
	rng := par.NewRNG(seed)
	g := graph.RandomConnected(n, m, 6, rng)
	emb, err := SampleOnGraph(g, rng, nil)
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := WriteTree(&buf, emb.Tree); err != nil {
		panic(err)
	}
	return buf.String()
}

// FuzzReadTree asserts the parser's hostile-input contract: arbitrary bytes
// either parse into a tree that passes Validate and round-trips through
// WriteTree/ReadTree unchanged, or produce an error — never a panic, an
// invalid tree, or memory proportional to counts the input merely declares
// (allocation grows only with input actually consumed, so the fuzz engine's
// default memory limit doubles as the over-allocation check).
func FuzzReadTree(f *testing.F) {
	f.Add([]byte(validTreeText(1, 12, 24)))
	f.Add([]byte(validTreeText(2, 5, 8)))
	f.Add([]byte("t 1 1 1.5\nn 0 -1 0 0 0\nl 0 0\n"))
	f.Add([]byte("t 2 1 1.25\nn 0 -1 1 0 0\nn 1 0 0 0 2.5\nl 0 1\n"))
	f.Add([]byte("# comment\n\nt 1 1 1\nn 0 -1 0 0 0\nl 0 0\n"))
	f.Add([]byte("t 99999999 99999999 1.5\n"))      // hostile header: declares huge counts
	f.Add([]byte("t 2 1 1.5\nn 1 0 0 0 1\n"))       // out-of-order node id
	f.Add([]byte("t 1 1 NaN\nn 0 -1 0 0 0\nl 0 0")) // non-finite beta
	f.Add([]byte("t -1 -1 1.5\n"))
	f.Add([]byte("t 1 1 1.5\nn 0 0 0 0 1\nl 0 0\n")) // self-parent cycle
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTree(bytes.NewReader(data))
		if err != nil {
			return // rejected: the only other acceptable outcome
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("accepted tree fails Validate: %v", verr)
		}
		var buf bytes.Buffer
		if werr := WriteTree(&buf, tr); werr != nil {
			t.Fatalf("accepted tree does not serialise: %v", werr)
		}
		tr2, rerr := ReadTree(&buf)
		if rerr != nil {
			t.Fatalf("accepted tree does not round-trip: %v\n%s", rerr, buf.String())
		}
		if tr2.NumNodes() != tr.NumNodes() || len(tr2.Leaf) != len(tr.Leaf) {
			t.Fatalf("round trip changed shape: %d/%d nodes, %d/%d leaves",
				tr.NumNodes(), tr2.NumNodes(), len(tr.Leaf), len(tr2.Leaf))
		}
		// An accepted tree must also index: the query layer inherits the
		// parser's trust, so anything Validate admits NewTreeIndex must too.
		if _, ierr := NewTreeIndex(tr); ierr != nil {
			t.Fatalf("accepted tree refuses to index: %v", ierr)
		}
	})
}

// TestReadTreeHostileHeaders pins the over-allocation guard deterministically
// (the fuzz target only exercises it under the fuzz engine): headers
// declaring huge or inconsistent counts fail fast without allocating
// anything proportional to the declaration.
func TestReadTreeHostileHeaders(t *testing.T) {
	cases := []struct{ name, src string }{
		{"huge counts, no records", "t 2000000000 2000000000 1.5\n"},
		{"beyond int32", "t 4000000000 1 1.5\n"},
		{"more leaves than nodes", "t 1 5 1.5\nn 0 -1 0 0 0\n"},
		{"node id skips ahead", "t 3 1 1.5\nn 0 -1 1 0 0\nn 2 0 0 0 1\n"},
		{"leaf id skips ahead", "t 2 2 1.5\nn 0 -1 1 0 0\nn 1 0 0 0 1\nl 1 1\n"},
		{"negative node id", "t 1 1 1.5\nn -1 -1 0 0 0\nl 0 0\n"},
	}
	for _, c := range cases {
		if _, err := ReadTree(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
