package frt

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"

	"parmbf/internal/graph"
)

// This file is the persistence tier of the serving pipeline: a versioned
// binary snapshot of a sampled ensemble, so a serving replica cold-starts by
// loading flat arrays instead of re-running the whole hop-set → H → oracle →
// BuildTree pipeline. The layout (all integers little-endian):
//
//	[0,  8)  magic "PMBFSNAP"
//	[8, 12)  format version (uint32, currently 1)
//	[12,16)  section count (uint32)
//	[16, …)  section table: count × {id uint32, pad uint32, offset uint64,
//	         length uint64}
//	…        section payloads, 8-byte aligned, in table order
//	[-8, …)  crc64-ECMA checksum of every preceding byte
//
// Sections of version 1:
//
//	id 1 (meta):  graphNodes uint64, graphEdges uint64, treeCount uint64
//	id 2 (trees): treeCount tree records back to back, each
//	              {numNodes uint32, numLeaves uint32, betaBits uint64}
//	              followed by the flat arrays Parent, Level, Center (int32,
//	              each padded to 8 bytes), EdgeWeight (float64 bits) and
//	              Leaf (int32, padded to 8 bytes)
//
// The section table carries explicit offsets and lengths and every array is
// 8-byte aligned, so a reader may mmap the file and slice sections in place;
// ReadSnapshot copies into Go slices (no unsafe aliasing) but allocates only
// in step with bytes actually present — a hostile header declaring huge
// counts is rejected before any allocation proportional to the declaration.
// Unknown section ids are skipped, so later versions can append sections
// without breaking version-1 readers.

const (
	snapshotMagic   = "PMBFSNAP"
	snapshotVersion = 1

	secMeta  = 1
	secTrees = 2

	// maxSnapshotSections bounds the declared section count: version 1
	// defines two sections, and even generous forward compatibility does not
	// need more than a handful.
	maxSnapshotSections = 16

	snapshotHeaderLen  = 16
	snapshotSectionLen = 24
	snapshotMetaLen    = 24
	// treeRecordHeaderLen is the fixed prefix of one serialised tree; the
	// smallest possible record, so declaredTrees > sectionLen/16 fails fast.
	treeRecordHeaderLen = 16
)

var snapshotCRC = crc64.MakeTable(crc64.ECMA)

// SnapshotMeta is the graph-shape metadata carried alongside the ensemble —
// what a serving replica needs for its /stats endpoint without ever loading
// the graph itself.
type SnapshotMeta struct {
	// GraphNodes is the embedded node count (equals the leaf count of every
	// tree; WriteSnapshot fills it in from the ensemble).
	GraphNodes int
	// GraphEdges is the edge count of the source graph, carried verbatim.
	GraphEdges int
}

func align8(n int) int { return (n + 7) &^ 7 }

// treeRecordSize returns the serialised size of one tree record.
func treeRecordSize(numNodes, numLeaves int) int {
	return treeRecordHeaderLen +
		3*align8(4*numNodes) + // Parent, Level, Center
		8*numNodes + // EdgeWeight
		align8(4*numLeaves) // Leaf
}

// WriteSnapshot serialises the ensemble and meta into the snapshot format.
// Every tree is validated first: a snapshot on disk must always load, so
// structural defects fail the save, not some later cold start. The written
// bytes are a pure function of the ensemble, and ReadSnapshot restores the
// trees bit-for-bit (Beta included), so fixed-seed ensemble fingerprints are
// reproducible from a loaded snapshot.
func WriteSnapshot(w io.Writer, ens *Ensemble, meta SnapshotMeta) error {
	if ens == nil || len(ens.Trees) == 0 {
		return fmt.Errorf("frt: cannot snapshot an empty ensemble")
	}
	n := len(ens.Trees[0].Leaf)
	treesLen := 0
	for i, t := range ens.Trees {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("frt: snapshot tree %d: %w", i, err)
		}
		if len(t.Leaf) != n {
			return fmt.Errorf("frt: snapshot tree %d embeds %d nodes, tree 0 embeds %d", i, len(t.Leaf), n)
		}
		treesLen += treeRecordSize(t.NumNodes(), len(t.Leaf))
	}
	meta.GraphNodes = n
	if meta.GraphEdges < 0 {
		return fmt.Errorf("frt: negative edge count %d", meta.GraphEdges)
	}

	tableLen := 2 * snapshotSectionLen
	metaOff := align8(snapshotHeaderLen + tableLen)
	treesOff := metaOff + snapshotMetaLen // 24 bytes keeps 8-alignment
	total := treesOff + treesLen + 8      // + checksum trailer

	buf := make([]byte, total)
	copy(buf, snapshotMagic)
	le := binary.LittleEndian
	le.PutUint32(buf[8:], snapshotVersion)
	le.PutUint32(buf[12:], 2)
	putSection := func(i int, id uint32, off, length int) {
		b := buf[snapshotHeaderLen+i*snapshotSectionLen:]
		le.PutUint32(b, id)
		le.PutUint64(b[8:], uint64(off))
		le.PutUint64(b[16:], uint64(length))
	}
	putSection(0, secMeta, metaOff, snapshotMetaLen)
	putSection(1, secTrees, treesOff, treesLen)

	le.PutUint64(buf[metaOff:], uint64(meta.GraphNodes))
	le.PutUint64(buf[metaOff+8:], uint64(meta.GraphEdges))
	le.PutUint64(buf[metaOff+16:], uint64(len(ens.Trees)))

	off := treesOff
	for _, t := range ens.Trees {
		off = putTreeRecord(buf, off, t)
	}
	if off != treesOff+treesLen {
		return fmt.Errorf("frt: snapshot size accounting bug: wrote %d, declared %d", off-treesOff, treesLen)
	}
	le.PutUint64(buf[total-8:], crc64.Checksum(buf[:total-8], snapshotCRC))
	_, err := w.Write(buf)
	return err
}

func putTreeRecord(buf []byte, off int, t *Tree) int {
	le := binary.LittleEndian
	le.PutUint32(buf[off:], uint32(t.NumNodes()))
	le.PutUint32(buf[off+4:], uint32(len(t.Leaf)))
	le.PutUint64(buf[off+8:], math.Float64bits(t.Beta))
	off += treeRecordHeaderLen
	putI32 := func(src []int32) {
		for i, v := range src {
			le.PutUint32(buf[off+4*i:], uint32(v))
		}
		off += align8(4 * len(src))
	}
	putI32(t.Parent)
	putI32(t.Level)
	putI32(t.Center) // graph.Node = int32
	for i, w := range t.EdgeWeight {
		le.PutUint64(buf[off+8*i:], math.Float64bits(w))
	}
	off += 8 * len(t.EdgeWeight)
	putI32(t.Leaf)
	return off
}

// ReadSnapshot parses and validates a snapshot. It is hardened against
// hostile bytes (the FuzzReadSnapshot target): malformed, truncated, or
// corrupted input — including a failed whole-file checksum — yields an
// error, never a panic, and no allocation ever exceeds O(len(data)). Every
// tree of an accepted snapshot passes Tree.Validate, so the returned
// ensemble indexes and serves exactly like the freshly built one it was
// saved from.
func ReadSnapshot(data []byte) (*Ensemble, SnapshotMeta, error) {
	var meta SnapshotMeta
	le := binary.LittleEndian
	if len(data) < snapshotHeaderLen+8 {
		return nil, meta, fmt.Errorf("frt: snapshot truncated: %d bytes", len(data))
	}
	if string(data[:8]) != snapshotMagic {
		return nil, meta, fmt.Errorf("frt: bad snapshot magic %q", data[:8])
	}
	if v := le.Uint32(data[8:]); v != snapshotVersion {
		return nil, meta, fmt.Errorf("frt: unsupported snapshot version %d (reader handles %d)", v, snapshotVersion)
	}
	payloadEnd := len(data) - 8
	if want, got := le.Uint64(data[payloadEnd:]), crc64.Checksum(data[:payloadEnd], snapshotCRC); want != got {
		return nil, meta, fmt.Errorf("frt: snapshot checksum mismatch: stored %016x, computed %016x", want, got)
	}
	nsec := int(le.Uint32(data[12:]))
	if nsec < 1 || nsec > maxSnapshotSections {
		return nil, meta, fmt.Errorf("frt: snapshot declares %d sections (limit %d)", nsec, maxSnapshotSections)
	}
	tableEnd := snapshotHeaderLen + nsec*snapshotSectionLen
	if tableEnd > payloadEnd {
		return nil, meta, fmt.Errorf("frt: section table truncated")
	}
	var metaSec, treesSec []byte
	prevEnd := uint64(tableEnd)
	for i := 0; i < nsec; i++ {
		b := data[snapshotHeaderLen+i*snapshotSectionLen:]
		id := le.Uint32(b)
		off, length := le.Uint64(b[8:]), le.Uint64(b[16:])
		if off%8 != 0 || off < prevEnd || length > uint64(payloadEnd) || off > uint64(payloadEnd)-length {
			return nil, meta, fmt.Errorf("frt: section %d (id %d) out of bounds: offset %d length %d", i, id, off, length)
		}
		prevEnd = off + length
		sec := data[off : off+length]
		switch id {
		case secMeta:
			if metaSec != nil {
				return nil, meta, fmt.Errorf("frt: duplicate meta section")
			}
			metaSec = sec
		case secTrees:
			if treesSec != nil {
				return nil, meta, fmt.Errorf("frt: duplicate trees section")
			}
			treesSec = sec
		default:
			// Unknown ids are tolerated for forward compatibility.
		}
	}
	if metaSec == nil || treesSec == nil {
		return nil, meta, fmt.Errorf("frt: snapshot lacks meta or trees section")
	}
	if len(metaSec) != snapshotMetaLen {
		return nil, meta, fmt.Errorf("frt: meta section is %d bytes, want %d", len(metaSec), snapshotMetaLen)
	}
	graphNodes := le.Uint64(metaSec)
	graphEdges := le.Uint64(metaSec[8:])
	treeCount := le.Uint64(metaSec[16:])
	if graphNodes == 0 || graphNodes > maxTreeRecords {
		return nil, meta, fmt.Errorf("frt: graph node count %d outside (0, 2^31)", graphNodes)
	}
	if graphEdges > math.MaxInt64 {
		return nil, meta, fmt.Errorf("frt: graph edge count overflows")
	}
	if treeCount == 0 || treeCount > uint64(len(treesSec)/treeRecordHeaderLen) {
		return nil, meta, fmt.Errorf("frt: tree count %d impossible for a %d-byte trees section", treeCount, len(treesSec))
	}
	meta.GraphNodes = int(graphNodes)
	meta.GraphEdges = int(graphEdges)

	trees := make([]*Tree, 0, treeCount)
	rest := treesSec
	for ti := uint64(0); ti < treeCount; ti++ {
		t, tail, err := readTreeRecord(rest, int(graphNodes))
		if err != nil {
			return nil, meta, fmt.Errorf("frt: tree %d: %w", ti, err)
		}
		if verr := t.Validate(); verr != nil {
			return nil, meta, fmt.Errorf("frt: tree %d invalid: %v", ti, verr)
		}
		trees = append(trees, t)
		rest = tail
	}
	if len(rest) != 0 {
		return nil, meta, fmt.Errorf("frt: %d trailing bytes after the last tree", len(rest))
	}
	return &Ensemble{Trees: trees}, meta, nil
}

// readTreeRecord decodes one tree record from the front of b, returning the
// remainder. Sizes are checked against the bytes actually present before any
// array is allocated.
func readTreeRecord(b []byte, wantLeaves int) (*Tree, []byte, error) {
	le := binary.LittleEndian
	if len(b) < treeRecordHeaderLen {
		return nil, nil, fmt.Errorf("record header truncated (%d bytes)", len(b))
	}
	numNodes := int(le.Uint32(b))
	numLeaves := int(le.Uint32(b[4:]))
	beta := math.Float64frombits(le.Uint64(b[8:]))
	if numNodes <= 0 || numLeaves <= 0 {
		return nil, nil, fmt.Errorf("non-positive sizes: %d nodes, %d leaves", numNodes, numLeaves)
	}
	if numLeaves != wantLeaves {
		return nil, nil, fmt.Errorf("embeds %d nodes, meta declares %d", numLeaves, wantLeaves)
	}
	if numLeaves > numNodes {
		return nil, nil, fmt.Errorf("more leaves (%d) than tree nodes (%d)", numLeaves, numNodes)
	}
	// numNodes and numLeaves fit int32, so the record size fits int64 with
	// room to spare; the length check below bounds every allocation by input
	// actually present.
	need := treeRecordSize(numNodes, numLeaves)
	if len(b) < need {
		return nil, nil, fmt.Errorf("record truncated: %d bytes of %d", len(b), need)
	}
	off := treeRecordHeaderLen
	getI32 := func(n int) []int32 {
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(le.Uint32(b[off+4*i:]))
		}
		off += align8(4 * n)
		return out
	}
	t := &Tree{Beta: beta}
	t.Parent = getI32(numNodes)
	t.Level = getI32(numNodes)
	center := getI32(numNodes)
	t.Center = make([]graph.Node, numNodes)
	for i, c := range center {
		t.Center[i] = graph.Node(c)
	}
	t.EdgeWeight = make([]float64, numNodes)
	for i := range t.EdgeWeight {
		t.EdgeWeight[i] = math.Float64frombits(le.Uint64(b[off+8*i:]))
	}
	off += 8 * numNodes
	t.Leaf = getI32(numLeaves)
	return t, b[need:], nil
}

// WriteSnapshotFile saves the ensemble to path via WriteSnapshot, writing
// through a temporary file + rename so a crash mid-save never leaves a
// half-written snapshot where a replica expects a loadable one.
func WriteSnapshotFile(path string, ens *Ensemble, meta SnapshotMeta) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snapshot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteSnapshot(tmp, ens, meta); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	// CreateTemp's 0600 would make the snapshot unreadable by the worker
	// replicas a deployment usually runs under a different user.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadSnapshotFile loads a snapshot saved by WriteSnapshotFile. The whole
// file is read at once (the format is offset-addressed, so an mmap-based
// loader could slice it zero-copy; at the sizes served today one bulk read
// is already milliseconds against the seconds of a pipeline rebuild).
func ReadSnapshotFile(path string) (*Ensemble, SnapshotMeta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, SnapshotMeta{}, err
	}
	return ReadSnapshot(data)
}
