package frt

import (
	"fmt"

	"parmbf/internal/graph"
	"parmbf/internal/hopset"
	"parmbf/internal/par"
	"parmbf/internal/simgraph"
)

// Embedder runs the tree-independent stages of the Theorem 7.9 pipeline —
// hop-set construction, the simulated graph H, and its oracle — exactly once
// per graph, and then draws any number of FRT trees against them. The only
// randomness a tree needs is its node order and scale β (§7.1 steps 1–2), so
// an ensemble of K trees shares one pipeline instead of rebuilding it K
// times, and the K oracle fixpoint computations run concurrently.
//
// This is the intended use of the paper's headline result: "repeating the
// process log(ε⁻¹) times and taking the best result" (§1) amortises the
// hop-set and H construction across all repetitions.
//
// The Embedder's own methods are not safe for concurrent use (they advance
// the embedder's RNG); a single SampleEnsemble call parallelises internally.
type Embedder struct {
	g    *graph.Graph
	opts Options
	hop  *hopset.Result
	h    *simgraph.H
}

// NewEmbedder validates opts, consumes randomness from opts.RNG for the
// shared stages (hop-set sampling and H's node levels), and returns an
// embedder ready to draw trees. The per-graph cost is paid here; each
// subsequent tree costs only one oracle fixpoint computation.
func NewEmbedder(g *graph.Graph, opts Options) (*Embedder, error) {
	if opts.RNG == nil {
		return nil, fmt.Errorf("frt: Options.RNG is required")
	}
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("frt: empty graph")
	}

	var hs *hopset.Result
	switch opts.HopSet {
	case HopSetSkeleton:
		hs = hopset.DefaultSkeleton(g, opts.RNG, opts.Tracker)
	case HopSetLandmark:
		count := opts.LandmarkCount
		if count <= 0 {
			count = 2 * ceilLog2(n)
		}
		hs = hopset.Landmark(g, count, opts.RNG, opts.Tracker)
	case HopSetNone:
		hs = hopset.None(g)
	default:
		return nil, fmt.Errorf("frt: unknown hop set kind %d", opts.HopSet)
	}

	h := simgraph.Build(hs, opts.EpsHat, opts.RNG)
	return &Embedder{g: g, opts: opts, hop: hs, h: h}, nil
}

// H returns the shared simulated graph.
func (e *Embedder) H() *simgraph.H { return e.h }

// Graph returns the input graph.
func (e *Embedder) Graph() *graph.Graph { return e.g }

// ApplyEdits refreshes the embedder's shared pipeline stages for an edited
// graph with the per-graph randomness held fixed: the graph is edited
// copy-on-write, the hop set is rebuilt from its frozen sample set
// (hopset.Result.Rebuild), and H is rebound to the new hop set keeping the
// frozen level assignment (simgraph.H.WithHop). No RNG state is consumed, so
// trees drawn after an update differ from a fresh embedder's only where the
// metric actually changed. Like the other methods, not safe for concurrent
// use; a deletion that disconnects the graph is rejected and the embedder is
// left unchanged.
func (e *Embedder) ApplyEdits(edits []graph.Edit) (*graph.EditSummary, error) {
	g2, sum, err := graph.ApplyEdits(e.g, edits)
	if err != nil {
		return nil, err
	}
	if len(sum.Applied) == 0 {
		return sum, nil
	}
	if sum.Deletes > 0 && !g2.Connected() {
		return nil, fmt.Errorf("frt: edit batch disconnects the graph")
	}
	hop2 := e.hop.Rebuild(g2, e.opts.Tracker)
	e.g, e.hop, e.h = g2, hop2, e.h.WithHop(hop2)
	return sum, nil
}

// sampleWith draws one tree using rng for the per-tree randomness (order and
// β) and charging work/depth to tracker.
func (e *Embedder) sampleWith(rng *par.RNG, tracker *par.Tracker) (*Embedding, error) {
	n := e.g.N()
	order := NewOrder(n, rng)
	beta := RandomBeta(rng)
	// Each sample binds a fresh oracle: to its own tracker (ensemble
	// sampling charges a private per-tree tracker so the shared tracker can
	// record max-depth, not summed depth) and to this order's in-place
	// filter for the aggregation fast path. Only H is shared state.
	oracle := simgraph.NewOracle(e.h, tracker)
	oracle.FilterInPlace = order.FilterInPlace()
	lists, iters := oracle.RunToFixpoint(InitialStates(n), order.Filter(), simgraph.MaxIters(n))
	tree, err := BuildTree(lists, order, beta)
	if err != nil {
		return nil, err
	}
	return &Embedding{
		Tree:       tree,
		Order:      order,
		Beta:       beta,
		LELists:    lists,
		H:          e.h,
		Iterations: iters,
	}, nil
}

// Sample draws one tree against the shared pipeline, advancing the
// embedder's RNG.
func (e *Embedder) Sample() (*Embedding, error) {
	return e.sampleWith(e.opts.RNG, e.opts.Tracker)
}

// SampleEmbeddings draws count independent trees concurrently against the
// shared pipeline. The per-tree RNGs are split off the embedder's RNG
// sequentially before the parallel loop and results land at fixed indices,
// so a fixed seed yields the identical ensemble for every par.MaxProcs
// setting — parallelism never changes the sampled distribution's outcome.
//
// When a Tracker is configured, each tree charges a private tracker; the
// shared tracker receives the summed work and the maximum per-tree depth,
// matching the DAG cost model's account of a parallel phase (§1.2).
func (e *Embedder) SampleEmbeddings(count int) ([]*Embedding, error) {
	if count < 1 {
		return nil, fmt.Errorf("frt: ensemble needs ≥ 1 tree")
	}
	rngs := e.opts.RNG.SplitN(count)
	var trackers []*par.Tracker
	if e.opts.Tracker != nil {
		trackers = make([]*par.Tracker, count)
		for i := range trackers {
			trackers[i] = &par.Tracker{}
		}
	}
	embs := make([]*Embedding, count)
	errs := make([]error, count)
	par.ForEach(count, func(i int) {
		var tr *par.Tracker
		if trackers != nil {
			tr = trackers[i]
		}
		embs[i], errs[i] = e.sampleWith(rngs[i], tr)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if trackers != nil {
		var work, depth int64
		for _, tr := range trackers {
			work += tr.Work()
			if d := tr.Depth(); d > depth {
				depth = d
			}
		}
		e.opts.Tracker.AddPhase(work, depth)
	}
	return embs, nil
}

// SampleEnsemble draws count independent trees concurrently and returns them
// as an Ensemble (the min-over-trees distance oracle of §1).
func (e *Embedder) SampleEnsemble(count int) (*Ensemble, error) {
	embs, err := e.SampleEmbeddings(count)
	if err != nil {
		return nil, err
	}
	ens := &Ensemble{Trees: make([]*Tree, count)}
	for i, emb := range embs {
		ens.Trees[i] = emb.Tree
	}
	return ens, nil
}
