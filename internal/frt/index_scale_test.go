package frt

import (
	"testing"

	"parmbf/internal/graph"
)

// bigSyntheticTree builds a valid 3-level FRT-shaped tree on n leaves:
// root → groups → leaves, with leaf v in group v%groups (or v/width when
// byDivision). Level weights are uniform (leafW up, groupW up), matching
// the BuildTree convention, so the shared weight table engages.
func bigSyntheticTree(n, groups int, byDivision bool, leafW, groupW float64) *Tree {
	nn := 1 + groups + n
	tr := &Tree{
		Parent:     make([]int32, nn),
		EdgeWeight: make([]float64, nn),
		Center:     make([]graph.Node, nn),
		Level:      make([]int32, nn),
		Leaf:       make([]int32, n),
		Beta:       1.5,
	}
	tr.Parent[0] = -1
	tr.Level[0] = 2
	for gi := 0; gi < groups; gi++ {
		tr.Parent[1+gi] = 0
		tr.EdgeWeight[1+gi] = groupW
		tr.Level[1+gi] = 1
	}
	for v := 0; v < n; v++ {
		g := v % groups
		if byDivision {
			g = v / ((n + groups - 1) / groups)
		}
		u := 1 + groups + v
		tr.Parent[u] = int32(1 + g)
		tr.EdgeWeight[u] = leafW
		tr.Level[u] = 0
		tr.Center[u] = graph.Node(v)
		tr.Leaf[v] = int32(u)
	}
	return tr
}

// TestOracleIndexSplitLanes drives the packed kernel past the 16-bit lane
// capacity: with n > 65536 leaves the height-0 cluster ids need 32-bit
// lanes, so the index must select a nonzero split and still answer every
// query identically to the tree walk and to the binary-search fallback.
func TestOracleIndexSplitLanes(t *testing.T) {
	n := 1<<16 + 512
	trees := []*Tree{
		bigSyntheticTree(n, 300, false, 1, 4),
		bigSyntheticTree(n, 17, true, 2, 8),
	}
	for i, tr := range trees {
		if err := tr.Validate(); err != nil {
			t.Fatalf("tree %d: %v", i, err)
		}
	}
	idx, err := NewOracleIndex(trees)
	if err != nil {
		t.Fatal(err)
	}
	if idx.packed == nil || idx.packedLo == nil || idx.split == 0 {
		t.Fatalf("split kernel not engaged: split=%d loWords=%d", idx.split, idx.loWords)
	}
	if idx.pwShared == nil {
		t.Fatal("level-uniform trees must engage the shared weight table")
	}
	if idx.anc != nil || idx.pw != nil {
		t.Fatal("superseded fallback tables retained alongside the split kernel")
	}
	fallback, err := newOracleIndex(trees, true, false)
	if err != nil {
		t.Fatal(err)
	}
	pairs := []Pair{
		{0, 1}, {0, 300}, {1, 301}, {5, 5 + 300*7}, // same/different groups in tree 0
		{0, graph.Node(n - 1)}, {graph.Node(n / 2), graph.Node(n/2 + 1)},
		{17, 17}, {graph.Node(n - 2), graph.Node(n - 1)},
	}
	for _, p := range pairs {
		got := idx.Min(p.U, p.V)
		wantWalk := trees[0].Dist(p.U, p.V)
		if d := trees[1].Dist(p.U, p.V); d < wantWalk {
			wantWalk = d
		}
		if got != wantWalk {
			t.Fatalf("Min(%d,%d)=%v, walk %v", p.U, p.V, got, wantWalk)
		}
		if fb := fallback.Min(p.U, p.V); got != fb {
			t.Fatalf("Min(%d,%d)=%v, fallback kernel %v", p.U, p.V, got, fb)
		}
		if med, fb := idx.Median(p.U, p.V), fallback.Median(p.U, p.V); med != fb {
			t.Fatalf("Median(%d,%d)=%v, fallback kernel %v", p.U, p.V, med, fb)
		}
	}
}

// TestOracleIndexBackfillsNonUniformPrefix covers the streaming rare path:
// when a later tree breaks level uniformity, the per-leaf weight table must
// be back-filled for the earlier (already dropped) trees.
func TestOracleIndexBackfillsNonUniformPrefix(t *testing.T) {
	uniform := &Tree{
		Parent:     []int32{-1, 0, 0, 1, 2},
		EdgeWeight: []float64{0, 5, 5, 2, 2},
		Center:     []graph.Node{0, 0, 1, 0, 1},
		Level:      []int32{2, 1, 1, 0, 0},
		Leaf:       []int32{3, 4},
		Beta:       1.5,
	}
	skewed := &Tree{
		Parent:     []int32{-1, 0, 0, 1, 2},
		EdgeWeight: []float64{0, 5, 7, 2, 3},
		Center:     []graph.Node{0, 0, 1, 0, 1},
		Level:      []int32{2, 1, 1, 0, 0},
		Leaf:       []int32{3, 4},
		Beta:       1.5,
	}
	for _, tr := range []*Tree{uniform, skewed} {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	idx, err := NewOracleIndex([]*Tree{uniform, skewed})
	if err != nil {
		t.Fatal(err)
	}
	if idx.pwShared != nil {
		t.Fatal("shared table built despite a non-uniform tree")
	}
	want := uniform.Dist(0, 1)
	if d := skewed.Dist(0, 1); d < want {
		want = d
	}
	if got := idx.Min(0, 1); got != want {
		t.Fatalf("Min(0,1)=%v, walk %v (tree 0's weights lost in back-fill?)", got, want)
	}
	var per [2]float64
	idx.perTreeDists(0, 1, 0, 2, per[:])
	if per[0] != uniform.Dist(0, 1) || per[1] != skewed.Dist(0, 1) {
		t.Fatalf("per-tree dists %v, want [%v %v]", per, uniform.Dist(0, 1), skewed.Dist(0, 1))
	}
}
