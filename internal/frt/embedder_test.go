package frt

import (
	"bytes"
	"math"
	"runtime"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// ensembleBytes serialises every tree of the ensemble into one byte stream,
// the canonical form used to assert that two ensembles are identical.
func ensembleBytes(t *testing.T, e *Ensemble) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, tr := range e.Trees {
		if err := WriteTree(&buf, tr); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestEmbedderDeterministicAcrossMaxProcs is the seed-determinism contract:
// a fixed seed must yield a byte-identical ensemble no matter how wide the
// parallel execution is, because per-tree RNGs are split off sequentially
// before the parallel loop.
func TestEmbedderDeterministicAcrossMaxProcs(t *testing.T) {
	genRNG := par.NewRNG(7)
	g := graph.RandomConnected(56, 168, 8, genRNG)

	defer func(p int) { par.MaxProcs = p }(par.MaxProcs)
	var want []byte
	for _, procs := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		par.MaxProcs = procs
		e, err := NewEmbedder(g, Options{RNG: par.NewRNG(42)})
		if err != nil {
			t.Fatal(err)
		}
		ens, err := e.SampleEnsemble(5)
		if err != nil {
			t.Fatal(err)
		}
		got := ensembleBytes(t, ens)
		if want == nil {
			want = got
		} else if !bytes.Equal(want, got) {
			t.Fatalf("MaxProcs=%d: ensemble differs from MaxProcs=1", procs)
		}
	}
}

// TestEmbedderSampleMatchesSampleWrapper checks that the one-shot Sample is
// really a thin wrapper: same seed, same tree.
func TestEmbedderSampleMatchesSampleWrapper(t *testing.T) {
	g := graph.RandomConnected(60, 150, 6, par.NewRNG(9))
	direct, err := Sample(g, Options{RNG: par.NewRNG(5)})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEmbedder(g, Options{RNG: par.NewRNG(5)})
	if err != nil {
		t.Fatal(err)
	}
	viaEmbedder, err := e.Sample()
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WriteTree(&a, direct.Tree); err != nil {
		t.Fatal(err)
	}
	if err := WriteTree(&b, viaEmbedder.Tree); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Sample and Embedder.Sample disagree for the same seed")
	}
}

// TestEnsembleDominance asserts the one-sided oracle guarantee on random
// graphs: Min(u,v) ≥ dist_G(u,v) for every pair (Definition 7.1 plus the
// doubled-edge-weight construction of BuildTree).
func TestEnsembleDominance(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		rng := par.NewRNG(seed)
		g := graph.RandomConnected(48, 140, 7, rng)
		e, err := NewEmbedder(g, Options{RNG: rng})
		if err != nil {
			t.Fatal(err)
		}
		ens, err := e.SampleEnsemble(4)
		if err != nil {
			t.Fatal(err)
		}
		exact := graph.APSPDijkstra(g)
		for u := 0; u < g.N(); u++ {
			for v := u + 1; v < g.N(); v++ {
				est := ens.Min(graph.Node(u), graph.Node(v))
				if d := exact.At(u, v); est < d-1e-9 {
					t.Fatalf("seed %d: Min(%d,%d)=%v under-estimates dist %v", seed, u, v, est, d)
				}
			}
		}
	}
}

// TestEnsembleMonotoneTightening asserts that Min is non-increasing as trees
// are added: every prefix ensemble's estimate is an upper bound on the next
// prefix's.
func TestEnsembleMonotoneTightening(t *testing.T) {
	rng := par.NewRNG(11)
	g := graph.RandomConnected(40, 100, 5, rng)
	e, err := NewEmbedder(g, Options{RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	ens, err := e.SampleEnsemble(8)
	if err != nil {
		t.Fatal(err)
	}
	pairRNG := par.NewRNG(12)
	for p := 0; p < 50; p++ {
		u := graph.Node(pairRNG.Intn(g.N()))
		v := graph.Node(pairRNG.Intn(g.N()))
		if u == v {
			continue
		}
		prev := math.Inf(1)
		for k := 1; k <= len(ens.Trees); k++ {
			prefix := &Ensemble{Trees: ens.Trees[:k]}
			cur := prefix.Min(u, v)
			if cur > prev+1e-12 {
				t.Fatalf("Min(%d,%d) rose from %v to %v at %d trees", u, v, prev, cur, k)
			}
			prev = cur
		}
	}
}

// TestEvaluateParallelMatchesSequential pins the parallel Evaluate to the
// sequential reference on the same pair set.
func TestEvaluateParallelMatchesSequential(t *testing.T) {
	rng := par.NewRNG(21)
	g := graph.RandomConnected(50, 130, 6, rng)
	e, err := NewEmbedder(g, Options{RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	ens, err := e.SampleEnsemble(3)
	if err != nil {
		t.Fatal(err)
	}
	defer func(p int) { par.MaxProcs = p }(par.MaxProcs)
	par.MaxProcs = 1
	seq := ens.Evaluate(g, 60, par.NewRNG(33))
	par.MaxProcs = 4
	parl := ens.Evaluate(g, 60, par.NewRNG(33))
	if seq.Pairs != parl.Pairs || seq.DominanceOK != parl.DominanceOK {
		t.Fatalf("pair accounting differs: %+v vs %+v", seq, parl)
	}
	if math.Abs(seq.AvgMinStretch-parl.AvgMinStretch) > 1e-9 {
		t.Fatalf("AvgMinStretch differs: %v vs %v", seq.AvgMinStretch, parl.AvgMinStretch)
	}
	if seq.MaxMinStretch != parl.MaxMinStretch {
		t.Fatalf("MaxMinStretch differs: %v vs %v", seq.MaxMinStretch, parl.MaxMinStretch)
	}
}

// TestEmbedderTrackerChargesParallelPhase checks the ensemble's cost
// accounting: total work grows with the tree count while the charged depth
// is the maximum over trees, not their sum.
func TestEmbedderTrackerChargesParallelPhase(t *testing.T) {
	rng := par.NewRNG(17)
	g := graph.RandomConnected(40, 100, 5, rng)

	one := &par.Tracker{}
	e1, err := NewEmbedder(g, Options{RNG: par.NewRNG(3), Tracker: one})
	if err != nil {
		t.Fatal(err)
	}
	setup := one.Work() // hop set + H construction
	if _, err := e1.SampleEmbeddings(1); err != nil {
		t.Fatal(err)
	}
	perTreeWork := one.Work() - setup
	perTreeDepth := one.Depth()

	many := &par.Tracker{}
	e8, err := NewEmbedder(g, Options{RNG: par.NewRNG(3), Tracker: many})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e8.SampleEmbeddings(8); err != nil {
		t.Fatal(err)
	}
	if w := many.Work() - setup; w < 4*perTreeWork {
		t.Fatalf("8-tree work %d implausibly small vs single-tree %d", w, perTreeWork)
	}
	if d := many.Depth(); d > 4*perTreeDepth {
		t.Fatalf("8-tree depth %d looks summed, not maxed (single-tree %d)", d, perTreeDepth)
	}
}

func TestEmbedderRejectsBadInput(t *testing.T) {
	g := graph.PathGraph(4, 1)
	if _, err := NewEmbedder(g, Options{}); err == nil {
		t.Fatal("nil RNG accepted")
	}
	if _, err := NewEmbedder(graph.New(0), Options{RNG: par.NewRNG(1)}); err == nil {
		t.Fatal("empty graph accepted")
	}
	if _, err := NewEmbedder(g, Options{RNG: par.NewRNG(1), HopSet: HopSetKind(99)}); err == nil {
		t.Fatal("unknown hop set accepted")
	}
	e, err := NewEmbedder(g, Options{RNG: par.NewRNG(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SampleEnsemble(0); err == nil {
		t.Fatal("zero-tree ensemble accepted")
	}
}
