package frt

import (
	"fmt"
	"os"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// scaleSizes mirrors internal/graph's scale sweep: 2^16 by default, plus the
// 2^20 point when PARMBF_SCALE=1 (set by `make bench-scale`).
func scaleSizes() []int {
	if os.Getenv("PARMBF_SCALE") != "" {
		return []int{1 << 16, 1 << 20}
	}
	return []int{1 << 16}
}

// scaleGraph returns the shared scale workload: a Chung-Lu power-law graph
// with average degree 8 and tail exponent 2.5 — low diameter, so the LE-list
// fixpoint converges in few iterations even at 2^20.
func scaleGraph(n int) *graph.Graph {
	return graph.ChungLu(n, 8, 2.5, 100, par.NewRNG(42))
}

// BenchmarkScaleLELists measures the direct (Khan et al.) LE-list fixpoint
// on the power-law workload — the dominant middle stage of the pipeline.
func BenchmarkScaleLELists(b *testing.B) {
	for _, n := range scaleSizes() {
		g := scaleGraph(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				order := NewOrder(g.N(), par.NewRNG(7))
				LEListsOnGraph(g, order, nil)
			}
		})
	}
}

// BenchmarkScaleBuildTree measures tree assembly from warm LE lists at scale
// (sort sweep, cursor-based center sweep, serial cluster grouping).
func BenchmarkScaleBuildTree(b *testing.B) {
	for _, n := range scaleSizes() {
		g := scaleGraph(n)
		order := NewOrder(g.N(), par.NewRNG(7))
		lists, _ := LEListsOnGraph(g, order, nil)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := BuildTree(lists, order, 1.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScaleEmbedderSample measures a K=2 ensemble draw through the full
// oracle pipeline (landmark hop set → H → oracle fixpoints → trees) at 2^16
// — the end-to-end shape the CI scale-smoke job runs.
func BenchmarkScaleEmbedderSample(b *testing.B) {
	if os.Getenv("PARMBF_SCALE") == "" {
		b.Skip("set PARMBF_SCALE=1: the 2^16 oracle draw takes minutes on one core")
	}
	n := 1 << 16
	g := scaleGraph(n)
	e, err := NewEmbedder(g, Options{RNG: par.NewRNG(42), HopSet: HopSetLandmark})
	if err != nil {
		b.Fatal(err)
	}
	b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.SampleEnsemble(2); err != nil {
				b.Fatal(err)
			}
		}
	})
}
