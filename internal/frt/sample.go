package frt

import (
	"fmt"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
	"parmbf/internal/simgraph"
)

// HopSetKind selects the hop-set construction of the sampling pipeline
// (ablation A3).
type HopSetKind int

const (
	// HopSetSkeleton uses the exact skeleton hop set (the default).
	HopSetSkeleton HopSetKind = iota
	// HopSetLandmark uses the 2-hop landmark hop set.
	HopSetLandmark
	// HopSetNone runs on the raw graph (d = n−1): correct but with depth
	// Θ(SPD(G)·polylog) — the ablation baseline.
	HopSetNone
)

// Options configures Sample.
type Options struct {
	// RNG is the randomness source (required).
	RNG *par.RNG
	// HopSet selects the hop-set stage.
	HopSet HopSetKind
	// LandmarkCount is the landmark budget for HopSetLandmark; 0 selects
	// 2·⌈log₂ n⌉.
	LandmarkCount int
	// EpsHat is the level-penalty base of H; 0 selects the default
	// 1/⌈log₂ n⌉².
	EpsHat float64
	// Tracker, if non-nil, is charged all work/depth.
	Tracker *par.Tracker
}

// Embedding is one sample from the FRT distribution of a graph.
type Embedding struct {
	// Tree is the sampled metric tree embedding.
	Tree *Tree
	// Order is the random node order used.
	Order *Order
	// Beta is the random scale β.
	Beta float64
	// LELists are the per-node LE lists w.r.t. the distances the tree was
	// built on (dist_H in the oracle pipeline, exact distances in the
	// baselines).
	LELists []semiring.DistMap
	// H is the simulated graph, when the oracle pipeline was used (nil in
	// the baselines).
	H *simgraph.H
	// Iterations is the number of (oracle) iterations until the LE-list
	// fixpoint.
	Iterations int
}

// Sample draws one tree from the FRT distribution of g using the full
// pipeline of Theorem 7.9: hop set → simulated graph H → LE lists through
// the MBF-like oracle → tree assembly. The expected stretch is
// O(α^{O(log n)} · log n) where α = 1+ε̂ accounts for H's distance slack —
// O(log n) for the default parameters (Corollary 7.10 with the hop-set
// substitution recorded in DESIGN.md).
//
// Sample rebuilds the pipeline on every call; to draw several trees of the
// same graph, use NewEmbedder and amortise the hop-set and H construction.
func Sample(g *graph.Graph, opts Options) (*Embedding, error) {
	e, err := NewEmbedder(g, opts)
	if err != nil {
		return nil, err
	}
	return e.Sample()
}

// SampleOnGraph draws one FRT tree by computing LE lists directly on g — the
// parallel form of the Khan et al. algorithm (§8.1), with depth Θ(SPD(G))
// instead of polylog. The trees are drawn from the FRT distribution of g's
// exact metric.
func SampleOnGraph(g *graph.Graph, rng *par.RNG, tracker *par.Tracker) (*Embedding, error) {
	n := g.N()
	order := NewOrder(n, rng)
	beta := RandomBeta(rng)
	lists, iters := LEListsOnGraph(g, order, tracker)
	tree, err := BuildTree(lists, order, beta)
	if err != nil {
		return nil, err
	}
	return &Embedding{Tree: tree, Order: order, Beta: beta, LELists: lists, Iterations: iters}, nil
}

// SampleFromMetric draws one FRT tree from an explicit metric — the input
// model of Blelloch et al. [10] (Θ(n²) work by reading the metric once).
func SampleFromMetric(m *graph.Matrix, rng *par.RNG, tracker *par.Tracker) (*Embedding, error) {
	order := NewOrder(m.N, rng)
	beta := RandomBeta(rng)
	lists := LEListsFromMetric(m, order, tracker)
	tree, err := BuildTree(lists, order, beta)
	if err != nil {
		return nil, err
	}
	return &Embedding{Tree: tree, Order: order, Beta: beta, LELists: lists, Iterations: 1}, nil
}

// SampleExact draws one FRT tree of g's exact metric by solving APSP with
// Dijkstra first — the quadratic-work baseline of experiment E5.
func SampleExact(g *graph.Graph, rng *par.RNG, tracker *par.Tracker) (*Embedding, error) {
	m := graph.APSPDijkstra(g)
	tracker.AddPhase(int64(g.N())*int64(g.M()+g.N()), int64(graph.SPDFrom(g, 0)+1))
	return SampleFromMetric(m, rng, tracker)
}

// EdgePath maps a tree edge (child cluster → its parent) back to a path in
// g between the two cluster centers (§7.5). The path is a shortest path in
// g; any common member v of the two clusters has dist(v, c_child) ≤ r_i and
// dist(v, c_parent) ≤ r_{i+1}, so the path weight is at most r_i + r_{i+1} =
// 3·β2^i = 1.5·EdgeWeight — the paper's factor-3 bound relative to its
// undoubled edge weight β2^i.
func EdgePath(g *graph.Graph, t *Tree, child int32) ([]graph.Node, error) {
	p := t.Parent[child]
	if p == -1 {
		return nil, fmt.Errorf("frt: root has no parent edge")
	}
	from, to := t.Center[child], t.Center[p]
	if from == to {
		return []graph.Node{from}, nil
	}
	res := graph.Dijkstra(g, from)
	path := res.PathTo(to)
	if path == nil {
		return nil, fmt.Errorf("frt: centers %d and %d disconnected in G", from, to)
	}
	return path, nil
}

func ceilLog2(n int) int {
	l := 0
	for v := 1; v < n; v *= 2 {
		l++
	}
	if l == 0 {
		l = 1
	}
	return l
}
