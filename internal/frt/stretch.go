package frt

import (
	"fmt"
	"math"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// StretchStats summarises a stretch measurement of a tree-embedding sampler
// against the exact metric of a graph (experiment E1; Definition 7.1).
type StretchStats struct {
	// Pairs is the number of node pairs evaluated.
	Pairs int
	// Trees is the number of independent embeddings sampled.
	Trees int
	// AvgStretch is the mean over pairs of the empirical expected stretch
	// E[dist_T(u,v)] / dist_G(u,v).
	AvgStretch float64
	// MaxAvgStretch is the maximum over pairs of the empirical expected
	// stretch — the quantity the O(log n) bound of [19] speaks about.
	MaxAvgStretch float64
	// MaxStretch is the worst single-tree stretch observed (may be large:
	// only the expectation is bounded).
	MaxStretch float64
	// MinRatio is the smallest observed dist_T/dist_G. Definition 7.1
	// requires it to be ≥ 1 (after discounting H's (1+o(1)) slack the
	// pipeline still guarantees dist_T ≥ dist_H ≥ dist_G).
	MinRatio float64
}

// MeasureStretch samples `trees` embeddings from sampler and evaluates them
// on `pairs` random node pairs of g against exact distances.
func MeasureStretch(g *graph.Graph, sampler func() (*Embedding, error), trees, pairs int, rng *par.RNG) (StretchStats, error) {
	n := g.N()
	if n < 2 {
		return StretchStats{}, fmt.Errorf("frt: need ≥ 2 nodes")
	}
	type pair struct {
		u, v graph.Node
		d    float64
	}
	ps := make([]pair, 0, pairs)
	for len(ps) < pairs {
		u := graph.Node(rng.Intn(n))
		v := graph.Node(rng.Intn(n))
		if u == v {
			continue
		}
		ps = append(ps, pair{u: u, v: v})
	}
	// Exact distances, one Dijkstra per distinct source.
	bySource := map[graph.Node][]int{}
	for i, p := range ps {
		bySource[p.u] = append(bySource[p.u], i)
	}
	for src, idxs := range bySource {
		res := graph.Dijkstra(g, src)
		for _, i := range idxs {
			ps[i].d = res.Dist[ps[i].v]
		}
	}

	sum := make([]float64, len(ps))
	stats := StretchStats{Pairs: len(ps), Trees: trees, MinRatio: math.Inf(1)}
	for t := 0; t < trees; t++ {
		emb, err := sampler()
		if err != nil {
			return stats, err
		}
		for i, p := range ps {
			ratio := emb.Tree.Dist(p.u, p.v) / p.d
			sum[i] += ratio
			if ratio > stats.MaxStretch {
				stats.MaxStretch = ratio
			}
			if ratio < stats.MinRatio {
				stats.MinRatio = ratio
			}
		}
	}
	for _, s := range sum {
		avg := s / float64(trees)
		stats.AvgStretch += avg
		if avg > stats.MaxAvgStretch {
			stats.MaxAvgStretch = avg
		}
	}
	stats.AvgStretch /= float64(len(ps))
	return stats, nil
}
