package frt

import (
	"fmt"
	"math"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// StretchStats summarises a stretch measurement of a tree-embedding sampler
// against the exact metric of a graph (experiment E1; Definition 7.1).
type StretchStats struct {
	// Pairs is the number of node pairs evaluated.
	Pairs int
	// Trees is the number of independent embeddings sampled.
	Trees int
	// AvgStretch is the mean over pairs of the empirical expected stretch
	// E[dist_T(u,v)] / dist_G(u,v).
	AvgStretch float64
	// MaxAvgStretch is the maximum over pairs of the empirical expected
	// stretch — the quantity the O(log n) bound of [19] speaks about.
	MaxAvgStretch float64
	// MaxStretch is the worst single-tree stretch observed (may be large:
	// only the expectation is bounded).
	MaxStretch float64
	// MinRatio is the smallest observed dist_T/dist_G. Definition 7.1
	// requires it to be ≥ 1 (after discounting H's (1+o(1)) slack the
	// pipeline still guarantees dist_T ≥ dist_H ≥ dist_G).
	MinRatio float64
}

// evalPair is a sampled node pair annotated with its exact distance in g.
type evalPair struct {
	u, v graph.Node
	d    float64
}

// drawEvalPairs samples node pairs of g from rng — retrying equal endpoints
// until `count` pairs exist when retry is set, making `count` draws and
// dropping equal endpoints otherwise — and fills in exact distances with one
// Dijkstra per distinct source, sources fanned out in parallel.
func drawEvalPairs(g *graph.Graph, count int, rng *par.RNG, retry bool) []evalPair {
	n := g.N()
	ps := make([]evalPair, 0, count)
	for drawn := 0; retry && len(ps) < count || !retry && drawn < count; drawn++ {
		u := graph.Node(rng.Intn(n))
		v := graph.Node(rng.Intn(n))
		if u == v {
			continue
		}
		ps = append(ps, evalPair{u: u, v: v})
	}
	bySource := map[graph.Node][]int{}
	var sources []graph.Node
	for i, p := range ps {
		if _, ok := bySource[p.u]; !ok {
			sources = append(sources, p.u)
		}
		bySource[p.u] = append(bySource[p.u], i)
	}
	par.ForEach(len(sources), func(si int) {
		res := graph.Dijkstra(g, sources[si])
		for _, i := range bySource[sources[si]] {
			ps[i].d = res.Dist[ps[i].v]
		}
	})
	return ps
}

// MeasureStretch samples `trees` embeddings from sampler and evaluates them
// on `pairs` random node pairs of g against exact distances. Each sampled
// tree is preprocessed into a TreeIndex and the pair set is evaluated
// through it in parallel; the per-pair ratios are bitwise identical to the
// direct Tree.Dist walk, so a fixed seed reports fixed statistics.
func MeasureStretch(g *graph.Graph, sampler func() (*Embedding, error), trees, pairs int, rng *par.RNG) (StretchStats, error) {
	n := g.N()
	if n < 2 {
		return StretchStats{}, fmt.Errorf("frt: need ≥ 2 nodes")
	}
	ps := drawEvalPairs(g, pairs, rng, true)

	sum := make([]float64, len(ps))
	ratios := make([]float64, len(ps))
	stats := StretchStats{Pairs: len(ps), Trees: trees, MinRatio: math.Inf(1)}
	for t := 0; t < trees; t++ {
		emb, err := sampler()
		if err != nil {
			return stats, err
		}
		if idx, err := NewTreeIndex(emb.Tree); err == nil {
			par.ForEach(len(ps), func(i int) { ratios[i] = idx.Dist(ps[i].u, ps[i].v) / ps[i].d })
		} else {
			par.ForEach(len(ps), func(i int) { ratios[i] = emb.Tree.Dist(ps[i].u, ps[i].v) / ps[i].d })
		}
		for i, ratio := range ratios {
			sum[i] += ratio
			if ratio > stats.MaxStretch {
				stats.MaxStretch = ratio
			}
			if ratio < stats.MinRatio {
				stats.MinRatio = ratio
			}
		}
	}
	for _, s := range sum {
		avg := s / float64(trees)
		stats.AvgStretch += avg
		if avg > stats.MaxAvgStretch {
			stats.MaxAvgStretch = avg
		}
	}
	stats.AvgStretch /= float64(len(ps))
	return stats, nil
}
