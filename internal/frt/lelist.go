// Package frt implements metric tree embeddings in the style of
// Fakcharoenphol, Rao, and Talwar (FRT) as described in §7 of Friedrichs &
// Lenzen: Least-Element (LE) lists are computed by an MBF-like algorithm —
// either directly on a graph (the Khan et al. baseline, §8.1) or through the
// §5 oracle on the simulated graph H — and an FRT tree is assembled from
// them (Lemma 7.2). The package also contains the metric-input baseline in
// the style of Blelloch et al. [10] used by the work-crossover experiment.
package frt

import (
	"parmbf/internal/graph"
	"parmbf/internal/mbf"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// Order is the uniformly random total order on the nodes used by the FRT
// construction (§7.1 step 2): Rank[v] is v's position in a random
// permutation, so ranks are distinct and "v < w" in the paper's notation
// means Rank[v] < Rank[w].
type Order struct {
	Rank []uint64
}

// NewOrder draws a uniformly random total order on n nodes.
func NewOrder(n int, rng *par.RNG) *Order {
	rank := make([]uint64, n)
	for pos, v := range rng.Perm(n) {
		rank[v] = uint64(pos)
	}
	return &Order{Rank: rank}
}

// Less reports whether v precedes w in the random order.
func (o *Order) Less(v, w graph.Node) bool { return o.Rank[v] < o.Rank[w] }

// MinNode returns the first node of the order (the node of rank 0), the
// root center of every FRT tree drawn with this order.
func (o *Order) MinNode() graph.Node {
	for v, r := range o.Rank {
		if r == 0 {
			return graph.Node(v)
		}
	}
	panic("frt: empty order")
}

// Filter returns the LE-list representative projection r of Definition 7.3:
// an entry (w, x_w) survives iff no other entry (u, x_u) has Rank[u] <
// Rank[w] and x_u ≤ x_w. Lemma 7.5 shows r is a representative projection
// of a congruence relation on D, which is what entitles the oracle to apply
// it after every intermediate iteration.
//
// The surviving entries, read in order of increasing distance, have strictly
// decreasing ranks; their count is O(log n) w.h.p. for any input that does
// not depend on the random order (Lemma 7.6).
func (o *Order) Filter() semiring.Filter[semiring.DistMap] {
	inPlace := o.FilterInPlace()
	return func(x semiring.DistMap) semiring.DistMap {
		return inPlace(x.Clone())
	}
}

// FilterInPlace is Filter for caller-owned values: it sorts and compacts the
// surviving entries inside x's backing array, allocating nothing. The engine
// applies it to the freshly merged output of the aggregation fast path; it
// must never be used on shared DistMap values (see the type's aliasing
// contract in internal/semiring).
//
// Both variants compute the same representative: the survivor set is
// uniquely determined (ranks are distinct, so the (distance, rank) sort key
// has no ties), and the result is re-sorted by node ID.
func (o *Order) FilterInPlace() semiring.Filter[semiring.DistMap] {
	rank := o.Rank
	return func(x semiring.DistMap) semiring.DistMap {
		if x.Len() == 0 {
			return semiring.DistMap{}
		}
		// Sort by (distance, rank): a sweep then keeps exactly the entries
		// that no earlier entry dominates.
		x.SortFunc(func(a, b semiring.Entry) bool {
			if a.Dist != b.Dist {
				return a.Dist < b.Dist
			}
			return rank[a.Node] < rank[b.Node]
		})
		best := ^uint64(0)
		kept := x.Compact(func(e semiring.Entry) bool {
			if rank[e.Node] < best {
				best = rank[e.Node]
				return true
			}
			return false
		})
		kept.SortFunc(func(a, b semiring.Entry) bool { return a.Node < b.Node })
		return kept
	}
}

// SortByDist returns the LE list ordered by increasing distance (the form
// used by the tree construction): ranks strictly decrease along the result.
func SortByDist(x semiring.DistMap) semiring.DistMap {
	out := x.Clone()
	// Survivor distances are distinct up to the dominating entry, and node
	// IDs break any remaining ties, so this order is total.
	out.SortFunc(func(a, b semiring.Entry) bool {
		if a.Dist != b.Dist {
			return a.Dist < b.Dist
		}
		return a.Node < b.Node
	})
	return out
}

// InitialStates returns the LE-list initialisation x(0) of Definition 7.3:
// every node knows itself at distance 0. The singletons share one bulk
// backing allocation (see semiring.SingletonStates) — at large n the old
// per-node pair allocations dominated initialisation time and heap count.
func InitialStates(n int) []semiring.DistMap {
	return semiring.SingletonStates(n)
}

// LEListsOnGraph computes the LE lists of a graph directly, by iterating
// the MBF-like algorithm of Definition 7.3 on G until the fixpoint — the
// parallel form of the Khan et al. algorithm (§8.1). It takes O(SPD(G))
// iterations and is the baseline that the oracle-based computation on H
// beats when SPD(G) is large. The returned iteration count is the number of
// sparse iterations performed, including the final one that confirms the
// fixpoint (see mbf.Runner.RunToFixpoint).
func LEListsOnGraph(g *graph.Graph, order *Order, tracker *par.Tracker) ([]semiring.DistMap, int) {
	lists, iters := LEListsOnGraphBatch(g, []*Order{order}, tracker)
	return lists[0], iters[0]
}

// LEListsOnGraphBatch computes the LE lists of a graph under B independent
// random orders — the B tree samples of an FRT ensemble — as one batched
// multi-source sweep (mbf.Runner.RunToFixpointBatch): every iteration makes
// a single pass over the CSR arcs serving all orders at once, sharing the
// per-arc weights and merge scratch across lanes, with bit-packed per-node
// lane masks tracking which orders can still change where. Lane b's lists
// and iteration count equal LEListsOnGraph(g, orders[b], …) exactly (pinned
// by the batch differential tests).
func LEListsOnGraphBatch(g *graph.Graph, orders []*Order, tracker *par.Tracker) ([][]semiring.DistMap, []int) {
	runner := &mbf.Runner[float64, semiring.DistMap]{
		Graph:   g,
		Module:  semiring.DistMapModule{},
		Weight:  mbf.MinPlusWeight,
		Size:    func(m semiring.DistMap) int { return m.Len() + 1 },
		Tracker: tracker,
	}
	xs := make([][]semiring.DistMap, len(orders))
	lanes := make([]mbf.BatchLane[semiring.DistMap], len(orders))
	for b, order := range orders {
		xs[b] = InitialStates(g.N())
		lanes[b] = mbf.BatchLane[semiring.DistMap]{
			Filter:        order.Filter(),
			FilterInPlace: order.FilterInPlace(),
		}
	}
	return runner.RunToFixpointBatch(xs, lanes, g.N())
}

// LEListsFromMetric computes LE lists directly from an explicit metric — the
// input model of Blelloch et al. [10], where the metric is a complete graph
// of SPD 1, so a single MBF-like iteration (here: one scan per node)
// suffices. Work is Θ(n²) by necessity of reading the metric.
func LEListsFromMetric(m *graph.Matrix, order *Order, tracker *par.Tracker) []semiring.DistMap {
	n := m.N
	out := make([]semiring.DistMap, n)
	filter := order.Filter()
	par.ForEach(n, func(v int) {
		full := semiring.NewDistMap(n)
		for w := 0; w < n; w++ {
			if d := m.At(v, w); !semiring.IsInf(d) {
				full = full.Append(graph.Node(w), d)
			}
		}
		out[v] = filter(full)
	})
	tracker.AddPhase(int64(n)*int64(n), 1)
	return out
}

// MaxLELength returns the longest LE list, the quantity bounded by
// O(log n) w.h.p. in Lemma 7.6 (experiment E4).
func MaxLELength(lists []semiring.DistMap) int {
	max := 0
	for _, l := range lists {
		if l.Len() > max {
			max = l.Len()
		}
	}
	return max
}
