package frt

import (
	"math"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

func TestNewOrderIsPermutation(t *testing.T) {
	rng := par.NewRNG(1)
	o := NewOrder(50, rng)
	seen := make([]bool, 50)
	for _, r := range o.Rank {
		if r >= 50 || seen[r] {
			t.Fatalf("ranks not a permutation: %v", o.Rank)
		}
		seen[r] = true
	}
	min := o.MinNode()
	if o.Rank[min] != 0 {
		t.Fatalf("MinNode has rank %d", o.Rank[min])
	}
}

// bruteLE computes the LE list of Definition 7.3 by direct domination
// checks.
func bruteLE(x semiring.DistMap, o *Order) semiring.DistMap {
	out := semiring.DistMap{}
	for _, e := range x.Entries() {
		dominated := false
		for _, f := range x.Entries() {
			if o.Rank[f.Node] < o.Rank[e.Node] && f.Dist <= e.Dist {
				dominated = true
				break
			}
		}
		if !dominated {
			out = out.Append(e.Node, e.Dist)
		}
	}
	return out
}

func TestLEFilterMatchesBruteForce(t *testing.T) {
	rng := par.NewRNG(2)
	o := NewOrder(20, rng)
	filter := o.Filter()
	mod := semiring.DistMapModule{}
	for trial := 0; trial < 100; trial++ {
		x := semiring.DistMap{}
		node := semiring.NodeID(0)
		for node < 20 {
			if rng.Float64() < 0.5 {
				x = x.Append(node, float64(rng.Intn(8)))
			}
			node++
		}
		got := filter(x)
		want := bruteLE(x, o)
		if !mod.Equal(got, want) {
			t.Fatalf("filter %v ≠ brute force %v for %v", got, want, x)
		}
	}
}

func TestLEFilterIsCongruence(t *testing.T) {
	rng := par.NewRNG(3)
	o := NewOrder(12, rng)
	var elems []semiring.DistMap
	elems = append(elems, semiring.DistMap{})
	for i := 0; i < 12; i++ {
		x := semiring.DistMap{}
		for node := semiring.NodeID(0); node < 12; node++ {
			if rng.Float64() < 0.4 {
				x = x.Append(node, float64(rng.Intn(10)))
			}
		}
		elems = append(elems, x)
	}
	err := semiring.CheckFilterCongruence[float64, semiring.DistMap](
		semiring.DistMapModule{}, o.Filter(), []float64{0, 1, 3, semiring.Inf}, elems)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLEFilterOutputShape(t *testing.T) {
	rng := par.NewRNG(4)
	o := NewOrder(30, rng)
	filter := o.Filter()
	x := semiring.NewDistMap(30)
	for node := semiring.NodeID(0); node < 30; node++ {
		x = x.Append(node, float64(rng.Intn(100)))
	}
	got := filter(x)
	if !got.IsSorted() {
		t.Fatal("LE filter output not sorted by node")
	}
	// By increasing distance, ranks strictly decrease.
	byDist := SortByDist(got)
	for i := 1; i < byDist.Len(); i++ {
		if byDist.Dist(i) < byDist.Dist(i-1) {
			t.Fatal("SortByDist violated")
		}
		if o.Rank[byDist.Node(i)] >= o.Rank[byDist.Node(i-1)] {
			t.Fatal("ranks not strictly decreasing along LE list")
		}
	}
	// The minimum-rank node present always survives.
	if byDist.Node(byDist.Len()-1) != o.MinNode() && got.Get(o.MinNode()) == semiring.Inf {
		// MinNode may be absent from x; only check if it was present.
		if x.Get(o.MinNode()) != semiring.Inf {
			t.Fatal("rank-0 entry filtered out")
		}
	}
}

func TestLEListsOnGraphMatchExactMetricLE(t *testing.T) {
	rng := par.NewRNG(5)
	g := graph.RandomConnected(40, 90, 8, rng)
	o := NewOrder(g.N(), rng)
	lists, iters := LEListsOnGraph(g, o, nil)
	if iters > g.N() {
		t.Fatalf("no fixpoint after %d iterations", iters)
	}
	exact := graph.APSPDijkstra(g)
	filter := o.Filter()
	mod := semiring.DistMapModule{}
	for v := 0; v < g.N(); v++ {
		full := semiring.NewDistMap(g.N())
		for w := 0; w < g.N(); w++ {
			full = full.Append(graph.Node(w), exact.At(v, w))
		}
		want := filter(full)
		if !mod.Equal(lists[v], want) {
			t.Fatalf("node %d: LE list %v ≠ exact %v", v, lists[v], want)
		}
	}
}

func TestLEListsFromMetricMatchesGraphLE(t *testing.T) {
	rng := par.NewRNG(6)
	g := graph.RandomConnected(30, 70, 5, rng)
	o := NewOrder(g.N(), rng)
	fromGraph, _ := LEListsOnGraph(g, o, nil)
	fromMetric := LEListsFromMetric(graph.APSPDijkstra(g), o, nil)
	mod := semiring.DistMapModule{}
	for v := range fromGraph {
		if !mod.Equal(fromGraph[v], fromMetric[v]) {
			t.Fatalf("node %d: %v vs %v", v, fromGraph[v], fromMetric[v])
		}
	}
}

func TestLEListLengthsLogarithmic(t *testing.T) {
	// Lemma 7.6: |r(x)| ∈ O(log n) w.h.p. Generous constant: 8·ln n.
	rng := par.NewRNG(7)
	g := graph.RandomConnected(300, 900, 10, rng)
	o := NewOrder(g.N(), rng)
	lists, _ := LEListsOnGraph(g, o, nil)
	bound := int(8 * math.Log(float64(g.N())))
	if got := MaxLELength(lists); got > bound {
		t.Fatalf("max LE length %d exceeds 8·ln n = %d", got, bound)
	}
}

func TestBuildTreeTinyExample(t *testing.T) {
	// Path 0—1—2 with unit weights and a fixed order.
	g := graph.PathGraph(3, 1)
	o := &Order{Rank: []uint64{1, 0, 2}} // node 1 is the minimum
	lists, _ := LEListsOnGraph(g, o, nil)
	tree, err := BuildTree(lists, o, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Center[0] != 1 {
		t.Fatalf("root center = %d, want 1 (the min-rank node)", tree.Center[0])
	}
	// Dominance on all pairs.
	exact := graph.APSPDijkstra(g)
	for u := graph.Node(0); u < 3; u++ {
		for v := graph.Node(0); v < 3; v++ {
			if td, gd := tree.Dist(u, v), exact.At(int(u), int(v)); td < gd {
				t.Fatalf("dominance violated: dist_T(%d,%d)=%v < %v", u, v, td, gd)
			}
		}
	}
	if tree.Dist(0, 0) != 0 {
		t.Fatal("self distance not 0")
	}
	if tree.Dist(0, 2) != tree.Dist(2, 0) {
		t.Fatal("tree distance not symmetric")
	}
}

func TestBuildTreeRejectsBadInput(t *testing.T) {
	o := &Order{Rank: []uint64{0}}
	if _, err := BuildTree(nil, o, 1.5); err == nil {
		t.Fatal("empty input accepted")
	}
	lists := []semiring.DistMap{semiring.SingletonDist(0, 0)}
	if _, err := BuildTree(lists, o, 2.5); err == nil {
		t.Fatal("β out of range accepted")
	}
	if _, err := BuildTree([]semiring.DistMap{{}}, o, 1.5); err == nil {
		t.Fatal("empty LE list accepted")
	}
}

func TestSampleOnGraphDominance(t *testing.T) {
	rng := par.NewRNG(8)
	g := graph.RandomConnected(50, 120, 6, rng)
	exact := graph.APSPDijkstra(g)
	for trial := 0; trial < 5; trial++ {
		emb, err := SampleOnGraph(g, rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := emb.Tree.Validate(); err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.N(); u++ {
			for v := u + 1; v < g.N(); v++ {
				td := emb.Tree.Dist(graph.Node(u), graph.Node(v))
				if td < exact.At(u, v)-1e-9 {
					t.Fatalf("trial %d: dominance violated at (%d,%d): %v < %v",
						trial, u, v, td, exact.At(u, v))
				}
			}
		}
	}
}

func TestSampleOraclePipeline(t *testing.T) {
	rng := par.NewRNG(9)
	g := graph.RandomConnected(60, 150, 6, rng)
	emb, err := Sample(g, Options{RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if emb.H == nil {
		t.Fatal("oracle pipeline should record H")
	}
	// Dominance w.r.t. G: dist_T ≥ dist_H ≥ dist_G.
	exact := graph.APSPDijkstra(g)
	for u := 0; u < g.N(); u += 7 {
		for v := u + 1; v < g.N(); v += 5 {
			td := emb.Tree.Dist(graph.Node(u), graph.Node(v))
			if td < exact.At(u, v)-1e-9 {
				t.Fatalf("dominance violated at (%d,%d): %v < %v", u, v, td, exact.At(u, v))
			}
		}
	}
}

func TestSamplePolylogIterationsOnPath(t *testing.T) {
	if testing.Short() {
		t.Skip("slow test: skipped with -short")
	}
	// On a path (SPD = n−1) the oracle must reach its fixpoint in
	// polylogarithmically many iterations — the whole point of H.
	rng := par.NewRNG(10)
	g := graph.PathGraph(200, 1)
	emb, err := Sample(g, Options{RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	if cap := 4 * 9 * 9; emb.Iterations > cap {
		t.Fatalf("oracle used %d iterations on path-200, cap %d", emb.Iterations, cap)
	}
	if emb.Iterations >= 199 {
		t.Fatalf("oracle iterations %d did not beat SPD(G)=199", emb.Iterations)
	}
}

func TestSampleRequiresRNG(t *testing.T) {
	g := graph.PathGraph(4, 1)
	if _, err := Sample(g, Options{}); err == nil {
		t.Fatal("missing RNG accepted")
	}
}

func TestSampleHopSetVariants(t *testing.T) {
	rng := par.NewRNG(11)
	g := graph.RandomConnected(40, 100, 5, rng)
	for _, kind := range []HopSetKind{HopSetSkeleton, HopSetLandmark, HopSetNone} {
		emb, err := Sample(g, Options{RNG: rng, HopSet: kind})
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if err := emb.Tree.Validate(); err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
	}
}

func TestSampleFromMetricMatchesTreeInvariants(t *testing.T) {
	rng := par.NewRNG(12)
	g := graph.RandomConnected(30, 80, 4, rng)
	m := graph.APSPDijkstra(g)
	emb, err := SampleFromMetric(m, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if emb.Tree.Dist(graph.Node(u), graph.Node(v)) < m.At(u, v)-1e-9 {
				t.Fatalf("metric-input dominance violated at (%d,%d)", u, v)
			}
		}
	}
}

func TestExpectedStretchLogarithmic(t *testing.T) {
	// Experiment E1 in miniature: the empirical expected stretch over 20
	// trees must stay within a generous O(log n) envelope. (The theorem is
	// about expectations; 20 trees with a fixed seed keeps this stable.)
	rng := par.NewRNG(13)
	g := graph.RandomConnected(64, 160, 6, rng)
	stats, err := MeasureStretch(g,
		func() (*Embedding, error) { return SampleOnGraph(g, rng, nil) },
		20, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MinRatio < 1-1e-9 {
		t.Fatalf("dominance violated: min ratio %v", stats.MinRatio)
	}
	bound := 8 * math.Log2(float64(g.N()))
	if stats.MaxAvgStretch > bound {
		t.Fatalf("max expected stretch %.2f exceeds 8·log₂n = %.2f", stats.MaxAvgStretch, bound)
	}
	if stats.AvgStretch < 1 {
		t.Fatalf("average stretch %v below 1", stats.AvgStretch)
	}
}

func TestOraclePipelineStretchClose(t *testing.T) {
	if testing.Short() {
		t.Skip("slow test: skipped with -short")
	}
	// The oracle pipeline embeds H, which (1+o(1))-approximates G; its
	// stretch envelope should match the direct pipeline's up to that slack.
	rng := par.NewRNG(14)
	g := graph.GridGraph(8, 8, 4, rng)
	stats, err := MeasureStretch(g,
		func() (*Embedding, error) { return Sample(g, Options{RNG: rng}) },
		10, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MinRatio < 1-1e-9 {
		t.Fatalf("dominance violated through H: %v", stats.MinRatio)
	}
	bound := 10 * math.Log2(float64(g.N()))
	if stats.MaxAvgStretch > bound {
		t.Fatalf("stretch %.2f exceeds envelope %.2f", stats.MaxAvgStretch, bound)
	}
}

func TestEdgePath(t *testing.T) {
	rng := par.NewRNG(15)
	g := graph.RandomConnected(40, 100, 5, rng)
	emb, err := SampleOnGraph(g, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree := emb.Tree
	for child := int32(0); child < int32(tree.NumNodes()); child++ {
		if tree.Parent[child] == -1 {
			continue
		}
		path, err := EdgePath(g, tree, child)
		if err != nil {
			t.Fatal(err)
		}
		if path[0] != tree.Center[child] || path[len(path)-1] != tree.Center[tree.Parent[child]] {
			t.Fatalf("path endpoints wrong: %v", path)
		}
		// Path weight within the §7.5-style bound relative to the tree
		// edge: ω(path) = dist_G(centers) ≤ r_i + r_{i+1} = 1.5·EdgeWeight.
		w := 0.0
		for i := 1; i < len(path); i++ {
			ew, ok := g.HasEdge(path[i-1], path[i])
			if !ok {
				t.Fatalf("non-edge on path: %v", path)
			}
			w += ew
		}
		if w > 1.5*tree.EdgeWeight[child] {
			t.Fatalf("path weight %v exceeds 1.5× tree edge weight %v", w, tree.EdgeWeight[child])
		}
	}
}

func TestEdgePathRootRejected(t *testing.T) {
	rng := par.NewRNG(16)
	g := graph.PathGraph(5, 1)
	emb, err := SampleOnGraph(g, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	root := int32(-1)
	for u, p := range emb.Tree.Parent {
		if p == -1 {
			root = int32(u)
		}
	}
	if _, err := EdgePath(g, emb.Tree, root); err == nil {
		t.Fatal("EdgePath on root should fail")
	}
}

func TestTreeDepthLogarithmicInWeightRange(t *testing.T) {
	rng := par.NewRNG(17)
	g := graph.RandomConnected(50, 120, 8, rng)
	emb, err := SampleOnGraph(g, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Depth ∈ O(log(n · wmax/wmin)): generous cap.
	if d := emb.Tree.Depth(); d > 40 {
		t.Fatalf("tree depth %d implausibly large", d)
	}
}

func TestRandomBetaDistribution(t *testing.T) {
	rng := par.NewRNG(18)
	// β = 2^U: all values in [1,2), median at 2^0.5 ≈ 1.414.
	below := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		b := RandomBeta(rng)
		if b < 1 || b >= 2 {
			t.Fatalf("β = %v out of range", b)
		}
		if b < math.Sqrt2 {
			below++
		}
	}
	frac := float64(below) / trials
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("P[β < √2] = %.3f, want ≈ 0.5", frac)
	}
}

// TestLEListsOnGraphBatchMatchesPerOrder pins the batched LE-list
// construction: B independent orders advanced as one multi-source sweep must
// produce, order for order, exactly the lists and iteration counts of the
// per-order runs.
func TestLEListsOnGraphBatchMatchesPerOrder(t *testing.T) {
	rng := par.NewRNG(31)
	g := graph.RandomConnected(36, 85, 7, rng)
	orders := make([]*Order, 4)
	for i := range orders {
		orders[i] = NewOrder(g.N(), rng)
	}
	gotLists, gotIters := LEListsOnGraphBatch(g, orders, nil)
	mod := semiring.DistMapModule{}
	for b, o := range orders {
		want, wantIters := LEListsOnGraph(g, o, nil)
		if gotIters[b] != wantIters {
			t.Fatalf("order %d: batch ran %d iterations, solo %d", b, gotIters[b], wantIters)
		}
		for v := range want {
			if !mod.Equal(gotLists[b][v], want[v]) {
				t.Fatalf("order %d node %d: batch %v ≠ solo %v", b, v, gotLists[b][v], want[v])
			}
		}
	}
}
