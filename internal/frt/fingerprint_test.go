package frt

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// fingerprintConfigs are the fixed-seed workloads whose serialised ensembles
// are pinned below. They cover the three hop-set pipelines so a change to
// any stage of the sampling pipeline shows up in at least one fingerprint.
var fingerprintConfigs = []struct {
	name            string
	n, m            int
	graphSeed, seed uint64
	trees           int
	opts            func(rng *par.RNG) Options
}{
	{
		name: "skeleton", n: 96, m: 320, graphSeed: 101, seed: 7, trees: 4,
		opts: func(rng *par.RNG) Options { return Options{RNG: rng} },
	},
	{
		name: "landmark", n: 80, m: 240, graphSeed: 202, seed: 11, trees: 3,
		opts: func(rng *par.RNG) Options { return Options{RNG: rng, HopSet: HopSetLandmark} },
	},
	{
		name: "none", n: 64, m: 192, graphSeed: 303, seed: 13, trees: 5,
		opts: func(rng *par.RNG) Options { return Options{RNG: rng, HopSet: HopSetNone} },
	},
}

// ensembleFingerprints are the fnv64a hashes of the serialised fixed-seed
// ensembles, recorded before the aggregation fast path landed. Engine
// optimisations (CSR core, k-way aggregation, in-place filters, …) must
// keep these byte-identical; only a deliberate change to the sampling
// pipeline's semantics may update them.
var ensembleFingerprints = map[string]string{
	"skeleton": "337cc6a8adc9507b",
	"landmark": "657e41b69018b746",
	"none":     "3247f3f8889a2157",
}

// buildFingerprintEnsemble runs the full fixed-seed pipeline of one config.
func buildFingerprintEnsemble(t *testing.T, cfgIdx int) *Ensemble {
	t.Helper()
	cfg := fingerprintConfigs[cfgIdx]
	g := graph.RandomConnected(cfg.n, cfg.m, 8, par.NewRNG(cfg.graphSeed))
	e, err := NewEmbedder(g, cfg.opts(par.NewRNG(cfg.seed)))
	if err != nil {
		t.Fatal(err)
	}
	ens, err := e.SampleEnsemble(cfg.trees)
	if err != nil {
		t.Fatal(err)
	}
	return ens
}

// fingerprintOf hashes the serialised trees of any ensemble — the same
// digest whether the ensemble was freshly sampled or loaded from a snapshot,
// which is how the snapshot differential suite proves a load restores the
// pinned fixed-seed output bit-for-bit.
func fingerprintOf(t *testing.T, ens *Ensemble) string {
	t.Helper()
	var buf bytes.Buffer
	for _, tr := range ens.Trees {
		if err := WriteTree(&buf, tr); err != nil {
			t.Fatal(err)
		}
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())
	return fmt.Sprintf("%016x", h.Sum64())
}

func ensembleFingerprint(t *testing.T, cfgIdx int) string {
	t.Helper()
	return fingerprintOf(t, buildFingerprintEnsemble(t, cfgIdx))
}

// TestEnsembleFingerprints is the cross-PR determinism contract: fixed-seed
// ensembles must remain byte-identical across engine rewrites (the same
// contract PR 2 asserted by hand with an ad-hoc fnv64 harness; this commits
// the harness). A mismatch means an optimisation changed observable output.
func TestEnsembleFingerprints(t *testing.T) {
	for i, cfg := range fingerprintConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			got := ensembleFingerprint(t, i)
			want := ensembleFingerprints[cfg.name]
			if got != want {
				t.Fatalf("ensemble fingerprint for %q = %s, pinned %s; "+
					"fixed-seed output changed", cfg.name, got, want)
			}
		})
	}
}
