package frt

import (
	"bytes"
	"math"
	"reflect"
	"runtime"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// sampleEnsembleForIndex draws K trees of a random graph with the cheap
// direct sampler — the query layer under test is independent of how the
// trees were constructed.
func sampleEnsembleForIndex(t testing.TB, seed uint64, n, m, k int) (*graph.Graph, *Ensemble) {
	t.Helper()
	rng := par.NewRNG(seed)
	g := graph.RandomConnected(n, m, 8, rng)
	e, err := SampleEnsemble(k, func() (*Embedding, error) { return SampleOnGraph(g, rng, nil) })
	if err != nil {
		t.Fatal(err)
	}
	return g, e
}

// maxProcsSettings are the parallel widths the differential suite sweeps:
// forced-sequential, a fixed small width, and whatever the machine has.
func maxProcsSettings() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0)}
}

// TestIndexDifferential is the pinning suite for the query rewrite: on
// random graphs and random pairs, TreeIndex.Dist must equal the parent-walk
// Tree.Dist and OracleIndex.MinBatch must equal the walk-based
// min-over-trees bitwise (==, not within epsilon), for every par.MaxProcs
// setting. The index may only change how distances are computed, never
// their bits.
func TestIndexDifferential(t *testing.T) {
	defer func(p int) { par.MaxProcs = p }(par.MaxProcs)
	type gcase struct {
		name string
		g    *graph.Graph
		e    *Ensemble
	}
	rngG := par.NewRNG(7)
	grid := graph.GridGraph(6, 6, 5, rngG)
	gridEns, err := SampleEnsemble(4, func() (*Embedding, error) { return SampleOnGraph(grid, rngG, nil) })
	if err != nil {
		t.Fatal(err)
	}
	randG, randEns := sampleEnsembleForIndex(t, 11, 80, 240, 5)
	pathG := graph.PathGraph(17, 2)
	pathEns, err := SampleEnsemble(3, func() (*Embedding, error) { return SampleOnGraph(pathG, par.NewRNG(13), nil) })
	if err != nil {
		t.Fatal(err)
	}
	cases := []gcase{{"grid", grid, gridEns}, {"random", randG, randEns}, {"path", pathG, pathEns}}

	for _, procs := range maxProcsSettings() {
		par.MaxProcs = procs
		for _, c := range cases {
			// Fresh index per width so the parallel build itself is under test.
			idx, err := NewOracleIndex(c.e.Trees)
			if err != nil {
				t.Fatal(err)
			}
			n := c.g.N()
			prng := par.NewRNG(uint64(1000 + procs))
			pairs := make([]Pair, 0, 203)
			for i := 0; i < 200; i++ {
				pairs = append(pairs, Pair{U: graph.Node(prng.Intn(n)), V: graph.Node(prng.Intn(n))})
			}
			// Edge pairs: equal endpoints, extremes.
			pairs = append(pairs, Pair{U: 0, V: 0}, Pair{U: 0, V: graph.Node(n - 1)}, Pair{U: graph.Node(n - 1), V: 0})

			for ti, tr := range c.e.Trees {
				ix, err := NewTreeIndex(tr)
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range pairs {
					if got, want := ix.Dist(p.U, p.V), tr.Dist(p.U, p.V); got != want {
						t.Fatalf("procs=%d %s tree %d: TreeIndex.Dist(%d,%d)=%v, walk %v",
							procs, c.name, ti, p.U, p.V, got, want)
					}
				}
			}
			got := idx.MinBatch(pairs, nil)
			for i, p := range pairs {
				want := c.e.minWalk(p.U, p.V)
				if got[i] != want {
					t.Fatalf("procs=%d %s: MinBatch(%d,%d)=%v, walk min %v", procs, c.name, p.U, p.V, got[i], want)
				}
				if med, wmed := idx.Median(p.U, p.V), medianWalkDirect(c.e.Trees, p.U, p.V); med != wmed {
					t.Fatalf("procs=%d %s: Median(%d,%d)=%v, walk median %v", procs, c.name, p.U, p.V, med, wmed)
				}
			}
			if med := idx.MedianBatch(pairs, nil); !reflect.DeepEqual(medBatchWalk(c.e.Trees, pairs), med) {
				t.Fatalf("procs=%d %s: MedianBatch differs from walk medians", procs, c.name)
			}
		}
	}
}

func medBatchWalk(trees []*Tree, pairs []Pair) []float64 {
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		out[i] = medianWalkDirect(trees, p.U, p.V)
	}
	return out
}

// medianWalkDirect sorts per-tree parent-walk distances without any index.
func medianWalkDirect(trees []*Tree, u, v graph.Node) float64 {
	ds := make([]float64, len(trees))
	for i, tr := range trees {
		ds[i] = tr.Dist(u, v)
	}
	insertionSort(ds)
	mid := len(ds) / 2
	if len(ds)%2 == 1 {
		return ds[mid]
	}
	return (ds[mid-1] + ds[mid]) / 2
}

func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// TestOracleIndexFastPathSelection pins the internal kernel selection: on
// sampled trees (level-uniform by construction, n ≤ 65536) the index must
// engage both the packed-word representation and the shared level-weight
// table — if either silently stops applying, the serving path regresses by
// an order of magnitude with no functional failure to flag it.
func TestOracleIndexFastPathSelection(t *testing.T) {
	_, e := sampleEnsembleForIndex(t, 61, 48, 120, 4)
	idx, err := e.Index()
	if err != nil {
		t.Fatal(err)
	}
	if idx.packed == nil {
		t.Fatal("packed merge-height representation not built for a small graph")
	}
	if idx.pwShared == nil {
		t.Fatal("shared level-weight table not detected on BuildTree trees")
	}
}

// TestOracleIndexKernelsAgree forces every query-kernel combination over
// the same ensemble and pairs: the packed+shared fast path (the default),
// the packed per-leaf path (non-uniform weights), and the int32
// binary-search fallbacks (n > 65536), with and without the shared table,
// must all reproduce the walk bitwise.
func TestOracleIndexKernelsAgree(t *testing.T) {
	g, e := sampleEnsembleForIndex(t, 71, 64, 160, 5)
	prng := par.NewRNG(72)
	pairs := make([]Pair, 150)
	for i := range pairs {
		pairs[i] = Pair{U: graph.Node(prng.Intn(g.N())), V: graph.Node(prng.Intn(g.N()))}
	}
	kernels := []struct {
		name                         string
		disablePacked, disableShared bool
	}{
		{"packed+shared", false, false},
		{"packed per-leaf", false, true},
		{"int32+shared", true, false},
		{"int32 per-leaf", true, true},
	}
	for _, k := range kernels {
		idx, err := newOracleIndex(e.Trees, k.disablePacked, k.disableShared)
		if err != nil {
			t.Fatal(err)
		}
		if (idx.packed == nil) != k.disablePacked || (idx.pwShared == nil) != k.disableShared {
			t.Fatalf("%s: kernel selection did not take (packed=%v shared=%v)",
				k.name, idx.packed != nil, idx.pwShared != nil)
		}
		for _, p := range pairs {
			if got, want := idx.Min(p.U, p.V), e.minWalk(p.U, p.V); got != want {
				t.Fatalf("%s kernel: Min(%d,%d)=%v, walk %v", k.name, p.U, p.V, got, want)
			}
			if got, want := idx.Median(p.U, p.V), medianWalkDirect(e.Trees, p.U, p.V); got != want {
				t.Fatalf("%s kernel: Median(%d,%d)=%v, walk %v", k.name, p.U, p.V, got, want)
			}
		}
	}
}

// TestOracleIndexReleasesSupersededTables pins the memory contract: once
// the packed and shared-weight kernels are selected, the repacked int32
// ancestors and the per-leaf prefix weights they supersede must be
// released — a long-running server should not hold three representations.
func TestOracleIndexReleasesSupersededTables(t *testing.T) {
	_, e := sampleEnsembleForIndex(t, 91, 32, 80, 3)
	idx, err := NewOracleIndex(e.Trees)
	if err != nil {
		t.Fatal(err)
	}
	if idx.packed == nil || idx.pwShared == nil {
		t.Fatal("fast kernels not engaged")
	}
	if idx.anc != nil || idx.pw != nil {
		t.Fatalf("superseded tables retained: anc=%d pw=%d entries", len(idx.anc), len(idx.pw))
	}
}

// TestOracleIndexNonUniformWeights feeds a valid tree whose level weights
// differ between branches (possible for deserialised trees, impossible for
// BuildTree output): the shared-table optimisation must disengage and
// queries must still match the walk.
func TestOracleIndexNonUniformWeights(t *testing.T) {
	tr := &Tree{
		Parent:     []int32{-1, 0, 0, 1, 2},
		EdgeWeight: []float64{0, 5, 7, 2, 2},
		Center:     []graph.Node{0, 0, 1, 0, 1},
		Level:      []int32{2, 1, 1, 0, 0},
		Leaf:       []int32{3, 4},
		Beta:       1.5,
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	idx, err := NewOracleIndex([]*Tree{tr})
	if err != nil {
		t.Fatal(err)
	}
	if idx.pwShared != nil {
		t.Fatal("shared level-weight table built for non-uniform weights")
	}
	if got, want := idx.Min(0, 1), tr.Dist(0, 1); got != want {
		t.Fatalf("Min(0,1)=%v, walk %v", got, want)
	}
}

// TestEnsembleQueriesUseIndex asserts the rewiring: Ensemble.Min/Median
// answer identically to the walk after the index is built lazily.
func TestEnsembleQueriesUseIndex(t *testing.T) {
	g, e := sampleEnsembleForIndex(t, 21, 40, 100, 4)
	if _, err := e.Index(); err != nil {
		t.Fatal(err)
	}
	for u := graph.Node(0); u < graph.Node(g.N()); u += 3 {
		for v := u; v < graph.Node(g.N()); v += 7 {
			if got, want := e.Min(u, v), e.minWalk(u, v); got != want {
				t.Fatalf("Min(%d,%d)=%v, walk %v", u, v, got, want)
			}
			if got, want := e.Median(u, v), medianWalkDirect(e.Trees, u, v); got != want {
				t.Fatalf("Median(%d,%d)=%v, walk %v", u, v, got, want)
			}
		}
	}
}

// TestTreeIndexRoundTripsThroughIO pins the treeio contract: the index is a
// deterministic function of the tree, so WriteTree → ReadTreeIndex rebuilds
// an index structurally identical to one built from the in-memory tree.
func TestTreeIndexRoundTripsThroughIO(t *testing.T) {
	_, e := sampleEnsembleForIndex(t, 31, 35, 90, 1)
	tr := e.Trees[0]
	want, err := NewTreeIndex(tr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTree(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTreeIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.n != want.n || got.depth != want.depth || got.stride != want.stride {
		t.Fatalf("shape differs: n %d/%d depth %d/%d stride %d/%d",
			got.n, want.n, got.depth, want.depth, got.stride, want.stride)
	}
	if !reflect.DeepEqual(got.anc, want.anc) {
		t.Fatal("ancestor tables differ after IO round trip")
	}
	if !reflect.DeepEqual(got.pw, want.pw) {
		t.Fatal("prefix-weight tables differ after IO round trip")
	}
}

// TestTreeIndexRejectsInvalidTrees covers the structural guards: empty
// trees, unequal leaf depths, and out-of-range pointers must refuse to
// index (and, matching the Dist edge-case fix, the walk now reports +Inf on
// unequal depths instead of panicking).
func TestTreeIndexRejectsInvalidTrees(t *testing.T) {
	if _, err := NewTreeIndex(&Tree{}); err == nil {
		t.Fatal("empty tree indexed")
	}
	// Root with one leaf child at depth 1 and one at depth 2.
	uneven := &Tree{
		Parent:     []int32{-1, 0, 0, 2},
		EdgeWeight: []float64{0, 2, 4, 2},
		Center:     []graph.Node{0, 0, 1, 1},
		Level:      []int32{2, 1, 1, 0},
		Leaf:       []int32{1, 3},
		Beta:       1.5,
	}
	if err := uneven.Validate(); err == nil {
		t.Fatal("Validate accepted unequal leaf depths")
	}
	if _, err := NewTreeIndex(uneven); err == nil {
		t.Fatal("unequal-depth tree indexed")
	}
	if d := uneven.Dist(0, 1); !math.IsInf(d, 1) {
		t.Fatalf("Dist on unequal-depth tree = %v, want +Inf", d)
	}
	oob := &Tree{
		Parent:     []int32{-1, 7},
		EdgeWeight: []float64{0, 1},
		Center:     []graph.Node{0, 0},
		Level:      []int32{1, 0},
		Leaf:       []int32{1},
	}
	if _, err := NewTreeIndex(oob); err == nil {
		t.Fatal("out-of-range parent indexed")
	}
	if err := oob.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range parent")
	}
}

// TestIndexAccessors pins the shape-reporting API.
func TestIndexAccessors(t *testing.T) {
	g, e := sampleEnsembleForIndex(t, 81, 25, 60, 3)
	idx, err := e.Index()
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumTrees() != 3 || idx.NumLeaves() != g.N() {
		t.Fatalf("oracle shape: %d trees, %d leaves", idx.NumTrees(), idx.NumLeaves())
	}
	maxDepth := 0
	for _, tr := range e.Trees {
		if d := tr.Depth(); d > maxDepth {
			maxDepth = d
		}
	}
	if idx.MaxDepth() != maxDepth {
		t.Fatalf("MaxDepth = %d, want %d", idx.MaxDepth(), maxDepth)
	}
	ti, err := NewTreeIndex(e.Trees[0])
	if err != nil {
		t.Fatal(err)
	}
	if ti.Tree() != e.Trees[0] || ti.NumLeaves() != g.N() || ti.Depth() != e.Trees[0].Depth() {
		t.Fatalf("tree index shape: tree %p leaves %d depth %d", ti.Tree(), ti.NumLeaves(), ti.Depth())
	}
	if got := len(e.Trees[0].PathToRoot(0)); got != ti.Depth()+1 {
		t.Fatalf("PathToRoot length %d, want depth+1 = %d", got, ti.Depth()+1)
	}
}

// TestEnsembleWalkFallback: an ensemble whose trees the index refuses
// (structurally invalid) must still answer Min/Median through the parent
// walk instead of failing or panicking.
func TestEnsembleWalkFallback(t *testing.T) {
	uneven := &Tree{
		Parent:     []int32{-1, 0, 0, 2},
		EdgeWeight: []float64{0, 2, 4, 2},
		Center:     []graph.Node{0, 0, 1, 1},
		Level:      []int32{2, 1, 1, 0},
		Leaf:       []int32{1, 3},
		Beta:       1.5,
	}
	e := &Ensemble{Trees: []*Tree{uneven}}
	if _, err := e.Index(); err == nil {
		t.Fatal("invalid tree indexed")
	}
	if d := e.Min(0, 1); !math.IsInf(d, 1) {
		t.Fatalf("fallback Min = %v, want +Inf (walk on invalid tree)", d)
	}
	if d := e.Median(0, 1); !math.IsInf(d, 1) {
		t.Fatalf("fallback Median = %v, want +Inf", d)
	}
}

// TestTreeDepthEmptyTree covers the Leaf[0] guard.
func TestTreeDepthEmptyTree(t *testing.T) {
	if d := (&Tree{}).Depth(); d != 0 {
		t.Fatalf("empty tree depth = %d, want 0", d)
	}
}

// TestMinBatchReusesOutput pins the buffer-recycling contract of the
// batched APIs.
func TestMinBatchReusesOutput(t *testing.T) {
	_, e := sampleEnsembleForIndex(t, 41, 20, 50, 3)
	idx, err := e.Index()
	if err != nil {
		t.Fatal(err)
	}
	pairs := []Pair{{U: 0, V: 1}, {U: 2, V: 3}}
	buf := make([]float64, 8)
	out := idx.MinBatch(pairs, buf)
	if len(out) != len(pairs) || &out[0] != &buf[0] {
		t.Fatal("MinBatch did not reuse the supplied buffer")
	}
	if out2 := idx.MinBatch(pairs, nil); out2[0] != out[0] || out2[1] != out[1] {
		t.Fatal("allocating and reusing paths disagree")
	}
}

// TestOracleIndexRejectsMismatchedTrees covers the constructor guards.
func TestOracleIndexRejectsMismatchedTrees(t *testing.T) {
	if _, err := NewOracleIndex(nil); err == nil {
		t.Fatal("empty ensemble indexed")
	}
	_, e1 := sampleEnsembleForIndex(t, 51, 10, 20, 1)
	_, e2 := sampleEnsembleForIndex(t, 52, 12, 24, 1)
	if _, err := NewOracleIndex([]*Tree{e1.Trees[0], e2.Trees[0]}); err == nil {
		t.Fatal("mismatched node counts indexed")
	}
}

// TestTreeIndexDecompositionAccessors pins MergeHeight / Ancestor / LCA —
// the decomposition API the application tier (oblivious routing, buy-at-bulk
// flow accumulation) walks — against a naive parent walk on the raw tree.
func TestTreeIndexDecompositionAccessors(t *testing.T) {
	g, ens := sampleEnsembleForIndex(t, 91, 48, 140, 1)
	tree := ens.Trees[0]
	idx, err := NewTreeIndex(tree)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Tree() != tree {
		t.Fatal("Tree() does not return the indexed tree")
	}
	rng := par.NewRNG(92)
	for trial := 0; trial < 200; trial++ {
		u := graph.Node(rng.Intn(g.N()))
		v := graph.Node(rng.Intn(g.N()))
		// Naive walk: lift both leaves in lockstep (uniform leaf depth)
		// until the chains meet.
		cu, cv, h := tree.Leaf[u], tree.Leaf[v], 0
		for cu != cv {
			cu, cv = tree.Parent[cu], tree.Parent[cv]
			h++
		}
		if got := idx.MergeHeight(u, v); got != h {
			t.Fatalf("MergeHeight(%d, %d) = %d, walk says %d", u, v, got, h)
		}
		if got := idx.LCA(u, v); got != cu {
			t.Fatalf("LCA(%d, %d) = %d, walk says %d", u, v, got, cu)
		}
		if got := idx.Ancestor(u, h); got != cu {
			t.Fatalf("Ancestor(%d, %d) = %d, walk says %d", u, h, got, cu)
		}
		if got := idx.Ancestor(u, 0); got != tree.Leaf[u] {
			t.Fatalf("Ancestor(%d, 0) = %d, want the leaf %d", u, got, tree.Leaf[u])
		}
	}
	// The root is every leaf's Depth()-ancestor.
	root := idx.Ancestor(0, idx.Depth())
	if tree.Parent[root] != -1 {
		t.Fatal("Depth()-ancestor is not the root")
	}
	for _, h := range []int{-1, idx.Depth() + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Ancestor height %d must panic", h)
				}
			}()
			idx.Ancestor(0, h)
		}()
	}
}
