package frt

import (
	"sync"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// The oracle benchmark fixture is the acceptance workload of the query
// subsystem: an ensemble of K=16 trees on an n=4096 random graph, queried
// on a fixed batch of random pairs. Building it costs a few seconds, so all
// Oracle* benchmarks share one lazily built instance.
var oracleFix struct {
	once  sync.Once
	ens   *Ensemble
	idx   *OracleIndex
	pairs []Pair
	err   error
}

const oracleBenchPairs = 4096

func oracleFixture(b *testing.B) (*Ensemble, *OracleIndex, []Pair) {
	b.Helper()
	oracleFix.once.Do(func() {
		rng := par.NewRNG(1)
		g := graph.RandomConnected(4096, 16384, 8, rng)
		oracleFix.ens, oracleFix.err = SampleEnsemble(16, func() (*Embedding, error) {
			return SampleOnGraph(g, rng, nil)
		})
		if oracleFix.err != nil {
			return
		}
		oracleFix.idx, oracleFix.err = NewOracleIndex(oracleFix.ens.Trees)
		if oracleFix.err != nil {
			return
		}
		prng := par.NewRNG(2)
		oracleFix.pairs = make([]Pair, oracleBenchPairs)
		for i := range oracleFix.pairs {
			u := graph.Node(prng.Intn(g.N()))
			v := graph.Node(prng.Intn(g.N()))
			oracleFix.pairs[i] = Pair{U: u, V: v}
		}
	})
	if oracleFix.err != nil {
		b.Fatal(oracleFix.err)
	}
	return oracleFix.ens, oracleFix.idx, oracleFix.pairs
}

// BenchmarkOracleWalkMin4096 is the pre-index serving path: one lockstep
// parent walk per tree per pair (the old Ensemble.Min), over the fixed
// 4096-pair batch. ns/op is per batch.
func BenchmarkOracleWalkMin4096(b *testing.B) {
	ens, _, pairs := oracleFixture(b)
	out := make([]float64, len(pairs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, p := range pairs {
			out[j] = ens.minWalk(p.U, p.V)
		}
	}
	sinkFloats = out
}

// BenchmarkOracleIndexMinBatch4096 is the new serving path: the same batch
// through OracleIndex.MinBatch (binary-searched merge heights over flat
// per-leaf rows, parallelised by par.ForEach). The acceptance bar of the
// query subsystem is ≥ 10× over BenchmarkOracleWalkMin4096.
func BenchmarkOracleIndexMinBatch4096(b *testing.B) {
	_, idx, pairs := oracleFixture(b)
	out := make([]float64, len(pairs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = idx.MinBatch(pairs, out)
	}
	sinkFloats = out
}

// BenchmarkOracleIndexMedianBatch4096 measures the pooled-scratch median
// path on the same batch.
func BenchmarkOracleIndexMedianBatch4096(b *testing.B) {
	_, idx, pairs := oracleFixture(b)
	out := make([]float64, len(pairs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = idx.MedianBatch(pairs, out)
	}
	sinkFloats = out
}

// BenchmarkOracleIndexBuild4096 measures the preprocessing cost the index
// amortises: O(n·depth) per tree, 16 trees.
func BenchmarkOracleIndexBuild4096(b *testing.B) {
	ens, _, _ := oracleFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, err := NewOracleIndex(ens.Trees)
		if err != nil {
			b.Fatal(err)
		}
		sinkIndex = idx
	}
}

var (
	sinkFloats []float64
	sinkIndex  *OracleIndex
)
