package frt

import (
	"math"
	"sort"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// The statistical-stretch suite turns the paper's Theorem-level guarantee
// into a regression test: a fixed-seed ensemble must (a) dominate the true
// metric — Min(u,v) ≥ dist_G(u,v) for every sampled pair, verified against
// graph.Dijkstra — and (b) keep the median min-stretch under a pinned
// c·log₂ n. The dominance bound is exact up to float tolerance (the doubled
// tree edge weights make it unconditional, see the Tree doc); the median
// bound is statistical, so it is checked on fixed seeds with a constant
// pinned ~2× above the observed values — loose enough never to flake on
// the committed seeds, tight enough that a regression that destroys the
// O(log n) behaviour (or the dominance doubling) fails loudly.

// stretchBoundC is the pinned constant: median min-stretch must stay below
// stretchBoundC·log₂ n. Observed medians on the fixed seeds below are
// 3.4–3.7 (log₂ n ≈ 7), so c=1 gives ~2× headroom while a stretch
// blow-up to Θ(n^ε) at these sizes would exceed it immediately.
const stretchBoundC = 1.0

func checkEnsembleStretch(t *testing.T, name string, g *graph.Graph, e *Ensemble, pairRNG *par.RNG, pairs int) {
	t.Helper()
	n := g.N()
	idx, err := e.Index()
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]Pair, 0, pairs)
	for len(qs) < pairs {
		u, v := graph.Node(pairRNG.Intn(n)), graph.Node(pairRNG.Intn(n))
		if u != v {
			qs = append(qs, Pair{U: u, V: v})
		}
	}
	mins := idx.MinBatch(qs, nil)

	// Exact distances straight from Dijkstra, one run per distinct source.
	exact := make([]float64, len(qs))
	bySource := map[graph.Node][]int{}
	for i, q := range qs {
		bySource[q.U] = append(bySource[q.U], i)
	}
	for src, is := range bySource {
		res := graph.Dijkstra(g, src)
		for _, i := range is {
			exact[i] = res.Dist[qs[i].V]
		}
	}

	stretches := make([]float64, len(qs))
	for i := range qs {
		if exact[i] <= 0 || math.IsInf(exact[i], 1) {
			t.Fatalf("%s: pair (%d,%d) has exact distance %v", name, qs[i].U, qs[i].V, exact[i])
		}
		ratio := mins[i] / exact[i]
		if ratio < 1-1e-9 {
			t.Fatalf("%s: dominance violated: Min(%d,%d)=%v < dist_G=%v (ratio %v)",
				name, qs[i].U, qs[i].V, mins[i], exact[i], ratio)
		}
		stretches[i] = ratio
	}
	sort.Float64s(stretches)
	median := stretches[len(stretches)/2]
	bound := stretchBoundC * math.Log2(float64(n))
	t.Logf("%s: n=%d K=%d pairs=%d median stretch %.2f (pinned bound %.2f), p90 %.2f, max %.2f",
		name, n, e.idx.NumTrees(), len(qs), median, bound, stretches[len(stretches)*9/10], stretches[len(stretches)-1])
	if median > bound {
		t.Fatalf("%s: median min-stretch %.2f exceeds pinned %.1f·log₂(%d) = %.2f",
			name, median, stretchBoundC, n, bound)
	}
}

// TestStatisticalStretchDirectSampler checks dominance and the pinned
// median bound for ensembles drawn by the direct (exact-metric LE list)
// sampler on two graph families.
func TestStatisticalStretchDirectSampler(t *testing.T) {
	for _, tc := range []struct {
		name string
		seed uint64
		make func(rng *par.RNG) *graph.Graph
		k    int
	}{
		{"random128", 101, func(rng *par.RNG) *graph.Graph { return graph.RandomConnected(128, 512, 8, rng) }, 8},
		{"grid10x10", 103, func(rng *par.RNG) *graph.Graph { return graph.GridGraph(10, 10, 4, rng) }, 6},
	} {
		rng := par.NewRNG(tc.seed)
		g := tc.make(rng)
		e, err := SampleEnsemble(tc.k, func() (*Embedding, error) { return SampleOnGraph(g, rng, nil) })
		if err != nil {
			t.Fatal(err)
		}
		checkEnsembleStretch(t, tc.name, g, e, par.NewRNG(tc.seed+1), 300)
	}
}

// TestStatisticalStretchPipeline runs the same checks through the full
// Theorem 7.9 pipeline (hop set → H → oracle → trees) via the Embedder —
// the configuration the paper's guarantee actually speaks about. H's
// (1+ε̂)-slack distances still dominate dist_G, so dominance must hold here
// too. Skipped in -short mode: the pipeline build costs a few seconds.
func TestStatisticalStretchPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline ensemble is slow; run without -short")
	}
	rng := par.NewRNG(211)
	g := graph.RandomConnected(128, 512, 8, rng)
	emb, err := NewEmbedder(g, Options{RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	e, err := emb.SampleEnsemble(8)
	if err != nil {
		t.Fatal(err)
	}
	checkEnsembleStretch(t, "pipeline128", g, e, par.NewRNG(212), 300)
}
