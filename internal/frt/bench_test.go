package frt

import (
	"fmt"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

func BenchmarkLEListsOnGraph(b *testing.B) {
	rng := par.NewRNG(1)
	g := graph.RandomConnected(512, 2048, 8, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		order := NewOrder(g.N(), rng)
		LEListsOnGraph(g, order, nil)
	}
}

func BenchmarkLEListsFromMetric(b *testing.B) {
	rng := par.NewRNG(2)
	g := graph.RandomConnected(256, 1024, 8, rng)
	m := graph.APSPDijkstra(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		order := NewOrder(m.N, rng)
		LEListsFromMetric(m, order, nil)
	}
}

func BenchmarkLEFilter(b *testing.B) {
	rng := par.NewRNG(3)
	order := NewOrder(256, rng)
	filter := order.Filter()
	// A worst-case-ish unfiltered state: 64 entries with random distances.
	input := semiring.NewDistMap(64)
	for node := semiring.NodeID(0); node < 256; node += 4 {
		input = input.Append(node, float64(rng.Intn(1000)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		filter(input)
	}
}

func BenchmarkBuildTree(b *testing.B) {
	rng := par.NewRNG(4)
	g := graph.RandomConnected(512, 2048, 8, rng)
	order := NewOrder(g.N(), rng)
	lists, _ := LEListsOnGraph(g, order, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildTree(lists, order, 1.5); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGraph is the fixed workload of the ensemble benchmarks: big enough
// that pipeline construction dominates, small enough for CI (one oracle
// pipeline run costs ~0.4s at this size and grows superlinearly).
func benchGraph() *graph.Graph {
	return graph.RandomConnected(64, 256, 8, par.NewRNG(99))
}

// BenchmarkEnsembleNaive is the pre-Embedder path: every tree re-runs the
// whole hop-set → H → oracle pipeline, sequentially.
func BenchmarkEnsembleNaive(b *testing.B) {
	g := benchGraph()
	for _, trees := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("trees=%d", trees), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rng := par.NewRNG(42)
				_, err := SampleEnsemble(trees, func() (*Embedding, error) {
					return Sample(g, Options{RNG: rng})
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEnsembleShared draws the same ensembles through the Embedder:
// one pipeline, trees sampled concurrently.
func BenchmarkEnsembleShared(b *testing.B) {
	g := benchGraph()
	for _, trees := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("trees=%d", trees), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e, err := NewEmbedder(g, Options{RNG: par.NewRNG(42)})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := e.SampleEnsemble(trees); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEmbedderSample measures one oracle-pipeline tree draw on a warm
// Embedder (hop set and H already built) — the per-tree cost that the
// aggregation fast path accelerates.
func BenchmarkEmbedderSample(b *testing.B) {
	g := graph.RandomConnected(128, 512, 8, par.NewRNG(6))
	e, err := NewEmbedder(g, Options{RNG: par.NewRNG(42)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Sample(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeDist(b *testing.B) {
	rng := par.NewRNG(5)
	g := graph.RandomConnected(512, 2048, 8, rng)
	emb, err := SampleOnGraph(g, rng, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emb.Tree.Dist(graph.Node(i%512), graph.Node((i*7)%512))
	}
}
