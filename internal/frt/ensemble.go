package frt

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// Ensemble is a collection of independent FRT embeddings of one graph, the
// form in which tree embeddings are consumed by approximation algorithms:
// each tree over-estimates every distance, the expectation of each estimate
// is O(log n)·dist, and taking the minimum over Θ(log(1/ε)) trees yields an
// O(log n)-approximation with probability 1−ε (§1 of the paper: "repeating
// the process log(ε⁻¹) times and taking the best result").
//
// An Ensemble doubles as a one-sided approximate distance oracle: Min never
// under-estimates, queries cost O(trees · log depth) through the lazily
// built OracleIndex, and no Θ(n²) metric is ever stored.
//
// The first query (Min, Median, Evaluate, or Index) indexes the trees;
// Trees must not be mutated afterwards, or queries will answer from the
// stale index.
type Ensemble struct {
	Trees []*Tree

	idxOnce sync.Once
	idx     *OracleIndex
	idxErr  error
}

// Index returns the ensemble's OracleIndex, building it on first use
// (O(trees · n · depth)). All of Min, Median, and Evaluate answer from it.
func (e *Ensemble) Index() (*OracleIndex, error) {
	e.idxOnce.Do(func() { e.idx, e.idxErr = NewOracleIndex(e.Trees) })
	return e.idx, e.idxErr
}

// SampleEnsemble draws `count` independent embeddings via sampler, one at a
// time. Every call of sampler pays the full pipeline cost; prefer
// (*Embedder).SampleEnsemble, which shares the hop set, H, and oracle across
// trees and samples them concurrently.
func SampleEnsemble(count int, sampler func() (*Embedding, error)) (*Ensemble, error) {
	if count < 1 {
		return nil, fmt.Errorf("frt: ensemble needs ≥ 1 tree")
	}
	e := &Ensemble{Trees: make([]*Tree, 0, count)}
	for i := 0; i < count; i++ {
		emb, err := sampler()
		if err != nil {
			return nil, err
		}
		e.Trees = append(e.Trees, emb.Tree)
	}
	return e, nil
}

// Min returns the smallest tree distance over the ensemble — an upper bound
// on dist(u, v, G) that tightens as trees are added. It answers from the
// OracleIndex (bitwise identical to the direct parent-walk minimum). If the
// index cannot be built because any tree is structurally invalid, the whole
// ensemble falls back to the O(trees·depth) parent walk — check
// (*Ensemble).Index's error to detect that state rather than serving at
// walk speed.
func (e *Ensemble) Min(u, v graph.Node) float64 {
	if idx, err := e.Index(); err == nil {
		return idx.Min(u, v)
	}
	return e.minWalk(u, v)
}

// minWalk is the pre-index query path: one lockstep parent walk per tree.
// It is the reference implementation the differential tests pin MinBatch
// against, and the fallback for structurally invalid trees.
func (e *Ensemble) minWalk(u, v graph.Node) float64 {
	best := e.Trees[0].Dist(u, v)
	for _, t := range e.Trees[1:] {
		if d := t.Dist(u, v); d < best {
			best = d
		}
	}
	return best
}

// Median returns the median tree distance — a robust estimate of the
// typical O(log n)-stretched distance.
func (e *Ensemble) Median(u, v graph.Node) float64 {
	if idx, err := e.Index(); err == nil {
		return idx.Median(u, v)
	}
	ds := make([]float64, len(e.Trees))
	for i, t := range e.Trees {
		ds[i] = t.Dist(u, v)
	}
	sort.Float64s(ds)
	mid := len(ds) / 2
	if len(ds)%2 == 1 {
		return ds[mid]
	}
	return (ds[mid-1] + ds[mid]) / 2
}

// EnsembleStats summarises ensemble quality on random pairs.
type EnsembleStats struct {
	Pairs int
	// AvgMinStretch is the mean of Min(u,v)/dist(u,v): the oracle's typical
	// over-estimation factor.
	AvgMinStretch float64
	// MaxMinStretch is its worst case over the sampled pairs.
	MaxMinStretch float64
	// DominanceOK reports whether Min never under-estimated.
	DominanceOK bool
}

// Evaluate measures the ensemble's Min estimator against exact distances on
// `pairs` random pairs. The pairs are drawn sequentially from rng (so a
// fixed seed selects a fixed pair set); the exact distances (one Dijkstra
// per distinct source, reused across that source's pairs) are computed in
// parallel, and the per-pair tree-distance minima go through the
// OracleIndex's batched MinBatch path.
func (e *Ensemble) Evaluate(g *graph.Graph, pairs int, rng *par.RNG) EnsembleStats {
	ps := drawEvalPairs(g, pairs, rng, false)
	mins := make([]float64, len(ps))
	if idx, err := e.Index(); err == nil {
		qs := make([]Pair, len(ps))
		for i, p := range ps {
			qs[i] = Pair{U: p.u, V: p.v}
		}
		idx.MinBatch(qs, mins)
	} else {
		par.ForEach(len(ps), func(i int) { mins[i] = e.minWalk(ps[i].u, ps[i].v) })
	}
	stats := par.Reduce(len(ps), EnsembleStats{DominanceOK: true},
		func(i int) EnsembleStats {
			ratio := mins[i] / ps[i].d
			return EnsembleStats{
				Pairs:         1,
				AvgMinStretch: ratio,
				MaxMinStretch: ratio,
				DominanceOK:   ratio >= 1-1e-9,
			}
		},
		func(a, b EnsembleStats) EnsembleStats {
			return EnsembleStats{
				Pairs:         a.Pairs + b.Pairs,
				AvgMinStretch: a.AvgMinStretch + b.AvgMinStretch,
				MaxMinStretch: math.Max(a.MaxMinStretch, b.MaxMinStretch),
				DominanceOK:   a.DominanceOK && b.DominanceOK,
			}
		})
	if stats.Pairs > 0 {
		stats.AvgMinStretch /= float64(stats.Pairs)
	}
	return stats
}
