package frt

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// validSnapshotBytes serialises a real sampled ensemble — the corpus seed
// that lets the mutator start from accepted input instead of flailing at the
// header grammar (the binary analogue of validTreeText).
func validSnapshotBytes(seed uint64, n, m, trees int) []byte {
	rng := par.NewRNG(seed)
	g := graph.RandomConnected(n, m, 6, rng)
	ens, err := SampleEnsemble(trees, func() (*Embedding, error) { return SampleOnGraph(g, rng, nil) })
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, ens, SnapshotMeta{GraphEdges: g.M()}); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadSnapshot asserts the snapshot parser's hostile-input contract,
// FuzzReadTree's for the binary format: arbitrary bytes either parse into an
// ensemble whose every tree passes Validate, indexes cleanly, and round-trips
// through WriteSnapshot/ReadSnapshot unchanged — or produce an error. Never
// a panic, and never memory proportional to counts a header merely declares
// (the fuzz engine's memory limit doubles as the over-allocation check:
// tiny inputs declaring 2^50 trees must fail before allocating).
func FuzzReadSnapshot(f *testing.F) {
	good := validSnapshotBytes(1, 12, 30, 3)
	f.Add(good)
	f.Add(validSnapshotBytes(2, 5, 10, 1))
	f.Add(good[:len(good)/2])               // truncated mid-section
	f.Add(good[:len(good)-3])               // truncated trailer
	f.Add([]byte("PMBFSNAP"))               // magic only
	f.Add([]byte("not a snapshot at all"))  // garbage
	corrupt := append([]byte(nil), good...) // flipped payload byte
	corrupt[len(corrupt)/2] ^= 0x10
	f.Add(corrupt)
	hugeHeader := append([]byte(nil), good...) // hostile declared section count
	binary.LittleEndian.PutUint32(hugeHeader[12:], 1<<31-1)
	f.Add(hugeHeader)

	f.Fuzz(func(t *testing.T, data []byte) {
		ens, meta, err := ReadSnapshot(data)
		if err != nil {
			return // rejected: the only other acceptable outcome
		}
		for i, tr := range ens.Trees {
			if verr := tr.Validate(); verr != nil {
				t.Fatalf("accepted snapshot tree %d fails Validate: %v", i, verr)
			}
		}
		// The query layer inherits the parser's trust: anything accepted
		// must index and answer without panicking.
		idx, ierr := NewOracleIndex(ens.Trees)
		if ierr != nil {
			t.Fatalf("accepted snapshot refuses to index: %v", ierr)
		}
		_ = idx.Min(0, graph.Node(meta.GraphNodes-1))
		// Canonical round trip: re-serialising what was read must restore
		// the identical ensemble (unknown sections are dropped, everything
		// else is preserved bit-for-bit).
		var buf bytes.Buffer
		if werr := WriteSnapshot(&buf, ens, meta); werr != nil {
			t.Fatalf("accepted snapshot does not re-serialise: %v", werr)
		}
		ens2, meta2, rerr := ReadSnapshot(buf.Bytes())
		if rerr != nil {
			t.Fatalf("accepted snapshot does not round-trip: %v", rerr)
		}
		if meta2 != meta {
			t.Fatalf("round trip changed meta: %+v vs %+v", meta2, meta)
		}
		if !reflect.DeepEqual(ens.Trees, ens2.Trees) {
			t.Fatal("round trip changed trees")
		}
	})
}
