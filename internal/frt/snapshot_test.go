package frt

import (
	"bytes"
	"encoding/binary"
	"hash/crc64"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// snapshotRoundTrip writes ens and reads it back, failing the test on any
// codec error.
func snapshotRoundTrip(t *testing.T, ens *Ensemble, meta SnapshotMeta) (*Ensemble, SnapshotMeta) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, ens, meta); err != nil {
		t.Fatal(err)
	}
	got, gotMeta, err := ReadSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return got, gotMeta
}

// TestSnapshotDifferential is the pinning suite of the persistence tier:
// write → read → query must be bitwise identical to the freshly built
// OracleIndex — MinBatch, MedianBatch, per-tree Dist, and the PerTreeBatch
// shard kernel — for every par.MaxProcs setting, so a replica serving from a
// loaded snapshot is indistinguishable from the process that built it.
func TestSnapshotDifferential(t *testing.T) {
	defer func(p int) { par.MaxProcs = p }(par.MaxProcs)
	g, fresh := sampleEnsembleForIndex(t, 17, 72, 216, 5)
	loaded, meta := snapshotRoundTrip(t, fresh, SnapshotMeta{GraphEdges: g.M()})
	if meta.GraphNodes != g.N() || meta.GraphEdges != g.M() {
		t.Fatalf("meta = %+v, want n=%d m=%d", meta, g.N(), g.M())
	}
	if len(loaded.Trees) != len(fresh.Trees) {
		t.Fatalf("loaded %d trees, saved %d", len(loaded.Trees), len(fresh.Trees))
	}
	// The trees themselves must restore bit-for-bit, Beta included.
	for i, tr := range fresh.Trees {
		if !reflect.DeepEqual(tr, loaded.Trees[i]) {
			t.Fatalf("tree %d differs after round trip", i)
		}
	}

	for _, procs := range maxProcsSettings() {
		par.MaxProcs = procs
		// Fresh indexes per width so the parallel index build runs under the
		// width being tested on both sides.
		fidx, err := NewOracleIndex(fresh.Trees)
		if err != nil {
			t.Fatal(err)
		}
		lidx, err := NewOracleIndex(loaded.Trees)
		if err != nil {
			t.Fatal(err)
		}
		prng := par.NewRNG(uint64(300 + procs))
		pairs := make([]Pair, 0, 203)
		for i := 0; i < 200; i++ {
			pairs = append(pairs, Pair{U: graph.Node(prng.Intn(g.N())), V: graph.Node(prng.Intn(g.N()))})
		}
		pairs = append(pairs, Pair{U: 0, V: 0}, Pair{U: 0, V: graph.Node(g.N() - 1)}, Pair{U: graph.Node(g.N() - 1), V: 0})

		if got, want := lidx.MinBatch(pairs, nil), fidx.MinBatch(pairs, nil); !reflect.DeepEqual(got, want) {
			t.Fatalf("procs=%d: MinBatch differs after snapshot round trip", procs)
		}
		if got, want := lidx.MedianBatch(pairs, nil), fidx.MedianBatch(pairs, nil); !reflect.DeepEqual(got, want) {
			t.Fatalf("procs=%d: MedianBatch differs after snapshot round trip", procs)
		}
		for ti := range fresh.Trees {
			got, err := lidx.PerTreeBatch(pairs, ti, ti+1, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range pairs {
				if want := fresh.Trees[ti].Dist(p.U, p.V); got[i] != want {
					t.Fatalf("procs=%d tree %d: loaded Dist(%d,%d)=%v, fresh walk %v",
						procs, ti, p.U, p.V, got[i], want)
				}
			}
		}
	}
}

// TestPerTreeBatchMergesToMinAndMedian pins the router-side merge contract:
// concatenating PerTreeBatch shards in ascending tree order and folding with
// Min's strict < (resp. sorting, for Median) reproduces the single-process
// answers bitwise, even when the shards are uneven.
func TestPerTreeBatchMergesToMinAndMedian(t *testing.T) {
	g, ens := sampleEnsembleForIndex(t, 23, 60, 180, 6)
	idx, err := ens.Index()
	if err != nil {
		t.Fatal(err)
	}
	prng := par.NewRNG(24)
	pairs := make([]Pair, 120)
	for i := range pairs {
		pairs[i] = Pair{U: graph.Node(prng.Intn(g.N())), V: graph.Node(prng.Intn(g.N()))}
	}
	k := idx.NumTrees()
	for _, shards := range [][][2]int{
		{{0, k}},
		{{0, 1}, {1, k}},
		{{0, 3}, {3, 5}, {5, k}},
	} {
		perTree := make([]float64, len(pairs)*k)
		for _, s := range shards {
			part, err := idx.PerTreeBatch(pairs, s[0], s[1], nil)
			if err != nil {
				t.Fatal(err)
			}
			w := s[1] - s[0]
			for i := range pairs {
				copy(perTree[i*k+s[0]:i*k+s[1]], part[i*w:(i+1)*w])
			}
		}
		wantMin := idx.MinBatch(pairs, nil)
		wantMed := idx.MedianBatch(pairs, nil)
		for i, p := range pairs {
			ds := append([]float64(nil), perTree[i*k:(i+1)*k]...)
			best := ds[0]
			for _, d := range ds[1:] {
				if d < best {
					best = d
				}
			}
			if p.U == p.V {
				best = 0
			}
			if best != wantMin[i] {
				t.Fatalf("shards %v pair %d: merged min %v, Min %v", shards, i, best, wantMin[i])
			}
			var med float64
			if p.U == p.V {
				med = 0
			} else {
				insertionSort(ds)
				mid := len(ds) / 2
				if len(ds)%2 == 1 {
					med = ds[mid]
				} else {
					med = (ds[mid-1] + ds[mid]) / 2
				}
			}
			if med != wantMed[i] {
				t.Fatalf("shards %v pair %d: merged median %v, Median %v", shards, i, med, wantMed[i])
			}
		}
	}
}

// TestPerTreeBatchRejectsBadShards covers the range guards.
func TestPerTreeBatchRejectsBadShards(t *testing.T) {
	_, ens := sampleEnsembleForIndex(t, 27, 20, 50, 3)
	idx, err := ens.Index()
	if err != nil {
		t.Fatal(err)
	}
	pairs := []Pair{{U: 0, V: 1}}
	for _, r := range [][2]int{{-1, 2}, {0, 4}, {2, 2}, {2, 1}} {
		if _, err := idx.PerTreeBatch(pairs, r[0], r[1], nil); err == nil {
			t.Errorf("shard [%d,%d) accepted", r[0], r[1])
		}
	}
	out, err := idx.PerTreeBatch(pairs, 0, 3, make([]float64, 8))
	if err != nil || len(out) != 3 {
		t.Fatalf("full-range PerTreeBatch: out=%d err=%v", len(out), err)
	}
}

// TestSnapshotReproducesFingerprints closes the determinism loop across
// persistence: the committed fixed-seed ensemble fingerprints must be
// reproduced from trees that went through a snapshot save/load — if the
// codec dropped so much as one bit of a weight or Beta, the digest moves.
func TestSnapshotReproducesFingerprints(t *testing.T) {
	if testing.Short() {
		t.Skip("full fingerprint pipelines are the long tier's job")
	}
	for i, cfg := range fingerprintConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			ens := buildFingerprintEnsemble(t, i)
			loaded, _ := snapshotRoundTrip(t, ens, SnapshotMeta{})
			if got, want := fingerprintOf(t, loaded), ensembleFingerprints[cfg.name]; got != want {
				t.Fatalf("fingerprint from loaded snapshot = %s, pinned %s", got, want)
			}
		})
	}
}

// TestSnapshotFileRoundTrip covers the file helpers, including the
// tmp+rename atomicity path.
func TestSnapshotFileRoundTrip(t *testing.T) {
	g, ens := sampleEnsembleForIndex(t, 29, 24, 60, 2)
	path := filepath.Join(t.TempDir(), "oracle.snap")
	if err := WriteSnapshotFile(path, ens, SnapshotMeta{GraphEdges: g.M()}); err != nil {
		t.Fatal(err)
	}
	loaded, meta, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.GraphNodes != g.N() || meta.GraphEdges != g.M() || len(loaded.Trees) != 2 {
		t.Fatalf("loaded meta %+v trees %d", meta, len(loaded.Trees))
	}
	if _, _, err := ReadSnapshotFile(filepath.Join(t.TempDir(), "missing.snap")); err == nil {
		t.Fatal("missing file loaded")
	}
	// No stray temp files left next to the snapshot.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("snapshot dir holds %d entries, want 1", len(entries))
	}
}

// TestWriteSnapshotRejectsBadEnsembles covers the save-side guards: an
// unloadable snapshot must never be written.
func TestWriteSnapshotRejectsBadEnsembles(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, nil, SnapshotMeta{}); err == nil {
		t.Fatal("nil ensemble snapshotted")
	}
	if err := WriteSnapshot(&buf, &Ensemble{}, SnapshotMeta{}); err == nil {
		t.Fatal("empty ensemble snapshotted")
	}
	invalid := &Tree{
		Parent:     []int32{-1, 0},
		EdgeWeight: []float64{0, -1}, // negative weight: Validate must catch
		Center:     []graph.Node{0, 0},
		Level:      []int32{1, 0},
		Leaf:       []int32{1},
	}
	if err := WriteSnapshot(&buf, &Ensemble{Trees: []*Tree{invalid}}, SnapshotMeta{}); err == nil {
		t.Fatal("structurally invalid tree snapshotted")
	}
	_, e1 := sampleEnsembleForIndex(t, 33, 10, 20, 1)
	_, e2 := sampleEnsembleForIndex(t, 34, 12, 24, 1)
	mixed := &Ensemble{Trees: []*Tree{e1.Trees[0], e2.Trees[0]}}
	if err := WriteSnapshot(&buf, mixed, SnapshotMeta{}); err == nil {
		t.Fatal("mismatched node counts snapshotted")
	}
	if err := WriteSnapshot(&buf, e1, SnapshotMeta{GraphEdges: -1}); err == nil {
		t.Fatal("negative edge count snapshotted")
	}
}

// TestReadSnapshotHostileInput pins the parser's rejection paths
// deterministically (the fuzz target explores beyond them): bad magic,
// unknown versions, truncations at every boundary, corrupt checksums, and
// headers declaring more than the file holds all error out without panic.
func TestReadSnapshotHostileInput(t *testing.T) {
	_, ens := sampleEnsembleForIndex(t, 37, 16, 40, 2)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, ens, SnapshotMeta{GraphEdges: 40}); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, _, err := ReadSnapshot(nil); err == nil {
		t.Fatal("nil input accepted")
	}
	if _, _, err := ReadSnapshot(good[:12]); err == nil {
		t.Fatal("header stub accepted")
	}
	for _, cut := range []int{len(good) - 1, len(good) - 8, len(good) / 2, 17, 40} {
		if _, _, err := ReadSnapshot(good[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	mutate := func(name string, f func(b []byte)) {
		b := append([]byte(nil), good...)
		f(b)
		if _, _, err := ReadSnapshot(b); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	mutate("bad magic", func(b []byte) { b[0] = 'X' })
	mutate("future version", func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 99) })
	mutate("zero sections", func(b []byte) { binary.LittleEndian.PutUint32(b[12:], 0) })
	mutate("huge section count", func(b []byte) { binary.LittleEndian.PutUint32(b[12:], 1<<30) })
	mutate("flipped payload byte", func(b []byte) { b[len(b)/2] ^= 0x40 })
	mutate("flipped checksum", func(b []byte) { b[len(b)-1] ^= 1 })
	mutate("section out of bounds", func(b []byte) {
		binary.LittleEndian.PutUint64(b[snapshotHeaderLen+8:], 1<<40)
		fixChecksum(b)
	})
	mutate("unaligned section", func(b []byte) {
		off := binary.LittleEndian.Uint64(b[snapshotHeaderLen+8:])
		binary.LittleEndian.PutUint64(b[snapshotHeaderLen+8:], off+4)
		fixChecksum(b)
	})
	mutate("huge tree count", func(b []byte) {
		metaOff := binary.LittleEndian.Uint64(b[snapshotHeaderLen+8:])
		binary.LittleEndian.PutUint64(b[metaOff+16:], 1<<50)
		fixChecksum(b)
	})
	mutate("zero graph nodes", func(b []byte) {
		metaOff := binary.LittleEndian.Uint64(b[snapshotHeaderLen+8:])
		binary.LittleEndian.PutUint64(b[metaOff:], 0)
		fixChecksum(b)
	})
}

// fixChecksum recomputes the trailer so a structural mutation is tested on
// its own merits rather than masked by the checksum gate.
func fixChecksum(b []byte) {
	binary.LittleEndian.PutUint64(b[len(b)-8:], crc64.Checksum(b[:len(b)-8], snapshotCRC))
}
