package frt

import (
	"runtime"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// retainedBytes reports how many heap bytes build's return value retains:
// the HeapAlloc delta across the call after garbage collection has settled
// on both sides. The measurement is deliberately coarse (GC bookkeeping and
// allocator rounding land in the delta too), so callers assert generous
// ceilings, not exact sizes.
func retainedBytes(build func() any) (any, int64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&before)
	v := build()
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(v)
	return v, int64(after.HeapAlloc) - int64(before.HeapAlloc)
}

// TestMemoryBudget pins the per-layer retained-memory budget of the scale
// pipeline at n = 2^16 — the table in README.md §"Scaling to 10^6 nodes".
// Each layer is built in turn, its retained bytes divided by n, and the
// result asserted against the documented ceiling. The ceilings carry ~2×
// headroom over the measured values, so the test fails only on a structural
// blow-up (an accidental per-node allocation, a dense K×n copy, a dropped
// sharing optimisation), not on allocator noise; update README.md alongside
// any deliberate change here.
func TestMemoryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("2^16-node pipeline (~10s)")
	}
	const n = 1 << 16
	budget := func(layer string, bytes int64, perNodeMax float64) {
		perNode := float64(bytes) / n
		t.Logf("%-16s %8.1f B/node (budget %.0f)", layer, perNode, perNodeMax)
		if perNode > perNodeMax {
			t.Errorf("%s: %.1f B/node exceeds the documented budget of %.0f", layer, perNode, perNodeMax)
		}
	}

	// Layer 1: the CSR graph. ~16 B per directed arc (Arc = int32 + pad +
	// float64) plus 4 B/node of row offsets; avg degree 8 → ≈ 132 B/node.
	gv, bytes := retainedBytes(func() any {
		return graph.ChungLu(n, 8, 2.5, 100, par.NewRNG(42))
	})
	g := gv.(*graph.Graph)
	budget("graph CSR", bytes, 256)

	// Layer 2: LE-list initial states. One bulk carve: 48 B of DistMap
	// header plus one 12 B (node, dist) pair per node.
	_, bytes = retainedBytes(func() any { return InitialStates(n) })
	budget("initial states", bytes, 96)

	// Layer 3: LE lists at the fixpoint. O(log n) entries w.h.p. (Lemma
	// 7.6) at 12 B each, plus the 48 B header.
	order := NewOrder(n, par.NewRNG(7))
	lv, bytes := retainedBytes(func() any {
		lists, _ := LEListsOnGraph(g, order, nil)
		return lists
	})
	lists := lv.([]semiring.DistMap)
	budget("LE lists", bytes, 768)

	// Layer 4: K=2 sampled trees. ~20 B per tree node (parent, weight,
	// center, level) plus the 4 B leaf pointer per graph node; tree nodes
	// number ≤ n per populated level but collapse sharply above the leaves.
	tv, bytes := retainedBytes(func() any {
		t0, err := BuildTree(lists, order, 1.25)
		if err != nil {
			t.Fatal(err)
		}
		t1, err := BuildTree(lists, order, 1.75)
		if err != nil {
			t.Fatal(err)
		}
		return []*Tree{t0, t1}
	})
	trees := tv.([]*Tree)
	budget("trees (K=2)", bytes, 512)

	// Layer 5: the oracle index. Packed merge-height words (16-bit lanes
	// above the split, 32-bit below), prefix-summed depths, and the shared
	// or per-leaf weight table.
	iv, bytes := retainedBytes(func() any {
		idx, err := NewOracleIndex(trees)
		if err != nil {
			t.Fatal(err)
		}
		return idx
	})
	idx := iv.(*OracleIndex)
	budget("oracle index", bytes, 128)

	// The layers must still answer queries after measurement (guards
	// against the GC having collected something the budget claims alive).
	d := graph.Dijkstra(g, 0)
	for _, v := range []graph.Node{1, 17, n / 2, n - 1} {
		got := idx.Min(0, v)
		if got < d.Dist[v] {
			t.Errorf("Min(0,%d) = %v below graph distance %v (dominance violated)", v, got, d.Dist[v])
		}
	}
	// Earlier layers must stay reachable while later ones are measured, or
	// their collection would be subtracted from a later layer's delta.
	runtime.KeepAlive(lists)
	runtime.KeepAlive(trees)
}
