package frt

import (
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// This file is the query layer over sampled FRT trees: TreeIndex answers
// single-tree distance queries in O(log depth) array lookups instead of the
// O(depth) pointer walk of Tree.Dist, and OracleIndex bundles an ensemble
// into a batched min-distance oracle — the serving-side counterpart of the
// construction pipeline (Embedder builds trees cheaply, OracleIndex makes
// them cheap to use).

// TreeIndex is a preprocessed FRT tree supporting pointer-free distance
// queries. It exploits the uniform leaf depth of FRT trees: every leaf has
// exactly depth+1 ancestors (itself included), so the ancestors and the
// prefix weights of all leaves pack into two flat arrays with one contiguous
// row per graph node. A query touches only the two rows of its endpoints —
// no pointer chasing through tree nodes scattered across the heap.
//
// Build cost is O(n·depth) time and memory; Dist is O(log depth): ancestor
// rows merge monotonically (once two lockstep walks meet they stay met), so
// the merge height is found by binary search.
type TreeIndex struct {
	tree   *Tree
	n      int // number of leaves (graph nodes)
	depth  int // levels from leaf to root; stride-1
	stride int // depth+1 entries per row
	// anc[v*stride+h] is the height-h ancestor of v's leaf (h=0 the leaf
	// itself, h=depth the root).
	anc []int32
	// pw[v*stride+h] is the total edge weight from v's leaf up to its
	// height-h ancestor, accumulated bottom-up — the same summation order as
	// Tree.Dist's walk, so results agree bitwise.
	pw []float64
}

// NewTreeIndex preprocesses t. It fails on structurally invalid trees
// (unequal leaf depths, out-of-range pointers, parent cycles) — the same
// defects Tree.Validate reports — rather than producing a lying index.
func NewTreeIndex(t *Tree) (*TreeIndex, error) {
	n := len(t.Leaf)
	if n == 0 || t.NumNodes() == 0 {
		return nil, fmt.Errorf("frt: cannot index an empty tree")
	}
	if len(t.EdgeWeight) < t.NumNodes() {
		return nil, fmt.Errorf("frt: tree has %d parents but %d edge weights", t.NumNodes(), len(t.EdgeWeight))
	}
	// Measure the depth of Leaf[0] with explicit bounds checks (Tree.Depth
	// assumes a valid tree; the index must not) — every other leaf is then
	// required to match it during the parallel fill.
	depth := 0
	for u := t.Leaf[0]; ; depth++ {
		if u < 0 || int(u) >= t.NumNodes() || depth > t.NumNodes() {
			return nil, fmt.Errorf("frt: broken parent chain at leaf 0 (run Validate for details)")
		}
		if t.Parent[u] == -1 {
			break
		}
		u = t.Parent[u]
	}
	stride := depth + 1
	x := &TreeIndex{
		tree:   t,
		n:      n,
		depth:  depth,
		stride: stride,
		anc:    make([]int32, n*stride),
		pw:     make([]float64, n*stride),
	}
	// Rows are independent; fill them in parallel. A structural defect found
	// by any worker is recorded (first writer wins) and reported after the
	// sweep.
	var badV atomic.Int32
	badV.Store(-1)
	par.ForEach(n, func(v int) {
		row := v * stride
		u := t.Leaf[v]
		if u < 0 || int(u) >= t.NumNodes() {
			badV.CompareAndSwap(-1, int32(v))
			return
		}
		x.anc[row] = u
		for h := 0; h < depth; h++ {
			p := t.Parent[u]
			if p < 0 || int(p) >= t.NumNodes() {
				badV.CompareAndSwap(-1, int32(v))
				return
			}
			x.pw[row+h+1] = x.pw[row+h] + t.EdgeWeight[u]
			x.anc[row+h+1] = p
			u = p
		}
		if t.Parent[u] != -1 {
			badV.CompareAndSwap(-1, int32(v)) // deeper than Leaf[0]: unequal depths
		}
	})
	if v := badV.Load(); v != -1 {
		return nil, fmt.Errorf("frt: tree is structurally invalid at graph node %d (run Validate for details)", v)
	}
	return x, nil
}

// Tree returns the tree the index was built from.
func (x *TreeIndex) Tree() *Tree { return x.tree }

// NumLeaves returns the number of graph nodes (leaves) indexed.
func (x *TreeIndex) NumLeaves() int { return x.n }

// Depth returns the uniform leaf depth of the indexed tree.
func (x *TreeIndex) Depth() int { return x.depth }

// Dist returns the tree distance between the leaves of u and v, bitwise
// identical to Tree.Dist, in O(log depth) lookups: binary search for the
// merge height h (the lowest height at which the ancestor rows agree), then
// one prefix-weight load per endpoint.
func (x *TreeIndex) Dist(u, v graph.Node) float64 {
	if u == v {
		return 0
	}
	ru, rv := int(u)*x.stride, int(v)*x.stride
	h := mergeHeight(x.anc[ru:ru+x.stride], x.anc[rv:rv+x.stride])
	return x.pw[ru+h] + x.pw[rv+h]
}

// MergeHeight returns the lowest height at which the ancestor chains of u's
// and v's leaves meet — the height of their lowest common ancestor — in
// O(log depth) lookups. MergeHeight(v, v) is 0.
func (x *TreeIndex) MergeHeight(u, v graph.Node) int {
	if u == v {
		return 0
	}
	ru, rv := int(u)*x.stride, int(v)*x.stride
	return mergeHeight(x.anc[ru:ru+x.stride], x.anc[rv:rv+x.stride])
}

// Ancestor returns the tree node that is the height-h ancestor of v's leaf
// (h=0 the leaf itself, h=Depth() the root). Combined with MergeHeight it
// exposes the tree decomposition to the application tier: the tree path
// between two leaves is their ancestor chains up to the merge height, and
// Ancestor(u, MergeHeight(u, v)) is the LCA. Panics if h is out of range.
func (x *TreeIndex) Ancestor(v graph.Node, h int) int32 {
	if h < 0 || h > x.depth {
		panic("frt: ancestor height out of range")
	}
	return x.anc[int(v)*x.stride+h]
}

// LCA returns the lowest common ancestor (as a tree node) of the leaves of
// u and v.
func (x *TreeIndex) LCA(u, v graph.Node) int32 {
	return x.anc[int(u)*x.stride+x.MergeHeight(u, v)]
}

// Pair is a distance-query pair.
type Pair struct {
	U, V graph.Node
}

// OracleIndex is the batched query service over an ensemble of indexed
// trees: Min answers the paper's headline estimate min_k dist_Tk(u,v) — an
// O(log n)-expected-stretch upper bound on dist_G(u,v) — in O(K·log depth)
// array lookups, and MinBatch fans a pair slice out over par.ForEach.
//
// The per-tree TreeIndex rows are additionally repacked into one block per
// graph node holding all K trees' ancestor and prefix-weight rows
// back-to-back (shallower trees padded by repeating their root). A query
// then streams exactly two contiguous blocks — one per endpoint — instead
// of touching 2·K rows scattered across K separate indexes, which is what
// makes the batched path an order of magnitude faster than the parent
// walk even on a single core.
type OracleIndex struct {
	n      int
	k      int   // ensemble size
	depths []int // per-tree leaf depth (the per-tree indexes are not retained)
	// stride is maxDepth+1: every packed row is padded to it, so one search
	// loop serves all trees.
	stride int
	// anc[(v*k+t)*stride + h] is the height-h ancestor of v's leaf in tree
	// t; heights past tree t's depth repeat its root. Built only when the
	// packed representation is disabled (test knob / external callers that
	// want the plain rows).
	anc []int32
	// pw mirrors anc with the prefix weight from the leaf up to height h.
	// Built only when the shared level-weight table is unavailable.
	pw []float64
	// pwShared collapses pw when every tree is level-uniform — all leaves
	// of a tree see the same edge weight at each height, which is how
	// BuildTree constructs trees (the level-i edge weight 2β2^i does not
	// depend on the cluster). Then pw[(v*k+t)*stride+h] == pwShared[t*stride+h]
	// for every v, the whole table is k·stride floats that live in L1, and
	// a query's memory traffic drops to the two packed ancestor rows.
	// Nil when any tree has non-uniform level weights (possible for trees
	// deserialised from elsewhere); queries then read the per-leaf pw.
	pwShared []float64
	// packed is the fast merge-height representation: ancestors are
	// renumbered into per-height dense cluster ids (equality-preserving, so
	// XOR comparisons find the merge height) and packed into uint64 words.
	// The heights split by lane width at `split`: heights ≥ split have at
	// most 65536 distinct clusters in every tree, so their ids pack four
	// 16-bit lanes per word into packed — packed[(v*k+t)*words + (h-split)/4],
	// lane (h-split)%4 — while the low heights 0…split-1 (where cluster
	// counts can approach n) pack two 32-bit lanes per word into packedLo.
	// Cluster counts only shrink going up (clusters merge), so one split
	// serves every tree, and for n ≤ 65536 the split is 0: the whole row is
	// 16-bit lanes and packedLo is empty. The merge height of a pair in one
	// tree is a top-down scan of XOR-compared words — high row first, then
	// the low row — plus one leading-zero count: O(depth/4) word ops,
	// typically 2–3, instead of a pointer walk or a lane-wise search.
	packed []uint64
	// packedLo holds the 32-bit lanes of heights < split (nil when split=0).
	packedLo []uint64
	// split is the first height whose cluster ids fit 16-bit lanes.
	split int
	// words is the padded word count per (node, tree) high row:
	// ceil((stride-split)/4).
	words int
	// loWords is the word count per (node, tree) low row: ceil(split/2).
	loWords int
	med     par.Pool[*[]float64]
}

// packedLaneMax is the largest per-height cluster count a 16-bit lane can
// hold; heights with more clusters in some tree fall below the split and
// use 32-bit lanes.
const packedLaneMax = 1 << 16

// NewOracleIndex indexes every tree of the ensemble. All trees must embed
// the same node set.
func NewOracleIndex(trees []*Tree) (*OracleIndex, error) {
	return newOracleIndex(trees, false, false)
}

// newOracleIndex is the constructor with kernel-selection knobs, used by
// tests to force the fallback kernels that NewOracleIndex would not build
// on level-uniform ensembles.
//
// Construction streams over the trees one at a time: each tree's TreeIndex
// is built, scattered into the selected resident tables, and dropped
// before the next tree is touched, so the construction peak holds one
// n·stride index instead of K of them — at n = 2^20 and K = 16 the
// difference between ~0.3 GB and ~5 GB of scratch. Each representation is
// materialised only if its kernel is selected: the repacked int32/float64
// fallback tables are skipped entirely when the packed words and the
// shared level-weight table supersede them — for the common case
// (BuildTree trees) the resident index is the packed words plus one
// k·stride float table.
func newOracleIndex(trees []*Tree, disablePacked, disableShared bool) (*OracleIndex, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("frt: oracle index needs ≥ 1 tree")
	}
	o := &OracleIndex{n: len(trees[0].Leaf), k: len(trees), depths: make([]int, len(trees))}
	o.med.New = func() *[]float64 { ds := make([]float64, o.k); return &ds }
	// Cheap pre-pass: per-tree depths (for the padded stride) and per-height
	// cluster-count bounds (for the 16/32-bit lane split), both derivable
	// from the parent arrays alone — no TreeIndex needed. Structural defects
	// are NOT diagnosed here; the streaming loop's NewTreeIndex reports them
	// with the same wording as before.
	maxDepth := 0
	for i, t := range trees {
		if len(t.Leaf) != o.n {
			return nil, fmt.Errorf("frt: tree %d embeds %d nodes, tree 0 embeds %d", i, len(t.Leaf), o.n)
		}
		d, ok := leafDepth(t)
		if !ok {
			return nil, fmt.Errorf("frt: tree %d: %w", i, fmt.Errorf("frt: broken parent chain at leaf 0 (run Validate for details)"))
		}
		o.depths[i] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	o.stride = maxDepth + 1
	// split = lowest height whose cluster count fits a 16-bit lane in every
	// tree. Distinct height-h ancestors of the n leaves number at most
	// min(n, nodes at the matching tree level), so for n ≤ 65536 the split
	// is always 0 (pure 16-bit rows, the historical layout).
	o.split = 0
	if !disablePacked {
		if o.n > packedLaneMax {
			bound := make([]int, o.stride)
			for i, t := range trees {
				counts := treeLevelCounts(t, o.depths[i])
				for h := 0; h < o.stride; h++ {
					c := o.n
					if counts != nil && h <= o.depths[i] && int(counts[h]) < c {
						c = int(counts[h])
					} else if counts != nil && h > o.depths[i] {
						c = 1 // padded heights repeat the root
					}
					if c > bound[h] {
						bound[h] = c
					}
				}
			}
			for h := o.stride - 1; h >= 0; h-- {
				if bound[h] > packedLaneMax {
					o.split = h + 1
					break
				}
			}
		}
		o.words = (o.stride - o.split + 3) / 4
		o.loWords = (o.split + 1) / 2
		o.packed = make([]uint64, o.n*o.k*o.words)
		if o.loWords > 0 {
			o.packedLo = make([]uint64, o.n*o.k*o.loWords)
		}
	}
	needPw := disableShared
	shared := make([]float64, o.k*o.stride)
	uniform := !disableShared
	if disablePacked {
		o.anc = make([]int32, o.n*o.k*o.stride)
	}
	// Streaming pass: index one tree, scatter it, drop it.
	for i, t := range trees {
		x, err := NewTreeIndex(t)
		if err != nil {
			return nil, fmt.Errorf("frt: tree %d: %w", i, err)
		}
		if o.packed != nil {
			o.packTree(x, i)
		}
		if o.anc != nil {
			o.scatterAnc(x, i)
		}
		if uniform {
			row := shared[i*o.stride : (i+1)*o.stride]
			copy(row, x.pw[:x.stride]) // leaf 0's row
			for h := x.stride; h < o.stride; h++ {
				row[h] = x.pw[x.depth] // pad with the full leaf-to-root weight
			}
			if !o.uniformWeights(x, row) {
				// A non-uniform tree (deserialised from elsewhere) voids the
				// shared table; switch to per-leaf weights, back-filling the
				// already-dropped earlier trees below.
				uniform = false
				needPw = true
			}
		}
		if needPw {
			if o.pw == nil {
				o.pw = make([]float64, o.n*o.k*o.stride)
			}
			o.scatterPw(x, i)
		}
	}
	if uniform {
		o.pwShared = shared
	} else if o.pw != nil {
		// Back-fill the trees streamed before non-uniformity was detected
		// (their indexes are gone). This re-indexes a prefix of the ensemble
		// — the rare path, taken only for non-BuildTree ensembles.
		for i := range trees {
			if !o.pwFilled(i) {
				x, err := NewTreeIndex(trees[i])
				if err != nil {
					return nil, fmt.Errorf("frt: tree %d: %w", i, err)
				}
				o.scatterPw(x, i)
			}
		}
	}
	return o, nil
}

// leafDepth measures the parent-chain length of Leaf[0] with explicit
// bounds and cycle guards, reporting failure instead of diverging on a
// broken tree.
func leafDepth(t *Tree) (int, bool) {
	if len(t.Leaf) == 0 || t.NumNodes() == 0 || len(t.EdgeWeight) < t.NumNodes() {
		return 0, false
	}
	depth := 0
	for u := t.Leaf[0]; ; depth++ {
		if u < 0 || int(u) >= t.NumNodes() || depth > t.NumNodes() {
			return 0, false
		}
		if t.Parent[u] == -1 {
			return depth, true
		}
		u = t.Parent[u]
	}
}

// treeLevelCounts returns the number of tree nodes at each height (distance
// below depth), an upper bound on the distinct height-h ancestors the
// packed renumbering can produce. It returns nil on structurally suspect
// trees (cycles, dangling parents, nodes deeper than the leaves); the
// caller then falls back to the conservative bound n and the streaming
// loop's validation reports the defect.
func treeLevelCounts(t *Tree, depth int) []int32 {
	nn := t.NumNodes()
	d := make([]int32, nn) // depth from the root; -1 = unknown
	for i := range d {
		d[i] = -1
	}
	counts := make([]int32, depth+1)
	stack := make([]int32, 0, 64)
	for u := 0; u < nn; u++ {
		if d[u] != -1 {
			continue
		}
		stack = stack[:0]
		v := int32(u)
		for d[v] == -1 {
			stack = append(stack, v)
			if len(stack) > nn {
				return nil // parent cycle
			}
			p := t.Parent[v]
			if p == -1 {
				break
			}
			if p < 0 || int(p) >= nn {
				return nil
			}
			v = p
		}
		base := int32(-1) // unwinding starts at the root (depth 0)
		if d[v] != -1 {
			base = d[v] // unwinding starts below an already-resolved node
		}
		for i := len(stack) - 1; i >= 0; i-- {
			base++
			d[stack[i]] = base
		}
	}
	for u := 0; u < nn; u++ {
		h := int32(depth) - d[u]
		if h < 0 {
			return nil // deeper than the leaves: invalid FRT tree
		}
		counts[h]++
	}
	return counts
}

// scatterAnc repacks one tree's int32 ancestor rows into the per-node
// blocks of the binary-search fallback kernel. Padding repeats the root:
// the padded heights stay equal across any two nodes, so the merge-height
// search is unchanged.
func (o *OracleIndex) scatterAnc(x *TreeIndex, t int) {
	par.ForEach(o.n, func(v int) {
		dst := (v*o.k + t) * o.stride
		src := v * x.stride
		copy(o.anc[dst:dst+x.stride], x.anc[src:src+x.stride])
		root := x.anc[src+x.depth]
		for h := x.stride; h < o.stride; h++ {
			o.anc[dst+h] = root
		}
	})
}

// scatterPw repacks one tree's per-leaf prefix weights into the per-node
// blocks — the distance lookup for trees with non-uniform level weights.
func (o *OracleIndex) scatterPw(x *TreeIndex, t int) {
	par.ForEach(o.n, func(v int) {
		dst := (v*o.k + t) * o.stride
		src := v * x.stride
		copy(o.pw[dst:dst+x.stride], x.pw[src:src+x.stride])
		top := x.pw[src+x.depth]
		for h := x.stride; h < o.stride; h++ {
			o.pw[dst+h] = top
		}
	})
}

// pwFilled reports whether tree t's pw rows were already scattered (every
// prefix-weight row starts at 0 and is non-decreasing with positive edge
// weights, so a still-zero final entry at some leaf means "not filled" —
// except for the degenerate single-node tree, which scatters zeros anyway
// and is idempotent to re-scatter).
func (o *OracleIndex) pwFilled(t int) bool {
	return o.pw[(0*o.k+t)*o.stride+o.stride-1] != 0
}

// uniformWeights reports whether every leaf's prefix-weight row in x
// matches the shared row (leaf 0's, padded) bitwise.
func (o *OracleIndex) uniformWeights(x *TreeIndex, row []float64) bool {
	return par.Reduce(o.n, true,
		func(v int) bool {
			for h, w := range x.pw[v*x.stride : (v+1)*x.stride] {
				if row[h] != w {
					return false
				}
			}
			return true
		},
		func(a, b bool) bool { return a && b })
}

// packTree renumbers one tree's per-height clusters into dense ids and
// packs them into the split-lane words (see the packed field doc).
// Renumbering is equality-preserving per (tree, height) — first-seen order
// over v = 0…n−1, independent of parallel width — which is all the
// merge-height scan compares. High-row lanes past the tree's depth repeat
// the root id, and low-row padding lanes stay zero, so padding never
// manufactures a difference. Parallelism is per word column: each column
// owns disjoint output words, renumbering its 2 or 4 heights with private
// scratch.
func (o *OracleIndex) packTree(x *TreeIndex, t int) {
	nn := x.tree.NumNodes()
	packColumn := func(heights []int, write func(v int, lane int, id uint32)) {
		id := make([]uint32, nn)
		stamp := make([]int32, nn)
		for i := range stamp {
			stamp[i] = -1
		}
		for lane, h := range heights {
			hEff := h
			if hEff > x.depth {
				hEff = x.depth
			}
			next := uint32(0)
			for v := 0; v < o.n; v++ {
				a := x.anc[v*x.stride+hEff]
				if stamp[a] != int32(lane) {
					stamp[a] = int32(lane)
					id[a] = next
					next++
				}
				write(v, lane, id[a])
			}
		}
	}
	par.ForEach(o.loWords+o.words, func(w int) {
		if w < o.loWords {
			// Low column w: heights 2w, 2w+1 (the latter only if < split).
			heights := []int{2 * w}
			if 2*w+1 < o.split {
				heights = append(heights, 2*w+1)
			}
			packColumn(heights, func(v, lane int, cid uint32) {
				o.packedLo[(v*o.k+t)*o.loWords+w] |= uint64(cid) << (uint(lane) * 32)
			})
			return
		}
		// High column: 4 heights starting at split + 4*(w - loWords).
		hw := w - o.loWords
		heights := make([]int, 4)
		for l := range heights {
			heights[l] = o.split + hw*4 + l
		}
		packColumn(heights, func(v, lane int, cid uint32) {
			o.packed[(v*o.k+t)*o.words+hw] |= uint64(cid) << (uint(lane) * 16)
		})
	})
}

// NumTrees returns the ensemble size K.
func (o *OracleIndex) NumTrees() int { return o.k }

// NumLeaves returns the number of graph nodes served.
func (o *OracleIndex) NumLeaves() int { return o.n }

// MaxDepth returns the largest tree depth in the ensemble (queries cost
// O(NumTrees · log MaxDepth)).
func (o *OracleIndex) MaxDepth() int { return o.stride - 1 }

// Min returns the smallest tree distance over the ensemble, identical (to
// the last bit) to taking the minimum of Tree.Dist over the trees: the
// per-tree distances are the same prefix sums, and trees are folded in the
// same ascending order with the same strict comparison.
//
// With the packed representation each tree's merge height — the first
// height at which the two ancestor rows agree; they agree at the shared
// root, and lockstep walks never separate once met — is found by
// XOR-comparing packed-lane words top-down (16-bit high row first, then
// the 32-bit low row holding the wide bottom heights of large graphs) and
// locating the highest differing lane with a leading-zero count. The
// binary-search int32 kernel remains as the disablePacked fallback.
func (o *OracleIndex) Min(u, v graph.Node) float64 {
	if u == v {
		return 0
	}
	ks := o.k * o.stride
	var best float64
	if o.packed != nil && o.packedLo != nil {
		// Split rows (n > 65536): per-tree scan over both packed rows.
		for t := 0; t < o.k; t++ {
			h := o.splitMergeHeight(u, v, t)
			var d float64
			if ps := o.pwShared; ps != nil {
				d = ps[t*o.stride+h] + ps[t*o.stride+h]
			} else {
				d = o.pw[int(u)*ks+t*o.stride+h] + o.pw[int(v)*ks+t*o.stride+h]
			}
			if t == 0 || d < best {
				best = d
			}
		}
		return best
	}
	if o.packed != nil {
		kw := o.k * o.words
		xu := o.packed[int(u)*kw : int(u)*kw+kw]
		xv := o.packed[int(v)*kw : int(v)*kw+kw]
		off, woff := 0, 0
		if ps := o.pwShared; ps != nil {
			// Both half-paths climb through identical level weights, so
			// d = pwShared[h] + pwShared[h] — the same bits as pw[…u…+h] +
			// pw[…v…+h] — and the query never touches the per-leaf table.
			// The word scan is inlined by hand: the Go inliner refuses
			// functions with loops, and 16 calls per query are measurable
			// on the serving path.
			for t := 0; t < o.k; t++ {
				h := 0
				for w := woff + o.words - 1; w >= woff; w-- {
					if x := xu[w] ^ xv[w]; x != 0 {
						h = (w-woff)*4 + (bits.Len64(x)-1)>>4 + 1
						break
					}
				}
				if d := ps[off+h] + ps[off+h]; t == 0 || d < best {
					best = d
				}
				off += o.stride
				woff += o.words
			}
			return best
		}
		pu, pv := o.pw[int(u)*ks:int(u)*ks+ks], o.pw[int(v)*ks:int(v)*ks+ks]
		for t := 0; t < o.k; t++ {
			h := packedMergeHeight(xu[woff:woff+o.words], xv[woff:woff+o.words])
			if d := pu[off+h] + pv[off+h]; t == 0 || d < best {
				best = d
			}
			off += o.stride
			woff += o.words
		}
		return best
	}
	bu, bv := int(u)*ks, int(v)*ks
	au, av := o.anc[bu:bu+ks], o.anc[bv:bv+ks]
	if ps := o.pwShared; ps != nil {
		for off := 0; off < ks; off += o.stride {
			h := off + mergeHeight(au[off:off+o.stride], av[off:off+o.stride])
			if d := ps[h] + ps[h]; off == 0 || d < best {
				best = d
			}
		}
		return best
	}
	pu, pv := o.pw[bu:bu+ks], o.pw[bv:bv+ks]
	for off := 0; off < ks; off += o.stride {
		h := off + mergeHeight(au[off:off+o.stride], av[off:off+o.stride])
		if d := pu[h] + pv[h]; off == 0 || d < best {
			best = d
		}
	}
	return best
}

// packedMergeHeight scans two packed 16-bit-lane rows top-down for the
// highest differing height; the merge height is one above it. With a zero
// split, distinct leaves guarantee a difference in word 0, so the scan
// always terminates with a hit for u ≠ v.
func packedMergeHeight(xu, xv []uint64) int {
	for w := len(xu) - 1; w >= 0; w-- {
		if x := xu[w] ^ xv[w]; x != 0 {
			lane := (bits.Len64(x) - 1) >> 4
			return w*4 + lane + 1
		}
	}
	return 0
}

// splitMergeHeight is packedMergeHeight for split rows: the 16-bit high
// row covers heights ≥ split, the 32-bit low row covers heights < split.
// If the high rows agree everywhere the scan drops into the low row, where
// distinct leaves guarantee a difference at height 0 (leaf clusters are
// singletons); unused low padding lanes are zero on both sides and can
// never fire.
func (o *OracleIndex) splitMergeHeight(u, v graph.Node, t int) int {
	bu, bv := (int(u)*o.k+t)*o.words, (int(v)*o.k+t)*o.words
	for w := o.words - 1; w >= 0; w-- {
		if x := o.packed[bu+w] ^ o.packed[bv+w]; x != 0 {
			return o.split + w*4 + (bits.Len64(x)-1)>>4 + 1
		}
	}
	lu, lv := (int(u)*o.k+t)*o.loWords, (int(v)*o.k+t)*o.loWords
	for w := o.loWords - 1; w >= 0; w-- {
		if x := o.packedLo[lu+w] ^ o.packedLo[lv+w]; x != 0 {
			return w*2 + (bits.Len64(x)-1)>>5 + 1
		}
	}
	return 0
}

// mergeHeight binary-searches one padded int32 row pair for the first
// height at which they agree — the fallback kernel for n > 65536.
func mergeHeight(au, av []int32) int {
	lo, hi := 0, len(au)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if au[mid] == av[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Median returns the median tree distance, identical to Ensemble.Median.
func (o *OracleIndex) Median(u, v graph.Node) float64 {
	ds := o.med.Get()
	m := o.median(u, v, *ds)
	o.med.Put(ds)
	return m
}

func (o *OracleIndex) median(u, v graph.Node, ds []float64) float64 {
	if u == v {
		return 0
	}
	o.perTreeDists(u, v, 0, o.k, ds)
	sort.Float64s(ds)
	mid := len(ds) / 2
	if len(ds)%2 == 1 {
		return ds[mid]
	}
	return (ds[mid-1] + ds[mid]) / 2
}

// perTreeDists writes the tree distance of (u, v) in every tree t ∈ [lo, hi)
// to dst[t-lo]. The per-tree values are the exact summands Min folds and
// median sorts, so a caller that folds them in ascending tree order (or
// sorts a full gather) reproduces Min/Median bitwise — the contract the
// sharded router relies on to merge partial per-tree results server-side.
func (o *OracleIndex) perTreeDists(u, v graph.Node, lo, hi int, dst []float64) {
	if u == v {
		for i := range dst[: hi-lo : hi-lo] {
			dst[i] = 0
		}
		return
	}
	ks := o.k * o.stride
	if o.packed != nil {
		for t := lo; t < hi; t++ {
			var h int
			if o.packedLo != nil {
				h = o.splitMergeHeight(u, v, t)
			} else {
				h = packedMergeHeight(
					o.packed[(int(u)*o.k+t)*o.words:(int(u)*o.k+t+1)*o.words],
					o.packed[(int(v)*o.k+t)*o.words:(int(v)*o.k+t+1)*o.words])
			}
			if ps := o.pwShared; ps != nil {
				dst[t-lo] = ps[t*o.stride+h] + ps[t*o.stride+h]
			} else {
				dst[t-lo] = o.pw[int(u)*ks+t*o.stride+h] + o.pw[int(v)*ks+t*o.stride+h]
			}
		}
		return
	}
	bu, bv := int(u)*ks, int(v)*ks
	au, av := o.anc[bu:bu+ks], o.anc[bv:bv+ks]
	for t := lo; t < hi; t++ {
		off := t * o.stride
		h := off + mergeHeight(au[off:off+o.stride], av[off:off+o.stride])
		if ps := o.pwShared; ps != nil {
			dst[t-lo] = ps[h] + ps[h]
		} else {
			dst[t-lo] = o.pw[bu+h] + o.pw[bv+h]
		}
	}
}

// PerTreeBatch answers the partial-ensemble query of the sharded serving
// tier: for every pair it computes the individual tree distances of trees
// [lo, hi), pair-major (out[i*(hi-lo) + (t-lo)] is pair i in tree t). A
// router holding shards from several workers reassembles the full K-vector
// of a pair by concatenating the shards in ascending tree order; folding
// that vector with Min's strict < (or sorting it, for Median) reproduces the
// single-process OracleIndex answers bitwise. Like MinBatch, out is reused
// when it has capacity and the filled slice is returned.
func (o *OracleIndex) PerTreeBatch(pairs []Pair, lo, hi int, out []float64) ([]float64, error) {
	if lo < 0 || hi > o.k || lo >= hi {
		return nil, fmt.Errorf("frt: tree shard [%d, %d) outside ensemble of %d trees", lo, hi, o.k)
	}
	w := hi - lo
	out = sizeFor(out, len(pairs)*w)
	par.ForEach(len(pairs), func(i int) {
		o.perTreeDists(pairs[i].U, pairs[i].V, lo, hi, out[i*w:(i+1)*w])
	})
	return out, nil
}

// MinBatch answers Min for every pair, parallelised over par.ForEach. The
// result is written into out when it has sufficient capacity (a server can
// recycle response buffers); otherwise a fresh slice is allocated. Either
// way the filled slice is returned.
func (o *OracleIndex) MinBatch(pairs []Pair, out []float64) []float64 {
	out = sizeFor(out, len(pairs))
	par.ForEach(len(pairs), func(i int) {
		out[i] = o.Min(pairs[i].U, pairs[i].V)
	})
	return out
}

// MedianBatch answers Median for every pair, parallelised over par.ForEach
// with per-item scratch borrowed from an internal pool, so steady-state
// batches allocate nothing beyond the result slice.
func (o *OracleIndex) MedianBatch(pairs []Pair, out []float64) []float64 {
	out = sizeFor(out, len(pairs))
	par.ForEach(len(pairs), func(i int) {
		ds := o.med.Get()
		out[i] = o.median(pairs[i].U, pairs[i].V, *ds)
		o.med.Put(ds)
	})
	return out
}

// sizeFor returns out resliced to length n, reallocating only when the
// capacity is insufficient.
func sizeFor(out []float64, n int) []float64 {
	if cap(out) < n {
		return make([]float64, n)
	}
	return out[:n]
}
