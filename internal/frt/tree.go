package frt

import (
	"fmt"
	"math"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// Tree is a sampled FRT tree: a hierarchy of clusters whose leaves are the
// graph nodes (§7.1 step 4). Tree nodes are dense integers; index 0 is the
// root.
//
// Every leaf sits at the same depth. The edge connecting a level-i cluster
// to its level-(i+1) parent has weight 2·β·2^i — twice the paper's β2^i.
// The doubling is a deliberate implementation choice: with edge weight
// exactly β2^i, dominance dist_T ≥ dist_H can be violated by an additive
// O(β·2^imin) term at the truncated bottom of the hierarchy, whereas with
// the doubled weights dominance holds unconditionally (if u, v first differ
// at level i they share a center at level i+1, so dist_H(u,v) ≤ 2β2^{i+1},
// while dist_T(u,v) = 2·Σ_{j≤i} 2β2^j = 4β(2^{i+1}−2^imin) ≥ 2β2^{i+1}).
// It costs only a factor 2 in the upper bound, so the expected stretch
// remains O(log n).
type Tree struct {
	// Parent[t] is the parent tree node of t, or -1 for the root.
	Parent []int32
	// EdgeWeight[t] is the weight of the edge from t to its parent (0 for
	// the root).
	EdgeWeight []float64
	// Center[t] is the "leading" graph node of the cluster, i.e. v_i of the
	// suffix (v_i, …, v_k) the tree node represents (§7.5 identifies tree
	// nodes with their leading nodes for path reconstruction).
	Center []graph.Node
	// Level[t] is the level index i of the cluster (imin ≤ i ≤ imax).
	Level []int32
	// Leaf[v] is the leaf tree node of graph node v.
	Leaf []int32
	// Beta is the random scale β ∈ [1, 2) the tree was drawn with.
	Beta float64
}

// NumNodes returns the number of tree nodes.
func (t *Tree) NumNodes() int { return len(t.Parent) }

// Depth returns the number of levels from leaf to root (every leaf has the
// same depth). An empty tree has depth 0.
func (t *Tree) Depth() int {
	if len(t.Leaf) == 0 {
		return 0
	}
	d := 0
	for u := t.Leaf[0]; u != -1; u = t.Parent[u] {
		d++
	}
	return d - 1
}

// Dist returns the tree distance between the leaves of graph nodes u and v:
// the weight of the unique tree path between them. Both leaves are at equal
// depth, so the walk climbs in lockstep until the paths merge. The two
// half-paths are summed separately, bottom-up, so the result is bitwise
// identical to TreeIndex.Dist, which answers from per-leaf prefix sums.
//
// On a tree violating the uniform-leaf-depth invariant (a structural error
// that Validate reports) Dist returns +Inf rather than panicking.
func (t *Tree) Dist(u, v graph.Node) float64 {
	if u == v {
		return 0
	}
	a, b := t.Leaf[u], t.Leaf[v]
	var du, dv float64
	for a != b {
		if a == -1 || b == -1 {
			return math.Inf(1) // leaves at unequal depth; see Validate
		}
		du += t.EdgeWeight[a]
		dv += t.EdgeWeight[b]
		a, b = t.Parent[a], t.Parent[b]
	}
	return du + dv
}

// PathToRoot returns the tree nodes from v's leaf up to the root.
func (t *Tree) PathToRoot(v graph.Node) []int32 {
	var out []int32
	for u := t.Leaf[v]; u != -1; u = t.Parent[u] {
		out = append(out, u)
	}
	return out
}

// Validate checks the structural invariants of the tree: consistent array
// lengths, a single root, acyclic parent pointers, leaves in range and at
// uniform depth, positive edge weights, and centers consistent with levels.
// It returns nil if all hold; it never panics, so it is safe to call on
// trees assembled from untrusted input (ReadTree relies on this).
func (t *Tree) Validate() error {
	n := len(t.Leaf)
	if t.NumNodes() == 0 {
		return fmt.Errorf("empty tree")
	}
	if len(t.EdgeWeight) != t.NumNodes() || len(t.Center) != t.NumNodes() || len(t.Level) != t.NumNodes() {
		return fmt.Errorf("inconsistent array lengths: %d parents, %d weights, %d centers, %d levels",
			t.NumNodes(), len(t.EdgeWeight), len(t.Center), len(t.Level))
	}
	roots := 0
	for u, p := range t.Parent {
		if p < -1 || int(p) >= t.NumNodes() {
			return fmt.Errorf("tree node %d: parent %d out of range", u, p)
		}
		if int32(u) == p {
			return fmt.Errorf("tree node %d is its own parent", u)
		}
		if p == -1 {
			roots++
			if t.EdgeWeight[u] != 0 {
				return fmt.Errorf("root with non-zero edge weight")
			}
			continue
		}
		// The negated comparison also rejects NaN, which would otherwise
		// slip past a plain <= 0 test and poison every distance query.
		if !(t.EdgeWeight[u] > 0) || math.IsInf(t.EdgeWeight[u], 1) {
			return fmt.Errorf("tree node %d: edge weight %v not positive and finite", u, t.EdgeWeight[u])
		}
		if t.Level[p] != t.Level[u]+1 {
			return fmt.Errorf("tree node %d: level %d but parent level %d", u, t.Level[u], t.Level[p])
		}
	}
	if roots != 1 {
		return fmt.Errorf("%d roots, want 1", roots)
	}
	depth := -1
	for v := 0; v < n; v++ {
		if t.Leaf[v] < 0 || int(t.Leaf[v]) >= t.NumNodes() {
			return fmt.Errorf("leaf of %d out of range: %d", v, t.Leaf[v])
		}
		d := 0
		for u := t.Leaf[v]; u != -1; u = t.Parent[u] {
			d++
			if d > t.NumNodes() {
				return fmt.Errorf("cycle in parent pointers")
			}
		}
		if depth == -1 {
			depth = d
		} else if d != depth {
			return fmt.Errorf("leaf depths differ: %d vs %d", d, depth)
		}
		if t.Center[t.Leaf[v]] != graph.Node(v) {
			return fmt.Errorf("leaf of %d has center %d", v, t.Center[t.Leaf[v]])
		}
	}
	return nil
}

// BuildTree assembles the FRT tree from LE lists (Lemma 7.2). lists[v] must
// be the complete LE list of node v w.r.t. a distance function on which the
// construction is to be performed (the distances of H in the main pipeline),
// ordered arbitrarily; beta is the random scale β ∈ [1, 2).
//
// For each level i with radius r_i = β·2^i, node v's level-i center is
// v_i = min{w | dist(v,w) ≤ r_i} — readable directly off the LE list, since
// LE entries by increasing distance have strictly decreasing ranks. The
// level range [imin, imax] is chosen so that r_imin is below the smallest
// non-zero LE distance (leaf clusters are singletons) and r_imax reaches
// every node's final LE entry (a single root, centered at the rank-0 node).
func BuildTree(lists []semiring.DistMap, order *Order, beta float64) (*Tree, error) {
	n := len(lists)
	if n == 0 {
		return nil, fmt.Errorf("frt: no LE lists")
	}
	if beta < 1 || beta >= 2 {
		return nil, fmt.Errorf("frt: beta %v outside [1,2)", beta)
	}
	// Sort every list and reduce the distance range in parallel: the
	// per-node sorts are independent, and min/max are order-free, so the
	// result is identical at any parallel width. Validation failures record
	// the lowest offending node so the error matches the serial scan's.
	sorted := make([]semiring.DistMap, n)
	type rangeAcc struct {
		dmin, dmax float64
		badEmpty   int // lowest node with an empty list, or n
		badSelf    int // lowest node whose list lacks self@0, or n
	}
	acc := par.Reduce(n,
		rangeAcc{dmin: semiring.Inf, badEmpty: n, badSelf: n},
		func(v int) rangeAcc {
			r := rangeAcc{dmin: semiring.Inf, badEmpty: n, badSelf: n}
			l := lists[v]
			if l.Len() == 0 {
				r.badEmpty = v
				return r
			}
			s := SortByDist(l)
			if s.Node(0) != graph.Node(v) || s.Dist(0) != 0 {
				r.badSelf = v
				return r
			}
			sorted[v] = s
			if s.Len() > 1 {
				r.dmin = s.Dist(1)
			}
			r.dmax = s.Dist(s.Len() - 1)
			return r
		},
		func(a, b rangeAcc) rangeAcc {
			if b.dmin < a.dmin {
				a.dmin = b.dmin
			}
			if b.dmax > a.dmax {
				a.dmax = b.dmax
			}
			if b.badEmpty < a.badEmpty {
				a.badEmpty = b.badEmpty
			}
			if b.badSelf < a.badSelf {
				a.badSelf = b.badSelf
			}
			return a
		})
	if acc.badEmpty < n && acc.badEmpty <= acc.badSelf {
		return nil, fmt.Errorf("frt: empty LE list at node %d", acc.badEmpty)
	}
	if acc.badSelf < n {
		return nil, fmt.Errorf("frt: LE list of %d lacks self at distance 0", acc.badSelf)
	}
	dmin, dmax := acc.dmin, acc.dmax
	if semiring.IsInf(dmin) {
		dmin = 1 // single-node graph: any scale works
	}
	if dmax <= 0 {
		dmax = dmin
	}
	// r_i = beta * 2^i. Choose imin with r_imin < dmin and imax with
	// r_imax ≥ dmax.
	imin := int(math.Floor(math.Log2(dmin / beta)))
	for beta*math.Pow(2, float64(imin)) >= dmin {
		imin--
	}
	imax := int(math.Ceil(math.Log2(dmax / beta)))
	for beta*math.Pow(2, float64(imax)) < dmax {
		imax++
	}

	// v's level-i center is the last LE entry with distance ≤ r_i. The sweep
	// below visits levels top-down with strictly shrinking radii, so each
	// node keeps a cursor into its sorted list that only ever moves left:
	// total center work per node is O(len + levels) instead of O(len·levels),
	// and the per-level cursor advance is embarrassingly parallel. Entry 0 is
	// self at distance 0 ≤ r, so the cursor never underflows.
	cursor := make([]int32, n)
	advance := func(i int) {
		r := beta * math.Pow(2, float64(i))
		par.ForEach(n, func(v int) {
			s := sorted[v]
			j := cursor[v]
			for j > 0 && s.Dist(int(j)) > r {
				j--
			}
			cursor[v] = j
		})
	}
	centerAt := func(v int) graph.Node { return sorted[v].Node(int(cursor[v])) }

	tree := &Tree{Beta: beta, Leaf: make([]int32, n)}
	addNode := func(parent int32, c graph.Node, level int, w float64) int32 {
		id := int32(len(tree.Parent))
		tree.Parent = append(tree.Parent, parent)
		tree.EdgeWeight = append(tree.EdgeWeight, w)
		tree.Center = append(tree.Center, c)
		tree.Level = append(tree.Level, int32(level))
		return id
	}

	// Root: all nodes share the center at level imax (the rank-0 node).
	// Start every cursor at the end of its list and pull it back to r_imax.
	for v := 0; v < n; v++ {
		cursor[v] = int32(sorted[v].Len() - 1)
	}
	advance(imax)
	rootCenter := centerAt(0)
	agree := par.Reduce(n, true,
		func(v int) bool { return centerAt(v) == rootCenter },
		func(a, b bool) bool { return a && b })
	if !agree {
		return nil, fmt.Errorf("frt: no common root at level %d", imax)
	}
	root := addNode(-1, rootCenter, imax, 0)

	// Sweep levels top-down, splitting each cluster by its members' centers.
	// Cluster ids are assigned by the serial v-order loop, so the tree is
	// byte-identical at any parallel width.
	cur := make([]int32, n)
	for v := range cur {
		cur[v] = root
	}
	type key struct {
		parent int32
		center graph.Node
	}
	for i := imax - 1; i >= imin; i-- {
		advance(i)
		ids := make(map[key]int32)
		w := 2 * beta * math.Pow(2, float64(i)) // doubled weight; see Tree doc
		for v := 0; v < n; v++ {
			k := key{parent: cur[v], center: centerAt(v)}
			id, ok := ids[k]
			if !ok {
				id = addNode(k.parent, k.center, i, w)
				ids[k] = id
			}
			cur[v] = id
		}
	}
	for v := 0; v < n; v++ {
		tree.Leaf[v] = cur[v]
		if tree.Center[cur[v]] != graph.Node(v) {
			return nil, fmt.Errorf("frt: leaf cluster of %d centered at %d — imin not below minimum distance", v, tree.Center[cur[v]])
		}
	}
	return tree, nil
}

// RandomBeta draws β ∈ [1, 2) from the FRT distribution (§7.1 step 1):
// density 1/(β ln 2), realised as β = 2^U with U uniform in [0, 1). This is
// the scale distribution the O(log n) expected-stretch analysis of [19]
// assumes.
func RandomBeta(rng *par.RNG) float64 {
	return math.Pow(2, rng.Float64())
}
