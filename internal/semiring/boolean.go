package semiring

// Boolean is the Boolean semiring B = ({0,1}, ∨, ∧) of §3.4, used for
// connectivity queries: matrix powers over Boolean tell which node pairs are
// connected by ≤ h-hop paths (Equation 3.30).
type Boolean struct{}

// Add returns a ∨ b.
func (Boolean) Add(a, b bool) bool { return a || b }

// Mul returns a ∧ b.
func (Boolean) Mul(a, b bool) bool { return a && b }

// Zero returns false.
func (Boolean) Zero() bool { return false }

// One returns true.
func (Boolean) One() bool { return true }

// Equal reports a == b.
func (Boolean) Equal(a, b bool) bool { return a == b }

// BoolSet is the power semimodule B^V over the Boolean semiring, represented
// sparsely as a sorted set of node IDs with a true entry. It backs the
// multi-source connectivity algorithm of Example 3.25.
type BoolSet struct{}

// Add returns the union of x and y. Both inputs must be sorted; the result
// is sorted.
func (BoolSet) Add(x, y []NodeID) []NodeID {
	if len(x) == 0 {
		return y
	}
	if len(y) == 0 {
		return x
	}
	out := make([]NodeID, 0, len(x)+len(y))
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			out = append(out, x[i])
			i++
		case x[i] > y[j]:
			out = append(out, y[j])
			j++
		default:
			out = append(out, x[i])
			i++
			j++
		}
	}
	out = append(out, x[i:]...)
	out = append(out, y[j:]...)
	return out
}

// SMul returns x if s is true and the empty set otherwise (propagating over
// a non-edge loses the information).
func (BoolSet) SMul(s bool, x []NodeID) []NodeID {
	if !s {
		return nil
	}
	return x
}

// Aggregate implements the Aggregator fast path: the k-way union of self
// and every neighbor set whose edge propagates (s = true), in one merge.
// The result is freshly allocated and never aliases an input.
func (BoolSet) Aggregate(sc *Scratch, self []NodeID, terms []Term[bool, []NodeID]) []NodeID {
	lists := sc.sets[:0]
	total := 0
	if len(self) > 0 {
		lists = append(lists, self)
		total += len(self)
	}
	for _, t := range terms {
		if !t.S || len(t.X) == 0 {
			continue
		}
		lists = append(lists, t.X)
		total += len(t.X)
	}
	var out []NodeID
	if total > 0 {
		out = make([]NodeID, 0, total)
		mergeSorted(sc, lists, func(v NodeID) NodeID { return v },
			func(_ int32, v NodeID, first bool) {
				if first {
					out = append(out, v)
				}
			})
	}
	for i := range lists {
		lists[i] = nil
	}
	sc.sets = lists[:0]
	return out
}

// Zero returns the empty set.
func (BoolSet) Zero() []NodeID { return nil }

// Equal reports element-wise equality of the sorted sets.
func (BoolSet) Equal(x, y []NodeID) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

var (
	_ Semiring[bool]             = Boolean{}
	_ Aggregator[bool, []NodeID] = BoolSet{}
)
