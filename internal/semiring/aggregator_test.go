package semiring

// Differential and ownership tests for the Aggregator fast path: Aggregate
// must equal the Add/SMul fold exactly, must not mutate its inputs, and must
// return a value that shares no storage with them — the contract the engine
// relies on when it applies in-place filters to merged results.

import (
	"math/rand"
	"testing"
)

func randDistMap(rng *rand.Rand, n int) DistMap {
	out := DistMap{}
	for v := 0; v < n; v++ {
		if rng.Intn(3) == 0 {
			out = out.Append(NodeID(v), float64(rng.Intn(50))/2)
		}
	}
	return out
}

func randWidthMap(rng *rand.Rand, n int) WidthMap {
	var out WidthMap
	for v := 0; v < n; v++ {
		if rng.Intn(3) == 0 {
			out = append(out, WidthEntry{Node: NodeID(v), Width: 0.5 + float64(rng.Intn(40))/2})
		}
	}
	return out
}

func randNodeSet(rng *rand.Rand, n int) []NodeID {
	var out []NodeID
	for v := 0; v < n; v++ {
		if rng.Intn(3) == 0 {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// foldDist is the generic-path reference: the left fold of Definition 2.11.
func foldDist(self DistMap, terms []Term[float64, DistMap]) DistMap {
	var mod DistMapModule
	acc := self
	for _, t := range terms {
		acc = mod.Add(acc, mod.SMul(t.S, t.X))
	}
	return acc
}

func TestAggregateDistMapMatchesFold(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var mod DistMapModule
	var sc Scratch // deliberately shared across rounds: reuse must be safe
	for round := 0; round < 500; round++ {
		self := randDistMap(rng, 24)
		terms := make([]Term[float64, DistMap], rng.Intn(7))
		for i := range terms {
			s := float64(rng.Intn(6)) // includes 0, the scalar identity
			if rng.Intn(8) == 0 {
				s = Inf // dead edge
			}
			terms[i] = Term[float64, DistMap]{S: s, X: randDistMap(rng, 24)}
		}
		want := foldDist(self, terms)
		got := mod.Aggregate(&sc, self, terms)
		if !mod.Equal(got, want) {
			t.Fatalf("round %d: Aggregate %v != fold %v (self %v)", round, got, want, self)
		}
	}
}

func TestAggregateWidthMapMatchesFold(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var mod WidthMapModule
	var sc Scratch
	for round := 0; round < 500; round++ {
		self := randWidthMap(rng, 24)
		terms := make([]Term[float64, WidthMap], rng.Intn(7))
		for i := range terms {
			s := float64(rng.Intn(6)) / 2 // includes 0, the annihilator
			if rng.Intn(8) == 0 {
				s = Inf // infinite-width edge: the scalar identity
			}
			terms[i] = Term[float64, WidthMap]{S: s, X: randWidthMap(rng, 24)}
		}
		acc := self
		for _, tm := range terms {
			acc = mod.Add(acc, mod.SMul(tm.S, tm.X))
		}
		got := mod.Aggregate(&sc, self, terms)
		if !mod.Equal(got, acc) {
			t.Fatalf("round %d: Aggregate %v != fold %v", round, got, acc)
		}
	}
}

func TestAggregateBoolSetMatchesFold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var mod BoolSet
	var sc Scratch
	for round := 0; round < 500; round++ {
		self := randNodeSet(rng, 24)
		terms := make([]Term[bool, []NodeID], rng.Intn(7))
		for i := range terms {
			terms[i] = Term[bool, []NodeID]{S: rng.Intn(4) > 0, X: randNodeSet(rng, 24)}
		}
		acc := self
		for _, tm := range terms {
			acc = mod.Add(acc, mod.SMul(tm.S, tm.X))
		}
		got := mod.Aggregate(&sc, self, terms)
		if !mod.Equal(got, acc) {
			t.Fatalf("round %d: Aggregate %v != fold %v", round, got, acc)
		}
	}
}

func TestAggregateScalarModulesMatchFold(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var mp MinPlusSelf
	var mm MaxMinSelf
	randVal := func() float64 {
		if rng.Intn(6) == 0 {
			return Inf
		}
		return float64(rng.Intn(30)) / 2
	}
	for round := 0; round < 500; round++ {
		selfD, selfW := randVal(), float64(rng.Intn(20))
		terms := make([]Term[float64, float64], rng.Intn(7))
		accD, accW := selfD, selfW
		for i := range terms {
			terms[i] = Term[float64, float64]{S: randVal(), X: randVal()}
			accD = mp.Add(accD, mp.SMul(terms[i].S, terms[i].X))
			accW = mm.Add(accW, mm.SMul(terms[i].S, terms[i].X))
		}
		if got := mp.Aggregate(nil, selfD, terms); got != accD {
			t.Fatalf("round %d: MinPlusSelf.Aggregate %v != fold %v", round, got, accD)
		}
		if got := mm.Aggregate(nil, selfW, terms); got != accW {
			t.Fatalf("round %d: MaxMinSelf.Aggregate %v != fold %v", round, got, accW)
		}
	}
}

// TestAggregateOwnershipFuzz is the alias/mutation fuzz of the scratch-reuse
// contract: Aggregate must leave every input byte-identical, and its result
// must be mutable without corrupting any input — even when the same Scratch
// is reused across calls, as the engine's per-worker pools do.
func TestAggregateOwnershipFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var mod DistMapModule
	var sc Scratch
	for round := 0; round < 300; round++ {
		self := randDistMap(rng, 32)
		terms := make([]Term[float64, DistMap], 1+rng.Intn(6))
		for i := range terms {
			terms[i] = Term[float64, DistMap]{S: float64(rng.Intn(5)), X: randDistMap(rng, 32)}
		}
		selfCopy := self.Clone()
		termCopies := make([]DistMap, len(terms))
		for i, tm := range terms {
			termCopies[i] = tm.X.Clone()
		}

		out := mod.Aggregate(&sc, self, terms)
		// Scribble over the result (legal: the caller owns it exclusively):
		// inputs must not see it.
		mod.SMulInPlace(1000, out)
		out.SortFunc(func(a, b Entry) bool { return a.Node > b.Node })
		if !mod.Equal(self, selfCopy) {
			t.Fatalf("round %d: Aggregate (or mutating its result) changed self: %v != %v", round, self, selfCopy)
		}
		for i, tm := range terms {
			if !mod.Equal(tm.X, termCopies[i]) {
				t.Fatalf("round %d: Aggregate (or mutating its result) changed term %d: %v != %v", round, i, tm.X, termCopies[i])
			}
		}
	}
}

// TestDistMapSafeAliasing pins the documented safe-aliasing contract: the
// identity cases of SMul and Add return their input unchanged (aliased), so
// the algebra's outputs must be treated as immutable. The mutation-detection
// half asserts that the non-identity operations never write to their inputs.
func TestDistMapSafeAliasing(t *testing.T) {
	var mod DistMapModule
	x := FromEntries(Entry{Node: 1, Dist: 2}, Entry{Node: 5, Dist: 0.5})

	// s == 0 is the scalar identity: the input itself comes back.
	y := mod.SMul(0, x)
	if &y.ids[0] != &x.ids[0] || &y.ds[0] != &x.ds[0] {
		t.Fatal("SMul(0, x) no longer aliases x; update the documented contract")
	}
	// Add with an empty side returns the other side aliased.
	if z := mod.Add(DistMap{}, x); &z.ids[0] != &x.ids[0] || &z.ds[0] != &x.ds[0] {
		t.Fatal("Add(⊥, x) no longer aliases x; update the documented contract")
	}
	// SMul shares the input's ID array and pairs it with fresh distances.
	if z := mod.SMul(3, x); &z.ids[0] != &x.ids[0] {
		t.Fatal("SMul no longer shares the ID array; update the documented contract")
	} else if &z.ds[0] == &x.ds[0] {
		t.Fatal("SMul shares the distance array; shifting would corrupt x")
	}

	// Mutation detection: shifting, merging, and filtering leave x intact.
	before := x.Clone()
	_ = mod.SMul(3, x)
	_ = mod.Add(x, FromEntries(Entry{Node: 0, Dist: 1}, Entry{Node: 5, Dist: 0.25}))
	_ = TopKFilter(1, Inf, nil)(x)
	if !mod.Equal(x, before) {
		t.Fatalf("algebra operation mutated its input: %v != %v", x, before)
	}

	// SMulInPlace is the explicit opt-out: it writes through x.
	owned := x.Clone()
	shifted := mod.SMulInPlace(2, owned)
	if &shifted.ds[0] != &owned.ds[0] {
		t.Fatal("SMulInPlace allocated; it must reuse the caller's storage")
	}
	for i := 0; i < shifted.Len(); i++ {
		if shifted.Dist(i) != x.Dist(i)+2 {
			t.Fatalf("SMulInPlace entry %d = %v, want dist %v", i, shifted.Entry(i), x.Dist(i)+2)
		}
	}
}

// TestTopKFilterInPlaceMatchesTopKFilter pins the two filter variants to the
// same function; the in-place one additionally reuses the input's storage.
func TestTopKFilterInPlaceMatchesTopKFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sources := func(v NodeID) bool { return v%3 != 2 }
	for round := 0; round < 300; round++ {
		k := rng.Intn(5) // includes 0: unbounded
		maxDist := float64(rng.Intn(20))
		x := randDistMap(rng, 32)
		pure := TopKFilter(k, maxDist, sources)
		inPlace := TopKFilterInPlace(k, maxDist, sources)
		want := pure(x)
		got := inPlace(x.Clone())
		if !(DistMapModule{}).Equal(got, want) {
			t.Fatalf("round %d (k=%d, maxDist=%v): in-place %v != pure %v", round, k, maxDist, got, want)
		}
	}
}
