package semiring

// This file defines the optional fast-aggregation interface of semimodules.
//
// One MBF-like iteration aggregates, at every node v, the propagated states
// of its neighbors: x'(v) = x(v) ⊕ ⊕_w a_{vw} ⊙ x(w). Folding Add/SMul
// pairwise materialises a fresh intermediate per neighbor and re-copies the
// accumulator each step — O(d·k) allocation churn for degree d and state
// size k. Lemma 2.3 of the paper aggregates all k inputs in ONE merge; the
// Aggregator interface exposes exactly that: the engine hands a semimodule
// the whole neighborhood at once and the module merges the sorted entry
// lists through a 4-ary heap of cursors, allocating only the result.
//
// Implementing Aggregator is optional. The engine (mbf.Runner) type-asserts
// for it and falls back to the generic Add/SMul fold, so Definition 2.11
// semantics are defined solely by the Semimodule laws; Aggregate must be
// extensionally equal to the fold (the differential tests in internal/mbf
// pin this on random graphs for every module below).

// Term is one summand s ⊙ x of a k-way aggregation: S is the
// adjacency-matrix entry of the edge and X the neighbor's state.
type Term[S, M any] struct {
	S S
	X M
}

// Aggregator is the optional fast-aggregation interface of a semimodule.
// Implement it when states are sorted entry lists (or scalars) whose ⊕ is a
// positional merge; stay with the generic fold when aggregation genuinely
// combines whole values (e.g. the all-paths semiring, whose ⊕ unions path
// sets of heterogeneous keys).
type Aggregator[S, M any] interface {
	Semimodule[S, M]

	// Aggregate returns
	//
	//	self ⊕ ⊕_i terms[i].S ⊙ terms[i].X
	//
	// computed as one k-way merge instead of a left fold of Add/SMul. It
	// must equal the fold exactly.
	//
	// Ownership: the result never aliases self, any term, or sc — the
	// caller owns it exclusively and may mutate it (e.g. apply an in-place
	// filter). terms and sc are caller-owned scratch, reused across calls;
	// Aggregate must not retain references to either.
	Aggregate(sc *Scratch, self M, terms []Term[S, M]) M
}

// FilteredAggregator is the optional fused aggregate-then-filter fast path
// of a semimodule. A filtered MBF-like iteration discards most of the merged
// neighborhood immediately — a top-k projection keeps k entries of a merge
// that produced many more — so allocating the full merge result only to
// truncate it wastes allocation bytes and leaves the retained states
// over-sized for the next iteration's reads. AggregateFiltered merges into
// scratch-owned buffers, applies the filter there, and allocates only the
// surviving entries: the per-node allocation is sized to the filtered
// output, and state vectors stay cache-dense.
type FilteredAggregator[S, M any] interface {
	Aggregator[S, M]

	// AggregateFiltered returns filter(self ⊕ ⊕_i terms[i].S ⊙ terms[i].X),
	// or the plain aggregation when filter is nil. It must equal
	// filter(Aggregate(sc, self, terms)) exactly. The filter is applied to a
	// scratch-backed intermediate the module owns exclusively, so engines
	// pass their in-place filter variant when they have one; the filter must
	// not retain its argument. The result is freshly allocated, right-sized,
	// and never aliases self, any term, sc, or the filter's argument.
	AggregateFiltered(sc *Scratch, self M, terms []Term[S, M], filter Filter[M]) M
}

// BatchAggregator is the optional batched fast path of a semimodule: one
// call aggregates B independent lanes — selfs[b] ⊕ ⊕_i terms[b][i] for every
// lane b — over a single shared Scratch, so the merge buffers stay hot
// across lanes. It backs the batched multi-source sweep (mbf.Runner's
// IterateBatch/RunToFixpointBatch), where one pass over the CSR arcs
// gathers every lane's terms at once.
//
// outs must have length len(selfs); outs[b] receives lane b's result, which
// must equal Aggregate(sc, selfs[b], terms[b]) exactly and never alias an
// input. Engines fall back to per-lane Aggregate (or the generic fold) when
// a module does not implement it.
type BatchAggregator[S, M any] interface {
	Aggregator[S, M]
	AggregateBatch(sc *Scratch, selfs []M, terms [][]Term[S, M], outs []M)
}

// Scratch holds the reusable buffers of Aggregate: the k-way-merge cursor
// heap, per-module list headers, and the reduction arenas of the SoA
// distance-map kernel (distmerge.go). A zero Scratch is ready to use;
// engines keep one per worker (mbf.Runner recycles them through a
// sync.Pool) so steady-state aggregation allocates nothing beyond the
// merged result.
type Scratch struct {
	pos    []int32
	heap   []mergeCursor
	shifts []float64
	width  []WidthMap
	routes []RouteMap
	vias   []NodeID
	sets   [][]NodeID
	// SoA distance-map kernel state: per-list ID/distance headers, the
	// reduction-round group headers, and the two ping-pong arenas.
	dIds    [][]NodeID
	dDs     [][]float64
	rIds    [][]NodeID
	rDs     [][]float64
	rShifts []float64
	arenas  [2]mergeArena
	// out is the scratch-owned merge output of the fused
	// aggregate-then-filter path (AggregateFiltered).
	out mergeArena
}

// mergeArena is one reduction-round output buffer of the SoA kernel.
type mergeArena struct {
	ids []NodeID
	ds  []float64
}

// grow pre-sizes the k-way-merge buffers for k lists in one place, so a
// fresh (or pool-recycled) Scratch does not re-grow pos/heap one append at
// a time on its first large-degree node. Pinned by the allocs-per-op
// regression test in distmerge_test.go.
func (sc *Scratch) grow(k int) {
	if cap(sc.pos) < k {
		sc.pos = make([]int32, 0, k)
		sc.heap = make([]mergeCursor, 0, k)
	}
}

// growDist pre-sizes the SoA distance-map kernel buffers for k lists.
func (sc *Scratch) growDist(k int) {
	if cap(sc.dIds) < k {
		sc.dIds = make([][]NodeID, 0, k)
		sc.dDs = make([][]float64, 0, k)
		sc.shifts = make([]float64, 0, k)
	}
	if k > 8 {
		groups := (k + 7) / 8
		if cap(sc.rIds) < groups {
			sc.rIds = make([][]NodeID, 0, groups)
			sc.rDs = make([][]float64, 0, groups)
			sc.rShifts = make([]float64, 0, groups)
		}
		if k > heapMergeMinLists {
			sc.grow(k)
		}
	}
}

// mergeCursor is one heap element of the k-way merge: the current node ID of
// list li. Ordering is by (node, li), so elements with equal node IDs are
// visited in list order.
type mergeCursor struct {
	node NodeID
	li   int32
}

func cursorLess(a, b mergeCursor) bool {
	return a.node < b.node || (a.node == b.node && a.li < b.li)
}

// siftDown restores the 4-ary min-heap property at index i (children of i
// are 4i+1 … 4i+4). A 4-ary layout halves the tree height of a binary heap
// and keeps the children of a node in one cache line.
func siftDown(h []mergeCursor, i int) {
	for {
		best := i
		hi := 4*i + 4
		if hi >= len(h) {
			hi = len(h) - 1
		}
		for c := 4*i + 1; c <= hi; c++ {
			if cursorLess(h[c], h[best]) {
				best = c
			}
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// mergeSorted walks the k-way merge of sorted entry lists in ascending node
// order: visit(li, e, first) is called once per element, with first marking
// the start of a new node-ID group. Elements with equal node IDs are visited
// in ascending list order, matching the left fold's combination order. Each
// list must be strictly sorted by node ID (the representation invariant of
// the sparse modules).
//
// k ≤ 2 merges directly; larger k runs a 4-ary heap of cursors over sc,
// costing O(N log₄ k) comparisons for N total entries.
func mergeSorted[L ~[]E, E any](sc *Scratch, lists []L, node func(E) NodeID, visit func(li int32, e E, first bool)) {
	sc.grow(len(lists))
	switch len(lists) {
	case 0:
		return
	case 1:
		for _, e := range lists[0] {
			visit(0, e, true)
		}
		return
	case 2:
		a, b := lists[0], lists[1]
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			an, bn := node(a[i]), node(b[j])
			switch {
			case an < bn:
				visit(0, a[i], true)
				i++
			case an > bn:
				visit(1, b[j], true)
				j++
			default:
				visit(0, a[i], true)
				visit(1, b[j], false)
				i++
				j++
			}
		}
		for ; i < len(a); i++ {
			visit(0, a[i], true)
		}
		for ; j < len(b); j++ {
			visit(1, b[j], true)
		}
		return
	}
	pos := sc.pos[:0]
	heap := sc.heap[:0]
	for li, l := range lists {
		pos = append(pos, 0)
		if len(l) > 0 {
			heap = append(heap, mergeCursor{node: node(l[0]), li: int32(li)})
		}
	}
	for i := (len(heap) - 2) / 4; i >= 0; i-- {
		siftDown(heap, i)
	}
	last := NodeID(-1)
	for len(heap) > 0 {
		cur := heap[0]
		li := cur.li
		e := lists[li][pos[li]]
		visit(li, e, cur.node != last)
		last = cur.node
		pos[li]++
		if int(pos[li]) < len(lists[li]) {
			heap[0].node = node(lists[li][pos[li]])
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
			if len(heap) == 0 {
				break
			}
		}
		siftDown(heap, 0)
	}
	sc.pos, sc.heap = pos[:0], heap[:0]
}
