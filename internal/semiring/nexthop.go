package semiring

// This file adds a routing algebra to the toolbox: distance computations
// that also record the first hop of a shortest path, so that MBF-like
// algorithms produce usable routing tables (§7.5 of the paper relies on
// exactly this: "nodes locally store the predecessor of shortest paths just
// like in APSP").
//
// The scalar semiring is min-plus enriched with a "via" node: multiplying
// path segments keeps the first segment's entry hop (left bias), addition
// keeps the shorter segment. The semimodule holds sparse routing entries
// (target, distance, next hop).

// NoVia is the sentinel "no hop recorded": the multiplicative identity
// keeps whatever hop the other operand carries.
const NoVia NodeID = -1

// Hop is a min-plus scalar enriched with the first hop of the path it
// measures.
type Hop struct {
	W   float64
	Via NodeID
}

// HopSemiring is the enriched min-plus semiring.
//
// Addition takes the smaller weight, breaking ties towards the smaller Via
// (making it commutative and associative). Multiplication adds weights and
// keeps the leftmost recorded Via, so that in a product a_{v u1} ⊙ a_{u1 u2}
// ⊙ … the surviving Via is v's first hop u1.
//
// Caveat: the semiring laws hold exactly on the weight component; on *ties*
// the Via component depends on evaluation order (left- vs right-factored
// products can surface different equally short first hops). Every choice is
// a correct next hop — the routing invariant the tests verify — so the
// MBF-like engine, which only needs the semimodule operations below, is
// unaffected. This is the same phenomenon that forces Mohri's framework to
// assume a processing order for its tie-sensitive semirings (§1.1 of the
// paper, discussion item (4)).
type HopSemiring struct{}

// Add returns the lighter scalar (ties: smaller Via).
func (HopSemiring) Add(a, b Hop) Hop {
	if a.W < b.W {
		return a
	}
	if b.W < a.W {
		return b
	}
	if a.Via <= b.Via {
		return a
	}
	return b
}

// Mul adds the weights and keeps the leftmost non-sentinel Via.
func (HopSemiring) Mul(a, b Hop) Hop {
	out := Hop{W: a.W + b.W, Via: a.Via}
	if out.Via == NoVia {
		out.Via = b.Via
	}
	if IsInf(out.W) {
		out.Via = NoVia // the annihilator is unique
	}
	return out
}

// Zero returns the annihilator (∞, NoVia).
func (HopSemiring) Zero() Hop { return Hop{W: Inf, Via: NoVia} }

// One returns the identity (0, NoVia).
func (HopSemiring) One() Hop { return Hop{W: 0, Via: NoVia} }

// Equal reports exact equality.
func (HopSemiring) Equal(a, b Hop) bool { return a == b }

var _ Semiring[Hop] = HopSemiring{}

// Route is one routing-table entry: Target is reachable at distance Dist,
// leaving through neighbor Next (NoVia when Target is the node itself).
type Route struct {
	Target NodeID
	Dist   float64
	Next   NodeID
}

// RouteMap is a sparse routing table, sorted by target.
type RouteMap []Route

// RouteMapModule is the zero-preserving semimodule of routing tables over
// HopSemiring: aggregation keeps the best route per target (ties: smaller
// next hop), propagation over an edge adds the edge weight and stamps the
// edge's Via as the next hop of every entry.
type RouteMapModule struct{}

// Add merges two sorted tables keeping the better route per target.
func (RouteMapModule) Add(x, y RouteMap) RouteMap {
	if len(x) == 0 {
		return y
	}
	if len(y) == 0 {
		return x
	}
	out := make(RouteMap, 0, len(x)+len(y))
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i].Target < y[j].Target:
			out = append(out, x[i])
			i++
		case x[i].Target > y[j].Target:
			out = append(out, y[j])
			j++
		default:
			best := x[i]
			if y[j].Dist < best.Dist || (y[j].Dist == best.Dist && y[j].Next < best.Next) {
				best = y[j]
			}
			out = append(out, best)
			i++
			j++
		}
	}
	out = append(out, x[i:]...)
	out = append(out, y[j:]...)
	return out
}

// SMul relaxes every entry over the scalar: weights increase by s.W, and a
// non-sentinel s.Via replaces the next hop (the entry now leaves through
// that edge).
func (RouteMapModule) SMul(s Hop, x RouteMap) RouteMap {
	if IsInf(s.W) || len(x) == 0 {
		return nil
	}
	out := make(RouteMap, len(x))
	for i, r := range x {
		next := s.Via
		if next == NoVia {
			next = r.Next
		}
		out[i] = Route{Target: r.Target, Dist: r.Dist + s.W, Next: next}
	}
	return out
}

// Aggregate implements the Aggregator fast path: one k-way merge of self and
// the propagated neighbor tables — per target the lightest route, ties broken
// towards the smaller next hop exactly as Add does — instead of a fold of
// Add/SMul that materialises one intermediate table per neighbor. SMul is
// applied on the fly: list li's entries are shifted by shifts[li] and
// rerouted through vias[li], where NoVia keeps the entry's own hop (which is
// also how the self list rides the merge unscaled). Terms with an ∞ scalar
// or empty tables are skipped; the result is freshly allocated and never
// aliases an input.
//
// Ties on both Dist and Next mean identical Route values, so the per-target
// minimum is order-independent and the merge equals the left fold exactly —
// the differential test in internal/mbf pins this on random graphs.
func (RouteMapModule) Aggregate(sc *Scratch, self RouteMap, terms []Term[Hop, RouteMap]) RouteMap {
	lists := sc.routes[:0]
	shifts := sc.shifts[:0]
	vias := sc.vias[:0]
	total := 0
	if len(self) > 0 {
		lists = append(lists, self)
		shifts = append(shifts, 0)
		vias = append(vias, NoVia)
		total += len(self)
	}
	for _, t := range terms {
		if IsInf(t.S.W) || len(t.X) == 0 {
			continue // SMul's annihilator: the term contributes nothing
		}
		lists = append(lists, t.X)
		shifts = append(shifts, t.S.W)
		vias = append(vias, t.S.Via)
		total += len(t.X)
	}
	var out RouteMap
	if total > 0 {
		out = make(RouteMap, 0, total)
		mergeSorted(sc, lists, func(r Route) NodeID { return r.Target },
			func(li int32, r Route, first bool) {
				dist := r.Dist + shifts[li]
				next := vias[li]
				if next == NoVia {
					next = r.Next
				}
				if !first {
					if best := &out[len(out)-1]; dist < best.Dist || (dist == best.Dist && next < best.Next) {
						best.Dist, best.Next = dist, next
					}
					return
				}
				out = append(out, Route{Target: r.Target, Dist: dist, Next: next})
			})
	}
	for i := range lists {
		lists[i] = nil
	}
	sc.routes, sc.shifts, sc.vias = lists[:0], shifts[:0], vias[:0]
	if len(out) == 0 {
		return nil
	}
	return out
}

var _ Aggregator[Hop, RouteMap] = RouteMapModule{}

// Zero returns the empty table.
func (RouteMapModule) Zero() RouteMap { return nil }

// Equal reports entry-wise equality.
func (RouteMapModule) Equal(x, y RouteMap) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

var _ Semimodule[Hop, RouteMap] = RouteMapModule{}

// Get returns the route for target, or a zero Route and false.
func (x RouteMap) Get(target NodeID) (Route, bool) {
	for _, r := range x {
		if r.Target == target {
			return r, true
		}
		if r.Target > target {
			break
		}
	}
	return Route{}, false
}
