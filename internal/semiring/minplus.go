package semiring

import "math"

// Inf is the additive identity (the "zero") of the min-plus semiring: the
// distance value meaning "unreachable".
var Inf = math.Inf(1)

// IsInf reports whether d is the min-plus zero.
func IsInf(d float64) bool { return math.IsInf(d, 1) }

// MinPlus is the tropical semiring S_{min,+} = (ℝ≥0 ∪ {∞}, min, +) of
// Definition A.2 / §1.2, the workhorse for distance computations: matrix
// powers over MinPlus yield h-hop distances (Lemma 3.1).
type MinPlus struct{}

// Add returns min(a, b).
func (MinPlus) Add(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Mul returns a + b with ∞ absorbing.
func (MinPlus) Mul(a, b float64) float64 {
	// IEEE float addition already satisfies ∞ + x = ∞ for x ≥ 0.
	return a + b
}

// Zero returns ∞, the neutral element of min and annihilator of +.
func (MinPlus) Zero() float64 { return Inf }

// One returns 0, the neutral element of +.
func (MinPlus) One() float64 { return 0 }

// Equal reports a == b (∞ compares equal to ∞).
func (MinPlus) Equal(a, b float64) bool { return a == b }

// MinPlusSelf is S_{min,+} viewed as a zero-preserving semimodule over
// itself, the module used by plain SSSP (Example 3.3) and forest fires
// (Example 3.7).
type MinPlusSelf struct{}

// Add returns min(x, y).
func (MinPlusSelf) Add(x, y float64) float64 { return MinPlus{}.Add(x, y) }

// SMul returns s + x.
func (MinPlusSelf) SMul(s, x float64) float64 { return MinPlus{}.Mul(s, x) }

// Zero returns ∞.
func (MinPlusSelf) Zero() float64 { return Inf }

// Equal reports x == y.
func (MinPlusSelf) Equal(x, y float64) bool { return x == y }

// Aggregate implements the Aggregator fast path: min over the shifted
// neighbor distances, in one scan with no intermediate values.
func (MinPlusSelf) Aggregate(_ *Scratch, self float64, terms []Term[float64, float64]) float64 {
	acc := self
	for _, t := range terms {
		if v := t.S + t.X; v < acc {
			acc = v
		}
	}
	return acc
}

var (
	_ Semiring[float64]            = MinPlus{}
	_ Aggregator[float64, float64] = MinPlusSelf{}
)
