package semiring

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// This file pins the k-way SoA merge kernel (distmerge.go): every rung of
// the dispatch ladder against a naive map-based reference, the edge shapes
// the branch-light loops are most likely to get wrong (empty lists between
// singletons, all-equal node IDs, the NodeID boundary values 0 and
// MaxInt32), and the steady-state allocation budget of the aggregation fast
// path over a warmed Scratch.

// refMerge is the naive reference: min per node ID over all shifted lists,
// output sorted by node ID.
func refMerge(ids [][]NodeID, ds [][]float64, shifts []float64) DistMap {
	acc := map[NodeID]float64{}
	for li := range ids {
		for i, node := range ids[li] {
			d := ds[li][i] + shifts[li]
			if old, ok := acc[node]; !ok || d < old {
				acc[node] = d
			}
		}
	}
	nodes := make([]NodeID, 0, len(acc))
	for node := range acc {
		nodes = append(nodes, node)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	out := NewDistMap(len(nodes))
	for _, node := range nodes {
		out = out.Append(node, acc[node])
	}
	return out
}

// runKernel drives mergeDistInto the way Aggregate does: fresh output slices
// sized to the total input length, a shared scratch.
func runKernel(sc *Scratch, lists []DistMap, shifts []float64) DistMap {
	ids, ds := splitLists(lists)
	sc.growDist(len(ids))
	total := 0
	for _, l := range ids {
		total += len(l)
	}
	oIds := make([]NodeID, 0, total)
	oDs := make([]float64, 0, total)
	oIds, oDs = mergeDistInto(sc, oIds, oDs, ids, ds, shifts)
	return DistMap{ids: oIds, ds: oDs}
}

func splitLists(lists []DistMap) ([][]NodeID, [][]float64) {
	ids := make([][]NodeID, len(lists))
	ds := make([][]float64, len(lists))
	for i, l := range lists {
		ids[i], ds[i] = l.ids, l.ds
	}
	return ids, ds
}

// refMergeLists is refMerge over whole DistMap values.
func refMergeLists(lists []DistMap, shifts []float64) DistMap {
	ids, ds := splitLists(lists)
	return refMerge(ids, ds, shifts)
}

// TestMergeKernelDispatchLadder exercises every rung — direct 1..4, the
// unrolled 8-way, one- and two-round reductions (with and without remainder
// groups of one, including a passthrough chained through both rounds), and
// the cursor heap past k = 512 — against the reference.
func TestMergeKernelDispatchLadder(t *testing.T) {
	mod := DistMapModule{}
	rng := rand.New(rand.NewSource(11))
	for _, k := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16, 17, 24, 25, 32, 33, 40, 64, 65, 72, 100, 512, 513, 520} {
		for trial := 0; trial < 20; trial++ {
			lists := make([]DistMap, k)
			shifts := make([]float64, k)
			for i := range lists {
				lists[i] = randomDistMap(rng, 12)
				shifts[i] = float64(rng.Intn(10))
			}
			var sc Scratch
			got := runKernel(&sc, lists, shifts)
			want := refMergeLists(lists, shifts)
			if !mod.Equal(got, want) {
				t.Fatalf("k=%d trial=%d: kernel %v ≠ reference %v", k, trial, got, want)
			}
			if !got.IsSorted() {
				t.Fatalf("k=%d trial=%d: output not sorted: %v", k, trial, got)
			}
		}
	}
}

// TestMergeKernelEmptyListsInterleaved pins the sentinel handling: exhausted-
// from-the-start cursors between singletons must not emit, block, or reorder
// anything, on every ladder rung.
func TestMergeKernelEmptyListsInterleaved(t *testing.T) {
	mod := DistMapModule{}
	for _, k := range []int{2, 3, 4, 5, 8, 9, 17, 33, 65, 520} {
		lists := make([]DistMap, k)
		shifts := make([]float64, k)
		for i := range lists {
			if i%2 == 0 {
				lists[i] = DistMap{} // empty between the singletons
			} else {
				lists[i] = SingletonDist(NodeID(i), float64(i))
			}
			shifts[i] = 1
		}
		var sc Scratch
		got := runKernel(&sc, lists, shifts)
		want := refMergeLists(lists, shifts)
		if !mod.Equal(got, want) {
			t.Fatalf("k=%d: kernel %v ≠ reference %v", k, got, want)
		}
	}
}

// TestMergeKernelAllEqualIDs pins duplicate combination: k lists all holding
// the same node ID must collapse to one entry carrying the minimum shifted
// distance — the left fold of Add over equal keys.
func TestMergeKernelAllEqualIDs(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5, 8, 9, 17, 33, 65, 520} {
		lists := make([]DistMap, k)
		shifts := make([]float64, k)
		for i := range lists {
			lists[i] = SingletonDist(7, float64(10+i))
			shifts[i] = float64(k - i) // minimum lands mid-pack, not at an end
		}
		var sc Scratch
		got := runKernel(&sc, lists, shifts)
		if got.Len() != 1 || got.Node(0) != 7 {
			t.Fatalf("k=%d: want single entry for node 7, got %v", k, got)
		}
		want := math.Inf(1)
		for i := range lists {
			if d := lists[i].Dist(0) + shifts[i]; d < want {
				want = d
			}
		}
		if got.Dist(0) != want {
			t.Fatalf("k=%d: min = %v, want %v", k, got.Dist(0), want)
		}
	}
}

// TestMergeKernelBoundaryNodeIDs pins the int64-widened sentinel against the
// NodeID extremes: 0 and MaxInt32 are valid IDs and must merge below the
// sentinel on every rung.
func TestMergeKernelBoundaryNodeIDs(t *testing.T) {
	mod := DistMapModule{}
	maxID := NodeID(math.MaxInt32)
	for _, k := range []int{2, 3, 4, 5, 8, 9, 17, 33, 65, 520} {
		lists := make([]DistMap, k)
		shifts := make([]float64, k)
		for i := range lists {
			m := NewDistMap(2)
			m = m.Append(0, float64(i))
			m = m.Append(maxID, float64(100+i))
			lists[i] = m
			shifts[i] = float64(i % 3)
		}
		var sc Scratch
		got := runKernel(&sc, lists, shifts)
		want := refMergeLists(lists, shifts)
		if !mod.Equal(got, want) {
			t.Fatalf("k=%d: kernel %v ≠ reference %v", k, got, want)
		}
		if got.Len() != 2 || got.Node(0) != 0 || got.Node(1) != maxID {
			t.Fatalf("k=%d: boundary IDs mangled: %v", k, got)
		}
	}
}

// TestAggregateMatchesReference drives the public entry points — Aggregate
// and AggregateFiltered — over random shapes with dead terms (∞ scalars, ⊥
// states) mixed in, against the reference built from the surviving terms.
func TestAggregateMatchesReference(t *testing.T) {
	mod := DistMapModule{}
	rng := rand.New(rand.NewSource(12))
	var sc Scratch
	for trial := 0; trial < 300; trial++ {
		self := randomDistMap(rng, 8)
		k := rng.Intn(40)
		terms := make([]Term[float64, DistMap], k)
		var ids [][]NodeID
		var ds [][]float64
		var shifts []float64
		if self.Len() > 0 {
			ids, ds, shifts = append(ids, self.ids), append(ds, self.ds), append(shifts, 0)
		}
		for i := range terms {
			s := float64(rng.Intn(8))
			if rng.Intn(8) == 0 {
				s = Inf // dead edge
			}
			x := randomDistMap(rng, 8)
			terms[i] = Term[float64, DistMap]{S: s, X: x}
			if !IsInf(s) && x.Len() > 0 {
				ids, ds, shifts = append(ids, x.ids), append(ds, x.ds), append(shifts, s)
			}
		}
		want := refMerge(ids, ds, shifts)
		got := mod.Aggregate(&sc, self, terms)
		if !mod.Equal(got, want) {
			t.Fatalf("trial %d: Aggregate %v ≠ reference %v", trial, got, want)
		}
		filter := TopKFilterInPlace(3, Inf, nil)
		gotF := mod.AggregateFiltered(&sc, self, terms, filter)
		wantF := filter(want.Clone())
		if !mod.Equal(gotF, wantF) {
			t.Fatalf("trial %d: AggregateFiltered %v ≠ filtered reference %v", trial, gotF, wantF)
		}
		gotNil := mod.AggregateFiltered(&sc, self, terms, nil)
		if !mod.Equal(gotNil, got) {
			t.Fatalf("trial %d: AggregateFiltered(nil) %v ≠ Aggregate %v", trial, gotNil, got)
		}
	}
}

// TestAggregateFilteredOwnership pins the ownership contract of the fused
// path: the result must survive scratch reuse and in-place mutation without
// disturbing the inputs.
func TestAggregateFilteredOwnership(t *testing.T) {
	mod := DistMapModule{}
	var sc Scratch
	self := dm(Entry{1, 5}, Entry{3, 2})
	terms := []Term[float64, DistMap]{
		{S: 1, X: dm(Entry{2, 1}, Entry{3, 9})},
		{S: 2, X: dm(Entry{1, 1}, Entry{4, 4})},
	}
	out := mod.AggregateFiltered(&sc, self, terms, TopKFilterInPlace(8, Inf, nil))
	snapshot := out.Clone()
	// Scribble over the scratch with an unrelated merge, then mutate out.
	mod.AggregateFiltered(&sc, dm(Entry{9, 9}), terms, TopKFilterInPlace(1, Inf, nil))
	if !mod.Equal(out, snapshot) {
		t.Fatalf("result changed under scratch reuse: %v ≠ %v", out, snapshot)
	}
	mod.SMulInPlace(1000, out)
	if self.Dist(0) != 5 || terms[0].X.Dist(0) != 1 {
		t.Fatal("mutating the fused result reached an input")
	}
}

// TestAllocPairsSharedBlock pins the shared-block allocator behind every
// fresh DistMap: both arrays come back with capacity exactly n, carved from
// one block, and filling each to capacity must not let the id region and
// the distance region overlap. Appending past capacity must reallocate away
// without disturbing the other half.
func TestAllocPairsSharedBlock(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 64} {
		ids, ds := allocPairs(n)
		if len(ids) != 0 || len(ds) != 0 || cap(ids) != n || cap(ds) != n {
			t.Fatalf("n=%d: len/cap = %d/%d ids, %d/%d ds, want 0/%d both",
				n, len(ids), cap(ids), len(ds), cap(ds), n)
		}
		for i := 0; i < n; i++ {
			ids = append(ids, NodeID(i+1))
			ds = append(ds, float64(-i)-0.5)
		}
		for i := 0; i < n; i++ {
			if ids[i] != NodeID(i+1) || ds[i] != float64(-i)-0.5 {
				t.Fatalf("n=%d: regions overlap: ids[%d]=%d ds[%d]=%v", n, i, ids[i], i, ds[i])
			}
		}
		// Growth past the shared block must not touch the other half.
		grown := append(ids, NodeID(n+1))
		_ = grown
		for i := 0; i < n; i++ {
			if ds[i] != float64(-i)-0.5 {
				t.Fatalf("n=%d: growing ids corrupted ds[%d]=%v", n, i, ds[i])
			}
		}
	}
	if ids, ds := allocPairs(0); ids != nil || ds != nil {
		t.Fatalf("allocPairs(0) = %v, %v, want nil, nil", ids, ds)
	}
}

// TestAggregateAllocsWarmScratch is the steady-state allocation budget of
// the fast path (the scratch pre-sizing contract of Scratch.grow/growDist):
// over a warmed Scratch, Aggregate and AggregateFiltered allocate exactly
// the output — one shared id/distance block (allocPairs) — on every ladder
// rung.
func TestAggregateAllocsWarmScratch(t *testing.T) {
	mod := DistMapModule{}
	rng := rand.New(rand.NewSource(13))
	filter := TopKFilterInPlace(8, Inf, nil)
	for _, k := range []int{2, 4, 8, 16, 33, 40, 65} {
		self := randomDistMap(rng, 8)
		terms := make([]Term[float64, DistMap], k)
		for i := range terms {
			terms[i] = Term[float64, DistMap]{S: float64(1 + rng.Intn(5)), X: randomDistMap(rng, 8)}
		}
		var sc Scratch
		mod.Aggregate(&sc, self, terms) // warm the pooled buffers
		if allocs := testing.AllocsPerRun(50, func() {
			mod.Aggregate(&sc, self, terms)
		}); allocs > 1 {
			t.Errorf("k=%d: Aggregate allocates %.0f/op over warm scratch, want ≤ 1", k, allocs)
		}
		mod.AggregateFiltered(&sc, self, terms, filter)
		if allocs := testing.AllocsPerRun(50, func() {
			mod.AggregateFiltered(&sc, self, terms, filter)
		}); allocs > 1 {
			t.Errorf("k=%d: AggregateFiltered allocates %.0f/op over warm scratch, want ≤ 1", k, allocs)
		}
	}
}
