package semiring

import (
	"testing"
)

func TestPathEncodeDecode(t *testing.T) {
	cases := [][]NodeID{
		{0},
		{5},
		{1, 2, 3},
		{100000, 7, 99},
	}
	for _, nodes := range cases {
		p := MakePath(nodes...)
		got := p.Nodes()
		if len(got) != len(nodes) {
			t.Fatalf("round trip length: %v vs %v", got, nodes)
		}
		for i := range nodes {
			if got[i] != nodes[i] {
				t.Fatalf("round trip: %v vs %v", got, nodes)
			}
		}
		if p.First() != nodes[0] || p.Last() != nodes[len(nodes)-1] {
			t.Fatalf("First/Last wrong for %v", nodes)
		}
		if p.Hops() != len(nodes)-1 {
			t.Fatalf("Hops = %d, want %d", p.Hops(), len(nodes)-1)
		}
	}
}

func TestPathConcat(t *testing.T) {
	p := MakePath(1, 2)
	q := MakePath(2, 3)
	r, ok := p.Concat(q)
	if !ok {
		t.Fatal("concatenable paths rejected")
	}
	want := MakePath(1, 2, 3)
	if r != want {
		t.Fatalf("Concat = %v, want %v", r, want)
	}
	if _, ok := p.Concat(MakePath(5, 6)); ok {
		t.Fatal("non-concatenable paths accepted")
	}
	// ε is the identity.
	if r, ok := Path("").Concat(p); !ok || r != p {
		t.Fatal("ε ∘ p ≠ p")
	}
	if r, ok := p.Concat(Path("")); !ok || r != p {
		t.Fatal("p ∘ ε ≠ p")
	}
}

func TestPathConcatRejectsLoops(t *testing.T) {
	p := MakePath(1, 2, 3)
	q := MakePath(3, 2)
	if _, ok := p.Concat(q); ok {
		t.Fatal("loop-forming concatenation accepted")
	}
}

func TestPathLexOrderMatchesNodeOrder(t *testing.T) {
	a := MakePath(1, 2)
	b := MakePath(1, 3)
	c := MakePath(2, 1)
	if !(a < b && b < c) {
		t.Fatal("path encoding does not preserve lexicographic node order")
	}
}

func pathSamples() []PathSet {
	return []PathSet{
		nil,
		{MakePath(1, 2): 3},
		{MakePath(2, 3): 1, MakePath(2, 4): 2},
		{MakePath(1, 2): 5, MakePath(3, 4): 1},
		{MakePath(1, 2, 3): 4},
		AllPaths{}.One(),
	}
}

func TestAllPathsSemiringLaws(t *testing.T) {
	if err := CheckSemiringLaws[PathSet](AllPaths{}, pathSamples()); err != nil {
		t.Fatal(err)
	}
}

func TestAllPathsSelfModuleLaws(t *testing.T) {
	err := CheckSemimoduleLaws[PathSet, PathSet](AllPaths{}, AllPathsSelf{}, pathSamples(), pathSamples())
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllPathsMulConcatenates(t *testing.T) {
	sr := AllPaths{}
	x := PathSet{MakePath(1, 2): 3, MakePath(1, 3): 1}
	y := PathSet{MakePath(2, 4): 2, MakePath(3, 4): 10}
	got := sr.Mul(x, y)
	want := PathSet{
		MakePath(1, 2, 4): 5,
		MakePath(1, 3, 4): 11,
	}
	if !sr.Equal(got, want) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestAllPathsMulKeepsLightestSplit(t *testing.T) {
	sr := AllPaths{}
	// Two splits produce the same concatenation; the lighter one must win.
	x := PathSet{MakePath(1, 2): 3, MakePath(1, 2, 3): 1}
	y := PathSet{MakePath(2, 3, 4): 2, MakePath(3, 4): 100}
	got := sr.Mul(x, y)
	p := MakePath(1, 2, 3, 4)
	if got[p] != 5 {
		t.Fatalf("weight of %v = %v, want 5 (min over splits)", p, got[p])
	}
}

func TestAllPathsAddKeepsMinimumWeight(t *testing.T) {
	sr := AllPaths{}
	p := MakePath(1, 2)
	got := sr.Add(PathSet{p: 5}, PathSet{p: 3})
	if got[p] != 3 {
		t.Fatalf("Add kept %v, want 3", got[p])
	}
}

func TestKShortestFilterKeepsKLightest(t *testing.T) {
	target := NodeID(9)
	r := KShortestFilter(2, target, false)
	x := PathSet{
		MakePath(1, 9):       5,
		MakePath(1, 2, 9):    3,
		MakePath(1, 3, 9):    4,
		MakePath(2, 9):       1,
		MakePath(1, 4):       0, // wrong target: dropped
		MakePath(4, 1, 2, 9): 7, // different start: kept independently
	}
	got := r(x)
	want := PathSet{
		MakePath(1, 2, 9):    3,
		MakePath(1, 3, 9):    4,
		MakePath(2, 9):       1,
		MakePath(4, 1, 2, 9): 7,
	}
	if !(AllPaths{}).Equal(got, want) {
		t.Fatalf("filter = %v, want %v", got, want)
	}
}

func TestKShortestFilterDistinctWeights(t *testing.T) {
	target := NodeID(9)
	r := KShortestFilter(2, target, true)
	x := PathSet{
		MakePath(1, 2, 9): 3,
		MakePath(1, 3, 9): 3, // same weight: only lexicographically first kept
		MakePath(1, 4, 9): 5,
		MakePath(1, 5, 9): 7, // third distinct weight: dropped
	}
	got := r(x)
	want := PathSet{
		MakePath(1, 2, 9): 3,
		MakePath(1, 4, 9): 5,
	}
	if !(AllPaths{}).Equal(got, want) {
		t.Fatalf("distinct filter = %v, want %v", got, want)
	}
}

func TestKShortestFilterIsCongruence(t *testing.T) {
	// Build path sets that all end at the target so the congruence check is
	// meaningful, plus edge-weight scalars for SMul.
	target := NodeID(9)
	elems := []PathSet{
		nil,
		{MakePath(1, 9): 2},
		{MakePath(1, 2, 9): 1, MakePath(1, 9): 5},
		{MakePath(2, 9): 3, MakePath(2, 1, 9): 3},
		{MakePath(3, 1, 9): 4, MakePath(3, 9): 2, MakePath(3, 2, 9): 6},
	}
	scalars := []PathSet{
		AllPaths{}.One(),
		nil,
		{MakePath(0, 1): 1},
		{MakePath(0, 2): 2, MakePath(0, 3): 5},
	}
	r := KShortestFilter(2, target, false)
	err := CheckFilterCongruence[PathSet, PathSet](AllPathsSelf{}, r, scalars, elems)
	if err != nil {
		t.Fatal(err)
	}
}
