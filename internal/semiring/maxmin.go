package semiring

// MaxMin is the max-min ("bottleneck") semiring S_{max,min} =
// (ℝ≥0 ∪ {∞}, max, min) of Definition 3.9, used for widest-path problems:
// matrix powers over MaxMin yield h-hop widest-path distances (Lemma 3.12).
type MaxMin struct{}

// Add returns max(a, b).
func (MaxMin) Add(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Mul returns min(a, b).
func (MaxMin) Mul(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Zero returns 0, the neutral element of max and annihilator of min
// (all widths are non-negative).
func (MaxMin) Zero() float64 { return 0 }

// One returns ∞, the neutral element of min.
func (MaxMin) One() float64 { return Inf }

// Equal reports a == b.
func (MaxMin) Equal(a, b float64) bool { return a == b }

// MaxMinSelf is S_{max,min} viewed as a zero-preserving semimodule over
// itself, used by single-source widest paths (Example 3.13).
type MaxMinSelf struct{}

// Add returns max(x, y).
func (MaxMinSelf) Add(x, y float64) float64 { return MaxMin{}.Add(x, y) }

// SMul returns min(s, x).
func (MaxMinSelf) SMul(s, x float64) float64 { return MaxMin{}.Mul(s, x) }

// Zero returns 0.
func (MaxMinSelf) Zero() float64 { return 0 }

// Equal reports x == y.
func (MaxMinSelf) Equal(x, y float64) bool { return x == y }

// Aggregate implements the Aggregator fast path: max over the edge-capped
// neighbor widths, in one scan with no intermediate values.
func (MaxMinSelf) Aggregate(_ *Scratch, self float64, terms []Term[float64, float64]) float64 {
	acc := self
	for _, t := range terms {
		v := t.X
		if t.S < v {
			v = t.S
		}
		if v > acc {
			acc = v
		}
	}
	return acc
}

var (
	_ Semiring[float64]            = MaxMin{}
	_ Aggregator[float64, float64] = MaxMinSelf{}
)
