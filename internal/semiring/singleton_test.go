package semiring

import "testing"

// TestSingletonStates pins the bulk-carved initial-state vector against the
// per-node constructor: identical contents, full-capacity sub-slices (so an
// append can never scribble into a neighbour's entry), and a constant
// allocation count independent of n.
func TestSingletonStates(t *testing.T) {
	const n = 1024
	states := SingletonStates(n)
	if len(states) != n {
		t.Fatalf("len = %d, want %d", len(states), n)
	}
	for v := 0; v < n; v++ {
		if !(DistMapModule{}).Equal(states[v], SingletonDist(NodeID(v), 0)) {
			t.Fatalf("states[%d] = %v, want {%d: 0}", v, states[v], v)
		}
		if cap(states[v].ids) != 1 || cap(states[v].ds) != 1 {
			t.Fatalf("states[%d] caps = %d/%d, want 1/1 (append would alias the neighbour)",
				v, cap(states[v].ids), cap(states[v].ds))
		}
	}
	// Appending to one singleton must reallocate, not touch the shared
	// backing of the next node.
	grown := states[7].Append(NodeID(999), 3)
	if states[8].Node(0) != 8 || states[8].Dist(0) != 0 {
		t.Fatalf("append to states[7] corrupted states[8]: %v", states[8])
	}
	if grown.Len() != 2 {
		t.Fatalf("grown = %v", grown)
	}
	allocs := testing.AllocsPerRun(10, func() {
		SingletonStates(n)
	})
	if allocs > 4 {
		t.Errorf("SingletonStates(%d) = %.0f allocs, want ≤ 4 (bulk carve regressed to per-node allocation)", n, allocs)
	}
}
