package semiring

import (
	"fmt"
	"sort"
	"strings"
)

// Path is a non-empty, loop-free, directed path on V, encoded as the
// big-endian 4-byte concatenation of its node IDs. The encoding makes Path a
// valid map key, keeps comparisons cheap, and orders paths lexicographically
// by node sequence — the tie-breaking order used by k-SDP and k-DSDP
// (Examples 3.23 and 3.24).
//
// The empty Path ε is the identity of concatenation; it plays the role of
// the paper's multiplicative unit 1 (which formally contains all zero-weight
// single-node paths): ε ∘ π = π ∘ ε = π. For well-formed path sets the two
// formulations produce identical algebra; ε merely avoids materialising |V|
// single-node paths.
type Path string

// MakePath encodes the node sequence as a Path. It panics if adjacent nodes
// repeat (paths are loop-free).
func MakePath(nodes ...NodeID) Path {
	b := make([]byte, 0, 4*len(nodes))
	for i, v := range nodes {
		if i > 0 && nodes[i-1] == v {
			panic("semiring: path with repeated adjacent node")
		}
		b = append(b, byte(uint32(v)>>24), byte(uint32(v)>>16), byte(uint32(v)>>8), byte(uint32(v)))
	}
	return Path(b)
}

// Nodes decodes the path back into its node sequence.
func (p Path) Nodes() []NodeID {
	if len(p)%4 != 0 {
		panic("semiring: malformed path encoding")
	}
	out := make([]NodeID, len(p)/4)
	for i := range out {
		off := 4 * i
		out[i] = NodeID(uint32(p[off])<<24 | uint32(p[off+1])<<16 | uint32(p[off+2])<<8 | uint32(p[off+3]))
	}
	return out
}

// Hops returns the number of edges of the path (|p| in the paper's
// notation); the empty path and single-node paths have 0 hops.
func (p Path) Hops() int {
	if len(p) == 0 {
		return 0
	}
	return len(p)/4 - 1
}

// IsEmpty reports whether p is the identity path ε.
func (p Path) IsEmpty() bool { return len(p) == 0 }

// First returns the first node of the path. It panics on ε.
func (p Path) First() NodeID {
	return NodeID(uint32(p[0])<<24 | uint32(p[1])<<16 | uint32(p[2])<<8 | uint32(p[3]))
}

// Last returns the last node of the path. It panics on ε.
func (p Path) Last() NodeID {
	off := len(p) - 4
	return NodeID(uint32(p[off])<<24 | uint32(p[off+1])<<16 | uint32(p[off+2])<<8 | uint32(p[off+3]))
}

// Concat returns the concatenation p ∘ q and true if the paths are
// concatenable (Equation 3.13: last node of p equals first node of q, or
// either is ε), and "", false otherwise. The shared node appears once in the
// result. Concatenations that would revisit a node yield ok=false: the
// all-paths semiring stores loop-free paths only, and a walk with a loop is
// never shorter than the loop-free path it contains (weights are positive).
func (p Path) Concat(q Path) (Path, bool) {
	if p.IsEmpty() {
		return q, true
	}
	if q.IsEmpty() {
		return p, true
	}
	if p.Last() != q.First() {
		return "", false
	}
	joined := string(p) + string(q[4:])
	// Reject walks that revisit a node.
	seen := make(map[NodeID]bool, len(joined)/4)
	r := Path(joined)
	for _, v := range r.Nodes() {
		if seen[v] {
			return "", false
		}
		seen[v] = true
	}
	return r, true
}

// String renders the path as "v0→v1→…" for debugging.
func (p Path) String() string {
	if p.IsEmpty() {
		return "ε"
	}
	var b strings.Builder
	for i, v := range p.Nodes() {
		if i > 0 {
			b.WriteString("→")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// PathSet is an element of the all-paths semiring P_{min,+} of
// Definition 3.17: a sparse assignment of finite weights to paths; absent
// paths implicitly have weight ∞. "x contains π" means x[π] < ∞.
type PathSet map[Path]float64

// AllPaths implements the all-paths semiring P_{min,+}: addition keeps the
// smaller weight per path (union), multiplication concatenates all
// compatible pairs keeping the lightest weight per resulting path
// (Equations 3.14–3.15).
type AllPaths struct{}

// Add returns the path-wise minimum of x and y.
func (AllPaths) Add(x, y PathSet) PathSet {
	if len(x) == 0 {
		return y
	}
	if len(y) == 0 {
		return x
	}
	out := make(PathSet, len(x)+len(y))
	for p, w := range x {
		out[p] = w
	}
	for p, w := range y {
		if cur, ok := out[p]; !ok || w < cur {
			out[p] = w
		}
	}
	return out
}

// Mul returns {π ↦ min over splits π = π1 ∘ π2 of x[π1] + y[π2]}.
func (AllPaths) Mul(x, y PathSet) PathSet {
	if len(x) == 0 || len(y) == 0 {
		return nil
	}
	out := make(PathSet)
	for p, wp := range x {
		for q, wq := range y {
			r, ok := p.Concat(q)
			if !ok {
				continue
			}
			w := wp + wq
			if cur, ok := out[r]; !ok || w < cur {
				out[r] = w
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Zero returns the empty path set (all weights ∞).
func (AllPaths) Zero() PathSet { return nil }

// One returns {ε: 0}, the multiplicative identity.
func (AllPaths) One() PathSet { return PathSet{"": 0} }

// Equal reports whether x and y assign identical weights.
func (AllPaths) Equal(x, y PathSet) bool {
	if len(x) != len(y) {
		return false
	}
	for p, w := range x {
		if yw, ok := y[p]; !ok || yw != w {
			return false
		}
	}
	return true
}

// AllPathsSelf is P_{min,+} viewed as a zero-preserving semimodule over
// itself (Corollary 3.19), the module used by k-SDP.
type AllPathsSelf struct{}

// Add returns the path-wise minimum.
func (AllPathsSelf) Add(x, y PathSet) PathSet { return AllPaths{}.Add(x, y) }

// SMul returns s ⊙ x.
func (AllPathsSelf) SMul(s, x PathSet) PathSet { return AllPaths{}.Mul(s, x) }

// Zero returns the empty path set.
func (AllPathsSelf) Zero() PathSet { return nil }

// Equal reports path-wise equality.
func (AllPathsSelf) Equal(x, y PathSet) bool { return AllPaths{}.Equal(x, y) }

var (
	_ Semiring[PathSet]            = AllPaths{}
	_ Semimodule[PathSet, PathSet] = AllPathsSelf{}
)

// KShortestFilter is the representative projection of k-SDP (Equation 3.24):
// for every start node v it keeps only the k lightest v-to-target paths (ties
// broken by the lexicographic path order). If distinct is true it implements
// the k-DSDP variant (Equations 3.26–3.27): only the lexicographically first
// path per distinct weight is kept, and the k lightest distinct weights
// survive.
func KShortestFilter(k int, target NodeID, distinct bool) Filter[PathSet] {
	type cand struct {
		p Path
		w float64
	}
	return func(x PathSet) PathSet {
		if len(x) == 0 {
			return nil
		}
		byStart := make(map[NodeID][]cand)
		for p, w := range x {
			if p.IsEmpty() || p.Last() != target {
				continue
			}
			s := p.First()
			byStart[s] = append(byStart[s], cand{p, w})
		}
		out := make(PathSet)
		for _, cs := range byStart {
			sort.Slice(cs, func(i, j int) bool {
				if cs[i].w != cs[j].w {
					return cs[i].w < cs[j].w
				}
				return cs[i].p < cs[j].p
			})
			if distinct {
				// Keep one representative per distinct weight.
				w := 0
				for i := 0; i < len(cs); i++ {
					if w > 0 && cs[w-1].w == cs[i].w {
						continue
					}
					cs[w] = cs[i]
					w++
				}
				cs = cs[:w]
			}
			if len(cs) > k {
				cs = cs[:k]
			}
			for _, c := range cs {
				out[c.p] = c.w
			}
		}
		if len(out) == 0 {
			return nil
		}
		return out
	}
}
