package semiring

import (
	"math/rand"
	"testing"
)

// scalarSamples are semiring elements exercising the interesting regions of
// the float-valued semirings: identities, finite values, and ∞.
var scalarSamples = []float64{0, 1, 0.5, 2.25, 7, 1000, Inf}

func TestMinPlusSemiringLaws(t *testing.T) {
	if err := CheckSemiringLaws[float64](MinPlus{}, scalarSamples); err != nil {
		t.Fatal(err)
	}
}

func TestMinPlusAddIsCommutativeMin(t *testing.T) {
	sr := MinPlus{}
	if got := sr.Add(3, 5); got != 3 {
		t.Fatalf("Add(3,5) = %v, want 3", got)
	}
	if got := sr.Add(Inf, 5); got != 5 {
		t.Fatalf("Add(Inf,5) = %v, want 5", got)
	}
	if got := sr.Mul(3, 5); got != 8 {
		t.Fatalf("Mul(3,5) = %v, want 8", got)
	}
	if !IsInf(sr.Mul(3, Inf)) {
		t.Fatal("Mul(3,Inf) should be Inf")
	}
}

func TestMaxMinSemiringLaws(t *testing.T) {
	if err := CheckSemiringLaws[float64](MaxMin{}, scalarSamples); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMinOps(t *testing.T) {
	sr := MaxMin{}
	if got := sr.Add(3, 5); got != 5 {
		t.Fatalf("Add(3,5) = %v, want 5", got)
	}
	if got := sr.Mul(3, 5); got != 3 {
		t.Fatalf("Mul(3,5) = %v, want 3", got)
	}
	if got := sr.Mul(Inf, 5); got != 5 {
		t.Fatalf("Mul(Inf,5) = %v, want 5 (One is neutral)", got)
	}
}

func TestBooleanSemiringLaws(t *testing.T) {
	if err := CheckSemiringLaws[bool](Boolean{}, []bool{false, true}); err != nil {
		t.Fatal(err)
	}
}

func TestMinPlusSelfModuleLaws(t *testing.T) {
	err := CheckSemimoduleLaws[float64, float64](MinPlus{}, MinPlusSelf{}, scalarSamples, scalarSamples)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxMinSelfModuleLaws(t *testing.T) {
	err := CheckSemimoduleLaws[float64, float64](MaxMin{}, MaxMinSelf{}, scalarSamples, scalarSamples)
	if err != nil {
		t.Fatal(err)
	}
}

// dm is the test shorthand for building DistMap values from entry literals
// (FromEntries does not validate ordering, so Normalize tests may pass
// unsorted entries through it deliberately).
func dm(entries ...Entry) DistMap { return FromEntries(entries...) }

func randomDistMap(rng *rand.Rand, maxNodes int) DistMap {
	n := rng.Intn(maxNodes + 1)
	m := NewDistMap(n)
	node := NodeID(0)
	for i := 0; i < n; i++ {
		node += NodeID(1 + rng.Intn(4))
		m = m.Append(node, float64(rng.Intn(100)))
	}
	return m
}

func TestDistMapModuleLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	elems := []DistMap{{}}
	for i := 0; i < 8; i++ {
		elems = append(elems, randomDistMap(rng, 6))
	}
	err := CheckSemimoduleLaws[float64, DistMap](MinPlus{}, DistMapModule{}, scalarSamples, elems)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistMapAddKeepsMinimum(t *testing.T) {
	mod := DistMapModule{}
	x := dm(Entry{1, 5}, Entry{3, 2})
	y := dm(Entry{1, 3}, Entry{2, 7})
	got := mod.Add(x, y)
	want := dm(Entry{1, 3}, Entry{2, 7}, Entry{3, 2})
	if !mod.Equal(got, want) {
		t.Fatalf("Add = %v, want %v", got, want)
	}
}

func TestDistMapSMul(t *testing.T) {
	mod := DistMapModule{}
	x := dm(Entry{1, 5}, Entry{3, 2})
	got := mod.SMul(10, x)
	want := dm(Entry{1, 15}, Entry{3, 12})
	if !mod.Equal(got, want) {
		t.Fatalf("SMul = %v, want %v", got, want)
	}
	if mod.SMul(Inf, x).Len() != 0 {
		t.Fatal("SMul(Inf, x) should be ⊥")
	}
	if got := mod.SMul(0, x); !mod.Equal(got, x) {
		t.Fatal("SMul(0, x) should be x")
	}
}

func TestDistMapSMulDoesNotAliasInput(t *testing.T) {
	mod := DistMapModule{}
	x := dm(Entry{1, 5})
	y := mod.SMul(3, x)
	// The result shares x's ID array but carries fresh distances: writing
	// them (legal here — the ds array is exclusively owned) must not reach x.
	y.ds[0] = 999
	if x.Dist(0) != 5 {
		t.Fatal("SMul result aliases its input's distances")
	}
}

func TestDistMapGet(t *testing.T) {
	x := dm(Entry{2, 5}, Entry{7, 1}, Entry{9, 4})
	if got := x.Get(7); got != 1 {
		t.Fatalf("Get(7) = %v, want 1", got)
	}
	if !IsInf(x.Get(3)) {
		t.Fatal("Get(absent) should be Inf")
	}
	if !IsInf((DistMap{}).Get(0)) {
		t.Fatal("Get on the zero map should be Inf")
	}
}

func TestDistMapNormalize(t *testing.T) {
	x := dm(Entry{5, 2}, Entry{1, 9}, Entry{5, 7}, Entry{3, Inf}, Entry{1, 4})
	got := Normalize(x)
	want := dm(Entry{1, 4}, Entry{5, 2})
	if !(DistMapModule{}).Equal(got, want) {
		t.Fatalf("Normalize = %v, want %v", got, want)
	}
	if !got.IsSorted() {
		t.Fatal("Normalize output not sorted")
	}
}

func TestMergeMinMatchesFoldedAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mod := DistMapModule{}
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(6)
		xs := make([]DistMap, k)
		for i := range xs {
			xs[i] = randomDistMap(rng, 8)
		}
		folded := mod.Zero()
		for _, x := range xs {
			folded = mod.Add(folded, x)
		}
		merged := MergeMin(xs...)
		if !mod.Equal(folded, merged) {
			t.Fatalf("MergeMin %v ≠ folded Add %v", merged, folded)
		}
	}
}

func TestTopKFilterKeepsKSmallest(t *testing.T) {
	r := TopKFilter(2, Inf, nil)
	x := dm(Entry{1, 9}, Entry{2, 3}, Entry{3, 5}, Entry{4, 3})
	got := r(x)
	// Two smallest are (2,3) and (4,3); ties broken by node ID keep node 2
	// then node 4.
	want := dm(Entry{2, 3}, Entry{4, 3})
	if !(DistMapModule{}).Equal(got, want) {
		t.Fatalf("TopKFilter = %v, want %v", got, want)
	}
}

func TestTopKFilterMaxDistAndSources(t *testing.T) {
	isSource := func(v NodeID) bool { return v%2 == 0 }
	r := TopKFilter(10, 4, isSource)
	x := dm(Entry{1, 1}, Entry{2, 3}, Entry{3, 2}, Entry{4, 9})
	got := r(x)
	want := dm(Entry{2, 3}) // node 4 exceeds maxDist, odd nodes not sources
	if !(DistMapModule{}).Equal(got, want) {
		t.Fatalf("filter = %v, want %v", got, want)
	}
}

func TestTopKFilterIsCongruence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	elems := []DistMap{{}}
	for i := 0; i < 10; i++ {
		elems = append(elems, randomDistMap(rng, 8))
	}
	r := TopKFilter(3, Inf, nil)
	err := CheckFilterCongruence[float64, DistMap](DistMapModule{}, r, []float64{0, 1, 5, Inf}, elems)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIdentityFilter(t *testing.T) {
	r := Identity[DistMap]()
	x := dm(Entry{1, 2})
	if !(DistMapModule{}).Equal(r(x), x) {
		t.Fatal("identity filter changed its input")
	}
}

func TestBoolSetModuleLaws(t *testing.T) {
	elems := [][]NodeID{nil, {1}, {2, 5}, {1, 2, 5}, {0, 9}}
	err := CheckSemimoduleLaws[bool, []NodeID](Boolean{}, BoolSet{}, []bool{false, true}, elems)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBoolSetUnion(t *testing.T) {
	mod := BoolSet{}
	got := mod.Add([]NodeID{1, 3, 5}, []NodeID{2, 3, 6})
	want := []NodeID{1, 2, 3, 5, 6}
	if !mod.Equal(got, want) {
		t.Fatalf("union = %v, want %v", got, want)
	}
}

func TestWidthMapModuleLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	elems := []WidthMap{nil}
	for i := 0; i < 8; i++ {
		n := rng.Intn(6)
		m := make(WidthMap, 0, n)
		node := NodeID(0)
		for j := 0; j < n; j++ {
			node += NodeID(1 + rng.Intn(3))
			m = append(m, WidthEntry{Node: node, Width: 1 + float64(rng.Intn(50))})
		}
		elems = append(elems, m)
	}
	err := CheckSemimoduleLaws[float64, WidthMap](MaxMin{}, WidthMapModule{}, scalarSamples, elems)
	if err != nil {
		t.Fatal(err)
	}
}

func TestWidthMapOps(t *testing.T) {
	mod := WidthMapModule{}
	x := WidthMap{{1, 5}, {3, 8}}
	y := WidthMap{{1, 7}, {2, 2}}
	got := mod.Add(x, y)
	want := WidthMap{{1, 7}, {2, 2}, {3, 8}}
	if !mod.Equal(got, want) {
		t.Fatalf("Add = %v, want %v", got, want)
	}
	capped := mod.SMul(4, x)
	want = WidthMap{{1, 4}, {3, 4}}
	if !mod.Equal(capped, want) {
		t.Fatalf("SMul = %v, want %v", capped, want)
	}
	if mod.SMul(0, x) != nil {
		t.Fatal("SMul(0, x) should be ⊥")
	}
	if got := x.Get(3); got != 8 {
		t.Fatalf("Get(3) = %v, want 8", got)
	}
	if got := x.Get(2); got != 0 {
		t.Fatalf("Get(absent) = %v, want 0", got)
	}
}
