package semiring

// This file is the k-way min-merge kernel of the distance-map semimodule —
// the single merge implementation behind DistMapModule.Add, Aggregate, and
// AggregateBatch, and therefore the inner loop of every MBF-like iteration,
// oracle cross-level merge, and LE-list pass (Lemma 2.3).
//
// The kernel exploits the SoA layout of DistMap: the merge order is decided
// on the contiguous int32 node-ID arrays alone, with the float64 payload
// touched only to apply the per-list shift and combine duplicates. Exhausted
// cursors are represented by an int64 sentinel above every valid node ID, so
// the 3-/4-way merges run a fixed unrolled min over int64 heads with no
// length checks in the comparison path. The dispatch ladder is
//
//	k ≤ 8    direct merge (2-way with galloping run copies, 3-/4-/8-way
//	         unrolled head-min loops; the 8-way pads missing lists with
//	         always-sentinel cursors),
//	k ≤ 512  reduction rounds: groups of ≤ 8 lists merge into pooled
//	         ping-pong arenas (shifts folded in at the leaf round, remainder
//	         groups of one passed through unmerged), ⌈log₈ k⌉ - 1 ≤ 2 rounds
//	         leaving at most 8 lists for the direct finale,
//	k > 512  the classic cursor heap (4-ary, pooled): a third reduction
//	         round would revisit an arena still referenced by a passthrough
//	         view, so past two rounds the heap takes over.

// idSentinel is returned as the head of an exhausted cursor: it compares
// greater than every valid node ID (IDs are int32, including MaxInt32).
const idSentinel = int64(1) << 40

// headOf returns the i-th node ID of ids widened to int64, or idSentinel
// when the cursor is exhausted.
func headOf(ids []NodeID, i int) int64 {
	if i < len(ids) {
		return int64(ids[i])
	}
	return idSentinel
}

// copyShiftInto appends one list, its shift applied, to the output.
func copyShiftInto(oIds []NodeID, oDs []float64, ids []NodeID, ds []float64, s float64) ([]NodeID, []float64) {
	oIds = append(oIds, ids...)
	if s == 0 {
		oDs = append(oDs, ds...)
		return oIds, oDs
	}
	n := len(oDs)
	oDs = append(oDs, ds...)
	shifted := oDs[n:]
	for i := range shifted {
		shifted[i] += s
	}
	return oIds, oDs
}

// gallopIDs returns the number of leading ids strictly below limit, by
// doubling probes then a binary search — O(log r) for a run of length r.
func gallopIDs(ids []NodeID, limit NodeID) int {
	hi := 1
	for hi < len(ids) && ids[hi] < limit {
		hi <<= 1
	}
	if hi > len(ids) {
		hi = len(ids)
	}
	lo := hi >> 1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] < limit {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// merge2Into merges two shifted lists into the output: node-wise minimum on
// equal IDs, a galloping bulk copy when one side runs far ahead (the common
// shape when a long list meets a short one, e.g. the self state against a
// filtered neighbor).
func merge2Into(oIds []NodeID, oDs []float64,
	aIds []NodeID, aDs []float64, sa float64,
	bIds []NodeID, bDs []float64, sb float64) ([]NodeID, []float64) {
	const gallopAfter = 7 // consecutive one-sided takes before switching to a bulk run copy
	i, j := 0, 0
	streakA, streakB := 0, 0
	for i < len(aIds) && j < len(bIds) {
		ai, bi := aIds[i], bIds[j]
		switch {
		case ai < bi:
			oIds = append(oIds, ai)
			oDs = append(oDs, aDs[i]+sa)
			i++
			streakA++
			streakB = 0
			if streakA >= gallopAfter {
				if r := gallopIDs(aIds[i:], bi); r > 0 {
					oIds, oDs = copyShiftInto(oIds, oDs, aIds[i:i+r], aDs[i:i+r], sa)
					i += r
				}
				streakA = 0
			}
		case ai > bi:
			oIds = append(oIds, bi)
			oDs = append(oDs, bDs[j]+sb)
			j++
			streakB++
			streakA = 0
			if streakB >= gallopAfter {
				if r := gallopIDs(bIds[j:], ai); r > 0 {
					oIds, oDs = copyShiftInto(oIds, oDs, bIds[j:j+r], bDs[j:j+r], sb)
					j += r
				}
				streakB = 0
			}
		default:
			d := aDs[i] + sa
			if d2 := bDs[j] + sb; d2 < d {
				d = d2
			}
			oIds = append(oIds, ai)
			oDs = append(oDs, d)
			i++
			j++
			streakA, streakB = 0, 0
		}
	}
	if i < len(aIds) {
		oIds, oDs = copyShiftInto(oIds, oDs, aIds[i:], aDs[i:], sa)
	}
	if j < len(bIds) {
		oIds, oDs = copyShiftInto(oIds, oDs, bIds[j:], bDs[j:], sb)
	}
	return oIds, oDs
}

// merge3Into merges three shifted lists with an unrolled head-min loop.
func merge3Into(oIds []NodeID, oDs []float64,
	ids [][]NodeID, ds [][]float64, shifts []float64) ([]NodeID, []float64) {
	i0, i1, i2 := 0, 0, 0
	a0, a1, a2 := ids[0], ids[1], ids[2]
	d0, d1, d2 := ds[0], ds[1], ds[2]
	s0, s1, s2 := shifts[0], shifts[1], shifts[2]
	h0, h1, h2 := headOf(a0, 0), headOf(a1, 0), headOf(a2, 0)
	for {
		m := h0
		if h1 < m {
			m = h1
		}
		if h2 < m {
			m = h2
		}
		if m == idSentinel {
			return oIds, oDs
		}
		d := Inf
		if h0 == m {
			if v := d0[i0] + s0; v < d {
				d = v
			}
			i0++
			h0 = headOf(a0, i0)
		}
		if h1 == m {
			if v := d1[i1] + s1; v < d {
				d = v
			}
			i1++
			h1 = headOf(a1, i1)
		}
		if h2 == m {
			if v := d2[i2] + s2; v < d {
				d = v
			}
			i2++
			h2 = headOf(a2, i2)
		}
		oIds = append(oIds, NodeID(m))
		oDs = append(oDs, d)
	}
}

// merge4Into merges four shifted lists with an unrolled head-min loop.
func merge4Into(oIds []NodeID, oDs []float64,
	ids [][]NodeID, ds [][]float64, shifts []float64) ([]NodeID, []float64) {
	i0, i1, i2, i3 := 0, 0, 0, 0
	a0, a1, a2, a3 := ids[0], ids[1], ids[2], ids[3]
	d0, d1, d2, d3 := ds[0], ds[1], ds[2], ds[3]
	s0, s1, s2, s3 := shifts[0], shifts[1], shifts[2], shifts[3]
	h0, h1, h2, h3 := headOf(a0, 0), headOf(a1, 0), headOf(a2, 0), headOf(a3, 0)
	for {
		m := h0
		if h1 < m {
			m = h1
		}
		if h2 < m {
			m = h2
		}
		if h3 < m {
			m = h3
		}
		if m == idSentinel {
			return oIds, oDs
		}
		d := Inf
		if h0 == m {
			if v := d0[i0] + s0; v < d {
				d = v
			}
			i0++
			h0 = headOf(a0, i0)
		}
		if h1 == m {
			if v := d1[i1] + s1; v < d {
				d = v
			}
			i1++
			h1 = headOf(a1, i1)
		}
		if h2 == m {
			if v := d2[i2] + s2; v < d {
				d = v
			}
			i2++
			h2 = headOf(a2, i2)
		}
		if h3 == m {
			if v := d3[i3] + s3; v < d {
				d = v
			}
			i3++
			h3 = headOf(a3, i3)
		}
		oIds = append(oIds, NodeID(m))
		oDs = append(oDs, d)
	}
}

// merge8Into merges 5 ≤ k ≤ 8 shifted lists with an unrolled head-min loop;
// missing lists (k < 8) enter as nil, whose head is the sentinel from the
// start and therefore never matches the minimum.
func merge8Into(oIds []NodeID, oDs []float64,
	ids [][]NodeID, ds [][]float64, shifts []float64) ([]NodeID, []float64) {
	var a [8][]NodeID
	var d [8][]float64
	var s [8]float64
	for t := range ids {
		a[t], d[t], s[t] = ids[t], ds[t], shifts[t]
	}
	i0, i1, i2, i3, i4, i5, i6, i7 := 0, 0, 0, 0, 0, 0, 0, 0
	h0, h1, h2, h3 := headOf(a[0], 0), headOf(a[1], 0), headOf(a[2], 0), headOf(a[3], 0)
	h4, h5, h6, h7 := headOf(a[4], 0), headOf(a[5], 0), headOf(a[6], 0), headOf(a[7], 0)
	for {
		m01 := h0
		if h1 < m01 {
			m01 = h1
		}
		m23 := h2
		if h3 < m23 {
			m23 = h3
		}
		m45 := h4
		if h5 < m45 {
			m45 = h5
		}
		m67 := h6
		if h7 < m67 {
			m67 = h7
		}
		if m23 < m01 {
			m01 = m23
		}
		if m67 < m45 {
			m45 = m67
		}
		m := m01
		if m45 < m {
			m = m45
		}
		if m == idSentinel {
			return oIds, oDs
		}
		dv := Inf
		if h0 == m {
			if v := d[0][i0] + s[0]; v < dv {
				dv = v
			}
			i0++
			h0 = headOf(a[0], i0)
		}
		if h1 == m {
			if v := d[1][i1] + s[1]; v < dv {
				dv = v
			}
			i1++
			h1 = headOf(a[1], i1)
		}
		if h2 == m {
			if v := d[2][i2] + s[2]; v < dv {
				dv = v
			}
			i2++
			h2 = headOf(a[2], i2)
		}
		if h3 == m {
			if v := d[3][i3] + s[3]; v < dv {
				dv = v
			}
			i3++
			h3 = headOf(a[3], i3)
		}
		if h4 == m {
			if v := d[4][i4] + s[4]; v < dv {
				dv = v
			}
			i4++
			h4 = headOf(a[4], i4)
		}
		if h5 == m {
			if v := d[5][i5] + s[5]; v < dv {
				dv = v
			}
			i5++
			h5 = headOf(a[5], i5)
		}
		if h6 == m {
			if v := d[6][i6] + s[6]; v < dv {
				dv = v
			}
			i6++
			h6 = headOf(a[6], i6)
		}
		if h7 == m {
			if v := d[7][i7] + s[7]; v < dv {
				dv = v
			}
			i7++
			h7 = headOf(a[7], i7)
		}
		oIds = append(oIds, NodeID(m))
		oDs = append(oDs, dv)
	}
}

// mergeUpTo4Into dispatches on k ≤ 4.
func mergeUpTo4Into(oIds []NodeID, oDs []float64,
	ids [][]NodeID, ds [][]float64, shifts []float64) ([]NodeID, []float64) {
	switch len(ids) {
	case 0:
		return oIds, oDs
	case 1:
		return copyShiftInto(oIds, oDs, ids[0], ds[0], shifts[0])
	case 2:
		return merge2Into(oIds, oDs, ids[0], ds[0], shifts[0], ids[1], ds[1], shifts[1])
	case 3:
		return merge3Into(oIds, oDs, ids, ds, shifts)
	default:
		return merge4Into(oIds, oDs, ids, ds, shifts)
	}
}

// mergeUpTo8Into dispatches on k ≤ 8.
func mergeUpTo8Into(oIds []NodeID, oDs []float64,
	ids [][]NodeID, ds [][]float64, shifts []float64) ([]NodeID, []float64) {
	if len(ids) <= 4 {
		return mergeUpTo4Into(oIds, oDs, ids, ds, shifts)
	}
	return merge8Into(oIds, oDs, ids, ds, shifts)
}

// mergeDistInto merges k shifted sorted (ids, dists) lists into the output
// slices, which must not alias any input: per node ID the minimum shifted
// distance survives. The inputs must be strictly sorted by node ID (the
// DistMap invariant). Scratch buffers come from sc and are pre-sized once
// per call (growDist); the returned slices are the extended outputs.
func mergeDistInto(sc *Scratch, oIds []NodeID, oDs []float64,
	ids [][]NodeID, ds [][]float64, shifts []float64) ([]NodeID, []float64) {
	k := len(ids)
	if k <= 8 {
		return mergeUpTo8Into(oIds, oDs, ids, ds, shifts)
	}
	if k > heapMergeMinLists {
		return heapMergeInto(sc, oIds, oDs, ids, ds, shifts)
	}
	// Reduction rounds: merge groups of ≤ 8 into an arena, reducing the list
	// count by 8× per round; shifts are folded in at the first round, so later
	// rounds and the finale merge shift-free. For 8 < k ≤ 512 (past that the
	// cursor heap takes over) at most two rounds leave ≤ 8 lists for the
	// direct finale. Later rounds read group headers out of sc.rIds while
	// appending the new round's headers into the same backing array; that is
	// safe because group g's reads (indices 8g … 8g+7) finish before its
	// single header append at index g.
	total := 0
	for _, l := range ids {
		total += len(l)
	}
	arena := 0
	for k > 8 {
		a := &sc.arenas[arena]
		arena ^= 1
		// Pre-grow so appends never reallocate: group headers sliced out of
		// the arena must stay valid for the rest of the round.
		if cap(a.ids) < total {
			a.ids = make([]NodeID, 0, total)
			a.ds = make([]float64, 0, total)
		}
		aIds, aDs := a.ids[:0], a.ds[:0]
		groups := (k + 7) / 8
		gIds := sc.rIds[:0]
		gDs := sc.rDs[:0]
		gShifts := sc.rShifts[:0]
		for g := 0; g < groups; g++ {
			lo := g * 8
			hi := lo + 8
			if hi > k {
				hi = k
			}
			if hi-lo == 1 {
				// A remainder group of one list passes through unmerged, shift
				// and all — no arena copy. The view it carries is an original
				// input (round 1) or a round-1 arena slice (round 2); the
				// ping-pong only revisits an arena on a third round, which the
				// k ≤ 512 cap makes unreachable.
				gIds = append(gIds, ids[lo])
				gDs = append(gDs, ds[lo])
				gShifts = append(gShifts, shifts[lo])
				continue
			}
			start := len(aIds)
			aIds, aDs = mergeUpTo8Into(aIds, aDs, ids[lo:hi], ds[lo:hi], shifts[lo:hi])
			gIds = append(gIds, aIds[start:len(aIds):len(aIds)])
			gDs = append(gDs, aDs[start:len(aDs):len(aDs)])
			gShifts = append(gShifts, 0)
		}
		a.ids, a.ds = aIds, aDs
		ids, ds, shifts = gIds, gDs, gShifts
		sc.rIds, sc.rDs, sc.rShifts = gIds, gDs, gShifts
		k = len(ids)
	}
	oIds, oDs = mergeUpTo8Into(oIds, oDs, ids, ds, shifts)
	for i := range sc.rIds {
		sc.rIds[i], sc.rDs[i] = nil, nil // arena views only, but drop them anyway
	}
	sc.rIds, sc.rDs, sc.rShifts = sc.rIds[:0], sc.rDs[:0], sc.rShifts[:0]
	return oIds, oDs
}

// heapMergeMinLists is the list count above which the cursor heap replaces
// the reduction rounds. The rounds cost at most two extra full passes over
// the N entries and beat the heap's per-element siftDown by a wide margin in
// the merge microbenchmarks (BenchmarkMergeKernel: ~4× at k = 40), but the
// singleton-passthrough trick is only sound through two rounds of arena
// ping-pong — so the ladder caps at 8·8·8 = 512 lists and hands anything
// larger to the heap.
const heapMergeMinLists = 512

// heapMergeInto is the large-k fallback: a 4-ary min-heap of (head ID, list)
// cursors over sc.heap/sc.pos, specialised to the SoA layout (no per-element
// callbacks). Equal IDs combine by minimum as they surface.
func heapMergeInto(sc *Scratch, oIds []NodeID, oDs []float64,
	ids [][]NodeID, ds [][]float64, shifts []float64) ([]NodeID, []float64) {
	pos := sc.pos[:0]
	heap := sc.heap[:0]
	for li, l := range ids {
		pos = append(pos, 0)
		if len(l) > 0 {
			heap = append(heap, mergeCursor{node: l[0], li: int32(li)})
		}
	}
	for i := (len(heap) - 2) / 4; i >= 0; i-- {
		siftDown(heap, i)
	}
	for len(heap) > 0 {
		cur := heap[0]
		li := cur.li
		p := pos[li]
		d := ds[li][p] + shifts[li]
		if n := len(oIds); n > 0 && oIds[n-1] == cur.node {
			if d < oDs[n-1] {
				oDs[n-1] = d
			}
		} else {
			oIds = append(oIds, cur.node)
			oDs = append(oDs, d)
		}
		pos[li] = p + 1
		if int(p+1) < len(ids[li]) {
			heap[0].node = ids[li][p+1]
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
			if len(heap) == 0 {
				break
			}
		}
		siftDown(heap, 0)
	}
	sc.pos, sc.heap = pos[:0], heap[:0]
	return oIds, oDs
}
