// Package semiring implements the algebraic core of Friedrichs & Lenzen's
// framework for Moore-Bellman-Ford-like (MBF-like) algorithms (§2 and
// Appendix A of the paper).
//
// An MBF-like algorithm is specified by
//
//	(1) a zero-preserving semimodule M over a semiring S,
//	(2) a congruence relation on M with a representative projection
//	    ("filter") r: M → M, and
//	(3) initial node values x(0) ∈ M^V.
//
// One iteration propagates node states along edges (scalar multiplication
// with the edge weight, an element of S), aggregates incoming states at every
// node (the semimodule addition ⊕), and filters the result (applies r).
// Corollary 2.17 of the paper — r^V ∼ id — guarantees that filtering at any
// intermediate point never changes the final output, only the cost.
//
// This package provides the semiring and semimodule interfaces, the concrete
// algebras used by the paper (min-plus §3.1, max-min §3.2, all-paths §3.3,
// Boolean §3.4), the sparse distance-map semimodule D of Definition 2.1, and
// law-checking helpers used by the property-based tests.
//
// # Aggregation fast path
//
// A semimodule may additionally implement Aggregator, the k-way aggregation
// of Lemma 2.3: the engine then hands it a node's whole neighborhood at once
// and the module computes x(v) ⊕ ⊕_w a_{vw} ⊙ x(w) as one merge, allocating
// only the result, instead of the generic Add/SMul fold that materialises
// ~2·deg(v) intermediates per node. Implement Aggregator when states are
// sorted entry lists (DistMap, WidthMap, the Boolean node sets) or scalars
// (MinPlusSelf, MaxMinSelf) whose ⊕ is a positional merge — the payoff is
// proportional to degree × state size. Rely on the generic fold when ⊕
// combines values with heterogeneous keys or non-positional structure (the
// all-paths PathSet, the next-hop RouteMap): the fold is the semantic
// definition (Definition 2.11), and every Aggregate must be extensionally
// equal to it (pinned by the differential tests in internal/mbf).
package semiring

// NodeID identifies a vertex. Graph code aliases this type; it lives here so
// the algebra packages need no dependency on the graph package.
type NodeID = int32

// Semiring describes a semiring (S, ⊕, ⊙) in the sense of Definition A.2:
// (S, ⊕) is a commutative semigroup with neutral element Zero, (S, ⊙) is a
// semigroup with neutral element One, ⊙ distributes over ⊕ from both sides,
// and Zero annihilates under ⊙.
type Semiring[S any] interface {
	// Add is the semiring addition ⊕.
	Add(a, b S) S
	// Mul is the semiring multiplication ⊙.
	Mul(a, b S) S
	// Zero is the neutral element of Add and the annihilator of Mul.
	Zero() S
	// One is the neutral element of Mul.
	One() S
	// Equal reports whether two elements are equal. It is used by fixpoint
	// detection and by the law-checking tests.
	Equal(a, b S) bool
}

// Semimodule describes a zero-preserving semimodule (M, ⊕, ⊙) over a
// semiring S in the sense of Definition A.3: (M, ⊕) is a semigroup with
// neutral element Zero, scalar multiplication satisfies the mixed
// associative/distributive laws (2.1)–(2.5), and the semiring zero
// annihilates: Zero_S ⊙ x = Zero_M.
type Semimodule[S, M any] interface {
	// Add is the semimodule addition ⊕ (aggregation of node states).
	Add(x, y M) M
	// SMul is the scalar multiplication s ⊙ x (propagation of a node state
	// over an edge of weight s).
	SMul(s S, x M) M
	// Zero is the neutral element ⊥ of Add ("no information").
	Zero() M
	// Equal reports whether two module elements are equal. It is the change
	// detector of the frontier-driven sparse fixpoint engine (mbf): after a
	// node is re-aggregated, Equal against the previous state decides
	// whether the node enters the next frontier, so it must be exact
	// representation equality — cheap (linear in the state size) and never
	// a semantic approximation, or stable nodes would be re-aggregated (or,
	// worse, real changes missed) forever.
	Equal(x, y M) bool
}

// Filter is a representative projection r: M → M for a congruence relation ∼
// on a semimodule (Definition 2.6): x ∼ r(x) for all x, and x ∼ y implies
// r(x) = r(y). Filters discard information that is irrelevant to the problem
// at hand; by Corollary 2.17 they may be applied after any iteration without
// changing the output.
type Filter[M any] func(M) M

// Identity returns the identity filter, the trivial representative
// projection used by algorithms that never discard information (e.g. APSP,
// Example 3.5).
func Identity[M any]() Filter[M] {
	return func(x M) M { return x }
}
