package semiring

// Property-based tests (testing/quick) for the core algebraic structures:
// randomly generated elements must satisfy the semiring/semimodule laws and
// the congruence properties the MBF-like framework rests on. These
// complement the enumerated-sample law checks in semiring_test.go with
// adversarial random inputs.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genDist draws a min-plus scalar, occasionally ∞.
func genDist(r *rand.Rand) float64 {
	if r.Intn(8) == 0 {
		return Inf
	}
	return float64(r.Intn(1 << 16))
}

// genDistMap draws a valid sparse distance map.
func genDistMap(r *rand.Rand) DistMap {
	n := r.Intn(10)
	m := NewDistMap(n)
	node := NodeID(0)
	for i := 0; i < n; i++ {
		node += NodeID(1 + r.Intn(5))
		m = m.Append(node, float64(r.Intn(1000)))
	}
	return m
}

// distMapGen adapts genDistMap to testing/quick's Generator protocol via a
// wrapper type.
type quickDistMap struct{ M DistMap }

// Generate implements quick.Generator.
func (quickDistMap) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickDistMap{M: genDistMap(r)})
}

type quickScalar struct{ S float64 }

// Generate implements quick.Generator.
func (quickScalar) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickScalar{S: genDist(r)})
}

func TestQuickDistMapAddCommutative(t *testing.T) {
	mod := DistMapModule{}
	f := func(a, b quickDistMap) bool {
		return mod.Equal(mod.Add(a.M, b.M), mod.Add(b.M, a.M))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistMapAddAssociative(t *testing.T) {
	mod := DistMapModule{}
	f := func(a, b, c quickDistMap) bool {
		return mod.Equal(
			mod.Add(mod.Add(a.M, b.M), c.M),
			mod.Add(a.M, mod.Add(b.M, c.M)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistMapAddIdempotent(t *testing.T) {
	// min is idempotent: x ⊕ x = x (a semilattice property specific to the
	// tropical algebra that MergeMin exploits).
	mod := DistMapModule{}
	f := func(a quickDistMap) bool {
		return mod.Equal(mod.Add(a.M, a.M), a.M)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistMapSMulDistributes(t *testing.T) {
	mod := DistMapModule{}
	f := func(s quickScalar, a, b quickDistMap) bool {
		return mod.Equal(
			mod.SMul(s.S, mod.Add(a.M, b.M)),
			mod.Add(mod.SMul(s.S, a.M), mod.SMul(s.S, b.M)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistMapSMulComposes(t *testing.T) {
	mod := DistMapModule{}
	sr := MinPlus{}
	f := func(s, u quickScalar, a quickDistMap) bool {
		return mod.Equal(
			mod.SMul(sr.Mul(s.S, u.S), a.M),
			mod.SMul(s.S, mod.SMul(u.S, a.M)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistMapInvariantPreserved(t *testing.T) {
	mod := DistMapModule{}
	f := func(s quickScalar, a, b quickDistMap) bool {
		return mod.Add(a.M, b.M).IsSorted() && mod.SMul(s.S, a.M).IsSorted()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNormalizeIdempotent(t *testing.T) {
	f := func(a quickDistMap) bool {
		n1 := Normalize(a.M)
		return (DistMapModule{}).Equal(Normalize(n1), n1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTopKFilterProperties(t *testing.T) {
	mod := DistMapModule{}
	r := TopKFilter(4, Inf, nil)
	f := func(a, b quickDistMap) bool {
		// Projection: r² = r. Congruence form: r(x⊕y) = r(r(x)⊕r(y)).
		ra := r(a.M)
		if !mod.Equal(r(ra), ra) {
			return false
		}
		if ra.Len() > 4 {
			return false
		}
		return mod.Equal(r(mod.Add(a.M, b.M)), r(mod.Add(r(a.M), r(b.M))))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMergeMinEqualsPairwise(t *testing.T) {
	mod := DistMapModule{}
	f := func(a, b, c, d quickDistMap) bool {
		folded := mod.Add(mod.Add(a.M, b.M), mod.Add(c.M, d.M))
		return mod.Equal(MergeMin(a.M, b.M, c.M, d.M), folded)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBoolSetLattice(t *testing.T) {
	mod := BoolSet{}
	gen := func(r *rand.Rand) []NodeID {
		n := r.Intn(8)
		s := make([]NodeID, 0, n)
		node := NodeID(0)
		for i := 0; i < n; i++ {
			node += NodeID(1 + r.Intn(4))
			s = append(s, node)
		}
		return s
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a, b := gen(r), gen(r)
		if !mod.Equal(mod.Add(a, b), mod.Add(b, a)) {
			t.Fatalf("union not commutative: %v %v", a, b)
		}
		if !mod.Equal(mod.Add(a, a), a) {
			t.Fatalf("union not idempotent: %v", a)
		}
	}
}

func TestQuickWidthMapMaxMinLaws(t *testing.T) {
	mod := WidthMapModule{}
	gen := func(r *rand.Rand) WidthMap {
		n := r.Intn(8)
		m := make(WidthMap, 0, n)
		node := NodeID(0)
		for i := 0; i < n; i++ {
			node += NodeID(1 + r.Intn(4))
			m = append(m, WidthEntry{Node: node, Width: 1 + float64(r.Intn(100))})
		}
		return m
	}
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		a, b := gen(r), gen(r)
		s := float64(r.Intn(50))
		if !mod.Equal(mod.Add(a, b), mod.Add(b, a)) {
			t.Fatal("width Add not commutative")
		}
		if !mod.Equal(mod.SMul(s, mod.Add(a, b)), mod.Add(mod.SMul(s, a), mod.SMul(s, b))) {
			t.Fatal("width SMul does not distribute")
		}
	}
}

func TestQuickPathRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		nodes := make([]NodeID, 0, len(raw))
		for i, v := range raw {
			n := NodeID(v)
			if i > 0 && nodes[len(nodes)-1] == n {
				continue // MakePath rejects repeated adjacent nodes
			}
			nodes = append(nodes, n)
		}
		if len(nodes) == 0 {
			return true
		}
		p := MakePath(nodes...)
		got := p.Nodes()
		if len(got) != len(nodes) {
			return false
		}
		for i := range nodes {
			if got[i] != nodes[i] {
				return false
			}
		}
		return p.First() == nodes[0] && p.Last() == nodes[len(nodes)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
