package semiring

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"strings"

	"parmbf/internal/par"
)

// Entry is one (node, distance) pair of a sparse distance map. Distance maps
// only store non-∞ entries, mirroring the representation of Lemma 2.3.
type Entry struct {
	Node NodeID
	Dist float64
}

// DistMap is an element of the distance-map semimodule D of Definition 2.1:
// a vector in (ℝ≥0 ∪ {∞})^V stored sparsely as entries sorted by node ID.
// Absent nodes implicitly hold ∞. The zero element ⊥ = (∞, …, ∞)ᵀ is the
// empty map.
//
// DistMap values are shared, immutable values under the algebra's
// safe-aliasing contract: operations never mutate their inputs, but they MAY
// return an input unchanged (aliased) when the operation is an identity on
// it — Add with an empty side returns the other side, SMul with s == 0
// returns x. Callers must therefore never mutate a DistMap after handing it
// to (or receiving it from) the algebra or the engine; code that owns a
// value exclusively and wants to recycle its storage uses the explicitly
// in-place variants (SMulInPlace, TopKFilterInPlace, Order.FilterInPlace in
// internal/frt), which are the only operations allowed to write to their
// argument.
type DistMap []Entry

// DistMapModule implements the zero-preserving semimodule D over the
// min-plus semiring (Corollary 2.2): aggregation is the node-wise minimum
// and propagation over an edge of weight s uniformly increases all stored
// distances by s.
type DistMapModule struct{}

// Add returns the node-wise minimum of x and y (Equation 2.6), merging the
// two sorted entry lists.
func (DistMapModule) Add(x, y DistMap) DistMap {
	if len(x) == 0 {
		return y
	}
	if len(y) == 0 {
		return x
	}
	out := make(DistMap, 0, len(x)+len(y))
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i].Node < y[j].Node:
			out = append(out, x[i])
			i++
		case x[i].Node > y[j].Node:
			out = append(out, y[j])
			j++
		default:
			e := x[i]
			if y[j].Dist < e.Dist {
				e.Dist = y[j].Dist
			}
			out = append(out, e)
			i++
			j++
		}
	}
	out = append(out, x[i:]...)
	out = append(out, y[j:]...)
	return out
}

// SMul returns s ⊙ x (Equation 2.7): every stored distance is increased by
// s. Multiplying by ∞ yields ⊥ (Equation 2.2): information does not survive
// propagation over a non-edge. s == 0 is the scalar identity and returns x
// itself — safe under the aliasing contract of DistMap (values are immutable
// once shared), and pinned by TestDistMapSafeAliasing.
func (DistMapModule) SMul(s float64, x DistMap) DistMap {
	if IsInf(s) || len(x) == 0 {
		return nil
	}
	if s == 0 {
		return x
	}
	out := make(DistMap, len(x))
	for i, e := range x {
		out[i] = Entry{Node: e.Node, Dist: e.Dist + s}
	}
	return out
}

// SMulInPlace is SMul for caller-owned values: it shifts the stored
// distances inside x's backing array and returns the (possibly nil) result.
// It must only be applied to a DistMap the caller owns exclusively — never
// to a value that was handed to or received from the algebra or the engine,
// whose sharing discipline treats values as immutable.
func (DistMapModule) SMulInPlace(s float64, x DistMap) DistMap {
	if IsInf(s) || len(x) == 0 {
		return nil
	}
	if s == 0 {
		return x
	}
	for i := range x {
		x[i].Dist += s
	}
	return x
}

// Aggregate implements the Aggregator fast path: the k-way aggregation of
// Lemma 2.3, merging self and every propagated neighbor list in one pass
// (min per node ID, shifts applied on the fly) instead of folding Add/SMul.
// Dead terms (s = ∞ or ⊥ states) are skipped; the result is freshly
// allocated and never aliases an input, so callers may filter it in place.
func (DistMapModule) Aggregate(sc *Scratch, self DistMap, terms []Term[float64, DistMap]) DistMap {
	lists := sc.dist[:0]
	shifts := sc.shifts[:0]
	total := 0
	if len(self) > 0 {
		lists = append(lists, self)
		shifts = append(shifts, 0)
		total += len(self)
	}
	for _, t := range terms {
		if IsInf(t.S) || len(t.X) == 0 {
			continue
		}
		lists = append(lists, t.X)
		shifts = append(shifts, t.S)
		total += len(t.X)
	}
	var out DistMap
	if total > 0 {
		out = make(DistMap, 0, total)
		mergeSorted(sc, lists, func(e Entry) NodeID { return e.Node },
			func(li int32, e Entry, first bool) {
				d := e.Dist + shifts[li]
				if first {
					out = append(out, Entry{Node: e.Node, Dist: d})
				} else if d < out[len(out)-1].Dist {
					out[len(out)-1].Dist = d
				}
			})
	}
	for i := range lists {
		lists[i] = nil // release state references so pooled scratch cannot pin them
	}
	sc.dist, sc.shifts = lists[:0], shifts[:0]
	return out
}

// Zero returns ⊥, the empty distance map.
func (DistMapModule) Zero() DistMap { return nil }

// Equal reports whether x and y store identical entries.
func (DistMapModule) Equal(x, y DistMap) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

var _ Aggregator[float64, DistMap] = DistMapModule{}

// Get returns the distance stored for node v, or ∞ if absent.
func (x DistMap) Get(v NodeID) float64 {
	i := sort.Search(len(x), func(i int) bool { return x[i].Node >= v })
	if i < len(x) && x[i].Node == v {
		return x[i].Dist
	}
	return Inf
}

// Len returns |x|, the number of non-∞ entries.
func (x DistMap) Len() int { return len(x) }

// Clone returns a deep copy of x.
func (x DistMap) Clone() DistMap {
	if len(x) == 0 {
		return nil
	}
	out := make(DistMap, len(x))
	copy(out, x)
	return out
}

// IsSorted reports whether the entries are strictly sorted by node ID, the
// representation invariant of DistMap.
func (x DistMap) IsSorted() bool {
	for i := 1; i < len(x); i++ {
		if x[i-1].Node >= x[i].Node {
			return false
		}
	}
	return true
}

// Normalize sorts the entries by node ID, keeping the minimum distance per
// node, and drops ∞ entries. It is used to establish the representation
// invariant on entry lists built out of order.
func Normalize(x DistMap) DistMap {
	if len(x) == 0 {
		return nil
	}
	out := x.Clone()
	// Large merges use the parallel sort (the Lemma 2.3 aggregation path of
	// the oracle); small ones the standard library.
	par.Sort(out, func(a, b Entry) bool {
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Dist < b.Dist
	})
	w := 0
	for i := 0; i < len(out); i++ {
		if IsInf(out[i].Dist) {
			continue
		}
		if w > 0 && out[w-1].Node == out[i].Node {
			continue
		}
		out[w] = out[i]
		w++
	}
	return out[:w]
}

// MergeMin computes ⊕ over many distance maps at once, the aggregation step
// of Lemma 2.3. It is equivalent to folding Add but allocates once.
func MergeMin(xs ...DistMap) DistMap {
	switch len(xs) {
	case 0:
		return nil
	case 1:
		return xs[0]
	case 2:
		return DistMapModule{}.Add(xs[0], xs[1])
	}
	total := 0
	for _, x := range xs {
		total += len(x)
	}
	if total == 0 {
		return nil
	}
	all := make(DistMap, 0, total)
	for _, x := range xs {
		all = append(all, x...)
	}
	return Normalize(all)
}

// String renders the map as "{v:d, …}" for debugging and test failure
// messages.
func (x DistMap) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range x {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%g", e.Node, e.Dist)
	}
	b.WriteByte('}')
	return b.String()
}

// TopKFilter returns the representative projection of source detection
// (Example 3.2): keep only entries whose node is in sources (nil means all
// nodes), whose distance is at most maxDist, and which are among the k
// smallest entries (ties broken by node ID). k ≤ 0 means unbounded. The
// input is left untouched; the result never shares storage with it.
func TopKFilter(k int, maxDist float64, sources func(NodeID) bool) Filter[DistMap] {
	return func(x DistMap) DistMap {
		kept := make(DistMap, 0, len(x))
		for _, e := range x {
			if e.Dist <= maxDist && (sources == nil || sources(e.Node)) {
				kept = append(kept, e)
			}
		}
		return topKTruncate(kept, k)
	}
}

// TopKFilterInPlace is TopKFilter for caller-owned values: it compacts the
// surviving entries into x's backing array and returns the truncated slice,
// allocating nothing. The engine applies it to the freshly merged output of
// the aggregation fast path; it must never be used on shared DistMap values
// (see the type's aliasing contract).
func TopKFilterInPlace(k int, maxDist float64, sources func(NodeID) bool) Filter[DistMap] {
	return func(x DistMap) DistMap {
		kept := x[:0]
		for _, e := range x {
			if e.Dist <= maxDist && (sources == nil || sources(e.Node)) {
				kept = append(kept, e)
			}
		}
		return topKTruncate(kept, k)
	}
}

// topKTruncate reduces kept (sorted by node ID) to its k smallest entries by
// (distance, node), restoring node order afterwards. It sorts in place.
func topKTruncate(kept DistMap, k int) DistMap {
	if k > 0 && len(kept) > k {
		slices.SortFunc(kept, func(a, b Entry) int {
			if a.Dist != b.Dist {
				return cmp.Compare(a.Dist, b.Dist)
			}
			return cmp.Compare(a.Node, b.Node)
		})
		kept = kept[:k]
		slices.SortFunc(kept, func(a, b Entry) int { return cmp.Compare(a.Node, b.Node) })
	}
	if len(kept) == 0 {
		return nil
	}
	return kept
}
