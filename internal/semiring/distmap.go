package semiring

import (
	"fmt"
	"sort"
	"strings"
	"unsafe"

	"parmbf/internal/par"
)

// Entry is one (node, distance) pair of a sparse distance map. It is the
// construction and inspection currency of DistMap; the map itself stores the
// two components in separate arrays (see below).
type Entry struct {
	Node NodeID
	Dist float64
}

// DistMap is an element of the distance-map semimodule D of Definition 2.1:
// a vector in (ℝ≥0 ∪ {∞})^V stored sparsely, sorted by node ID. Absent nodes
// implicitly hold ∞. The zero element ⊥ = (∞, …, ∞)ᵀ is the zero DistMap.
//
// # Representation
//
// The entries are stored as a structure of arrays: a node-ID slice and a
// parallel distance slice of equal length. The k-way merge kernel of
// Lemma 2.3 (distmerge.go) runs over the contiguous int32 IDs and touches
// the float payload only to combine duplicates, which is what makes the
// aggregation fast path branch-light and cache-friendly; Get answers by
// binary search over the ID array alone. Freshly allocated results carry
// both arrays in one pointer-free heap block (see allocPairs), so the split
// layout costs no extra allocations over an interleaved one.
//
// # Sharing and aliasing contract
//
// A DistMap value is a pair of slice headers. Copying the value (assignment,
// passing, returning) shares the underlying arrays — it never copies
// entries. The algebra relies on this: operations never mutate their inputs,
// but they MAY return a value sharing storage with an input when that is
// sound — Add with an empty side returns the other side unchanged, SMul
// shares the input's ID array (only the distances shift, so a fresh distance
// array is paired with the same IDs), and SMul with s == 0 returns x itself.
// Callers must therefore never mutate a DistMap after handing it to (or
// receiving it from) the algebra or the engine.
//
// Code that owns a value exclusively — in practice: the freshly merged
// output of Aggregate, or a Clone — may use the explicitly in-place
// operations, which are the only ones allowed to write to their argument:
// SMulInPlace (rewrites distances), TopKFilterInPlace, Compact, SortFunc,
// and Order.FilterInPlace in internal/frt (all of which reorder or compact
// both arrays). Applying them to a value that shares storage with a state
// vector corrupts every alias, including the shared ID array of an SMul
// result.
type DistMap struct {
	ids []NodeID
	ds  []float64
}

// allocPairs returns empty id/distance slices of capacity n carved from one
// pointer-free allocation: a []float64 block whose first n elements back the
// distances and whose tail is reinterpreted as the node-ID array. Every
// DistMap result then costs one heap object instead of two — on
// wavefront-shaped fixpoints, where states are near-singletons and the engine
// materialises one result per live node per iteration, the allocation count
// (and with it GC mark work) is the dominant layout cost, not bytes.
//
// Safety: float64 alignment (8) covers NodeID alignment (4); the ID slice is
// an interior pointer into the block, which keeps the whole block live; both
// element types are pointer-free, so the garbage collector never scans the
// block. Appends beyond capacity fall back to ordinary slice growth, which
// simply splits the pair onto separate backing arrays again.
func allocPairs(n int) (ids []NodeID, ds []float64) {
	if n <= 0 {
		return nil, nil
	}
	buf := make([]float64, n+(n+1)/2)
	ds = buf[:0:n]
	ids = unsafe.Slice((*NodeID)(unsafe.Pointer(&buf[n])), n)[:0]
	return ids, ds
}

// FromEntries builds a DistMap from entries, which must be strictly sorted
// by node ID (the representation invariant; use Normalize for unsorted
// input). The entries are copied.
func FromEntries(entries ...Entry) DistMap {
	if len(entries) == 0 {
		return DistMap{}
	}
	x := DistMap{ids: make([]NodeID, len(entries)), ds: make([]float64, len(entries))}
	for i, e := range entries {
		x.ids[i] = e.Node
		x.ds[i] = e.Dist
	}
	return x
}

// SingletonDist returns the one-entry map {v: d}.
func SingletonDist(v NodeID, d float64) DistMap {
	return DistMap{ids: []NodeID{v}, ds: []float64{d}}
}

// SingletonStates returns the n-vector (SingletonDist(0,0), …,
// SingletonDist(n−1,0)) — the standard initial state of an
// all-sources fixpoint — with every singleton carved from one shared
// backing allocation instead of n separate two-slice allocations. At
// n = 2^20 that is 3 allocations instead of ~2 million, and the backing
// is 12 bytes per node instead of two size-classed slivers. Sharing is
// safe under the aliasing contract: DistMap values are immutable once
// published, and the engines only apply in-place filters to merge results
// they own, never to inputs.
func SingletonStates(n int) []DistMap {
	ids, ds := allocPairs(n)
	ids, ds = ids[:n], ds[:n]
	states := make([]DistMap, n)
	for v := 0; v < n; v++ {
		ids[v] = NodeID(v)
		// ds is zeroed by allocPairs; each singleton views its own element.
		states[v] = DistMap{ids: ids[v : v+1 : v+1], ds: ds[v : v+1 : v+1]}
	}
	return states
}

// NewDistMap returns an empty map with capacity for n entries, for callers
// that build a map incrementally with Append.
func NewDistMap(n int) DistMap {
	return DistMap{ids: make([]NodeID, 0, n), ds: make([]float64, 0, n)}
}

// Append appends an entry, growing like the built-in append, and returns the
// extended map. Entries must be appended in strictly increasing node order
// to preserve the representation invariant.
func (x DistMap) Append(v NodeID, d float64) DistMap {
	return DistMap{ids: append(x.ids, v), ds: append(x.ds, d)}
}

// Len returns |x|, the number of non-∞ entries.
func (x DistMap) Len() int { return len(x.ids) }

// Node returns the node ID of the i-th entry.
func (x DistMap) Node(i int) NodeID { return x.ids[i] }

// Dist returns the distance of the i-th entry.
func (x DistMap) Dist(i int) float64 { return x.ds[i] }

// Entry returns the i-th entry as a pair.
func (x DistMap) Entry(i int) Entry { return Entry{Node: x.ids[i], Dist: x.ds[i]} }

// Entries returns a fresh entry slice (for tests, IO, and debugging; the hot
// paths use indexed access).
func (x DistMap) Entries() []Entry {
	if len(x.ids) == 0 {
		return nil
	}
	out := make([]Entry, len(x.ids))
	for i := range x.ids {
		out[i] = Entry{Node: x.ids[i], Dist: x.ds[i]}
	}
	return out
}

// Get returns the distance stored for node v, or ∞ if absent.
func (x DistMap) Get(v NodeID) float64 {
	i := sort.Search(len(x.ids), func(i int) bool { return x.ids[i] >= v })
	if i < len(x.ids) && x.ids[i] == v {
		return x.ds[i]
	}
	return Inf
}

// Clone returns a deep copy of x, which the caller owns exclusively.
func (x DistMap) Clone() DistMap {
	if len(x.ids) == 0 {
		return DistMap{}
	}
	ids, ds := allocPairs(len(x.ids))
	return DistMap{ids: append(ids, x.ids...), ds: append(ds, x.ds...)}
}

// IsSorted reports whether the entries are strictly sorted by node ID, the
// representation invariant of DistMap.
func (x DistMap) IsSorted() bool {
	for i := 1; i < len(x.ids); i++ {
		if x.ids[i-1] >= x.ids[i] {
			return false
		}
	}
	return true
}

// SortFunc sorts the entries of an exclusively owned map in place by the
// given ordering (see the aliasing contract). The sort is not stable; use a
// total order (every ordering in this library breaks ties by node ID, which
// is unique per map).
func (x DistMap) SortFunc(less func(a, b Entry) bool) {
	sortPairs(x.ids, x.ds, less)
}

// Compact keeps, in order, the entries an exclusively owned map for which
// keep returns true, compacting them to the front of x's storage, and
// returns the kept prefix (see the aliasing contract). keep is called once
// per entry in ascending index order, so stateful sweeps are sound.
func (x DistMap) Compact(keep func(Entry) bool) DistMap {
	w := 0
	for i := range x.ids {
		if keep(Entry{Node: x.ids[i], Dist: x.ds[i]}) {
			x.ids[w] = x.ids[i]
			x.ds[w] = x.ds[i]
			w++
		}
	}
	return DistMap{ids: x.ids[:w], ds: x.ds[:w]}
}

// String renders the map as "{v:d, …}" for debugging and test failure
// messages.
func (x DistMap) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i := range x.ids {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%g", x.ids[i], x.ds[i])
	}
	b.WriteByte('}')
	return b.String()
}

// DistMapModule implements the zero-preserving semimodule D over the
// min-plus semiring (Corollary 2.2): aggregation is the node-wise minimum
// and propagation over an edge of weight s uniformly increases all stored
// distances by s.
type DistMapModule struct{}

// Add returns the node-wise minimum of x and y (Equation 2.6). It is the
// k = 2 case of the shared SoA merge kernel (distmerge.go), so there is
// exactly one merge implementation; an empty side returns the other side
// unchanged (aliased), per the sharing contract.
func (DistMapModule) Add(x, y DistMap) DistMap {
	if x.Len() == 0 {
		return y
	}
	if y.Len() == 0 {
		return x
	}
	oIds, oDs := allocPairs(x.Len() + y.Len())
	oIds, oDs = merge2Into(oIds, oDs, x.ids, x.ds, 0, y.ids, y.ds, 0)
	return DistMap{ids: oIds, ds: oDs}
}

// SMul returns s ⊙ x (Equation 2.7): every stored distance is increased by
// s. Multiplying by ∞ yields ⊥ (Equation 2.2): information does not survive
// propagation over a non-edge. s == 0 is the scalar identity and returns x
// itself; for s > 0 the result shares x's node-ID array and carries a fresh
// distance array — both safe under the aliasing contract of DistMap (values
// are immutable once shared), and pinned by TestDistMapSafeAliasing.
func (DistMapModule) SMul(s float64, x DistMap) DistMap {
	if IsInf(s) || x.Len() == 0 {
		return DistMap{}
	}
	if s == 0 {
		return x
	}
	ds := make([]float64, len(x.ds))
	for i, d := range x.ds {
		ds[i] = d + s
	}
	return DistMap{ids: x.ids, ds: ds}
}

// SMulInPlace is SMul for caller-owned values: it shifts the stored
// distances inside x's backing array and returns the (possibly empty)
// result. It must only be applied to a DistMap the caller owns exclusively —
// never to a value that was handed to or received from the algebra or the
// engine, whose sharing discipline treats values as immutable.
func (DistMapModule) SMulInPlace(s float64, x DistMap) DistMap {
	if IsInf(s) || x.Len() == 0 {
		return DistMap{}
	}
	if s == 0 {
		return x
	}
	for i := range x.ds {
		x.ds[i] += s
	}
	return x
}

// Aggregate implements the Aggregator fast path: the k-way aggregation of
// Lemma 2.3, merging self and every propagated neighbor list in one pass
// (min per node ID, shifts applied on the fly) instead of folding Add/SMul.
// Dead terms (s = ∞ or ⊥ states) are skipped; the result is freshly
// allocated and never aliases an input, so callers may filter it in place.
//
// The merge runs over the SoA node-ID arrays through the branch-light
// kernel of distmerge.go: direct 2-/3-/4-way merges for small k, two-level
// reduction rounds for moderate k, and the cursor heap only for large k.
func (DistMapModule) Aggregate(sc *Scratch, self DistMap, terms []Term[float64, DistMap]) DistMap {
	var sb smallLists
	if n, total, ok := sb.gather(self, terms); ok {
		if total == 0 {
			return DistMap{}
		}
		oIds, oDs := allocPairs(total)
		oIds, oDs = mergeUpTo8Into(oIds, oDs, sb.ids[:n], sb.ds[:n], sb.shifts[:n])
		return DistMap{ids: oIds, ds: oDs}
	}
	sc.growDist(len(terms) + 1)
	ids := sc.dIds[:0]
	ds := sc.dDs[:0]
	shifts := sc.shifts[:0]
	total := 0
	if self.Len() > 0 {
		ids = append(ids, self.ids)
		ds = append(ds, self.ds)
		shifts = append(shifts, 0)
		total += self.Len()
	}
	for _, t := range terms {
		if IsInf(t.S) || t.X.Len() == 0 {
			continue
		}
		ids = append(ids, t.X.ids)
		ds = append(ds, t.X.ds)
		shifts = append(shifts, t.S)
		total += t.X.Len()
	}
	var out DistMap
	if total > 0 {
		oIds, oDs := allocPairs(total)
		oIds, oDs = mergeDistInto(sc, oIds, oDs, ids, ds, shifts)
		out = DistMap{ids: oIds, ds: oDs}
	}
	for i := range ids {
		ids[i], ds[i] = nil, nil // release state references so pooled scratch cannot pin them
	}
	sc.dIds, sc.dDs, sc.shifts = ids[:0], ds[:0], shifts[:0]
	return out
}

// AggregateFiltered implements the fused aggregate-then-filter fast path:
// the k-way merge runs into a scratch-owned output buffer, the filter is
// applied there in place, and only the surviving entries are copied into the
// freshly allocated result. Under a top-k projection this shrinks the
// per-node allocation from the raw merge size to the filtered size, and the
// retained state vectors stay dense for the next iteration's reads.
func (m DistMapModule) AggregateFiltered(sc *Scratch, self DistMap, terms []Term[float64, DistMap], filter Filter[DistMap]) DistMap {
	var sb smallLists
	if n, total, ok := sb.gather(self, terms); ok {
		var merged DistMap
		if total > 0 {
			o := &sc.out
			if cap(o.ids) < total {
				o.ids = make([]NodeID, 0, total)
				o.ds = make([]float64, 0, total)
			}
			oIds, oDs := mergeUpTo8Into(o.ids[:0], o.ds[:0], sb.ids[:n], sb.ds[:n], sb.shifts[:n])
			o.ids, o.ds = oIds[:0], oDs[:0]
			merged = DistMap{ids: oIds, ds: oDs}
		}
		if filter != nil {
			merged = filter(merged)
		}
		// Right-size the survivors into one fresh block (see allocPairs).
		return merged.Clone()
	}
	sc.growDist(len(terms) + 1)
	ids := sc.dIds[:0]
	ds := sc.dDs[:0]
	shifts := sc.shifts[:0]
	total := 0
	if self.Len() > 0 {
		ids = append(ids, self.ids)
		ds = append(ds, self.ds)
		shifts = append(shifts, 0)
		total += self.Len()
	}
	for _, t := range terms {
		if IsInf(t.S) || t.X.Len() == 0 {
			continue
		}
		ids = append(ids, t.X.ids)
		ds = append(ds, t.X.ds)
		shifts = append(shifts, t.S)
		total += t.X.Len()
	}
	var merged DistMap
	if total > 0 {
		o := &sc.out
		// Pre-grow so the merge never reallocates out of the scratch buffer.
		if cap(o.ids) < total {
			o.ids = make([]NodeID, 0, total)
			o.ds = make([]float64, 0, total)
		}
		oIds, oDs := mergeDistInto(sc, o.ids[:0], o.ds[:0], ids, ds, shifts)
		o.ids, o.ds = oIds[:0], oDs[:0]
		merged = DistMap{ids: oIds, ds: oDs}
	}
	for i := range ids {
		ids[i], ds[i] = nil, nil // release state references so pooled scratch cannot pin them
	}
	sc.dIds, sc.dDs, sc.shifts = ids[:0], ds[:0], shifts[:0]
	if filter != nil {
		merged = filter(merged)
	}
	if merged.Len() == 0 {
		return DistMap{}
	}
	// Right-size the survivors into one fresh block (see allocPairs).
	return merged.Clone()
}

// smallLists is the stack-resident gather buffer of the ≤ 8-list
// aggregation fast path. Gathering list headers into the pooled scratch
// slices costs a GC write barrier per pointer on the way in and another on
// the release nil-out — pure overhead that dominates wavefront-shaped
// fixpoints, where almost every state is ⊥ or a near-singleton and nearly
// every aggregation on a bounded-degree graph has ≤ 8 live lists. A stack
// buffer has no barriers and nothing to release.
type smallLists struct {
	ids    [8][]NodeID
	ds     [8][]float64
	shifts [8]float64
}

// gather fills b with the live lists (finite scalar, non-⊥ state) of an
// aggregation in input order, self first. ok reports whether everything fit;
// on overflow the caller takes the scratch-backed general path (the partial
// gather is discarded — rescanning costs two comparisons per term).
func (b *smallLists) gather(self DistMap, terms []Term[float64, DistMap]) (n, total int, ok bool) {
	if self.Len() > 0 {
		b.ids[0], b.ds[0], b.shifts[0] = self.ids, self.ds, 0
		n, total = 1, self.Len()
	}
	for i := range terms {
		t := &terms[i] // by pointer: a Term is 56 bytes, too wide to copy per visit
		l := len(t.X.ids)
		if IsInf(t.S) || l == 0 {
			continue
		}
		if n == len(b.ids) {
			return n, total, false
		}
		b.ids[n], b.ds[n], b.shifts[n] = t.X.ids, t.X.ds, t.S
		total += l
		n++
	}
	return n, total, true
}

// AggregateBatch is the batched multi-source sweep entry point: it computes,
// for every lane b, the k-way aggregation selfs[b] ⊕ ⊕_i terms[b][i] through
// the same SoA kernel, sharing one scratch (cursor heap, reduction arenas,
// shift buffers stay hot across lanes). outs[b] receives lane b's result,
// which never aliases any input. It powers mbf.Runner.IterateBatch, where
// one pass over the CSR arcs gathers the terms of every lane at once.
func (m DistMapModule) AggregateBatch(sc *Scratch, selfs []DistMap, terms [][]Term[float64, DistMap], outs []DistMap) {
	for b := range selfs {
		outs[b] = m.Aggregate(sc, selfs[b], terms[b])
	}
}

// Zero returns ⊥, the empty distance map.
func (DistMapModule) Zero() DistMap { return DistMap{} }

// Equal reports whether x and y store identical entries.
func (DistMapModule) Equal(x, y DistMap) bool {
	if len(x.ids) != len(y.ids) {
		return false
	}
	for i := range x.ids {
		if x.ids[i] != y.ids[i] {
			return false
		}
	}
	for i := range x.ds {
		if x.ds[i] != y.ds[i] {
			return false
		}
	}
	return true
}

var (
	_ Aggregator[float64, DistMap]         = DistMapModule{}
	_ BatchAggregator[float64, DistMap]    = DistMapModule{}
	_ FilteredAggregator[float64, DistMap] = DistMapModule{}
)

// Normalize sorts the entries by node ID, keeping the minimum distance per
// node, and drops ∞ entries. It is used to establish the representation
// invariant on entry lists built out of order.
func Normalize(x DistMap) DistMap {
	if x.Len() == 0 {
		return DistMap{}
	}
	out := x.Entries()
	// Large merges use the parallel sort (the Lemma 2.3 aggregation path of
	// the oracle); small ones the standard library.
	par.Sort(out, func(a, b Entry) bool {
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Dist < b.Dist
	})
	w := 0
	for i := 0; i < len(out); i++ {
		if IsInf(out[i].Dist) {
			continue
		}
		if w > 0 && out[w-1].Node == out[i].Node {
			continue
		}
		out[w] = out[i]
		w++
	}
	return FromEntries(out[:w]...)
}

// MergeMin computes ⊕ over many distance maps at once, the aggregation step
// of Lemma 2.3. It is equivalent to folding Add but merges in one pass
// through the k-way kernel over pooled scratch semantics (here: a local
// scratch, since MergeMin is not on the engine's hot path).
func MergeMin(xs ...DistMap) DistMap {
	switch len(xs) {
	case 0:
		return DistMap{}
	case 1:
		return xs[0]
	case 2:
		return DistMapModule{}.Add(xs[0], xs[1])
	}
	var sc Scratch
	terms := make([]Term[float64, DistMap], len(xs))
	for i, x := range xs {
		terms[i] = Term[float64, DistMap]{S: 0, X: x}
	}
	return DistMapModule{}.Aggregate(&sc, DistMap{}, terms)
}

// SupportedVia reports whether some entry (t, d) of xq is derivable from xw
// over an arc of weight a — i.e. whether xw holds an entry (t, dw) with
// d == a + dw exactly. In a min-plus fixpoint every non-self entry of a node
// has such a supporting in-neighbor (the next hop of a shortest path, where
// the LE-list suffix property keeps the target alive through the filter), so
// the incremental-repair taint walk uses this predicate to trace which
// states an edge deletion or weight increase can invalidate. The comparison
// is float-exact by design: the fixpoint derived d as a + dw with this very
// addition, so checking a + dw == d (never d − a == dw, which floating-point
// subtraction does not invert) identifies derivations bitwise.
//
// Both maps are sorted by node ID (the representation invariant), so this is
// one linear merge-join over the SoA arrays with no allocation.
func SupportedVia(xq, xw DistMap, a float64) bool {
	found := false
	SupportedEntries(xq, xw, a, func(int, int) { found = true })
	return found
}

// SupportedEntries visits every individual derivation of xq from xw over an
// arc of weight a: each pair of positions (i, j) with
// xq.ids[i] == xw.ids[j] and xq.ds[i] == a + xw.ds[j] exactly. This is the
// entry-granular form of SupportedVia — the taint walk uses it to propagate
// invalidation per source rather than per node, so an edit only taints the
// entries whose own support chain crosses the edited edge instead of every
// node any shortest path happens to route through. Node IDs match at most
// once per map (IDs are unique within a list), so yield fires at most
// min(len(xq), len(xw)) times in one linear merge-join.
func SupportedEntries(xq, xw DistMap, a float64, yield func(i, j int)) {
	i, j := 0, 0
	for i < len(xq.ids) && j < len(xw.ids) {
		switch {
		case xq.ids[i] < xw.ids[j]:
			i++
		case xq.ids[i] > xw.ids[j]:
			j++
		default:
			if xq.ds[i] == a+xw.ds[j] {
				yield(i, j)
			}
			i++
			j++
		}
	}
}

// TopKFilter returns the representative projection of source detection
// (Example 3.2): keep only entries whose node is in sources (nil means all
// nodes), whose distance is at most maxDist, and which are among the k
// smallest entries (ties broken by node ID). k ≤ 0 means unbounded. The
// input is left untouched; the result never shares storage with it.
func TopKFilter(k int, maxDist float64, sources func(NodeID) bool) Filter[DistMap] {
	inPlace := TopKFilterInPlace(k, maxDist, sources)
	return func(x DistMap) DistMap {
		return inPlace(x.Clone())
	}
}

// TopKFilterInPlace is TopKFilter for caller-owned values: it compacts the
// surviving entries into x's backing arrays, allocating nothing for k ≤ 64.
// The engine applies it to the freshly merged output of the aggregation fast
// path; it must never be used on shared DistMap values (see the type's
// aliasing contract).
//
// The k smallest entries by (distance, node) are selected with a bounded
// max-heap threshold scan instead of a full sort; since the input is sorted
// by node ID and the survivor set is unique (node IDs are distinct), the
// in-order compaction already leaves the result sorted — no re-sort pass.
func TopKFilterInPlace(k int, maxDist float64, sources func(NodeID) bool) Filter[DistMap] {
	if IsInf(maxDist) && sources == nil {
		// Pure top-k: no compaction pass, and the truncation guard sits
		// directly in the closure — the engine calls the filter once per
		// recomputed node, and on wavefront workloads nearly every state is
		// already within k.
		return func(x DistMap) DistMap {
			if k > 0 && x.Len() > k {
				x = topKSelect(x, k)
			}
			if x.Len() == 0 {
				return DistMap{}
			}
			return x
		}
	}
	return func(x DistMap) DistMap {
		kept := x
		if !IsInf(maxDist) || sources != nil {
			kept = x.Compact(func(e Entry) bool {
				return e.Dist <= maxDist && (sources == nil || sources(e.Node))
			})
		}
		kept = topKTruncate(kept, k)
		if kept.Len() == 0 {
			return DistMap{}
		}
		return kept
	}
}

// topKTruncate reduces kept (sorted by node ID) to its k smallest entries by
// (distance, node) in place, preserving node order. It selects the k-th
// smallest pair with a bounded max-heap over stack (k ≤ 64) or heap scratch
// and keeps exactly the entries at or below that threshold — the same
// survivor set a full (distance, node) sort would keep, without sorting.
func topKTruncate(kept DistMap, k int) DistMap {
	// The guard lives apart from the selection so it inlines into the filter
	// closures: the common case (nothing to truncate) must not pay the
	// prologue zeroing of the selection's stack-resident heap buffers.
	if k <= 0 || kept.Len() <= k {
		return kept
	}
	return topKSelect(kept, k)
}

// topKSelect is the truncating path of topKTruncate; kept.Len() > k > 0.
func topKSelect(kept DistMap, k int) DistMap {
	var idBuf [64]NodeID
	var dBuf [64]float64
	var hIds []NodeID
	var hDs []float64
	if k <= len(idBuf) {
		hIds, hDs = idBuf[:k], dBuf[:k]
	} else {
		hIds, hDs = make([]NodeID, k), make([]float64, k)
	}
	// Max-heap of the k smallest (dist, node) pairs seen so far; the root is
	// the running threshold.
	ids, ds := kept.ids, kept.ds
	for i := 0; i < k; i++ {
		hIds[i], hDs[i] = ids[i], ds[i]
	}
	for i := k / 2; i >= 0; i-- {
		siftDownMax(hIds, hDs, i)
	}
	for i := k; i < len(ids); i++ {
		if pairLess(ds[i], ids[i], hDs[0], hIds[0]) {
			hIds[0], hDs[0] = ids[i], ds[i]
			siftDownMax(hIds, hDs, 0)
		}
	}
	tid, td := hIds[0], hDs[0]
	w := 0
	for i := range ids {
		if pairLess(ds[i], ids[i], td, tid) || (ds[i] == td && ids[i] == tid) {
			ids[w], ds[w] = ids[i], ds[i]
			w++
		}
	}
	return DistMap{ids: ids[:w], ds: ds[:w]}
}

// pairLess orders (dist, node) pairs lexicographically — the tie-break order
// of the top-k filter.
func pairLess(ad float64, ai NodeID, bd float64, bi NodeID) bool {
	return ad < bd || (ad == bd && ai < bi)
}

// siftDownMax restores the binary max-heap property (ordered by pairLess,
// largest pair at the root) at index i of the parallel-array heap.
func siftDownMax(hIds []NodeID, hDs []float64, i int) {
	n := len(hIds)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && pairLess(hDs[big], hIds[big], hDs[l], hIds[l]) {
			big = l
		}
		if r < n && pairLess(hDs[big], hIds[big], hDs[r], hIds[r]) {
			big = r
		}
		if big == i {
			return
		}
		hIds[i], hIds[big] = hIds[big], hIds[i]
		hDs[i], hDs[big] = hDs[big], hDs[i]
		i = big
	}
}

// sortPairs sorts the parallel (ids, dists) arrays by less: insertion sort
// for short runs, quicksort with median-of-three pivots above, heapsort on
// pathological recursion depth — allocation-free and deterministic for the
// total orders used in this library.
func sortPairs(ids []NodeID, ds []float64, less func(a, b Entry) bool) {
	sortPairsRange(ids, ds, 0, len(ids), 2*bitsLen(len(ids)), less)
}

func bitsLen(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}

func sortPairsRange(ids []NodeID, ds []float64, lo, hi, depth int, less func(a, b Entry) bool) {
	for hi-lo > 16 {
		if depth == 0 {
			heapSortPairs(ids, ds, lo, hi, less)
			return
		}
		depth--
		p := medianOfThreePivot(ids, ds, lo, hi, less)
		i, j := lo, hi-1
		for i <= j {
			for less(Entry{ids[i], ds[i]}, p) {
				i++
			}
			for less(p, Entry{ids[j], ds[j]}) {
				j--
			}
			if i <= j {
				ids[i], ids[j] = ids[j], ids[i]
				ds[i], ds[j] = ds[j], ds[i]
				i++
				j--
			}
		}
		// Recurse on the smaller half, loop on the larger.
		if j-lo < hi-i {
			sortPairsRange(ids, ds, lo, j+1, depth, less)
			lo = i
		} else {
			sortPairsRange(ids, ds, i, hi, depth, less)
			hi = j + 1
		}
	}
	// Insertion sort for the short tail.
	for i := lo + 1; i < hi; i++ {
		id, d := ids[i], ds[i]
		j := i - 1
		for j >= lo && less(Entry{id, d}, Entry{ids[j], ds[j]}) {
			ids[j+1], ds[j+1] = ids[j], ds[j]
			j--
		}
		ids[j+1], ds[j+1] = id, d
	}
}

func medianOfThreePivot(ids []NodeID, ds []float64, lo, hi int, less func(a, b Entry) bool) Entry {
	m := lo + (hi-lo)/2
	a, b, c := Entry{ids[lo], ds[lo]}, Entry{ids[m], ds[m]}, Entry{ids[hi-1], ds[hi-1]}
	if less(b, a) {
		a, b = b, a
	}
	if less(c, b) {
		b = c
		if less(b, a) {
			b = a
		}
	}
	return b
}

func heapSortPairs(ids []NodeID, ds []float64, lo, hi int, less func(a, b Entry) bool) {
	n := hi - lo
	sift := func(i, n int) {
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < n && less(Entry{ids[lo+big], ds[lo+big]}, Entry{ids[lo+l], ds[lo+l]}) {
				big = l
			}
			if r < n && less(Entry{ids[lo+big], ds[lo+big]}, Entry{ids[lo+r], ds[lo+r]}) {
				big = r
			}
			if big == i {
				return
			}
			ids[lo+i], ids[lo+big] = ids[lo+big], ids[lo+i]
			ds[lo+i], ds[lo+big] = ds[lo+big], ds[lo+i]
			i = big
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		sift(i, n)
	}
	for end := n - 1; end > 0; end-- {
		ids[lo], ids[lo+end] = ids[lo+end], ids[lo]
		ds[lo], ds[lo+end] = ds[lo+end], ds[lo]
		sift(0, end)
	}
}
