package semiring

import (
	"math/rand"
	"testing"
)

func benchDistMap(n int, seed int64) DistMap {
	rng := rand.New(rand.NewSource(seed))
	m := make(DistMap, 0, n)
	node := NodeID(0)
	for i := 0; i < n; i++ {
		node += NodeID(1 + rng.Intn(3))
		m = append(m, Entry{Node: node, Dist: float64(rng.Intn(1000))})
	}
	return m
}

func BenchmarkDistMapAdd(b *testing.B) {
	x := benchDistMap(32, 1)
	y := benchDistMap(32, 2)
	mod := DistMapModule{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mod.Add(x, y)
	}
}

func BenchmarkDistMapSMul(b *testing.B) {
	x := benchDistMap(32, 3)
	mod := DistMapModule{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mod.SMul(2.5, x)
	}
}

func BenchmarkMergeMin8Way(b *testing.B) {
	xs := make([]DistMap, 8)
	for i := range xs {
		xs[i] = benchDistMap(16, int64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MergeMin(xs...)
	}
}

func BenchmarkTopKFilter(b *testing.B) {
	x := benchDistMap(64, 4)
	r := TopKFilter(8, Inf, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r(x)
	}
}

func BenchmarkAllPathsMul(b *testing.B) {
	x := PathSet{}
	y := PathSet{}
	for i := NodeID(0); i < 8; i++ {
		x[MakePath(0, 1+i)] = float64(i)
		y[MakePath(1+i, 20+i)] = float64(i)
	}
	sr := AllPaths{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sr.Mul(x, y)
	}
}

func BenchmarkRouteMapAdd(b *testing.B) {
	mod := RouteMapModule{}
	x := make(RouteMap, 32)
	y := make(RouteMap, 32)
	for i := range x {
		x[i] = Route{Target: NodeID(2 * i), Dist: float64(i), Next: 1}
		y[i] = Route{Target: NodeID(2*i + 1), Dist: float64(i), Next: 2}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mod.Add(x, y)
	}
}
