package semiring

import (
	"math/rand"
	"strconv"
	"testing"
)

func benchDistMap(n int, seed int64) DistMap {
	rng := rand.New(rand.NewSource(seed))
	m := NewDistMap(n)
	node := NodeID(0)
	for i := 0; i < n; i++ {
		node += NodeID(1 + rng.Intn(3))
		m = m.Append(node, float64(rng.Intn(1000)))
	}
	return m
}

func BenchmarkDistMapAdd(b *testing.B) {
	x := benchDistMap(32, 1)
	y := benchDistMap(32, 2)
	mod := DistMapModule{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mod.Add(x, y)
	}
}

func BenchmarkDistMapSMul(b *testing.B) {
	x := benchDistMap(32, 3)
	mod := DistMapModule{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mod.SMul(2.5, x)
	}
}

func BenchmarkMergeMin8Way(b *testing.B) {
	xs := make([]DistMap, 8)
	for i := range xs {
		xs[i] = benchDistMap(16, int64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MergeMin(xs...)
	}
}

func BenchmarkTopKFilter(b *testing.B) {
	x := benchDistMap(64, 4)
	r := TopKFilter(8, Inf, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r(x)
	}
}

func BenchmarkAllPathsMul(b *testing.B) {
	x := PathSet{}
	y := PathSet{}
	for i := NodeID(0); i < 8; i++ {
		x[MakePath(0, 1+i)] = float64(i)
		y[MakePath(1+i, 20+i)] = float64(i)
	}
	sr := AllPaths{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sr.Mul(x, y)
	}
}

func BenchmarkRouteMapAdd(b *testing.B) {
	mod := RouteMapModule{}
	x := make(RouteMap, 32)
	y := make(RouteMap, 32)
	for i := range x {
		x[i] = Route{Target: NodeID(2 * i), Dist: float64(i), Next: 1}
		y[i] = Route{Target: NodeID(2*i + 1), Dist: float64(i), Next: 2}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mod.Add(x, y)
	}
}

// --- merge-kernel micro-benchmarks (`make bench-semiring`) ---------------
//
// BenchmarkMergeKernel times the SoA k-way merge behind Aggregate on each
// rung of the dispatch ladder (distmerge.go): k=2 galloping two-way, k=4/8
// unrolled head-min loops, k=16/40 one reduction round, k=72 two rounds.
// BenchmarkMergeKernelAoS folds the same inputs through a faithful replica
// of the pre-SoA array-of-structs layout — pairwise two-way merges over
// []aosEntry — so the trajectory in BENCH_semiring.json keeps the layout
// comparison honest run over run.

var mergeKernelKs = []int{2, 4, 8, 16, 40, 72}

// mergeKernelInputs builds k lists of 16 entries plus a self state, shaped
// like a filtered MBF neighborhood.
func mergeKernelInputs(k int) (DistMap, []Term[float64, DistMap]) {
	self := benchDistMap(16, 100)
	terms := make([]Term[float64, DistMap], k)
	for i := range terms {
		terms[i] = Term[float64, DistMap]{S: float64(1 + i%7), X: benchDistMap(16, int64(i))}
	}
	return self, terms
}

func BenchmarkMergeKernel(b *testing.B) {
	mod := DistMapModule{}
	for _, k := range mergeKernelKs {
		b.Run(benchK(k), func(b *testing.B) {
			self, terms := mergeKernelInputs(k)
			var sc Scratch
			mod.Aggregate(&sc, self, terms) // warm the pooled buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mod.Aggregate(&sc, self, terms)
			}
		})
	}
}

// aosEntry replicates the pre-SoA DistMap element: interleaved (node, dist)
// pairs, 16 bytes each, so a merge touches twice the cache lines per ID scan
// that the split ids/ds layout does.
type aosEntry struct {
	node NodeID
	d    float64
}

// aosMerge2 is the old layout's two-way shifted min-merge.
func aosMerge2(a []aosEntry, b []aosEntry, shift float64) []aosEntry {
	out := make([]aosEntry, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].node < b[j].node:
			out = append(out, a[i])
			i++
		case a[i].node > b[j].node:
			out = append(out, aosEntry{b[j].node, b[j].d + shift})
			j++
		default:
			d := a[i].d
			if v := b[j].d + shift; v < d {
				d = v
			}
			out = append(out, aosEntry{a[i].node, d})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	for ; j < len(b); j++ {
		out = append(out, aosEntry{b[j].node, b[j].d + shift})
	}
	return out
}

func toAoS(m DistMap) []aosEntry {
	out := make([]aosEntry, m.Len())
	for i := range out {
		out[i] = aosEntry{m.Node(i), m.Dist(i)}
	}
	return out
}

func BenchmarkMergeKernelAoS(b *testing.B) {
	for _, k := range mergeKernelKs {
		b.Run(benchK(k), func(b *testing.B) {
			self, terms := mergeKernelInputs(k)
			acc0 := toAoS(self)
			lists := make([][]aosEntry, len(terms))
			for i, t := range terms {
				lists[i] = toAoS(t.X)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				acc := acc0
				for li, l := range lists {
					acc = aosMerge2(acc, l, terms[li].S)
				}
			}
		})
	}
}

func benchK(k int) string {
	return "k=" + strconv.Itoa(k)
}
