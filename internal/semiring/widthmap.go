package semiring

// WidthEntry is one (node, width) pair of a sparse width map.
type WidthEntry struct {
	Node  NodeID
	Width float64
}

// WidthMap is an element of the semimodule W of Corollary 3.11: a vector in
// (ℝ≥0 ∪ {∞})^V over the max-min semiring, stored sparsely as entries sorted
// by node ID. Absent nodes implicitly hold width 0 (the zero of S_{max,min});
// the zero element ⊥ = (0, …, 0)ᵀ is the empty map.
type WidthMap []WidthEntry

// WidthMapModule implements the zero-preserving semimodule W over
// S_{max,min}: aggregation is the node-wise maximum (Equation 3.7) and
// propagation over an edge of width s caps all stored widths at s
// (Equation 3.8).
type WidthMapModule struct{}

// Add returns the node-wise maximum of x and y.
func (WidthMapModule) Add(x, y WidthMap) WidthMap {
	if len(x) == 0 {
		return y
	}
	if len(y) == 0 {
		return x
	}
	out := make(WidthMap, 0, len(x)+len(y))
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i].Node < y[j].Node:
			out = append(out, x[i])
			i++
		case x[i].Node > y[j].Node:
			out = append(out, y[j])
			j++
		default:
			e := x[i]
			if y[j].Width > e.Width {
				e.Width = y[j].Width
			}
			out = append(out, e)
			i++
			j++
		}
	}
	out = append(out, x[i:]...)
	out = append(out, y[j:]...)
	return out
}

// SMul caps every stored width at s. Multiplying by 0 — propagating over a
// non-edge — yields ⊥.
func (WidthMapModule) SMul(s float64, x WidthMap) WidthMap {
	if s == 0 || len(x) == 0 {
		return nil
	}
	out := make(WidthMap, 0, len(x))
	for _, e := range x {
		w := e.Width
		if s < w {
			w = s
		}
		if w > 0 {
			out = append(out, WidthEntry{Node: e.Node, Width: w})
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Aggregate implements the Aggregator fast path: one k-way merge of self
// and the propagated neighbor lists — per node the maximum over the
// edge-capped widths (Equations 3.7/3.8) — instead of a fold of Add/SMul.
// Terms with s = 0 (non-edges) or ⊥ states are skipped; the result is
// freshly allocated and never aliases an input.
func (WidthMapModule) Aggregate(sc *Scratch, self WidthMap, terms []Term[float64, WidthMap]) WidthMap {
	lists := sc.width[:0]
	caps := sc.shifts[:0]
	selfIdx := int32(-1)
	total := 0
	if len(self) > 0 {
		lists = append(lists, self)
		caps = append(caps, Inf)
		selfIdx = 0
		total += len(self)
	}
	for _, t := range terms {
		if t.S == 0 || len(t.X) == 0 {
			continue
		}
		lists = append(lists, t.X)
		caps = append(caps, t.S)
		total += len(t.X)
	}
	var out WidthMap
	if total > 0 {
		out = make(WidthMap, 0, total)
		mergeSorted(sc, lists, func(e WidthEntry) NodeID { return e.Node },
			func(li int32, e WidthEntry, _ bool) {
				w := e.Width
				if c := caps[li]; c < w {
					w = c
				}
				if w <= 0 && li != selfIdx {
					return // SMul drops propagated entries capped to ≤ 0
				}
				if n := len(out); n > 0 && out[n-1].Node == e.Node {
					if w > out[n-1].Width {
						out[n-1].Width = w
					}
				} else {
					out = append(out, WidthEntry{Node: e.Node, Width: w})
				}
			})
	}
	for i := range lists {
		lists[i] = nil
	}
	sc.width, sc.shifts = lists[:0], caps[:0]
	if len(out) == 0 {
		return nil
	}
	return out
}

// Zero returns ⊥, the empty width map.
func (WidthMapModule) Zero() WidthMap { return nil }

// Equal reports whether x and y store identical entries.
func (WidthMapModule) Equal(x, y WidthMap) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

var _ Aggregator[float64, WidthMap] = WidthMapModule{}

// Get returns the width stored for node v, or 0 if absent.
func (x WidthMap) Get(v NodeID) float64 {
	for _, e := range x {
		if e.Node == v {
			return e.Width
		}
		if e.Node > v {
			break
		}
	}
	return 0
}
