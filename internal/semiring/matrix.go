package semiring

import "fmt"

// This file implements the Simple Linear Function (SLF) machinery of §2.4
// of the paper in its concrete matrix form: square matrices over an
// arbitrary semiring, with addition, multiplication, and powers. Lemma 2.14
// states that SLFs under (⊕, ∘) are isomorphic to the matrix semiring over
// S; the tests realise the isomorphism by checking that h iterations of the
// MBF-like engine equal multiplication by A^h, for every algebra in the
// toolbox (Definition 2.11: A^h(G) = r^V A^h x(0)).

// Mat is a dense square matrix over a semiring, row-major.
type Mat[S any] struct {
	N    int
	Data []S
}

// NewMat returns the n×n matrix filled with the semiring zero off the
// diagonal and the semiring one on it — the multiplicative identity of the
// matrix semiring.
func NewMat[S any](sr Semiring[S], n int) *Mat[S] {
	m := &Mat[S]{N: n, Data: make([]S, n*n)}
	for i := range m.Data {
		m.Data[i] = sr.Zero()
	}
	for v := 0; v < n; v++ {
		m.Data[v*n+v] = sr.One()
	}
	return m
}

// At returns m[v][w].
func (m *Mat[S]) At(v, w int) S { return m.Data[v*m.N+w] }

// Set assigns m[v][w] = s.
func (m *Mat[S]) Set(v, w int, s S) { m.Data[v*m.N+w] = s }

// MatAdd returns the element-wise sum a ⊕ b (Equation 1.5 generalised).
func MatAdd[S any](sr Semiring[S], a, b *Mat[S]) *Mat[S] {
	if a.N != b.N {
		panic(fmt.Sprintf("semiring: size mismatch %d vs %d", a.N, b.N))
	}
	out := &Mat[S]{N: a.N, Data: make([]S, len(a.Data))}
	for i := range a.Data {
		out.Data[i] = sr.Add(a.Data[i], b.Data[i])
	}
	return out
}

// MatMul returns the semiring matrix product a ⊙ b (Equation 1.6
// generalised): (ab)_{vw} = ⊕_u a_{vu} ⊙ b_{uw}.
func MatMul[S any](sr Semiring[S], a, b *Mat[S]) *Mat[S] {
	if a.N != b.N {
		panic(fmt.Sprintf("semiring: size mismatch %d vs %d", a.N, b.N))
	}
	n := a.N
	out := &Mat[S]{N: n, Data: make([]S, n*n)}
	for v := 0; v < n; v++ {
		for w := 0; w < n; w++ {
			acc := sr.Zero()
			for u := 0; u < n; u++ {
				acc = sr.Add(acc, sr.Mul(a.At(v, u), b.At(u, w)))
			}
			out.Set(v, w, acc)
		}
	}
	return out
}

// MatPow returns a^h by repeated multiplication (h ≥ 0; a⁰ is the
// identity).
func MatPow[S any](sr Semiring[S], a *Mat[S], h int) *Mat[S] {
	out := NewMat(sr, a.N)
	for i := 0; i < h; i++ {
		out = MatMul(sr, out, a)
	}
	return out
}

// MatApply computes the SLF application (Ax)_v = ⊕_w a_{vw} ⊙ x_w of
// Definition 2.12, for a module state vector x over the semimodule mod.
func MatApply[S, M any](sr Semiring[S], mod Semimodule[S, M], a *Mat[S], x []M) []M {
	if a.N != len(x) {
		panic(fmt.Sprintf("semiring: matrix size %d vs vector length %d", a.N, len(x)))
	}
	out := make([]M, len(x))
	for v := 0; v < a.N; v++ {
		acc := mod.Zero()
		for w := 0; w < a.N; w++ {
			acc = mod.Add(acc, mod.SMul(a.At(v, w), x[w]))
		}
		out[v] = acc
	}
	return out
}

// MatEqual reports element-wise equality.
func MatEqual[S any](sr Semiring[S], a, b *Mat[S]) bool {
	if a.N != b.N {
		return false
	}
	for i := range a.Data {
		if !sr.Equal(a.Data[i], b.Data[i]) {
			return false
		}
	}
	return true
}
