package semiring

import "fmt"

// This file provides executable checks for the algebraic laws of
// Definitions A.2 (semiring), A.3 (semimodule), and 2.4/2.6 (congruence
// relation with representative projection). The property-based tests drive
// these checkers with randomly generated elements; any law violation in a
// concrete algebra is a bug in this library, since the paper's correctness
// results (in particular Corollary 2.17, which justifies intermediate
// filtering) rest exactly on these laws.

// CheckSemiringLaws verifies the semiring axioms on all combinations of the
// sample elements and returns a descriptive error for the first violation.
func CheckSemiringLaws[S any](sr Semiring[S], samples []S) error {
	zero, one := sr.Zero(), sr.One()
	for _, a := range samples {
		if !sr.Equal(sr.Add(a, zero), a) || !sr.Equal(sr.Add(zero, a), a) {
			return fmt.Errorf("additive identity violated for %v", a)
		}
		if !sr.Equal(sr.Mul(a, one), a) || !sr.Equal(sr.Mul(one, a), a) {
			return fmt.Errorf("multiplicative identity violated for %v", a)
		}
		if !sr.Equal(sr.Mul(a, zero), zero) || !sr.Equal(sr.Mul(zero, a), zero) {
			return fmt.Errorf("zero does not annihilate for %v", a)
		}
		for _, b := range samples {
			if !sr.Equal(sr.Add(a, b), sr.Add(b, a)) {
				return fmt.Errorf("addition not commutative for %v, %v", a, b)
			}
			for _, c := range samples {
				if !sr.Equal(sr.Add(sr.Add(a, b), c), sr.Add(a, sr.Add(b, c))) {
					return fmt.Errorf("addition not associative for %v, %v, %v", a, b, c)
				}
				if !sr.Equal(sr.Mul(sr.Mul(a, b), c), sr.Mul(a, sr.Mul(b, c))) {
					return fmt.Errorf("multiplication not associative for %v, %v, %v", a, b, c)
				}
				if !sr.Equal(sr.Mul(a, sr.Add(b, c)), sr.Add(sr.Mul(a, b), sr.Mul(a, c))) {
					return fmt.Errorf("left distributivity violated for %v, %v, %v", a, b, c)
				}
				if !sr.Equal(sr.Mul(sr.Add(b, c), a), sr.Add(sr.Mul(b, a), sr.Mul(c, a))) {
					return fmt.Errorf("right distributivity violated for %v, %v, %v", a, b, c)
				}
			}
		}
	}
	return nil
}

// CheckSemimoduleLaws verifies the zero-preserving-semimodule axioms
// (Equations 2.1–2.5 plus annihilation) on all combinations of the sample
// scalars and module elements.
func CheckSemimoduleLaws[S, M any](sr Semiring[S], mod Semimodule[S, M], scalars []S, elems []M) error {
	bot := mod.Zero()
	for _, x := range elems {
		if !mod.Equal(mod.Add(x, bot), x) || !mod.Equal(mod.Add(bot, x), x) {
			return fmt.Errorf("⊥ is not neutral for %v", x)
		}
		if !mod.Equal(mod.SMul(sr.One(), x), x) {
			return fmt.Errorf("1 ⊙ x ≠ x for %v", x) // Equation 2.1
		}
		if !mod.Equal(mod.SMul(sr.Zero(), x), bot) {
			return fmt.Errorf("0_S ⊙ x ≠ ⊥ for %v", x) // Equation 2.2
		}
		for _, y := range elems {
			for _, s := range scalars {
				if !mod.Equal(mod.SMul(s, mod.Add(x, y)), mod.Add(mod.SMul(s, x), mod.SMul(s, y))) {
					return fmt.Errorf("s⊙(x⊕y) ≠ (s⊙x)⊕(s⊙y) for s=%v x=%v y=%v", s, x, y) // Equation 2.3
				}
			}
		}
		for _, s := range scalars {
			for _, t := range scalars {
				if !mod.Equal(mod.SMul(sr.Add(s, t), x), mod.Add(mod.SMul(s, x), mod.SMul(t, x))) {
					return fmt.Errorf("(s⊕t)⊙x ≠ (s⊙x)⊕(t⊙x) for s=%v t=%v x=%v", s, t, x) // Equation 2.4
				}
				if !mod.Equal(mod.SMul(sr.Mul(s, t), x), mod.SMul(s, mod.SMul(t, x))) {
					return fmt.Errorf("(s⊙t)⊙x ≠ s⊙(t⊙x) for s=%v t=%v x=%v", s, t, x) // Equation 2.5
				}
			}
		}
	}
	return nil
}

// CheckFilterCongruence verifies, on the given samples, that r is a
// representative projection whose induced relation x ∼ y :⇔ r(x) = r(y) is a
// congruence (Lemma 2.8): r is idempotent, r(s⊙x) depends on x only through
// r(x), and r(x⊕y) depends on x, y only through r(x), r(y). The latter two
// are checked in the sufficient single-sided form r(s⊙x) = r(s⊙r(x)) and
// r(x⊕y) = r(r(x)⊕r(y)) used in the proof of Lemma 7.5 (Equation 7.7),
// which implies the two-sided conditions by transitivity.
func CheckFilterCongruence[S, M any](mod Semimodule[S, M], r Filter[M], scalars []S, elems []M) error {
	for _, x := range elems {
		rx := r(x)
		if !mod.Equal(r(rx), rx) {
			return fmt.Errorf("filter not idempotent on %v", x)
		}
		for _, s := range scalars {
			if !mod.Equal(r(mod.SMul(s, x)), r(mod.SMul(s, rx))) {
				return fmt.Errorf("r(s⊙x) ≠ r(s⊙r(x)) for s=%v x=%v", s, x)
			}
		}
		for _, y := range elems {
			if !mod.Equal(r(mod.Add(x, y)), r(mod.Add(r(x), r(y)))) {
				return fmt.Errorf("r(x⊕y) ≠ r(r(x)⊕r(y)) for x=%v y=%v", x, y)
			}
		}
	}
	return nil
}
