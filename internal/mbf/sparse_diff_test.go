package mbf

// Differential property tests of the frontier-driven sparse fixpoint engine:
// on random graphs, IterateDelta and the sparse RunToFixpoint must produce
// states identical (per Module.Equal, which is exact representation
// equality for every module here) to the dense engine, for every module and
// filter configuration and for every parallel width. Runs in the short and
// -race tiers — the sparse path shares the pooled aggregation scratch and
// the frontier bookkeeping between workers.

import (
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// maxProcsVariants is the parallel-width sweep of the differential suite.
func maxProcsVariants() []int {
	return []int{1, 4, par.MaxProcs}
}

// fixpointBoth runs the sparse and dense fixpoint loops from the same x0
// across the MaxProcs sweep and checks states and iteration counts agree
// everywhere.
func fixpointBoth[S, M any](t *testing.T, r *Runner[S, M], x0 []M, maxIter int) {
	t.Helper()
	defer func(p int) { par.MaxProcs = p }(par.MaxProcs)
	var wantStates []M
	wantIters := -1
	for _, procs := range maxProcsVariants() {
		par.MaxProcs = procs
		dense, dIters := r.RunToFixpointDense(append([]M(nil), x0...), maxIter)
		sparse, sIters := r.RunToFixpoint(append([]M(nil), x0...), maxIter)
		if sIters != dIters {
			t.Fatalf("MaxProcs=%d: sparse ran %d iterations, dense %d", procs, sIters, dIters)
		}
		for v := range dense {
			if !r.Module.Equal(sparse[v], dense[v]) {
				t.Fatalf("MaxProcs=%d node %d: sparse %v != dense %v", procs, v, sparse[v], dense[v])
			}
		}
		if wantStates == nil {
			wantStates, wantIters = dense, dIters
			continue
		}
		if dIters != wantIters {
			t.Fatalf("MaxProcs=%d: %d iterations, MaxProcs=1 took %d", procs, dIters, wantIters)
		}
		for v := range dense {
			if !r.Module.Equal(dense[v], wantStates[v]) {
				t.Fatalf("MaxProcs=%d node %d: states differ across parallel widths", procs, v)
			}
		}
	}
}

func TestSparseFixpointMatchesDenseDistMap(t *testing.T) {
	sources := func(v graph.Node) bool { return v%2 == 0 }
	for _, cfg := range []struct {
		name          string
		filter        semiring.Filter[semiring.DistMap]
		filterInPlace semiring.Filter[semiring.DistMap]
	}{
		{"unfiltered", nil, nil},
		{"top4", semiring.TopKFilter(4, semiring.Inf, nil), semiring.TopKFilterInPlace(4, semiring.Inf, nil)},
		{"top3-d40-sources", semiring.TopKFilter(3, 40, sources), semiring.TopKFilterInPlace(3, 40, sources)},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			for _, seed := range []uint64{11, 12, 13} {
				g := diffGraph(seed)
				r := &Runner[float64, semiring.DistMap]{
					Graph:         g,
					Module:        semiring.DistMapModule{},
					Filter:        cfg.filter,
					FilterInPlace: cfg.filterInPlace,
					Weight:        MinPlusWeight,
				}
				x0 := make([]semiring.DistMap, g.N())
				for v := range x0 {
					if sources(graph.Node(v)) {
						x0[v] = semiring.SingletonDist(graph.Node(v), 0)
					}
				}
				fixpointBoth(t, r, x0, g.N())
			}
		})
	}
}

func TestSparseFixpointMatchesDenseWidthMap(t *testing.T) {
	for _, seed := range []uint64{14, 15} {
		g := diffGraph(seed)
		r := &Runner[float64, semiring.WidthMap]{
			Graph:  g,
			Module: semiring.WidthMapModule{},
			Weight: MaxMinWeight,
		}
		x0 := make([]semiring.WidthMap, g.N())
		for v := range x0 {
			if v%3 == 0 {
				x0[v] = semiring.WidthMap{{Node: graph.Node(v), Width: semiring.Inf}}
			}
		}
		fixpointBoth(t, r, x0, g.N())
	}
}

func TestSparseFixpointMatchesDenseBoolSet(t *testing.T) {
	g := diffGraph(16)
	r := &Runner[bool, []semiring.NodeID]{
		Graph:  g,
		Module: semiring.BoolSet{},
		Weight: BoolWeight,
	}
	x0 := make([][]semiring.NodeID, g.N())
	for v := range x0 {
		if v%4 == 0 {
			x0[v] = []semiring.NodeID{graph.Node(v)}
		}
	}
	fixpointBoth(t, r, x0, g.N())
}

func TestSparseFixpointMatchesDenseScalars(t *testing.T) {
	g := diffGraph(17)
	r := &Runner[float64, float64]{Graph: g, Module: semiring.MinPlusSelf{}, Weight: MinPlusWeight}
	x0 := make([]float64, g.N())
	for v := range x0 {
		x0[v] = semiring.Inf
	}
	x0[0] = 0
	fixpointBoth(t, r, x0, g.N())

	rw := &Runner[float64, float64]{Graph: g, Module: semiring.MaxMinSelf{}, Weight: MaxMinWeight}
	w0 := make([]float64, g.N())
	w0[0] = semiring.Inf
	fixpointBoth(t, rw, w0, g.N())
}

// TestIterateDeltaMatchesIterate drives the two engines step by step from
// the same start: after every step the sparse vector must equal the dense
// one node-for-node, and the returned frontier must be exactly the set of
// nodes whose state changed in that step.
func TestIterateDeltaMatchesIterate(t *testing.T) {
	g := diffGraph(18)
	r := &Runner[float64, semiring.DistMap]{
		Graph:         g,
		Module:        semiring.DistMapModule{},
		Filter:        semiring.TopKFilter(4, semiring.Inf, nil),
		FilterInPlace: semiring.TopKFilterInPlace(4, semiring.Inf, nil),
		Weight:        MinPlusWeight,
	}
	xd := make([]semiring.DistMap, g.N())
	for v := range xd {
		if v%2 == 0 {
			xd[v] = r.filter(semiring.SingletonDist(graph.Node(v), 0))
		}
	}
	xs := append([]semiring.DistMap(nil), xd...)
	frontier := r.Frontier(xs)
	for step := 0; step < g.N(); step++ {
		next := r.Iterate(xd)
		xs, frontier = r.IterateDelta(xs, frontier)
		inFrontier := make(map[graph.Node]bool, len(frontier))
		for _, v := range frontier {
			inFrontier[v] = true
		}
		done := true
		for v := range next {
			if !r.Module.Equal(next[v], xs[v]) {
				t.Fatalf("step %d node %d: sparse %v != dense %v", step, v, xs[v], next[v])
			}
			changed := !r.Module.Equal(next[v], xd[v])
			if changed {
				done = false
			}
			if changed != inFrontier[graph.Node(v)] {
				t.Fatalf("step %d node %d: changed=%v but frontier membership=%v",
					step, v, changed, inFrontier[graph.Node(v)])
			}
		}
		xd = next
		if done {
			if len(frontier) != 0 {
				t.Fatalf("fixpoint reached but frontier %v not empty", frontier)
			}
			return
		}
	}
	t.Fatal("no fixpoint within n steps")
}

// TestRunToFixpointCountsIterationsPerformed pins the off-by-one fix on a
// graph with known SPD: the path P_n needs SPD = n−1 state-changing
// iterations from one end plus the iteration that confirms the fixpoint, so
// both engines must report n iterations performed.
func TestRunToFixpointCountsIterationsPerformed(t *testing.T) {
	const n = 12
	g := graph.PathGraph(n, 1)
	mk := func() (*Runner[float64, float64], []float64) {
		r := &Runner[float64, float64]{Graph: g, Module: semiring.MinPlusSelf{}, Weight: MinPlusWeight}
		x0 := make([]float64, n)
		for v := range x0 {
			x0[v] = semiring.Inf
		}
		x0[0] = 0
		return r, x0
	}
	r, x0 := mk()
	if _, iters := r.RunToFixpoint(x0, 100); iters != n {
		t.Fatalf("sparse: %d iterations, want %d = SPD+1", iters, n)
	}
	r, x0 = mk()
	if _, iters := r.RunToFixpointDense(x0, 100); iters != n {
		t.Fatalf("dense: %d iterations, want %d = SPD+1", iters, n)
	}
	// The cap is honoured and reported as the number performed.
	r, x0 = mk()
	if _, iters := r.RunToFixpoint(x0, 5); iters != 5 {
		t.Fatalf("capped sparse: %d iterations, want 5", iters)
	}
}

// TestSparseFixpointAllBottomInput: an all-⊥ vector is a fixpoint the
// sparse driver recognises without iterating.
func TestSparseFixpointAllBottomInput(t *testing.T) {
	g := diffGraph(19)
	r := &Runner[float64, semiring.DistMap]{Graph: g, Module: semiring.DistMapModule{}, Weight: MinPlusWeight}
	out, iters := r.RunToFixpoint(make([]semiring.DistMap, g.N()), g.N())
	if iters != 0 {
		t.Fatalf("all-⊥ input ran %d iterations, want 0", iters)
	}
	for v, s := range out {
		if s.Len() != 0 {
			t.Fatalf("node %d: ⊥ input produced non-⊥ state %v", v, s)
		}
	}
}

// TestZeroUnstableFilterFallsBackDense: a filter with r(⊥) ≠ ⊥ breaks the
// frontier invariant; RunToFixpoint must detect it and use the dense loop
// (whose result is still correct for such filters).
func TestZeroUnstableFilterFallsBackDense(t *testing.T) {
	g := graph.PathGraph(4, 1)
	r := &Runner[float64, float64]{
		Graph:  g,
		Module: semiring.MinPlusSelf{},
		// Not a lawful representative projection — it invents information at
		// ⊥ — but exactly the shape the runtime check must catch.
		Filter: func(x float64) float64 {
			if semiring.IsInf(x) {
				return 100
			}
			return x
		},
		Weight: MinPlusWeight,
	}
	if r.zeroStable() {
		t.Fatal("zeroStable accepted a filter with r(⊥) ≠ ⊥")
	}
	x0 := make([]float64, g.N())
	for v := range x0 {
		x0[v] = semiring.Inf
	}
	x0[0] = 0
	got, _ := r.RunToFixpoint(append([]float64(nil), x0...), 100)
	want, _ := r.RunToFixpointDense(x0, 100)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("node %d: fallback %v != dense %v", v, got[v], want[v])
		}
	}
}

// TestTrackerParityFastVsGeneric pins the work-accounting satellite: the
// aggregation fast path must charge the Tracker exactly what the generic
// Add/SMul fold charges — with the default Size approximation when every
// edge weight is live, and with the PropagatedSize hook when a custom
// Weight can return the semiring zero (a dead edge, whose propagated state
// collapses to ⊥).
func TestTrackerParityFastVsGeneric(t *testing.T) {
	size := func(x semiring.DistMap) int { return x.Len() + 1 }
	// Weight that kills every arc into or out of node 0: propagation over
	// those arcs yields ⊥, which the generic path charges as size 1.
	deadWeight := func(from, to graph.Node, w float64) float64 {
		if from == 0 || to == 0 {
			return semiring.Inf
		}
		return w
	}
	for _, cfg := range []struct {
		name           string
		weight         func(from, to graph.Node, w float64) float64
		propagatedSize func(s float64, x semiring.DistMap) int
	}{
		{"live-edges-default-approximation", MinPlusWeight, nil},
		{"dead-edges-propagated-size-hook", deadWeight, func(s float64, x semiring.DistMap) int {
			if semiring.IsInf(s) {
				return 1 // size of ⊥ under Size = len+1
			}
			return x.Len() + 1
		}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			g := diffGraph(20)
			x0 := make([]semiring.DistMap, g.N())
			for v := range x0 {
				x0[v] = semiring.SingletonDist(graph.Node(v), 0)
			}
			fastTr, slowTr := &par.Tracker{}, &par.Tracker{}
			fast := &Runner[float64, semiring.DistMap]{
				Graph: g, Module: semiring.DistMapModule{},
				Weight: cfg.weight, Size: size, PropagatedSize: cfg.propagatedSize,
				Tracker: fastTr,
			}
			slow := &Runner[float64, semiring.DistMap]{
				Graph: g, Module: foldOnly[float64, semiring.DistMap]{semiring.DistMapModule{}},
				Weight: cfg.weight, Size: size,
				Tracker: slowTr,
			}
			fast.Run(x0, 4)
			slow.Run(x0, 4)
			if fastTr.Work() != slowTr.Work() {
				t.Fatalf("fast path charged %d work, generic fold %d", fastTr.Work(), slowTr.Work())
			}
			if fastTr.Depth() != slowTr.Depth() {
				t.Fatalf("fast path charged %d depth, generic fold %d", fastTr.Depth(), slowTr.Depth())
			}
		})
	}
}
