package mbf

// These tests realise §2.4 of the paper executably: the MBF-like engine's
// iterations coincide with multiplication by powers of the adjacency matrix
// over the respective semiring (Definition 2.11 via Lemma 2.14's
// isomorphism between SLFs and matrices), and intermediate filtering
// commutes up to the final filter application (Corollary 2.17) for every
// algebra in the toolbox.

import (
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

func slfGraph() *graph.Graph {
	rng := par.NewRNG(99)
	return graph.RandomConnected(9, 16, 5, rng)
}

// minPlusAdjacency builds the generic matrix of Equation (1.4).
func minPlusAdjacency(g *graph.Graph) *semiring.Mat[float64] {
	a := semiring.NewMat[float64](semiring.MinPlus{}, g.N())
	for _, e := range g.Edges() {
		a.Set(int(e.U), int(e.V), e.Weight)
		a.Set(int(e.V), int(e.U), e.Weight)
	}
	return a
}

func TestEngineEqualsMatrixPowerMinPlus(t *testing.T) {
	g := slfGraph()
	sr := semiring.MinPlus{}
	mod := semiring.DistMapModule{}
	a := minPlusAdjacency(g)

	x0 := InitialStatesDistMaps(g.N())
	runner := &Runner[float64, semiring.DistMap]{
		Graph:  g,
		Module: mod,
		Weight: MinPlusWeight,
	}
	for h := 0; h <= 4; h++ {
		viaEngine := runner.Run(x0, h)
		viaMatrix := x0
		for i := 0; i < h; i++ {
			viaMatrix = semiring.MatApply[float64, semiring.DistMap](sr, mod, a, viaMatrix)
		}
		for v := range viaEngine {
			if !mod.Equal(viaEngine[v], semiring.Normalize(viaMatrix[v])) {
				t.Fatalf("h=%d node %d: engine %v ≠ matrix %v", h, v, viaEngine[v], viaMatrix[v])
			}
		}
	}
}

func TestMatrixPowerEntriesAreHopDistances(t *testing.T) {
	// Lemma 3.1 in matrix form: (A^h)_{vw} = dist^h(v, w, G).
	g := slfGraph()
	sr := semiring.MinPlus{}
	a := minPlusAdjacency(g)
	for h := 0; h <= g.N(); h++ {
		p := semiring.MatPow[float64](sr, a, h)
		for v := 0; v < g.N(); v++ {
			bf := graph.BellmanFord(g, graph.Node(v), h)
			for w := 0; w < g.N(); w++ {
				if p.At(v, w) != bf[w] {
					t.Fatalf("h=%d (%d,%d): matrix %v vs BF %v", h, v, w, p.At(v, w), bf[w])
				}
			}
		}
	}
}

func TestMatrixPowerMaxMinIsWidestPath(t *testing.T) {
	// Lemma 3.12 in matrix form over S_{max,min}.
	g := slfGraph()
	sr := semiring.MaxMin{}
	a := semiring.NewMat[float64](sr, g.N())
	for _, e := range g.Edges() {
		a.Set(int(e.U), int(e.V), e.Weight)
		a.Set(int(e.V), int(e.U), e.Weight)
	}
	p := semiring.MatPow[float64](sr, a, g.N())
	for v := 0; v < g.N(); v++ {
		want := SSWP(g, graph.Node(v), g.N(), nil)
		for w := 0; w < g.N(); w++ {
			if p.At(v, w) != want[w] {
				t.Fatalf("(%d,%d): matrix %v vs engine %v", v, w, p.At(v, w), want[w])
			}
		}
	}
}

func TestMatrixPowerBooleanIsReachability(t *testing.T) {
	// Equation (3.30) in matrix form: (A^h x(0))_{vw} = 1 ⇔ P^h(v,w) ≠ ∅.
	g := graph.NewBuilder(5).Add(0, 1, 1).Add(1, 2, 1).Add(3, 4, 1).Freeze()
	sr := semiring.Boolean{}
	a := semiring.NewMat[bool](sr, g.N())
	for _, e := range g.Edges() {
		a.Set(int(e.U), int(e.V), true)
		a.Set(int(e.V), int(e.U), true)
	}
	for h := 0; h <= 3; h++ {
		p := semiring.MatPow[bool](sr, a, h)
		for v := 0; v < g.N(); v++ {
			reach := Connectivity(g, h, nil)[v]
			for w := 0; w < g.N(); w++ {
				inSet := false
				for _, u := range reach {
					if u == graph.Node(w) {
						inSet = true
					}
				}
				if p.At(v, w) != inSet {
					t.Fatalf("h=%d (%d,%d): matrix %v vs engine %v", h, v, w, p.At(v, w), inSet)
				}
			}
		}
	}
}

func TestMatrixPowerAllPathsEnumeratesPaths(t *testing.T) {
	// Lemma 3.20 in matrix form: (A^h x(0))_v contains exactly the ≤h-hop
	// paths starting at v, with their weights.
	g := graph.NewBuilder(4).Add(0, 1, 1).Add(1, 2, 2).Add(0, 2, 5).Add(2, 3, 1).Freeze()
	sr := semiring.AllPaths{}
	a := semiring.NewMat[semiring.PathSet](sr, g.N())
	for _, e := range g.Edges() {
		a.Set(int(e.U), int(e.V), semiring.PathSet{semiring.MakePath(e.U, e.V): e.Weight})
		a.Set(int(e.V), int(e.U), semiring.PathSet{semiring.MakePath(e.V, e.U): e.Weight})
	}
	mod := semiring.AllPathsSelf{}
	x := make([]semiring.PathSet, g.N())
	for v := range x {
		x[v] = semiring.PathSet{semiring.MakePath(graph.Node(v)): 0}
	}
	for h := 0; h < 3; h++ {
		x = semiring.MatApply[semiring.PathSet, semiring.PathSet](sr, mod, a, x)
	}
	// After 3 hops from node 0: the full path inventory out of node 0.
	want := semiring.PathSet{
		semiring.MakePath(0):          0,
		semiring.MakePath(0, 1):       1,
		semiring.MakePath(0, 2):       5,
		semiring.MakePath(0, 1, 2):    3,
		semiring.MakePath(0, 2, 1):    7,
		semiring.MakePath(0, 2, 3):    6,
		semiring.MakePath(0, 1, 2, 3): 4,
		semiring.MakePath(0, 2, 1, 3): semiring.Inf, // not a path: 1–3 missing
	}
	delete(want, semiring.MakePath(0, 2, 1, 3))
	if !sr.Equal(x[0], want) {
		t.Fatalf("paths from 0: %v, want %v", x[0], want)
	}
}

func TestMatSemiringIdentityAndAssociativity(t *testing.T) {
	g := slfGraph()
	sr := semiring.MinPlus{}
	a := minPlusAdjacency(g)
	id := semiring.NewMat[float64](sr, g.N())
	if !semiring.MatEqual[float64](sr, semiring.MatMul(sr, a, id), a) {
		t.Fatal("A·I ≠ A")
	}
	if !semiring.MatEqual[float64](sr, semiring.MatMul(sr, id, a), a) {
		t.Fatal("I·A ≠ A")
	}
	a2 := semiring.MatMul(sr, a, a)
	left := semiring.MatMul(sr, a2, a)
	right := semiring.MatMul(sr, a, a2)
	if !semiring.MatEqual[float64](sr, left, right) {
		t.Fatal("(A·A)·A ≠ A·(A·A)")
	}
	// Distributivity over a second matrix.
	b := semiring.NewMat[float64](sr, g.N())
	b.Set(0, 3, 2)
	lhs := semiring.MatMul(sr, a, semiring.MatAdd(sr, id, b))
	rhs := semiring.MatAdd(sr, semiring.MatMul(sr, a, id), semiring.MatMul(sr, a, b))
	if !semiring.MatEqual[float64](sr, lhs, rhs) {
		t.Fatal("A·(I⊕B) ≠ A·I ⊕ A·B")
	}
}

func TestMatSizeMismatchPanics(t *testing.T) {
	sr := semiring.MinPlus{}
	a := semiring.NewMat[float64](sr, 2)
	b := semiring.NewMat[float64](sr, 3)
	for _, fn := range []func(){
		func() { semiring.MatMul(sr, a, b) },
		func() { semiring.MatAdd(sr, a, b) },
		func() { semiring.MatApply[float64, float64](sr, semiring.MinPlusSelf{}, a, make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic on size mismatch")
				}
			}()
			fn()
		}()
	}
}

// InitialStatesDistMaps mirrors frt.InitialStates without importing frt
// (which would create an import cycle in tests).
func InitialStatesDistMaps(n int) []semiring.DistMap {
	x0 := make([]semiring.DistMap, n)
	for v := range x0 {
		x0[v] = semiring.SingletonDist(graph.Node(v), 0)
	}
	return x0
}
