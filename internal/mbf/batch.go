package mbf

import (
	"math/bits"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// This file implements the batched multi-source sweep: B independent
// MBF-like instances — same graph, same semimodule, per-lane filters —
// advanced together, so one pass over the CSR arc array serves every lane
// at once. The adjacency entries a_{vw} = Weight(v, w, ω) are computed once
// per arc and reused across lanes, the node's arc span is walked while hot,
// and modules implementing semiring.BatchAggregator merge all lanes over
// one shared scratch.
//
// The sparse fixpoint driver generalises the frontier engine of mbf.go with
// the BoolSet trick: instead of one frontier list, every node carries a
// bit-packed lane set (⌈B/64⌉ words) marking the lanes whose state changed
// at that node in the previous iteration. A node is re-aggregated for
// exactly the lanes set in its own mask or in an out-neighbor's mask — the
// per-lane change-propagation invariant of IterateDelta, tracked word-
// parallel — and the whole batch reaches its fixpoint when every mask is
// zero. Lane b's states evolve exactly as a solo RunToFixpoint would evolve
// them (pinned by the batch differential tests), because the recomputed
// lane set at a node always covers the solo engine's candidate set.

// BatchLane configures one lane of a batched sweep: its representative
// projection and the optional in-place variant (same contract as
// Runner.Filter/FilterInPlace). The zero BatchLane is the identity filter.
type BatchLane[M any] struct {
	Filter        semiring.Filter[M]
	FilterInPlace semiring.Filter[M]
}

func (l BatchLane[M]) filter(x M) M {
	if l.Filter == nil {
		return x
	}
	return l.Filter(x)
}

// ownedFilter returns the filter applied to values the engine owns
// exclusively: the in-place variant when provided, the pure one otherwise
// (nil for the identity lane).
func (l BatchLane[M]) ownedFilter() semiring.Filter[M] {
	if l.FilterInPlace != nil {
		return l.FilterInPlace
	}
	return l.Filter
}

// filterOwned filters a value the engine owns exclusively.
func (l BatchLane[M]) filterOwned(x M) M {
	if f := l.ownedFilter(); f != nil {
		return f(x)
	}
	return x
}

// batchScratch is one worker's reusable state for a batched sweep: the
// per-arc adjacency entries (computed once per node, shared by all lanes),
// the per-lane term buffers, the compacted lane views handed to
// AggregateBatch, and the module's merge scratch.
type batchScratch[S, M any] struct {
	ss    []S
	terms [][]semiring.Term[S, M]
	selfs []M
	outs  []M
	lanes []int32
	sc    semiring.Scratch
}

func (r *Runner[S, M]) getBatchScratch() *batchScratch[S, M] {
	st, _ := r.batchPool.Get().(*batchScratch[S, M])
	if st == nil {
		st = new(batchScratch[S, M])
	}
	return st
}

// putBatchScratch drops every state reference the scratch accumulated since
// getBatchScratch and returns it to the pool. The sweeps call the pair once
// per ForEachChunk range, so the clearing sweeps run to full capacity: nodes
// of smaller degree leave stale references beyond the last node's lengths.
func (r *Runner[S, M]) putBatchScratch(st *batchScratch[S, M]) {
	var zeroS S
	var zeroM M
	ss := st.ss[:cap(st.ss)]
	for i := range ss {
		ss[i] = zeroS
	}
	for b := range st.terms {
		terms := st.terms[b][:cap(st.terms[b])]
		for i := range terms {
			terms[i] = semiring.Term[S, M]{}
		}
		st.terms[b] = terms[:0]
	}
	selfs, outs := st.selfs[:cap(st.selfs)], st.outs[:cap(st.outs)]
	for i := range selfs {
		selfs[i] = zeroM
	}
	for i := range outs {
		outs[i] = zeroM
	}
	st.ss, st.selfs, st.outs, st.lanes = ss[:0], selfs[:0], outs[:0], st.lanes[:0]
	r.batchPool.Put(st)
}

// aggDispatch is the module's aggregation fast-path dispatch, resolved once
// per sweep: generic interface assertions go through the runtime, far too
// slow to repeat per node (Runner.recompute hoists the same way).
type aggDispatch[S, M any] struct {
	agg   semiring.Aggregator[S, M]
	fa    semiring.FilteredAggregator[S, M]
	batch semiring.BatchAggregator[S, M]
	fast  bool
}

func (r *Runner[S, M]) dispatch() aggDispatch[S, M] {
	var d aggDispatch[S, M]
	d.agg, d.fast = r.Module.(semiring.Aggregator[S, M])
	d.fa, _ = r.Module.(semiring.FilteredAggregator[S, M])
	d.batch, _ = r.Module.(semiring.BatchAggregator[S, M])
	return d
}

// recomputeLanes derives the next states of the lanes listed in st.lanes at
// node v, reading the lane vectors xs. The arc span of v is walked once to
// compute the shared adjacency entries; lanes then aggregate through the
// module's AggregateBatch (one shared scratch) when available, per-lane
// Aggregate otherwise, or the generic Add/SMul fold. Results land in
// st.outs, filtered through each lane's projection; the returned work is
// the Tracker charge (0 without a Tracker).
func (r *Runner[S, M]) recomputeLanes(v graph.Node, xs [][]M, lanes []BatchLane[M], st *batchScratch[S, M], d aggDispatch[S, M]) int64 {
	g := r.Graph
	arcs := g.Neighbors(v)
	ss := st.ss[:0]
	for _, a := range arcs {
		ss = append(ss, r.Weight(v, a.To, a.Weight))
	}
	st.ss = ss
	var work int64
	if d.fast {
		for cap(st.terms) < len(st.lanes) {
			st.terms = append(st.terms[:cap(st.terms)], nil)
		}
		st.terms = st.terms[:cap(st.terms)]
		selfs := st.selfs[:0]
		for j, b := range st.lanes {
			terms := st.terms[j][:0]
			x := xs[b]
			for i, a := range arcs {
				terms = append(terms, semiring.Term[S, M]{S: ss[i], X: x[a.To]})
			}
			st.terms[j] = terms
			selfs = append(selfs, x[v])
		}
		st.selfs = selfs
		outs := st.outs[:0]
		for range st.lanes {
			var zero M
			outs = append(outs, zero)
		}
		st.outs = outs
		switch {
		case d.fa != nil:
			// Fused merge-and-filter per lane over the shared scratch: the
			// raw merges live in scratch and only filtered survivors are
			// allocated (see Runner.recompute).
			for j, b := range st.lanes {
				st.outs[j] = d.fa.AggregateFiltered(&st.sc, st.selfs[j], st.terms[j], lanes[b].ownedFilter())
			}
		default:
			if d.batch != nil {
				d.batch.AggregateBatch(&st.sc, st.selfs, st.terms[:len(st.lanes)], st.outs)
			} else {
				for j := range st.lanes {
					st.outs[j] = d.agg.Aggregate(&st.sc, st.selfs[j], st.terms[j])
				}
			}
			for j, b := range st.lanes {
				st.outs[j] = lanes[b].filterOwned(st.outs[j])
			}
		}
		for j := range st.lanes {
			if r.Tracker != nil {
				work += int64(r.size(st.selfs[j]))
				for _, t := range st.terms[j] {
					work += int64(r.propagatedSize(t.S, t.X))
				}
				work += int64(r.size(st.outs[j]))
			}
		}
		return work
	}
	// Generic fold (Definition 2.11), per lane over the shared entries.
	outs := st.outs[:0]
	for _, b := range st.lanes {
		x := xs[b]
		acc := x[v]
		if r.Tracker != nil {
			work += int64(r.size(acc))
		}
		for i, a := range arcs {
			propagated := r.Module.SMul(ss[i], x[a.To])
			acc = r.Module.Add(acc, propagated)
			if r.Tracker != nil {
				work += int64(r.size(propagated))
			}
		}
		out := lanes[b].filter(acc)
		if r.Tracker != nil {
			work += int64(r.size(out))
		}
		outs = append(outs, out)
	}
	st.outs = outs
	return work
}

// IterateBatch performs one dense batched iteration: every lane's state
// vector advances by one MBF-like step, with all lanes of a node computed
// in one visit (shared arc walk and adjacency entries). The inputs are not
// modified. IterateBatch(xs, lanes)[b] equals a solo Iterate of lane b
// under lane b's filter, node for node.
func (r *Runner[S, M]) IterateBatch(xs [][]M, lanes []BatchLane[M]) [][]M {
	n := r.Graph.N()
	for _, x := range xs {
		if len(x) != n {
			panic("mbf: state vector length does not match graph size")
		}
	}
	if len(lanes) != len(xs) {
		panic("mbf: lane count does not match batch size")
	}
	out := make([][]M, len(xs))
	for b := range out {
		out[b] = make([]M, n)
	}
	var workPerNode []int64
	if r.Tracker != nil {
		workPerNode = make([]int64, n)
	}
	d := r.dispatch()
	par.ForEachChunk(n, func(start, end int) {
		st := r.getBatchScratch()
		for vi := start; vi < end; vi++ {
			st.lanes = st.lanes[:0]
			for b := range xs {
				st.lanes = append(st.lanes, int32(b))
			}
			work := r.recomputeLanes(graph.Node(vi), xs, lanes, st, d)
			for j, b := range st.lanes {
				out[b][vi] = st.outs[j]
			}
			if workPerNode != nil {
				workPerNode[vi] = work
			}
		}
		r.putBatchScratch(st)
	})
	r.chargePhase(workPerNode)
	return out
}

// batchDelta is the pooled frontier bookkeeping of the sparse batched
// fixpoint loop.
type batchDelta[M any] struct {
	touched []bool
	cand    []graph.Node
	need    []uint64 // per-candidate lane mask, w words each
	stLanes [][]int32
	stOut   [][]M
	work    []int64
}

// RunToFixpointBatch iterates every lane to its fixpoint (or maxIter) with
// the bit-packed sparse sweep: per node a ⌈B/64⌉-word lane mask marks the
// lanes whose filtered state changed there in the previous iteration, and
// an iteration re-aggregates, per affected node, exactly the lanes set in
// its own or an out-neighbor's mask. It returns the final lane vectors and,
// per lane, the number of sparse iterations that lane was live for —
// including the final confirming one, exactly the count a solo
// RunToFixpoint of that lane returns.
//
// Lanes whose filter does not map ⊥ to ⊥ (none in this library) disable
// the sparse sweep: every lane then runs its solo RunToFixpoint, which
// applies the dense fallback where needed.
func (r *Runner[S, M]) RunToFixpointBatch(x0s [][]M, lanes []BatchLane[M], maxIter int) ([][]M, []int) {
	B := len(x0s)
	if len(lanes) != B {
		panic("mbf: lane count does not match batch size")
	}
	zero := r.Module.Zero()
	for _, l := range lanes {
		if l.Filter != nil && !r.Module.Equal(l.Filter(zero), zero) {
			return r.runToFixpointPerLane(x0s, lanes, maxIter)
		}
	}
	n := r.Graph.N()
	w := (B + 63) / 64
	d := r.dispatch()
	xs := make([][]M, B)
	masks := make([]uint64, n*w)
	live := make([]uint64, w)
	for b := range x0s {
		if len(x0s[b]) != n {
			panic("mbf: state vector length does not match graph size")
		}
		x := make([]M, n)
		lane := lanes[b]
		for v, s := range x0s[b] {
			x[v] = lane.filter(s)
			if !r.Module.Equal(x[v], zero) {
				masks[v*w+b/64] |= 1 << (b % 64)
				live[b/64] |= 1 << (b % 64)
			}
		}
		xs[b] = x
	}
	frontier := make([]graph.Node, 0, n)
	for v := 0; v < n; v++ {
		if !maskZero(masks[v*w : (v+1)*w]) {
			frontier = append(frontier, graph.Node(v))
		}
	}
	iters := make([]int, B)
	for b := range iters {
		iters[b] = -1
	}
	ds := &batchDelta[M]{touched: make([]bool, n)}
	g := r.Graph
	for it := 0; ; it++ {
		for b := 0; b < B; b++ {
			if iters[b] < 0 && live[b/64]&(1<<(b%64)) == 0 {
				iters[b] = it
			}
		}
		if len(frontier) == 0 || it == maxIter {
			for b := range iters {
				if iters[b] < 0 {
					iters[b] = maxIter
				}
			}
			return xs, iters
		}
		// Candidates: the frontier plus everyone reading a frontier node's
		// state (in-neighbors; the graph itself when symmetric).
		cand := ds.cand[:0]
		for _, u := range frontier {
			if !ds.touched[u] {
				ds.touched[u] = true
				cand = append(cand, u)
			}
			for _, a := range g.InNeighbors(u) {
				if !ds.touched[a.To] {
					ds.touched[a.To] = true
					cand = append(cand, a.To)
				}
			}
		}
		ds.cand = cand
		need := ds.need
		if cap(need) < len(cand)*w {
			need = make([]uint64, len(cand)*w)
		}
		need = need[:len(cand)*w]
		ds.need = need
		for len(ds.stLanes) < len(cand) {
			ds.stLanes = append(ds.stLanes, nil)
			ds.stOut = append(ds.stOut, nil)
		}
		var workPerNode []int64
		if r.Tracker != nil {
			workPerNode = ds.work[:0]
			for range cand {
				workPerNode = append(workPerNode, 0)
			}
			ds.work = workPerNode
		}
		par.ForEachChunk(len(cand), func(start, end int) {
			var st *batchScratch[S, M]
			for i := start; i < end; i++ {
				v := cand[i]
				nm := need[i*w : (i+1)*w]
				copy(nm, masks[int(v)*w:(int(v)+1)*w])
				for _, a := range g.Neighbors(v) {
					m := masks[int(a.To)*w : (int(a.To)+1)*w]
					for j := range nm {
						nm[j] |= m[j]
					}
				}
				if maskZero(nm) {
					ds.stLanes[i] = ds.stLanes[i][:0]
					continue
				}
				if st == nil {
					st = r.getBatchScratch()
				}
				st.lanes = st.lanes[:0]
				for j, word := range nm {
					for word != 0 {
						b := j*64 + bits.TrailingZeros64(word)
						word &= word - 1
						st.lanes = append(st.lanes, int32(b))
					}
				}
				work := r.recomputeLanes(v, xs, lanes, st, d)
				if workPerNode != nil {
					workPerNode[i] = work
				}
				stLanes := ds.stLanes[i][:0]
				stOut := ds.stOut[i][:0]
				for j, b := range st.lanes {
					if !r.Module.Equal(st.outs[j], xs[b][v]) {
						stLanes = append(stLanes, b)
						stOut = append(stOut, st.outs[j])
					}
				}
				ds.stLanes[i], ds.stOut[i] = stLanes, stOut
			}
			if st != nil {
				r.putBatchScratch(st)
			}
		})
		r.chargePhase(workPerNode)
		// Write-back after the parallel read phase: clear the old frontier
		// masks, then apply the staged per-lane changes, which become the
		// next frontier.
		for _, v := range frontier {
			m := masks[int(v)*w : (int(v)+1)*w]
			for j := range m {
				m[j] = 0
			}
		}
		for j := range live {
			live[j] = 0
		}
		frontier = frontier[:0]
		var zeroM M
		for i, v := range cand {
			ds.touched[v] = false
			if len(ds.stLanes[i]) == 0 {
				continue
			}
			m := masks[int(v)*w : (int(v)+1)*w]
			for j, b := range ds.stLanes[i] {
				xs[b][v] = ds.stOut[i][j]
				m[b/64] |= 1 << (b % 64)
				live[b/64] |= 1 << (b % 64)
				ds.stOut[i][j] = zeroM // drop the reference before reuse
			}
			frontier = append(frontier, v)
		}
	}
}

// runToFixpointPerLane is the batch fallback when a lane's filter does not
// preserve ⊥: every lane runs solo (with its own dense fallback), on a
// fresh runner sharing the batch runner's configuration.
func (r *Runner[S, M]) runToFixpointPerLane(x0s [][]M, lanes []BatchLane[M], maxIter int) ([][]M, []int) {
	out := make([][]M, len(x0s))
	iters := make([]int, len(x0s))
	for b := range x0s {
		solo := &Runner[S, M]{
			Graph:          r.Graph,
			Module:         r.Module,
			Filter:         lanes[b].Filter,
			FilterInPlace:  lanes[b].FilterInPlace,
			Weight:         r.Weight,
			Size:           r.Size,
			PropagatedSize: r.PropagatedSize,
			Tracker:        r.Tracker,
		}
		out[b], iters[b] = solo.RunToFixpoint(x0s[b], maxIter)
	}
	return out, iters
}

func maskZero(m []uint64) bool {
	for _, w := range m {
		if w != 0 {
			return false
		}
	}
	return true
}
