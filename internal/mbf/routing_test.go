package mbf

import (
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// followRoutes walks next-hop pointers from v towards target, accumulating
// edge weights; it returns the travelled distance and whether the walk
// reached the target within n hops.
func followRoutes(g *graph.Graph, tables []semiring.RouteMap, v, target graph.Node) (float64, bool) {
	total := 0.0
	cur := v
	for step := 0; step <= g.N(); step++ {
		if cur == target {
			return total, true
		}
		r, ok := tables[cur].Get(target)
		if !ok || r.Next == semiring.NoVia {
			return total, false
		}
		w, ok := g.HasEdge(cur, r.Next)
		if !ok {
			return total, false
		}
		total += w
		cur = r.Next
	}
	return total, false
}

func TestRoutingTablesExactDistances(t *testing.T) {
	rng := par.NewRNG(1)
	g := graph.RandomConnected(40, 100, 6, rng)
	tables := RoutingTables(g, 0, g.N(), nil)
	exact := graph.APSPDijkstra(g)
	for v := 0; v < g.N(); v++ {
		if len(tables[v]) != g.N() {
			t.Fatalf("node %d has %d routes, want %d", v, len(tables[v]), g.N())
		}
		for w := 0; w < g.N(); w++ {
			r, ok := tables[v].Get(graph.Node(w))
			if !ok {
				t.Fatalf("node %d missing route to %d", v, w)
			}
			if r.Dist != exact.At(v, w) {
				t.Fatalf("route (%d,%d): dist %v, want %v", v, w, r.Dist, exact.At(v, w))
			}
		}
	}
}

func TestRoutingTablesNextHopsForm_ShortestPaths(t *testing.T) {
	rng := par.NewRNG(2)
	g := graph.RandomConnected(35, 80, 6, rng)
	tables := RoutingTables(g, 0, g.N(), nil)
	exact := graph.APSPDijkstra(g)
	for v := 0; v < g.N(); v++ {
		for w := 0; w < g.N(); w++ {
			if v == w {
				continue
			}
			got, reached := followRoutes(g, tables, graph.Node(v), graph.Node(w))
			if !reached {
				t.Fatalf("routing from %d to %d did not reach the target", v, w)
			}
			if got != exact.At(v, w) {
				t.Fatalf("routing (%d,%d) travelled %v, want %v", v, w, got, exact.At(v, w))
			}
		}
	}
}

func TestRoutingTablesSelfRoute(t *testing.T) {
	g := graph.PathGraph(5, 1)
	tables := RoutingTables(g, 0, g.N(), nil)
	for v := 0; v < g.N(); v++ {
		r, ok := tables[v].Get(graph.Node(v))
		if !ok || r.Dist != 0 || r.Next != semiring.NoVia {
			t.Fatalf("self route of %d wrong: %+v", v, r)
		}
	}
}

func TestRoutingTablesTopK(t *testing.T) {
	rng := par.NewRNG(3)
	g := graph.RandomConnected(30, 70, 5, rng)
	const k = 4
	tables := RoutingTables(g, k, g.N(), nil)
	exact := graph.APSPDijkstra(g)
	for v := 0; v < g.N(); v++ {
		if len(tables[v]) != k {
			t.Fatalf("node %d keeps %d routes, want %d", v, len(tables[v]), k)
		}
		// Every kept route is exact and among the k nearest.
		kept := 0
		for w := 0; w < g.N(); w++ {
			if r, ok := tables[v].Get(graph.Node(w)); ok {
				if r.Dist != exact.At(v, w) {
					t.Fatalf("top-k route (%d,%d) dist %v, want %v", v, w, r.Dist, exact.At(v, w))
				}
				kept++
			}
		}
		if kept != k {
			t.Fatalf("node %d: %d routes via Get", v, kept)
		}
	}
}

func TestRouteMapGetAbsent(t *testing.T) {
	x := semiring.RouteMap{{Target: 3, Dist: 1, Next: 2}}
	if _, ok := x.Get(5); ok {
		t.Fatal("absent target found")
	}
	if _, ok := x.Get(1); ok {
		t.Fatal("absent target found (before)")
	}
}
