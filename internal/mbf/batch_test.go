package mbf

// Differential property tests of the batched multi-source sweep: on random
// graphs, IterateBatch and RunToFixpointBatch must produce, lane for lane,
// exactly the states (per Module.Equal) and iteration counts of a solo
// Runner configured with that lane's filter — across parallel widths, for
// heterogeneous per-lane filters, for the B=1 degenerate batch, and for the
// per-lane fallback taken when a filter does not preserve ⊥. Runs in the
// short and -race tiers: the batch path shares pooled scratch between
// workers and stages its write-backs.

import (
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// batchCase builds B heterogeneous source-detection lanes on g: lane b keeps
// the k_b = b+1 closest even sources within distance d_b.
func batchCase(g *graph.Graph, B int) ([][]semiring.DistMap, []BatchLane[semiring.DistMap], []*Runner[float64, semiring.DistMap]) {
	xs := make([][]semiring.DistMap, B)
	lanes := make([]BatchLane[semiring.DistMap], B)
	solos := make([]*Runner[float64, semiring.DistMap], B)
	for b := 0; b < B; b++ {
		mod := b + 2
		sources := func(v semiring.NodeID) bool { return int(v)%mod == 0 }
		d := semiring.Inf
		if b%2 == 1 {
			d = float64(5 + b)
		}
		filter := semiring.TopKFilter(b+1, d, sources)
		filterInPlace := semiring.TopKFilterInPlace(b+1, d, sources)
		if b%3 == 2 {
			filterInPlace = nil // exercise the pure-filter lane path too
		}
		x0 := make([]semiring.DistMap, g.N())
		for v := range x0 {
			if sources(semiring.NodeID(v)) {
				x0[v] = semiring.SingletonDist(graph.Node(v), 0)
			}
		}
		xs[b] = x0
		lanes[b] = BatchLane[semiring.DistMap]{Filter: filter, FilterInPlace: filterInPlace}
		solos[b] = &Runner[float64, semiring.DistMap]{
			Graph:         g,
			Module:        semiring.DistMapModule{},
			Filter:        filter,
			FilterInPlace: filterInPlace,
			Weight:        MinPlusWeight,
		}
	}
	return xs, lanes, solos
}

// batchRunner is the shared runner the batched sweep runs on (no global
// filter: the lanes carry their own).
func batchRunner(g *graph.Graph) *Runner[float64, semiring.DistMap] {
	return &Runner[float64, semiring.DistMap]{
		Graph:  g,
		Module: semiring.DistMapModule{},
		Weight: MinPlusWeight,
	}
}

func TestIterateBatchMatchesPerLaneIterate(t *testing.T) {
	defer func(p int) { par.MaxProcs = p }(par.MaxProcs)
	for _, seed := range []uint64{1, 2, 3} {
		g := randomGraph(seed, 40, 120)
		xs, lanes, solos := batchCase(g, 5)
		// Advance each lane a few steps so the batch sees mid-run states.
		for b := range xs {
			for v := range xs[b] {
				xs[b][v] = lanes[b].filter(xs[b][v])
			}
			xs[b] = solos[b].Iterate(xs[b])
		}
		for _, procs := range maxProcsVariants() {
			par.MaxProcs = procs
			r := batchRunner(g)
			got := r.IterateBatch(xs, lanes)
			for b := range xs {
				want := solos[b].Iterate(xs[b])
				for v := range want {
					if !r.Module.Equal(got[b][v], want[v]) {
						t.Fatalf("seed=%d procs=%d lane=%d node=%d: batch %v ≠ solo %v",
							seed, procs, b, v, got[b][v], want[v])
					}
				}
			}
		}
	}
}

func TestRunToFixpointBatchMatchesSolo(t *testing.T) {
	defer func(p int) { par.MaxProcs = p }(par.MaxProcs)
	for _, seed := range []uint64{4, 5} {
		g := randomGraph(seed, 36, 100)
		for _, procs := range maxProcsVariants() {
			par.MaxProcs = procs
			xs, lanes, solos := batchCase(g, 5)
			r := batchRunner(g)
			gotStates, gotIters := r.RunToFixpointBatch(xs, lanes, g.N())
			for b := range xs {
				wantStates, wantIters := solos[b].RunToFixpoint(xs[b], g.N())
				if gotIters[b] != wantIters {
					t.Fatalf("seed=%d procs=%d lane=%d: batch ran %d iterations, solo %d",
						seed, procs, b, gotIters[b], wantIters)
				}
				for v := range wantStates {
					if !r.Module.Equal(gotStates[b][v], wantStates[v]) {
						t.Fatalf("seed=%d procs=%d lane=%d node=%d: batch %v ≠ solo %v",
							seed, procs, b, v, gotStates[b][v], wantStates[v])
					}
				}
			}
		}
	}
}

// TestRunToFixpointBatchSingleLane pins the degenerate B=1 batch — the shape
// SourceDetection routes through — against the solo engine, including the
// maxIter cap and the all-⊥ zero-iteration case.
func TestRunToFixpointBatchSingleLane(t *testing.T) {
	g := randomGraph(6, 30, 80)
	lane := BatchLane[semiring.DistMap]{
		Filter:        semiring.TopKFilter(3, semiring.Inf, nil),
		FilterInPlace: semiring.TopKFilterInPlace(3, semiring.Inf, nil),
	}
	solo := &Runner[float64, semiring.DistMap]{
		Graph:         g,
		Module:        semiring.DistMapModule{},
		Filter:        lane.Filter,
		FilterInPlace: lane.FilterInPlace,
		Weight:        MinPlusWeight,
	}
	x0 := make([]semiring.DistMap, g.N())
	for v := range x0 {
		x0[v] = semiring.SingletonDist(graph.Node(v), 0)
	}
	for _, maxIter := range []int{0, 1, 2, g.N()} {
		r := batchRunner(g)
		got, gotIters := r.RunToFixpointBatch([][]semiring.DistMap{x0}, []BatchLane[semiring.DistMap]{lane}, maxIter)
		want, wantIters := solo.RunToFixpoint(x0, maxIter)
		if gotIters[0] != wantIters {
			t.Fatalf("maxIter=%d: batch ran %d iterations, solo %d", maxIter, gotIters[0], wantIters)
		}
		for v := range want {
			if !r.Module.Equal(got[0][v], want[v]) {
				t.Fatalf("maxIter=%d node=%d: batch %v ≠ solo %v", maxIter, v, got[0][v], want[v])
			}
		}
	}
	// All-⊥ lane: fixpoint immediately, 0 iterations, exactly like solo.
	bottom := make([]semiring.DistMap, g.N())
	r := batchRunner(g)
	got, iters := r.RunToFixpointBatch([][]semiring.DistMap{bottom}, []BatchLane[semiring.DistMap]{lane}, g.N())
	if iters[0] != 0 {
		t.Fatalf("all-⊥ lane ran %d iterations, want 0", iters[0])
	}
	for v := range got[0] {
		if got[0][v].Len() != 0 {
			t.Fatalf("all-⊥ lane produced state at node %d: %v", v, got[0][v])
		}
	}
}

// TestRunToFixpointBatchZeroUnstableLane pins the per-lane fallback: one
// lane whose filter resurrects ⊥ states disables the sparse sweep, and the
// whole batch must still match solo runs lane for lane.
func TestRunToFixpointBatchZeroUnstableLane(t *testing.T) {
	g := randomGraph(7, 24, 60)
	resurrect := func(x semiring.DistMap) semiring.DistMap {
		if x.Len() == 0 {
			return semiring.SingletonDist(0, 1)
		}
		return x
	}
	lanes := []BatchLane[semiring.DistMap]{
		{Filter: semiring.TopKFilter(2, semiring.Inf, nil), FilterInPlace: semiring.TopKFilterInPlace(2, semiring.Inf, nil)},
		{Filter: resurrect},
	}
	x0 := make([]semiring.DistMap, g.N())
	for v := range x0 {
		x0[v] = semiring.SingletonDist(graph.Node(v), 0)
	}
	xs := [][]semiring.DistMap{x0, append([]semiring.DistMap(nil), x0...)}
	r := batchRunner(g)
	got, gotIters := r.RunToFixpointBatch(xs, lanes, 8)
	for b := range lanes {
		solo := &Runner[float64, semiring.DistMap]{
			Graph:  g,
			Module: semiring.DistMapModule{},
			Filter: lanes[b].Filter, FilterInPlace: lanes[b].FilterInPlace,
			Weight: MinPlusWeight,
		}
		want, wantIters := solo.RunToFixpoint(xs[b], 8)
		if gotIters[b] != wantIters {
			t.Fatalf("lane=%d: batch ran %d iterations, solo %d", b, gotIters[b], wantIters)
		}
		for v := range want {
			if !r.Module.Equal(got[b][v], want[v]) {
				t.Fatalf("lane=%d node=%d: batch %v ≠ solo %v", b, v, got[b][v], want[v])
			}
		}
	}
}

// TestSourceDetectionBatchMatchesPerSet pins the zoo entry point: a batch of
// source sets equals the per-set SourceDetection runs.
func TestSourceDetectionBatchMatchesPerSet(t *testing.T) {
	defer func(p int) { par.MaxProcs = p }(par.MaxProcs)
	g := randomGraph(8, 32, 90)
	sets := []func(graph.Node) bool{
		func(v graph.Node) bool { return v%2 == 0 },
		func(v graph.Node) bool { return v%3 == 0 },
		func(v graph.Node) bool { return v < 5 },
		nil, // all nodes
	}
	const h, d, k = 16, 12.0, 3
	for _, procs := range maxProcsVariants() {
		par.MaxProcs = procs
		got := SourceDetectionBatch(g, sets, h, d, k, nil)
		mod := semiring.DistMapModule{}
		for b, sources := range sets {
			want := SourceDetection(g, sources, h, d, k, nil)
			for v := range want {
				if !mod.Equal(got[b][v], want[v]) {
					t.Fatalf("procs=%d set=%d node=%d: batch %v ≠ solo %v", procs, b, v, got[b][v], want[v])
				}
			}
		}
	}
}
