package mbf

import "parmbf/internal/graph"

// RunToFixpointFrom resumes a fixpoint computation from a caller-supplied
// state vector and seed frontier — the incremental-repair entry point of the
// sparse engine. It is the change-propagation dual of RunToFixpoint: instead
// of seeding from the non-⊥ initial states of a fresh run, the caller hands
// in an old fixpoint (or an old fixpoint with some nodes reset) plus the set
// of nodes whose state or whose inputs changed, and the engine re-aggregates
// outward from those seeds until the states stabilise again.
//
// The contract on (x0, seeds): x0 must already be filtered, and every node
// NOT in seeds must satisfy the fixpoint equation x0(v) = r(x0(v) ⊕ ⊕_w
// a_vw ⊙ x0(w)) under the runner's CURRENT graph — i.e. seeds must cover
// every node whose own state was modified by the caller (e.g. reset to a
// singleton after a non-monotone edit) and every endpoint of an edited edge.
// Nodes beyond the seeds' influence cone are then provably stable and are
// never visited, which is what makes a small edit cost O(affected), not
// Ω(n).
//
// Returns the repaired states (x0 is not modified; the result vector aliases
// unchanged states), the deduplicated set of nodes whose state actually
// changed at some iteration (in first-change order — the "affected cone" a
// caller patches downstream artifacts from), and the number of sparse
// iterations performed, including the final iteration that confirms the
// fixpoint. Duplicate seeds are tolerated. A graph whose node count differs
// from the runner's pooled scratch re-sizes the scratch transparently (see
// getDelta), so a runner may be re-pointed at an edited graph between calls.
func (r *Runner[S, M]) RunToFixpointFrom(x0 []M, seeds []graph.Node, maxIter int) ([]M, []graph.Node, int) {
	if len(x0) != r.Graph.N() {
		panic("mbf: state vector length does not match graph size")
	}
	x := make([]M, len(x0))
	copy(x, x0)
	frontier := make([]graph.Node, 0, len(seeds))
	seen := make([]bool, len(x0))
	for _, v := range seeds {
		if !seen[v] {
			seen[v] = true
			frontier = append(frontier, v)
		}
	}
	clear(seen) // reuse as the changed-set marks below
	ds := r.getDelta(len(x))
	defer r.putDelta(ds)
	var changed []graph.Node
	it := 0
	for ; it < maxIter && len(frontier) > 0; it++ {
		frontier = r.iterateDelta(x, frontier, ds)
		for _, v := range frontier {
			if !seen[v] {
				seen[v] = true
				changed = append(changed, v)
			}
		}
	}
	return x, changed, it
}
