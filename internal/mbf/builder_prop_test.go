package mbf

import (
	"math/rand"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/semiring"
)

// This property test pins the Builder/Freeze semantics against a naive
// map-based reference: a random edge stream with duplicate and reversed
// insertions must freeze to exactly the reference's lightest-copy edge
// set, and the frozen CSR graph must be indistinguishable from a graph
// built from the clean reference edges — for Edges(), for Dijkstra, and
// for an MBF-like zoo instance run by the engine. It runs in the short
// tier and under -race in CI (the MBF engine iterates the shared frozen
// graph from parallel goroutines).

type pair struct{ u, v graph.Node }

func canon(u, v graph.Node) pair {
	if u > v {
		u, v = v, u
	}
	return pair{u, v}
}

func TestBuilderMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(28)
		inserts := 1 + rng.Intn(4*n)
		ref := map[pair]float64{}
		b := graph.NewBuilder(n)
		for i := 0; i < inserts; i++ {
			u := graph.Node(rng.Intn(n))
			v := graph.Node(rng.Intn(n))
			if u == v {
				continue
			}
			w := float64(1+rng.Intn(64)) / 8
			if rng.Intn(2) == 0 {
				u, v = v, u // reversed insertion
			}
			b.Add(u, v, w)
			if rng.Intn(3) == 0 {
				b.Add(v, u, w+1) // heavier duplicate: must lose
			}
			k := canon(u, v)
			if old, ok := ref[k]; !ok || w < old {
				ref[k] = w
			}
		}
		g := b.Freeze()

		// Edges() must equal the reference set exactly, (U,V)-sorted.
		es := g.Edges()
		if len(es) != len(ref) || g.M() != len(ref) {
			t.Fatalf("trial %d: %d edges, reference has %d", trial, len(es), len(ref))
		}
		for i, e := range es {
			if w, ok := ref[pair{e.U, e.V}]; !ok || w != e.Weight {
				t.Fatalf("trial %d: edge %v not in reference (want %v)", trial, e, w)
			}
			if i > 0 && (e.U < es[i-1].U || (e.U == es[i-1].U && e.V <= es[i-1].V)) {
				t.Fatalf("trial %d: Edges not sorted at %d: %v", trial, i, es)
			}
		}

		// A graph rebuilt from the clean reference edges must behave
		// identically: same Dijkstra output and same MBF zoo output.
		rb := graph.NewBuilder(n)
		for k, w := range ref {
			rb.Add(k.u, k.v, w)
		}
		rg := rb.Freeze()
		for _, src := range []graph.Node{0, graph.Node(n / 2)} {
			a, c := graph.Dijkstra(g, src), graph.Dijkstra(rg, src)
			for v := 0; v < n; v++ {
				if a.Dist[v] != c.Dist[v] || a.Hops[v] != c.Hops[v] {
					t.Fatalf("trial %d: Dijkstra(%d) differs at %d: (%v,%d) vs (%v,%d)",
						trial, src, v, a.Dist[v], a.Hops[v], c.Dist[v], c.Hops[v])
				}
			}
		}
		hop1, hop2 := SSSP(g, 0, n, nil), SSSP(rg, 0, n, nil)
		for v := range hop1 {
			if hop1[v] != hop2[v] {
				t.Fatalf("trial %d: MBF SSSP differs at %d: %v vs %v", trial, v, hop1[v], hop2[v])
			}
		}
		k := 1 + rng.Intn(3)
		top1, top2 := KSSP(g, k, n, nil), KSSP(rg, k, n, nil)
		for v := range top1 {
			if !(semiring.DistMapModule{}).Equal(top1[v], top2[v]) {
				t.Fatalf("trial %d: MBF k-SSP differs at %d: %v vs %v", trial, v, top1[v], top2[v])
			}
		}
	}
}
