// Package mbf implements the generic Moore-Bellman-Ford-like algorithm
// engine of §2 of Friedrichs & Lenzen, together with the algorithm zoo of §3
// built on top of it.
//
// An MBF-like algorithm is a triple (semimodule over a semiring, congruence
// relation with representative projection r, initial state vector x(0)); h
// iterations compute r^V A^h x(0), where A is the graph's adjacency matrix
// over the semiring (Definition 2.11). One iteration is
//
//	x'(v) = r( ⊕_{w ∈ V} a_{vw} ⊙ x(w) )
//	      = r( x(v) ⊕ ⊕_{{v,w} ∈ E} a_{vw} ⊙ x(w) ),
//
// since the adjacency matrix carries the multiplicative identity on its
// diagonal (each node keeps its own state) and the semiring zero for
// non-edges (nothing propagates). Corollary 2.17 (r^V ∼ id) lets the engine
// filter after every iteration without changing the output; this is what
// keeps intermediate states small and the work near-linear.
package mbf

import (
	"sync"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// Runner executes MBF-like iterations of one algorithm on one graph.
//
// The semiring element type S is the type of adjacency-matrix entries; the
// module type M is the type of node states. Weight translates a graph arc
// into its adjacency-matrix entry a_{from,to} — for the min-plus and max-min
// algebras this is simply the edge weight, for the all-paths semiring it is
// the single-edge path set, and for the Boolean semiring it is "true".
type Runner[S, M any] struct {
	// Graph is the input graph G.
	Graph *graph.Graph
	// Module is the zero-preserving semimodule M over the semiring.
	Module semiring.Semimodule[S, M]
	// Filter is the representative projection r. Nil means the identity.
	Filter semiring.Filter[M]
	// FilterInPlace, if non-nil, must compute the same function as Filter
	// but may reuse its argument's storage. The engine applies it only to
	// values it owns exclusively — the freshly merged output of the
	// Aggregator fast path — saving the copy a pure Filter would make.
	// Callers that set it must also set Filter (the generic path and the
	// initial-state projection still go through Filter).
	FilterInPlace semiring.Filter[M]
	// Weight translates the arc from→to of weight w into a_{from,to} ∈ S.
	Weight func(from, to graph.Node, w float64) S
	// Size measures the representation size of a node state (e.g. the
	// number of non-∞ entries of a distance map, Lemma 2.3). It is used for
	// work accounting only; nil means size 1 per state.
	Size func(M) int
	// Tracker, if non-nil, is charged the work/depth of every iteration in
	// the DAG cost model of §1.2.
	Tracker *par.Tracker

	// scratch recycles per-worker buffers of the aggregation fast path, so
	// steady-state iterations allocate only the output states.
	scratch sync.Pool // *iterScratch[S, M]
}

// iterScratch is one worker's reusable aggregation state: the term buffer
// handed to Aggregate plus the module's k-way-merge scratch.
type iterScratch[S, M any] struct {
	terms []semiring.Term[S, M]
	sc    semiring.Scratch
}

func (r *Runner[S, M]) size(x M) int {
	if r.Size == nil {
		return 1
	}
	return r.Size(x)
}

func (r *Runner[S, M]) filter(x M) M {
	if r.Filter == nil {
		return x
	}
	return r.Filter(x)
}

// filterOwned filters a value the engine owns exclusively, preferring the
// in-place variant when the caller provided one.
func (r *Runner[S, M]) filterOwned(x M) M {
	if r.FilterInPlace != nil {
		return r.FilterInPlace(x)
	}
	return r.filter(x)
}

// Iterate performs one MBF-like iteration x ↦ r^V(Ax), parallelised over
// nodes. The input is not modified.
//
// When the module implements semiring.Aggregator, each node's neighborhood
// is aggregated in one k-way merge over pooled scratch buffers — the
// Lemma 2.3 fast path, which allocates only the merged result — and the
// (identical) in-place filter is applied to it when available. Otherwise the
// generic Add/SMul fold of Definition 2.11 runs; both paths compute the same
// states.
func (r *Runner[S, M]) Iterate(x []M) []M {
	g := r.Graph
	n := g.N()
	if len(x) != n {
		panic("mbf: state vector length does not match graph size")
	}
	out := make([]M, n)
	var workPerNode []int64
	if r.Tracker != nil {
		workPerNode = make([]int64, n)
	}
	agg, fast := r.Module.(semiring.Aggregator[S, M])
	par.ForEach(n, func(vi int) {
		v := graph.Node(vi)
		if fast {
			st, _ := r.scratch.Get().(*iterScratch[S, M])
			if st == nil {
				st = new(iterScratch[S, M])
			}
			terms := st.terms[:0]
			for _, a := range g.Neighbors(v) {
				terms = append(terms, semiring.Term[S, M]{S: r.Weight(v, a.To, a.Weight), X: x[a.To]})
			}
			acc := agg.Aggregate(&st.sc, x[vi], terms)
			out[vi] = r.filterOwned(acc)
			if workPerNode != nil {
				// Charge the same quantities as the generic path: every
				// propagated state (its size approximated by the input
				// state's — exact for the shift-style algebras), the node's
				// own state, and the filtered output.
				work := int64(r.size(x[vi]))
				for _, t := range terms {
					work += int64(r.size(t.X))
				}
				workPerNode[vi] = work + int64(r.size(out[vi]))
			}
			var zero semiring.Term[S, M]
			for i := range terms {
				terms[i] = zero // drop state references before pooling
			}
			st.terms = terms[:0]
			r.scratch.Put(st)
			return
		}
		// Diagonal term: a_{vv} = 1, so the node keeps its own state.
		acc := x[vi]
		work := int64(r.size(acc))
		for _, a := range g.Neighbors(v) {
			// Propagate the neighbor's state over the edge, then aggregate.
			s := r.Weight(v, a.To, a.Weight)
			propagated := r.Module.SMul(s, x[a.To])
			acc = r.Module.Add(acc, propagated)
			work += int64(r.size(propagated))
		}
		out[vi] = r.filter(acc)
		if workPerNode != nil {
			workPerNode[vi] = work + int64(r.size(out[vi]))
		}
	})
	if r.Tracker != nil {
		var total, max int64
		for _, w := range workPerNode {
			total += w
			if w > max {
				max = w
			}
		}
		// Aggregation of k items costs O(log k) depth (Lemma 2.3); we charge
		// one depth unit per iteration plus the critical node's log-factor,
		// approximated by 1 since sizes are polylogarithmic after filtering.
		r.Tracker.AddPhase(total, 1)
	}
	return out
}

// Run performs h iterations starting from x0 and returns r^V A^h x(0).
// The initial filter application is included (states are kept filtered
// throughout, which Corollary 2.17 shows is equivalent).
func (r *Runner[S, M]) Run(x0 []M, h int) []M {
	x := make([]M, len(x0))
	for i, s := range x0 {
		x[i] = r.filter(s)
	}
	for i := 0; i < h; i++ {
		x = r.Iterate(x)
	}
	return x
}

// RunToFixpoint iterates until the filtered state vector stops changing or
// maxIter iterations have run, returning the final states and the number of
// iterations performed. A fixpoint is reached after at most SPD(G)
// iterations for the distance algebras (§1.2).
func (r *Runner[S, M]) RunToFixpoint(x0 []M, maxIter int) ([]M, int) {
	x := make([]M, len(x0))
	for i, s := range x0 {
		x[i] = r.filter(s)
	}
	for it := 0; it < maxIter; it++ {
		next := r.Iterate(x)
		if r.statesEqual(x, next) {
			return next, it
		}
		x = next
	}
	return x, maxIter
}

func (r *Runner[S, M]) statesEqual(x, y []M) bool {
	eq := par.Reduce(len(x), true,
		func(i int) bool { return r.Module.Equal(x[i], y[i]) },
		func(a, b bool) bool { return a && b })
	return eq
}

// MinPlusWeight is the Weight function of the min-plus algebras: the
// adjacency entry is the edge weight itself (Equation 1.4).
func MinPlusWeight(_, _ graph.Node, w float64) float64 { return w }

// MaxMinWeight is the Weight function of the max-min algebras
// (Equation 3.9).
func MaxMinWeight(_, _ graph.Node, w float64) float64 { return w }

// BoolWeight is the Weight function of the Boolean algebra
// (Equation 3.28): every edge propagates.
func BoolWeight(_, _ graph.Node, _ float64) bool { return true }

// PathWeight is the Weight function of the all-paths semiring
// (Equation 3.18): the arc from→to becomes the single-edge path (from, to)
// with its weight.
func PathWeight(from, to graph.Node, w float64) semiring.PathSet {
	return semiring.PathSet{semiring.MakePath(from, to): w}
}
