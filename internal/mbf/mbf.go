// Package mbf implements the generic Moore-Bellman-Ford-like algorithm
// engine of §2 of Friedrichs & Lenzen, together with the algorithm zoo of §3
// built on top of it.
//
// An MBF-like algorithm is a triple (semimodule over a semiring, congruence
// relation with representative projection r, initial state vector x(0)); h
// iterations compute r^V A^h x(0), where A is the graph's adjacency matrix
// over the semiring (Definition 2.11). One iteration is
//
//	x'(v) = r( ⊕_{w ∈ V} a_{vw} ⊙ x(w) )
//	      = r( x(v) ⊕ ⊕_{{v,w} ∈ E} a_{vw} ⊙ x(w) ),
//
// since the adjacency matrix carries the multiplicative identity on its
// diagonal (each node keeps its own state) and the semiring zero for
// non-edges (nothing propagates). Corollary 2.17 (r^V ∼ id) lets the engine
// filter after every iteration without changing the output; this is what
// keeps intermediate states small and the work near-linear.
//
// # Frontier-driven sparse fixpoint engine
//
// Fixpoint loops (r^V A x iterated until the states stop changing, which
// happens after at most SPD(G) hops for the distance algebras) spend their
// late iterations re-deriving states that are already stable: x'(v) depends
// only on x at v and at v's neighbors, so if none of those states changed in
// the previous iteration, recomputing v reproduces x(v) exactly. The sparse
// engine exploits this with change propagation:
//
//   - the frontier after an iteration is the set of nodes whose filtered
//     state changed in that iteration;
//   - the next iteration re-aggregates only the affected nodes — every
//     frontier node (its own state feeds its next state through the
//     diagonal) plus every node with a frontier node among its in-neighbors
//     (graph.Graph.InNeighbors, the transpose view, which is the graph
//     itself for the symmetric graphs this library builds);
//   - all other nodes keep their state, which IterateDelta never touches.
//
// The initial frontier is the set of nodes whose filtered x(0) is non-⊥: a
// node that is ⊥ with an all-⊥ in-neighborhood stays ⊥, because the
// semimodule is zero-preserving and the filter is a representative
// projection with r(⊥) = ⊥ (RunToFixpoint verifies r(⊥) = ⊥ at runtime and
// falls back to the dense loop otherwise). The fixpoint is reached exactly
// when the frontier empties — no separate state-vector comparison pass is
// needed — and the states produced are identical, per Module.Equal at every
// node after every iteration, to those of the dense engine
// (RunToFixpointDense, kept as the differential-test reference).
package mbf

import (
	"sync"
	"sync/atomic"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// Runner executes MBF-like iterations of one algorithm on one graph.
//
// The semiring element type S is the type of adjacency-matrix entries; the
// module type M is the type of node states. Weight translates a graph arc
// into its adjacency-matrix entry a_{from,to} — for the min-plus and max-min
// algebras this is simply the edge weight, for the all-paths semiring it is
// the single-edge path set, and for the Boolean semiring it is "true".
type Runner[S, M any] struct {
	// Graph is the input graph G.
	Graph *graph.Graph
	// Module is the zero-preserving semimodule M over the semiring.
	Module semiring.Semimodule[S, M]
	// Filter is the representative projection r. Nil means the identity.
	Filter semiring.Filter[M]
	// FilterInPlace, if non-nil, must compute the same function as Filter
	// but may reuse its argument's storage. The engine applies it only to
	// values it owns exclusively — the freshly merged output of the
	// Aggregator fast path — saving the copy a pure Filter would make.
	// Callers that set it must also set Filter (the generic path and the
	// initial-state projection still go through Filter).
	FilterInPlace semiring.Filter[M]
	// Weight translates the arc from→to of weight w into a_{from,to} ∈ S.
	Weight func(from, to graph.Node, w float64) S
	// Size measures the representation size of a node state (e.g. the
	// number of non-∞ entries of a distance map, Lemma 2.3). It is used for
	// work accounting only; nil means size 1 per state.
	Size func(M) int
	// PropagatedSize, if non-nil, returns Size(Module.SMul(s, x)) without
	// materialising the propagated state. The aggregation fast path uses it
	// to charge the Tracker exactly what the generic fold charges for a
	// propagated term; nil approximates by Size(x), which is exact for the
	// shift-style modules of this library (DistMap, WidthMap, BoolSet, the
	// scalar algebras) whenever Weight never returns the semiring zero — a
	// dead edge, whose SMul collapses the state to ⊥. Set it when a custom
	// Weight can return the zero and exact work accounting matters.
	PropagatedSize func(s S, x M) int
	// Tracker, if non-nil, is charged the work/depth of every iteration in
	// the DAG cost model of §1.2. Sparse iterations (IterateDelta) charge
	// only the nodes they actually re-aggregate — the work performed, not
	// the work a dense iteration would have performed.
	Tracker *par.Tracker

	// scratch recycles per-worker buffers of the aggregation fast path, so
	// steady-state iterations allocate only the output states.
	scratch sync.Pool // *iterScratch[S, M]
	// deltaPool recycles the frontier bookkeeping of the sparse engine
	// across IterateDelta calls, so external fixpoint drivers (e.g. the
	// Congest simulation, which needs per-step round accounting) iterate
	// as cheaply as RunToFixpoint's internal loop.
	deltaPool sync.Pool // *deltaScratch
	// batchPool recycles the per-worker buffers of the batched multi-source
	// sweep (batch.go).
	batchPool sync.Pool // *batchScratch[S, M]
}

// iterScratch is one worker's reusable aggregation state: the term buffer
// handed to Aggregate plus the module's k-way-merge scratch.
type iterScratch[S, M any] struct {
	terms []semiring.Term[S, M]
	sc    semiring.Scratch
}

func (r *Runner[S, M]) size(x M) int {
	if r.Size == nil {
		return 1
	}
	return r.Size(x)
}

func (r *Runner[S, M]) propagatedSize(s S, x M) int {
	if r.PropagatedSize != nil {
		return r.PropagatedSize(s, x)
	}
	return r.size(x)
}

func (r *Runner[S, M]) filter(x M) M {
	if r.Filter == nil {
		return x
	}
	return r.Filter(x)
}

// ownedFilter returns the filter the engine applies to values it owns
// exclusively: the in-place variant when the caller provided one, the pure
// one otherwise (nil when unfiltered).
func (r *Runner[S, M]) ownedFilter() semiring.Filter[M] {
	if r.FilterInPlace != nil {
		return r.FilterInPlace
	}
	return r.Filter
}

// filterOwned filters a value the engine owns exclusively.
func (r *Runner[S, M]) filterOwned(x M) M {
	if f := r.ownedFilter(); f != nil {
		return f(x)
	}
	return x
}

// getIter pops a pooled per-worker aggregation scratch; putIter drops the
// state references the term buffer accumulated since getIter and returns it
// to the pool. The iteration loops call the pair once per ForEachChunk range,
// not once per node: the pool round trip and the reference-dropping barrier
// writes are per-worker-chunk costs, which matters on wavefront-shaped
// fixpoints where most recomputes are near-trivial.
func (r *Runner[S, M]) getIter() *iterScratch[S, M] {
	st, _ := r.scratch.Get().(*iterScratch[S, M])
	if st == nil {
		st = new(iterScratch[S, M])
	}
	return st
}

func (r *Runner[S, M]) putIter(st *iterScratch[S, M]) {
	t := st.terms[:cap(st.terms)]
	var zero semiring.Term[S, M]
	for i := range t {
		t[i] = zero // drop state references so the pool cannot pin them
	}
	r.scratch.Put(st)
}

// recompute derives one node's next state x'(v) = r(x(v) ⊕ ⊕_w a_vw ⊙ x(w))
// — through the k-way aggregation fast path when the module provides one,
// through the generic Add/SMul fold otherwise — and returns it together with
// the work to charge for the node (0 when no Tracker is attached). Both
// paths charge identically: the node's own state, every propagated state,
// and the filtered output. st carries the worker's pooled term buffer and
// merge scratch; the fast path leaves its state references in st.terms for
// putIter to drop once per chunk.
func (r *Runner[S, M]) recompute(vi int, x []M, st *iterScratch[S, M], agg semiring.Aggregator[S, M], fa semiring.FilteredAggregator[S, M], fast bool) (M, int64) {
	g := r.Graph
	v := graph.Node(vi)
	var work int64
	if fast {
		terms := st.terms[:0]
		for _, a := range g.Neighbors(v) {
			terms = append(terms, semiring.Term[S, M]{S: r.Weight(v, a.To, a.Weight), X: x[a.To]})
		}
		var out M
		if fa != nil {
			// Fused merge-and-filter: the raw merge lives in scratch and only
			// the filtered survivors are allocated (right-sized states keep
			// the vector cache-dense for the next iteration).
			out = fa.AggregateFiltered(&st.sc, x[vi], terms, r.ownedFilter())
		} else {
			out = r.filterOwned(agg.Aggregate(&st.sc, x[vi], terms))
		}
		if r.Tracker != nil {
			work = int64(r.size(x[vi]))
			for _, t := range terms {
				work += int64(r.propagatedSize(t.S, t.X))
			}
			work += int64(r.size(out))
		}
		st.terms = terms[:0]
		return out, work
	}
	// Diagonal term: a_{vv} = 1, so the node keeps its own state.
	acc := x[vi]
	if r.Tracker != nil {
		work = int64(r.size(acc))
	}
	for _, a := range g.Neighbors(v) {
		// Propagate the neighbor's state over the edge, then aggregate.
		s := r.Weight(v, a.To, a.Weight)
		propagated := r.Module.SMul(s, x[a.To])
		acc = r.Module.Add(acc, propagated)
		if r.Tracker != nil {
			work += int64(r.size(propagated))
		}
	}
	out := r.filter(acc)
	if r.Tracker != nil {
		work += int64(r.size(out))
	}
	return out, work
}

// chargePhase sums the per-node work of one (possibly sparse) iteration and
// charges it to the Tracker as a parallel phase. Aggregation of k items
// costs O(log k) depth (Lemma 2.3); we charge one depth unit per iteration
// since sizes are polylogarithmic after filtering.
func (r *Runner[S, M]) chargePhase(workPerNode []int64) {
	if r.Tracker == nil {
		return
	}
	var total int64
	for _, w := range workPerNode {
		total += w
	}
	r.Tracker.AddPhase(total, 1)
}

// Iterate performs one MBF-like iteration x ↦ r^V(Ax), parallelised over
// nodes. The input is not modified.
//
// When the module implements semiring.Aggregator, each node's neighborhood
// is aggregated in one k-way merge over pooled scratch buffers — the
// Lemma 2.3 fast path, which allocates only the merged result — and the
// (identical) in-place filter is applied to it when available. Otherwise the
// generic Add/SMul fold of Definition 2.11 runs; both paths compute the same
// states.
func (r *Runner[S, M]) Iterate(x []M) []M {
	n := r.Graph.N()
	if len(x) != n {
		panic("mbf: state vector length does not match graph size")
	}
	return r.iterateInto(x, make([]M, n))
}

// iterateInto is Iterate writing into a caller-provided output vector, which
// it fully overwrites and returns. RunToFixpointDense ping-pongs two vectors
// through it so a fixpoint run allocates two state-header vectors total
// instead of one per iteration.
func (r *Runner[S, M]) iterateInto(x, out []M) []M {
	n := r.Graph.N()
	var workPerNode []int64
	if r.Tracker != nil {
		workPerNode = make([]int64, n)
	}
	agg, fast := r.Module.(semiring.Aggregator[S, M])
	// The fused-path assertion is hoisted out of the per-node loop: generic
	// interface assertions go through the runtime, too slow per node.
	fa, _ := r.Module.(semiring.FilteredAggregator[S, M])
	par.ForEachChunk(n, func(start, end int) {
		st := r.getIter()
		for vi := start; vi < end; vi++ {
			s, work := r.recompute(vi, x, st, agg, fa, fast)
			out[vi] = s
			if workPerNode != nil {
				workPerNode[vi] = work
			}
		}
		r.putIter(st)
	})
	r.chargePhase(workPerNode)
	return out
}

// deltaScratch holds the reusable frontier bookkeeping of the sparse engine:
// the candidate mark bits, the candidate list, the per-candidate change
// flags, and the per-candidate recomputed states (buffered so the write-back
// can happen after the parallel read phase, letting the driver update its
// vector in place). One instance serves a whole RunToFixpoint loop.
type deltaScratch[M any] struct {
	touched []bool
	cand    []graph.Node
	changed []bool
	states  []M
	work    []int64
}

// getDelta pops a pooled deltaScratch sized for the runner's graph (the
// mark array must have one bit per node), allocating on first use. Callers
// return it with putDelta; iterateDelta leaves every mark cleared and every
// buffered state reference dropped, so a pooled scratch is always ready.
func (r *Runner[S, M]) getDelta(n int) *deltaScratch[M] {
	ds, _ := r.deltaPool.Get().(*deltaScratch[M])
	if ds == nil || len(ds.touched) != n {
		ds = &deltaScratch[M]{touched: make([]bool, n)}
	}
	return ds
}

func (r *Runner[S, M]) putDelta(ds *deltaScratch[M]) { r.deltaPool.Put(ds) }

// IterateDelta performs one sparse MBF-like iteration: given that frontier
// lists every node whose state changed in the previous iteration (for the
// first iteration: every node with a non-⊥ filtered state, see Frontier),
// it re-aggregates only the affected nodes — frontier nodes and nodes with
// a frontier node among their in-neighbors — and returns the next state
// vector together with the next frontier, in ascending discovery order.
// Unaffected nodes keep their state value (the returned vector aliases
// them; states are shared immutable values). The input vector is not
// modified — the purity costs one n-length header copy, which
// RunToFixpoint's internal loop avoids by updating its own vector in
// place, so a sparse step there is O(affected), not Ω(n).
//
// IterateDelta(x, frontier) equals Iterate(x) node-for-node whenever the
// frontier invariant holds, and the returned frontier is exactly the set of
// nodes at which the two vectors differ. Duplicate frontier entries are
// tolerated.
func (r *Runner[S, M]) IterateDelta(x []M, frontier []graph.Node) ([]M, []graph.Node) {
	if len(x) != r.Graph.N() {
		panic("mbf: state vector length does not match graph size")
	}
	out := make([]M, len(x))
	copy(out, x)
	ds := r.getDelta(len(x))
	next := r.iterateDelta(out, frontier, ds)
	r.putDelta(ds)
	return out, next
}

// iterateDelta is the in-place sparse step: it recomputes the affected
// nodes of x (reading the vector concurrently, buffering the results in
// ds.states) and then writes the changed states back into x, returning the
// next frontier. The caller must own x exclusively.
func (r *Runner[S, M]) iterateDelta(x []M, frontier []graph.Node, ds *deltaScratch[M]) []graph.Node {
	g := r.Graph
	// Candidates: the frontier plus everyone reading a frontier node's
	// state. Node v aggregates x over its out-arcs, so a change at u feeds
	// exactly the nodes with an arc into u — u's in-neighbors (the
	// transpose view; the graph itself when symmetric).
	cand := ds.cand[:0]
	for _, u := range frontier {
		if !ds.touched[u] {
			ds.touched[u] = true
			cand = append(cand, u)
		}
		for _, a := range g.InNeighbors(u) {
			if !ds.touched[a.To] {
				ds.touched[a.To] = true
				cand = append(cand, a.To)
			}
		}
	}
	changed := ds.changed[:0]
	states := ds.states[:0]
	var zeroM M
	for range cand {
		changed = append(changed, false)
		states = append(states, zeroM)
	}
	var workPerNode []int64
	if r.Tracker != nil {
		workPerNode = ds.work[:0]
		for range cand {
			workPerNode = append(workPerNode, 0)
		}
	}
	agg, fast := r.Module.(semiring.Aggregator[S, M])
	fa, _ := r.Module.(semiring.FilteredAggregator[S, M])
	par.ForEachChunk(len(cand), func(start, end int) {
		st := r.getIter()
		for i := start; i < end; i++ {
			v := cand[i]
			s, work := r.recompute(int(v), x, st, agg, fa, fast)
			if workPerNode != nil {
				workPerNode[i] = work
			}
			if !r.Module.Equal(s, x[v]) {
				states[i] = s
				changed[i] = true
			}
		}
		r.putIter(st)
	})
	r.chargePhase(workPerNode)
	// Write-back after the parallel read phase: no candidate may observe a
	// neighbor's new state mid-iteration.
	next := make([]graph.Node, 0, len(cand))
	for i, v := range cand {
		if changed[i] {
			x[v] = states[i]
			next = append(next, v)
		}
		states[i] = zeroM // drop state references before pooling
		ds.touched[v] = false
	}
	ds.cand, ds.changed, ds.states = cand[:0], changed[:0], states[:0]
	if workPerNode != nil {
		ds.work = workPerNode[:0]
	}
	return next
}

// Frontier returns the nodes whose state differs from ⊥ — the seed frontier
// of a sparse fixpoint loop over an already-filtered state vector.
func (r *Runner[S, M]) Frontier(x []M) []graph.Node {
	zero := r.Module.Zero()
	var f []graph.Node
	for v := range x {
		if !r.Module.Equal(x[v], zero) {
			f = append(f, graph.Node(v))
		}
	}
	return f
}

// zeroStable reports whether the filter maps ⊥ to ⊥ — the property the
// sparse engine needs so that untouched all-⊥ neighborhoods provably stay
// ⊥. Every representative projection in this library satisfies it; a custom
// filter that does not sends RunToFixpoint to the dense loop.
func (r *Runner[S, M]) zeroStable() bool {
	if r.Filter == nil {
		return true
	}
	zero := r.Module.Zero()
	return r.Module.Equal(r.Filter(zero), zero)
}

// RunToFixpoint iterates until the filtered state vector stops changing or
// maxIter iterations have run, returning the final states and the number of
// iterations performed — including the final iteration that confirms the
// fixpoint. A fixpoint is reached after at most SPD(G) hops for the distance
// algebras (§1.2), so the count is SPD-related + 1 when it converges.
//
// The loop is frontier-driven: it seeds the frontier with the non-⊥ filtered
// initial states and performs sparse IterateDelta steps until the frontier
// empties, re-aggregating only nodes that can still change and never
// scanning the full vector for equality. An all-⊥ input is recognised as a
// fixpoint immediately, with 0 iterations. The states are identical to
// RunToFixpointDense's; if the filter does not map ⊥ to ⊥ (no filter in
// this library does that), the dense loop runs instead.
func (r *Runner[S, M]) RunToFixpoint(x0 []M, maxIter int) ([]M, int) {
	if !r.zeroStable() {
		return r.RunToFixpointDense(x0, maxIter)
	}
	x := make([]M, len(x0))
	for i, s := range x0 {
		x[i] = r.filter(s)
	}
	frontier := r.Frontier(x)
	ds := r.getDelta(len(x))
	defer r.putDelta(ds)
	// The loop owns x (built fresh above), so each sparse step updates it
	// in place — no per-iteration vector copy.
	for it := 0; it < maxIter; it++ {
		if len(frontier) == 0 {
			return x, it
		}
		frontier = r.iterateDelta(x, frontier, ds)
	}
	return x, maxIter
}

// RunToFixpointDense is the dense reference fixpoint loop: every iteration
// re-aggregates all nodes and a full (early-exiting) vector comparison
// detects convergence. It computes exactly the states and iteration count of
// RunToFixpoint (except that an all-⊥ input costs one confirming iteration
// the sparse loop skips) and remains as the fallback for filters that do not
// preserve ⊥, and as the differential-test baseline.
func (r *Runner[S, M]) RunToFixpointDense(x0 []M, maxIter int) ([]M, int) {
	x := make([]M, len(x0))
	for i, s := range x0 {
		x[i] = r.filter(s)
	}
	// Ping-pong between two vectors: iterateInto fully overwrites its output,
	// so the vector from two iterations ago can carry the next one.
	spare := make([]M, len(x))
	for it := 1; it <= maxIter; it++ {
		next := r.iterateInto(x, spare)
		if r.statesEqual(x, next) {
			return next, it
		}
		x, spare = next, x
	}
	return x, maxIter
}

// statesEqual compares two state vectors node-wise, in parallel, bailing out
// as soon as any worker finds a mismatch (the remaining indices only load
// one atomic flag each).
func (r *Runner[S, M]) statesEqual(x, y []M) bool {
	var diff atomic.Bool
	par.ForEach(len(x), func(i int) {
		if diff.Load() {
			return
		}
		if !r.Module.Equal(x[i], y[i]) {
			diff.Store(true)
		}
	})
	return !diff.Load()
}

// Run performs h iterations starting from x0 and returns r^V A^h x(0).
// The initial filter application is included (states are kept filtered
// throughout, which Corollary 2.17 shows is equivalent).
func (r *Runner[S, M]) Run(x0 []M, h int) []M {
	x := make([]M, len(x0))
	for i, s := range x0 {
		x[i] = r.filter(s)
	}
	for i := 0; i < h; i++ {
		x = r.Iterate(x)
	}
	return x
}

// MinPlusWeight is the Weight function of the min-plus algebras: the
// adjacency entry is the edge weight itself (Equation 1.4).
func MinPlusWeight(_, _ graph.Node, w float64) float64 { return w }

// MaxMinWeight is the Weight function of the max-min algebras
// (Equation 3.9).
func MaxMinWeight(_, _ graph.Node, w float64) float64 { return w }

// BoolWeight is the Weight function of the Boolean algebra
// (Equation 3.28): every edge propagates.
func BoolWeight(_, _ graph.Node, _ float64) bool { return true }

// HopWeight is the Weight function of the next-hop-enriched min-plus
// algebra (HopSemiring): the arc from→to carries the edge weight and stamps
// to as the first hop of every route it relaxes.
func HopWeight(_, to graph.Node, w float64) semiring.Hop {
	return semiring.Hop{W: w, Via: to}
}

// PathWeight is the Weight function of the all-paths semiring
// (Equation 3.18): the arc from→to becomes the single-edge path (from, to)
// with its weight.
func PathWeight(from, to graph.Node, w float64) semiring.PathSet {
	return semiring.PathSet{semiring.MakePath(from, to): w}
}
