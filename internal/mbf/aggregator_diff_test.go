package mbf

// Differential property tests of the engine's aggregation fast path: on
// random graphs, a Runner whose module implements semiring.Aggregator must
// produce exactly the states of the same Runner with the fast path hidden
// (forcing the generic Add/SMul fold of Definition 2.11). Runs in the short
// and -race tiers — the fast path is also the code that shares pooled
// scratch between workers.

import (
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// foldOnly hides a module's Aggregate method, forcing the generic fold.
type foldOnly[S, M any] struct {
	semiring.Semimodule[S, M]
}

func diffGraph(seed uint64) *graph.Graph {
	return graph.RandomConnected(60, 180, 8, par.NewRNG(seed))
}

// runBoth executes h iterations with the fast path and with the fold and
// compares the state vectors node-wise after every iteration.
func runBoth[S, M any](t *testing.T, fast *Runner[S, M], x0 []M, h int) {
	t.Helper()
	if _, ok := fast.Module.(semiring.Aggregator[S, M]); !ok {
		t.Fatalf("module %T does not implement the fast path; test is vacuous", fast.Module)
	}
	slow := &Runner[S, M]{
		Graph:   fast.Graph,
		Module:  foldOnly[S, M]{fast.Module},
		Filter:  fast.Filter,
		Weight:  fast.Weight,
		Size:    fast.Size,
		Tracker: nil,
	}
	xf := append([]M(nil), x0...)
	xs := append([]M(nil), x0...)
	for i := range xf {
		xf[i] = fast.filter(xf[i])
		xs[i] = slow.filter(xs[i])
	}
	for it := 0; it < h; it++ {
		xf = fast.Iterate(xf)
		xs = slow.Iterate(xs)
		for v := range xf {
			if !fast.Module.Equal(xf[v], xs[v]) {
				t.Fatalf("iteration %d node %d: fast %v != fold %v", it, v, xf[v], xs[v])
			}
		}
	}
}

func TestFastPathMatchesFoldDistMap(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g := diffGraph(seed)
		sources := func(v graph.Node) bool { return v%2 == 0 }
		r := &Runner[float64, semiring.DistMap]{
			Graph:         g,
			Module:        semiring.DistMapModule{},
			Filter:        semiring.TopKFilter(4, 40, sources),
			FilterInPlace: semiring.TopKFilterInPlace(4, 40, sources),
			Weight:        MinPlusWeight,
		}
		x0 := make([]semiring.DistMap, g.N())
		for v := range x0 {
			if sources(graph.Node(v)) {
				x0[v] = semiring.SingletonDist(graph.Node(v), 0)
			}
		}
		runBoth(t, r, x0, 6)
	}
}

func TestFastPathMatchesFoldDistMapUnfiltered(t *testing.T) {
	g := diffGraph(4)
	r := &Runner[float64, semiring.DistMap]{
		Graph:  g,
		Module: semiring.DistMapModule{},
		Weight: MinPlusWeight,
	}
	x0 := make([]semiring.DistMap, g.N())
	for v := range x0 {
		x0[v] = semiring.SingletonDist(graph.Node(v), 0)
	}
	runBoth(t, r, x0, 4)
}

func TestFastPathMatchesFoldWidthMap(t *testing.T) {
	for _, seed := range []uint64{5, 6} {
		g := diffGraph(seed)
		r := &Runner[float64, semiring.WidthMap]{
			Graph:  g,
			Module: semiring.WidthMapModule{},
			Weight: MaxMinWeight,
		}
		x0 := make([]semiring.WidthMap, g.N())
		for v := range x0 {
			if v%3 == 0 {
				x0[v] = semiring.WidthMap{{Node: graph.Node(v), Width: semiring.Inf}}
			}
		}
		runBoth(t, r, x0, 6)
	}
}

func TestFastPathMatchesFoldRouteMap(t *testing.T) {
	for _, seed := range []uint64{11, 12, 13} {
		g := diffGraph(seed)
		r := &Runner[semiring.Hop, semiring.RouteMap]{
			Graph:  g,
			Module: semiring.RouteMapModule{},
			Weight: HopWeight,
		}
		x0 := make([]semiring.RouteMap, g.N())
		for v := range x0 {
			x0[v] = semiring.RouteMap{{Target: graph.Node(v), Dist: 0, Next: semiring.NoVia}}
		}
		runBoth(t, r, x0, 6)
	}
}

// TestFastPathMatchesFoldRouteMapRestricted covers the sparse shape the
// routing application feeds the engine: only a subset of nodes seed a table,
// so most merges see empty self states and dead terms.
func TestFastPathMatchesFoldRouteMapRestricted(t *testing.T) {
	g := diffGraph(14)
	r := &Runner[semiring.Hop, semiring.RouteMap]{
		Graph:  g,
		Module: semiring.RouteMapModule{},
		Weight: HopWeight,
	}
	x0 := make([]semiring.RouteMap, g.N())
	for v := range x0 {
		if v%5 == 0 {
			x0[v] = semiring.RouteMap{{Target: graph.Node(v), Dist: 0, Next: semiring.NoVia}}
		}
	}
	runBoth(t, r, x0, 6)
}

func TestFastPathMatchesFoldBoolSet(t *testing.T) {
	g := diffGraph(7)
	r := &Runner[bool, []semiring.NodeID]{
		Graph:  g,
		Module: semiring.BoolSet{},
		Weight: BoolWeight,
	}
	x0 := make([][]semiring.NodeID, g.N())
	for v := range x0 {
		x0[v] = []semiring.NodeID{graph.Node(v)}
	}
	runBoth(t, r, x0, 4)
}

func TestFastPathMatchesFoldScalars(t *testing.T) {
	g := diffGraph(8)
	rmin := &Runner[float64, float64]{Graph: g, Module: semiring.MinPlusSelf{}, Weight: MinPlusWeight}
	x0 := make([]float64, g.N())
	for v := range x0 {
		x0[v] = semiring.Inf
	}
	x0[0] = 0
	runBoth(t, rmin, x0, 8)

	rmax := &Runner[float64, float64]{Graph: g, Module: semiring.MaxMinSelf{}, Weight: MaxMinWeight}
	w0 := make([]float64, g.N())
	w0[0] = semiring.Inf
	runBoth(t, rmax, w0, 8)
}

// TestFastPathDoesNotMutateInput is the engine-level mutation fuzz: Iterate
// with pooled scratch and in-place filtering must leave the input state
// vector byte-identical — states are shared immutable values.
func TestFastPathDoesNotMutateInput(t *testing.T) {
	g := diffGraph(9)
	var mod semiring.DistMapModule
	r := &Runner[float64, semiring.DistMap]{
		Graph:         g,
		Module:        mod,
		Filter:        semiring.TopKFilter(3, semiring.Inf, nil),
		FilterInPlace: semiring.TopKFilterInPlace(3, semiring.Inf, nil),
		Weight:        MinPlusWeight,
	}
	x := make([]semiring.DistMap, g.N())
	for v := range x {
		x[v] = semiring.SingletonDist(graph.Node(v), 0)
	}
	for it := 0; it < 5; it++ {
		snapshot := make([]semiring.DistMap, len(x))
		for v := range x {
			snapshot[v] = x[v].Clone()
		}
		next := r.Iterate(x)
		for v := range x {
			if !mod.Equal(x[v], snapshot[v]) {
				t.Fatalf("iteration %d: Iterate mutated input state of node %d: %v != %v", it, v, x[v], snapshot[v])
			}
		}
		x = next
	}
}

// TestFastPathDeterministicAcrossMaxProcs pins scratch pooling against the
// parallel width: the same input must yield identical states whether one
// worker reuses a single scratch or many workers share the pool.
func TestFastPathDeterministicAcrossMaxProcs(t *testing.T) {
	g := diffGraph(10)
	build := func() ([]semiring.DistMap, *Runner[float64, semiring.DistMap]) {
		r := &Runner[float64, semiring.DistMap]{
			Graph:         g,
			Module:        semiring.DistMapModule{},
			Filter:        semiring.TopKFilter(4, semiring.Inf, nil),
			FilterInPlace: semiring.TopKFilterInPlace(4, semiring.Inf, nil),
			Weight:        MinPlusWeight,
		}
		x0 := make([]semiring.DistMap, g.N())
		for v := range x0 {
			x0[v] = semiring.SingletonDist(graph.Node(v), 0)
		}
		return x0, r
	}
	defer func(p int) { par.MaxProcs = p }(par.MaxProcs)
	var want []semiring.DistMap
	for _, procs := range []int{1, 4} {
		par.MaxProcs = procs
		x, r := build()
		got := r.Run(x, 5)
		if want == nil {
			want = got
			continue
		}
		for v := range got {
			if !r.Module.Equal(got[v], want[v]) {
				t.Fatalf("MaxProcs=%d node %d: %v != sequential %v", procs, v, got[v], want[v])
			}
		}
	}
}
