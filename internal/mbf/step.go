package mbf

import "parmbf/internal/graph"

// Stepper drives a sparse fixpoint one iteration at a time for callers that
// need to observe (or account for) the states between steps — the CONGEST
// simulations meter per-round message sizes, so they cannot hand the whole
// loop to RunToFixpoint. The stepper owns its state vector and one
// deltaScratch for its entire life, so each Step is the in-place O(affected)
// sparse iteration of RunToFixpoint's internal loop rather than the pure
// IterateDelta, whose immutability guarantee costs an Ω(n) vector copy per
// call.
//
// A Stepper is not safe for concurrent use (each Step parallelises
// internally), and the runner's Graph/Module/Filter must not change while a
// stepper is live. Call Release when done to return the scratch to the
// runner's pool; the state vector stays valid afterwards.
type Stepper[S, M any] struct {
	r        *Runner[S, M]
	x        []M
	frontier []graph.Node
	ds       *deltaScratch[M]
	steps    int
}

// NewStepper filters x0 into a stepper-owned vector and seeds the frontier
// with the non-⊥ states, exactly as RunToFixpoint does before its first
// iteration. The input vector is not retained.
func (r *Runner[S, M]) NewStepper(x0 []M) *Stepper[S, M] {
	x := make([]M, len(x0))
	for i, s := range x0 {
		x[i] = r.filter(s)
	}
	return &Stepper[S, M]{
		r:        r,
		x:        x,
		frontier: r.Frontier(x),
		ds:       r.getDelta(len(x)),
	}
}

// Step performs one sparse iteration in place and reports whether any state
// changed. Once it returns false the fixpoint is reached and further calls
// are no-ops.
func (st *Stepper[S, M]) Step() bool {
	if len(st.frontier) == 0 {
		return false
	}
	st.frontier = st.r.iterateDelta(st.x, st.frontier, st.ds)
	st.steps++
	return len(st.frontier) > 0
}

// Done reports whether the fixpoint has been reached.
func (st *Stepper[S, M]) Done() bool { return len(st.frontier) == 0 }

// States returns the stepper's current state vector. The stepper keeps
// mutating it on Step; callers that need a stable snapshot must copy.
func (st *Stepper[S, M]) States() []M { return st.x }

// Steps returns the number of iterations performed so far.
func (st *Stepper[S, M]) Steps() int { return st.steps }

// Release returns the stepper's scratch to the runner's pool. The state
// vector remains readable; Step must not be called afterwards.
func (st *Stepper[S, M]) Release() {
	if st.ds != nil {
		st.r.putDelta(st.ds)
		st.ds = nil
		st.frontier = nil
	}
}
