package mbf

import (
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// iterateBench builds the DistMap source-detection workload of the
// aggregation benchmarks at n=4096: k=8 states warmed to their filtered
// fixpoint shape, so each measured Iterate sees realistic list sizes.
func iterateBench(generic bool) (*Runner[float64, semiring.DistMap], []semiring.DistMap) {
	g := graph.RandomConnected(4096, 16384, 8, par.NewRNG(7))
	r := &Runner[float64, semiring.DistMap]{
		Graph:         g,
		Module:        semiring.DistMapModule{},
		Filter:        semiring.TopKFilter(8, semiring.Inf, nil),
		FilterInPlace: semiring.TopKFilterInPlace(8, semiring.Inf, nil),
		Weight:        MinPlusWeight,
	}
	if generic {
		r.Module = foldOnly[float64, semiring.DistMap]{semiring.DistMapModule{}}
		r.FilterInPlace = nil
	}
	x := make([]semiring.DistMap, g.N())
	for v := range x {
		x[v] = semiring.SingletonDist(graph.Node(v), 0)
	}
	for i := 0; i < 4; i++ {
		x = r.Iterate(x)
	}
	return r, x
}

// BenchmarkIterate4096 measures one MBF-like iteration over the DistMap
// semimodule with the k-way aggregation fast path (one allocation per node).
func BenchmarkIterate4096(b *testing.B) {
	r, x := iterateBench(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Iterate(x)
	}
}

// BenchmarkIterateGeneric4096 is the same workload through the generic
// Add/SMul fold — the pre-fast-path baseline the regression gate compares
// against.
func BenchmarkIterateGeneric4096(b *testing.B) {
	r, x := iterateBench(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Iterate(x)
	}
}

// fixpointBenchRunner builds the OracleIterate-style fixpoint workload at
// n=4096: ({s}, ∞, ∞, 8) source detection run to its fixpoint on a 64×64
// grid — the loop shape of the §5 oracle's per-level inner runs and of
// LE-list computations, on the kind of high-SPD topology those fixpoints
// are slow on. Distance information moves outward from the source as a
// wavefront over SPD ≈ 100+ iterations, so the dense engine re-aggregates
// thousands of already-stable states per step while the frontier engine
// touches only the wave.
func fixpointBenchRunner() (*Runner[float64, semiring.DistMap], []semiring.DistMap) {
	g := graph.GridGraph(64, 64, 8, par.NewRNG(9))
	r := &Runner[float64, semiring.DistMap]{
		Graph:         g,
		Module:        semiring.DistMapModule{},
		Filter:        semiring.TopKFilter(8, semiring.Inf, nil),
		FilterInPlace: semiring.TopKFilterInPlace(8, semiring.Inf, nil),
		Weight:        MinPlusWeight,
	}
	x0 := make([]semiring.DistMap, g.N())
	x0[0] = semiring.SingletonDist(0, 0)
	return r, x0
}

// BenchmarkFixpointSparse4096 measures the frontier-driven sparse fixpoint
// loop; BenchmarkFixpointDense4096 is the dense reference on the identical
// workload. Their ratio is the headline number of the sparse engine.
func BenchmarkFixpointSparse4096(b *testing.B) {
	r, x0 := fixpointBenchRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RunToFixpoint(x0, r.Graph.N())
	}
}

func BenchmarkFixpointDense4096(b *testing.B) {
	r, x0 := fixpointBenchRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RunToFixpointDense(x0, r.Graph.N())
	}
}

// BenchmarkIterateSparse4096 measures one sparse step in the middle of a
// fixpoint run: the states are advanced 64 steps into the ~130-step grid
// wavefront, then one IterateDelta over that mid-run frontier (a wave of a
// few hundred nodes) is timed — the steady-state cost the sparse engine
// pays where the dense engine would re-aggregate all n nodes. The timed
// call goes through the pure public API, so it includes the n-length
// header copy that RunToFixpoint's in-place internal steps avoid.
func BenchmarkIterateSparse4096(b *testing.B) {
	r, x := fixpointBenchRunner()
	for v := range x {
		x[v] = r.filter(x[v])
	}
	frontier := r.Frontier(x)
	for i := 0; i < 64; i++ {
		x, frontier = r.IterateDelta(x, frontier)
		if len(frontier) == 0 {
			b.Fatal("fixpoint reached before the mid-run step")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.IterateDelta(x, frontier)
	}
}

// BenchmarkSourceDetection4096 measures the whole Example 3.2 algorithm at
// n=4096: 8 iterations of k=8 source detection, end to end.
func BenchmarkSourceDetection4096(b *testing.B) {
	g := graph.RandomConnected(4096, 16384, 8, par.NewRNG(8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SourceDetection(g, nil, 8, semiring.Inf, 8, nil)
	}
}

// sourceDetectionSets are the 8 source sets of the batch-vs-sequential
// comparison below.
func sourceDetectionSets() []func(graph.Node) bool {
	sets := make([]func(graph.Node) bool, 8)
	for i := range sets {
		mod := graph.Node(i + 2)
		sets[i] = func(v graph.Node) bool { return v%mod == 0 }
	}
	return sets
}

// BenchmarkSourceDetectionBatch8 runs 8 source-detection instances as ONE
// batched multi-source sweep (shared CSR pass, bit-packed lane masks) at
// n=1024. Its counterpart below runs the same 8 instances sequentially; the
// ratio in BENCH_mbf.json is the recorded speedup of the batch path.
func BenchmarkSourceDetectionBatch8(b *testing.B) {
	g := graph.RandomConnected(1024, 4096, 8, par.NewRNG(9))
	sets := sourceDetectionSets()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SourceDetectionBatch(g, sets, 8, semiring.Inf, 8, nil)
	}
}

// BenchmarkSourceDetectionPerSet8 is the sequential baseline of the batch
// benchmark: the same 8 instances, one RunToFixpoint each.
func BenchmarkSourceDetectionPerSet8(b *testing.B) {
	g := graph.RandomConnected(1024, 4096, 8, par.NewRNG(9))
	sets := sourceDetectionSets()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sources := range sets {
			SourceDetection(g, sources, 8, semiring.Inf, 8, nil)
		}
	}
}

func BenchmarkSSSPIteration(b *testing.B) {
	g := graph.RandomConnected(1024, 4096, 8, par.NewRNG(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SSSP(g, 0, 10, nil)
	}
}

func BenchmarkKSSP(b *testing.B) {
	g := graph.RandomConnected(512, 2048, 8, par.NewRNG(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KSSP(g, 4, 10, nil)
	}
}

func BenchmarkAPSP10Hops(b *testing.B) {
	g := graph.RandomConnected(256, 1024, 8, par.NewRNG(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		APSP(g, 10, nil)
	}
}

func BenchmarkWidestPaths(b *testing.B) {
	g := graph.RandomConnected(512, 2048, 8, par.NewRNG(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SSWP(g, 0, g.N(), nil)
	}
}

func BenchmarkRoutingTablesTop8(b *testing.B) {
	g := graph.RandomConnected(256, 1024, 8, par.NewRNG(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RoutingTables(g, 8, 12, nil)
	}
}
