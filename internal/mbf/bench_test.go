package mbf

import (
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// iterateBench builds the DistMap source-detection workload of the
// aggregation benchmarks at n=4096: k=8 states warmed to their filtered
// fixpoint shape, so each measured Iterate sees realistic list sizes.
func iterateBench(generic bool) (*Runner[float64, semiring.DistMap], []semiring.DistMap) {
	g := graph.RandomConnected(4096, 16384, 8, par.NewRNG(7))
	r := &Runner[float64, semiring.DistMap]{
		Graph:         g,
		Module:        semiring.DistMapModule{},
		Filter:        semiring.TopKFilter(8, semiring.Inf, nil),
		FilterInPlace: semiring.TopKFilterInPlace(8, semiring.Inf, nil),
		Weight:        MinPlusWeight,
	}
	if generic {
		r.Module = foldOnly[float64, semiring.DistMap]{semiring.DistMapModule{}}
		r.FilterInPlace = nil
	}
	x := make([]semiring.DistMap, g.N())
	for v := range x {
		x[v] = semiring.DistMap{{Node: graph.Node(v), Dist: 0}}
	}
	for i := 0; i < 4; i++ {
		x = r.Iterate(x)
	}
	return r, x
}

// BenchmarkIterate4096 measures one MBF-like iteration over the DistMap
// semimodule with the k-way aggregation fast path (one allocation per node).
func BenchmarkIterate4096(b *testing.B) {
	r, x := iterateBench(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Iterate(x)
	}
}

// BenchmarkIterateGeneric4096 is the same workload through the generic
// Add/SMul fold — the pre-fast-path baseline the regression gate compares
// against.
func BenchmarkIterateGeneric4096(b *testing.B) {
	r, x := iterateBench(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Iterate(x)
	}
}

// BenchmarkSourceDetection4096 measures the whole Example 3.2 algorithm at
// n=4096: 8 iterations of k=8 source detection, end to end.
func BenchmarkSourceDetection4096(b *testing.B) {
	g := graph.RandomConnected(4096, 16384, 8, par.NewRNG(8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SourceDetection(g, nil, 8, semiring.Inf, 8, nil)
	}
}

func BenchmarkSSSPIteration(b *testing.B) {
	g := graph.RandomConnected(1024, 4096, 8, par.NewRNG(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SSSP(g, 0, 10, nil)
	}
}

func BenchmarkKSSP(b *testing.B) {
	g := graph.RandomConnected(512, 2048, 8, par.NewRNG(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KSSP(g, 4, 10, nil)
	}
}

func BenchmarkAPSP10Hops(b *testing.B) {
	g := graph.RandomConnected(256, 1024, 8, par.NewRNG(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		APSP(g, 10, nil)
	}
}

func BenchmarkWidestPaths(b *testing.B) {
	g := graph.RandomConnected(512, 2048, 8, par.NewRNG(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SSWP(g, 0, g.N(), nil)
	}
}

func BenchmarkRoutingTablesTop8(b *testing.B) {
	g := graph.RandomConnected(256, 1024, 8, par.NewRNG(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RoutingTables(g, 8, 12, nil)
	}
}
