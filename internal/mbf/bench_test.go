package mbf

import (
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

func BenchmarkSSSPIteration(b *testing.B) {
	g := graph.RandomConnected(1024, 4096, 8, par.NewRNG(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SSSP(g, 0, 10, nil)
	}
}

func BenchmarkKSSP(b *testing.B) {
	g := graph.RandomConnected(512, 2048, 8, par.NewRNG(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KSSP(g, 4, 10, nil)
	}
}

func BenchmarkAPSP10Hops(b *testing.B) {
	g := graph.RandomConnected(256, 1024, 8, par.NewRNG(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		APSP(g, 10, nil)
	}
}

func BenchmarkWidestPaths(b *testing.B) {
	g := graph.RandomConnected(512, 2048, 8, par.NewRNG(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SSWP(g, 0, g.N(), nil)
	}
}

func BenchmarkRoutingTablesTop8(b *testing.B) {
	g := graph.RandomConnected(256, 1024, 8, par.NewRNG(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RoutingTables(g, 8, 12, nil)
	}
}
