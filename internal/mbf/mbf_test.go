package mbf

import (
	"sort"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

func testGraph() *graph.Graph {
	// A small graph with interesting structure: a square with a diagonal
	// and a pendant.
	return graph.NewBuilder(5).
		Add(0, 1, 1).Add(1, 2, 2).Add(2, 3, 1).
		Add(3, 0, 4).Add(0, 2, 2.5).Add(3, 4, 1).Freeze()
}

func randomGraph(seed uint64, n, m int) *graph.Graph {
	return graph.RandomConnected(n, m, 10, par.NewRNG(seed))
}

func TestSSSPMatchesBellmanFordPerHop(t *testing.T) {
	g := randomGraph(1, 40, 100)
	for _, h := range []int{0, 1, 2, 3, 5, 39} {
		got := SSSP(g, 7, h, nil)
		want := graph.BellmanFord(g, 7, h)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("h=%d node %d: %v vs %v", h, v, got[v], want[v])
			}
		}
	}
}

func TestSSSPMatchesDijkstraAtFixpoint(t *testing.T) {
	g := randomGraph(2, 50, 120)
	got := SSSP(g, 0, g.N(), nil)
	want := graph.Dijkstra(g, 0).Dist
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("node %d: %v vs %v", v, got[v], want[v])
		}
	}
}

func TestAPSPMatchesDijkstra(t *testing.T) {
	g := randomGraph(3, 30, 70)
	res := APSP(g, g.N(), nil)
	exact := graph.APSPDijkstra(g)
	for v := 0; v < g.N(); v++ {
		for w := 0; w < g.N(); w++ {
			if got := res[v].Get(graph.Node(w)); got != exact.At(v, w) {
				t.Fatalf("APSP (%d,%d): %v vs %v", v, w, got, exact.At(v, w))
			}
		}
	}
}

func TestSourceDetectionBruteForce(t *testing.T) {
	g := testGraph()
	sources := []graph.Node{0, 3, 4}
	isSource := func(v graph.Node) bool { return v == 0 || v == 3 || v == 4 }
	const h, k = 5, 2
	maxD := 3.5
	got := SourceDetection(g, isSource, h, maxD, k, nil)

	for v := 0; v < g.N(); v++ {
		// Brute force: h-hop distances to each source, keep those ≤ maxD,
		// sort by (dist, id), truncate to k.
		type cand struct {
			s graph.Node
			d float64
		}
		var cands []cand
		for _, s := range sources {
			d := graph.BellmanFord(g, s, h)[v]
			if d <= maxD {
				cands = append(cands, cand{s, d})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].d != cands[j].d {
				return cands[i].d < cands[j].d
			}
			return cands[i].s < cands[j].s
		})
		if len(cands) > k {
			cands = cands[:k]
		}
		if got[v].Len() != len(cands) {
			t.Fatalf("node %d: got %v, want %v", v, got[v], cands)
		}
		for _, c := range cands {
			if got[v].Get(c.s) != c.d {
				t.Fatalf("node %d source %d: got %v, want %v", v, c.s, got[v].Get(c.s), c.d)
			}
		}
	}
}

func TestSourceDetectionUsesHopDistanceCorrectly(t *testing.T) {
	// Source detection with a distance bound: the bound applies to the
	// h-hop distance. On a path 0—1—2 with h=1, node 2 must not see source
	// 0 at all.
	g := graph.PathGraph(3, 1)
	isSource := func(v graph.Node) bool { return v == 0 }
	got := SourceDetection(g, isSource, 1, semiring.Inf, 5, nil)
	if got[2].Len() != 0 {
		t.Fatalf("node 2 learned %v within 1 hop", got[2])
	}
	if got[1].Get(0) != 1 {
		t.Fatalf("node 1: %v", got[1])
	}
}

func TestKSSPReturnsKClosest(t *testing.T) {
	g := randomGraph(4, 25, 60)
	const k = 3
	res := KSSP(g, k, g.N(), nil)
	exact := graph.APSPDijkstra(g)
	for v := 0; v < g.N(); v++ {
		if res[v].Len() != k {
			t.Fatalf("node %d: %d entries, want %d", v, res[v].Len(), k)
		}
		// The k entries must be the k smallest exact distances with
		// (dist, id) tie-breaking.
		type cand struct {
			w graph.Node
			d float64
		}
		cands := make([]cand, g.N())
		for w := 0; w < g.N(); w++ {
			cands[w] = cand{graph.Node(w), exact.At(v, w)}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].d != cands[j].d {
				return cands[i].d < cands[j].d
			}
			return cands[i].w < cands[j].w
		})
		for _, c := range cands[:k] {
			if res[v].Get(c.w) != c.d {
				t.Fatalf("node %d: missing %d:%v in %v", v, c.w, c.d, res[v])
			}
		}
	}
}

func TestMSSP(t *testing.T) {
	g := randomGraph(5, 30, 60)
	sources := []graph.Node{2, 11, 17}
	res := MSSP(g, sources, g.N(), nil)
	for v := 0; v < g.N(); v++ {
		if res[v].Len() != len(sources) {
			t.Fatalf("node %d sees %d sources, want %d", v, res[v].Len(), len(sources))
		}
		for _, s := range sources {
			want := graph.Dijkstra(g, s).Dist[v]
			if got := res[v].Get(s); got != want {
				t.Fatalf("node %d source %d: %v vs %v", v, s, got, want)
			}
		}
	}
}

func TestForestFire(t *testing.T) {
	g := graph.PathGraph(8, 1)
	onFire := []graph.Node{0, 7}
	const d = 2.5
	got := ForestFire(g, onFire, d, nil)
	want := []float64{0, 1, 2, semiring.Inf, semiring.Inf, 2, 1, 0}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("node %d: %v, want %v", v, got[v], want[v])
		}
	}
}

// widestPathReference computes exact widest-path distances from source with
// a max-heap variant of Dijkstra, as ground truth for the max-min algebra.
func widestPathReference(g *graph.Graph, source graph.Node) []float64 {
	n := g.N()
	width := make([]float64, n)
	width[source] = semiring.Inf
	done := make([]bool, n)
	for {
		best, bi := -1.0, -1
		for v := 0; v < n; v++ {
			if !done[v] && width[v] > best {
				best, bi = width[v], v
			}
		}
		if bi == -1 || best == 0 {
			break
		}
		done[bi] = true
		for _, a := range g.Neighbors(graph.Node(bi)) {
			w := a.Weight
			if width[bi] < w {
				w = width[bi]
			}
			if w > width[a.To] {
				width[a.To] = w
			}
		}
	}
	return width
}

func TestSSWPMatchesReference(t *testing.T) {
	g := randomGraph(6, 40, 90)
	got := SSWP(g, 5, g.N(), nil)
	want := widestPathReference(g, 5)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("node %d: width %v vs %v", v, got[v], want[v])
		}
	}
}

func TestAPWPMatchesReference(t *testing.T) {
	g := randomGraph(7, 20, 45)
	res := APWP(g, g.N(), nil)
	for s := 0; s < g.N(); s++ {
		want := widestPathReference(g, graph.Node(s))
		for v := 0; v < g.N(); v++ {
			if got := res[v].Get(graph.Node(s)); got != want[v] {
				t.Fatalf("pair (%d,%d): width %v vs %v", s, v, got, want[v])
			}
		}
	}
}

func TestMSWPSubset(t *testing.T) {
	g := randomGraph(8, 20, 40)
	sources := []graph.Node{3, 9}
	res := MSWP(g, sources, g.N(), nil)
	for v := 0; v < g.N(); v++ {
		if len(res[v]) > len(sources) {
			t.Fatalf("node %d tracks %d sources", v, len(res[v]))
		}
	}
	want := widestPathReference(g, 3)
	for v := 0; v < g.N(); v++ {
		if got := res[v].Get(3); got != want[v] {
			t.Fatalf("node %d: %v vs %v", v, got, want[v])
		}
	}
}

func TestConnectivity(t *testing.T) {
	// Two components: {0,1,2} and {3,4}.
	g := graph.NewBuilder(5).Add(0, 1, 1).Add(1, 2, 1).Add(3, 4, 1).Freeze()
	res := Connectivity(g, 5, nil)
	wantA := []semiring.NodeID{0, 1, 2}
	wantB := []semiring.NodeID{3, 4}
	for _, v := range []int{0, 1, 2} {
		if !(semiring.BoolSet{}).Equal(res[v], wantA) {
			t.Fatalf("node %d reaches %v", v, res[v])
		}
	}
	for _, v := range []int{3, 4} {
		if !(semiring.BoolSet{}).Equal(res[v], wantB) {
			t.Fatalf("node %d reaches %v", v, res[v])
		}
	}
}

func TestConnectivityHopLimit(t *testing.T) {
	g := graph.PathGraph(5, 1)
	res := Connectivity(g, 2, nil)
	want := []semiring.NodeID{0, 1, 2}
	if !(semiring.BoolSet{}).Equal(res[0], want) {
		t.Fatalf("node 0 reaches %v within 2 hops, want %v", res[0], want)
	}
}

// allSimplePaths enumerates the weights of all simple v→target paths.
func allSimplePaths(g *graph.Graph, v, target graph.Node) []float64 {
	var weights []float64
	visited := make([]bool, g.N())
	var dfs func(u graph.Node, w float64)
	dfs = func(u graph.Node, w float64) {
		if u == target {
			weights = append(weights, w)
			return
		}
		visited[u] = true
		for _, a := range g.Neighbors(u) {
			if !visited[a.To] {
				dfs(a.To, w+a.Weight)
			}
		}
		visited[u] = false
	}
	dfs(v, 0)
	return weights
}

func TestKShortestDistancesBruteForce(t *testing.T) {
	g := testGraph()
	const target, k = 2, 3
	res := KShortestDistances(g, target, k, g.N(), false, nil)
	for v := 0; v < g.N(); v++ {
		weights := allSimplePaths(g, graph.Node(v), target)
		sort.Float64s(weights)
		if len(weights) > k {
			weights = weights[:k]
		}
		var got []float64
		for p, w := range res[v] {
			if p.First() != graph.Node(v) || p.Last() != target {
				t.Fatalf("node %d: stray path %v", v, p)
			}
			got = append(got, w)
		}
		sort.Float64s(got)
		if len(got) != len(weights) {
			t.Fatalf("node %d: got %v, want %v", v, got, weights)
		}
		for i := range got {
			if got[i] != weights[i] {
				t.Fatalf("node %d: weights %v, want %v", v, got, weights)
			}
		}
	}
}

func TestKShortestDistinctWeights(t *testing.T) {
	// A graph with two equal-weight parallel routes: k-DSDP must keep only
	// one path per distinct weight.
	g := graph.NewBuilder(4).Add(0, 1, 1).Add(0, 2, 1).Add(1, 3, 1).Add(2, 3, 1).Freeze()
	res := KShortestDistances(g, 3, 2, g.N(), true, nil)
	var weights []float64
	for _, w := range res[0] {
		weights = append(weights, w)
	}
	sort.Float64s(weights)
	// Simple 0→3 path weights: 2 (two ways), 2 (other), so distinct = {2}
	// plus a longer route 0-1-3? No other simple route exists except via
	// both middles: 0-1-3 (2) and 0-2-3 (2). Distinct weights: just 2.
	if len(weights) != 1 || weights[0] != 2 {
		t.Fatalf("distinct weights = %v, want [2]", weights)
	}
}

func TestIterateRejectsWrongLength(t *testing.T) {
	g := testGraph()
	r := &Runner[float64, float64]{Graph: g, Module: semiring.MinPlusSelf{}, Weight: MinPlusWeight}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong state vector length")
		}
	}()
	r.Iterate(make([]float64, 2))
}

func TestRunToFixpointStops(t *testing.T) {
	g := graph.PathGraph(10, 1)
	r := &Runner[float64, float64]{Graph: g, Module: semiring.MinPlusSelf{}, Weight: MinPlusWeight}
	x0 := make([]float64, g.N())
	for v := range x0 {
		x0[v] = semiring.Inf
	}
	x0[0] = 0
	got, iters := r.RunToFixpoint(x0, 100)
	// SPD(P_10) = 9 state-changing iterations plus the one that confirms the
	// fixpoint: 10 iterations performed.
	if iters != 10 {
		t.Fatalf("fixpoint after %d iterations, want 10 = SPD+1", iters)
	}
	if got[9] != 9 {
		t.Fatalf("dist to far end = %v", got[9])
	}
}

// TestFilteringDoesNotChangeOutput is the executable form of
// Corollary 2.17 (r^V ∼ id) and the seed of ablation A1: running source
// detection with intermediate filters produces exactly the same final
// (filtered) result as running unfiltered and filtering once at the end.
func TestFilteringDoesNotChangeOutput(t *testing.T) {
	g := randomGraph(9, 30, 80)
	const h, k = 6, 4
	filter := semiring.TopKFilter(k, semiring.Inf, nil)

	filtered := SourceDetection(g, nil, h, semiring.Inf, k, nil)

	unfilteredRunner := &Runner[float64, semiring.DistMap]{
		Graph:  g,
		Module: semiring.DistMapModule{},
		Weight: MinPlusWeight,
	}
	x0 := make([]semiring.DistMap, g.N())
	for v := range x0 {
		x0[v] = semiring.SingletonDist(graph.Node(v), 0)
	}
	unfiltered := unfilteredRunner.Run(x0, h)

	mod := semiring.DistMapModule{}
	for v := 0; v < g.N(); v++ {
		if !mod.Equal(filtered[v], filter(unfiltered[v])) {
			t.Fatalf("node %d: filtered run %v ≠ filter(unfiltered run) %v",
				v, filtered[v], filter(unfiltered[v]))
		}
	}
}

// TestFilteringReducesWork quantifies the efficiency claim of §2: with the
// k-SSP filter the per-iteration state stays O(k), without it the work blows
// up towards Θ(n) per node.
func TestFilteringReducesWork(t *testing.T) {
	g := randomGraph(10, 60, 200)
	const h, k = 8, 2

	trF := &par.Tracker{}
	KSSP(g, k, h, trF)

	trU := &par.Tracker{}
	APSP(g, h, trU)

	if trF.Work()*2 >= trU.Work() {
		t.Fatalf("filtered work %d not substantially below unfiltered %d",
			trF.Work(), trU.Work())
	}
}

func TestTrackerChargedPerIteration(t *testing.T) {
	g := testGraph()
	tr := &par.Tracker{}
	SSSP(g, 0, 3, tr)
	if tr.Depth() != 3 {
		t.Fatalf("depth = %d, want 3 (one per iteration)", tr.Depth())
	}
	if tr.Work() == 0 {
		t.Fatal("work not charged")
	}
}
