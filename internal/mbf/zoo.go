package mbf

import (
	"sort"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// This file implements the collection of MBF-like algorithms of §3 as thin
// configurations of the generic Runner: each algorithm is nothing more than
// a choice of semimodule, filter, and initial states — exactly the recipe
// the paper's conclusion spells out.

// SSSP computes the h-hop distances dist^h(source, ·, G) by h iterations of
// the classic multi-hop MBF recursion over S_{min,+} viewed as a module over
// itself (Example 3.3). Use h ≥ SPD(G) (e.g. n−1) for exact distances.
func SSSP(g *graph.Graph, source graph.Node, h int, tracker *par.Tracker) []float64 {
	r := &Runner[float64, float64]{
		Graph:   g,
		Module:  semiring.MinPlusSelf{},
		Weight:  MinPlusWeight,
		Tracker: tracker,
	}
	x0 := make([]float64, g.N())
	for v := range x0 {
		x0[v] = semiring.Inf
	}
	x0[source] = 0
	return r.Run(x0, h)
}

// SourceDetection solves (S, h, d, k)-source detection (Example 3.2): every
// node learns the k closest sources within h hops and distance at most d,
// as a distance map. sources[v] reports whether v ∈ S; k ≤ 0 means
// unbounded; d may be ∞.
//
// The h iterations run through the frontier-driven sparse engine capped at
// h: once the filtered states reach their fixpoint the remaining iterations
// are identities (Corollary 2.17 filtering plus F(x) = x ⇒ F^j(x) = x), so
// the output is exactly r^V A^h x(0) at a fraction of the work whenever the
// graph stabilises before hop h.
func SourceDetection(g *graph.Graph, sources func(graph.Node) bool, h int, d float64, k int, tracker *par.Tracker) []semiring.DistMap {
	r := &Runner[float64, semiring.DistMap]{
		Graph:         g,
		Module:        semiring.DistMapModule{},
		Filter:        semiring.TopKFilter(k, d, sources),
		FilterInPlace: semiring.TopKFilterInPlace(k, d, sources),
		Weight:        MinPlusWeight,
		Size:          func(x semiring.DistMap) int { return x.Len() + 1 },
		Tracker:       tracker,
	}
	x0 := make([]semiring.DistMap, g.N())
	for v := range x0 {
		if sources == nil || sources(graph.Node(v)) {
			x0[v] = semiring.SingletonDist(graph.Node(v), 0)
		}
	}
	lane := BatchLane[semiring.DistMap]{Filter: r.Filter, FilterInPlace: r.FilterInPlace}
	out, _ := r.RunToFixpointBatch([][]semiring.DistMap{x0}, []BatchLane[semiring.DistMap]{lane}, h)
	return out[0]
}

// SourceDetectionBatch runs B independent (S_b, h, d, k)-source-detection
// instances — one per entry of sourceSets — as a single batched multi-source
// sweep: every iteration makes one pass over the CSR arcs serving all lanes
// at once, with per-node bit-packed lane masks tracking which lanes can
// still change (see mbf.Runner.RunToFixpointBatch). The result equals
// running SourceDetection per source set, lane for lane (pinned by the
// batch differential tests), at a fraction of the graph traffic.
func SourceDetectionBatch(g *graph.Graph, sourceSets []func(graph.Node) bool, h int, d float64, k int, tracker *par.Tracker) [][]semiring.DistMap {
	r := &Runner[float64, semiring.DistMap]{
		Graph:   g,
		Module:  semiring.DistMapModule{},
		Weight:  MinPlusWeight,
		Size:    func(x semiring.DistMap) int { return x.Len() + 1 },
		Tracker: tracker,
	}
	xs := make([][]semiring.DistMap, len(sourceSets))
	lanes := make([]BatchLane[semiring.DistMap], len(sourceSets))
	for b, sources := range sourceSets {
		x0 := make([]semiring.DistMap, g.N())
		for v := range x0 {
			if sources == nil || sources(graph.Node(v)) {
				x0[v] = semiring.SingletonDist(graph.Node(v), 0)
			}
		}
		xs[b] = x0
		lanes[b] = BatchLane[semiring.DistMap]{
			Filter:        semiring.TopKFilter(k, d, sources),
			FilterInPlace: semiring.TopKFilterInPlace(k, d, sources),
		}
	}
	out, _ := r.RunToFixpointBatch(xs, lanes, h)
	return out
}

// APSP computes the h-hop distances between all pairs (Example 3.5):
// (V, h, ∞, n)-source detection with the identity filter. The result maps
// each node v to its distance vector as a distance map.
func APSP(g *graph.Graph, h int, tracker *par.Tracker) []semiring.DistMap {
	return SourceDetection(g, nil, h, semiring.Inf, 0, tracker)
}

// KSSP computes, for each node, the k closest nodes within h hops
// (Example 3.4): (V, h, ∞, k)-source detection.
func KSSP(g *graph.Graph, k, h int, tracker *par.Tracker) []semiring.DistMap {
	return SourceDetection(g, nil, h, semiring.Inf, k, tracker)
}

// MSSP computes each node's h-hop distances to all designated sources
// (Example 3.6): (S, h, ∞, |S|)-source detection.
func MSSP(g *graph.Graph, sources []graph.Node, h int, tracker *par.Tracker) []semiring.DistMap {
	isSource := sourceSet(g.N(), sources)
	return SourceDetection(g, isSource, h, semiring.Inf, 0, tracker)
}

// ForestFire solves the sensor-network problem of Example 3.7: every node
// learns whether some burning node lies within distance d, running over
// S_{min,+} as a module over itself with the threshold filter (3.5). The
// result is each node's distance to the nearest fire if it is at most d, and
// ∞ otherwise. The computation is anonymous — no node IDs are exchanged.
func ForestFire(g *graph.Graph, onFire []graph.Node, d float64, tracker *par.Tracker) []float64 {
	r := &Runner[float64, float64]{
		Graph:  g,
		Module: semiring.MinPlusSelf{},
		Filter: func(x float64) float64 {
			if x <= d {
				return x
			}
			return semiring.Inf
		},
		Weight:  MinPlusWeight,
		Tracker: tracker,
	}
	x0 := make([]float64, g.N())
	for v := range x0 {
		x0[v] = semiring.Inf
	}
	for _, v := range onFire {
		x0[v] = 0
	}
	out, _ := r.RunToFixpoint(x0, g.N())
	return out
}

// SSWP computes the h-hop widest-path distances width^h(source, ·, G)
// (Example 3.13) over the max-min semiring.
func SSWP(g *graph.Graph, source graph.Node, h int, tracker *par.Tracker) []float64 {
	r := &Runner[float64, float64]{
		Graph:   g,
		Module:  semiring.MaxMinSelf{},
		Weight:  MaxMinWeight,
		Tracker: tracker,
	}
	x0 := make([]float64, g.N()) // 0 = ⊥ of S_{max,min}
	x0[source] = semiring.Inf
	return r.Run(x0, h)
}

// APWP computes all-pairs h-hop widest-path distances (Example 3.14) over
// the width-map semimodule W.
func APWP(g *graph.Graph, h int, tracker *par.Tracker) []semiring.WidthMap {
	return MSWP(g, nil, h, tracker)
}

// MSWP computes h-hop widest-path distances to the designated sources
// (Example 3.15); nil sources means all nodes (APWP).
func MSWP(g *graph.Graph, sources []graph.Node, h int, tracker *par.Tracker) []semiring.WidthMap {
	r := &Runner[float64, semiring.WidthMap]{
		Graph:   g,
		Module:  semiring.WidthMapModule{},
		Weight:  MaxMinWeight,
		Size:    func(x semiring.WidthMap) int { return len(x) + 1 },
		Tracker: tracker,
	}
	isSource := sourceSet(g.N(), sources)
	x0 := make([]semiring.WidthMap, g.N())
	for v := range x0 {
		if sources == nil || isSource(graph.Node(v)) {
			x0[v] = semiring.WidthMap{{Node: graph.Node(v), Width: semiring.Inf}}
		}
	}
	return r.Run(x0, h)
}

// Connectivity reports which node pairs are connected by at most h-hop paths
// (Example 3.25) over the Boolean semiring: result[v] is the sorted set of
// nodes v can reach. Unlike the rest of the library this works on
// disconnected graphs.
func Connectivity(g *graph.Graph, h int, tracker *par.Tracker) [][]semiring.NodeID {
	r := &Runner[bool, []semiring.NodeID]{
		Graph:   g,
		Module:  semiring.BoolSet{},
		Weight:  BoolWeight,
		Size:    func(x []semiring.NodeID) int { return len(x) + 1 },
		Tracker: tracker,
	}
	x0 := make([][]semiring.NodeID, g.N())
	for v := range x0 {
		x0[v] = []semiring.NodeID{graph.Node(v)}
	}
	return r.Run(x0, h)
}

// KShortestDistances solves the k-SDP of Definition 3.21 (Example 3.23) over
// the all-paths semiring: for every node v it returns the k lightest
// v-to-target paths with their weights, found within h hops. With distinct
// set, it solves k-DSDP (Example 3.24): the k lightest *distinct* weights,
// one lexicographically-least path each.
func KShortestDistances(g *graph.Graph, target graph.Node, k, h int, distinct bool, tracker *par.Tracker) []semiring.PathSet {
	r := &Runner[semiring.PathSet, semiring.PathSet]{
		Graph:   g,
		Module:  semiring.AllPathsSelf{},
		Filter:  semiring.KShortestFilter(k, target, distinct),
		Weight:  PathWeight,
		Size:    func(x semiring.PathSet) int { return len(x) + 1 },
		Tracker: tracker,
	}
	x0 := make([]semiring.PathSet, g.N())
	for v := range x0 {
		x0[v] = semiring.PathSet{semiring.MakePath(graph.Node(v)): 0}
	}
	return r.Run(x0, h)
}

// sourceSet converts a source list into a membership predicate; nil input
// yields a predicate accepting every node.
func sourceSet(n int, sources []graph.Node) func(graph.Node) bool {
	if sources == nil {
		return nil
	}
	set := make([]bool, n)
	for _, s := range sources {
		set[s] = true
	}
	return func(v graph.Node) bool { return set[v] }
}

// RoutingTables computes, for every node, a routing table of its k nearest
// targets (k ≤ 0: all nodes): distance plus the first hop of a shortest
// path. It instantiates the engine with the next-hop-enriched min-plus
// algebra of internal/semiring (HopSemiring / RouteMapModule) — the
// predecessor bookkeeping that §7.5 of the paper uses to trace tree edges
// back to graph paths, expressed as just another MBF-like algorithm.
func RoutingTables(g *graph.Graph, k, h int, tracker *par.Tracker) []semiring.RouteMap {
	r := &Runner[semiring.Hop, semiring.RouteMap]{
		Graph:         g,
		Module:        semiring.RouteMapModule{},
		Filter:        routeTopK(k),
		FilterInPlace: routeTopKInPlace(k),
		Weight:        HopWeight,
		Size:          func(x semiring.RouteMap) int { return len(x) + 1 },
		Tracker:       tracker,
	}
	x0 := make([]semiring.RouteMap, g.N())
	for v := range x0 {
		x0[v] = semiring.RouteMap{{Target: graph.Node(v), Dist: 0, Next: semiring.NoVia}}
	}
	x, _ := r.RunToFixpoint(x0, h)
	return x
}

// RoutingTablesTo computes, for every node, the full routing table towards a
// restricted target set: table[v] holds one entry per target with the exact
// shortest-path distance and the first hop of a shortest path (ties broken
// towards the smaller next hop, so tables are deterministic). Only targets
// seed a state, so intermediate state size — and the fixpoint's work — is
// bounded by |targets| per node rather than n. This is the §7.5 primitive
// the application tier uses to materialise a tree edge as a graph path:
// walking Next pointers from a node towards a target traces a shortest path
// one trusted hop at a time.
func RoutingTablesTo(g *graph.Graph, targets []graph.Node, tracker *par.Tracker) []semiring.RouteMap {
	r := &Runner[semiring.Hop, semiring.RouteMap]{
		Graph:   g,
		Module:  semiring.RouteMapModule{},
		Weight:  HopWeight,
		Size:    func(x semiring.RouteMap) int { return len(x) + 1 },
		Tracker: tracker,
	}
	x0 := make([]semiring.RouteMap, g.N())
	for _, t := range targets {
		x0[t] = semiring.RouteMap{{Target: t, Dist: 0, Next: semiring.NoVia}}
	}
	x, _ := r.RunToFixpoint(x0, g.N())
	return x
}

// WalkRoute materialises the next-hop path from→to recorded in tables (as
// produced by RoutingTables / RoutingTablesTo): it follows Next pointers —
// each hop is an incident edge and strictly decreases the remaining
// distance — until it arrives. The returned path is a shortest from→to path
// whose total weight is tables[from].Get(to).Dist. Returns nil when the
// tables record no route.
func WalkRoute(tables []semiring.RouteMap, from, to graph.Node) []graph.Node {
	path := []graph.Node{from}
	cur := from
	for cur != to {
		r, ok := tables[cur].Get(to)
		if !ok || r.Next == semiring.NoVia || len(path) > len(tables) {
			return nil
		}
		cur = graph.Node(r.Next)
		path = append(path, cur)
	}
	return path
}

// routeTopK keeps the k nearest routes (ties broken by target ID); k ≤ 0
// keeps everything.
func routeTopK(k int) semiring.Filter[semiring.RouteMap] {
	if k <= 0 {
		return nil
	}
	return func(x semiring.RouteMap) semiring.RouteMap {
		if len(x) <= k {
			return x
		}
		kept := append(semiring.RouteMap(nil), x...)
		return routeTruncate(kept, k)
	}
}

// routeTopKInPlace is the ownership-taking variant of routeTopK: it reorders
// and truncates its argument instead of copying, for engines that hand the
// filter exclusively owned states.
func routeTopKInPlace(k int) semiring.Filter[semiring.RouteMap] {
	if k <= 0 {
		return nil
	}
	return func(x semiring.RouteMap) semiring.RouteMap {
		if len(x) <= k {
			return x
		}
		return routeTruncate(x, k)
	}
}

// routeTruncate keeps the k nearest routes of kept (ties broken by target
// ID), restoring the sorted-by-target representation invariant.
func routeTruncate(kept semiring.RouteMap, k int) semiring.RouteMap {
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Dist != kept[j].Dist {
			return kept[i].Dist < kept[j].Dist
		}
		return kept[i].Target < kept[j].Target
	})
	kept = kept[:k]
	sort.Slice(kept, func(i, j int) bool { return kept[i].Target < kept[j].Target })
	return kept
}
