package mbf

// Differential tests of RunToFixpointFrom, the incremental-repair entry
// point: resuming an old fixpoint on a decrease-edited graph from the edited
// endpoints must land on exactly the fixpoint a fresh run computes on the
// edited graph, across the parallel-width sweep, and must report the true
// changed set. Runs in the short and -race tiers.

import (
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

func repairRunner(g *graph.Graph) *Runner[float64, semiring.DistMap] {
	return &Runner[float64, semiring.DistMap]{
		Graph:         g,
		Module:        semiring.DistMapModule{},
		Filter:        semiring.TopKFilter(4, semiring.Inf, nil),
		FilterInPlace: semiring.TopKFilterInPlace(4, semiring.Inf, nil),
		Weight:        MinPlusWeight,
	}
}

func TestRunToFixpointFromDecreaseMatchesFresh(t *testing.T) {
	defer func(p int) { par.MaxProcs = p }(par.MaxProcs)
	for _, seed := range []uint64{21, 22, 23} {
		rng := par.NewRNG(seed)
		g := graph.RandomConnected(48, 140, 8, rng)
		x0 := make([]semiring.DistMap, g.N())
		for v := range x0 {
			x0[v] = semiring.SingletonDist(graph.Node(v), 0)
		}
		old, _ := repairRunner(g).RunToFixpoint(append([]semiring.DistMap(nil), x0...), g.N())

		// Halve the weight of a random existing edge — a decrease-only edit.
		edges := g.Edges()
		e := edges[rng.Intn(len(edges))]
		g2, _, err := graph.ApplyEdits(g, []graph.Edit{
			{Op: graph.EditReweight, U: e.U, V: e.V, Weight: e.Weight / 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		want, _ := repairRunner(g2).RunToFixpoint(append([]semiring.DistMap(nil), x0...), g2.N())

		snap := make([]semiring.DistMap, len(old))
		for v := range old {
			snap[v] = old[v].Clone()
		}
		for _, procs := range maxProcsVariants() {
			par.MaxProcs = procs
			r2 := repairRunner(g2)
			got, changed, _ := r2.RunToFixpointFrom(old, []graph.Node{e.U, e.V}, g2.N())
			for v := range want {
				if !r2.Module.Equal(got[v], want[v]) {
					t.Fatalf("seed %d MaxProcs=%d node %d: repaired %v, fresh %v", seed, procs, v, got[v], want[v])
				}
			}
			// The changed set must be exactly the nodes whose state moved.
			isChanged := make(map[graph.Node]bool, len(changed))
			for _, v := range changed {
				if isChanged[v] {
					t.Fatalf("seed %d: node %d reported changed twice", seed, v)
				}
				isChanged[v] = true
			}
			for v := range want {
				if moved := !r2.Module.Equal(old[v], want[v]); moved && !isChanged[graph.Node(v)] {
					t.Fatalf("seed %d: node %d changed but was not reported", seed, v)
				}
			}
			// The input vector must not have been mutated (the published-
			// state aliasing contract: repairs allocate, never edit in
			// place).
			for v := range old {
				if !r2.Module.Equal(old[v], snap[v]) {
					t.Fatalf("seed %d: input state %d mutated", seed, v)
				}
			}
		}
	}
}

// TestRunToFixpointFromNoopSeeds pins the O(affected) guarantee's base case:
// seeding a valid fixpoint at arbitrary nodes must converge in one
// confirming iteration with nothing changed.
func TestRunToFixpointFromNoopSeeds(t *testing.T) {
	g := graph.RandomConnected(32, 90, 8, par.NewRNG(31))
	r := repairRunner(g)
	x0 := make([]semiring.DistMap, g.N())
	for v := range x0 {
		x0[v] = semiring.SingletonDist(graph.Node(v), 0)
	}
	fix, _ := r.RunToFixpoint(append([]semiring.DistMap(nil), x0...), g.N())
	got, changed, iters := r.RunToFixpointFrom(fix, []graph.Node{0, 5, 31}, g.N())
	if len(changed) != 0 || iters != 1 {
		t.Fatalf("no-op repair: %d nodes changed in %d iterations, want 0 in 1", len(changed), iters)
	}
	for v := range fix {
		if !r.Module.Equal(got[v], fix[v]) {
			t.Fatalf("no-op repair moved node %d", v)
		}
	}
}
