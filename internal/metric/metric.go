// Package metric computes approximate distance metrics of graphs through
// the MBF-like oracle, reproducing §6 of Friedrichs & Lenzen:
//
//   - Approximate (Theorem 6.1): query the oracle on the simulated graph H
//     with APSP; the result is the exact shortest-path metric *of H*, which
//     (1+o(1))-approximates the metric of G, obtained in polylog depth.
//
//   - ApproximateSparse (Theorem 6.2): run a Baswana–Sen (2k−1)-spanner
//     first; the same query on the sparsified graph costs less work and
//     returns an O(1)-approximate metric.
//
// Crucially, both results are true metrics (they are shortest-path metrics
// of an actual graph), unlike naive per-pair approximations — the property
// Observation 1.1 shows is unobtainable from d-hop distances directly, and
// the reason the FRT construction embeds H rather than using hop-limited
// distances.
package metric

import (
	"math"

	"parmbf/internal/graph"
	"parmbf/internal/hopset"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
	"parmbf/internal/simgraph"
	"parmbf/internal/spanner"
)

// Result is an approximate metric with its a-priori quality guarantee.
type Result struct {
	// Matrix holds the pairwise distances; it is an exact metric (of H).
	Matrix *graph.Matrix
	// MaxRatio bounds Matrix.At(v,w) / dist(v,w,G) from above:
	// (1+ε̂)^{Λ+1} for Approximate, multiplied by (2k−1) for
	// ApproximateSparse. The lower bound is always 1.
	MaxRatio float64
	// Iterations is the number of oracle iterations to the APSP fixpoint
	// (≤ SPD(H) ∈ O(log² n) w.h.p.).
	Iterations int
}

// Approximate computes a (1+o(1))-approximate metric of g (Theorem 6.1) by
// querying the oracle with APSP (identity filter) on the simulated graph H
// built over the default skeleton hop set.
func Approximate(g *graph.Graph, rng *par.RNG, tracker *par.Tracker) *Result {
	hs := hopset.DefaultSkeleton(g, rng, tracker)
	h := simgraph.Build(hs, 0, rng)
	return approximateOnH(h, tracker)
}

// ApproximateSparse computes an O(1)-approximate metric using Õ(n^{1+1/k})
// edges (Theorem 6.2): it sparsifies g with a (2k−1)-spanner and then runs
// Approximate on the spanner. k ≤ 0 selects spanner.RecommendedK(n, 1).
func ApproximateSparse(g *graph.Graph, k int, rng *par.RNG, tracker *par.Tracker) *Result {
	if k <= 0 {
		k = spanner.RecommendedK(g.N(), 1)
	}
	sp := spanner.Build(g, k, rng, tracker)
	res := Approximate(sp, rng, tracker)
	res.MaxRatio *= float64(2*k - 1)
	return res
}

func approximateOnH(h *simgraph.H, tracker *par.Tracker) *Result {
	n := h.N()
	oracle := simgraph.NewOracle(h, tracker)
	x0 := make([]semiring.DistMap, n)
	for v := range x0 {
		x0[v] = semiring.SingletonDist(graph.Node(v), 0)
	}
	identity := semiring.Identity[semiring.DistMap]()
	states, iters := oracle.RunToFixpoint(x0, identity, simgraph.MaxIters(n))

	m := graph.NewMatrix(n)
	par.ForEach(n, func(v int) {
		s := states[v]
		for i := 0; i < s.Len(); i++ {
			m.Set(v, int(s.Node(i)), s.Dist(i))
		}
	})
	return &Result{
		Matrix:     m,
		MaxRatio:   math.Pow(1+h.EpsHat, float64(h.Lambda+1)),
		Iterations: iters,
	}
}
