package metric

import (
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

func TestApproximateWithinGuarantee(t *testing.T) {
	rng := par.NewRNG(1)
	g := graph.RandomConnected(50, 120, 8, rng)
	res := Approximate(g, rng, nil)
	exact := graph.APSPDijkstra(g)
	for v := 0; v < g.N(); v++ {
		for w := 0; w < g.N(); w++ {
			if v == w {
				continue
			}
			got, want := res.Matrix.At(v, w), exact.At(v, w)
			if got < want-1e-9 {
				t.Fatalf("(%d,%d): approximate %v below exact %v", v, w, got, want)
			}
			if got > res.MaxRatio*want+1e-9 {
				t.Fatalf("(%d,%d): approximate %v exceeds %v × exact %v", v, w, got, res.MaxRatio, want)
			}
		}
	}
	if res.MaxRatio > 1.5 {
		t.Fatalf("a-priori ratio %v not (1+o(1))-ish", res.MaxRatio)
	}
}

func TestApproximateIsAMetric(t *testing.T) {
	rng := par.NewRNG(2)
	g := graph.RandomConnected(40, 90, 5, rng)
	res := Approximate(g, rng, nil)
	if !res.Matrix.IsMetric(1e-6) {
		t.Fatal("approximate metric violates metric axioms")
	}
}

func TestApproximatePolylogIterations(t *testing.T) {
	if testing.Short() {
		t.Skip("slow test: skipped with -short")
	}
	rng := par.NewRNG(3)
	g := graph.PathGraph(150, 1) // SPD(G) = 149
	res := Approximate(g, rng, nil)
	if res.Iterations >= 149 {
		t.Fatalf("oracle needed %d iterations, no better than SPD", res.Iterations)
	}
}

func TestApproximateSparseWithinGuarantee(t *testing.T) {
	if testing.Short() {
		t.Skip("slow test: skipped with -short")
	}
	rng := par.NewRNG(4)
	g := graph.RandomConnected(60, 400, 6, rng)
	const k = 2
	res := ApproximateSparse(g, k, rng, nil)
	exact := graph.APSPDijkstra(g)
	for v := 0; v < g.N(); v++ {
		for w := 0; w < g.N(); w++ {
			if v == w {
				continue
			}
			got, want := res.Matrix.At(v, w), exact.At(v, w)
			if got < want-1e-9 {
				t.Fatalf("(%d,%d): %v below exact %v", v, w, got, want)
			}
			if got > res.MaxRatio*want+1e-9 {
				t.Fatalf("(%d,%d): %v exceeds guarantee %v×%v", v, w, got, res.MaxRatio, want)
			}
		}
	}
}

func TestApproximateSparseDefaultK(t *testing.T) {
	rng := par.NewRNG(5)
	g := graph.RandomConnected(30, 100, 4, rng)
	res := ApproximateSparse(g, 0, rng, nil)
	if res.MaxRatio < 3 {
		t.Fatalf("sparse guarantee %v should include spanner stretch ≥ 3", res.MaxRatio)
	}
	if !res.Matrix.IsMetric(1e-6) {
		t.Fatal("sparse approximate metric violates metric axioms")
	}
}

func TestApproximateTracksWork(t *testing.T) {
	rng := par.NewRNG(6)
	g := graph.RandomConnected(30, 70, 4, rng)
	tr := &par.Tracker{}
	Approximate(g, rng, tr)
	if tr.Work() == 0 {
		t.Fatal("tracker not charged")
	}
}
