// Package steiner implements the Steiner tree problem — the family of
// problems the paper's introduction names as a prime consumer of metric
// tree embeddings ("a plethora of Steiner-type problems [23]") — as an
// extension application:
//
//	given terminals T ⊆ V, find a connected subgraph of minimum total
//	weight containing all of T.
//
// Two solvers are provided.
//
//   - Solve: draw FRT trees through the shared frt.Embedder pipeline, take
//     the Steiner tree *on each tree* (trivial: the union of terminal-to-root
//     paths pruned to the terminal spanning subtree — trees make Steiner
//     easy, the whole point of tree embeddings), map its edges back to
//     shortest paths in G by walking the next-hop tables of one
//     sparse-engine routing fixpoint (§7.5), and prune the union with an
//     MST + leaf trimming; the lightest per-tree result wins. Expected cost
//     O(log n)·OPT by the FRT stretch argument, since the objective is
//     linear in edge weights.
//
//   - MetricClosureMST: the classic 2-approximation (MST of the terminal
//     distance closure, paths expanded and pruned) as the baseline.
package steiner

import (
	"fmt"
	"sort"

	"parmbf/internal/apps/scenario"
	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/mbf"
	"parmbf/internal/par"
)

// Result is a Steiner tree: a connected subgraph of G spanning the
// terminals.
type Result struct {
	// Tree is the solution subgraph (a tree after pruning).
	Tree *graph.Graph
	// Weight is its total edge weight.
	Weight float64
}

// validateTerminals checks the terminal set.
func validateTerminals(g *graph.Graph, terminals []graph.Node) error {
	if len(terminals) < 2 {
		return fmt.Errorf("steiner: need ≥ 2 terminals")
	}
	seen := map[graph.Node]bool{}
	for _, t := range terminals {
		if int(t) < 0 || int(t) >= g.N() {
			return fmt.Errorf("steiner: terminal %d out of range", t)
		}
		if seen[t] {
			return fmt.Errorf("steiner: duplicate terminal %d", t)
		}
		seen[t] = true
	}
	return nil
}

// prune reduces an edge multiset to a tree spanning the terminals: MST of
// the subgraph, then repeated removal of non-terminal leaves.
func prune(g *graph.Graph, sub *graph.Graph, terminals []graph.Node) *Result {
	mst, _ := graph.MST(sub)
	isTerminal := make([]bool, g.N())
	for _, t := range terminals {
		isTerminal[t] = true
	}
	// Iteratively trim non-terminal leaves.
	deg := make([]int, g.N())
	adj := make([]map[graph.Node]float64, g.N())
	for v := range adj {
		adj[v] = map[graph.Node]float64{}
	}
	for _, e := range mst.Edges() {
		deg[e.U]++
		deg[e.V]++
		adj[e.U][e.V] = e.Weight
		adj[e.V][e.U] = e.Weight
	}
	queue := []graph.Node{}
	for v := 0; v < g.N(); v++ {
		if deg[v] == 1 && !isTerminal[v] {
			queue = append(queue, graph.Node(v))
		}
	}
	removed := make([]bool, g.N())
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if removed[v] || deg[v] != 1 || isTerminal[v] {
			continue
		}
		removed[v] = true
		for w := range adj[v] {
			if removed[w] {
				continue
			}
			delete(adj[w], v)
			deg[w]--
			if deg[w] == 1 && !isTerminal[w] {
				queue = append(queue, w)
			}
		}
		adj[v] = map[graph.Node]float64{}
		deg[v] = 0
	}
	out := graph.NewBuilder(g.N())
	weight := 0.0
	for v := 0; v < g.N(); v++ {
		for w, wt := range adj[v] {
			if graph.Node(v) < w {
				out.Add(graph.Node(v), w, wt)
				weight += wt
			}
		}
	}
	return &Result{Tree: out.Freeze(), Weight: weight}
}

// Options is the unified application-scenario configuration; see
// scenario.Options. Solve draws Trees trees (default 1) through the shared
// embedder pipeline unless an Embedder or Ensemble is injected; with several
// trees the lightest per-tree result is returned.
type Options = scenario.Options

// defaultTrees is the number of trees Solve draws when Options does not say
// otherwise. One tree realises the O(log n) expected-stretch argument; more
// trees trade work for the usual best-of-K boost.
const defaultTrees = 1

// Solve computes an expected O(log n)-approximate Steiner tree through FRT
// embeddings drawn from the shared pipeline.
func Solve(g *graph.Graph, terminals []graph.Node, opts Options) (*Result, error) {
	if err := validateTerminals(g, terminals); err != nil {
		return nil, err
	}
	ens, err := opts.Resolve(g, defaultTrees)
	if err != nil {
		return nil, err
	}
	visit, err := opts.Visit(ens)
	if err != nil {
		return nil, err
	}
	var best *Result
	for _, tree := range visit {
		res, err := solveOnTree(g, tree, terminals, opts.Tracker)
		if err != nil {
			return nil, err
		}
		if best == nil || res.Weight < best.Weight {
			best = res
		}
	}
	return best, nil
}

// solveOnTree extracts the Steiner tree on one FRT tree and maps it back to G.
func solveOnTree(g *graph.Graph, tree *frt.Tree, terminals []graph.Node, tracker *par.Tracker) (*Result, error) {
	// Steiner tree on the FRT tree: mark the tree edges on terminal-to-root
	// paths, keep those below the terminals' lowest common ancestors — i.e.
	// edges whose subtree contains ≥ 1 terminal but not all of them.
	termCount := make([]int, tree.NumNodes())
	for _, t := range terminals {
		for u := tree.Leaf[t]; u != -1; u = tree.Parent[u] {
			termCount[u]++
		}
	}
	// Collect the used tree edges as center-to-center hops, deduplicating the
	// parent centers into the target set of one routing fixpoint.
	type hop struct{ from, to graph.Node }
	var hops []hop
	targetSet := map[graph.Node]bool{}
	for child := int32(0); child < int32(tree.NumNodes()); child++ {
		if tree.Parent[child] == -1 {
			continue
		}
		if termCount[child] == 0 || termCount[child] == len(terminals) {
			continue // edge not on the terminal Steiner subtree
		}
		from, to := tree.Center[child], tree.Center[tree.Parent[child]]
		if from == to {
			continue
		}
		hops = append(hops, hop{from: from, to: to})
		targetSet[to] = true
	}
	// Map each used tree edge back to a shortest path in G by walking the
	// next-hop tables of a single sparse-engine fixpoint towards the distinct
	// parent centers (§7.5); collect the union subgraph.
	sub := graph.NewBuilder(g.N())
	if len(hops) > 0 {
		targets := make([]graph.Node, 0, len(targetSet))
		for t := range targetSet {
			targets = append(targets, t)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		tables := mbf.RoutingTablesTo(g, targets, tracker)
		for _, h := range hops {
			path := mbf.WalkRoute(tables, h.from, h.to)
			if path == nil {
				return nil, fmt.Errorf("steiner: centers %d, %d disconnected", h.from, h.to)
			}
			for i := 1; i < len(path); i++ {
				w, _ := g.HasEdge(path[i-1], path[i])
				sub.Add(path[i-1], path[i], w)
			}
		}
	}
	result := prune(g, sub.Freeze(), terminals)
	if err := Validate(g, terminals, result); err != nil {
		return nil, err
	}
	return result, nil
}

// MetricClosureMST is the classic 2-approximation: MST of the terminals'
// metric closure, expanded back to shortest paths and pruned.
func MetricClosureMST(g *graph.Graph, terminals []graph.Node) (*Result, error) {
	if err := validateTerminals(g, terminals); err != nil {
		return nil, err
	}
	k := len(terminals)
	sssp := make([]*graph.SSSPResult, k)
	par.ForEach(k, func(i int) {
		sssp[i] = graph.Dijkstra(g, terminals[i])
	})
	// Kruskal on the closure.
	type cedge struct {
		i, j int
		w    float64
	}
	var edges []cedge
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			edges = append(edges, cedge{i, j, sssp[i].Dist[terminals[j]]})
		}
	}
	sort.Slice(edges, func(a, b int) bool { return edges[a].w < edges[b].w })
	uf := graph.NewUnionFind(k)
	sub := graph.NewBuilder(g.N())
	for _, e := range edges {
		if !uf.Union(int32(e.i), int32(e.j)) {
			continue
		}
		path := sssp[e.i].PathTo(terminals[e.j])
		for i := 1; i < len(path); i++ {
			w, _ := g.HasEdge(path[i-1], path[i])
			sub.Add(path[i-1], path[i], w)
		}
	}
	result := prune(g, sub.Freeze(), terminals)
	if err := Validate(g, terminals, result); err != nil {
		return nil, err
	}
	return result, nil
}

// Validate checks that the result is a subgraph of g connecting all
// terminals with consistent weight accounting.
func Validate(g *graph.Graph, terminals []graph.Node, r *Result) error {
	total := 0.0
	for _, e := range r.Tree.Edges() {
		w, ok := g.HasEdge(e.U, e.V)
		if !ok || w != e.Weight {
			return fmt.Errorf("steiner: edge {%d,%d} not in G", e.U, e.V)
		}
		total += e.Weight
	}
	if diff := total - r.Weight; diff > 1e-9 || diff < -1e-9 {
		return fmt.Errorf("steiner: weight accounting off by %v", diff)
	}
	// All terminals in one component of the result.
	uf := graph.NewUnionFind(g.N())
	for _, e := range r.Tree.Edges() {
		uf.Union(int32(e.U), int32(e.V))
	}
	root := uf.Find(int32(terminals[0]))
	for _, t := range terminals[1:] {
		if uf.Find(int32(t)) != root {
			return fmt.Errorf("steiner: terminal %d disconnected", t)
		}
	}
	return nil
}

// LowerBound returns a simple lower bound on the optimal Steiner weight:
// half the weight of the metric-closure MST (the standard 2-approximation
// relation: closureMST ≤ 2·OPT).
func LowerBound(g *graph.Graph, terminals []graph.Node) (float64, error) {
	r, err := MetricClosureMST(g, terminals)
	if err != nil {
		return 0, err
	}
	return r.Weight / 2, nil
}
