package steiner

import (
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

func TestMSTBasics(t *testing.T) {
	g := graph.NewBuilder(4).Add(0, 1, 1).Add(1, 2, 2).Add(2, 3, 3).Add(0, 3, 10).Freeze()
	mst, w := graph.MST(g)
	if w != 6 {
		t.Fatalf("MST weight %v, want 6", w)
	}
	if mst.M() != 3 {
		t.Fatalf("MST has %d edges", mst.M())
	}
	if _, ok := mst.HasEdge(0, 3); ok {
		t.Fatal("heavy edge in MST")
	}
}

func TestUnionFind(t *testing.T) {
	uf := graph.NewUnionFind(5)
	if !uf.Union(0, 1) || !uf.Union(2, 3) {
		t.Fatal("fresh unions failed")
	}
	if uf.Union(0, 1) {
		t.Fatal("repeated union succeeded")
	}
	if uf.Find(0) != uf.Find(1) || uf.Find(2) != uf.Find(3) {
		t.Fatal("find inconsistent")
	}
	if uf.Find(0) == uf.Find(4) {
		t.Fatal("disjoint sets merged")
	}
}

func TestMetricClosureOnPath(t *testing.T) {
	// Terminals at the ends of a path: the optimum is the whole path.
	g := graph.PathGraph(10, 1)
	r, err := MetricClosureMST(g, []graph.Node{0, 9})
	if err != nil {
		t.Fatal(err)
	}
	if r.Weight != 9 {
		t.Fatalf("weight %v, want 9", r.Weight)
	}
}

func TestMetricClosureWithin2OPTOnStar(t *testing.T) {
	// A star with terminals on the leaves: OPT uses the hub; the closure
	// MST pays at most twice.
	b := graph.NewBuilder(5)
	for v := 1; v < 5; v++ {
		b.Add(0, graph.Node(v), 1)
	}
	g := b.Freeze()
	terms := []graph.Node{1, 2, 3, 4}
	r, err := MetricClosureMST(g, terms)
	if err != nil {
		t.Fatal(err)
	}
	if r.Weight != 4 { // the star itself is recovered after pruning
		t.Fatalf("weight %v, want 4", r.Weight)
	}
}

func TestViaEmbeddingConnectsTerminals(t *testing.T) {
	rng := par.NewRNG(1)
	g := graph.RandomConnected(60, 150, 6, rng)
	terms := []graph.Node{0, 17, 33, 59}
	r, err := ViaEmbedding(g, terms, rng, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, terms, r); err != nil {
		t.Fatal(err)
	}
	if r.Weight <= 0 {
		t.Fatal("zero-weight tree")
	}
}

func TestViaEmbeddingOraclePipeline(t *testing.T) {
	rng := par.NewRNG(2)
	g := graph.RandomConnected(50, 120, 5, rng)
	terms := []graph.Node{1, 10, 44}
	r, err := ViaEmbedding(g, terms, rng, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, terms, r); err != nil {
		t.Fatal(err)
	}
}

func TestViaEmbeddingApproximationRatio(t *testing.T) {
	// The embedding solution must be within O(log n) of the lower bound;
	// at n = 60 a ratio beyond 12 would indicate a broken pipeline.
	rng := par.NewRNG(3)
	g := graph.GridGraph(8, 8, 3, rng)
	terms := []graph.Node{0, 7, 56, 63, 27}
	best := -1.0
	for trial := 0; trial < 3; trial++ {
		r, err := ViaEmbedding(g, terms, rng, false)
		if err != nil {
			t.Fatal(err)
		}
		if best < 0 || r.Weight < best {
			best = r.Weight
		}
	}
	lb, err := LowerBound(g, terms)
	if err != nil {
		t.Fatal(err)
	}
	if best < lb-1e-9 {
		t.Fatalf("solution %v beats the lower bound %v", best, lb)
	}
	if best > 12*lb {
		t.Fatalf("ratio %v implausibly large", best/lb)
	}
}

func TestPruneRemovesUselessBranches(t *testing.T) {
	// Feed prune a subgraph with a dangling non-terminal branch.
	g := graph.PathGraph(6, 1)
	sub := graph.NewBuilder(6).Add(0, 1, 1).Add(1, 2, 1).
		Add(2, 3, 1). // dangling branch beyond terminal 2
		Freeze()
	r := prune(g, sub, []graph.Node{0, 2})
	if r.Weight != 2 {
		t.Fatalf("pruned weight %v, want 2", r.Weight)
	}
	if _, ok := r.Tree.HasEdge(2, 3); ok {
		t.Fatal("dangling branch survived pruning")
	}
}

func TestValidateInput(t *testing.T) {
	g := graph.PathGraph(5, 1)
	rng := par.NewRNG(4)
	if _, err := ViaEmbedding(g, []graph.Node{1}, rng, false); err == nil {
		t.Fatal("single terminal accepted")
	}
	if _, err := ViaEmbedding(g, []graph.Node{1, 1}, rng, false); err == nil {
		t.Fatal("duplicate terminal accepted")
	}
	if _, err := ViaEmbedding(g, []graph.Node{1, 9}, rng, false); err == nil {
		t.Fatal("out-of-range terminal accepted")
	}
}
