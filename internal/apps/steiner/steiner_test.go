package steiner

import (
	"testing"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
)

func TestMSTBasics(t *testing.T) {
	g := graph.NewBuilder(4).Add(0, 1, 1).Add(1, 2, 2).Add(2, 3, 3).Add(0, 3, 10).Freeze()
	mst, w := graph.MST(g)
	if w != 6 {
		t.Fatalf("MST weight %v, want 6", w)
	}
	if mst.M() != 3 {
		t.Fatalf("MST has %d edges", mst.M())
	}
	if _, ok := mst.HasEdge(0, 3); ok {
		t.Fatal("heavy edge in MST")
	}
}

func TestUnionFind(t *testing.T) {
	uf := graph.NewUnionFind(5)
	if !uf.Union(0, 1) || !uf.Union(2, 3) {
		t.Fatal("fresh unions failed")
	}
	if uf.Union(0, 1) {
		t.Fatal("repeated union succeeded")
	}
	if uf.Find(0) != uf.Find(1) || uf.Find(2) != uf.Find(3) {
		t.Fatal("find inconsistent")
	}
	if uf.Find(0) == uf.Find(4) {
		t.Fatal("disjoint sets merged")
	}
}

func TestMetricClosureOnPath(t *testing.T) {
	// Terminals at the ends of a path: the optimum is the whole path.
	g := graph.PathGraph(10, 1)
	r, err := MetricClosureMST(g, []graph.Node{0, 9})
	if err != nil {
		t.Fatal(err)
	}
	if r.Weight != 9 {
		t.Fatalf("weight %v, want 9", r.Weight)
	}
}

func TestMetricClosureWithin2OPTOnStar(t *testing.T) {
	// A star with terminals on the leaves: OPT uses the hub; the closure
	// MST pays at most twice.
	b := graph.NewBuilder(5)
	for v := 1; v < 5; v++ {
		b.Add(0, graph.Node(v), 1)
	}
	g := b.Freeze()
	terms := []graph.Node{1, 2, 3, 4}
	r, err := MetricClosureMST(g, terms)
	if err != nil {
		t.Fatal(err)
	}
	if r.Weight != 4 { // the star itself is recovered after pruning
		t.Fatalf("weight %v, want 4", r.Weight)
	}
}

func TestSolveConnectsTerminals(t *testing.T) {
	rng := par.NewRNG(1)
	g := graph.RandomConnected(60, 150, 6, rng)
	terms := []graph.Node{0, 17, 33, 59}
	r, err := Solve(g, terms, Options{RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, terms, r); err != nil {
		t.Fatal(err)
	}
	if r.Weight <= 0 {
		t.Fatal("zero-weight tree")
	}
}

func TestSolveInjectedEnsemble(t *testing.T) {
	rng := par.NewRNG(2)
	g := graph.RandomConnected(50, 120, 5, rng)
	emb, err := frt.NewEmbedder(g, frt.Options{RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	ens, err := emb.SampleEnsemble(3)
	if err != nil {
		t.Fatal(err)
	}
	terms := []graph.Node{1, 10, 44}
	r, err := Solve(g, terms, Options{Ensemble: ens})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, terms, r); err != nil {
		t.Fatal(err)
	}
	// Best-of-ensemble cannot be worse than any single tree of the ensemble.
	for i := 0; i < 3; i++ {
		one, err := Solve(g, terms, Options{Ensemble: ens, FirstTree: i, Trees: 1})
		if err != nil {
			t.Fatal(err)
		}
		if one.Weight < r.Weight-1e-9 {
			t.Fatalf("single tree %d beats the ensemble: %v < %v", i, one.Weight, r.Weight)
		}
	}
}

func TestSolveApproximationRatio(t *testing.T) {
	// The embedding solution must be within O(log n) of the lower bound;
	// at n = 64 a ratio beyond 12 would indicate a broken pipeline.
	rng := par.NewRNG(3)
	g := graph.GridGraph(8, 8, 3, rng)
	terms := []graph.Node{0, 7, 56, 63, 27}
	r, err := Solve(g, terms, Options{RNG: rng, Trees: 3})
	if err != nil {
		t.Fatal(err)
	}
	lb, err := LowerBound(g, terms)
	if err != nil {
		t.Fatal(err)
	}
	if r.Weight < lb-1e-9 {
		t.Fatalf("solution %v beats the lower bound %v", r.Weight, lb)
	}
	if r.Weight > 12*lb {
		t.Fatalf("ratio %v implausibly large", r.Weight/lb)
	}
}

func TestPruneRemovesUselessBranches(t *testing.T) {
	// Feed prune a subgraph with a dangling non-terminal branch.
	g := graph.PathGraph(6, 1)
	sub := graph.NewBuilder(6).Add(0, 1, 1).Add(1, 2, 1).
		Add(2, 3, 1). // dangling branch beyond terminal 2
		Freeze()
	r := prune(g, sub, []graph.Node{0, 2})
	if r.Weight != 2 {
		t.Fatalf("pruned weight %v, want 2", r.Weight)
	}
	if _, ok := r.Tree.HasEdge(2, 3); ok {
		t.Fatal("dangling branch survived pruning")
	}
}

func TestValidateInput(t *testing.T) {
	g := graph.PathGraph(5, 1)
	rng := par.NewRNG(4)
	if _, err := Solve(g, []graph.Node{1}, Options{RNG: rng}); err == nil {
		t.Fatal("single terminal accepted")
	}
	if _, err := Solve(g, []graph.Node{1, 1}, Options{RNG: rng}); err == nil {
		t.Fatal("duplicate terminal accepted")
	}
	if _, err := Solve(g, []graph.Node{1, 9}, Options{RNG: rng}); err == nil {
		t.Fatal("out-of-range terminal accepted")
	}
	if _, err := Solve(g, []graph.Node{1, 3}, Options{}); err == nil {
		t.Fatal("missing RNG accepted")
	}
}

// TestValidateAndLowerBoundRejections covers the auditor branches: cooked
// weight accounting, a terminal outside the solution component, and
// LowerBound's degenerate terminal set.
func TestValidateAndLowerBoundRejections(t *testing.T) {
	g := graph.GridGraph(4, 4, 3, par.NewRNG(70))
	terms := []graph.Node{0, 15}
	res, err := Solve(g, terms, Options{RNG: par.NewRNG(71)})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, terms, res); err != nil {
		t.Fatalf("genuine solution rejected: %v", err)
	}
	cooked := &Result{Tree: res.Tree, Weight: res.Weight * 2}
	if err := Validate(g, terms, cooked); err == nil {
		t.Fatal("cooked weight accepted")
	}
	// A node the tree does not touch is a disconnected terminal.
	used := map[graph.Node]bool{}
	for _, e := range res.Tree.Edges() {
		used[e.U] = true
		used[e.V] = true
	}
	for v := 0; v < g.N(); v++ {
		if !used[graph.Node(v)] {
			if err := Validate(g, []graph.Node{0, 15, graph.Node(v)}, res); err == nil {
				t.Fatalf("terminal %d outside the tree accepted", v)
			}
			break
		}
	}
	if _, err := LowerBound(g, []graph.Node{3}); err == nil {
		t.Fatal("single-terminal lower bound must error")
	}
	lb, err := LowerBound(g, terms)
	if err != nil || lb <= 0 || lb > res.Weight {
		t.Fatalf("lower bound %v (err %v), want 0 < lb \u2264 %v", lb, err, res.Weight)
	}
}
