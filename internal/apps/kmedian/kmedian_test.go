package kmedian

import (
	"sort"
	"testing"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
)

func TestCostEvaluation(t *testing.T) {
	g := graph.PathGraph(5, 1)
	// Center at node 2: costs 2+1+0+1+2 = 6.
	if c := Cost(g, []graph.Node{2}); c != 6 {
		t.Fatalf("Cost = %v, want 6", c)
	}
	if c := Cost(g, []graph.Node{0, 4}); c != 4 {
		t.Fatalf("Cost = %v, want 4 (1+0+...)", c)
	}
}

func TestMultiSourceDijkstraAgainstSingle(t *testing.T) {
	rng := par.NewRNG(1)
	g := graph.RandomConnected(50, 120, 6, rng)
	sources := []graph.Node{3, 17, 42}
	dist, nearest := graph.MultiSourceDijkstra(g, sources)
	per := make([][]float64, len(sources))
	for i, s := range sources {
		per[i] = graph.Dijkstra(g, s).Dist
	}
	for v := 0; v < g.N(); v++ {
		want := per[0][v]
		for i := 1; i < len(sources); i++ {
			if per[i][v] < want {
				want = per[i][v]
			}
		}
		if dist[v] != want {
			t.Fatalf("node %d: multi-source %v vs min-single %v", v, dist[v], want)
		}
		// nearest must attain the distance.
		found := false
		for i, s := range sources {
			if nearest[v] == s && per[i][v] == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d: nearest %d does not attain distance", v, nearest[v])
		}
	}
}

func TestQuickSelect(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7, 3, 0}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for k := range sorted {
		cp := append([]float64(nil), xs...)
		if got := quickSelect(cp, k); got != sorted[k] {
			t.Fatalf("quickSelect(%d) = %v, want %v", k, got, sorted[k])
		}
	}
}

func TestSampleCandidatesCoversOptimum(t *testing.T) {
	rng := par.NewRNG(2)
	g := graph.Clustered(4, 20, 100, rng)
	cands := SampleCandidates(g, 4, rng, nil)
	if len(cands) < 4 {
		t.Fatalf("only %d candidates", len(cands))
	}
	if len(cands) > g.N() {
		t.Fatal("more candidates than nodes")
	}
	// Every cluster should contribute at least one candidate: with one
	// candidate per cluster the serving cost stays within a constant of
	// optimal.
	seen := make(map[int]bool)
	for _, q := range cands {
		seen[int(q)/20] = true
	}
	if len(seen) != 4 {
		t.Fatalf("candidates cover %d/4 clusters", len(seen))
	}
}

func TestTreeKMedianSinglePath(t *testing.T) {
	// A path graph's FRT tree with uniform weights: k = n must cost 0.
	g := graph.PathGraph(6, 1)
	rng := par.NewRNG(3)
	emb, err := frt.SampleOnGraph(g, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, 6)
	for i := range w {
		w[i] = 1
	}
	picked := TreeKMedian(emb.Tree, w, 6)
	if len(picked) != 6 {
		t.Fatalf("k=n picked %d centers", len(picked))
	}
}

// treeCostOf evaluates the weighted tree k-median objective directly.
func treeCostOf(tr *frt.Tree, weight []float64, centers []int32) float64 {
	total := 0.0
	for leaf := range weight {
		best := -1.0
		for _, c := range centers {
			d := tr.Dist(graph.Node(leaf), graph.Node(c))
			if best < 0 || d < best {
				best = d
			}
		}
		total += weight[leaf] * best
	}
	return total
}

func TestTreeKMedianMatchesBruteForceOnTree(t *testing.T) {
	rng := par.NewRNG(4)
	g := graph.RandomConnected(10, 20, 6, rng)
	emb, err := frt.SampleOnGraph(g, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	weight := make([]float64, 10)
	for i := range weight {
		weight[i] = float64(1 + rng.Intn(5))
	}
	for k := 1; k <= 4; k++ {
		picked := TreeKMedian(emb.Tree, weight, k)
		if len(picked) == 0 || len(picked) > k {
			t.Fatalf("k=%d: picked %d centers", k, len(picked))
		}
		got := treeCostOf(emb.Tree, weight, picked)
		// Brute force over all k-subsets of leaves.
		best := -1.0
		idx := make([]int32, k)
		var rec func(start, depth int)
		rec = func(start, depth int) {
			if depth == k {
				c := treeCostOf(emb.Tree, weight, idx)
				if best < 0 || c < best {
					best = c
				}
				return
			}
			for v := start; v < 10; v++ {
				idx[depth] = int32(v)
				rec(v+1, depth+1)
			}
		}
		rec(0, 0)
		if got > best+1e-9 {
			t.Fatalf("k=%d: DP cost %v worse than brute force %v", k, got, best)
		}
	}
}

func TestSolveOnClusteredGraph(t *testing.T) {
	rng := par.NewRNG(5)
	g := graph.Clustered(3, 15, 200, rng)
	res, err := Solve(g, 3, Options{RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) == 0 || len(res.Centers) > 3 {
		t.Fatalf("bad center count %d", len(res.Centers))
	}
	// With one center per planted cluster the cost is O(intra-cluster);
	// picking any cluster-less solution pays ≥ 200 per stranded cluster.
	// The O(log k) guarantee must land us well below that.
	if res.Cost >= 200 {
		t.Fatalf("cost %v suggests a cluster was left unserved", res.Cost)
	}
}

func TestSolveApproximationVsBruteForce(t *testing.T) {
	rng := par.NewRNG(6)
	g := graph.RandomConnected(24, 60, 6, rng)
	const k = 3
	opt := BruteForce(g, k)
	res, err := Solve(g, k, Options{RNG: rng, Trees: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost < opt.Cost-1e-9 {
		t.Fatalf("approximation %v beats the optimum %v — brute force broken", res.Cost, opt.Cost)
	}
	// Expected O(log k)-approximation; with k=3 and 5 trees a ratio beyond
	// 6 would indicate a broken pipeline.
	if res.Cost > 6*opt.Cost {
		t.Fatalf("ratio %v implausibly large", res.Cost/opt.Cost)
	}
}

func TestCostOnIndexDominatesExactCost(t *testing.T) {
	// The oracle index never under-estimates distances, so the batched
	// candidate evaluation must never under-estimate the exact serving cost.
	rng := par.NewRNG(10)
	g := graph.RandomConnected(40, 100, 5, rng)
	emb, err := frt.NewEmbedder(g, frt.Options{RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	ens, err := emb.SampleEnsemble(4)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := ens.Index()
	if err != nil {
		t.Fatal(err)
	}
	for _, centers := range [][]graph.Node{{0}, {3, 17}, {5, 20, 35}} {
		est := CostOnIndex(idx, centers)
		exact := Cost(g, centers)
		if est < exact-1e-9 {
			t.Fatalf("centers %v: index estimate %v under-estimates exact cost %v", centers, est, exact)
		}
	}
}

func TestSolveInjectedEnsemble(t *testing.T) {
	rng := par.NewRNG(11)
	g := graph.Clustered(3, 12, 150, rng)
	emb, err := frt.NewEmbedder(g, frt.Options{RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	ens, err := emb.SampleEnsemble(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, 3, Options{RNG: rng, Ensemble: ens})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) == 0 || len(res.Centers) > 3 {
		t.Fatalf("bad center count %d", len(res.Centers))
	}
	if res.Cost >= 150 {
		t.Fatalf("cost %v suggests a cluster was left unserved", res.Cost)
	}
}

func TestSolveSmallKReturnsDirectly(t *testing.T) {
	rng := par.NewRNG(7)
	g := graph.PathGraph(10, 1)
	res, err := Solve(g, 5, Options{RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) > 10 {
		t.Fatal("too many centers")
	}
}

func TestSolveValidatesInput(t *testing.T) {
	g := graph.PathGraph(5, 1)
	if _, err := Solve(g, 0, Options{RNG: par.NewRNG(1)}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Solve(g, 6, Options{RNG: par.NewRNG(1)}); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := Solve(g, 2, Options{}); err == nil {
		t.Fatal("missing RNG accepted")
	}
}

func TestLocalSearchImprovesRandomStart(t *testing.T) {
	rng := par.NewRNG(8)
	g := graph.Clustered(3, 12, 100, rng)
	res := LocalSearch(g, 3, rng, 50)
	if len(res.Centers) != 3 {
		t.Fatalf("center count %d", len(res.Centers))
	}
	// Local search is a (3+ε)-approximation; on this planted instance it
	// must serve all clusters.
	if res.Cost >= 100 {
		t.Fatalf("local search cost %v left a cluster unserved", res.Cost)
	}
}

func TestBruteForceTiny(t *testing.T) {
	g := graph.PathGraph(5, 1)
	res := BruteForce(g, 2)
	// Optimal 2-median on path of 5 unit edges: centers {1,3}: cost
	// 1+0+1+0+1 = 3.
	if res.Cost != 3 {
		t.Fatalf("brute force cost %v, want 3", res.Cost)
	}
}

func TestAssignmentConsistentWithCost(t *testing.T) {
	rng := par.NewRNG(9)
	g := graph.RandomConnected(30, 70, 5, rng)
	centers := []graph.Node{2, 17, 25}
	assign := Assignment(g, centers)
	total := 0.0
	for v := 0; v < g.N(); v++ {
		c := assign[v]
		found := false
		for _, f := range centers {
			if f == c {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d assigned to non-center %d", v, c)
		}
		total += graph.Dijkstra(g, c).Dist[v]
	}
	if diff := total - Cost(g, centers); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("assignment cost %v vs Cost %v", total, Cost(g, centers))
	}
}

// TestSolveFewCandidatesShortCircuit: when sampling leaves no more than k
// candidates, Solve returns them directly with an exact cost — no tree stage.
func TestSolveFewCandidatesShortCircuit(t *testing.T) {
	g := graph.RandomConnected(12, 24, 6, par.NewRNG(61))
	res, err := Solve(g, 5, Options{RNG: par.NewRNG(62)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) == 0 {
		t.Fatal("no centers")
	}
	if want := Cost(g, res.Centers); res.Cost != want {
		t.Fatalf("cost %v, exact evaluation %v", res.Cost, want)
	}
	if _, err := Solve(g, 0, Options{RNG: par.NewRNG(1)}); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := Solve(g, 99, Options{RNG: par.NewRNG(1)}); err == nil {
		t.Fatal("k>n must error")
	}
	if _, err := Solve(g, 2, Options{}); err == nil {
		t.Fatal("missing RNG must error")
	}
}
