// Package kmedian implements the k-median application of §9 of Friedrichs &
// Lenzen: an expected O(log k)-approximation for graphs (Theorem 9.2),
// combining
//
//	(1) Mettu–Plaxton-style candidate sampling, with distances evaluated by
//	    the sparse fixpoint engine's source-detection algebra (the paper
//	    runs the forest-fire MBF-like algorithm on H for the same purpose),
//	(2) FRT trees of the graph drawn through the shared frt.Embedder
//	    pipeline, and
//	(3) an exact dynamic program for k-median on each tree with centers
//	    restricted to the candidate leaves — made simple by the FRT
//	    structure: leaf-to-leaf distance depends only on the level of the
//	    lowest common ancestor, so a leaf served outside its subtree pays a
//	    level-determined toll. Tree solutions are compared with the batched
//	    OracleIndex kernel (one MinBatch over the client × center grid) and
//	    only the winner pays an exact evaluation.
//
// Baselines for the experiments: exact brute force (tiny instances) and
// local search with single swaps (the classic (3+ε)-approximation).
package kmedian

import (
	"fmt"
	"math"

	"parmbf/internal/apps/scenario"
	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/mbf"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// Result is a k-median solution.
type Result struct {
	// Centers is the selected facility set F, |F| ≤ k.
	Centers []graph.Node
	// Cost is Σ_v dist(v, F, G), evaluated exactly.
	Cost float64
	// Candidates is the sampled candidate set Q (Solve only).
	Candidates []graph.Node
}

// Cost evaluates Σ_v dist(v, centers, G) exactly.
func Cost(g *graph.Graph, centers []graph.Node) float64 {
	dist, _ := graph.MultiSourceDijkstra(g, centers)
	total := 0.0
	for _, d := range dist {
		total += d
	}
	return total
}

// SampleCandidates runs the iterative sampling of step (1): starting from
// U = V, each round samples Θ(k) candidates, removes the half of U closest
// to them, and recurses; when |U| ≤ 2k the remainder joins the candidates.
// The result has O(k log(n/k)) nodes and contains a subset whose k-median
// cost O(1)-approximates the optimum (Mettu & Plaxton [34]).
func SampleCandidates(g *graph.Graph, k int, rng *par.RNG, tracker *par.Tracker) []graph.Node {
	n := g.N()
	alive := make([]bool, n)
	for v := range alive {
		alive[v] = true
	}
	aliveCount := n
	var candidates []graph.Node
	seen := make([]bool, n)
	addCandidate := func(v graph.Node) {
		if !seen[v] {
			seen[v] = true
			candidates = append(candidates, v)
		}
	}
	perRound := 3 * k
	for aliveCount > 2*k {
		// Sample perRound alive nodes (with replacement, deduplicated).
		var sample []graph.Node
		for i := 0; i < perRound*4 && len(sample) < perRound; i++ {
			v := graph.Node(rng.Intn(n))
			if alive[v] {
				sample = append(sample, v)
				addCandidate(v)
			}
		}
		if len(sample) == 0 {
			break
		}
		dist := nearestDist(g, sample, tracker)
		// Remove the closest half of the alive nodes.
		alivedists := make([]float64, 0, aliveCount)
		for v := 0; v < n; v++ {
			if alive[v] {
				alivedists = append(alivedists, dist[v])
			}
		}
		median := quickSelect(alivedists, len(alivedists)/2)
		removed := 0
		for v := 0; v < n && removed < aliveCount/2; v++ {
			if alive[v] && dist[v] <= median {
				alive[v] = false
				removed++
			}
		}
		aliveCount -= removed
		if removed == 0 {
			break
		}
	}
	for v := 0; v < n; v++ {
		if alive[v] {
			addCandidate(graph.Node(v))
		}
	}
	return candidates
}

// quickSelect returns the k-th smallest element of xs (0-based); xs is
// clobbered.
func quickSelect(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		pivot := xs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return xs[k]
		}
	}
	return xs[lo]
}

// nearestDist returns dist(v, sources) for every node, computed by the
// sparse fixpoint engine's (S, ∞, 1)-source-detection instance — the
// MBF-like replacement for a multi-source Dijkstra sweep.
func nearestDist(g *graph.Graph, sources []graph.Node, tracker *par.Tracker) []float64 {
	isSource := make([]bool, g.N())
	for _, s := range sources {
		isSource[s] = true
	}
	maps := mbf.SourceDetection(g, func(v graph.Node) bool { return isSource[v] },
		g.N(), semiring.Inf, 1, tracker)
	dist := make([]float64, len(maps))
	for v, m := range maps {
		if m.Len() > 0 {
			dist[v] = m.Entry(0).Dist
		} else {
			dist[v] = semiring.Inf
		}
	}
	return dist
}

// Options is the unified application-scenario configuration; see
// scenario.Options. Solve draws Trees trees (default 3) through the shared
// embedder pipeline unless an Embedder or Ensemble is injected. RNG is
// always required: candidate sampling is randomized even when the trees are
// injected.
type Options = scenario.Options

// defaultTrees is the number of independent trees Solve tries when Options
// does not say otherwise (repeating log(1/ε) times boosts the success
// probability, §1).
const defaultTrees = 3

// Solve computes an expected O(log k)-approximate k-median solution of g
// (Theorem 9.2): Mettu–Plaxton candidate sampling, then for each FRT tree of
// the ensemble an exact tree DP with centers restricted to candidate leaves.
// The per-tree solutions are compared by the batched oracle estimate
// (CostOnIndex); only the winner is evaluated exactly.
func Solve(g *graph.Graph, k int, opts Options) (*Result, error) {
	if opts.RNG == nil {
		return nil, fmt.Errorf("kmedian: Options.RNG is required")
	}
	if k < 1 || k > g.N() {
		return nil, fmt.Errorf("kmedian: k=%d out of range", k)
	}
	rng := opts.RNG

	// (1) Candidates.
	candidates := SampleCandidates(g, k, rng, opts.Tracker)
	if len(candidates) <= k {
		return &Result{Centers: candidates, Cost: Cost(g, candidates), Candidates: candidates}, nil
	}

	// (2)+(3) One tree DP per ensemble tree, centers restricted to the
	// candidate leaves; every node is its own unit-weight client (no client
	// aggregation onto candidates — the graph trees carry all leaves).
	ens, err := opts.Resolve(g, defaultTrees)
	if err != nil {
		return nil, err
	}
	visit, err := opts.Visit(ens)
	if err != nil {
		return nil, err
	}
	idx, err := ens.Index()
	if err != nil {
		return nil, err
	}
	allowed := make([]bool, g.N())
	for _, q := range candidates {
		allowed[q] = true
	}
	weight := make([]float64, g.N())
	for v := range weight {
		weight[v] = 1
	}
	var best []graph.Node
	bestEst := math.Inf(1)
	for _, t := range visit {
		picked := TreeKMedianRestricted(t, weight, allowed, k)
		if len(picked) == 0 {
			continue
		}
		centers := make([]graph.Node, len(picked))
		for i, leaf := range picked {
			centers[i] = graph.Node(leaf)
		}
		if est := CostOnIndex(idx, centers); est < bestEst {
			best, bestEst = centers, est
		}
	}
	if best == nil {
		return nil, fmt.Errorf("kmedian: no tree produced a center set")
	}
	return &Result{Centers: best, Cost: Cost(g, best), Candidates: candidates}, nil
}

// CostOnIndex estimates Σ_v dist(v, centers) with the ensemble oracle: one
// MinBatch over the n × |centers| pair grid, then a per-client min. Each
// term upper-bounds the true distance (Min is dominance-safe) with expected
// stretch O(log n), so the estimate ranks center sets without touching the
// graph — the batched replacement for the seed-era per-candidate-set
// multi-source Dijkstra evaluation.
func CostOnIndex(idx *frt.OracleIndex, centers []graph.Node) float64 {
	n := idx.NumLeaves()
	k := len(centers)
	if k == 0 {
		return math.Inf(1)
	}
	pairs := make([]frt.Pair, n*k)
	for v := 0; v < n; v++ {
		for i, c := range centers {
			pairs[v*k+i] = frt.Pair{U: graph.Node(v), V: c}
		}
	}
	out := make([]float64, len(pairs))
	idx.MinBatch(pairs, out)
	total := 0.0
	for v := 0; v < n; v++ {
		row := out[v*k : v*k+k]
		m := row[0]
		for _, d := range row[1:] {
			if d < m {
				m = d
			}
		}
		total += m
	}
	return total
}

// TreeKMedian solves weighted k-median exactly on an FRT tree: it returns
// up to k leaves (as graph-node indices into the tree's leaf set) minimising
// Σ_leaf weight[leaf] · dist_T(leaf, F).
//
// The DP exploits the FRT structure: all leaves share one depth and edge
// weights depend only on the level, so a leaf served by a center outside
// its subtree pays exactly 2·climb(ℓ), where ℓ is the level of the lowest
// tree node that contains both and climb is the uniform leaf-to-level
// ascent cost. f[t][j] is the optimal cost of subtree(t) with exactly j ≥ 1
// centers inside serving all of its leaves; a child allocated 0 centers
// contributes its total weight times the toll at t.
func TreeKMedian(t *frt.Tree, weight []float64, k int) []int32 {
	return TreeKMedianRestricted(t, weight, nil, k)
}

// TreeKMedianRestricted is TreeKMedian with the center set restricted to the
// leaves whose graph node is marked in allowed (nil allows every leaf):
// disallowed leaves remain clients — they pay the toll to wherever their
// serving center merges — but can never host a center. This is how the
// candidate-sampling stage composes with trees drawn on the full graph: the
// DP runs on the real FRT tree of G, no candidate submetric required.
func TreeKMedianRestricted(t *frt.Tree, weight []float64, allowed []bool, k int) []int32 {
	nt := t.NumNodes()
	children := make([][]int32, nt)
	root := int32(-1)
	for u := 0; u < nt; u++ {
		p := t.Parent[u]
		if p == -1 {
			root = int32(u)
		} else {
			children[p] = append(children[p], int32(u))
		}
	}
	// climbTo[u] = cost from leaf depth up to tree node u (uniform over
	// leaves below u).
	climbTo := make([]float64, nt)
	var setClimb func(u int32, above float64)
	setClimb = func(u int32, above float64) {
		climbTo[u] = above
		for _, c := range children[u] {
			setClimb(c, above+t.EdgeWeight[c])
		}
	}
	setClimb(root, 0)
	// Re-express: climbTo currently holds root-to-u descent; convert to
	// leaf-to-u ascent = total depth − descent.
	totalDepth := 0.0
	{
		u := t.Leaf[0]
		for t.Parent[u] != -1 {
			totalDepth += t.EdgeWeight[u]
			u = t.Parent[u]
		}
	}
	for u := range climbTo {
		climbTo[u] = totalDepth - climbTo[u]
	}

	// leafWeight and per-subtree totals.
	subWeight := make([]float64, nt)
	leafOf := make([]int32, nt) // graph-leaf index for leaf tree nodes, -1 otherwise
	for u := range leafOf {
		leafOf[u] = -1
	}
	for li, u := range t.Leaf {
		leafOf[u] = int32(li)
	}

	const inf = math.MaxFloat64 / 4
	// f[u] has length maxJ+1; f[u][0] = inf (at least one center needed for
	// the subtree to serve itself). choice[u][j] records the allocation for
	// backtracking.
	f := make([][]float64, nt)
	type alloc struct {
		child int32
		jc    int
	}
	choice := make([][][]alloc, nt)

	var solve func(u int32)
	solve = func(u int32) {
		if leafOf[u] != -1 {
			subWeight[u] = weight[leafOf[u]]
			if allowed == nil || allowed[leafOf[u]] {
				f[u] = []float64{inf, 0} // one center: the leaf itself, cost 0
			} else {
				f[u] = []float64{inf} // client-only leaf: no center option
			}
			choice[u] = make([][]alloc, len(f[u]))
			return
		}
		for _, c := range children[u] {
			solve(c)
			subWeight[u] += subWeight[c]
		}
		toll := 2 * climbTo[u]
		// Knapsack over children: cur[j] = best cost using j centers among
		// the processed children, where 0-center children pay the toll.
		cur := []float64{0}
		curChoice := [][]alloc{nil}
		for _, c := range children[u] {
			maxJ := len(cur) - 1 + len(f[c]) - 1
			if maxJ > k {
				maxJ = k
			}
			next := make([]float64, maxJ+1)
			nextChoice := make([][]alloc, maxJ+1)
			for j := range next {
				next[j] = inf
			}
			for j0 := 0; j0 < len(cur); j0++ {
				if cur[j0] >= inf {
					continue
				}
				// Option A: no center in c — its weight pays the toll here.
				if j0 <= maxJ {
					if cost := cur[j0] + subWeight[c]*toll; cost < next[j0] {
						next[j0] = cost
						nextChoice[j0] = append(append([]alloc(nil), curChoice[j0]...), alloc{child: c, jc: 0})
					}
				}
				// Option B: jc ≥ 1 centers in c.
				for jc := 1; jc < len(f[c]) && j0+jc <= maxJ; jc++ {
					if f[c][jc] >= inf {
						continue
					}
					if cost := cur[j0] + f[c][jc]; cost < next[j0+jc] {
						next[j0+jc] = cost
						nextChoice[j0+jc] = append(append([]alloc(nil), curChoice[j0]...), alloc{child: c, jc: jc})
					}
				}
			}
			cur, curChoice = next, nextChoice
		}
		// f[u][0] stays invalid; j ≥ 1 taken from the knapsack.
		f[u] = make([]float64, len(cur))
		f[u][0] = inf
		choice[u] = make([][]alloc, len(cur))
		for j := 1; j < len(cur); j++ {
			f[u][j] = cur[j]
			choice[u][j] = curChoice[j]
		}
	}
	solve(root)

	bestJ, bestCost := 0, inf
	for j := 1; j < len(f[root]) && j <= k; j++ {
		if f[root][j] < bestCost {
			bestCost, bestJ = f[root][j], j
		}
	}
	if bestJ == 0 {
		return nil
	}
	var picked []int32
	var collect func(u int32, j int)
	collect = func(u int32, j int) {
		if leafOf[u] != -1 {
			picked = append(picked, leafOf[u])
			return
		}
		for _, a := range choice[u][j] {
			if a.jc > 0 {
				collect(a.child, a.jc)
			}
		}
	}
	collect(root, bestJ)
	return picked
}

// BruteForce solves k-median exactly by enumerating all center sets — only
// viable for tiny instances; it is the ground truth of experiment E11.
func BruteForce(g *graph.Graph, k int) *Result {
	n := g.N()
	best := &Result{Cost: math.Inf(1)}
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			centers := make([]graph.Node, k)
			for i, v := range idx {
				centers[i] = graph.Node(v)
			}
			if c := Cost(g, centers); c < best.Cost {
				best.Cost = c
				best.Centers = centers
			}
			return
		}
		for v := start; v < n; v++ {
			idx[depth] = v
			rec(v+1, depth+1)
		}
	}
	rec(0, 0)
	return best
}

// LocalSearch runs single-swap local search from a random start — the
// classic (3+ε)-approximation baseline.
func LocalSearch(g *graph.Graph, k int, rng *par.RNG, maxIters int) *Result {
	n := g.N()
	centers := make([]graph.Node, 0, k)
	inSet := make([]bool, n)
	for len(centers) < k {
		v := graph.Node(rng.Intn(n))
		if !inSet[v] {
			inSet[v] = true
			centers = append(centers, v)
		}
	}
	cost := Cost(g, centers)
	for iter := 0; iter < maxIters; iter++ {
		improved := false
		for i := 0; i < k && !improved; i++ {
			for v := 0; v < n; v++ {
				if inSet[v] {
					continue
				}
				old := centers[i]
				centers[i] = graph.Node(v)
				if c := Cost(g, centers); c < cost {
					cost = c
					inSet[old] = false
					inSet[v] = true
					improved = true
					break
				}
				centers[i] = old
			}
		}
		if !improved {
			break
		}
	}
	return &Result{Centers: centers, Cost: cost}
}

// Assignment maps every node to its serving center (the nearest element of
// centers), the form in which a k-median solution is consumed downstream.
func Assignment(g *graph.Graph, centers []graph.Node) []graph.Node {
	_, nearest := graph.MultiSourceDijkstra(g, centers)
	return nearest
}
