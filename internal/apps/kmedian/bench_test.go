package kmedian

import (
	"math"
	"sync"
	"testing"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// The bench fixture is one n=1024, m=16384 graph (mean degree 32) with a
// K=4 ensemble — the regime in which the seed-era evaluation (one
// multi-source Dijkstra per candidate center set, O(m log n) each) became
// the k-median bottleneck. The oracle evaluation touches only the n × k
// pair grid, so its cost is independent of edge density; EvalIndex vs
// EvalDijkstra is the measured speedup of moving candidate evaluation onto
// the batched OracleIndex kernel.
var benchFix struct {
	once    sync.Once
	g       *graph.Graph
	ens     *frt.Ensemble
	idx     *frt.OracleIndex
	centers []graph.Node
	err     error
}

func benchFixture(b *testing.B) (*graph.Graph, *frt.Ensemble, *frt.OracleIndex, []graph.Node) {
	b.Helper()
	benchFix.once.Do(func() {
		rng := par.NewRNG(17)
		benchFix.g = graph.RandomConnected(1024, 16384, 8, rng)
		emb, err := frt.NewEmbedder(benchFix.g, frt.Options{RNG: rng})
		if err != nil {
			benchFix.err = err
			return
		}
		benchFix.ens, benchFix.err = emb.SampleEnsemble(4)
		if benchFix.err != nil {
			return
		}
		benchFix.idx, benchFix.err = benchFix.ens.Index()
		if benchFix.err != nil {
			return
		}
		for i := 0; i < 8; i++ {
			benchFix.centers = append(benchFix.centers, graph.Node(i*127))
		}
	})
	if benchFix.err != nil {
		b.Fatal(benchFix.err)
	}
	return benchFix.g, benchFix.ens, benchFix.idx, benchFix.centers
}

// BenchmarkKMedianEvalIndex is one candidate-set evaluation on the batched
// oracle kernel: one MinBatch over the n × k grid plus a per-client fold.
func BenchmarkKMedianEvalIndex(b *testing.B) {
	_, _, idx, centers := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if CostOnIndex(idx, centers) <= 0 {
			b.Fatal("non-positive cost")
		}
	}
}

// BenchmarkKMedianEvalDijkstra is the exact evaluation of the same candidate
// set through the batched multi-source sweep — the modern exact path, paid
// once for the winning set only.
func BenchmarkKMedianEvalDijkstra(b *testing.B) {
	g, _, _, centers := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Cost(g, centers) <= 0 {
			b.Fatal("non-positive cost")
		}
	}
}

// BenchmarkKMedianEvalPerCenter is the seed-era evaluation loop: one full
// single-source Dijkstra per center, folded to a per-client min — the
// per-center Dijkstra loop the application tier ran before it was rebased
// onto the oracle and multi-source kernels.
func BenchmarkKMedianEvalPerCenter(b *testing.B) {
	g, _, _, centers := benchFixture(b)
	best := make([]float64, g.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := range best {
			best[v] = math.Inf(1)
		}
		for _, c := range centers {
			res := graph.Dijkstra(g, c)
			for v, d := range res.Dist {
				if d < best[v] {
					best[v] = d
				}
			}
		}
		total := 0.0
		for _, d := range best {
			total += d
		}
		if total <= 0 {
			b.Fatal("non-positive cost")
		}
	}
}

// BenchmarkKMedianSolve is the full rebased pipeline per op: candidate
// sampling through the sparse engine, one tree DP per ensemble tree, oracle
// ranking, one exact evaluation of the winner.
func BenchmarkKMedianSolve(b *testing.B) {
	g, ens, _, _ := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Solve(g, 8, Options{RNG: par.NewRNG(23), Ensemble: ens})
		if err != nil {
			b.Fatal(err)
		}
		if res.Cost <= 0 {
			b.Fatal("non-positive cost")
		}
	}
}
