package buyatbulk

import (
	"sync"
	"testing"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
)

var benchFix struct {
	once    sync.Once
	g       *graph.Graph
	ens     *frt.Ensemble
	demands []Demand
	cables  []CableType
	err     error
}

func benchFixture(b *testing.B) (*graph.Graph, *frt.Ensemble, []Demand, []CableType) {
	b.Helper()
	benchFix.once.Do(func() {
		rng := par.NewRNG(29)
		benchFix.g = graph.RandomConnected(1024, 4096, 8, rng)
		emb, err := frt.NewEmbedder(benchFix.g, frt.Options{RNG: rng})
		if err != nil {
			benchFix.err = err
			return
		}
		benchFix.ens, benchFix.err = emb.SampleEnsemble(4)
		if benchFix.err != nil {
			return
		}
		drng := par.NewRNG(31)
		benchFix.demands = make([]Demand, 256)
		for i := range benchFix.demands {
			benchFix.demands[i] = Demand{
				S:      graph.Node(drng.Intn(1024)),
				T:      graph.Node(drng.Intn(1024)),
				Amount: 1 + drng.Float64()*3,
			}
		}
		benchFix.cables = []CableType{{Capacity: 1, Cost: 1}, {Capacity: 4, Cost: 2.5}, {Capacity: 16, Cost: 6}}
	})
	if benchFix.err != nil {
		b.Fatal(benchFix.err)
	}
	return benchFix.g, benchFix.ens, benchFix.demands, benchFix.cables
}

// BenchmarkBuyAtBulkSolve is one full solve on a pre-drawn ensemble: the LCA
// flow accumulation over 256 demands, the cable loader per loaded edge, and
// the best-of-ensemble fold.
func BenchmarkBuyAtBulkSolve(b *testing.B) {
	g, ens, demands, cables := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(g, demands, cables, Options{Ensemble: ens})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Cost <= 0 {
			b.Fatal("non-positive cost")
		}
	}
}
