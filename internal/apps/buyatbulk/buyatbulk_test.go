package buyatbulk

import (
	"testing"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
)

var testCables = []CableType{
	{Capacity: 1, Cost: 1},
	{Capacity: 10, Cost: 4},
	{Capacity: 100, Cost: 12},
}

func TestBestCable(t *testing.T) {
	cases := []struct {
		flow      float64
		wantIdx   int
		wantCount int
	}{
		{0.5, 0, 1},   // one thin cable: cost 1 beats 4 and 12
		{5, 1, 1},     // one medium: 4 beats 5 thin (5) and 12
		{10, 1, 1},    // exactly one medium
		{40, 2, 1},    // one fat: 12 beats 4 mediums (16)
		{1000, 2, 10}, // ten fat cables
	}
	for _, c := range cases {
		idx, count, _ := bestCable(testCables, c.flow)
		if idx != c.wantIdx || count != c.wantCount {
			t.Fatalf("flow %v: got cable %d ×%d, want %d ×%d", c.flow, idx, count, c.wantIdx, c.wantCount)
		}
	}
}

func TestSolveValidatesInput(t *testing.T) {
	g := graph.PathGraph(4, 1)
	rng := par.NewRNG(1)
	if _, err := Solve(g, nil, testCables, Options{}); err == nil {
		t.Fatal("missing RNG accepted")
	}
	if _, err := Solve(g, nil, nil, Options{RNG: rng}); err == nil {
		t.Fatal("no cables accepted")
	}
	bad := []Demand{{S: 0, T: 9, Amount: 1}}
	if _, err := Solve(g, bad, testCables, Options{RNG: rng}); err == nil {
		t.Fatal("out-of-range demand accepted")
	}
	if _, err := Solve(g, []Demand{{S: 0, T: 1, Amount: -1}}, testCables, Options{RNG: rng}); err == nil {
		t.Fatal("negative demand accepted")
	}
	if _, err := Solve(g, nil, []CableType{{Capacity: 0, Cost: 1}}, Options{RNG: rng}); err == nil {
		t.Fatal("zero-capacity cable accepted")
	}
}

func TestSolveFeasibleAndPriced(t *testing.T) {
	rng := par.NewRNG(2)
	g := graph.RandomConnected(40, 100, 5, rng)
	demands := []Demand{
		{S: 0, T: 39, Amount: 3},
		{S: 5, T: 20, Amount: 12},
		{S: 1, T: 39, Amount: 7},
		{S: 0, T: 20, Amount: 0.5},
	}
	sol, err := Solve(g, demands, testCables, Options{RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, testCables, sol); err != nil {
		t.Fatal(err)
	}
	if sol.Cost <= 0 {
		t.Fatal("zero-cost solution for non-trivial demands")
	}
	if sol.Cost < LowerBound(g, demands, testCables)-1e-9 {
		t.Fatalf("cost %v below the volume lower bound — accounting broken", sol.Cost)
	}
}

func TestSolveInjectedEnsemble(t *testing.T) {
	rng := par.NewRNG(3)
	g := graph.RandomConnected(40, 90, 5, rng)
	emb, err := frt.NewEmbedder(g, frt.Options{RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	ens, err := emb.SampleEnsemble(3)
	if err != nil {
		t.Fatal(err)
	}
	demands := []Demand{{S: 2, T: 35, Amount: 5}, {S: 7, T: 11, Amount: 50}}
	sol, err := Solve(g, demands, testCables, Options{Ensemble: ens})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, testCables, sol); err != nil {
		t.Fatal(err)
	}
	// Best-of-ensemble cannot be worse than any single tree of the ensemble.
	for i := 0; i < 3; i++ {
		one, err := Solve(g, demands, testCables, Options{Ensemble: ens, FirstTree: i, Trees: 1})
		if err != nil {
			t.Fatal(err)
		}
		if one.Cost < sol.Cost-1e-9 {
			t.Fatalf("single tree %d beats the ensemble: %v < %v", i, one.Cost, sol.Cost)
		}
	}
}

func TestSolveApproximationRatio(t *testing.T) {
	// Experiment E12 in miniature: cost within an O(log n) factor of the
	// volume lower bound on a structured workload (many demands sharing a
	// corridor, where buying fat cables pays off).
	rng := par.NewRNG(4)
	g := graph.GridGraph(6, 6, 2, rng)
	var demands []Demand
	for i := 0; i < 12; i++ {
		demands = append(demands, Demand{
			S:      graph.Node(rng.Intn(6)),      // left-ish
			T:      graph.Node(30 + rng.Intn(6)), // right-ish
			Amount: float64(1 + rng.Intn(20)),
		})
	}
	sol, err := Solve(g, demands, testCables, Options{RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	lb := LowerBound(g, demands, testCables)
	ratio := sol.Cost / lb
	// The lower bound itself is loose (it prices everything at the bulk
	// rate); O(log n)·constant here means single digits to low tens.
	if ratio > 60 {
		t.Fatalf("cost/LB ratio %.1f implausibly large", ratio)
	}
}

func TestDirectBaselineFeasible(t *testing.T) {
	rng := par.NewRNG(5)
	g := graph.RandomConnected(30, 70, 4, rng)
	demands := []Demand{{S: 0, T: 29, Amount: 15}, {S: 3, T: 29, Amount: 2}}
	sol := DirectShortestPath(g, demands, testCables)
	if err := Validate(g, testCables, sol); err != nil {
		t.Fatal(err)
	}
	if sol.Cost < LowerBound(g, demands, testCables)-1e-9 {
		t.Fatal("direct baseline beat the lower bound")
	}
}

func TestAggregationBeatsDirectOnSharedCorridor(t *testing.T) {
	// Many unit demands crossing one long corridor: the tree solution
	// aggregates them onto shared fat cables, while the direct baseline
	// (which routes each demand on its own shortest path and then prices
	// each edge) pays thin-cable rates when paths diverge. On a pure path
	// graph both aggregate equally, so use many sources funnelling into a
	// single sink over a path.
	g := graph.PathGraph(30, 1)
	var demands []Demand
	for i := 0; i < 10; i++ {
		demands = append(demands, Demand{S: graph.Node(i), T: 29, Amount: 9})
	}
	rng := par.NewRNG(6)
	sol, err := Solve(g, demands, testCables, Options{RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	direct := DirectShortestPath(g, demands, testCables)
	// Both must be feasible; the tree solution may pay the O(log n) tree
	// detour but must stay within a small factor of direct on this
	// workload.
	if err := Validate(g, testCables, sol); err != nil {
		t.Fatal(err)
	}
	if sol.Cost > 20*direct.Cost {
		t.Fatalf("tree solution %.1f vastly worse than direct %.1f", sol.Cost, direct.Cost)
	}
}

func TestLowerBoundMonotone(t *testing.T) {
	g := graph.PathGraph(10, 2)
	d1 := []Demand{{S: 0, T: 9, Amount: 1}}
	d2 := []Demand{{S: 0, T: 9, Amount: 1}, {S: 1, T: 8, Amount: 4}}
	if LowerBound(g, d1, testCables) >= LowerBound(g, d2, testCables) {
		t.Fatal("lower bound not monotone in demands")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	g := graph.PathGraph(3, 1)
	sol := &Solution{
		Purchases: []Purchase{{U: 0, V: 2, Cable: 0, Count: 1}}, // non-edge
	}
	if err := Validate(g, testCables, sol); err == nil {
		t.Fatal("purchase on non-edge accepted")
	}
	sol = &Solution{
		Purchases: []Purchase{{U: 0, V: 1, Cable: 0, Count: 1}},
		Flow:      map[[2]graph.Node]float64{{0, 1}: 5},
	}
	if err := Validate(g, testCables, sol); err == nil {
		t.Fatal("under-capacitated edge accepted")
	}
}

func TestSolveNoDemands(t *testing.T) {
	g := graph.PathGraph(4, 1)
	sol, err := Solve(g, nil, testCables, Options{RNG: par.NewRNG(7)})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 0 || len(sol.Purchases) != 0 {
		t.Fatalf("empty demand set produced cost %v", sol.Cost)
	}
}
