// Package buyatbulk implements the buy-at-bulk network design application
// of §10 of Friedrichs & Lenzen: an expected O(log n)-approximation
// (Theorem 10.2) that
//
//	(1) embeds the graph into a sampled FRT tree,
//	(2) routes every demand along its unique tree path and buys, per tree
//	    edge with accumulated flow d_e, the cable type minimising
//	    c_i·⌈d_e/u_i⌉ (an O(1)-approximation on the tree), and
//	(3) maps each tree edge back to a shortest path in G between the
//	    cluster centers (§7.5), purchasing the same cables along it.
//
// The linearity of the objective in edge weights is what makes the FRT
// stretch argument go through: an optimal solution in G induces a tree
// solution of expected cost O(log n)·OPT, and mapping back pays only a
// constant factor.
package buyatbulk

import (
	"fmt"
	"math"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// Demand routes Amount units of (distinct) flow from S to T.
type Demand struct {
	S, T   graph.Node
	Amount float64
}

// CableType has capacity Capacity and costs Cost per unit of edge weight;
// multiple cables of one type may be bought for an edge.
type CableType struct {
	Capacity float64
	Cost     float64
}

// Purchase is a cable assignment to a graph edge.
type Purchase struct {
	U, V  graph.Node
	Cable int
	Count int
}

// Solution is a priced buy-at-bulk solution together with the per-edge flow
// it must support.
type Solution struct {
	// Purchases lists all bought cables.
	Purchases []Purchase
	// Cost is the total purchase cost.
	Cost float64
	// Flow is the flow each purchased edge must carry, keyed like
	// Purchases by (U, V) with U < V.
	Flow map[[2]graph.Node]float64
}

// Options configures Solve.
type Options struct {
	// RNG is the randomness source (required).
	RNG *par.RNG
	// UseOracle selects the polylog-depth oracle pipeline for the tree
	// sample (the paper's algorithm); false uses the direct LE-list
	// computation on G.
	UseOracle bool
	// Tracker, if non-nil, is charged the work/depth.
	Tracker *par.Tracker
}

// bestCable returns the cable choice minimising cost·⌈flow/capacity⌉ per
// unit of edge weight.
func bestCable(cables []CableType, flow float64) (idx, count int, costPerWeight float64) {
	idx = -1
	for i, c := range cables {
		n := int(math.Ceil(flow / c.Capacity))
		if n < 1 {
			n = 1
		}
		if cost := float64(n) * c.Cost; idx == -1 || cost < costPerWeight {
			idx, count, costPerWeight = i, n, cost
		}
	}
	return idx, count, costPerWeight
}

// Solve computes an expected O(log n)-approximate buy-at-bulk solution.
func Solve(g *graph.Graph, demands []Demand, cables []CableType, opts Options) (*Solution, error) {
	if opts.RNG == nil {
		return nil, fmt.Errorf("buyatbulk: Options.RNG is required")
	}
	if len(cables) == 0 {
		return nil, fmt.Errorf("buyatbulk: no cable types")
	}
	for _, c := range cables {
		if c.Capacity <= 0 || c.Cost <= 0 {
			return nil, fmt.Errorf("buyatbulk: invalid cable type %+v", c)
		}
	}
	for _, d := range demands {
		if d.Amount <= 0 || int(d.S) >= g.N() || int(d.T) >= g.N() {
			return nil, fmt.Errorf("buyatbulk: invalid demand %+v", d)
		}
	}

	var emb *frt.Embedding
	var err error
	if opts.UseOracle {
		emb, err = frt.Sample(g, frt.Options{RNG: opts.RNG, Tracker: opts.Tracker})
	} else {
		emb, err = frt.SampleOnGraph(g, opts.RNG, opts.Tracker)
	}
	if err != nil {
		return nil, err
	}
	tree := emb.Tree

	// (2) Route demands on the tree: accumulate flow per tree edge (keyed
	// by the child endpoint).
	flow := make([]float64, tree.NumNodes())
	for _, d := range demands {
		a, b := tree.Leaf[d.S], tree.Leaf[d.T]
		for a != b {
			flow[a] += d.Amount
			flow[b] += d.Amount
			a, b = tree.Parent[a], tree.Parent[b]
		}
	}

	// (3) Buy cables per loaded tree edge and map them onto shortest
	// center-to-center paths in G. Dijkstra results are cached per center.
	sssp := map[graph.Node]*graph.SSSPResult{}
	pathOf := func(from, to graph.Node) []graph.Node {
		res, ok := sssp[from]
		if !ok {
			res = graph.Dijkstra(g, from)
			sssp[from] = res
			opts.Tracker.AddPhase(int64(g.M()+g.N()), 1)
		}
		return res.PathTo(to)
	}

	type edgeKey = [2]graph.Node
	counts := map[edgeKey]map[int]int{}
	flowBy := map[edgeKey]float64{}
	for child := int32(0); child < int32(tree.NumNodes()); child++ {
		f := flow[child]
		p := tree.Parent[child]
		if f <= 0 || p == -1 {
			continue
		}
		from, to := tree.Center[child], tree.Center[p]
		if from == to {
			continue // zero-length hop: nothing to buy
		}
		cable, count, _ := bestCable(cables, f)
		path := pathOf(from, to)
		if path == nil {
			return nil, fmt.Errorf("buyatbulk: centers %d, %d disconnected", from, to)
		}
		for i := 1; i < len(path); i++ {
			k := orderedKey(path[i-1], path[i])
			if counts[k] == nil {
				counts[k] = map[int]int{}
			}
			counts[k][cable] += count
			flowBy[k] += f
		}
	}

	sol := &Solution{Flow: flowBy}
	for k, byCable := range counts {
		w, ok := g.HasEdge(k[0], k[1])
		if !ok {
			return nil, fmt.Errorf("buyatbulk: purchase on non-edge {%d,%d}", k[0], k[1])
		}
		for cable, count := range byCable {
			sol.Purchases = append(sol.Purchases, Purchase{U: k[0], V: k[1], Cable: cable, Count: count})
			sol.Cost += float64(count) * cables[cable].Cost * w
		}
	}
	return sol, nil
}

func orderedKey(u, v graph.Node) [2]graph.Node {
	if u < v {
		return [2]graph.Node{u, v}
	}
	return [2]graph.Node{v, u}
}

// DirectShortestPath is the aggregation-free baseline: each demand is routed
// on a shortest path in G, flows are summed per edge, and the best cable
// combination is bought per edge.
func DirectShortestPath(g *graph.Graph, demands []Demand, cables []CableType) *Solution {
	flowBy := map[[2]graph.Node]float64{}
	sssp := map[graph.Node]*graph.SSSPResult{}
	for _, d := range demands {
		res, ok := sssp[d.S]
		if !ok {
			res = graph.Dijkstra(g, d.S)
			sssp[d.S] = res
		}
		path := res.PathTo(d.T)
		for i := 1; i < len(path); i++ {
			flowBy[orderedKey(path[i-1], path[i])] += d.Amount
		}
	}
	sol := &Solution{Flow: flowBy}
	for k, f := range flowBy {
		w, _ := g.HasEdge(k[0], k[1])
		cable, count, _ := bestCable(cables, f)
		sol.Purchases = append(sol.Purchases, Purchase{U: k[0], V: k[1], Cable: cable, Count: count})
		sol.Cost += float64(count) * cables[cable].Cost * w
	}
	return sol
}

// LowerBound returns a simple volume bound: every unit of every demand must
// travel at least its shortest-path distance, paying at least the best
// cost-per-capacity rate among the cables.
func LowerBound(g *graph.Graph, demands []Demand, cables []CableType) float64 {
	bestRate := math.Inf(1)
	for _, c := range cables {
		if r := c.Cost / c.Capacity; r < bestRate {
			bestRate = r
		}
	}
	sssp := map[graph.Node]*graph.SSSPResult{}
	total := 0.0
	for _, d := range demands {
		res, ok := sssp[d.S]
		if !ok {
			res = graph.Dijkstra(g, d.S)
			sssp[d.S] = res
		}
		total += d.Amount * res.Dist[d.T]
	}
	return total * bestRate
}

// Validate checks structural soundness of a solution: every purchase sits
// on a real edge with positive count, and the purchased capacity of every
// edge covers the flow the solution routes over it.
func Validate(g *graph.Graph, cables []CableType, sol *Solution) error {
	capacity := map[[2]graph.Node]float64{}
	for _, p := range sol.Purchases {
		if _, ok := g.HasEdge(p.U, p.V); !ok {
			return fmt.Errorf("purchase on non-edge {%d,%d}", p.U, p.V)
		}
		if p.Count < 1 || p.Cable < 0 || p.Cable >= len(cables) {
			return fmt.Errorf("invalid purchase %+v", p)
		}
		capacity[orderedKey(p.U, p.V)] += float64(p.Count) * cables[p.Cable].Capacity
	}
	for k, f := range sol.Flow {
		if capacity[k] < f-1e-9 {
			return fmt.Errorf("edge {%d,%d}: capacity %v below flow %v", k[0], k[1], capacity[k], f)
		}
	}
	return nil
}
