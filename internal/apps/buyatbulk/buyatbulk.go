// Package buyatbulk implements the buy-at-bulk network design application
// of §10 of Friedrichs & Lenzen: an expected O(log n)-approximation
// (Theorem 10.2) that
//
//	(1) embeds the graph into FRT trees drawn through the shared
//	    frt.Embedder pipeline,
//	(2) routes every demand along its unique tree path and buys, per tree
//	    edge with accumulated flow d_e, the cable type minimising
//	    c_i·⌈d_e/u_i⌉ (an O(1)-approximation on the tree) — flows are
//	    accumulated with an LCA-delta sweep over the TreeIndex instead of
//	    per-demand lockstep walks, and
//	(3) maps each loaded tree edge back to a shortest path in G between the
//	    cluster centers (§7.5) by walking the next-hop tables of one
//	    sparse-engine routing fixpoint, purchasing the same cables along it.
//
// The linearity of the objective in edge weights is what makes the FRT
// stretch argument go through: an optimal solution in G induces a tree
// solution of expected cost O(log n)·OPT, and mapping back pays only a
// constant factor.
package buyatbulk

import (
	"fmt"
	"math"
	"sort"

	"parmbf/internal/apps/scenario"
	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/mbf"
	"parmbf/internal/par"
)

// Demand routes Amount units of (distinct) flow from S to T.
type Demand struct {
	S, T   graph.Node
	Amount float64
}

// CableType has capacity Capacity and costs Cost per unit of edge weight;
// multiple cables of one type may be bought for an edge.
type CableType struct {
	Capacity float64
	Cost     float64
}

// Purchase is a cable assignment to a graph edge.
type Purchase struct {
	U, V  graph.Node
	Cable int
	Count int
}

// Solution is a priced buy-at-bulk solution together with the per-edge flow
// it must support.
type Solution struct {
	// Purchases lists all bought cables.
	Purchases []Purchase
	// Cost is the total purchase cost.
	Cost float64
	// Flow is the flow each purchased edge must carry, keyed like
	// Purchases by (U, V) with U < V.
	Flow map[[2]graph.Node]float64
}

// Options is the unified application-scenario configuration; see
// scenario.Options. Solve draws Trees trees (default 1) through the shared
// embedder pipeline unless an Embedder or Ensemble is injected; with several
// trees the cheapest per-tree solution is returned.
type Options = scenario.Options

// defaultTrees is the number of trees Solve draws when Options does not say
// otherwise. One tree is the algorithm of Theorem 10.2; more trees trade
// work for the usual best-of-K boost.
const defaultTrees = 1

// bestCable returns the cable choice minimising cost·⌈flow/capacity⌉ per
// unit of edge weight.
func bestCable(cables []CableType, flow float64) (idx, count int, costPerWeight float64) {
	idx = -1
	for i, c := range cables {
		n := int(math.Ceil(flow / c.Capacity))
		if n < 1 {
			n = 1
		}
		if cost := float64(n) * c.Cost; idx == -1 || cost < costPerWeight {
			idx, count, costPerWeight = i, n, cost
		}
	}
	return idx, count, costPerWeight
}

// Solve computes an expected O(log n)-approximate buy-at-bulk solution.
func Solve(g *graph.Graph, demands []Demand, cables []CableType, opts Options) (*Solution, error) {
	if len(cables) == 0 {
		return nil, fmt.Errorf("buyatbulk: no cable types")
	}
	for _, c := range cables {
		if c.Capacity <= 0 || c.Cost <= 0 {
			return nil, fmt.Errorf("buyatbulk: invalid cable type %+v", c)
		}
	}
	for _, d := range demands {
		if d.Amount <= 0 || int(d.S) >= g.N() || int(d.T) >= g.N() {
			return nil, fmt.Errorf("buyatbulk: invalid demand %+v", d)
		}
	}

	ens, err := opts.Resolve(g, defaultTrees)
	if err != nil {
		return nil, err
	}
	visit, err := opts.Visit(ens)
	if err != nil {
		return nil, err
	}
	var best *Solution
	for _, tree := range visit {
		sol, err := solveOnTree(g, tree, demands, cables, opts.Tracker)
		if err != nil {
			return nil, err
		}
		if best == nil || sol.Cost < best.Cost {
			best = sol
		}
	}
	return best, nil
}

// solveOnTree runs steps (2) and (3) against one sampled tree.
func solveOnTree(g *graph.Graph, tree *frt.Tree, demands []Demand, cables []CableType, tracker *par.Tracker) (*Solution, error) {
	tidx, err := frt.NewTreeIndex(tree)
	if err != nil {
		return nil, err
	}
	nt := tree.NumNodes()

	// (2) Route demands on the tree: per demand, +amount at both leaves and
	// −amount at their meeting height, then one children-before-parents
	// subtree-sum pass turns the deltas into per-tree-edge flow (keyed by
	// the child endpoint). O(|demands|·log depth + nt) total, replacing the
	// seed-era O(|demands|·depth) per-pair lockstep walks.
	delta := make([]float64, nt)
	for _, d := range demands {
		if d.S == d.T {
			continue
		}
		h := tidx.MergeHeight(d.S, d.T)
		delta[tidx.Ancestor(d.S, 0)] += d.Amount
		delta[tidx.Ancestor(d.S, h)] -= d.Amount
		delta[tidx.Ancestor(d.T, 0)] += d.Amount
		delta[tidx.Ancestor(d.T, h)] -= d.Amount
	}
	flow := make([]float64, nt)
	for _, u := range bottomUp(tree) {
		p := tree.Parent[u]
		if p == -1 {
			continue
		}
		flow[u] = delta[u]
		delta[p] += delta[u]
	}

	// (3) Buy cables per loaded tree edge and map them onto shortest
	// center-to-center paths in G: one routing fixpoint towards the distinct
	// parent centers builds next-hop tables for every source at once, and
	// each path is materialised by walking Next pointers (§7.5's "nodes
	// locally store the predecessor of shortest paths just like in APSP").
	type load struct {
		from, to graph.Node
		flow     float64
	}
	var loads []load
	targetSet := map[graph.Node]bool{}
	for child := int32(0); child < int32(nt); child++ {
		f := flow[child]
		p := tree.Parent[child]
		if f <= 0 || p == -1 {
			continue
		}
		from, to := tree.Center[child], tree.Center[p]
		if from == to {
			continue // zero-length hop: nothing to buy
		}
		loads = append(loads, load{from: from, to: to, flow: f})
		targetSet[to] = true
	}

	type edgeKey = [2]graph.Node
	counts := map[edgeKey]map[int]int{}
	flowBy := map[edgeKey]float64{}
	if len(loads) > 0 {
		targets := make([]graph.Node, 0, len(targetSet))
		for t := range targetSet {
			targets = append(targets, t)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		tables := mbf.RoutingTablesTo(g, targets, tracker)
		for _, l := range loads {
			cable, count, _ := bestCable(cables, l.flow)
			path := mbf.WalkRoute(tables, l.from, l.to)
			if path == nil {
				return nil, fmt.Errorf("buyatbulk: centers %d, %d disconnected", l.from, l.to)
			}
			for i := 1; i < len(path); i++ {
				k := orderedKey(path[i-1], path[i])
				if counts[k] == nil {
					counts[k] = map[int]int{}
				}
				counts[k][cable] += count
				flowBy[k] += l.flow
			}
		}
	}

	sol := &Solution{Flow: flowBy}
	for k, byCable := range counts {
		w, ok := g.HasEdge(k[0], k[1])
		if !ok {
			return nil, fmt.Errorf("buyatbulk: purchase on non-edge {%d,%d}", k[0], k[1])
		}
		for cable, count := range byCable {
			sol.Purchases = append(sol.Purchases, Purchase{U: k[0], V: k[1], Cable: cable, Count: count})
			sol.Cost += float64(count) * cables[cable].Cost * w
		}
	}
	return sol, nil
}

// bottomUp returns the tree nodes ordered children-before-parents: FRT trees
// have uniform leaf depth, so a node's level is a topological key (every
// child sits exactly one level below its parent).
func bottomUp(t *frt.Tree) []int32 {
	order := make([]int32, t.NumNodes())
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool { return t.Level[order[i]] < t.Level[order[j]] })
	return order
}

func orderedKey(u, v graph.Node) [2]graph.Node {
	if u < v {
		return [2]graph.Node{u, v}
	}
	return [2]graph.Node{v, u}
}

// DirectShortestPath is the aggregation-free baseline: each demand is routed
// on a shortest path in G, flows are summed per edge, and the best cable
// combination is bought per edge.
func DirectShortestPath(g *graph.Graph, demands []Demand, cables []CableType) *Solution {
	flowBy := map[[2]graph.Node]float64{}
	sssp := map[graph.Node]*graph.SSSPResult{}
	for _, d := range demands {
		res, ok := sssp[d.S]
		if !ok {
			res = graph.Dijkstra(g, d.S)
			sssp[d.S] = res
		}
		path := res.PathTo(d.T)
		for i := 1; i < len(path); i++ {
			flowBy[orderedKey(path[i-1], path[i])] += d.Amount
		}
	}
	sol := &Solution{Flow: flowBy}
	for k, f := range flowBy {
		w, _ := g.HasEdge(k[0], k[1])
		cable, count, _ := bestCable(cables, f)
		sol.Purchases = append(sol.Purchases, Purchase{U: k[0], V: k[1], Cable: cable, Count: count})
		sol.Cost += float64(count) * cables[cable].Cost * w
	}
	return sol
}

// LowerBound returns a simple volume bound: every unit of every demand must
// travel at least its shortest-path distance, paying at least the best
// cost-per-capacity rate among the cables.
func LowerBound(g *graph.Graph, demands []Demand, cables []CableType) float64 {
	bestRate := math.Inf(1)
	for _, c := range cables {
		if r := c.Cost / c.Capacity; r < bestRate {
			bestRate = r
		}
	}
	sssp := map[graph.Node]*graph.SSSPResult{}
	total := 0.0
	for _, d := range demands {
		res, ok := sssp[d.S]
		if !ok {
			res = graph.Dijkstra(g, d.S)
			sssp[d.S] = res
		}
		total += d.Amount * res.Dist[d.T]
	}
	return total * bestRate
}

// Validate checks structural soundness of a solution: every purchase sits
// on a real edge with positive count, and the purchased capacity of every
// edge covers the flow the solution routes over it.
func Validate(g *graph.Graph, cables []CableType, sol *Solution) error {
	capacity := map[[2]graph.Node]float64{}
	for _, p := range sol.Purchases {
		if _, ok := g.HasEdge(p.U, p.V); !ok {
			return fmt.Errorf("purchase on non-edge {%d,%d}", p.U, p.V)
		}
		if p.Count < 1 || p.Cable < 0 || p.Cable >= len(cables) {
			return fmt.Errorf("invalid purchase %+v", p)
		}
		capacity[orderedKey(p.U, p.V)] += float64(p.Count) * cables[p.Cable].Capacity
	}
	for k, f := range sol.Flow {
		if capacity[k] < f-1e-9 {
			return fmt.Errorf("edge {%d,%d}: capacity %v below flow %v", k[0], k[1], capacity[k], f)
		}
	}
	return nil
}
