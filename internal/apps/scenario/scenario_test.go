package scenario

import (
	"strings"
	"testing"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.RandomConnected(24, 60, 8, par.NewRNG(3))
}

func TestResolveSamplesFreshTrees(t *testing.T) {
	g := testGraph(t)
	ens, err := Options{RNG: par.NewRNG(7)}.Resolve(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ens.Trees) != 2 {
		t.Fatalf("got %d trees, want the default 2", len(ens.Trees))
	}
	// An explicit Trees count overrides the scenario default.
	ens, err = Options{RNG: par.NewRNG(7), Trees: 3}.Resolve(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ens.Trees) != 3 {
		t.Fatalf("got %d trees, want 3", len(ens.Trees))
	}
}

func TestResolveInjectedEmbedderAndEnsemble(t *testing.T) {
	g := testGraph(t)
	emb, err := frt.NewEmbedder(g, frt.Options{RNG: par.NewRNG(11)})
	if err != nil {
		t.Fatal(err)
	}
	ens, err := Options{Embedder: emb}.Resolve(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ens.Trees) != 2 {
		t.Fatalf("embedder injection: got %d trees, want 2", len(ens.Trees))
	}
	// An injected ensemble wins over everything and needs no RNG.
	got, err := Options{Ensemble: ens}.Resolve(g, 99)
	if err != nil {
		t.Fatal(err)
	}
	if got != ens {
		t.Fatal("injected ensemble was not returned as-is")
	}
}

func TestResolveErrors(t *testing.T) {
	g := testGraph(t)
	if _, err := (Options{}).Resolve(g, 2); err == nil || !strings.Contains(err.Error(), "RNG") {
		t.Fatalf("missing RNG: err = %v", err)
	}
	if _, err := (Options{Ensemble: &frt.Ensemble{}}).Resolve(g, 2); err == nil || !strings.Contains(err.Error(), "no trees") {
		t.Fatalf("empty injected ensemble: err = %v", err)
	}
}

func TestVisit(t *testing.T) {
	g := testGraph(t)
	ens, err := Options{RNG: par.NewRNG(13), Trees: 4}.Resolve(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	all, err := Options{}.Visit(ens)
	if err != nil || len(all) != 4 {
		t.Fatalf("Visit all: %d trees, err %v", len(all), err)
	}
	slice, err := Options{FirstTree: 1, Trees: 2}.Visit(ens)
	if err != nil || len(slice) != 2 || slice[0] != ens.Trees[1] {
		t.Fatalf("Visit [1,3): %d trees, err %v", len(slice), err)
	}
	// Trees overshooting the ensemble clamps to the end.
	tail, err := Options{FirstTree: 3, Trees: 99}.Visit(ens)
	if err != nil || len(tail) != 1 || tail[0] != ens.Trees[3] {
		t.Fatalf("Visit clamped tail: %d trees, err %v", len(tail), err)
	}
	if _, err := (Options{FirstTree: 4}).Visit(ens); err == nil {
		t.Fatal("out-of-range FirstTree must error")
	}
	if _, err := (Options{FirstTree: -1}).Visit(ens); err == nil {
		t.Fatal("negative FirstTree must error")
	}
	if _, err := (Options{}).Visit(&frt.Ensemble{}); err == nil {
		t.Fatal("empty ensemble must error")
	}
}
