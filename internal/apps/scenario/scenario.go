// Package scenario holds the entry-point conventions shared by every
// application scenario (kmedian, buyatbulk, steiner, routing): one Options
// shape with an embedder/ensemble injection point. A standalone caller sets
// just RNG and the scenario builds its own hop-set → H → oracle pipeline;
// a daemon builds the pipeline once and injects the shared Embedder or the
// already-sampled Ensemble, so every scenario answers from the same trees
// and the same oracle index.
package scenario

import (
	"fmt"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// Options configures an application scenario. The zero value is invalid:
// every scenario needs either an RNG (to sample trees, and for its own
// randomized stages) or an injected pipeline.
type Options struct {
	// RNG is the randomness source. Required unless Ensemble or Embedder is
	// injected and the scenario has no randomized stage of its own.
	RNG *par.RNG
	// Trees is the number of FRT trees the scenario draws — or, with an
	// injected Ensemble, visits — in its per-tree loop; 0 selects the
	// scenario's default (all trees of an injected ensemble).
	Trees int
	// FirstTree is the offset of the first visited tree in an injected
	// Ensemble — the router's per-tree sharding hook: shard i solves trees
	// [FirstTree, FirstTree+Trees) and the router merges by reported cost.
	// Ignored when trees are freshly sampled.
	FirstTree int
	// Embedder, if non-nil, is the shared pipeline to draw trees from; the
	// scenario skips its own NewEmbedder build.
	Embedder *frt.Embedder
	// Ensemble, if non-nil, is used directly — no sampling happens.
	Ensemble *frt.Ensemble
	// Tracker, if non-nil, is charged the work/depth of the scenario's
	// internal phases.
	Tracker *par.Tracker
}

// Resolve returns the ensemble the scenario should run on: the injected one;
// otherwise Trees (or defaultTrees) fresh trees drawn from the injected
// embedder, or from a new embedder built on g.
func (o Options) Resolve(g *graph.Graph, defaultTrees int) (*frt.Ensemble, error) {
	if o.Ensemble != nil {
		if len(o.Ensemble.Trees) == 0 {
			return nil, fmt.Errorf("scenario: injected ensemble has no trees")
		}
		return o.Ensemble, nil
	}
	trees := o.Trees
	if trees <= 0 {
		trees = defaultTrees
	}
	emb := o.Embedder
	if emb == nil {
		if o.RNG == nil {
			return nil, fmt.Errorf("scenario: Options.RNG is required unless an embedder or ensemble is injected")
		}
		var err error
		emb, err = frt.NewEmbedder(g, frt.Options{RNG: o.RNG, Tracker: o.Tracker})
		if err != nil {
			return nil, err
		}
	}
	return emb.SampleEnsemble(trees)
}

// Visit returns the subrange of ens.Trees the scenario's per-tree loop
// should cover: [FirstTree, FirstTree+Trees) clamped to the ensemble, the
// whole ensemble when Trees is 0. An out-of-range FirstTree is an error (a
// sharded deployment asking for trees the worker does not hold is a caller
// bug, not something to silently clamp to empty).
func (o Options) Visit(ens *frt.Ensemble) ([]*frt.Tree, error) {
	k := len(ens.Trees)
	lo := o.FirstTree
	if lo < 0 || lo >= k {
		if lo == 0 {
			return nil, fmt.Errorf("scenario: ensemble has no trees")
		}
		return nil, fmt.Errorf("scenario: FirstTree=%d out of range for %d trees", lo, k)
	}
	hi := k
	if o.Trees > 0 && lo+o.Trees < hi {
		hi = lo + o.Trees
	}
	return ens.Trees[lo:hi], nil
}
