// Package routing implements oblivious routing over an FRT tree ensemble —
// the third application scenario of the paper's §9–10 family. The scheme is
// the classic tree-based one: route a demand (u, v) along the unique tree
// path of an embedding tree, mapping every tree edge to a shortest
// center-to-center path in G. Obliviousness is the point — the next-hop
// tables are computed once from the embedding, independent of the demand
// set, and the FRT stretch bound makes every routed path an expected
// O(log n)-approximation of the shortest path.
//
// The implementation rides entirely on the fast layers:
//
//   - trees come from the shared frt.Embedder pipeline (or an injected
//     ensemble, so a daemon serves routing from the same trees as its
//     distance oracle),
//   - the tree decomposition is read through frt.TreeIndex
//     (MergeHeight/Ancestor — O(log depth) per query, no pointer walks),
//   - the next-hop tables are one sparse-engine fixpoint
//     (mbf.RoutingTablesTo with the RouteMapModule aggregator fast path)
//     towards the distinct cluster centers, shared by all trees,
//   - paths are materialised by mbf.WalkRoute, one trusted hop at a time.
package routing

import (
	"fmt"
	"sort"

	"parmbf/internal/apps/scenario"
	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/mbf"
	"parmbf/internal/semiring"
)

// Options is the unified application-scenario configuration; see
// scenario.Options. Build draws Trees trees (default 4) through the shared
// embedder pipeline unless an Embedder or Ensemble is injected.
type Options = scenario.Options

// defaultTrees is the ensemble size Build uses when Options does not say
// otherwise: a handful of trees lets Route pick the best tree per pair,
// tightening the per-pair stretch without changing the oblivious tables.
const defaultTrees = 4

// Tables is a built oblivious-routing scheme: per-tree decompositions plus
// one shared next-hop table towards every cluster center.
type Tables struct {
	g     *graph.Graph
	trees []*frt.TreeIndex
	// tables[v] routes v towards every target center; one sparse fixpoint
	// serves all trees because the target set is the union of their centers.
	tables []semiring.RouteMap
	// isTarget marks the graph nodes the shared tables can route towards
	// (the internal-node centers of all trees). Segments ending elsewhere
	// are walked in reverse — valid on undirected graphs.
	isTarget []bool
}

// RouteResult is one routed demand.
type RouteResult struct {
	// Path is the walked node sequence from U to V (Path[0] = U, last = V);
	// every consecutive pair is an edge of G.
	Path []graph.Node
	// Length is the total edge weight of Path.
	Length float64
	// Tree is the index (into the built ensemble) of the tree that routed
	// the pair — the one with the smallest tree distance.
	Tree int
	// TreeDist is that tree's distance, an upper bound certificate:
	// Length ≤ TreeDist always (the routed path shortcuts repeated centers).
	TreeDist float64
}

// Build constructs the oblivious routing tables for g.
func Build(g *graph.Graph, opts Options) (*Tables, error) {
	ens, err := opts.Resolve(g, defaultTrees)
	if err != nil {
		return nil, err
	}
	visit, err := opts.Visit(ens)
	if err != nil {
		return nil, err
	}
	rt := &Tables{g: g, isTarget: make([]bool, g.N())}
	for _, tree := range visit {
		tidx, err := frt.NewTreeIndex(tree)
		if err != nil {
			return nil, err
		}
		rt.trees = append(rt.trees, tidx)
		// Every internal tree node's center is a potential segment endpoint;
		// leaves' centers are the graph nodes themselves and need no table
		// entry (they are only ever walked *from*, or reached in reverse).
		isLeaf := make([]bool, tree.NumNodes())
		for _, l := range tree.Leaf {
			isLeaf[l] = true
		}
		for x := 0; x < tree.NumNodes(); x++ {
			if !isLeaf[x] {
				rt.isTarget[tree.Center[x]] = true
			}
		}
	}
	targets := make([]graph.Node, 0)
	for v, is := range rt.isTarget {
		if is {
			targets = append(targets, graph.Node(v))
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	if len(targets) > 0 {
		rt.tables = mbf.RoutingTablesTo(g, targets, opts.Tracker)
	}
	return rt, nil
}

// NumTrees returns the ensemble size the tables were built from.
func (rt *Tables) NumTrees() int { return len(rt.trees) }

// Route routes one demand obliviously: pick the tree with the smallest tree
// distance, walk its tree path as a chain of cluster centers, and expand
// every center hop into a shortest path in G via the shared next-hop tables.
func (rt *Tables) Route(u, v graph.Node) (*RouteResult, error) {
	if int(u) < 0 || int(u) >= rt.g.N() || int(v) < 0 || int(v) >= rt.g.N() {
		return nil, fmt.Errorf("routing: pair (%d, %d) out of range", u, v)
	}
	if u == v {
		return &RouteResult{Path: []graph.Node{u}}, nil
	}
	best, bestDist := 0, rt.trees[0].Dist(u, v)
	for t := 1; t < len(rt.trees); t++ {
		if d := rt.trees[t].Dist(u, v); d < bestDist {
			best, bestDist = t, d
		}
	}
	tidx := rt.trees[best]
	// The tree path of (u, v) read as centers: up from u to the LCA, down to
	// v. Consecutive duplicate centers (a cluster keeping its center one
	// level up) collapse to nothing — the walk shortcuts them for free.
	h := tidx.MergeHeight(u, v)
	center := tidx.Tree().Center
	chain := make([]graph.Node, 0, 2*h+1)
	for i := 0; i <= h; i++ {
		chain = appendCenter(chain, center[tidx.Ancestor(u, i)])
	}
	for i := h - 1; i >= 0; i-- {
		chain = appendCenter(chain, center[tidx.Ancestor(v, i)])
	}
	path := []graph.Node{u}
	length := 0.0
	for i := 1; i < len(chain); i++ {
		a, b := chain[i-1], chain[i]
		seg := rt.segment(a, b)
		if seg == nil {
			return nil, fmt.Errorf("routing: centers %d, %d disconnected", a, b)
		}
		for j := 1; j < len(seg); j++ {
			w, _ := rt.g.HasEdge(seg[j-1], seg[j])
			length += w
			path = append(path, seg[j])
		}
	}
	return &RouteResult{Path: path, Length: length, Tree: best, TreeDist: bestDist}, nil
}

// segment expands one center hop a→b into a shortest path of G. Every hop
// has at least one endpoint in the target set (internal centers are targets;
// only the chain's first and last centers can be plain leaves), so either a
// forward walk towards b or a reversed walk from b towards a applies.
func (rt *Tables) segment(a, b graph.Node) []graph.Node {
	if rt.isTarget[b] {
		return mbf.WalkRoute(rt.tables, a, b)
	}
	seg := mbf.WalkRoute(rt.tables, b, a)
	if seg == nil {
		return nil
	}
	for i, j := 0, len(seg)-1; i < j; i, j = i+1, j-1 {
		seg[i], seg[j] = seg[j], seg[i]
	}
	return seg
}

// RouteBatch routes every pair, stopping at the first error.
func (rt *Tables) RouteBatch(pairs []frt.Pair) ([]*RouteResult, error) {
	out := make([]*RouteResult, len(pairs))
	for i, p := range pairs {
		r, err := rt.Route(p.U, p.V)
		if err != nil {
			return nil, fmt.Errorf("routing: pair %d: %w", i, err)
		}
		out[i] = r
	}
	return out, nil
}

// appendCenter appends c unless it repeats the chain's last center.
func appendCenter(chain []graph.Node, c graph.Node) []graph.Node {
	if n := len(chain); n > 0 && chain[n-1] == c {
		return chain
	}
	return append(chain, c)
}

// Validate checks a routed result against g: endpoints match, every hop is a
// real edge, the length accounting is exact, and the tree-distance
// certificate holds.
func Validate(g *graph.Graph, u, v graph.Node, r *RouteResult) error {
	if len(r.Path) == 0 || r.Path[0] != u || r.Path[len(r.Path)-1] != v {
		return fmt.Errorf("routing: path endpoints %v do not match pair (%d, %d)", r.Path, u, v)
	}
	total := 0.0
	for i := 1; i < len(r.Path); i++ {
		w, ok := g.HasEdge(r.Path[i-1], r.Path[i])
		if !ok {
			return fmt.Errorf("routing: hop {%d, %d} is not an edge", r.Path[i-1], r.Path[i])
		}
		total += w
	}
	if diff := total - r.Length; diff > 1e-9 || diff < -1e-9 {
		return fmt.Errorf("routing: length accounting off by %v", diff)
	}
	if u != v && r.Length > r.TreeDist+1e-9 {
		return fmt.Errorf("routing: length %v exceeds the tree-distance certificate %v", r.Length, r.TreeDist)
	}
	return nil
}
