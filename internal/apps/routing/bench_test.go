package routing

import (
	"sync"
	"testing"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
)

var benchFix struct {
	once   sync.Once
	g      *graph.Graph
	ens    *frt.Ensemble
	tables *Tables
	pairs  []frt.Pair
	err    error
}

func benchFixture(b *testing.B) (*graph.Graph, *frt.Ensemble, *Tables, []frt.Pair) {
	b.Helper()
	benchFix.once.Do(func() {
		rng := par.NewRNG(37)
		benchFix.g = graph.RandomConnected(1024, 4096, 8, rng)
		emb, err := frt.NewEmbedder(benchFix.g, frt.Options{RNG: rng})
		if err != nil {
			benchFix.err = err
			return
		}
		benchFix.ens, benchFix.err = emb.SampleEnsemble(4)
		if benchFix.err != nil {
			return
		}
		benchFix.tables, benchFix.err = Build(benchFix.g, Options{Ensemble: benchFix.ens})
		if benchFix.err != nil {
			return
		}
		prng := par.NewRNG(41)
		benchFix.pairs = make([]frt.Pair, 256)
		for i := range benchFix.pairs {
			benchFix.pairs[i] = frt.Pair{
				U: graph.Node(prng.Intn(1024)),
				V: graph.Node(prng.Intn(1024)),
			}
		}
	})
	if benchFix.err != nil {
		b.Fatal(benchFix.err)
	}
	return benchFix.g, benchFix.ens, benchFix.tables, benchFix.pairs
}

// BenchmarkRoutingTables is the preprocessing cost: one shared
// RoutingTablesTo fixpoint toward every cluster center of the ensemble plus
// the per-tree decomposition indexes.
func BenchmarkRoutingTables(b *testing.B) {
	g, ens, _, _ := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, err := Build(g, Options{Ensemble: ens})
		if err != nil {
			b.Fatal(err)
		}
		if rt.NumTrees() == 0 {
			b.Fatal("no trees")
		}
	}
}

// BenchmarkRouteQueryBatch is the steady-state serving cost: 256 oblivious
// routes per op against pre-built tables (argmin tree, center chain, segment
// expansion through the shared next-hop tables).
func BenchmarkRouteQueryBatch(b *testing.B) {
	_, _, tables, pairs := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		routes, err := tables.RouteBatch(pairs)
		if err != nil {
			b.Fatal(err)
		}
		if len(routes) != len(pairs) {
			b.Fatal("short answer")
		}
	}
}
