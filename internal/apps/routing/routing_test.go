package routing

import (
	"math"
	"sort"
	"testing"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
)

func TestRouteValidOnRandomGraph(t *testing.T) {
	rng := par.NewRNG(1)
	g := graph.RandomConnected(60, 150, 6, rng)
	rt, err := Build(g, Options{RNG: rng, Trees: 3})
	if err != nil {
		t.Fatal(err)
	}
	pairRNG := par.NewRNG(2)
	for i := 0; i < 50; i++ {
		u := graph.Node(pairRNG.Intn(g.N()))
		v := graph.Node(pairRNG.Intn(g.N()))
		r, err := rt.Route(u, v)
		if err != nil {
			t.Fatalf("route (%d,%d): %v", u, v, err)
		}
		if err := Validate(g, u, v, r); err != nil {
			t.Fatalf("route (%d,%d): %v", u, v, err)
		}
	}
}

func TestRouteSelfPair(t *testing.T) {
	rng := par.NewRNG(3)
	g := graph.PathGraph(8, 1)
	rt, err := Build(g, Options{RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	r, err := rt.Route(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Path) != 1 || r.Path[0] != 5 || r.Length != 0 {
		t.Fatalf("self route %+v", r)
	}
	if err := Validate(g, 5, 5, r); err != nil {
		t.Fatal(err)
	}
}

func TestRouteRejectsOutOfRange(t *testing.T) {
	rng := par.NewRNG(4)
	g := graph.PathGraph(5, 1)
	rt, err := Build(g, Options{RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Route(0, 9); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if _, err := rt.Route(-1, 2); err == nil {
		t.Fatal("negative source accepted")
	}
}

func TestRouteBatchMatchesRoute(t *testing.T) {
	rng := par.NewRNG(5)
	g := graph.GridGraph(6, 6, 3, rng)
	rt, err := Build(g, Options{RNG: rng, Trees: 2})
	if err != nil {
		t.Fatal(err)
	}
	pairs := []frt.Pair{{U: 0, V: 35}, {U: 7, V: 7}, {U: 12, V: 30}}
	rs, err := rt.RouteBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		single, err := rt.Route(p.U, p.V)
		if err != nil {
			t.Fatal(err)
		}
		if rs[i].Length != single.Length || rs[i].Tree != single.Tree {
			t.Fatalf("pair %d: batch %+v vs single %+v", i, rs[i], single)
		}
	}
	if _, err := rt.RouteBatch([]frt.Pair{{U: 0, V: 99}}); err == nil {
		t.Fatal("batch with out-of-range pair accepted")
	}
}

func TestRouteInjectedEnsembleSharesTrees(t *testing.T) {
	rng := par.NewRNG(6)
	g := graph.RandomConnected(40, 100, 5, rng)
	emb, err := frt.NewEmbedder(g, frt.Options{RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	ens, err := emb.SampleEnsemble(4)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Build(g, Options{Ensemble: ens})
	if err != nil {
		t.Fatal(err)
	}
	if rt.NumTrees() != 4 {
		t.Fatalf("built %d trees, want 4", rt.NumTrees())
	}
	// The best-tree certificate must equal the ensemble's Min estimate:
	// Route picks argmin over exactly the injected trees.
	idx, err := ens.Index()
	if err != nil {
		t.Fatal(err)
	}
	pairRNG := par.NewRNG(7)
	for i := 0; i < 30; i++ {
		u := graph.Node(pairRNG.Intn(g.N()))
		v := graph.Node(pairRNG.Intn(g.N()))
		if u == v {
			continue
		}
		r, err := rt.Route(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if min := idx.Min(u, v); r.TreeDist != min {
			t.Fatalf("pair (%d,%d): certificate %v, ensemble Min %v", u, v, r.TreeDist, min)
		}
	}
}

// routingStretchBoundC pins the median routed-path stretch at
// c·log₂ n, mirroring the frt stretch_stat suite: observed medians on the
// fixed seeds are ~1.5–2.5 (log₂ 128 = 7), so c = 1 gives ample headroom
// while an O(log n)-breaking regression fails immediately.
const routingStretchBoundC = 1.0

func TestStatisticalRoutingStretch(t *testing.T) {
	rng := par.NewRNG(301)
	g := graph.RandomConnected(128, 512, 8, rng)
	rt, err := Build(g, Options{RNG: rng, Trees: 4})
	if err != nil {
		t.Fatal(err)
	}
	pairRNG := par.NewRNG(302)
	const pairs = 200
	type q struct {
		u, v graph.Node
	}
	qs := make([]q, 0, pairs)
	for len(qs) < pairs {
		u, v := graph.Node(pairRNG.Intn(g.N())), graph.Node(pairRNG.Intn(g.N()))
		if u != v {
			qs = append(qs, q{u, v})
		}
	}
	bySource := map[graph.Node][]int{}
	for i, p := range qs {
		bySource[p.u] = append(bySource[p.u], i)
	}
	exact := make([]float64, len(qs))
	for src, is := range bySource {
		res := graph.Dijkstra(g, src)
		for _, i := range is {
			exact[i] = res.Dist[qs[i].v]
		}
	}
	stretches := make([]float64, len(qs))
	for i, p := range qs {
		r, err := rt.Route(p.u, p.v)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(g, p.u, p.v, r); err != nil {
			t.Fatal(err)
		}
		if r.Length < exact[i]-1e-9 {
			t.Fatalf("pair (%d,%d): routed length %v beats Dijkstra %v", p.u, p.v, r.Length, exact[i])
		}
		stretches[i] = r.Length / exact[i]
	}
	sort.Float64s(stretches)
	median := stretches[len(stretches)/2]
	bound := routingStretchBoundC * math.Log2(float64(g.N()))
	t.Logf("n=%d pairs=%d median routed stretch %.2f (pinned bound %.2f), p90 %.2f, max %.2f",
		g.N(), len(qs), median, bound, stretches[len(stretches)*9/10], stretches[len(stretches)-1])
	if median > bound {
		t.Fatalf("median routed stretch %.2f exceeds pinned %.1f·log₂(%d) = %.2f",
			median, routingStretchBoundC, g.N(), bound)
	}
}

// TestValidateRejectsBadCertificates: Validate is the routing test oracle,
// so its own rejection branches need pinning — a wrong endpoint, a fake
// edge, a cooked length, and a length above the tree-distance certificate
// must all fail.
func TestValidateRejectsBadCertificates(t *testing.T) {
	g := graph.RandomConnected(24, 60, 8, par.NewRNG(51))
	rt, err := Build(g, Options{RNG: par.NewRNG(52), Trees: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := rt.Route(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, 0, 9, r); err != nil {
		t.Fatalf("genuine route rejected: %v", err)
	}
	if err := Validate(g, 1, 9, r); err == nil {
		t.Fatal("wrong start endpoint accepted")
	}
	fake := &RouteResult{Path: []graph.Node{0, 9}, Length: 1}
	if _, ok := g.HasEdge(0, 9); !ok {
		if err := Validate(g, 0, 9, fake); err == nil {
			t.Fatal("non-edge hop accepted")
		}
	}
	cooked := &RouteResult{Path: r.Path, Length: r.Length / 2, Tree: r.Tree, TreeDist: r.TreeDist}
	if err := Validate(g, 0, 9, cooked); err == nil {
		t.Fatal("cooked length accepted")
	}
	short := &RouteResult{Path: r.Path, Length: r.Length, Tree: r.Tree, TreeDist: r.Length / 2}
	if err := Validate(g, 0, 9, short); err == nil {
		t.Fatal("length above the tree-distance certificate accepted")
	}
}
