package hopset

// TestObservation11 reproduces Observation 1.1 of the paper — the
// motivation for the simulated graph H: a hop set whose d-hop distances
// form a metric must already be exact. Contrapositively, any hop set with
// genuinely approximate d-hop distances must violate the triangle
// inequality on those distances — which is exactly why the FRT construction
// cannot run on d-hop distances directly and the paper introduces H.

import (
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// dHopMatrix collects dist^d(·,·,G′) into a dense matrix.
func dHopMatrix(g *graph.Graph, d int) *graph.Matrix {
	m := graph.NewMatrix(g.N())
	for v := 0; v < g.N(); v++ {
		row := graph.BellmanFord(g, graph.Node(v), d)
		for w := 0; w < g.N(); w++ {
			m.Set(v, w, row[w])
		}
	}
	return m
}

func TestObservation11ExactHopSetYieldsMetric(t *testing.T) {
	// The skeleton hop set is exact (ε̂ = 0): its d-hop distances coincide
	// with the true distances, hence form a metric — the "if" direction of
	// Observation 1.1.
	rng := par.NewRNG(1)
	g := graph.PathGraph(60, 1)
	r := Skeleton(g, 6, 3, rng, nil)
	m := dHopMatrix(r.Graph, r.D)
	if !m.IsMetric(1e-9) {
		t.Fatal("exact hop set's d-hop distances are not a metric")
	}
	exact := graph.APSPDijkstra(g)
	for v := 0; v < g.N(); v++ {
		for w := 0; w < g.N(); w++ {
			if m.At(v, w) != exact.At(v, w) {
				t.Fatalf("(%d,%d): d-hop %v vs exact %v", v, w, m.At(v, w), exact.At(v, w))
			}
		}
	}
}

func TestObservation11ApproximateHopSetViolatesTriangle(t *testing.T) {
	// A landmark hop set with a single landmark is genuinely approximate at
	// d = 2 on a path: dist²(u, v) routes through the landmark and
	// over-estimates. Observation 1.1 then *forces* a triangle violation in
	// dist²(·,·): if dist² were a metric it would be exact, contradicting
	// the approximation. This failure is precisely what the simulated graph
	// H repairs.
	rng := par.NewRNG(2)
	g := graph.PathGraph(40, 1)
	r := Landmark(g, 1, rng, nil)
	m := dHopMatrix(r.Graph, r.D)
	// First establish the approximation is non-trivial (some pair strictly
	// over-estimated)…
	exact := graph.APSPDijkstra(g)
	inexact := false
	for v := 0; v < g.N() && !inexact; v++ {
		for w := 0; w < g.N(); w++ {
			if m.At(v, w) > exact.At(v, w)+1e-9 {
				inexact = true
				break
			}
		}
	}
	if !inexact {
		t.Skip("landmark hop set happened to be exact on this instance")
	}
	// …then Observation 1.1 predicts the triangle inequality must fail.
	if m.IsMetric(1e-9) {
		t.Fatal("approximate d-hop distances form a metric — contradicts Observation 1.1")
	}
}

// TestHRestoresMetricProperty closes the §4 loop: the d-hop distances of an
// approximate hop set are not a metric (previous test), but the shortest
// path metric OF H built on them is one by construction, while still
// approximating G. (H trades "exact distances, many hops" for "approximate
// distances, metric structure, few hops".)
func TestHRestoresMetricProperty(t *testing.T) {
	// This is verified in the simgraph and metric packages
	// (TestApproximateIsAMetric); here we only record the logical chain so
	// the three facts sit next to each other in one test file.
	_ = semiring.Inf
}
