// Package hopset constructs (d, ε̂)-hop sets: extra edges E′ for a graph G
// such that the d-hop distances in G′ = G + E′ (1+ε̂)-approximate the exact
// distances of G (§1.2, Equation 1.3). Hop sets are the first stage of the
// tree-embedding pipeline (§4): they bound the number of MBF-like iterations
// needed before distances stabilise.
//
// The paper invokes Cohen's polylog-hop-set construction [13]. Per the
// reproduction plan (DESIGN.md, substitution 1) this package provides two
// self-contained replacements:
//
//   - Skeleton: an *exact* (O(√(n log n)), 0)-hop set in the style of the
//     skeleton graphs of §8.2 (and Lemma 4.6 of [29]): sample each node with
//     probability Θ(log n / ℓ); w.h.p. every min-hop shortest path has a
//     sampled node within every ℓ consecutive hops, so connecting sampled
//     nodes at their ℓ-hop distances makes every shortest path realisable
//     with few hops, at unchanged length.
//
//   - Landmark: a (2·ℓ_lm+2, ε̂)-hop set with measured ε̂: every node gains
//     an exact-distance edge to each of a few landmark nodes. d is tiny but
//     ε̂ is a workload property, reported by Measure.
//
// Every theorem downstream (Theorem 7.9 in particular) is parameterised only
// by (d, ε̂), which both constructions supply; the experiment E6 bench
// verifies the hop-set inequality empirically for every sampled pair.
package hopset

import (
	"math"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// Kind identifies which construction produced a Result — what Rebuild needs
// to re-run the same construction on an edited graph.
type Kind uint8

const (
	// KindNone is the trivial hop set (G itself).
	KindNone Kind = iota
	// KindSkeleton is the exact skeleton hop set.
	KindSkeleton
	// KindLandmark is the landmark hop set.
	KindLandmark
)

// Result describes a constructed hop set.
type Result struct {
	// Graph is G′ = G augmented with the hop-set edges.
	Graph *graph.Graph
	// D is the hop bound d: dist^D(v,w,G′) ≤ (1+EpsHat)·dist(v,w,G) for
	// all pairs (w.h.p. for the randomised constructions).
	D int
	// EpsHat is the guaranteed distance slack ε̂ (0 for Skeleton; for
	// Landmark it is an a-priori-unknown workload property — use Measure).
	EpsHat float64
	// Added is the number of edges added on top of G.
	Added int
	// Kind records the construction, and Samples its frozen random node set
	// (skeleton nodes or landmarks; nil for KindNone). Ell is the skeleton
	// window length. Together they let Rebuild reproduce the construction on
	// an edited graph with the randomness held fixed.
	Kind    Kind
	Samples []graph.Node
	Ell     int
}

// Rebuild re-runs this hop set's construction on g2 with the same frozen
// random samples — the live-update path: edge edits change the ℓ-hop and
// landmark distances, so the overlay edges must be recomputed, but the
// sampled node sets are randomness that an incremental refresh keeps fixed.
// Node count must be unchanged (edits never add or remove nodes).
func (r *Result) Rebuild(g2 *graph.Graph, tracker *par.Tracker) *Result {
	switch r.Kind {
	case KindSkeleton:
		return SkeletonFrom(g2, r.Samples, r.Ell, tracker)
	case KindLandmark:
		return LandmarkFrom(g2, r.Samples, tracker)
	default:
		return None(g2)
	}
}

// None returns the trivial hop set: G itself with d = n−1 and ε̂ = 0. It is
// the baseline of ablation A3.
func None(g *graph.Graph) *Result {
	d := g.N() - 1
	if d < 1 {
		d = 1
	}
	return &Result{Graph: g, D: d, EpsHat: 0, Added: 0, Kind: KindNone}
}

// Skeleton builds the exact skeleton hop set with window length ell and
// oversampling factor c (sampling probability min(1, c·ln(n)/ell) per node).
// Larger c sharpens the w.h.p. guarantee at the cost of more skeleton nodes.
// The input graph is not modified.
func Skeleton(g *graph.Graph, ell int, c float64, rng *par.RNG, tracker *par.Tracker) *Result {
	n := g.N()
	if ell < 1 {
		ell = 1
	}
	p := c * math.Log(float64(n)+1) / float64(ell)
	if p > 1 {
		p = 1
	}
	var skeleton []graph.Node
	for v := 0; v < n; v++ {
		if rng.Float64() < p {
			skeleton = append(skeleton, graph.Node(v))
		}
	}
	if len(skeleton) == 0 && n > 0 {
		skeleton = append(skeleton, graph.Node(rng.Intn(n)))
	}
	return SkeletonFrom(g, skeleton, ell, tracker)
}

// SkeletonFrom builds the skeleton hop set from an explicit skeleton node
// set — the deterministic core of Skeleton, and what Rebuild uses to refresh
// a hop set on an edited graph with the sampled nodes held fixed.
func SkeletonFrom(g *graph.Graph, skeleton []graph.Node, ell int, tracker *par.Tracker) *Result {
	n := g.N()
	if ell < 1 {
		ell = 1
	}

	// ℓ-hop-limited distances from every skeleton node, in parallel.
	dists := make([][]float64, len(skeleton))
	par.ForEach(len(skeleton), func(i int) {
		dists[i] = graph.BellmanFord(g, skeleton[i], ell)
	})
	tracker.AddPhase(int64(len(skeleton))*int64(ell)*int64(g.M()+1), int64(ell))

	// Accumulate the overlay edges in a Builder seeded with G; Freeze
	// collapses parallel edges to the lightest, so a candidate only
	// survives where it beats the existing weight.
	b := g.Builder()
	for i, s := range skeleton {
		for j := i + 1; j < len(skeleton); j++ {
			t := skeleton[j]
			d := dists[i][t]
			if semiring.IsInf(d) || d <= 0 {
				continue
			}
			b.Add(s, t, d)
		}
	}
	gp := b.Freeze()
	added := gp.M() - g.M()
	tracker.AddPhase(int64(len(skeleton))*int64(len(skeleton)), 1)

	// Hop bound: ℓ hops to reach the first skeleton node, one overlay hop
	// between consecutive sampled nodes of the path (≤ ⌈n/ℓ⌉+1 of them),
	// and ℓ hops from the last skeleton node to the target.
	d := 2*ell + n/ell + 2
	if d > n-1 && n > 1 {
		d = n - 1
	}
	if d < 1 {
		d = 1
	}
	return &Result{Graph: gp, D: d, EpsHat: 0, Added: added, Kind: KindSkeleton, Samples: skeleton, Ell: ell}
}

// DefaultSkeleton builds Skeleton with the balanced window length
// ℓ = ⌈√(n·ln n)⌉ that equalises the two terms of the hop bound, giving
// d ∈ O(√(n log n)).
func DefaultSkeleton(g *graph.Graph, rng *par.RNG, tracker *par.Tracker) *Result {
	n := g.N()
	ell := int(math.Ceil(math.Sqrt(float64(n) * math.Log(float64(n)+2))))
	return Skeleton(g, ell, 2, rng, tracker)
}

// Landmark adds, for each of `count` random landmark nodes, exact-distance
// edges from every node to the landmark. Any v-w path can then be shortcut
// as v→landmark→w in 2 hops; the distance error depends on how well the
// landmarks cover the graph, so EpsHat is reported as NaN and must be
// measured with Measure. The hop bound is 2.
func Landmark(g *graph.Graph, count int, rng *par.RNG, tracker *par.Tracker) *Result {
	n := g.N()
	if count < 1 {
		count = 1
	}
	if count > n {
		count = n
	}
	landmarks := make([]graph.Node, 0, count)
	for _, v := range rng.Perm(n)[:count] {
		landmarks = append(landmarks, graph.Node(v))
	}
	return LandmarkFrom(g, landmarks, tracker)
}

// LandmarkFrom builds the landmark hop set from an explicit landmark set —
// the deterministic core of Landmark, used by Rebuild to refresh the hop set
// on an edited graph with the landmark choice held fixed.
func LandmarkFrom(g *graph.Graph, landmarks []graph.Node, tracker *par.Tracker) *Result {
	n := g.N()
	count := len(landmarks)
	dists := make([]*graph.SSSPResult, count)
	par.ForEach(count, func(i int) {
		dists[i] = graph.Dijkstra(g, landmarks[i])
	})
	tracker.AddPhase(int64(count)*int64(g.M()+g.N()), int64(g.N()))

	b := g.Builder()
	for i, l := range landmarks {
		for v := 0; v < n; v++ {
			d := dists[i].Dist[v]
			if graph.Node(v) == l || semiring.IsInf(d) || d <= 0 {
				continue
			}
			b.Add(graph.Node(v), l, d)
		}
	}
	gp := b.Freeze()
	return &Result{Graph: gp, D: 2, EpsHat: math.NaN(), Added: gp.M() - g.M(), Kind: KindLandmark, Samples: landmarks}
}

// Measure empirically evaluates the hop-set inequality (1.3) on `pairs`
// random node pairs: it returns the maximum observed ratio
// dist^D(v,w,G′) / dist(v,w,G) (the effective 1+ε̂) and the maximum observed
// shrinkage dist(v,w,G′) / dist(v,w,G) (which must be ≥ 1: hop-set edges
// must never shorten distances). This powers experiment E6.
func Measure(g *graph.Graph, r *Result, pairs int, rng *par.RNG) (maxRatio, minRatio float64) {
	n := g.N()
	maxRatio, minRatio = 1, 1
	for i := 0; i < pairs; i++ {
		v := graph.Node(rng.Intn(n))
		exact := graph.Dijkstra(g, v)
		w := graph.Node(rng.Intn(n))
		if v == w {
			continue
		}
		dHop := graph.HopLimitedDistance(r.Graph, v, w, r.D)
		dExact := exact.Dist[w]
		if semiring.IsInf(dExact) {
			continue
		}
		if ratio := dHop / dExact; ratio > maxRatio {
			maxRatio = ratio
		}
		full := graph.Dijkstra(r.Graph, v).Dist[w]
		if ratio := full / dExact; ratio < minRatio {
			minRatio = ratio
		}
	}
	return maxRatio, minRatio
}
