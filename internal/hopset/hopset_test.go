package hopset

import (
	"math"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

func TestNoneIsIdentity(t *testing.T) {
	g := graph.PathGraph(10, 1)
	r := None(g)
	if r.Graph != g || r.Added != 0 || r.EpsHat != 0 {
		t.Fatal("None must return the input graph unchanged")
	}
	if r.D != 9 {
		t.Fatalf("D = %d, want n-1 = 9", r.D)
	}
}

func TestSkeletonPreservesDistancesExactly(t *testing.T) {
	rng := par.NewRNG(1)
	g := graph.RandomConnected(80, 200, 10, rng)
	r := Skeleton(g, 6, 2, rng, nil)
	// Hop-set edges carry path weights, so they must not change any
	// distance.
	for _, src := range []graph.Node{0, 13, 79} {
		before := graph.Dijkstra(g, src).Dist
		after := graph.Dijkstra(r.Graph, src).Dist
		for v := range before {
			if before[v] != after[v] {
				t.Fatalf("skeleton changed dist(%d,%d): %v → %v", src, v, before[v], after[v])
			}
		}
	}
}

func TestSkeletonHopBoundHolds(t *testing.T) {
	rng := par.NewRNG(2)
	// A long path stresses the hop bound most.
	g := graph.PathGraph(120, 1)
	r := Skeleton(g, 8, 3, rng, nil)
	if r.D >= g.N()-1 {
		t.Fatalf("skeleton hop bound %d did not improve over n-1", r.D)
	}
	// Every pair must satisfy dist^D(v,w,G') = dist(v,w,G) (ε̂ = 0).
	for _, v := range []graph.Node{0, 30, 60} {
		exact := graph.Dijkstra(g, v).Dist
		hopd := graph.BellmanFord(r.Graph, v, r.D)
		for w := range exact {
			if hopd[w] != exact[w] {
				t.Fatalf("dist^%d(%d,%d) = %v, want %v", r.D, v, w, hopd[w], exact[w])
			}
		}
	}
}

func TestSkeletonAddsEdges(t *testing.T) {
	rng := par.NewRNG(3)
	g := graph.PathGraph(100, 1)
	r := Skeleton(g, 8, 3, rng, nil)
	if r.Added == 0 {
		t.Fatal("skeleton added no edges on a long path")
	}
	if r.Graph.M() != g.M()+r.Added {
		t.Fatalf("edge accounting wrong: %d vs %d+%d", r.Graph.M(), g.M(), r.Added)
	}
	if g.M() != 99 {
		t.Fatal("input graph was modified")
	}
}

func TestDefaultSkeletonOnRandomGraph(t *testing.T) {
	rng := par.NewRNG(4)
	g := graph.RandomConnected(150, 350, 8, rng)
	r := DefaultSkeleton(g, rng, nil)
	maxRatio, minRatio := Measure(g, r, 30, rng)
	if maxRatio > 1 {
		t.Fatalf("skeleton hop set not exact: max ratio %v", maxRatio)
	}
	if minRatio < 1 {
		t.Fatalf("hop set shortened distances: min ratio %v", minRatio)
	}
}

func TestSkeletonTracksWork(t *testing.T) {
	rng := par.NewRNG(5)
	g := graph.RandomConnected(50, 120, 5, rng)
	tr := &par.Tracker{}
	Skeleton(g, 5, 2, rng, tr)
	if tr.Work() == 0 || tr.Depth() == 0 {
		t.Fatal("tracker not charged")
	}
}

func TestLandmarkTwoHopProperty(t *testing.T) {
	rng := par.NewRNG(6)
	g := graph.RandomConnected(60, 150, 6, rng)
	r := Landmark(g, 5, rng, nil)
	if r.D != 2 {
		t.Fatalf("D = %d, want 2", r.D)
	}
	if !math.IsNaN(r.EpsHat) {
		t.Fatal("landmark ε̂ should be NaN (workload-dependent)")
	}
	// Distances must be preserved exactly by the augmentation...
	for _, src := range []graph.Node{0, 25} {
		before := graph.Dijkstra(g, src).Dist
		after := graph.Dijkstra(r.Graph, src).Dist
		for v := range before {
			if before[v] != after[v] {
				t.Fatalf("landmark changed dist(%d,%d)", src, v)
			}
		}
	}
	// ...and 2-hop distances must at least be finite everywhere and at
	// most the worst detour through the farthest landmark.
	v := graph.Node(0)
	hop2 := graph.BellmanFord(r.Graph, v, 2)
	for w := range hop2 {
		if semiring.IsInf(hop2[w]) {
			t.Fatalf("node %d unreachable in 2 hops after landmark augmentation", w)
		}
	}
}

func TestLandmarkMeasuredStretchReasonable(t *testing.T) {
	rng := par.NewRNG(7)
	g := graph.GridGraph(10, 10, 4, rng)
	r := Landmark(g, 8, rng, nil)
	maxRatio, minRatio := Measure(g, r, 40, rng)
	if minRatio < 1 {
		t.Fatalf("landmark shortened distances: %v", minRatio)
	}
	// With 8 landmarks on a 10×10 grid the two-hop detour should stay well
	// below the trivial worst case (diameter ratio). This is a sanity bound,
	// not a theorem: 10× would indicate a broken construction.
	if maxRatio > 10 {
		t.Fatalf("landmark stretch implausibly large: %v", maxRatio)
	}
}

func TestLandmarkCountClamped(t *testing.T) {
	rng := par.NewRNG(8)
	g := graph.PathGraph(5, 1)
	r := Landmark(g, 100, rng, nil)
	// All nodes become landmarks: the graph becomes a complete graph on
	// reachable pairs with exact weights.
	if r.D != 2 {
		t.Fatal("D must stay 2")
	}
	exact := graph.Dijkstra(g, 0).Dist
	hop2 := graph.BellmanFord(r.Graph, 0, 2)
	for v := range exact {
		if hop2[v] != exact[v] {
			t.Fatalf("full landmark set not exact at node %d", v)
		}
	}
}

func TestSkeletonOnTinyGraph(t *testing.T) {
	rng := par.NewRNG(9)
	g := graph.PathGraph(2, 1)
	r := Skeleton(g, 1, 2, rng, nil)
	if r.D < 1 {
		t.Fatalf("D = %d", r.D)
	}
	if d := graph.BellmanFord(r.Graph, 0, r.D)[1]; d != 1 {
		t.Fatalf("tiny graph distance %v", d)
	}
}
