// Package simgraph implements the simulated graph H of §4 of Friedrichs &
// Lenzen and the oracle of §5 that answers MBF-like queries on H without
// ever materialising it.
//
// Given G′ (the input graph augmented with a (d, ε̂)-hop set), H is the
// complete graph on V whose edge {v,w} has weight
//
//	ω_Λ({v,w}) = (1+ε̂)^{Λ−λ(v,w)} · dist^d(v,w,G′),
//
// where each node's level λ(v) is sampled geometrically (start at 0, raise
// with probability 1/2 per step), Λ is the maximum level, and λ(v,w) =
// min{λ(v), λ(w)}. High-level edges receive smaller penalties and therefore
// attract shortest paths; Lemmas 4.3/4.4 then bound every min-hop shortest
// path of H to O(log n) hops per level and O(log² n) hops overall
// (Theorem 4.5), while distances stay within (1+ε̂)^{Λ+1} of those of G.
//
// Explicitly constructing H would cost Ω(n²) work. Instead the oracle uses
// the decomposition of Lemma 5.1,
//
//	A_H = ⊕_{λ=0}^{Λ} P_λ A_λ^d P_λ,
//
// where P_λ projects onto nodes of level ≥ λ and A_λ is the adjacency
// matrix of G′ scaled by (1+ε̂)^{Λ−λ}: one MBF-like iteration on H becomes
// Λ+1 parallel runs of d filtered iterations on G′ (Equation 5.9),
// re-filtered and aggregated — which is valid precisely because filters are
// representative projections of congruence relations (Corollary 2.17).
package simgraph

import (
	"math"
	"sync"
	"sync/atomic"

	"parmbf/internal/graph"
	"parmbf/internal/hopset"
	"parmbf/internal/mbf"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// H is the implicit simulated graph.
type H struct {
	// Hop is the underlying (d, ε̂)-hop-set result; Hop.Graph is G′.
	Hop *hopset.Result
	// Level[v] is λ(v).
	Level []int
	// Lambda is Λ, the maximum sampled level.
	Lambda int
	// EpsHat is the penalty base ε̂ of the level weights ω_Λ.
	EpsHat float64
	// scale[λ] caches (1+ε̂)^{Λ−λ}.
	scale []float64
}

// DefaultEpsHat returns the penalty base used when the caller passes 0:
// ε̂ = 1/⌈log₂ n⌉², which keeps the accumulated stretch
// (1+ε̂)^{Λ+1} ⊆ 1 + O(1/log n) (Equation 4.16).
func DefaultEpsHat(n int) float64 {
	l := math.Ceil(math.Log2(float64(n) + 2))
	return 1 / (l * l)
}

// Build samples levels for the nodes of the hop-set graph and assembles the
// implicit simulated graph. epsHat = 0 selects DefaultEpsHat; a negative
// epsHat disables the level penalty entirely (all scales 1) — this breaks
// the premises of Lemmas 4.3/4.4 and is provided only for the ablation
// experiment A2, which measures how SPD(H) degrades without the penalty.
func Build(hs *hopset.Result, epsHat float64, rng *par.RNG) *H {
	n := hs.Graph.N()
	if epsHat == 0 {
		epsHat = DefaultEpsHat(n)
	} else if epsHat < 0 {
		epsHat = 0 // no penalty: (1+0)^{Λ−λ} = 1 for every level
	}
	level := make([]int, n)
	lambda := 0
	for v := range level {
		level[v] = rng.Geometric(0.5)
		if level[v] > lambda {
			lambda = level[v]
		}
	}
	h := &H{Hop: hs, Level: level, Lambda: lambda, EpsHat: epsHat}
	h.scale = make([]float64, lambda+1)
	for l := 0; l <= lambda; l++ {
		h.scale[l] = math.Pow(1+epsHat, float64(lambda-l))
	}
	return h
}

// WithHop returns a new H over a refreshed hop set, keeping the frozen
// level assignment, Λ, ε̂, and scale table — the live-update path: edge
// edits change the underlying metric (and thus the hop-set overlay) but the
// per-node level randomness stays fixed. The hop set must cover the same
// node count. Returning a fresh H (rather than mutating) matters: Oracle
// caches its per-level runners keyed by H identity, so a new pointer
// invalidates stale runners naturally.
func (h *H) WithHop(hop *hopset.Result) *H {
	return &H{Hop: hop, Level: h.Level, Lambda: h.Lambda, EpsHat: h.EpsHat, scale: h.scale}
}

// N returns the number of nodes of H.
func (h *H) N() int { return len(h.Level) }

// EdgeLevel returns λ(v,w) = min{λ(v), λ(w)}.
func (h *H) EdgeLevel(v, w graph.Node) int {
	lv, lw := h.Level[v], h.Level[w]
	if lw < lv {
		return lw
	}
	return lv
}

// EdgeWeight returns ω_Λ({v,w}) (Equation 4.2), computing dist^d(v,w,G′) on
// demand. It is intended for tests and spot checks — sweeping all pairs
// costs the Ω(n²) work the oracle exists to avoid.
func (h *H) EdgeWeight(v, w graph.Node) float64 {
	if v == w {
		return 0
	}
	d := graph.HopLimitedDistance(h.Hop.Graph, v, w, h.Hop.D)
	if semiring.IsInf(d) {
		return semiring.Inf
	}
	return h.scale[h.EdgeLevel(v, w)] * d
}

// Materialize constructs H explicitly as a weighted graph — Θ(n·d·m) work —
// for validation experiments (E2/E3) on small inputs.
func (h *H) Materialize() *graph.Graph {
	n := h.N()
	gp := h.Hop.Graph
	out := graph.NewBuilder(n)
	rows := make([][]float64, n)
	par.ForEach(n, func(v int) {
		rows[v] = graph.BellmanFord(gp, graph.Node(v), h.Hop.D)
	})
	for v := 0; v < n; v++ {
		for w := v + 1; w < n; w++ {
			d := rows[v][w]
			if semiring.IsInf(d) {
				continue
			}
			out.Add(graph.Node(v), graph.Node(w), h.scale[h.EdgeLevel(graph.Node(v), graph.Node(w))]*d)
		}
	}
	return out.Freeze()
}

// Oracle answers MBF-like queries on H over the distance-map semimodule D
// (Theorem 5.2). It is safe for sequential reuse across queries but NOT for
// concurrent use: the per-level runners (and their scratch pools) cached on
// the oracle are reconfigured by every Iterate/RunToFixpoint call. Use one
// Oracle per goroutine, as the Embedder does.
type Oracle struct {
	H       *H
	Tracker *par.Tracker

	// FilterInPlace, if non-nil, must compute the same function as the
	// filter argument passed to Iterate/Run/RunToFixpoint but may reuse its
	// argument's storage. It is applied only to values the oracle owns
	// exclusively (freshly merged aggregation results), mirroring
	// mbf.Runner.FilterInPlace.
	FilterInPlace semiring.Filter[semiring.DistMap]

	// scratch recycles the per-worker buffers of the cross-level merge of
	// Equation 5.9.
	scratch sync.Pool // *levelScratch
	// runners holds one lazily built per-level runner (index λ). A runner
	// owns the sparse engine's pooled scratch, so keeping them alive across
	// oracle iterations — a fixpoint run performs O(log² n) of them over
	// Λ+1 levels — lets those pools actually recycle; per-call fields
	// (Filter, FilterInPlace, Tracker) are refreshed on every use, and the
	// cache is keyed to runnersH so swapping the H field rebuilds it.
	runners  []*mbf.Runner[float64, semiring.DistMap]
	runnersH *H
}

// levelScratch is one worker's reusable state for the ⊕_λ aggregation.
type levelScratch struct {
	terms []semiring.Term[float64, semiring.DistMap]
	sc    semiring.Scratch
}

// NewOracle returns an oracle for H charging work/depth to tracker (which
// may be nil).
func NewOracle(h *H, tracker *par.Tracker) *Oracle {
	return &Oracle{H: h, Tracker: tracker}
}

// project applies P_λ: entries at nodes of level < λ are reset to ⊥.
func (o *Oracle) project(x []semiring.DistMap, lambda int) []semiring.DistMap {
	if lambda == 0 {
		return x // P_0 is the identity: every node has level ≥ 0.
	}
	out := make([]semiring.DistMap, len(x))
	for v := range x {
		if o.H.Level[v] >= lambda {
			out[v] = x[v]
		}
	}
	return out
}

// Iterate simulates one MBF-like iteration on H:
//
//	x ↦ r^V ( ⊕_{λ=0}^{Λ} P_λ (r^V A_λ)^d P_λ x )
//
// (Equation 5.9). filter must be a representative projection of a
// congruence relation on D; Corollary 2.17 guarantees the result equals the
// unfiltered iteration r^V(A_H x).
func (o *Oracle) Iterate(x []semiring.DistMap, filter semiring.Filter[semiring.DistMap]) []semiring.DistMap {
	out, _ := o.iterate(x, filter, false)
	return out
}

// iterate is Iterate plus optional change detection: with detect set, the
// cross-level merge pass also compares every node's new state against its
// old one (short-circuiting once a difference is found) and reports whether
// anything changed — the fixpoint test fused into the pass that already
// owns the data, replacing a separate full-vector Equal scan.
func (o *Oracle) iterate(x []semiring.DistMap, filter semiring.Filter[semiring.DistMap], detect bool) ([]semiring.DistMap, bool) {
	h := o.H
	gp := h.Hop.Graph
	n := len(x)
	if o.runnersH != h {
		o.runners = make([]*mbf.Runner[float64, semiring.DistMap], h.Lambda+1)
		for lambda := range o.runners {
			scale := h.scale[lambda]
			o.runners[lambda] = &mbf.Runner[float64, semiring.DistMap]{
				Graph:  gp,
				Module: semiring.DistMapModule{},
				Weight: func(_, _ graph.Node, w float64) float64 { return scale * w },
				Size:   func(m semiring.DistMap) int { return m.Len() + 1 },
			}
		}
		o.runnersH = h
	}
	// ⊕_λ is folded incrementally: acc carries r(⊕_{λ'≤λ} P_λ' …) and each
	// level's result vector is dropped as soon as it is merged in, so the
	// iteration retains two n-vectors instead of Λ+1 of them — at n = 2^20
	// and Λ ≈ 20 that is the difference between ~100 MB and ~1 GB of slice
	// headers alone. Filtering between partial merges is exact, not an
	// approximation: a representative projection satisfies
	// r(r(a⊕b)⊕c) = r(a⊕b⊕c) (Lemma 2.16 / Corollary 2.17), so the folded
	// result equals the one-shot (Λ+1)-way merge entry for entry. The fold
	// order λ = 0, 1, …, Λ is fixed, keeping the output deterministic at any
	// parallel width.
	var agg semiring.DistMapModule
	var acc []semiring.DistMap
	accOwned := false // acc entries are fresh merge outputs (in-place filterable)
	var diff atomic.Bool
	for lambda := 0; lambda <= h.Lambda; lambda++ {
		runner := o.runners[lambda]
		runner.Filter = filter
		runner.FilterInPlace = o.FilterInPlace
		// Note: per-level runs are independent (they would execute in
		// parallel in the PRAM formulation), so each charges its own
		// work; the oracle charges the depth of the deepest level once.
		runner.Tracker = o.Tracker
		y := o.project(x, lambda)
		// (r^V A_λ)^d y through the frontier-driven sparse fixpoint engine:
		// once the filtered states stop changing the remaining iterations up
		// to d are identities, so the result is exactly the d-iteration
		// product, and late sparse iterations re-aggregate only the nodes
		// still in motion (the common case — d is the worst-case hop bound
		// of the hop set). This inner loop is the hot path of Embedder
		// builds.
		y, _ = runner.RunToFixpoint(y, h.Hop.D)
		lvl := o.project(y, lambda)
		if acc == nil {
			// Level 0 seeds the accumulator. The vector is ours (the runner
			// builds a fresh one) but its entries may alias the caller's
			// states, so only pure filters may touch them.
			acc = lvl
			continue
		}
		final := lambda == h.Lambda
		par.ForEach(n, func(v int) {
			st, _ := o.scratch.Get().(*levelScratch)
			if st == nil {
				st = new(levelScratch)
			}
			terms := append(st.terms[:0],
				semiring.Term[float64, semiring.DistMap]{X: acc[v]},
				semiring.Term[float64, semiring.DistMap]{X: lvl[v]})
			merged := agg.Aggregate(&st.sc, semiring.DistMap{}, terms)
			if o.FilterInPlace != nil {
				acc[v] = o.FilterInPlace(merged)
			} else {
				acc[v] = filter(merged)
			}
			if final && detect && !diff.Load() && !agg.Equal(acc[v], x[v]) {
				diff.Store(true)
			}
			terms[0], terms[1] = semiring.Term[float64, semiring.DistMap]{}, semiring.Term[float64, semiring.DistMap]{}
			st.terms = terms[:0]
			o.scratch.Put(st)
		})
		accOwned = true
	}
	if !accOwned {
		// Single-level graph (Λ = 0): the merge loop never ran, so apply the
		// final filter and change detection in one pass. acc entries may
		// alias the input states — the pure filter is mandatory here.
		out := make([]semiring.DistMap, n)
		par.ForEach(n, func(v int) {
			out[v] = filter(acc[v])
			if detect && !diff.Load() && !agg.Equal(out[v], x[v]) {
				diff.Store(true)
			}
		})
		return out, diff.Load()
	}
	return acc, diff.Load()
}

// Run performs h MBF-like iterations on H starting from x0.
func (o *Oracle) Run(x0 []semiring.DistMap, filter semiring.Filter[semiring.DistMap], iters int) []semiring.DistMap {
	x := make([]semiring.DistMap, len(x0))
	for i, s := range x0 {
		x[i] = filter(s)
	}
	for i := 0; i < iters; i++ {
		x = o.Iterate(x, filter)
	}
	return x
}

// RunToFixpoint iterates on H until the filtered states stop changing or
// maxIters is hit, returning the states and the number of iterations
// performed — including the final iteration that confirms the fixpoint.
// Since SPD(H) ∈ O(log² n) w.h.p. (Theorem 4.5), the fixpoint arrives after
// polylogarithmically many oracle iterations. Change detection is fused
// into the cross-level merge pass (no separate vector comparison), and the
// per-level inner loops run on the sparse frontier engine.
func (o *Oracle) RunToFixpoint(x0 []semiring.DistMap, filter semiring.Filter[semiring.DistMap], maxIters int) ([]semiring.DistMap, int) {
	x := make([]semiring.DistMap, len(x0))
	for i, s := range x0 {
		x[i] = filter(s)
	}
	for it := 1; it <= maxIters; it++ {
		next, changed := o.iterate(x, filter, true)
		x = next
		if !changed {
			return x, it
		}
	}
	return x, maxIters
}

// MaxIters returns the default iteration cap 4·(⌈log₂ n⌉+1)², comfortably
// above the O(log² n) w.h.p. bound on SPD(H) of Theorem 4.5.
func MaxIters(n int) int {
	l := int(math.Ceil(math.Log2(float64(n)+2))) + 1
	return 4 * l * l
}
