package simgraph

import (
	"sync/atomic"

	"parmbf/internal/graph"
	"parmbf/internal/mbf"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// This file generalises the oracle beyond the distance-map semimodule,
// realising Remark 5.3 of the paper: Theorem 5.2 is stated for D for
// concreteness, but the decomposition A_H = ⊕_λ P_λ A_λ^d P_λ works for any
// zero-preserving semimodule whose aggregation the caller can supply. The
// generic oracle needs three algebra-specific ingredients:
//
//   - Weight: how a level-scaled edge weight becomes a semiring element
//     (the entries of A_λ);
//   - the Module and Filter of the MBF-like algorithm;
//   - nothing else — projection P_λ is "reset to ⊥", and cross-level
//     aggregation is the module's ⊕.
//
// The distance-map Oracle of oracle-fame is the M = D specialisation; the
// tests validate the generic version with the routing semimodule (next-hop
// tables on H).
type GenericOracle[S, M any] struct {
	H      *H
	Module semiring.Semimodule[S, M]
	Filter semiring.Filter[M]
	// FilterInPlace, if non-nil, must compute the same function as Filter
	// but may reuse its argument's storage; it is forwarded to the per-level
	// runners, which apply it only on the aggregation fast path (see
	// mbf.Runner.FilterInPlace).
	FilterInPlace semiring.Filter[M]
	// Weight converts a level-scaled graph edge weight into the A_λ entry
	// for the arc from→to.
	Weight  func(from, to graph.Node, scaled float64) S
	Tracker *par.Tracker

	// runners holds one lazily built per-level runner, kept alive across
	// oracle iterations so the sparse engine's pooled scratch recycles
	// (mirroring the distance-map Oracle); per-call fields are refreshed
	// on every use and the cache is keyed to runnersH so swapping H
	// rebuilds it. Like Oracle, a GenericOracle is safe for sequential
	// reuse but not for concurrent use.
	runners  []*mbf.Runner[S, M]
	runnersH *H
}

func (o *GenericOracle[S, M]) filter(x M) M {
	if o.Filter == nil {
		return x
	}
	return o.Filter(x)
}

// project applies P_λ, resetting entries below level lambda to ⊥.
func (o *GenericOracle[S, M]) project(x []M, lambda int) []M {
	if lambda == 0 {
		return x
	}
	out := make([]M, len(x))
	for v := range x {
		if o.H.Level[v] >= lambda {
			out[v] = x[v]
		} else {
			out[v] = o.Module.Zero()
		}
	}
	return out
}

// Iterate simulates one MBF-like iteration on H over the generic module
// (Equation 5.9).
func (o *GenericOracle[S, M]) Iterate(x []M) []M {
	out, _ := o.iterate(x, false)
	return out
}

// iterate is Iterate plus optional change detection fused into the
// cross-level aggregation pass (short-circuiting once any node differs),
// mirroring the distance-map oracle.
func (o *GenericOracle[S, M]) iterate(x []M, detect bool) ([]M, bool) {
	h := o.H
	gp := h.Hop.Graph
	perLevel := make([][]M, h.Lambda+1)
	if o.runnersH != h {
		o.runners = make([]*mbf.Runner[S, M], h.Lambda+1)
		for lambda := range o.runners {
			scale := h.scale[lambda]
			o.runners[lambda] = &mbf.Runner[S, M]{
				Graph: gp,
				// The closure reads o.Weight at call time, so swapping the
				// oracle's Weight between runs stays visible.
				Weight: func(from, to graph.Node, w float64) S {
					return o.Weight(from, to, scale*w)
				},
			}
		}
		o.runnersH = h
	}
	for lambda := 0; lambda <= h.Lambda; lambda++ {
		runner := o.runners[lambda]
		runner.Module = o.Module
		runner.Filter = o.Filter
		runner.FilterInPlace = o.FilterInPlace
		runner.Tracker = o.Tracker
		y := o.project(x, lambda)
		// (r^V A_λ)^d y via the sparse frontier engine: identical to d dense
		// iterations (stable states stay stable), cheaper whenever the level
		// reaches its fixpoint before the hop bound d.
		y, _ = runner.RunToFixpoint(y, h.Hop.D)
		perLevel[lambda] = o.project(y, lambda)
	}
	out := make([]M, len(x))
	var diff atomic.Bool
	par.ForEach(len(x), func(v int) {
		acc := o.Module.Zero()
		for lambda := 0; lambda <= h.Lambda; lambda++ {
			acc = o.Module.Add(acc, perLevel[lambda][v])
		}
		out[v] = o.filter(acc)
		if detect && !diff.Load() && !o.Module.Equal(out[v], x[v]) {
			diff.Store(true)
		}
	})
	return out, diff.Load()
}

// Run performs iters iterations on H starting from x0.
func (o *GenericOracle[S, M]) Run(x0 []M, iters int) []M {
	x := make([]M, len(x0))
	for i, s := range x0 {
		x[i] = o.filter(s)
	}
	for i := 0; i < iters; i++ {
		x = o.Iterate(x)
	}
	return x
}

// RunToFixpoint iterates until the states stop changing or maxIters is hit,
// returning the states and the number of iterations performed — including
// the final iteration that confirms the fixpoint.
func (o *GenericOracle[S, M]) RunToFixpoint(x0 []M, maxIters int) ([]M, int) {
	x := make([]M, len(x0))
	for i, s := range x0 {
		x[i] = o.filter(s)
	}
	for it := 1; it <= maxIters; it++ {
		next, changed := o.iterate(x, true)
		x = next
		if !changed {
			return x, it
		}
	}
	return x, maxIters
}
