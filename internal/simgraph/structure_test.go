package simgraph

// Structural tests of §4: Lemma 4.3 (min-hop shortest paths in H never use
// an edge below the level of their endpoints — levels first rise, then
// fall) and the per-level hop bound that drives Theorem 4.5.

import (
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/hopset"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// minHopShortestPath returns one min-hop shortest v-w-path in hg (node
// sequence), using Dijkstra's (dist, hops) relaxation and parent pointers.
func minHopShortestPath(hg *graph.Graph, v, w graph.Node) []graph.Node {
	return graph.Dijkstra(hg, v).PathTo(w)
}

func TestLemma43MinHopPathsRespectLevels(t *testing.T) {
	rng := par.NewRNG(1)
	g := graph.PathGraph(80, 1)
	hs := hopset.DefaultSkeleton(g, rng, nil)
	h := Build(hs, 0, rng)
	hg := h.Materialize()

	for _, pair := range [][2]graph.Node{{0, 79}, {5, 60}, {20, 75}, {3, 42}} {
		v, w := pair[0], pair[1]
		path := minHopShortestPath(hg, v, w)
		if path == nil {
			t.Fatalf("no path %d→%d in H", v, w)
		}
		lam := h.EdgeLevel(v, w)
		// Lemma 4.3: every edge of the path has level ≥ λ(v, w).
		for i := 1; i < len(path); i++ {
			if el := h.EdgeLevel(path[i-1], path[i]); el < lam {
				t.Fatalf("edge {%d,%d} of min-hop SP has level %d < λ(%d,%d) = %d",
					path[i-1], path[i], el, v, w, lam)
			}
		}
		// Monotone rise then fall of edge levels along the path.
		levels := make([]int, 0, len(path)-1)
		for i := 1; i < len(path); i++ {
			levels = append(levels, h.EdgeLevel(path[i-1], path[i]))
		}
		peak := 0
		for i := 1; i < len(levels); i++ {
			if levels[i] > levels[peak] {
				peak = i
			}
		}
		for i := 1; i <= peak; i++ {
			if levels[i] < levels[i-1] {
				t.Fatalf("levels not monotone rising before peak: %v", levels)
			}
		}
		for i := peak + 1; i < len(levels); i++ {
			if levels[i] > levels[i-1] {
				t.Fatalf("levels not monotone falling after peak: %v", levels)
			}
		}
	}
}

func TestHighLevelNodesHaveShortPathsBetweenThem(t *testing.T) {
	// The mechanism behind Lemma 4.4: pairs of high-level nodes connect via
	// few hops in H, because their direct edge carries a small penalty.
	rng := par.NewRNG(2)
	g := graph.PathGraph(100, 1)
	hs := hopset.DefaultSkeleton(g, rng, nil)
	h := Build(hs, 0, rng)
	hg := h.Materialize()
	spd := graph.SPD(hg)
	// Theorem 4.5's envelope at this size.
	if cap := MaxIters(g.N()); spd > cap {
		t.Fatalf("SPD(H) = %d above cap %d", spd, cap)
	}
	// Top-level nodes are pairwise within 1 hop of optimal: their direct
	// edge is unpenalised.
	var top []graph.Node
	for v, l := range h.Level {
		if l == h.Lambda {
			top = append(top, graph.Node(v))
		}
	}
	if len(top) >= 2 {
		v, w := top[0], top[1]
		res := graph.Dijkstra(hg, v)
		direct, _ := hg.HasEdge(v, w)
		if res.Dist[w] < direct-1e-9 && res.Hops[w] > 2*h.Lambda+2 {
			t.Fatalf("top-level pair needs %d hops", res.Hops[w])
		}
	}
}

func TestQuickOracleSingleSourceMatchesExplicitH(t *testing.T) {
	// Property check over seeds: oracle SSSP-style queries (source
	// detection from one node) match explicit-H distances.
	for seed := uint64(10); seed < 15; seed++ {
		rng := par.NewRNG(seed)
		g := graph.RandomConnected(30, 70, 5, rng)
		hs := hopset.DefaultSkeleton(g, rng, nil)
		h := Build(hs, 0, rng)
		oracle := NewOracle(h, nil)
		x0 := make([]distMap, h.N())
		x0[0] = semiring.SingletonDist(0, 0)
		identity := identityFilter()
		got, _ := oracle.RunToFixpoint(x0, identity, MaxIters(h.N()))
		exact := graph.Dijkstra(h.Materialize(), 0)
		for v := 0; v < h.N(); v++ {
			d := got[v].Get(0)
			if diff := d - exact.Dist[v]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("seed %d node %d: oracle %v vs explicit %v", seed, v, d, exact.Dist[v])
			}
		}
	}
}

// local aliases keeping the property test terse.
type distMap = semiring.DistMap

func identityFilter() semiring.Filter[semiring.DistMap] {
	return semiring.Identity[semiring.DistMap]()
}
