package simgraph

import (
	"math"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/hopset"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// TestGenericOracleDistMapMatchesSpecialised runs the generic oracle with
// the distance-map module and checks it agrees with the specialised Oracle.
func TestGenericOracleDistMapMatchesSpecialised(t *testing.T) {
	rng := par.NewRNG(1)
	g := graph.RandomConnected(35, 80, 6, rng)
	hs := hopset.DefaultSkeleton(g, rng, nil)
	h := Build(hs, 0, rng)
	x0 := make([]semiring.DistMap, h.N())
	for v := range x0 {
		x0[v] = semiring.SingletonDist(graph.Node(v), 0)
	}
	filter := semiring.TopKFilter(4, semiring.Inf, nil)

	spec := NewOracle(h, nil)
	want, _ := spec.RunToFixpoint(x0, filter, MaxIters(h.N()))

	gen := &GenericOracle[float64, semiring.DistMap]{
		H:      h,
		Module: semiring.DistMapModule{},
		Filter: filter,
		Weight: func(_, _ graph.Node, scaled float64) float64 { return scaled },
	}
	got, _ := gen.RunToFixpoint(x0, MaxIters(h.N()))

	mod := semiring.DistMapModule{}
	for v := range want {
		if !mod.Equal(got[v], want[v]) {
			t.Fatalf("node %d: generic %v ≠ specialised %v", v, got[v], want[v])
		}
	}
}

// TestGenericOracleRoutingOnH is Remark 5.3 in action: an MBF-like query
// with a *different* semimodule — next-hop routing tables — answered on the
// implicit graph H. Distances must equal the distance-map oracle's, and
// every recorded next hop must be a G′ neighbor that makes progress.
func TestGenericOracleRoutingOnH(t *testing.T) {
	rng := par.NewRNG(2)
	g := graph.RandomConnected(30, 70, 5, rng)
	hs := hopset.DefaultSkeleton(g, rng, nil)
	h := Build(hs, 0, rng)
	n := h.N()

	// Reference: exact distances of the explicit H.
	exact := graph.APSPDijkstra(h.Materialize())

	routes := &GenericOracle[semiring.Hop, semiring.RouteMap]{
		H:      h,
		Module: semiring.RouteMapModule{},
		Weight: func(_, to graph.Node, scaled float64) semiring.Hop {
			return semiring.Hop{W: scaled, Via: to}
		},
	}
	x0 := make([]semiring.RouteMap, n)
	for v := range x0 {
		x0[v] = semiring.RouteMap{{Target: graph.Node(v), Dist: 0, Next: semiring.NoVia}}
	}
	got, iters := routes.RunToFixpoint(x0, MaxIters(n))
	if iters >= MaxIters(n) {
		t.Fatal("routing oracle did not converge")
	}

	gp := h.Hop.Graph
	for v := 0; v < n; v++ {
		if len(got[v]) != n {
			t.Fatalf("node %d has %d routes, want %d", v, len(got[v]), n)
		}
		for w := 0; w < n; w++ {
			r, ok := got[v].Get(graph.Node(w))
			if !ok {
				t.Fatalf("missing route (%d,%d)", v, w)
			}
			if math.Abs(r.Dist-exact.At(v, w)) > 1e-9 {
				t.Fatalf("route (%d,%d) dist %v, want %v", v, w, r.Dist, exact.At(v, w))
			}
			if v == w {
				continue
			}
			// The next hop is a G′ neighbor of v (the oracle routes along
			// G′ edges, which realise H's paths).
			if r.Next == semiring.NoVia {
				t.Fatalf("route (%d,%d) has no next hop", v, w)
			}
			if _, ok := gp.HasEdge(graph.Node(v), r.Next); !ok {
				t.Fatalf("route (%d,%d): next hop %d not a G′ neighbor", v, w, r.Next)
			}
		}
	}
}

func TestGenericOracleRunFixedIterations(t *testing.T) {
	rng := par.NewRNG(3)
	g := graph.PathGraph(20, 1)
	hs := hopset.DefaultSkeleton(g, rng, nil)
	h := Build(hs, 0, rng)
	gen := &GenericOracle[float64, semiring.DistMap]{
		H:      h,
		Module: semiring.DistMapModule{},
		Weight: func(_, _ graph.Node, scaled float64) float64 { return scaled },
	}
	x0 := make([]semiring.DistMap, h.N())
	x0[0] = semiring.SingletonDist(0, 0)
	out := gen.Run(x0, 2)
	if len(out) != h.N() {
		t.Fatal("wrong output length")
	}
	// After ≥1 iterations, node 0's entry must have spread somewhere.
	spread := 0
	for _, x := range out {
		if !semiring.IsInf(x.Get(0)) {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("information did not propagate: %d nodes reached", spread)
	}
}
