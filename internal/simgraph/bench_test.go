package simgraph

import (
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/hopset"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

// BenchmarkOracleIterate measures one simulated iteration on H (Equation
// 5.9): Λ+1 levels of d filtered iterations on G′ plus the cross-level
// k-way merge, over the distance-map semimodule with a top-8 filter.
func BenchmarkOracleIterate(b *testing.B) {
	g := graph.RandomConnected(256, 1024, 8, par.NewRNG(11))
	hs := hopset.DefaultSkeleton(g, par.NewRNG(12), nil)
	h := Build(hs, 0, par.NewRNG(13))
	oracle := NewOracle(h, nil)
	oracle.FilterInPlace = semiring.TopKFilterInPlace(8, semiring.Inf, nil)
	filter := semiring.TopKFilter(8, semiring.Inf, nil)
	x := make([]semiring.DistMap, g.N())
	for v := range x {
		x[v] = semiring.SingletonDist(graph.Node(v), 0)
	}
	x = oracle.Run(x, filter, 1) // warm the states into their filtered shape
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracle.Iterate(x, filter)
	}
}
