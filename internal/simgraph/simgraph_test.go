package simgraph

import (
	"math"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/hopset"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
)

func buildH(seed uint64, n, m int) (*graph.Graph, *H) {
	rng := par.NewRNG(seed)
	g := graph.RandomConnected(n, m, 8, rng)
	hs := hopset.DefaultSkeleton(g, rng, nil)
	return g, Build(hs, 0, rng)
}

func TestBuildLevels(t *testing.T) {
	_, h := buildH(1, 60, 150)
	maxLevel := 0
	for _, l := range h.Level {
		if l < 0 {
			t.Fatalf("negative level %d", l)
		}
		if l > maxLevel {
			maxLevel = l
		}
	}
	if h.Lambda != maxLevel {
		t.Fatalf("Lambda = %d, max level = %d", h.Lambda, maxLevel)
	}
	if len(h.scale) != h.Lambda+1 {
		t.Fatal("scale cache size wrong")
	}
	// Scales decrease with level: high levels are cheaper.
	for l := 1; l <= h.Lambda; l++ {
		if h.scale[l] >= h.scale[l-1] {
			t.Fatalf("scale not decreasing: scale[%d]=%v scale[%d]=%v", l-1, h.scale[l-1], l, h.scale[l])
		}
	}
	if h.scale[h.Lambda] != 1 {
		t.Fatalf("top level scale = %v, want 1", h.scale[h.Lambda])
	}
}

func TestDefaultEpsHatSmall(t *testing.T) {
	for _, n := range []int{10, 100, 10000} {
		e := DefaultEpsHat(n)
		if e <= 0 || e > 0.1 {
			t.Fatalf("DefaultEpsHat(%d) = %v", n, e)
		}
	}
}

func TestEdgeLevelIsMin(t *testing.T) {
	_, h := buildH(2, 30, 70)
	for v := 0; v < 10; v++ {
		for w := 0; w < 10; w++ {
			want := h.Level[v]
			if h.Level[w] < want {
				want = h.Level[w]
			}
			if got := h.EdgeLevel(graph.Node(v), graph.Node(w)); got != want {
				t.Fatalf("EdgeLevel(%d,%d) = %d, want %d", v, w, got, want)
			}
		}
	}
}

// TestHDistanceSandwich is experiment E3 in miniature (Theorem 4.5,
// Equation 4.14): dist_G ≤ dist_H ≤ (1+ε̂)^{Λ+1} · dist_G.
func TestHDistanceSandwich(t *testing.T) {
	g, h := buildH(3, 50, 120)
	hg := h.Materialize()
	exactG := graph.APSPDijkstra(g)
	exactH := graph.APSPDijkstra(hg)
	bound := math.Pow(1+h.EpsHat, float64(h.Lambda+1))
	for v := 0; v < g.N(); v++ {
		for w := 0; w < g.N(); w++ {
			dg, dh := exactG.At(v, w), exactH.At(v, w)
			if dh < dg-1e-9 {
				t.Fatalf("dist_H(%d,%d)=%v below dist_G=%v", v, w, dh, dg)
			}
			if dh > bound*dg+1e-9 {
				t.Fatalf("dist_H(%d,%d)=%v exceeds (1+ε̂)^{Λ+1}·dist_G=%v", v, w, dh, bound*dg)
			}
		}
	}
}

// TestSPDOfHIsSmall is experiment E2 in miniature (Theorem 4.5):
// SPD(H) ∈ O(log² n) w.h.p., compared against SPD of the original graph on
// a workload engineered to have large SPD.
func TestSPDOfHIsSmall(t *testing.T) {
	rng := par.NewRNG(4)
	g := graph.PathGraph(100, 1) // SPD(G) = 99
	hs := hopset.DefaultSkeleton(g, rng, nil)
	h := Build(hs, 0, rng)
	spd := graph.SPD(h.Materialize())
	if cap := MaxIters(g.N()); spd > cap {
		t.Fatalf("SPD(H) = %d exceeds O(log² n) cap %d", spd, cap)
	}
	if spd >= 99 {
		t.Fatalf("SPD(H) = %d did not improve over SPD(G) = 99", spd)
	}
}

func TestEdgeWeightMatchesMaterialized(t *testing.T) {
	_, h := buildH(5, 25, 60)
	hg := h.Materialize()
	for v := graph.Node(0); v < 10; v++ {
		for w := v + 1; w < 10; w++ {
			want, ok := hg.HasEdge(v, w)
			if !ok {
				t.Fatalf("H not complete at {%d,%d}", v, w)
			}
			if got := h.EdgeWeight(v, w); math.Abs(got-want) > 1e-9 {
				t.Fatalf("EdgeWeight(%d,%d) = %v, want %v", v, w, got, want)
			}
		}
	}
	if h.EdgeWeight(3, 3) != 0 {
		t.Fatal("EdgeWeight(v,v) should be 0")
	}
}

// TestOracleMatchesExplicitH is the central correctness test of the §5
// decomposition: running APSP through the oracle must produce exactly the
// distances of the explicitly materialised H.
func TestOracleMatchesExplicitH(t *testing.T) {
	_, h := buildH(6, 40, 90)
	n := h.N()
	oracle := NewOracle(h, nil)
	x0 := make([]semiring.DistMap, n)
	for v := range x0 {
		x0[v] = semiring.SingletonDist(graph.Node(v), 0)
	}
	identity := semiring.Identity[semiring.DistMap]()
	got, iters := oracle.RunToFixpoint(x0, identity, MaxIters(n))
	if iters >= MaxIters(n) {
		t.Fatalf("oracle did not reach a fixpoint within %d iterations", MaxIters(n))
	}
	exactH := graph.APSPDijkstra(h.Materialize())
	for v := 0; v < n; v++ {
		for w := 0; w < n; w++ {
			want := exactH.At(v, w)
			if gotD := got[v].Get(graph.Node(w)); math.Abs(gotD-want) > 1e-9 {
				t.Fatalf("oracle APSP (%d,%d) = %v, explicit H = %v", v, w, gotD, want)
			}
		}
	}
}

// TestOracleWithFilterMatchesFilteredExact verifies Corollary 2.17 on H:
// running the oracle *with* a top-k filter throughout equals filtering the
// exact result once.
func TestOracleWithFilterMatchesFilteredExact(t *testing.T) {
	_, h := buildH(7, 35, 80)
	n := h.N()
	const k = 3
	filter := semiring.TopKFilter(k, semiring.Inf, nil)
	oracle := NewOracle(h, nil)
	x0 := make([]semiring.DistMap, n)
	for v := range x0 {
		x0[v] = semiring.SingletonDist(graph.Node(v), 0)
	}
	got, _ := oracle.RunToFixpoint(x0, filter, MaxIters(n))

	exactH := graph.APSPDijkstra(h.Materialize())
	mod := semiring.DistMapModule{}
	for v := 0; v < n; v++ {
		full := semiring.NewDistMap(n)
		for w := 0; w < n; w++ {
			if !semiring.IsInf(exactH.At(v, w)) {
				full = full.Append(graph.Node(w), exactH.At(v, w))
			}
		}
		want := filter(full)
		// Compare allowing float slack: entries must agree in node set and
		// distances up to 1e-9.
		if want.Len() != got[v].Len() {
			t.Fatalf("node %d: %v vs %v", v, got[v], want)
		}
		for i := 0; i < want.Len(); i++ {
			if want.Node(i) != got[v].Node(i) || math.Abs(want.Dist(i)-got[v].Dist(i)) > 1e-9 {
				t.Fatalf("node %d: %v vs %v", v, got[v], want)
			}
		}
		_ = mod
	}
}

func TestOracleTracksWork(t *testing.T) {
	_, h := buildH(8, 30, 70)
	tr := &par.Tracker{}
	oracle := NewOracle(h, tr)
	x0 := make([]semiring.DistMap, h.N())
	for v := range x0 {
		x0[v] = semiring.SingletonDist(graph.Node(v), 0)
	}
	oracle.Run(x0, semiring.TopKFilter(2, semiring.Inf, nil), 2)
	if tr.Work() == 0 || tr.Depth() == 0 {
		t.Fatal("tracker not charged")
	}
}

func TestMaxItersGrowsPolylog(t *testing.T) {
	if MaxIters(16) >= MaxIters(1<<20) {
		t.Fatal("MaxIters not increasing")
	}
	if MaxIters(1<<20) > 4*22*22 {
		t.Fatalf("MaxIters(2^20) = %d implausibly large", MaxIters(1<<20))
	}
}
