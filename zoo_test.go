package parmbf

import (
	"testing"
)

func TestZooHopDistances(t *testing.T) {
	g := PathGraph(6, 2)
	d := HopDistances(g, 0, 3)
	if d[3] != 6 {
		t.Fatalf("dist³(0,3) = %v, want 6", d[3])
	}
	if d[4] != Inf {
		t.Fatalf("dist³(0,4) = %v, want Inf", d[4])
	}
}

func TestZooKClosest(t *testing.T) {
	g := RandomConnected(40, 100, 6, NewRNG(1))
	res := KClosest(g, 3)
	for v, list := range res {
		if list.Len() != 3 {
			t.Fatalf("node %d keeps %d entries", v, list.Len())
		}
		if list.Get(Node(v)) != 0 {
			t.Fatalf("node %d missing itself", v)
		}
	}
}

func TestZooNearestSources(t *testing.T) {
	g := PathGraph(7, 1)
	d := NearestSources(g, []Node{0}, 2.5)
	want := []float64{0, 1, 2, Inf, Inf, Inf, Inf}
	for v := range want {
		if d[v] != want[v] {
			t.Fatalf("node %d: %v, want %v", v, d[v], want[v])
		}
	}
}

func TestZooWidestPaths(t *testing.T) {
	g := NewGraphBuilder(3).Add(0, 1, 5).Add(1, 2, 3).Add(0, 2, 2).Freeze()
	w := WidestPaths(g, 0)
	if w[2] != 3 {
		t.Fatalf("width(0,2) = %v, want 3 (via node 1)", w[2])
	}
}

func TestZooKShortestPaths(t *testing.T) {
	g := NewGraphBuilder(4).Add(0, 1, 1).Add(1, 3, 1).Add(0, 2, 1).Add(2, 3, 2).Freeze()
	res := KShortestPaths(g, 3, 2, false)
	if len(res[0]) != 2 {
		t.Fatalf("node 0 keeps %d paths, want 2", len(res[0]))
	}
	// The two 0→3 simple paths have weights 2 and 3.
	var ws []float64
	for _, w := range res[0] {
		ws = append(ws, w)
	}
	if (ws[0] != 2 || ws[1] != 3) && (ws[0] != 3 || ws[1] != 2) {
		t.Fatalf("weights %v, want {2,3}", ws)
	}
}

func TestZooReachable(t *testing.T) {
	g := NewGraphBuilder(4).Add(0, 1, 1).Add(2, 3, 1).Freeze()
	r := Reachable(g, 4)
	if len(r[0]) != 2 || len(r[2]) != 2 {
		t.Fatalf("components wrong: %v", r)
	}
}

func TestZooSourceDetection(t *testing.T) {
	g := PathGraph(6, 1)
	res := SourceDetection(g, []Node{0, 5}, 6, Inf, 1)
	// Each node keeps only its closest source.
	if res[1].Get(0) != 1 || res[1].Len() != 1 {
		t.Fatalf("node 1: %v", res[1])
	}
	if res[4].Get(5) != 1 || res[4].Len() != 1 {
		t.Fatalf("node 4: %v", res[4])
	}
}

func TestFacadeEnsemble(t *testing.T) {
	g := RandomConnected(40, 100, 5, NewRNG(2))
	e, err := SampleEnsemble(g, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Trees) != 3 {
		t.Fatalf("%d trees", len(e.Trees))
	}
	exact := ExactAPSP(g)
	for u := 0; u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			if e.Min(Node(u), Node(v)) < exact.At(u, v)-1e-9 {
				t.Fatalf("ensemble under-estimated (%d,%d)", u, v)
			}
		}
	}
}

func TestFacadeDistributed(t *testing.T) {
	g := RandomConnected(60, 150, 5, NewRNG(3))
	res := DistributedFRT(g, 17)
	if res.Rounds <= 0 {
		t.Fatal("no rounds")
	}
	tree, err := BuildTreeFromLists(res, 19)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	exact := ExactAPSP(g)
	for u := 0; u < g.N(); u += 9 {
		for v := u + 1; v < g.N(); v += 7 {
			if tree.Dist(Node(u), Node(v)) < exact.At(u, v)-1e-9 {
				t.Fatalf("distributed tree under-estimated (%d,%d)", u, v)
			}
		}
	}
	khan := DistributedKhan(g, 17)
	skel := DistributedSkeleton(g, 17)
	if khan.Rounds <= 0 || skel.Rounds <= 0 {
		t.Fatal("individual algorithms not simulated")
	}
}

func TestFacadeKMedianAssignment(t *testing.T) {
	g := PathGraph(6, 1)
	assign := KMedianAssignment(g, []Node{1, 4})
	want := []Node{1, 1, 1, 4, 4, 4}
	for v := range want {
		if assign[v] != want[v] {
			t.Fatalf("assignment %v, want %v", assign, want)
		}
	}
}
