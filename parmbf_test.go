package parmbf

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestFacadeSampleTree(t *testing.T) {
	g := RandomConnected(50, 120, 6, NewRNG(1))
	emb, err := SampleTree(g, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	exact := ExactAPSP(g)
	for u := 0; u < g.N(); u += 5 {
		for v := u + 1; v < g.N(); v += 7 {
			if emb.Tree.Dist(Node(u), Node(v)) < exact.At(u, v)-1e-9 {
				t.Fatalf("dominance violated at (%d,%d)", u, v)
			}
		}
	}
}

func TestFacadeDeterminism(t *testing.T) {
	g := RandomConnected(30, 70, 5, NewRNG(2))
	a, err := SampleTree(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleTree(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Beta != b.Beta || a.Tree.NumNodes() != b.Tree.NumNodes() {
		t.Fatal("same seed produced different embeddings")
	}
	for v := 0; v < g.N(); v++ {
		for w := v + 1; w < g.N(); w++ {
			if a.Tree.Dist(Node(v), Node(w)) != b.Tree.Dist(Node(v), Node(w)) {
				t.Fatal("same seed produced different tree metrics")
			}
		}
	}
	c, err := SampleTree(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Beta == c.Beta && a.Order.Rank[0] == c.Order.Rank[0] && a.Order.Rank[1] == c.Order.Rank[1] {
		t.Fatal("different seeds produced identical randomness")
	}
}

func TestFacadeExactSampler(t *testing.T) {
	g := GridGraph(5, 5, 3, NewRNG(3))
	emb, err := SampleTreeExact(g, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeApproxMetric(t *testing.T) {
	g := RandomConnected(40, 90, 5, NewRNG(4))
	m, ratio := ApproxMetric(g, 11)
	if ratio < 1 {
		t.Fatalf("ratio %v below 1", ratio)
	}
	exact := ExactAPSP(g)
	for v := 0; v < g.N(); v++ {
		for w := 0; w < g.N(); w++ {
			if v == w {
				continue
			}
			if m.At(v, w) < exact.At(v, w)-1e-9 || m.At(v, w) > ratio*exact.At(v, w)+1e-9 {
				t.Fatalf("approx metric out of band at (%d,%d)", v, w)
			}
		}
	}
}

func TestFacadeSpanner(t *testing.T) {
	g := RandomConnected(60, 500, 5, NewRNG(5))
	s := Spanner(g, 2, 13)
	if s.M() >= g.M() {
		t.Fatal("spanner did not sparsify")
	}
	if !s.Connected() {
		t.Fatal("spanner disconnected")
	}
}

func TestFacadeKMedian(t *testing.T) {
	g := Clustered(3, 12, 150, NewRNG(6))
	res, err := SolveKMedian(g, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) == 0 || res.Cost <= 0 {
		t.Fatalf("degenerate solution: %+v", res)
	}
	if res.Cost >= 150 {
		t.Fatalf("cost %v left a planted cluster unserved", res.Cost)
	}
}

func TestFacadeBuyAtBulk(t *testing.T) {
	g := GridGraph(5, 5, 2, NewRNG(7))
	demands := []Demand{{S: 0, T: 24, Amount: 10}, {S: 4, T: 20, Amount: 3}}
	cables := []CableType{{Capacity: 1, Cost: 1}, {Capacity: 20, Cost: 5}}
	sol, err := SolveBuyAtBulk(g, demands, cables, 19)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost <= 0 || len(sol.Purchases) == 0 {
		t.Fatal("degenerate buy-at-bulk solution")
	}
}

func TestFacadeMeasureStretch(t *testing.T) {
	g := RandomConnected(40, 100, 5, NewRNG(8))
	rng := NewRNG(23)
	stats, err := MeasureStretch(g,
		func() (*Embedding, error) { return SampleTree(g, rng.Uint64()) },
		3, 20, 29)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MinRatio < 1-1e-9 {
		t.Fatalf("dominance violated: %v", stats.MinRatio)
	}
	if stats.AvgStretch < 1 {
		t.Fatalf("avg stretch %v", stats.AvgStretch)
	}
}

func TestFacadeEmbedderEnsemble(t *testing.T) {
	g := RandomConnected(40, 100, 5, NewRNG(9))
	e, err := NewEmbedder(g, 31)
	if err != nil {
		t.Fatal(err)
	}
	ens, err := e.SampleEnsemble(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ens.Trees) != 4 {
		t.Fatalf("got %d trees", len(ens.Trees))
	}
	stats := ens.Evaluate(g, 30, NewRNG(5))
	if !stats.DominanceOK {
		t.Fatal("ensemble under-estimated a distance")
	}
	if stats.AvgMinStretch < 1-1e-9 {
		t.Fatalf("avg min stretch %v below 1", stats.AvgMinStretch)
	}

	// The one-shot helper must agree with the explicit Embedder for the
	// same seed.
	ens2, err := SampleEnsemble(g, 4, 31)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ens.Trees {
		for v := 0; v < g.N(); v += 3 {
			for w := v + 1; w < g.N(); w += 5 {
				if ens.Trees[i].Dist(Node(v), Node(w)) != ens2.Trees[i].Dist(Node(v), Node(w)) {
					t.Fatal("SampleEnsemble disagrees with Embedder for the same seed")
				}
			}
		}
	}
}

func TestFacadeSnapshotRoundTrip(t *testing.T) {
	g := RandomConnected(36, 90, 5, NewRNG(21))
	ens, err := SampleEnsemble(g, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "oracle.snap")
	meta := SnapshotMeta{GraphNodes: g.N(), GraphEdges: g.M()}
	if err := WriteSnapshotFile(path, ens, meta); err != nil {
		t.Fatal(err)
	}
	ens2, meta2, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta2 != meta {
		t.Fatalf("meta %+v, want %+v", meta2, meta)
	}
	idx, err := ens.Index()
	if err != nil {
		t.Fatal(err)
	}
	idx2, err := ens2.Index()
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v += 2 {
		for w := v; w < g.N(); w += 3 {
			if idx.Min(Node(v), Node(w)) != idx2.Min(Node(v), Node(w)) {
				t.Fatalf("reloaded Min(%d,%d) differs", v, w)
			}
		}
	}

	// The buffer-level API and the hostile-input contract are reachable
	// from the facade too.
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, ens, meta); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshot(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshot(buf.Bytes()[:16]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestFacadeSteiner(t *testing.T) {
	g := GridGraph(6, 6, 2, NewRNG(31))
	terms := []Node{0, 5, 30, 35}
	res, err := SolveSteiner(g, terms, 32)
	if err != nil {
		t.Fatal(err)
	}
	base, err := SteinerBaseline(g, terms)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight <= 0 || base.Weight <= 0 {
		t.Fatal("degenerate Steiner trees")
	}
	// Both are O(log n)-ish approximations of the same optimum; a wild
	// disagreement means one of the facade paths is broken.
	if res.Weight > 12*base.Weight || base.Weight > 12*res.Weight {
		t.Fatalf("embedding %v vs baseline %v implausibly far apart", res.Weight, base.Weight)
	}
}

func TestFacadeRouting(t *testing.T) {
	g := RandomConnected(60, 160, 5, NewRNG(33))
	tables, err := BuildRoutingTables(g, 3, 34)
	if err != nil {
		t.Fatal(err)
	}
	if tables.NumTrees() != 3 {
		t.Fatalf("tables hold %d trees, want 3", tables.NumTrees())
	}
	r, err := tables.Route(0, 59)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateRoute(g, 0, 59, r); err != nil {
		t.Fatal(err)
	}
	cooked := &RouteResult{Path: r.Path, Length: r.Length / 2, Tree: r.Tree, TreeDist: r.TreeDist}
	if err := ValidateRoute(g, 0, 59, cooked); err == nil {
		t.Fatal("cooked route length accepted")
	}
}

func TestFacadeTreeIndex(t *testing.T) {
	g := RandomConnected(40, 100, 4, NewRNG(35))
	emb, err := SampleTree(g, 36)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := NewTreeIndex(emb.Tree)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 10; v++ {
		u, w := Node(v), Node(g.N()-1-v)
		if got, want := idx.Dist(u, w), emb.Tree.Dist(u, w); got != want {
			t.Fatalf("index Dist(%d,%d) = %v, walk says %v", u, w, got, want)
		}
	}
}
