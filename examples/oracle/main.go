// Oracle walkthrough: turn an FRT ensemble into a fast approximate
// distance oracle. The ensemble is sampled once through the shared
// pipeline, preprocessed into an OracleIndex, queried in batch, and
// round-tripped through the versioned snapshot format — the serving
// pattern behind cmd/parmbfd (build or -load, then answer /batch).
//
//	go run ./examples/oracle
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"parmbf"
)

func main() {
	// A sparse random graph: 2048 nodes, 8192 edges.
	g := parmbf.RandomConnected(2048, 8192, 10, parmbf.NewRNG(7))
	fmt.Printf("input graph: n=%d m=%d\n", g.N(), g.M())

	// Sample K=8 independent trees with the direct on-graph sampler (cheap
	// at this size; swap in SampleEnsemble for the polylog-depth pipeline,
	// which is what cmd/parmbfd uses at startup).
	t0 := time.Now()
	ens := &parmbf.Ensemble{}
	for i := uint64(0); i < 8; i++ {
		emb, err := parmbf.SampleTreeOnGraph(g, 42+i)
		if err != nil {
			panic(err)
		}
		ens.Trees = append(ens.Trees, emb.Tree)
	}
	sampleTime := time.Since(t0)
	fmt.Printf("sampled %d trees in %v\n", len(ens.Trees), sampleTime.Round(time.Millisecond))

	// Index the ensemble: per-leaf ancestor and prefix-weight tables make
	// every query a handful of array lookups instead of a pointer walk.
	t0 = time.Now()
	idx, err := ens.Index()
	if err != nil {
		panic(err)
	}
	fmt.Printf("indexed in %v (max depth %d)\n\n", time.Since(t0).Round(time.Millisecond), idx.MaxDepth())

	// A batch of 100k random pairs, answered three ways.
	rng := parmbf.NewRNG(99)
	pairs := make([]parmbf.Pair, 100_000)
	for i := range pairs {
		pairs[i] = parmbf.Pair{U: parmbf.Node(rng.Intn(g.N())), V: parmbf.Node(rng.Intn(g.N()))}
	}

	// 1. The parent-walk path: what each query cost before indexing.
	t0 = time.Now()
	walk := make([]float64, len(pairs))
	for i, p := range pairs {
		best := ens.Trees[0].Dist(p.U, p.V)
		for _, tr := range ens.Trees[1:] {
			if d := tr.Dist(p.U, p.V); d < best {
				best = d
			}
		}
		walk[i] = best
	}
	walkTime := time.Since(t0)

	// 2. The batched oracle: same answers, bitwise, from flat tables.
	t0 = time.Now()
	batched := idx.MinBatch(pairs, nil)
	batchTime := time.Since(t0)

	same := true
	for i := range pairs {
		if walk[i] != batched[i] {
			same = false
			break
		}
	}
	fmt.Printf("%-28s %10v  (%.0f pairs/s)\n", "parent-walk min:", walkTime.Round(time.Millisecond),
		float64(len(pairs))/walkTime.Seconds())
	fmt.Printf("%-28s %10v  (%.0f pairs/s)\n", "OracleIndex.MinBatch:", batchTime.Round(time.Millisecond),
		float64(len(pairs))/batchTime.Seconds())
	fmt.Printf("speedup %.1fx, results bitwise identical: %v\n\n",
		walkTime.Seconds()/batchTime.Seconds(), same)

	// 3. Quality: the oracle never under-estimates, and the min over trees
	// tracks the true distance within the expected O(log n) stretch.
	stats := ens.Evaluate(g, 500, parmbf.NewRNG(5))
	fmt.Printf("on %d random pairs: avg min-stretch %.2f, max %.2f, never under-estimates: %v\n\n",
		stats.Pairs, stats.AvgMinStretch, stats.MaxMinStretch, stats.DominanceOK)

	// 4. Snapshot persistence: what `parmbfd -save`/-load do. Sampling is
	// the expensive step; the snapshot amortises it away, and because
	// indexing is deterministic, the reloaded oracle answers bitwise
	// identically.
	dir, err := os.MkdirTemp("", "oracle-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "oracle.snap")
	meta := parmbf.SnapshotMeta{GraphNodes: g.N(), GraphEdges: g.M()}
	t0 = time.Now()
	if err := parmbf.WriteSnapshotFile(path, ens, meta); err != nil {
		panic(err)
	}
	saveTime := time.Since(t0)
	t0 = time.Now()
	ens2, _, err := parmbf.ReadSnapshotFile(path)
	if err != nil {
		panic(err)
	}
	idx2, err := ens2.Index()
	if err != nil {
		panic(err)
	}
	loadTime := time.Since(t0)
	reloaded := idx2.MinBatch(pairs, nil)
	same = true
	for i := range pairs {
		if reloaded[i] != batched[i] {
			same = false
			break
		}
	}
	info, _ := os.Stat(path)
	fmt.Printf("snapshot: %d KB, saved in %v, load+reindex in %v (vs %v to resample)\n",
		info.Size()/1024, saveTime.Round(time.Millisecond), loadTime.Round(time.Millisecond),
		sampleTime.Round(time.Millisecond))
	fmt.Printf("reloaded oracle bitwise identical: %v\n", same)
}
