// Facility placement on a road-like network: choose k depot locations
// minimising the total travel distance of all intersections to their
// nearest depot — the k-median problem of §9 of the paper, solved through a
// sampled FRT tree embedding.
//
//	go run ./examples/kmedian
package main

import (
	"fmt"

	"parmbf"
)

func main() {
	// A random geometric graph models a road network: nodes are
	// intersections placed in the unit square, edges connect nearby ones
	// with Euclidean lengths.
	g := parmbf.RandomGeometric(300, 0.12, parmbf.NewRNG(5))
	fmt.Printf("road network: n=%d m=%d\n", g.N(), g.M())

	for _, k := range []int{2, 4, 8} {
		res, err := parmbf.SolveKMedian(g, k, uint64(100+k))
		if err != nil {
			panic(err)
		}
		fmt.Printf("k=%d: depots at %v\n", k, res.Centers)
		fmt.Printf("     total travel distance %.1f (avg %.2f per intersection, %d candidates considered)\n",
			res.Cost, res.Cost/float64(g.N()), len(res.Candidates))
	}

	// More depots must never cost more: the k-median objective is
	// monotone in k.
	fmt.Println("\n(the costs above decrease with k — adding depots only helps)")
}
