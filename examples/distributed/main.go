// Distributed tree embedding in the Congest model (§8 of the paper): the
// same LE lists can be computed by per-hop iteration (Khan et al.,
// O(SPD·log n) rounds) or by the skeleton algorithm (≈ Õ(√n + D) rounds) —
// and which one is faster depends on the graph's shortest-path diameter.
//
//	go run ./examples/distributed
package main

import (
	"fmt"

	"parmbf"
)

func main() {
	// Workload 1: a long corridor with a wireless backbone — hop diameter 2
	// (everyone hears the base station) but shortest paths crawl along the
	// corridor, so SPD ≈ n.
	corridorB := parmbf.NewGraphBuilder(401)
	for v := 0; v+1 < 400; v++ {
		corridorB.Add(parmbf.Node(v), parmbf.Node(v+1), 1)
	}
	for v := 0; v < 400; v++ {
		corridorB.Add(400, parmbf.Node(v), 800) // base station: never on a shortest path
	}
	corridor := corridorB.Freeze()

	// Workload 2: a dense random network with tiny SPD.
	dense := parmbf.RandomConnected(400, 6000, 4, parmbf.NewRNG(1))

	for _, w := range []struct {
		name string
		g    *parmbf.Graph
	}{{"corridor+base (SPD≈n, D=2)", corridor}, {"dense random (SPD small)", dense}} {
		khan := parmbf.DistributedKhan(w.g, 7)
		skel := parmbf.DistributedSkeleton(w.g, 8)
		best := khan
		kind := "khan"
		if skel.Rounds < khan.Rounds {
			best, kind = skel, "skeleton"
		}
		fmt.Printf("%s:\n", w.name)
		fmt.Printf("  Khan et al.: %6d rounds (stretch bound %.0f on the metric)\n", khan.Rounds, khan.StretchBound)
		fmt.Printf("  skeleton:    %6d rounds (stretch bound %.0f)\n", skel.Rounds, skel.StretchBound)
		tree, err := parmbf.BuildTreeFromLists(best, 9)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  winner: %s → FRT tree with %d nodes, depth %d\n\n", kind, tree.NumNodes(), tree.Depth())
	}
	fmt.Println("the crossover sits where the paper puts it: the skeleton algorithm wins")
	fmt.Println("exactly when SPD(G) ≫ √n + D(G) (Theorem 8.1).")
}
