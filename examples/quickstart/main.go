// Quickstart: sample a low-stretch metric tree embedding of a weighted
// graph and compare tree distances with true shortest-path distances.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"parmbf"
)

func main() {
	// A sparse random graph: 256 nodes, 1024 edges, weights in [1, 10].
	g := parmbf.RandomConnected(256, 1024, 10, parmbf.NewRNG(7))
	fmt.Printf("input graph: n=%d m=%d\n", g.N(), g.M())

	// Sample one tree from the FRT distribution with the paper's
	// polylog-depth pipeline. The tree's node set contains all graph nodes
	// as leaves; its distances dominate the graph's and exceed them only by
	// O(log n) in expectation.
	emb, err := parmbf.SampleTree(g, 42)
	if err != nil {
		panic(err)
	}
	fmt.Printf("sampled tree: %d tree nodes, depth %d, β=%.3f\n",
		emb.Tree.NumNodes(), emb.Tree.Depth(), emb.Beta)
	fmt.Printf("oracle iterations to LE-list fixpoint: %d (≈ SPD(H) ∈ O(log²n))\n\n", emb.Iterations)

	// Spot-check a few pairs against exact distances.
	exact := parmbf.ExactAPSP(g)
	fmt.Println("pair        dist_G   dist_T   ratio")
	for _, p := range [][2]parmbf.Node{{0, 255}, {1, 100}, {42, 200}, {7, 8}} {
		dg := exact.At(int(p[0]), int(p[1]))
		dt := emb.Tree.Dist(p[0], p[1])
		fmt.Printf("(%3d,%3d)  %7.2f  %7.2f  %5.2f\n", p[0], p[1], dg, dt, dt/dg)
	}

	// Average the stretch over several trees: the expectation is what the
	// O(log n) bound speaks about.
	stats, err := parmbf.MeasureStretch(g, func() (*parmbf.Embedding, error) {
		return parmbf.SampleTree(g, parmbf.NewRNG(99).Uint64())
	}, 1, 100, 3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nover %d random pairs: avg stretch %.2f, min ratio %.2f (≥ 1: tree dominates)\n",
		stats.Pairs, stats.AvgStretch, stats.MinRatio)
}
