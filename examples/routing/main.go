// Oblivious routing on a road-like network: precompute next-hop tables
// from a sampled FRT tree ensemble, then answer point-to-point route
// queries without ever running a shortest-path search at query time. Each
// route is a walkable path in the original graph whose length is within
// the ensemble's O(log n) stretch of the true distance.
//
//	go run ./examples/routing
package main

import (
	"fmt"
	"sort"

	"parmbf"
)

func main() {
	g := parmbf.RandomGeometric(300, 0.12, parmbf.NewRNG(9))
	fmt.Printf("road network: n=%d m=%d\n", g.N(), g.M())

	// One-time precomputation: sample 4 FRT trees and compile them into
	// next-hop tables. Queries afterwards are table lookups only.
	tables, err := parmbf.BuildRoutingTables(g, 4, 42)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tables built over %d trees\n\n", tables.NumTrees())

	// Route a few fixed pairs and show the path against the exact distance.
	exact := parmbf.ExactAPSP(g)
	for _, pq := range [][2]parmbf.Node{{0, 299}, {17, 250}, {60, 180}} {
		r, err := tables.Route(pq[0], pq[1])
		if err != nil {
			panic(err)
		}
		if err := parmbf.ValidateRoute(g, pq[0], pq[1], r); err != nil {
			panic(err) // every route is certified walkable
		}
		d := exact.At(int(pq[0]), int(pq[1]))
		fmt.Printf("%3d -> %3d: %2d hops via tree %d, length %.3f (exact %.3f, stretch %.2f)\n",
			pq[0], pq[1], len(r.Path)-1, r.Tree, r.Length, d, r.Length/d)
	}

	// Stretch statistics over a random batch: the median is typically far
	// below the worst-case O(log n) guarantee.
	rng := parmbf.NewRNG(7)
	pairs := make([]parmbf.Pair, 200)
	for i := range pairs {
		u := parmbf.Node(rng.Intn(g.N()))
		v := parmbf.Node(rng.Intn(g.N() - 1))
		if v >= u {
			v++
		}
		pairs[i] = parmbf.Pair{U: u, V: v}
	}
	routes, err := tables.RouteBatch(pairs)
	if err != nil {
		panic(err)
	}
	stretches := make([]float64, len(routes))
	for i, r := range routes {
		stretches[i] = r.Length / exact.At(int(pairs[i].U), int(pairs[i].V))
	}
	sort.Float64s(stretches)
	fmt.Printf("\nstretch over %d random pairs: median %.2f, p90 %.2f, max %.2f\n",
		len(stretches), stretches[len(stretches)/2],
		stretches[len(stretches)*9/10], stretches[len(stretches)-1])
}
