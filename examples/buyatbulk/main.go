// Backbone network design: given traffic demands between data centers and
// a catalogue of cable types with economies of scale, buy cables on the
// links of a backbone topology so all demands can be routed — the
// buy-at-bulk network design problem of §10 of the paper, solved through a
// sampled FRT tree embedding.
//
//	go run ./examples/buyatbulk
package main

import (
	"fmt"

	"parmbf"
)

func main() {
	// A 10×10 grid models the backbone topology; weights are link lengths.
	g := parmbf.GridGraph(10, 10, 3, parmbf.NewRNG(3))
	fmt.Printf("backbone: n=%d m=%d\n", g.N(), g.M())

	// Cable catalogue with economies of scale: the fat cable carries 100×
	// the traffic of the thin one at 12× the price.
	cables := []parmbf.CableType{
		{Capacity: 1, Cost: 1.0},
		{Capacity: 10, Cost: 4.0},
		{Capacity: 100, Cost: 12.0},
	}

	// Traffic matrix: a handful of site pairs with different volumes.
	rng := parmbf.NewRNG(17)
	var demands []parmbf.Demand
	for i := 0; i < 15; i++ {
		demands = append(demands, parmbf.Demand{
			S:      parmbf.Node(rng.Intn(g.N())),
			T:      parmbf.Node(rng.Intn(g.N())),
			Amount: float64(1 + rng.Intn(30)),
		})
	}
	// Drop degenerate self-demands.
	kept := demands[:0]
	total := 0.0
	for _, d := range demands {
		if d.S != d.T {
			kept = append(kept, d)
			total += d.Amount
		}
	}
	demands = kept
	fmt.Printf("demands: %d pairs, %.0f total units\n\n", len(demands), total)

	sol, err := parmbf.SolveBuyAtBulk(g, demands, cables, 23)
	if err != nil {
		panic(err)
	}
	byCable := map[int]int{}
	for _, p := range sol.Purchases {
		byCable[p.Cable] += p.Count
	}
	fmt.Printf("tree-embedding solution: cost %.1f across %d link purchases\n", sol.Cost, len(sol.Purchases))
	for i, c := range cables {
		fmt.Printf("  cable type %d (cap %g, cost %g/km): %d bought\n", i, c.Capacity, c.Cost, byCable[i])
	}
	fmt.Println("\nthe tree routing aggregates demands onto shared corridors, so fat cables")
	fmt.Println("(cheaper per unit of capacity) do most of the carrying — the economies of")
	fmt.Println("scale the O(log n)-approximation of Theorem 10.2 is designed to exploit.")
}
