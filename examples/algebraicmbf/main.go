// The algebraic MBF-like framework in action: the same generic engine —
// propagate along edges (semiring multiplication), aggregate at nodes
// (semimodule addition), filter (representative projection) — instantiated
// with four different algebras from §3 of the paper.
//
//	go run ./examples/algebraicmbf
package main

import (
	"fmt"

	"parmbf"
)

func main() {
	// A small "trust network": nodes are people, edge weights in (0, 1]
	// are mutual trust levels; the same graph doubles as a distance
	// network when weights are read as costs.
	b := parmbf.NewGraphBuilder(8)
	type e struct {
		u, v parmbf.Node
		w    float64
	}
	for _, x := range []e{
		{0, 1, 0.9}, {1, 2, 0.8}, {2, 3, 0.95}, {3, 4, 0.7},
		{0, 5, 0.4}, {5, 4, 0.9}, {1, 6, 0.6}, {6, 7, 0.85}, {4, 7, 0.5},
	} {
		b.Add(x.u, x.v, x.w)
	}
	g := b.Freeze()

	// 1. Min-plus semiring: classic shortest-path distances (§3.1).
	fmt.Println("min-plus — cheapest-cost routes from node 0:")
	dist := parmbf.HopDistances(g, 0, g.N())
	for v, d := range dist {
		fmt.Printf("  0 → %d: %.2f\n", v, d)
	}

	// 2. Max-min semiring: widest paths = transitive trust (§3.2). How
	// much does node 0 trust everyone, assuming trust is the weakest link
	// of the best chain?
	fmt.Println("\nmax-min — transitive trust from node 0:")
	trust := parmbf.WidestPaths(g, 0)
	for v, w := range trust {
		if v == 0 {
			continue // self-trust is the semiring unit (∞), not informative
		}
		fmt.Printf("  0 ⇒ %d: %.2f\n", v, w)
	}

	// 3. Top-k filtering: each node's 3 closest peers (k-SSP, §3.1). The
	// filter keeps intermediate states at size k, the paper's recipe for
	// turning Θ̃(mn) work into Θ̃(mk).
	fmt.Println("\ntop-k filter — each node's 3 closest peers:")
	closest := parmbf.KClosest(g, 3)
	for v, list := range closest {
		fmt.Printf("  %d: %v\n", v, list)
	}

	// 4. All-paths semiring: the 2 cheapest routes from every node to node
	// 7, with the actual paths (k-SDP, §3.3) — a problem min-plus cannot
	// express because it conflates equal-weight paths.
	fmt.Println("\nall-paths — 2 cheapest routes to node 7:")
	routes := parmbf.KShortestPaths(g, 7, 2, false)
	for v := parmbf.Node(0); int(v) < g.N(); v++ {
		for p, w := range routes[v] {
			fmt.Printf("  %v (cost %.2f)\n", p, w)
		}
	}

	// 5. Boolean semiring: 2-hop reachability (§3.4).
	fmt.Println("\nboolean — nodes reachable within 2 hops:")
	reach := parmbf.Reachable(g, 2)
	for v, set := range reach {
		fmt.Printf("  %d: %v\n", v, set)
	}
}
