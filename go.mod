module parmbf

go 1.24
