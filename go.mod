module parmbf

go 1.23
