GO ?= go

.PHONY: build vet test test-short test-race bench bench-ensemble ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## Full test tier: every test at full size (~30s on one core).
test:
	$(GO) test ./...

## Short tier: slow reproductions skipped; finishes in a few seconds.
test-short:
	$(GO) test -short ./...

## Race tier: the packages with internal parallelism, under the race detector.
test-race:
	$(GO) test -short -race . ./internal/frt/... ./internal/par/... ./internal/simgraph/...

## Ensemble hot-path benchmarks: shared pipeline vs naive per-tree sampling.
bench-ensemble:
	$(GO) test ./internal/frt/ -run xxx -bench 'Ensemble(Naive|Shared)' -benchmem

bench:
	$(GO) test -bench . -benchmem ./...

ci: vet test-short test-race
