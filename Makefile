GO ?= go

.PHONY: build vet fmt-check test test-short test-race fuzz-short cover bench bench-ensemble bench-graph bench-mbf bench-semiring bench-oracle bench-apps bench-scale bench-gate bench-scale-gate scale-smoke profile-mbf ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@test -z "$$(gofmt -l .)" || { echo "gofmt needed on:"; gofmt -l .; exit 1; }

## Full test tier: every test at full size (~30s on one core).
test:
	$(GO) test ./...

## Short tier: slow reproductions skipped; finishes in a few seconds.
test-short:
	$(GO) test -short ./...

## Race tier: the packages with internal parallelism, under the race detector
## (cmd/parmbfd exercises the router fan-out and fault-injection paths).
## -timeout caps a wedged parallel test (a deadlocked worker pool would
## otherwise hold the CI job for the default 10 minutes per package).
test-race:
	$(GO) test -short -race -timeout 5m . ./cmd/parmbfd/ ./internal/frt/... ./internal/graph/... ./internal/mbf/... ./internal/par/... ./internal/semiring/... ./internal/simgraph/...

## Brief fuzz tier: every fuzz target runs for a few seconds (CI smoke; for
## a real fuzzing session raise -fuzztime). -fuzz takes one target per
## invocation, so each parser gets its own run.
fuzz-short:
	$(GO) test ./internal/frt/ -run xxx -fuzz FuzzReadTree -fuzztime 10s
	$(GO) test ./internal/frt/ -run xxx -fuzz FuzzReadSnapshot -fuzztime 10s
	$(GO) test ./internal/graph/ -run xxx -fuzz FuzzReadDIMACS -fuzztime 10s
	$(GO) test ./internal/graph/ -run xxx -fuzz FuzzApplyUpdates -fuzztime 10s

## Coverage floor: the short tier under -coverprofile must not drop below
## COVER_MIN, measured at the application-tier branch point (83.0% with a
## 0.5pt allowance for run-to-run jitter — the fleet fault-injection tests
## take timing-dependent branches). Raise the pin when coverage grows;
## never lower it to make a PR pass.
COVER_MIN ?= 82.5
cover:
	$(GO) test -short -covermode=atomic -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | tail -n 1 | awk '{print $$3}' | tr -d '%'); \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { \
		if (t+0 < min+0) { printf "coverage %.1f%% dropped below pinned %.1f%%\n", t, min; exit 1 } \
		printf "coverage %.1f%% (pinned minimum %.1f%%)\n", t, min }'

## Ensemble hot-path benchmarks: shared pipeline vs naive per-tree sampling.
bench-ensemble:
	$(GO) test ./internal/frt/ -run xxx -bench 'Ensemble(Naive|Shared)' -benchmem

## Graph-core benchmarks (CSR build, Dijkstra, Edges, heap vs seed heap);
## each run appends one JSON line to BENCH_graph.json.
bench-graph:
	@out="$$($(GO) test ./internal/graph/ -run xxx -bench 'Construct|Build4096|Dijkstra4096|Edges4096|Freeze4096|Heap|BenchmarkDijkstra$$|MultiSource' -benchmem)" \
		|| { echo "$$out"; echo "bench-graph: go test failed"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep '^Benchmark' | jq -R . | jq -sc \
		--arg date "$$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
		--arg commit "$$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
		'{date: $$date, commit: $$commit, bench: .}' >> BENCH_graph.json

## MBF-engine benchmarks (k-way aggregation fast path vs generic fold,
## sparse frontier engine vs dense fixpoint loop, source detection, oracle
## iteration, embedder sampling); each run appends one JSON line to
## BENCH_mbf.json.
bench-mbf:
	@out="$$($(GO) test ./internal/mbf/ ./internal/simgraph/ ./internal/frt/ -run xxx -bench 'Iterate4096|IterateGeneric4096|IterateSparse4096|FixpointSparse4096|FixpointDense4096|SourceDetection4096|SourceDetectionBatch8|SourceDetectionPerSet8|SSSPIteration|KSSP$$|OracleIterate|LEListsOnGraph|EmbedderSample|IncrementalUpdate' -benchmem)" \
		|| { echo "$$out"; echo "bench-mbf: go test failed"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep '^Benchmark' | jq -R . | jq -sc \
		--arg date "$$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
		--arg commit "$$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
		'{date: $$date, commit: $$commit, bench: .}' >> BENCH_mbf.json

## Merge-kernel micro-benchmarks: the SoA k-way merge behind
## DistMapModule.Aggregate on every rung of the dispatch ladder (k = 2, 4,
## 8, 16, 40, 72) against an array-of-structs fold baseline, plus the
## surrounding DistMap primitives; each run appends one JSON line to
## BENCH_semiring.json.
bench-semiring:
	@out="$$($(GO) test ./internal/semiring/ -run xxx -bench 'MergeKernel|DistMapAdd|DistMapSMul|MergeMin8Way|TopKFilter' -benchmem)" \
		|| { echo "$$out"; echo "bench-semiring: go test failed"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep '^Benchmark' | jq -R . | jq -sc \
		--arg date "$$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
		--arg commit "$$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
		'{date: $$date, commit: $$commit, bench: .}' >> BENCH_semiring.json

## Oracle/serving benchmarks: the per-pair parent-walk path vs the batched
## OracleIndex path on an n=4096, K=16 ensemble, index build cost, snapshot
## save/load vs full rebuild (cold-start bar: SnapshotLoad ≥ 50× faster than
## OracleRebuild), and HTTP-tier throughput for one server vs a 3-worker
## sharded fleet; each run appends one JSON line to BENCH_oracle.json. The
## acceptance bar of the query subsystem is MinBatch ≥ 10× faster than the
## walk.
bench-oracle:
	@out="$$($(GO) test ./internal/frt/ ./cmd/parmbfd/ -run xxx -bench 'OracleWalkMin4096|OracleIndexMinBatch4096|OracleIndexMedianBatch4096|OracleIndexBuild4096|SnapshotWrite4096|SnapshotLoad4096|OracleRebuild4096|ServerBatch1024|FleetBatch1024' -benchmem)" \
		|| { echo "$$out"; echo "bench-oracle: go test failed"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep '^Benchmark' | jq -R . | jq -sc \
		--arg date "$$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
		--arg commit "$$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
		'{date: $$date, commit: $$commit, bench: .}' >> BENCH_oracle.json

## Application-tier benchmarks: k-median candidate evaluation on the batched
## OracleIndex kernel vs the seed-era per-center Dijkstra loop (the measured
## rebase speedup), the full k-median and buy-at-bulk solves on a pre-drawn
## ensemble, and oblivious routing (table build + 256-route query batches);
## each run appends one JSON line to BENCH_apps.json.
bench-apps:
	@out="$$($(GO) test ./internal/apps/kmedian/ ./internal/apps/buyatbulk/ ./internal/apps/routing/ -run xxx -bench 'KMedianEval|KMedianSolve|BuyAtBulkSolve|RoutingTables|RouteQueryBatch' -benchmem -timeout 30m)" \
		|| { echo "$$out"; echo "bench-apps: go test failed"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep '^Benchmark' | jq -R . | jq -sc \
		--arg date "$$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
		--arg commit "$$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
		'{date: $$date, commit: $$commit, bench: .}' >> BENCH_apps.json

## Million-node scale tier: generators, the Freeze serial-vs-parallel A/B
## pair, LE lists, and tree assembly at n = 2^16 and (via PARMBF_SCALE=1)
## 2^20, plus the K=2 end-to-end embedder draw at 2^16. Appends one entry to
## BENCH_graph.json and one to BENCH_mbf.json — the same trajectories as the
## core tier; benchgate's entry selection keeps the two suites' baselines
## apart. -benchtime 1x: one timed run per point, so the 2^20 sweep finishes
## in minutes; trends come from the trajectory, not per-run statistics.
bench-scale:
	@out="$$(PARMBF_SCALE=1 $(GO) test ./internal/graph/ -run xxx -bench 'ScaleChungLu|ScaleGridOfCliques|ScaleFreeze' -benchtime 1x -benchmem -timeout 60m)" \
		|| { echo "$$out"; echo "bench-scale: go test failed"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep '^Benchmark' | jq -R . | jq -sc \
		--arg date "$$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
		--arg commit "$$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
		'{date: $$date, commit: $$commit, bench: .}' >> BENCH_graph.json
	@out="$$(PARMBF_SCALE=1 $(GO) test ./internal/frt/ -run xxx -bench 'ScaleLELists|ScaleBuildTree|ScaleEmbedderSample' -benchtime 1x -benchmem -timeout 60m)" \
		|| { echo "$$out"; echo "bench-scale: go test failed"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep '^Benchmark' | jq -R . | jq -sc \
		--arg date "$$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
		--arg commit "$$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
		'{date: $$date, commit: $$commit, bench: .}' >> BENCH_mbf.json

## PR-blocking end-to-end smoke at 2^16: power-law graph through a K=2
## ensemble draw and the oracle index, with dominance and determinism
## spot-checks (see TestScaleSmoke). The -timeout is the wall-clock budget;
## the CI job adds its own timeout-minutes on top.
scale-smoke:
	PARMBF_SCALE_SMOKE=1 $(GO) test ./internal/frt/ -run 'TestScaleSmoke$$' -v -timeout 40m

## Regression gate: compares the freshest BENCH_*.json entry against the
## previous one (in CI: this run vs the committed baseline) and fails on a
## >20% ns/op regression in the gated hot paths.
bench-gate:
	$(GO) run ./cmd/benchgate -file BENCH_graph.json -match 'Dijkstra4096' -max 1.20
	$(GO) run ./cmd/benchgate -file BENCH_mbf.json -match 'Iterate4096|SourceDetection4096|SourceDetectionBatch8|IncrementalUpdate-' -max 1.20
	$(GO) run ./cmd/benchgate -file BENCH_oracle.json -match 'OracleIndexMinBatch4096|SnapshotLoad4096|FleetBatch1024' -max 1.20
	$(GO) run ./cmd/benchgate -file BENCH_semiring.json -match 'MergeKernel/' -max 1.20
	$(GO) run ./cmd/benchgate -file BENCH_apps.json -match 'KMedianEvalIndex|KMedianSolve|BuyAtBulkSolve|RouteQueryBatch' -max 1.20

## Scale-tier gate: wider ns/op budget (single 1x runs are noisier than the
## averaged core tier) plus a B/op ceiling — at 10^6 nodes a 15% allocation
## regression is ~100 MB, so memory is gated here even though the core tier
## gates only time.
bench-scale-gate:
	$(GO) run ./cmd/benchgate -file BENCH_graph.json -match 'ScaleChungLu|ScaleFreeze' -max 1.30 -maxbytes 1.15
	$(GO) run ./cmd/benchgate -file BENCH_mbf.json -match 'ScaleLELists|ScaleEmbedderSample' -max 1.30 -maxbytes 1.15

bench:
	$(GO) test -bench . -benchmem ./...

## CPU + heap profiles of the MBF hot loop (BenchmarkIterate4096): writes
## /tmp/mbf.cpu.pprof and /tmp/mbf.mem.pprof, then prints the top CPU
## consumers. Inspect interactively with `go tool pprof /tmp/mbf.cpu.pprof`.
profile-mbf:
	$(GO) test ./internal/mbf/ -run xxx -bench 'BenchmarkIterate4096$$' -benchtime 30x \
		-cpuprofile /tmp/mbf.cpu.pprof -memprofile /tmp/mbf.mem.pprof
	$(GO) tool pprof -top -nodecount 15 /tmp/mbf.cpu.pprof

## ci is the exact step list the GitHub Actions test matrix runs (the
## workflow invokes `make ci` so the two cannot drift).
ci: vet fmt-check build test-short test-race
