package parmbf

// This file is the benchmark harness of the reproduction: one testing.B
// benchmark per experiment of DESIGN.md §2 (E1–E12), per ablation (A1–A4),
// and for the extension experiment X1. Each bench regenerates its experiment's table; run with
//
//	go test -bench=. -benchmem
//
// and see cmd/benchall for the full-size tables that EXPERIMENTS.md records.
// Benchmarks run the experiments in Quick mode (reduced sizes) so the suite
// completes in minutes; the printed rows carry the measured values.

import (
	"testing"

	"parmbf/internal/experiments"
)

func benchExperiment(b *testing.B, fn func(experiments.Config) *experiments.Table) {
	b.ReportAllocs()
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		last = fn(experiments.Config{Seed: uint64(i) + 1, Quick: true})
	}
	if last != nil {
		b.Log("\n" + last.Format())
	}
}

// BenchmarkE1Stretch regenerates E1: expected stretch of the sampled FRT
// trees (Theorem 7.9: O(log n)).
func BenchmarkE1Stretch(b *testing.B) { benchExperiment(b, experiments.E1Stretch) }

// BenchmarkE2SPDH regenerates E2: SPD(H) ∈ O(log² n) (Theorem 4.5).
func BenchmarkE2SPDH(b *testing.B) { benchExperiment(b, experiments.E2SPDH) }

// BenchmarkE3HStretch regenerates E3: distance preservation of H
// (Theorem 4.5, eq. 4.16).
func BenchmarkE3HStretch(b *testing.B) { benchExperiment(b, experiments.E3HStretch) }

// BenchmarkE4LELists regenerates E4: LE-list lengths O(log n) (Lemma 7.6).
func BenchmarkE4LELists(b *testing.B) { benchExperiment(b, experiments.E4LELists) }

// BenchmarkE5WorkCrossover regenerates E5: work scaling of the oracle
// pipeline vs the exact-metric baseline (Theorem 7.9 vs [10]).
func BenchmarkE5WorkCrossover(b *testing.B) { benchExperiment(b, experiments.E5Work) }

// BenchmarkE6HopSet regenerates E6: the hop-set inequality (eq. 1.3).
func BenchmarkE6HopSet(b *testing.B) { benchExperiment(b, experiments.E6HopSet) }

// BenchmarkE7Metric regenerates E7: approximate metrics (Theorems 6.1/6.2).
func BenchmarkE7Metric(b *testing.B) { benchExperiment(b, experiments.E7Metric) }

// BenchmarkE8Spanner regenerates E8: Baswana–Sen size/stretch trade-off.
func BenchmarkE8Spanner(b *testing.B) { benchExperiment(b, experiments.E8Spanner) }

// BenchmarkE9Congest regenerates E9: Congest rounds, Khan et al. vs the
// skeleton algorithm (§8, Theorem 8.1).
func BenchmarkE9Congest(b *testing.B) { benchExperiment(b, experiments.E9Congest) }

// BenchmarkE10Zoo regenerates E10: the MBF-like algorithm zoo and the
// filter-induced work reduction (§2, §3).
func BenchmarkE10Zoo(b *testing.B) { benchExperiment(b, experiments.E10Zoo) }

// BenchmarkE11KMedian regenerates E11: k-median approximation
// (Theorem 9.2).
func BenchmarkE11KMedian(b *testing.B) { benchExperiment(b, experiments.E11KMedian) }

// BenchmarkE12BuyAtBulk regenerates E12: buy-at-bulk approximation
// (Theorem 10.2).
func BenchmarkE12BuyAtBulk(b *testing.B) { benchExperiment(b, experiments.E12BuyAtBulk) }

// BenchmarkE13Ensemble regenerates E13: shared-pipeline ensemble sampling vs
// the naive per-tree pipeline (§1's "repeat log(ε⁻¹) times" consumption).
func BenchmarkE13Ensemble(b *testing.B) { benchExperiment(b, experiments.E13Ensemble) }

// BenchmarkA1Filtering regenerates ablation A1: intermediate filtering on
// vs off (Corollary 2.17).
func BenchmarkA1Filtering(b *testing.B) { benchExperiment(b, experiments.A1Filtering) }

// BenchmarkA2LevelPenalty regenerates ablation A2: H's level penalty on vs
// off (Lemmas 4.3/4.4).
func BenchmarkA2LevelPenalty(b *testing.B) { benchExperiment(b, experiments.A2LevelPenalty) }

// BenchmarkA3HopSetChoice regenerates ablation A3: hop-set stage choice.
func BenchmarkA3HopSetChoice(b *testing.B) { benchExperiment(b, experiments.A3HopSetChoice) }

// BenchmarkA4SpannerPre regenerates ablation A4: spanner preprocessing
// (Corollary 7.11).
func BenchmarkA4SpannerPre(b *testing.B) { benchExperiment(b, experiments.A4SpannerPre) }

// BenchmarkSampleTree measures the end-to-end oracle pipeline on a single
// mid-size sparse graph (the headline operation of the library).
func BenchmarkSampleTree(b *testing.B) {
	g := RandomConnected(256, 1024, 8, NewRNG(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SampleTree(g, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSampleTreeExact measures the exact-metric baseline on the same
// workload for direct comparison.
func BenchmarkSampleTreeExact(b *testing.B) {
	g := RandomConnected(256, 1024, 8, NewRNG(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SampleTreeExact(g, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkX1Steiner regenerates the extension experiment X1: Steiner trees
// via the embedding vs the metric-closure 2-approximation.
func BenchmarkX1Steiner(b *testing.B) { benchExperiment(b, experiments.X1Steiner) }
