// Package parmbf is a Go implementation of "Parallel Metric Tree Embedding
// based on an Algebraic View on Moore-Bellman-Ford" by Stephan Friedrichs
// and Christoph Lenzen (SPAA 2016, arXiv:1509.09047).
//
// The headline capability is sampling low-stretch metric tree embeddings in
// the style of Fakcharoenphol, Rao, and Talwar (FRT) from a weighted graph
// with polylogarithmic parallel depth and near-linear work: the graph is
// augmented with a hop set, embedded into an implicit complete graph H of
// polylogarithmic shortest-path diameter, and the Least-Element lists that
// encode the FRT tree are computed by a Moore-Bellman-Ford-like algorithm
// through an oracle that simulates iterations on H without materialising
// it.
//
// The package is a façade over the building blocks in internal/…, which it
// re-exports via type aliases:
//
//   - graphs and generators (internal/graph),
//   - the algebraic MBF-like framework (internal/semiring, internal/mbf),
//   - hop sets, the simulated graph H and its oracle (internal/hopset,
//     internal/simgraph),
//   - FRT sampling and baselines (internal/frt), including the Embedder,
//     which builds the hop set, H, and the oracle once per graph and then
//     draws ensembles of trees concurrently and deterministically,
//   - approximate metrics (internal/metric), spanners (internal/spanner),
//   - the Congest-model algorithms (internal/congest), and
//   - the k-median and buy-at-bulk applications (internal/apps/…).
//
// All randomness is explicit: every sampling function takes a seed (or an
// *RNG), making runs reproducible.
package parmbf

import (
	"io"

	"parmbf/internal/apps/buyatbulk"
	"parmbf/internal/apps/kmedian"
	"parmbf/internal/apps/routing"
	"parmbf/internal/apps/steiner"
	"parmbf/internal/congest"
	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/metric"
	"parmbf/internal/par"
	"parmbf/internal/semiring"
	"parmbf/internal/spanner"
)

// Graph is an immutable undirected weighted graph in compressed-sparse-row
// form (see NewGraphBuilder).
type Graph = graph.Graph

// GraphBuilder accumulates edges — duplicates and reversed insertions
// welcome — and freezes them into an immutable Graph (see NewGraphBuilder).
type GraphBuilder = graph.Builder

// Node identifies a vertex (0-based dense integers).
type Node = graph.Node

// Edge is an undirected weighted edge.
type Edge = graph.Edge

// Matrix is a dense distance matrix over the min-plus semiring.
type Matrix = graph.Matrix

// Tree is a sampled FRT metric tree embedding.
type Tree = frt.Tree

// Embedding is one sample from the FRT distribution, including the LE
// lists and randomness it was drawn with.
type Embedding = frt.Embedding

// RNG is the deterministic splittable random number generator used by all
// sampling routines.
type RNG = par.RNG

// Tracker accumulates work/depth in the paper's DAG cost model.
type Tracker = par.Tracker

// DistMap is a sparse distance vector (the semimodule D of the paper).
type DistMap = semiring.DistMap

// Inf is the distance value meaning "unreachable".
var Inf = semiring.Inf

// NewGraphBuilder returns a builder for a graph on n nodes: call Add for
// each edge, then Freeze to obtain the immutable Graph all algorithms
// consume.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// NewRNG returns a deterministic random generator for the given seed.
func NewRNG(seed uint64) *RNG { return par.NewRNG(seed) }

// SampleTree draws one tree from the FRT distribution of g using the
// paper's polylog-depth pipeline (hop set → simulated graph H → LE lists
// via the MBF-like oracle). The expected stretch is O(log n); the returned
// tree always dominates: distT(u,v) ≥ dist(u,v,G) for all pairs.
func SampleTree(g *Graph, seed uint64) (*Embedding, error) {
	return frt.Sample(g, frt.Options{RNG: par.NewRNG(seed)})
}

// SampleTreeOnGraph draws one FRT tree by computing LE lists directly on g
// (the parallel form of the Khan et al. algorithm, §8.1): depth Θ(SPD(G))
// instead of polylog, but with a small constant factor — the quick way to
// sample ensembles of moderate graphs, e.g. for the oracle example.
func SampleTreeOnGraph(g *Graph, seed uint64) (*Embedding, error) {
	return frt.SampleOnGraph(g, par.NewRNG(seed), nil)
}

// SampleTreeExact draws one FRT tree of g's exact metric (solving APSP
// first): the simple Θ(n²)-work baseline. Prefer SampleTree for large
// sparse graphs.
func SampleTreeExact(g *Graph, seed uint64) (*Embedding, error) {
	return frt.SampleExact(g, par.NewRNG(seed), nil)
}

// ApproxMetric computes a (1+o(1))-approximate true metric of g with
// constant-time query access (Theorem 6.1 of the paper). The returned
// matrix never underestimates distances and overestimates by at most the
// reported factor.
func ApproxMetric(g *Graph, seed uint64) (*Matrix, float64) {
	res := metric.Approximate(g, par.NewRNG(seed), nil)
	return res.Matrix, res.MaxRatio
}

// Spanner computes a (2k−1)-spanner of g with O(k·n^{1+1/k}) expected
// edges (Baswana–Sen), the work/stretch trade-off knob of the paper's
// Corollary 7.11.
func Spanner(g *Graph, k int, seed uint64) *Graph {
	return spanner.Build(g, k, par.NewRNG(seed), nil)
}

// KMedianResult is a k-median solution.
type KMedianResult = kmedian.Result

// SolveKMedian computes an expected O(log k)-approximate k-median solution
// of g (Theorem 9.2 of the paper).
func SolveKMedian(g *Graph, k int, seed uint64) (*KMedianResult, error) {
	return kmedian.Solve(g, k, kmedian.Options{RNG: par.NewRNG(seed)})
}

// Demand routes Amount units of flow from S to T (buy-at-bulk).
type Demand = buyatbulk.Demand

// CableType is a buy-at-bulk cable: capacity and cost per unit edge weight.
type CableType = buyatbulk.CableType

// BuyAtBulkSolution is a priced buy-at-bulk network design.
type BuyAtBulkSolution = buyatbulk.Solution

// SolveBuyAtBulk computes an expected O(log n)-approximate buy-at-bulk
// network design (Theorem 10.2 of the paper).
func SolveBuyAtBulk(g *Graph, demands []Demand, cables []CableType, seed uint64) (*BuyAtBulkSolution, error) {
	return buyatbulk.Solve(g, demands, cables, buyatbulk.Options{RNG: par.NewRNG(seed)})
}

// Generators, re-exported for examples and experiments.
var (
	// PathGraph returns an n-node path with uniform edge weight.
	PathGraph = graph.PathGraph
	// CycleGraph returns an n-node unit-weight cycle.
	CycleGraph = graph.CycleGraph
	// GridGraph returns a rows×cols grid with weights in [1, maxWeight].
	GridGraph = graph.GridGraph
	// RandomConnected returns a connected graph with n nodes and m edges.
	RandomConnected = graph.RandomConnected
	// RandomGeometric returns a connected random geometric graph.
	RandomGeometric = graph.RandomGeometric
	// Clustered returns k well-separated random clusters.
	Clustered = graph.Clustered
	// Lollipop returns a clique joined to a long path (high SPD).
	Lollipop = graph.Lollipop
	// BarabasiAlbert returns a preferential-attachment (power-law) graph.
	BarabasiAlbert = graph.BarabasiAlbert
)

// ExactAPSP solves all-pairs shortest paths exactly (one Dijkstra per
// node). Useful as ground truth when evaluating embeddings.
func ExactAPSP(g *Graph) *Matrix { return graph.APSPDijkstra(g) }

// Stretch evaluates an embedding sampler on random node pairs; see
// MeasureStretch in the frt package for the field semantics.
type Stretch = frt.StretchStats

// MeasureStretch samples `trees` embeddings via sampler and measures their
// stretch on `pairs` random node pairs of g.
func MeasureStretch(g *Graph, sampler func() (*Embedding, error), trees, pairs int, seed uint64) (Stretch, error) {
	return frt.MeasureStretch(g, sampler, trees, pairs, par.NewRNG(seed))
}

// Ensemble is a set of independent FRT embeddings used as a one-sided
// approximate distance oracle (take the minimum estimate over trees; it
// never under-estimates).
type Ensemble = frt.Ensemble

// EnsembleStats summarises an ensemble's Min estimator against exact
// distances (see frt.EnsembleStats for field semantics).
type EnsembleStats = frt.EnsembleStats

// OracleIndex is the batched query service over an ensemble: trees are
// preprocessed into flat level-ancestor and prefix-weight tables so Min
// costs O(trees · log depth) array lookups, and MinBatch/MedianBatch
// answer pair slices in parallel. Obtain one from (*Ensemble).Index().
type OracleIndex = frt.OracleIndex

// TreeIndex preprocesses a single FRT tree for O(log depth) pointer-free
// distance queries (bitwise identical to Tree.Dist).
type TreeIndex = frt.TreeIndex

// NewTreeIndex preprocesses t in O(n · depth).
func NewTreeIndex(t *Tree) (*TreeIndex, error) { return frt.NewTreeIndex(t) }

// Pair is a distance-query pair for the batched oracle APIs.
type Pair = frt.Pair

// SnapshotMeta records the provenance of a serialised ensemble (the shape
// of the graph it was sampled from).
type SnapshotMeta = frt.SnapshotMeta

// WriteSnapshot serialises a built ensemble into the versioned binary
// snapshot format served by `parmbfd -load`: a section-table header, flat
// per-tree arrays, and a whole-file checksum. Reloading it and indexing
// yields bitwise-identical query answers.
func WriteSnapshot(w io.Writer, ens *Ensemble, meta SnapshotMeta) error {
	return frt.WriteSnapshot(w, ens, meta)
}

// ReadSnapshot parses and validates a snapshot produced by WriteSnapshot.
// Corrupt or hostile input is rejected with an error — never a panic or an
// allocation proportional to unvalidated header counts.
func ReadSnapshot(data []byte) (*Ensemble, SnapshotMeta, error) {
	return frt.ReadSnapshot(data)
}

// WriteSnapshotFile atomically writes a snapshot file (temp file + rename).
func WriteSnapshotFile(path string, ens *Ensemble, meta SnapshotMeta) error {
	return frt.WriteSnapshotFile(path, ens, meta)
}

// ReadSnapshotFile reads and validates a snapshot file.
func ReadSnapshotFile(path string) (*Ensemble, SnapshotMeta, error) {
	return frt.ReadSnapshotFile(path)
}

// Embedder runs the tree-independent pipeline stages (hop set, simulated
// graph H, oracle) once per graph and then draws any number of FRT trees
// against them — the efficient way to sample ensembles. Trees within one
// SampleEnsemble call are drawn concurrently, and a fixed seed yields the
// identical ensemble for every parallelism setting.
type Embedder = frt.Embedder

// NewEmbedder builds the shared sampling pipeline for g.
func NewEmbedder(g *Graph, seed uint64) (*Embedder, error) {
	return frt.NewEmbedder(g, frt.Options{RNG: par.NewRNG(seed)})
}

// SampleEnsemble draws `count` independent trees from the FRT distribution
// of g via the oracle pipeline, sharing the hop-set and H construction
// across trees and sampling them concurrently.
func SampleEnsemble(g *Graph, count int, seed uint64) (*Ensemble, error) {
	e, err := NewEmbedder(g, seed)
	if err != nil {
		return nil, err
	}
	return e.SampleEnsemble(count)
}

// CongestResult is the outcome of a simulated distributed (Congest-model)
// LE-list computation: lists, the random order, and the round count.
type CongestResult = congest.Result

// DistributedFRT simulates the distributed tree-embedding computation of §8
// of the paper in the Congest model, running both the Khan et al. per-hop
// algorithm and the skeleton-based algorithm and returning whichever needed
// fewer rounds (Theorem 8.1's min{·,·} bound). Build the tree from the
// result with BuildTreeFromLists.
func DistributedFRT(g *Graph, seed uint64) *CongestResult {
	return congest.BestOfBoth(g, par.NewRNG(seed))
}

// DistributedKhan simulates only the Khan et al. algorithm (O(SPD·log n)
// rounds).
func DistributedKhan(g *Graph, seed uint64) *CongestResult {
	return congest.Khan(g, par.NewRNG(seed))
}

// DistributedSkeleton simulates only the skeleton-based algorithm
// (≈ Õ(√n + D) rounds, stretch bound 2k−1 on top of the FRT stretch).
func DistributedSkeleton(g *Graph, seed uint64) *CongestResult {
	return congest.Skeleton(g, par.NewRNG(seed), congest.SkeletonOptions{})
}

// BuildTreeFromLists assembles the FRT tree encoded by LE lists (e.g. from
// a CongestResult) with the scale β drawn from the given seed.
func BuildTreeFromLists(res *CongestResult, seed uint64) (*Tree, error) {
	return frt.BuildTree(res.Lists, res.Order, frt.RandomBeta(par.NewRNG(seed)))
}

// SteinerResult is a Steiner tree: a subgraph of G spanning the terminals.
type SteinerResult = steiner.Result

// SolveSteiner computes an expected O(log n)-approximate Steiner tree via a
// sampled FRT embedding — the extension application motivated by the
// paper's introduction ("a plethora of Steiner-type problems").
func SolveSteiner(g *Graph, terminals []Node, seed uint64) (*SteinerResult, error) {
	return steiner.Solve(g, terminals, steiner.Options{RNG: par.NewRNG(seed)})
}

// SteinerBaseline computes the classic 2-approximate Steiner tree (MST of
// the terminals' metric closure).
func SteinerBaseline(g *Graph, terminals []Node) (*SteinerResult, error) {
	return steiner.MetricClosureMST(g, terminals)
}

// KMedianAssignment maps every node of g to its serving center (nearest
// member of centers).
func KMedianAssignment(g *Graph, centers []Node) []Node {
	return kmedian.Assignment(g, centers)
}

// RoutingTables holds oblivious-routing state over a tree ensemble: shared
// next-hop tables toward every cluster center plus per-tree decomposition
// indexes. Build once, answer any demand pair without seeing the others.
type RoutingTables = routing.Tables

// RouteResult is one routed pair: the walked path in G, its length, and the
// tree-distance certificate it stays under.
type RouteResult = routing.RouteResult

// BuildRoutingTables samples FRT trees of g and precomputes the
// oblivious-routing tables (expected O(log n) stretch per routed pair).
func BuildRoutingTables(g *Graph, trees int, seed uint64) (*RoutingTables, error) {
	return routing.Build(g, routing.Options{RNG: par.NewRNG(seed), Trees: trees})
}

// ValidateRoute audits one routed pair against g: endpoints, every hop a
// real edge, exact length accounting, and the tree-distance certificate.
func ValidateRoute(g *Graph, u, v Node, r *RouteResult) error {
	return routing.Validate(g, u, v, r)
}
