// Command frtembed samples FRT metric tree embeddings from a weighted
// graph: it reads (or generates) a graph, draws -trees trees from the FRT
// distribution through the shared-pipeline Embedder (hop set, simulated
// graph H, and oracle built once; trees sampled concurrently), and reports
// per-tree stretch and ensemble min-stretch statistics and, optionally, the
// first tree itself.
//
// Usage:
//
//	frtembed -gen random -n 256 -m 1024 -trees 5 -pairs 50
//	frtembed -in graph.txt -trees 3 -print-tree
//
// Graph files use the edge-list format of internal/graph (p/e lines).
package main

import (
	"flag"
	"fmt"
	"os"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
)

func main() {
	var (
		in        = flag.String("in", "", "read graph from file (edge-list format)")
		gen       = flag.String("gen", "random", "generator: random | grid | path | cycle | geometric | lollipop | powerlaw")
		n         = flag.Int("n", 256, "generated graph size")
		m         = flag.Int("m", 0, "generated edge count (random generator; default 4n)")
		seed      = flag.Uint64("seed", 1, "random seed")
		trees     = flag.Int("trees", 3, "number of trees to sample")
		pairs     = flag.Int("pairs", 50, "node pairs for stretch measurement")
		exact     = flag.Bool("exact", false, "use the exact-metric baseline sampler instead of the oracle pipeline")
		printTree = flag.Bool("print-tree", false, "print the first sampled tree")
		treeOut   = flag.String("tree-out", "", "write the first sampled tree to this file")
	)
	flag.Parse()

	if *trees < 1 {
		fmt.Fprintln(os.Stderr, "error: -trees must be ≥ 1")
		os.Exit(1)
	}
	rng := par.NewRNG(*seed)
	g, err := loadGraph(*in, *gen, *n, *m, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("graph: n=%d m=%d connected=%v\n", g.N(), g.M(), g.Connected())

	// Sample all trees up front: the oracle pipeline goes through the
	// Embedder, which builds the hop set, H, and the oracle once and draws
	// the trees concurrently; the exact baseline stays per-tree.
	var embs []*frt.Embedding
	var err2 error
	if *exact {
		for i := 0; i < *trees; i++ {
			emb, err := frt.SampleExact(g, rng, nil)
			if err != nil {
				err2 = err
				break
			}
			embs = append(embs, emb)
		}
	} else {
		var e *frt.Embedder
		e, err2 = frt.NewEmbedder(g, frt.Options{RNG: rng})
		if err2 == nil {
			embs, err2 = e.SampleEmbeddings(*trees)
		}
	}
	if err2 != nil {
		fmt.Fprintln(os.Stderr, "error:", err2)
		os.Exit(1)
	}
	var first *frt.Embedding
	if len(embs) > 0 {
		first = embs[0]
	}
	next := 0
	sampler := func() (*frt.Embedding, error) {
		emb := embs[next]
		next++
		return emb, nil
	}
	stats, err := frt.MeasureStretch(g, sampler, *trees, *pairs, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	ensemble := &frt.Ensemble{Trees: make([]*frt.Tree, len(embs))}
	for i, emb := range embs {
		ensemble.Trees[i] = emb.Tree
	}
	estats := ensemble.Evaluate(g, *pairs, rng)
	fmt.Printf("trees=%d pairs=%d\n", stats.Trees, stats.Pairs)
	fmt.Printf("avg stretch        %.3f\n", stats.AvgStretch)
	fmt.Printf("max avg stretch    %.3f\n", stats.MaxAvgStretch)
	fmt.Printf("max single stretch %.3f\n", stats.MaxStretch)
	fmt.Printf("min ratio          %.3f (must be ≥ 1)\n", stats.MinRatio)
	fmt.Printf("ensemble min-stretch avg %.3f max %.3f dominance=%v\n",
		estats.AvgMinStretch, estats.MaxMinStretch, estats.DominanceOK)
	if first != nil {
		fmt.Printf("first tree: %d tree nodes, depth %d, β=%.3f, oracle iterations %d\n",
			first.Tree.NumNodes(), first.Tree.Depth(), first.Beta, first.Iterations)
		if *printTree {
			printTreeOut(first.Tree)
		}
		if *treeOut != "" {
			f, err := os.Create(*treeOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			if err := frt.WriteTree(f, first.Tree); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			fmt.Printf("tree written to %s\n", *treeOut)
		}
	}
}

func loadGraph(in, gen string, n, m int, rng *par.RNG) (*graph.Graph, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.Read(f)
	}
	switch gen {
	case "random":
		if m <= 0 {
			m = 4 * n
		}
		return graph.RandomConnected(n, m, 10, rng), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return graph.GridGraph(side, side, 10, rng), nil
	case "path":
		return graph.PathGraph(n, 1), nil
	case "cycle":
		return graph.CycleGraph(n, 1), nil
	case "geometric":
		return graph.RandomGeometric(n, 0.15, rng), nil
	case "lollipop":
		return graph.Lollipop(n/4, 3*n/4), nil
	case "powerlaw":
		return graph.BarabasiAlbert(n, 3, 10, rng), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}

func printTreeOut(t *frt.Tree) {
	fmt.Println("tree (node parent level center edgeWeight):")
	for u := 0; u < t.NumNodes(); u++ {
		fmt.Printf("  %d %d %d %d %g\n", u, t.Parent[u], t.Level[u], t.Center[u], t.EdgeWeight[u])
	}
	fmt.Println("leaves (graphNode -> treeNode):")
	for v, leaf := range t.Leaf {
		fmt.Printf("  %d -> %d\n", v, leaf)
	}
}
