package main

import (
	"os"
	"path/filepath"
	"testing"

	"parmbf/internal/graph"
	"parmbf/internal/par"
)

func TestLoadGraphGenerators(t *testing.T) {
	rng := par.NewRNG(1)
	for _, gen := range []string{"random", "grid", "path", "cycle", "geometric", "lollipop", "powerlaw"} {
		g, err := loadGraph("", gen, 40, 0, rng)
		if err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		if g.N() < 40 {
			t.Fatalf("%s: n = %d", gen, g.N())
		}
		if !g.Connected() {
			t.Fatalf("%s: disconnected", gen)
		}
	}
	if _, err := loadGraph("", "nope", 10, 0, rng); err == nil {
		t.Fatal("unknown generator accepted")
	}
}

func TestLoadGraphFromFile(t *testing.T) {
	rng := par.NewRNG(2)
	g := graph.RandomConnected(20, 40, 5, rng)
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.Write(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := loadGraph(path, "", 0, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 20 || got.M() != 40 {
		t.Fatalf("loaded %d/%d", got.N(), got.M())
	}
	if _, err := loadGraph(filepath.Join(t.TempDir(), "missing.txt"), "", 0, 0, rng); err == nil {
		t.Fatal("missing file accepted")
	}
}
