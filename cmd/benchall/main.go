// Command benchall runs the complete reproduction suite (experiments E1–E12
// and ablations A1–A4 of DESIGN.md) at full size and prints every table —
// the payload recorded in EXPERIMENTS.md.
//
// Usage:
//
//	benchall [-seed N] [-quick] [-only E5,E9]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"parmbf/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 1, "random seed driving all experiments")
	quick := flag.Bool("quick", false, "run reduced-size workloads")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	suite := map[string]func(experiments.Config) *experiments.Table{
		"E1": experiments.E1Stretch, "E2": experiments.E2SPDH,
		"E3": experiments.E3HStretch, "E4": experiments.E4LELists,
		"E5": experiments.E5Work, "E6": experiments.E6HopSet,
		"E7": experiments.E7Metric, "E8": experiments.E8Spanner,
		"E9": experiments.E9Congest, "E10": experiments.E10Zoo,
		"E11": experiments.E11KMedian, "E12": experiments.E12BuyAtBulk,
		"E13": experiments.E13Ensemble,
		"A1":  experiments.A1Filtering, "A2": experiments.A2LevelPenalty,
		"A3": experiments.A3HopSetChoice, "A4": experiments.A4SpannerPre,
		"X1": experiments.X1Steiner,
	}
	order := []string{
		"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13",
		"A1", "A2", "A3", "A4", "X1",
	}

	selected := order
	if *only != "" {
		selected = nil
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			if _, ok := suite[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (valid: %s)\n", id, strings.Join(order, ", "))
				os.Exit(2)
			}
			selected = append(selected, id)
		}
	}

	fmt.Printf("parmbf reproduction suite — seed=%d quick=%v\n\n", *seed, *quick)
	for _, id := range selected {
		start := time.Now()
		table := suite[id](cfg)
		fmt.Print(table.Format())
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}
}
