package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// testFleet builds one ensemble, serves it from `workers` independent worker
// processes (each indexing the full snapshot, as -load replicas would), and
// fronts them with a router. The returned single-process server is the
// bitwise reference the fleet must reproduce.
func testFleet(t *testing.T, workers int, attemptTimeout, healthEvery time.Duration) (*router, []*httptest.Server, *server) {
	t.Helper()
	rng := par.NewRNG(11)
	g := graph.RandomConnected(48, 140, 8, rng)
	ens, meta, err := buildEnsemble(g, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := newServer(g, ens, meta, nil)
	if err != nil {
		t.Fatal(err)
	}
	var (
		urls []string
		tss  []*httptest.Server
	)
	for i := 0; i < workers; i++ {
		ws, err := newServer(g, ens, meta, nil)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(ws.mux())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
		tss = append(tss, ts)
	}
	rt, err := newRouter(urls, 8, attemptTimeout, healthEvery)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt, tss, ref
}

func randomWirePairs(seed uint64, n, count int) ([][2]int64, []frt.Pair) {
	rng := par.NewRNG(seed)
	wire := make([][2]int64, count)
	pairs := make([]frt.Pair, count)
	for i := range wire {
		u, v := rng.Intn(n), rng.Intn(n)
		if i%9 == 0 {
			v = u // exercise the u == v zero path through the merge
		}
		wire[i] = [2]int64{int64(u), int64(v)}
		pairs[i] = frt.Pair{U: graph.Node(u), V: graph.Node(v)}
	}
	return wire, pairs
}

// TestRouterShardedMergeMatchesSingle is the sharded-merge differential:
// for fleets of 1, 2, and 4 workers (K=6, so 2- and 4-worker fleets get
// uneven shards), the router's min and median answers must equal the
// single-process OracleIndex bitwise.
func TestRouterShardedMergeMatchesSingle(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		rt, _, ref := testFleet(t, workers, 2*time.Second, time.Hour)
		rts := httptest.NewServer(rt.mux())
		t.Cleanup(rts.Close)

		wire, pairs := randomWirePairs(uint64(workers), ref.state.Load().n, 64)
		wantMin := ref.state.Load().idx.MinBatch(pairs, nil)
		wantMed := ref.state.Load().idx.MedianBatch(pairs, nil)
		for _, c := range []struct {
			stat string
			want []float64
		}{{"min", wantMin}, {"median", wantMed}} {
			body, _ := json.Marshal(batchRequest{Pairs: wire, Stat: c.stat})
			code, br := postJSON(t, rts.URL+"/batch", string(body))
			if code != http.StatusOK {
				t.Fatalf("%d workers %s: code %d", workers, c.stat, code)
			}
			for i := range c.want {
				if br.Dists[i] != c.want[i] {
					t.Fatalf("%d workers %s pair %d: router %v, single %v",
						workers, c.stat, i, br.Dists[i], c.want[i])
				}
			}
		}
		// /dist goes through the same fan-out path.
		var got struct {
			Dist float64 `json:"dist"`
		}
		if code := getJSON(t, rts.URL+"/dist?u=3&v=40&stat=median", &got); code != http.StatusOK {
			t.Fatalf("%d workers /dist: code %d", workers, code)
		}
		if want := ref.state.Load().idx.Median(3, 40); got.Dist != want {
			t.Fatalf("%d workers /dist: %v, want %v", workers, got.Dist, want)
		}
	}
}

// TestRouterRejectsBadInput: the router applies the same structured
// validation as a worker, and hides the pertree wire protocol from clients.
func TestRouterRejectsBadInput(t *testing.T) {
	rt, _, _ := testFleet(t, 2, 2*time.Second, time.Hour)
	rts := httptest.NewServer(rt.mux())
	t.Cleanup(rts.Close)
	cases := []struct {
		name, body, code string
	}{
		{"not json", "{", errBadJSON},
		{"empty pairs", `{"pairs":[]}`, errEmptyPairs},
		{"out of range", `{"pairs":[[0,99999]]}`, errPairOutOfRange},
		{"pertree not public", `{"pairs":[[0,1]],"stat":"pertree"}`, errBadStat},
	}
	for _, c := range cases {
		status, e := postForError(t, rts.URL+"/batch", c.body)
		if status != http.StatusBadRequest || e.Code != c.code {
			t.Fatalf("%s: status %d code %q, want 400 %q", c.name, status, e.Code, c.code)
		}
	}
	if code := getJSON(t, rts.URL+"/dist?u=0&v=99999", nil); code != http.StatusBadRequest {
		t.Fatalf("router /dist out-of-range: code %d, want 400", code)
	}
}

// TestRouterSurvivesKilledWorker kills one replica outright: /batch must
// stay bitwise correct by retrying the dead worker's shard on survivors,
// /healthz must degrade, /stats must count the failovers, and a fully dead
// fleet must fail loudly with 502/503 rather than hang.
func TestRouterSurvivesKilledWorker(t *testing.T) {
	rt, tss, ref := testFleet(t, 3, time.Second, 50*time.Millisecond)
	rts := httptest.NewServer(rt.mux())
	t.Cleanup(rts.Close)

	tss[1].Close() // kill the middle replica (owns a non-empty shard of K=6)

	wire, pairs := randomWirePairs(7, ref.state.Load().n, 32)
	want := ref.state.Load().idx.MinBatch(pairs, nil)
	body, _ := json.Marshal(batchRequest{Pairs: wire})
	code, br := postJSON(t, rts.URL+"/batch", string(body))
	if code != http.StatusOK {
		t.Fatalf("batch with dead worker: code %d", code)
	}
	for i := range want {
		if br.Dists[i] != want[i] {
			t.Fatalf("degraded pair %d: %v, want %v", i, br.Dists[i], want[i])
		}
	}

	var health struct {
		Status  string `json:"status"`
		Workers []struct {
			Healthy bool `json:"healthy"`
		} `json:"workers"`
	}
	if code := getJSON(t, rts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("degraded healthz: code %d", code)
	}
	if health.Status != "degraded" {
		t.Fatalf("healthz status %q, want degraded", health.Status)
	}
	downs := 0
	for _, w := range health.Workers {
		if !w.Healthy {
			downs++
		}
	}
	if downs != 1 {
		t.Fatalf("healthz reports %d down workers, want 1", downs)
	}
	var stats struct {
		Failovers      int64 `json:"failovers"`
		HealthyWorkers int   `json:"healthyWorkers"`
	}
	if code := getJSON(t, rts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: code %d", code)
	}
	if stats.Failovers < 1 {
		t.Fatalf("failovers = %d, want ≥ 1", stats.Failovers)
	}
	if stats.HealthyWorkers != 2 {
		t.Fatalf("healthyWorkers = %d, want 2", stats.HealthyWorkers)
	}

	// Kill the rest: the router must answer 502 on /batch and 503 on
	// /healthz, not hang or return partial data.
	tss[0].Close()
	tss[2].Close()
	status, e := postForError(t, rts.URL+"/batch", string(body))
	if status != http.StatusBadGateway || e.Code != errUpstreamUnavailable {
		t.Fatalf("dead fleet batch: status %d code %q, want 502 %q", status, e.Code, errUpstreamUnavailable)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := getJSON(t, rts.URL+"/healthz", nil); code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported a dead fleet")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRouterSurvivesHangingWorker wedges one replica's /batch (accepts the
// request, never answers — the failure mode a kill doesn't cover): the
// per-attempt timeout must fire and the shard must be retried on a healthy
// replica within the request deadline, with correct results.
func TestRouterSurvivesHangingWorker(t *testing.T) {
	rt, _, ref := testFleet(t, 2, 400*time.Millisecond, time.Hour)

	release := make(chan struct{})
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/batch" {
			<-release
			writeError(w, http.StatusServiceUnavailable, errOverloaded, "released", nil)
			return
		}
		// /stats and /healthz answer normally so the worker looks alive.
		writeJSON(w, http.StatusOK, statsResponse{Nodes: int64(ref.state.Load().n), Trees: int64(ref.state.Load().idx.NumTrees())})
	}))
	t.Cleanup(hang.Close)
	t.Cleanup(func() { close(release) }) // runs before hang.Close, unwedging it

	// Rebuild the router with the hanging worker as the primary of shard 0.
	urls := []string{hang.URL, rt.workers[0].url, rt.workers[1].url}
	rt2, err := newRouter(urls, 8, 400*time.Millisecond, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt2.Close)
	rts := httptest.NewServer(rt2.mux())
	t.Cleanup(rts.Close)

	wire, pairs := randomWirePairs(13, ref.state.Load().n, 16)
	want := ref.state.Load().idx.MedianBatch(pairs, nil)
	body, _ := json.Marshal(batchRequest{Pairs: wire, Stat: "median"})
	start := time.Now()
	code, br := postJSON(t, rts.URL+"/batch", string(body))
	if code != http.StatusOK {
		t.Fatalf("batch with hung worker: code %d", code)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("retry took %v — per-attempt timeout did not bound the hang", elapsed)
	}
	for i := range want {
		if br.Dists[i] != want[i] {
			t.Fatalf("hung-worker pair %d: %v, want %v", i, br.Dists[i], want[i])
		}
	}
}

// TestRouterShutdownLeaksNoGoroutines pins the lifecycle: a router that
// served traffic (including failed attempts against a dead worker) must
// release every goroutine on Close — health loop, fan-out workers, and
// transport keep-alives.
func TestRouterShutdownLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	rng := par.NewRNG(17)
	g := graph.RandomConnected(32, 96, 8, rng)
	ens, meta, err := buildEnsemble(g, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	ws1, _ := newServer(g, ens, meta, nil)
	ws2, _ := newServer(g, ens, meta, nil)
	ts1 := httptest.NewServer(ws1.mux())
	ts2 := httptest.NewServer(ws2.mux())
	rt, err := newRouter([]string{ts1.URL, ts2.URL}, 4, 300*time.Millisecond, 20*time.Millisecond)
	if err != nil {
		ts1.Close()
		ts2.Close()
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.mux())

	wire, _ := randomWirePairs(19, 32, 8)
	body, _ := json.Marshal(batchRequest{Pairs: wire})
	if code, _ := postJSON(t, rts.URL+"/batch", string(body)); code != http.StatusOK {
		t.Fatalf("warm-up batch: code %d", code)
	}
	ts2.Close() // force failure + retry traffic before shutdown
	if code, _ := postJSON(t, rts.URL+"/batch", string(body)); code != http.StatusOK {
		t.Fatalf("degraded batch: code %d", code)
	}

	rts.Close()
	rt.Close()
	ts1.Close()
	http.DefaultClient.CloseIdleConnections() // postJSON's keep-alives, not the router's

	// Goroutine counts settle asynchronously (closed servers wind down
	// their conn goroutines); poll instead of sleeping a fixed amount.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if now := runtime.NumGoroutine(); now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: %d before, %d after shutdown\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func TestShardTrees(t *testing.T) {
	cases := []struct {
		k, w int
		want [][2]int
	}{
		{6, 1, [][2]int{{0, 6}}},
		{6, 2, [][2]int{{0, 3}, {3, 6}}},
		{6, 4, [][2]int{{0, 2}, {2, 4}, {4, 5}, {5, 6}}},
		{2, 3, [][2]int{{0, 1}, {1, 2}, {2, 2}}},
	}
	for _, c := range cases {
		got := shardTrees(c.k, c.w)
		if len(got) != len(c.want) {
			t.Fatalf("shardTrees(%d,%d) = %v", c.k, c.w, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("shardTrees(%d,%d) = %v, want %v", c.k, c.w, got, c.want)
			}
		}
	}
}
