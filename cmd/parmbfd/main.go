// Command parmbfd is the FRT distance-oracle serving tier. A single server
// builds (or loads) an Embedder ensemble, preprocesses it into an
// frt.OracleIndex, and serves single and batched distance queries over HTTP;
// a router shards the ensemble's K trees across a fleet of such servers and
// merges their partial per-tree answers, so query throughput scales out
// beyond one process.
//
// Build-and-serve (the whole pipeline at startup — seconds and up):
//
//	parmbfd -addr :8337 -gen random -n 4096 -m 16384 -trees 16
//	parmbfd -addr :8337 -in graph.txt -trees 8
//
// Snapshot persistence (cold-start in milliseconds by loading, not
// rebuilding; -save also writes the snapshot that -load serves):
//
//	parmbfd -gen random -n 4096 -trees 16 -save oracle.snap
//	parmbfd -addr :8337 -load oracle.snap
//
// Sharded fleet (every worker loads the full snapshot; the router assigns
// each worker a contiguous tree shard, fans /batch out with bounded
// in-flight backpressure, retries failed shards on surviving replicas, and
// merges Min/Median server-side — bitwise identical to one big server):
//
//	parmbfd -addr :8341 -load oracle.snap &
//	parmbfd -addr :8342 -load oracle.snap &
//	parmbfd -addr :8337 -router -workers http://localhost:8341,http://localhost:8342
//
// Endpoints (identical on server and router):
//
//	GET  /healthz                       liveness (router: fleet health)
//	GET  /stats                         shape + query counters
//	GET  /dist?u=4&v=9[&stat=median]    one estimate (default stat=min)
//	POST /batch                         {"pairs":[[u,v],…],"stat":"min"}
//	                                    → {"dists":[…]}
//	POST /kmedian                       {"k":4,"seed":7} → centers + exact
//	                                    cost (router: per-tree shard fan-out,
//	                                    cheapest plan wins)
//	POST /buyatbulk                     {"demands":[…],"cables":[…]} →
//	                                    purchase plan + cost
//	POST /route                         {"pairs":[[u,v],…]} → walkable paths
//	                                    with tree certificates
//
// Scenario endpoints need the source graph, so a server started with -load
// alone answers them 409 scenario_unavailable; build-and-serve (or
// -dynamic) servers answer them, and the router proxies /buyatbulk and
// /route round-robin with the usual failover.
//
// Workers additionally answer the partial-ensemble query the router fans
// out: {"stat":"pertree","trees":[lo,hi]} returns the individual tree
// distances of trees lo≤t<hi, pair-major.
//
// Errors are structured JSON: {"error":{"code":…,"message":…,"details":…}}.
// See the README's serving section for the code list.
//
// Load-generating client (measures server-side batched throughput; -json
// appends a machine-readable summary line, e.g. for BENCH_oracle.json;
// -mode picks the workload: batch distance queries or the kmedian /
// buyatbulk / route scenario endpoints):
//
//	parmbfd -client -target http://localhost:8337 -requests 200 -batch 256 -concurrency 8
//	parmbfd -client -target http://localhost:8337 -mode route -requests 50 -batch 128
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"parmbf/internal/apps/routing"
	"parmbf/internal/frt"
	"parmbf/internal/graph"
	"parmbf/internal/par"
)

// maxBatchPairs caps one /batch request: large enough to amortise, small
// enough that a hostile request cannot make the server allocate without
// bound.
const maxBatchPairs = 1 << 16

// maxBodyBytes caps every request body at the transport layer
// (http.MaxBytesReader): a hostile client cannot stream an unbounded body at
// the JSON decoder regardless of what the payload claims to contain.
const maxBodyBytes = 1 << 24

func main() {
	var (
		addr  = flag.String("addr", ":8337", "listen address (server and router modes)")
		in    = flag.String("in", "", "read graph from file (edge-list format)")
		gen   = flag.String("gen", "random", "generator: random | grid | path | cycle | geometric | lollipop | powerlaw")
		n     = flag.Int("n", 4096, "generated graph size")
		m     = flag.Int("m", 0, "generated edge count (random generator; default 4n)")
		seed  = flag.Uint64("seed", 1, "random seed")
		trees = flag.Int("trees", 16, "ensemble size K")

		save = flag.String("save", "", "write the built ensemble to a snapshot file, then serve")
		load = flag.String("load", "", "serve from a snapshot file instead of rebuilding the pipeline")

		dynamic = flag.Bool("dynamic", false, "build via the direct LE-list pipeline and accept live edits on POST /update")
		drain   = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain deadline for in-flight requests")

		routerMode    = flag.Bool("router", false, "run as a sharding router over -workers instead of serving an ensemble")
		workers       = flag.String("workers", "", "comma-separated worker base URLs (router mode)")
		inflight      = flag.Int("inflight", 64, "max in-flight upstream requests across all /batch fan-outs (router mode)")
		workerTimeout = flag.Duration("worker-timeout", 5*time.Second, "per-attempt upstream timeout (router mode)")
		healthEvery   = flag.Duration("health-interval", 2*time.Second, "worker health-probe interval (router mode)")

		client      = flag.Bool("client", false, "run as load-generating client instead of server")
		mode        = flag.String("mode", "batch", "client workload: batch | kmedian | buyatbulk | route (client mode)")
		target      = flag.String("target", "http://localhost:8337", "server URL (client mode)")
		requests    = flag.Int("requests", 100, "batch requests to send (client mode)")
		batch       = flag.Int("batch", 256, "pairs per batch request (client mode)")
		concurrency = flag.Int("concurrency", 4, "concurrent client connections (client mode)")
		jsonOut     = flag.String("json", "", "append a JSON summary line of the client run to this file (client mode)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	if *client {
		if err := runClient(*target, *mode, *requests, *batch, *concurrency, *seed, *jsonOut); err != nil {
			fail(err)
		}
		return
	}

	if *routerMode {
		urls := splitWorkerURLs(*workers)
		if len(urls) == 0 {
			fail(fmt.Errorf("-router needs -workers url1,url2,…"))
		}
		rt, err := newRouter(urls, *inflight, *workerTimeout, *healthEvery)
		if err != nil {
			fail(err)
		}
		fmt.Printf("router: n=%d trees=%d over %d workers, shards %v\n", rt.n, rt.k, len(rt.workers), rt.shards)
		fmt.Printf("serving on %s\n", *addr)
		if err := listenAndServe(*addr, rt.mux(), *drain, rt.Close); err != nil {
			fail(err)
		}
		return
	}

	var (
		ens  *frt.Ensemble
		meta frt.SnapshotMeta
		dyn  *frt.DynamicEnsemble
		g    *graph.Graph
	)
	start := time.Now()
	switch {
	case *load != "":
		if *dynamic {
			// A snapshot holds only the trees, not the LE-list fixpoint state
			// incremental repair resumes from.
			fail(fmt.Errorf("-dynamic requires building from a graph (-in or -gen), not -load"))
		}
		var err error
		ens, meta, err = frt.ReadSnapshotFile(*load)
		if err != nil {
			fail(err)
		}
		fmt.Printf("snapshot %s: n=%d m=%d K=%d loaded in %v\n",
			*load, meta.GraphNodes, meta.GraphEdges, len(ens.Trees), time.Since(start).Round(time.Millisecond))
	case *dynamic:
		rng := par.NewRNG(*seed)
		var err error
		g, err = loadGraph(*in, *gen, *n, *m, rng)
		if err != nil {
			fail(err)
		}
		fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())
		dyn, err = frt.NewDynamicEnsemble(g, *trees, rng, nil)
		if err != nil {
			fail(err)
		}
		ens, meta = dyn.Ensemble(), frt.SnapshotMeta{GraphNodes: g.N(), GraphEdges: g.M()}
		fmt.Printf("pipeline (direct, dynamic): K=%d trees built in %v\n", len(ens.Trees), time.Since(start).Round(time.Millisecond))
	default:
		rng := par.NewRNG(*seed)
		var err error
		g, err = loadGraph(*in, *gen, *n, *m, rng)
		if err != nil {
			fail(err)
		}
		fmt.Printf("graph: n=%d m=%d\n", g.N(), g.M())
		var err2 error
		ens, meta, err2 = buildEnsemble(g, *trees, rng)
		if err2 != nil {
			fail(err2)
		}
		fmt.Printf("pipeline: K=%d trees built in %v\n", len(ens.Trees), time.Since(start).Round(time.Millisecond))
	}
	if *save != "" {
		t0 := time.Now()
		if err := frt.WriteSnapshotFile(*save, ens, meta); err != nil {
			fail(err)
		}
		fmt.Printf("snapshot saved to %s in %v\n", *save, time.Since(t0).Round(time.Millisecond))
	}
	t0 := time.Now()
	s, err := newServer(g, ens, meta, dyn)
	if err != nil {
		fail(err)
	}
	st := s.state.Load()
	fmt.Printf("oracle: K=%d trees, max depth %d, indexed in %v (total cold start %v)\n",
		st.idx.NumTrees(), st.idx.MaxDepth(), time.Since(t0).Round(time.Millisecond),
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("serving on %s\n", *addr)
	if err := listenAndServe(*addr, s.mux(), *drain, nil); err != nil {
		fail(err)
	}
}

func splitWorkerURLs(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	return urls
}

// listenAndServe serves h until the listener fails or the process receives
// SIGINT/SIGTERM, then shuts down gracefully: the listener closes at once
// (the router's health probes and shard retries see connection refused and
// stop cleanly), in-flight requests — including a /batch mid-merge or an
// /update mid-repair — get up to drain to complete, and only then does
// onStopped (e.g. the router's health-loop teardown) run. A nil error means
// a clean signal-initiated exit.
func listenAndServe(addr string, h http.Handler, drain time.Duration, onStopped func()) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serveGracefully(newHTTPServer(h), ln, drain, onStopped)
}

func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler: h,
		// Serving-hardening timeouts: a slow-loris client (or one that
		// never finishes a /batch body) must not pin a connection forever.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// serveGracefully serves on ln until the listener fails or SIGINT/SIGTERM
// arrives. A signal closes the listener immediately — new connections are
// refused, so the router's health probes and shard retries against a
// stopping worker fail fast and move on — while in-flight requests
// (including a /batch mid-merge or an /update mid-repair) get up to drain to
// complete. onStopped (e.g. the router's health-loop teardown) runs after
// the drain. A nil error means a clean signal-initiated exit.
func serveGracefully(srv *http.Server, ln net.Listener, drain time.Duration, onStopped func()) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	var err error
	select {
	case err = <-errCh:
	case <-ctx.Done():
		stop() // a second signal kills immediately via the default handler
		fmt.Printf("signal received, draining in-flight requests (up to %v)\n", drain)
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		err = srv.Shutdown(sctx)
		cancel()
		<-errCh // Serve has returned ErrServerClosed
	}
	if onStopped != nil {
		onStopped()
	}
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	return err
}

// serverState is one immutable serving snapshot: the indexed ensemble plus
// the graph shape and a monotonic version. Handlers load it exactly once per
// request through an atomic pointer, so every query is answered consistently
// against a single snapshot even while POST /update swaps in the next one —
// the bounded-staleness contract: a query admitted before a swap may answer
// from the pre-update index, never from a torn mix of the two.
type serverState struct {
	n, m    int // embedded graph shape (nodes, edges)
	version int64
	idx     *frt.OracleIndex
	ens     *frt.Ensemble
	// g is the embedded graph, retained only when the server built (or was
	// handed) it — the application scenarios (/kmedian, /buyatbulk, /route)
	// need the graph itself, not just the trees. A snapshot-loaded server has
	// g == nil and answers those endpoints with scenario_unavailable; pure
	// distance serving never touches g.
	g *graph.Graph
}

// server holds the current serving snapshot and the query counters. Each
// state snapshot is read-only after construction, so handlers share it
// without locking; the response buffers come from a pool. In static mode the
// graph itself is never retained — only its shape, so a snapshot-loaded
// server is indistinguishable from a freshly built one. In dynamic mode dyn
// retains the repairable fixpoint state; updateMu serialises updates.
type server struct {
	state   atomic.Pointer[serverState]
	started time.Time

	dyn      *frt.DynamicEnsemble // nil: static server, /update answers 409
	updateMu sync.Mutex           // serialises POST /update end to end

	// scenarioMu guards the lazily built oblivious-routing tables; they are
	// keyed by the serving-state version, so an /update invalidates them and
	// the next /route rebuilds against the new trees.
	scenarioMu    sync.Mutex
	routeTables   *routing.Tables
	routeTablesAt int64

	queries atomic.Int64 // pairs answered
	batches atomic.Int64 // /batch requests served
	updates atomic.Int64 // edit batches applied

	bufs sync.Pool // *[]float64 response buffers
}

// buildEnsemble runs the full shared pipeline once: hop set → simulated
// graph H → K concurrently sampled trees. This is the slow path a snapshot
// amortises away.
func buildEnsemble(g *graph.Graph, trees int, rng *par.RNG) (*frt.Ensemble, frt.SnapshotMeta, error) {
	e, err := frt.NewEmbedder(g, frt.Options{RNG: rng})
	if err != nil {
		return nil, frt.SnapshotMeta{}, err
	}
	ens, err := e.SampleEnsemble(trees)
	if err != nil {
		return nil, frt.SnapshotMeta{}, err
	}
	return ens, frt.SnapshotMeta{GraphNodes: g.N(), GraphEdges: g.M()}, nil
}

// newServer indexes the ensemble and wires the handler state. It serves
// identically whether ens was freshly sampled or loaded from a snapshot;
// passing a non-nil dyn additionally enables POST /update, and passing the
// embedded graph g enables the application-scenario endpoints (nil g — the
// snapshot-loaded case — makes them answer scenario_unavailable).
func newServer(g *graph.Graph, ens *frt.Ensemble, meta frt.SnapshotMeta, dyn *frt.DynamicEnsemble) (*server, error) {
	idx, err := ens.Index()
	if err != nil {
		return nil, err
	}
	s := &server{dyn: dyn, started: time.Now()}
	s.state.Store(&serverState{n: idx.NumLeaves(), m: meta.GraphEdges, idx: idx, ens: ens, g: g})
	s.bufs.New = func() any { b := make([]float64, 0, 1024); return &b }
	return s, nil
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /dist", s.handleDist)
	mux.HandleFunc("POST /batch", s.handleBatch)
	mux.HandleFunc("POST /update", s.handleUpdate)
	mux.HandleFunc("POST /kmedian", s.handleKMedian)
	mux.HandleFunc("POST /buyatbulk", s.handleBuyAtBulk)
	mux.HandleFunc("POST /route", s.handleRoute)
	return mux
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.state.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"mode":      "server",
		"dynamic":   s.dyn != nil,
		"scenarios": st.g != nil,
		"nodes":     st.n,
		"edges":     st.m,
		"trees":     st.idx.NumTrees(),
		"maxDepth":  st.idx.MaxDepth(),
		"version":   st.version,
		"queries":   s.queries.Load(),
		"batches":   s.batches.Load(),
		"updates":   s.updates.Load(),
		"uptimeMs":  time.Since(s.started).Milliseconds(),
	})
}

func (s *server) handleDist(w http.ResponseWriter, r *http.Request) {
	st := s.state.Load()
	u, err1 := parseNode(r.URL.Query().Get("u"), st.n)
	v, err2 := parseNode(r.URL.Query().Get("v"), st.n)
	if err1 != nil || err2 != nil {
		writeError(w, http.StatusBadRequest, errBadNode,
			"u and v must be node ids in [0, n)", map[string]any{"n": st.n})
		return
	}
	var d float64
	switch stat := r.URL.Query().Get("stat"); stat {
	case "", "min":
		d = st.idx.Min(u, v)
	case "median":
		d = st.idx.Median(u, v)
	default:
		writeError(w, http.StatusBadRequest, errBadStat,
			"stat must be min or median", map[string]any{"stat": stat})
		return
	}
	s.queries.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"u": u, "v": v, "dist": d})
}

// batchRequest is the /batch payload: pairs of node ids, the estimator to
// apply (min by default), and — for the router-facing "pertree" estimator —
// the half-open tree shard to answer for.
type batchRequest struct {
	Pairs [][2]int64 `json:"pairs"`
	Stat  string     `json:"stat"`
	Trees *[2]int    `json:"trees,omitempty"`
}

type batchResponse struct {
	Dists []float64 `json:"dists"`
	// Trees echoes the shard answered for a pertree request (pair-major:
	// Dists[i*(hi-lo) + (t-lo)] is pair i in tree t).
	Trees *[2]int `json:"trees,omitempty"`
}

// decodeBatch parses and validates a /batch body against node count n,
// writing the structured error response itself on failure. The body is read
// through http.MaxBytesReader, which (unlike a bare LimitReader) also closes
// the connection on overflow so the client cannot keep streaming, and lets
// the decode error be classified as a 413.
func decodeBatch(w http.ResponseWriter, r *http.Request, n int) ([]frt.Pair, *batchRequest, bool) {
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeDecodeError(w, err)
		return nil, nil, false
	}
	if len(req.Pairs) == 0 {
		writeError(w, http.StatusBadRequest, errEmptyPairs, "pairs must be non-empty", nil)
		return nil, nil, false
	}
	if len(req.Pairs) > maxBatchPairs {
		writeError(w, http.StatusRequestEntityTooLarge, errBatchTooLarge,
			fmt.Sprintf("batch of %d pairs exceeds cap %d", len(req.Pairs), maxBatchPairs),
			map[string]any{"max": maxBatchPairs, "got": len(req.Pairs)})
		return nil, nil, false
	}
	nn := int64(n)
	pairs := make([]frt.Pair, len(req.Pairs))
	for i, p := range req.Pairs {
		if p[0] < 0 || p[0] >= nn || p[1] < 0 || p[1] >= nn {
			writeError(w, http.StatusBadRequest, errPairOutOfRange,
				fmt.Sprintf("pair %d = [%d, %d] out of range", i, p[0], p[1]),
				map[string]any{"index": i, "pair": p, "n": n})
			return nil, nil, false
		}
		pairs[i] = frt.Pair{U: graph.Node(p[0]), V: graph.Node(p[1])}
	}
	return pairs, &req, true
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	st := s.state.Load()
	pairs, req, ok := decodeBatch(w, r, st.n)
	if !ok {
		return
	}
	bufp := s.bufs.Get().(*[]float64)
	defer s.bufs.Put(bufp)
	var out []float64
	resp := batchResponse{}
	switch req.Stat {
	case "", "min":
		out = st.idx.MinBatch(pairs, *bufp)
	case "median":
		out = st.idx.MedianBatch(pairs, *bufp)
	case "pertree":
		lo, hi := 0, st.idx.NumTrees()
		if req.Trees != nil {
			lo, hi = req.Trees[0], req.Trees[1]
		}
		var err error
		out, err = st.idx.PerTreeBatch(pairs, lo, hi, *bufp)
		if err != nil {
			writeError(w, http.StatusBadRequest, errBadTreeRange,
				err.Error(), map[string]any{"trees": [2]int{lo, hi}, "k": st.idx.NumTrees()})
			return
		}
		resp.Trees = &[2]int{lo, hi}
	default:
		writeError(w, http.StatusBadRequest, errBadStat,
			"stat must be min, median, or pertree", map[string]any{"stat": req.Stat})
		return
	}
	*bufp = out[:0]
	s.queries.Add(int64(len(pairs)))
	s.batches.Add(1)
	resp.Dists = out
	writeJSON(w, http.StatusOK, resp)
}

func parseNode(s string, n int) (graph.Node, error) {
	// strconv.Atoi rejects trailing garbage ("3.9", "4x") outright, where a
	// scanf-style parse would silently answer a different query.
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if v < 0 || v >= n {
		return 0, fmt.Errorf("node %d out of range", v)
	}
	return graph.Node(v), nil
}

// Error codes of the structured error schema. Every non-200 response body is
//
//	{"error": {"code": <one of these>, "message": <human text>,
//	           "details": <code-specific object, may be absent>}}
//
// so clients branch on a stable machine-readable code instead of matching
// message prose.
const (
	errBadJSON             = "bad_json"
	errEmptyPairs          = "empty_pairs"
	errBatchTooLarge       = "batch_too_large"
	errBodyTooLarge        = "body_too_large"
	errPairOutOfRange      = "pair_out_of_range"
	errBadStat             = "bad_stat"
	errBadNode             = "bad_node"
	errBadTreeRange        = "bad_tree_range"
	errBadEdit             = "bad_edit"
	errUpdateUnsupported   = "update_unsupported"
	errOverloaded          = "overloaded"
	errUpstreamUnavailable = "upstream_unavailable"
	errBadScenario         = "bad_scenario"
	errScenarioUnavailable = "scenario_unavailable"
)

// writeDecodeError classifies a JSON-decode failure: a body that tripped
// http.MaxBytesReader is a 413 with its own code (the client must shrink the
// request, not fix its syntax); everything else is a 400 bad_json.
func writeDecodeError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge, errBodyTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit),
			map[string]any{"maxBytes": tooLarge.Limit})
		return
	}
	writeError(w, http.StatusBadRequest, errBadJSON, "bad JSON: "+err.Error(), nil)
}

type apiError struct {
	Code    string         `json:"code"`
	Message string         `json:"message"`
	Details map[string]any `json:"details,omitempty"`
}

type errorResponse struct {
	Error apiError `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string, details map[string]any) {
	writeJSON(w, status, errorResponse{Error: apiError{Code: code, Message: msg, Details: details}})
}

// clientSummary is the machine-readable record of one load-generation run
// (-json appends it as a line, the same one-object-per-line convention the
// BENCH_*.json trajectories use).
type clientSummary struct {
	Date          string  `json:"date"`
	Target        string  `json:"target"`
	Mode          string  `json:"mode"`
	Requests      int     `json:"requests"`
	Batch         int     `json:"batch"`
	Concurrency   int     `json:"concurrency"`
	Failed        int     `json:"failed"`
	PairsPerSec   float64 `json:"pairsPerSec"`
	BatchesPerSec float64 `json:"batchesPerSec"`
	P50Us         int64   `json:"p50us"`
	P90Us         int64   `json:"p90us"`
	P99Us         int64   `json:"p99us"`
	MaxUs         int64   `json:"maxus"`
}

// runClient floods one target endpoint — selected by -mode — with pre-drawn
// request bodies from `concurrency` connections and reports throughput and
// latency quantiles. It is the load harness for both a single server and a
// router-fronted fleet (the API is identical): "batch" floods /batch with
// random pairs, "kmedian"/"buyatbulk"/"route" flood the application-scenario
// endpoints with random instances.
func runClient(target, mode string, requests, batch, concurrency int, seed uint64, jsonOut string) error {
	if requests < 1 || batch < 1 || concurrency < 1 {
		return fmt.Errorf("-requests, -batch, and -concurrency must all be ≥ 1 (got %d, %d, %d)",
			requests, batch, concurrency)
	}
	// One idle connection per worker, so the measured quantiles are server
	// batch latency rather than TCP handshakes (DefaultTransport keeps only
	// 2 idle conns per host), and a hung server fails the run instead of
	// blocking it forever.
	hc := &http.Client{
		Timeout: time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        concurrency,
			MaxIdleConnsPerHost: concurrency,
		},
	}
	stats, err := fetchStats(hc, target)
	if err != nil {
		return fmt.Errorf("fetching %s/stats: %w", target, err)
	}
	n := int(stats.Nodes)
	if n < 2 {
		return fmt.Errorf("server graph too small: n=%d", n)
	}
	fmt.Printf("target %s: n=%d trees=%d mode=%s\n", target, n, stats.Trees, mode)

	// Pre-draw every request body so the measured loop is pure I/O + server.
	path, bodies, check, err := buildWorkload(mode, par.NewRNG(seed), n, requests, batch)
	if err != nil {
		return err
	}

	latencies := make([]time.Duration, requests)
	errs := make([]error, requests)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				t0 := time.Now()
				errs[i] = postChecked(hc, target+path, bodies[i], check)
				latencies[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pairs := requests * batch
	sum := clientSummary{
		Date:          time.Now().UTC().Format(time.RFC3339),
		Target:        target,
		Mode:          mode,
		Requests:      requests,
		Batch:         batch,
		Concurrency:   concurrency,
		Failed:        failed,
		PairsPerSec:   float64(pairs) / elapsed.Seconds(),
		BatchesPerSec: float64(requests) / elapsed.Seconds(),
		P50Us:         latencies[requests/2].Microseconds(),
		P90Us:         latencies[requests*9/10].Microseconds(),
		P99Us:         latencies[requests*99/100].Microseconds(),
		MaxUs:         latencies[requests-1].Microseconds(),
	}
	fmt.Printf("sent %d batches × %d pairs in %v (%d failed)\n", requests, batch, elapsed.Round(time.Millisecond), failed)
	fmt.Printf("throughput: %.0f pairs/s, %.1f batches/s\n", sum.PairsPerSec, sum.BatchesPerSec)
	fmt.Printf("latency: p50 %v  p90 %v  p99 %v  max %v\n",
		latencies[requests/2], latencies[requests*9/10], latencies[requests*99/100], latencies[requests-1])
	if jsonOut != "" {
		if err := appendJSONLine(jsonOut, sum); err != nil {
			return fmt.Errorf("writing %s: %w", jsonOut, err)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d requests failed: first error: %w", failed, requests, firstError(errs))
	}
	return nil
}

func appendJSONLine(path string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

type statsResponse struct {
	Nodes int64 `json:"nodes"`
	Trees int64 `json:"trees"`
}

func fetchStats(hc *http.Client, target string) (*statsResponse, error) {
	resp, err := hc.Get(target + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /stats: %s", resp.Status)
	}
	var s statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// buildWorkload pre-draws `requests` bodies for one client -mode and returns
// the endpoint path plus a response check. batch sizes the instances: pairs
// per /batch and /route request, demands per /buyatbulk request; /kmedian
// solves once per request with a varying seed, so batch is ignored there.
func buildWorkload(mode string, rng *par.RNG, n, requests, batch int) (string, [][]byte, func(status int, data []byte) error, error) {
	bodies := make([][]byte, requests)
	fill := func(body func(i int) any) error {
		for i := range bodies {
			b, err := json.Marshal(body(i))
			if err != nil {
				return err
			}
			bodies[i] = b
		}
		return nil
	}
	randomPairs := func(count int) [][2]int64 {
		pairs := make([][2]int64, count)
		for j := range pairs {
			pairs[j] = [2]int64{int64(rng.Intn(n)), int64(rng.Intn(n))}
		}
		return pairs
	}
	switch mode {
	case "batch":
		err := fill(func(int) any {
			return batchRequest{Pairs: randomPairs(batch), Stat: "min"}
		})
		check := func(status int, data []byte) error {
			var br batchResponse
			if err := checkOK(status, data, &br); err != nil {
				return err
			}
			if len(br.Dists) != batch {
				return fmt.Errorf("got %d dists, want %d", len(br.Dists), batch)
			}
			return nil
		}
		return "/batch", bodies, check, err
	case "kmedian":
		k := 8
		if k > n {
			k = n
		}
		err := fill(func(i int) any {
			return kmedianRequest{K: k, Seed: uint64(i + 1)}
		})
		check := func(status int, data []byte) error {
			var kr kmedianResponse
			if err := checkOK(status, data, &kr); err != nil {
				return err
			}
			if len(kr.Centers) != k {
				return fmt.Errorf("got %d centers, want %d", len(kr.Centers), k)
			}
			return nil
		}
		return "/kmedian", bodies, check, err
	case "buyatbulk":
		// A fixed three-tier economies-of-scale catalogue; demands are random
		// unit-ish flows, so every request exercises the LCA flow accumulation
		// and the cable loader.
		cables := []wireCable{{Capacity: 1, Cost: 1}, {Capacity: 4, Cost: 2.5}, {Capacity: 16, Cost: 6}}
		err := fill(func(int) any {
			demands := make([]wireDemand, batch)
			for j := range demands {
				demands[j] = wireDemand{
					S:      int64(rng.Intn(n)),
					T:      int64(rng.Intn(n)),
					Amount: 1 + rng.Float64()*3,
				}
			}
			return buyAtBulkRequest{Demands: demands, Cables: cables}
		})
		check := func(status int, data []byte) error {
			var br buyAtBulkResponse
			if err := checkOK(status, data, &br); err != nil {
				return err
			}
			if br.Cost <= 0 {
				return fmt.Errorf("non-positive cost %g", br.Cost)
			}
			return nil
		}
		return "/buyatbulk", bodies, check, err
	case "route":
		pairs := batch
		if pairs > maxRoutePairs {
			pairs = maxRoutePairs
		}
		err := fill(func(int) any {
			return routeRequest{Pairs: randomPairs(pairs)}
		})
		check := func(status int, data []byte) error {
			var rr routeResponse
			if err := checkOK(status, data, &rr); err != nil {
				return err
			}
			if len(rr.Routes) != pairs {
				return fmt.Errorf("got %d routes, want %d", len(rr.Routes), pairs)
			}
			return nil
		}
		return "/route", bodies, check, err
	default:
		return "", nil, nil, fmt.Errorf("-mode must be batch, kmedian, buyatbulk, or route (got %q)", mode)
	}
}

// checkOK decodes a 200 response into out, surfacing the structured error
// code on anything else.
func checkOK(status int, data []byte, out any) error {
	if status != http.StatusOK {
		var er errorResponse
		if json.Unmarshal(data, &er) == nil && er.Error.Code != "" {
			return fmt.Errorf("status %d: %s (%s)", status, er.Error.Message, er.Error.Code)
		}
		return fmt.Errorf("status %d", status)
	}
	return json.Unmarshal(data, out)
}

func postChecked(hc *http.Client, url string, body []byte, check func(status int, data []byte) error) error {
	resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	return check(resp.StatusCode, data)
}

func loadGraph(in, gen string, n, m int, rng *par.RNG) (*graph.Graph, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.Read(f)
	}
	switch gen {
	case "random":
		if m <= 0 {
			m = 4 * n
		}
		return graph.RandomConnected(n, m, 10, rng), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return graph.GridGraph(side, side, 10, rng), nil
	case "path":
		return graph.PathGraph(n, 1), nil
	case "cycle":
		return graph.CycleGraph(n, 1), nil
	case "geometric":
		return graph.RandomGeometric(n, 0.15, rng), nil
	case "lollipop":
		return graph.Lollipop(n/4, 3*n/4), nil
	case "powerlaw":
		return graph.BarabasiAlbert(n, 3, 10, rng), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}
